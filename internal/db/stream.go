package db

import (
	"fmt"

	"resultdb/internal/core"
	"resultdb/internal/sqlparse"
)

// StreamMeta is the response header of a streamed execution: everything a
// consumer must know before the first result set arrives. For RESULTDB
// queries the set count and the post-join plan are fixed by the analysis
// phase, before any output relation is projected, so a wire server can
// serialize the header and then ship each relation while the executor is
// still projecting the next one.
type StreamMeta struct {
	// NumSets is the exact number of emit calls that will follow.
	NumSets int
	// Plan is the shipped post-join recipe (RDBRP results only).
	Plan *PostJoinPlan
	// Stats reports the native reduction's work, when that strategy ran.
	Stats *core.Stats
}

// streamSink receives a streamed execution, nil-safe: a nil sink turns
// queryResultDBAt/querySingleTableAt back into the plain buffered path at
// the cost of two nil checks.
type streamSink struct {
	beginFn func(StreamMeta) error
	emitFn  func(*ResultSet) error
}

func (s *streamSink) begin(m StreamMeta) error {
	if s == nil {
		return nil
	}
	return s.beginFn(m)
}

func (s *streamSink) emit(set *ResultSet) error {
	if s == nil {
		return nil
	}
	return s.emitFn(set)
}

// ExecStream executes one SQL statement, delivering the result incrementally:
// begin is called exactly once with the header (set count, post-join plan,
// reduction stats), then emit once per result set, in result order. For
// uncached SELECTs the calls interleave with execution — emit(set_i) runs
// before relation i+1 is projected, which is what makes server-side
// pipelining (execute ‖ encode ‖ transmit) possible. Cached SELECTs and
// non-SELECT statements execute fully first and then replay their result
// through the callbacks, so consumers see one protocol either way.
//
// SELECTs stream from a snapshot pinned at entry, lock-free: the emitted
// sets are immutable views of one committed state even while writers
// publish concurrently.
//
// The returned Result is the same value a plain Exec would have produced.
// An error from begin or emit aborts execution and is returned verbatim; an
// execution error after begin was already called is returned too — streaming
// consumers must be prepared to abandon a stream mid-flight.
func (d *Database) ExecStream(sql string, begin func(StreamMeta) error, emit func(*ResultSet) error) (*Result, error) {
	return d.execStreamAt(d.readCtx(), nil, sql, begin, emit)
}

// execStreamAt is ExecStream against an explicit execution context.
// onMutated, when non-nil, runs after a successful non-SELECT statement
// (sessions refresh their pinned view through it).
func (d *Database) execStreamAt(ec execCtx, onMutated func(), sql string, begin func(StreamMeta) error, emit func(*ResultSet) error) (res *Result, err error) {
	// Same panic confinement as ExecStatement: a poisoned query surfaces as
	// a statement error (the stream is abandoned mid-flight), not a crash.
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("db: internal error: %v", p)
		}
	}()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		res, err := d.ExecStatement(st)
		if err != nil {
			return nil, err
		}
		if onMutated != nil {
			onMutated()
		}
		return res, replayStream(res, begin, emit)
	}
	if ec.opts.ResultCache {
		// The cache stores whole results (and may return one computed by a
		// concurrent identical query at the same snapshot versions), so the
		// streamed form is a replay.
		res, err := d.queryCached(ec, sel)
		if err != nil {
			return nil, err
		}
		return res, replayStream(res, begin, emit)
	}
	sink := &streamSink{beginFn: begin, emitFn: emit}
	if sel.ResultDB {
		mode := ModeRDB
		if sel.Preserving {
			mode = ModeRDBRP
		}
		return d.queryResultDBAt(ec, sel, mode, nil, sink)
	}
	return d.querySingleTableAt(ec, sel, nil, sink)
}

// replayStream feeds an already-materialized result through the streaming
// callbacks (used for cached results and non-SELECT statements).
func replayStream(res *Result, begin func(StreamMeta) error, emit func(*ResultSet) error) error {
	if err := begin(StreamMeta{NumSets: len(res.Sets), Plan: res.PostJoinPlan, Stats: res.Stats}); err != nil {
		return err
	}
	for _, set := range res.Sets {
		if err := emit(set); err != nil {
			return err
		}
	}
	return nil
}

package db

import (
	"regexp"
	"strings"
	"testing"

	"resultdb/internal/sqlparse"
)

// stripAnnotations removes the run-varying trailing [...] brackets (wall
// times, parallel degree, morsel counts) from EXPLAIN ANALYZE lines; what
// remains is the deterministic operator tree.
var annotationRE = regexp.MustCompile(`\s*\[[^\]]*\]`)

func stripAnnotations(lines []string) string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = annotationRE.ReplaceAllString(l, "")
	}
	return strings.Join(out, "\n")
}

// TestExplainGoldenSingleTable locks the exact classic EXPLAIN format for the
// paper's Listing 1 query — the regression guard for the shared rendering
// path (EXPLAIN and EXPLAIN ANALYZE render from one trace structure).
func TestExplainGoldenSingleTable(t *testing.T) {
	d := paperExample(t)
	got := strings.Join(explainLines(t, d, "EXPLAIN "+listing1), "\n")
	want := strings.Join([]string{
		"single-table plan (greedy hash-join order, actual cardinalities)",
		"scan customers AS c  filter: c.state = 'NY'  rows: 3 -> 2",
		"scan orders AS o  filter: true  rows: 6 -> 6",
		"scan products AS p  filter: true  rows: 4 -> 4",
		"hash join + o  keys: 1  rows: 2 x 6 -> 3",
		"hash join + p  keys: 1  rows: 3 x 4 -> 3",
		"project [c.name, p.name, p.category]  rows: 3",
	}, "\n")
	if got != want {
		t.Errorf("EXPLAIN output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainGoldenResultDB locks the classic EXPLAIN format for the
// RESULTDB form of Listing 1: graph analysis, root choice, the full
// semi-join schedule, and the stats footer.
func TestExplainGoldenResultDB(t *testing.T) {
	d := paperExample(t)
	sql := "EXPLAIN SELECT RESULTDB" + listing1[len("\nSELECT"):]
	got := strings.Join(explainLines(t, d, sql), "\n")
	want := strings.Join([]string{
		"RESULTDB plan (Algorithm 4, actual cardinalities)",
		"output relations: [c p]",
		"strategy: native semi-join reduction",
		"scan customers AS c  filter: c.state = 'NY'  rows: 3 -> 2",
		"scan orders AS o  filter: true  rows: 6 -> 6",
		"scan products AS p  filter: true  rows: 4 -> 4",
		"root: c (degree 1, projected true)",
		"semi-join o ⋉ p  rows: 6 -> 6",
		"semi-join c ⋉ o  rows: 2 -> 2",
		"semi-join o ⋉ c  rows: 6 -> 3",
		"semi-join p ⋉ o  rows: 4 -> 2",
		"return c  rows: 2 (before projection dedup)",
		"return p  rows: 2 (before projection dedup)",
		"stats: root=c semijoins=4 skipped=0 dropped=5 folds=0",
	}, "\n")
	if got != want {
		t.Errorf("EXPLAIN RESULTDB output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeGoldenResultDB locks the EXPLAIN ANALYZE operator tree
// (with run-varying bracket annotations stripped) for the RESULTDB Listing 1:
// phases, glyphs, per-operator counts, per-relation transfer bytes, totals.
func TestExplainAnalyzeGoldenResultDB(t *testing.T) {
	d := paperExample(t)
	sql := "EXPLAIN ANALYZE SELECT RESULTDB" + listing1[len("\nSELECT"):]
	got := stripAnnotations(explainLines(t, d, sql))
	want := strings.Join([]string{
		"mode: resultdb  strategy: semijoin  parallelism: 1",
		"output relations: c, p",
		"strategy: native semi-join reduction",
		"scan",
		"  ├─ scan customers AS c  filter: c.state = 'NY'  rows: 3 -> 2",
		"  ├─ scan orders AS o  filter: true  rows: 6 -> 6",
		"  └─ scan products AS p  filter: true  rows: 4 -> 4",
		"root: c (degree 1, projected true)",
		"bottom-up",
		"  ├─ semi-join o ⋉ p  rows: 6 -> 6  (source 4 rows)",
		"  └─ semi-join c ⋉ o  rows: 2 -> 2  (source 6 rows)",
		"top-down",
		"  ├─ semi-join o ⋉ c  rows: 6 -> 3  (source 2 rows)",
		"  └─ semi-join p ⋉ o  rows: 4 -> 2  (source 3 rows)",
		"output",
		"  ├─ return c  rows: 2 -> 2  bytes: 10",
		"  └─ return p  rows: 2 -> 2  bytes: 30",
		"stats: root=c semijoins=4 skipped=0 dropped=5 folds=0",
		"totals: scanned=12 joined=0 dropped=6 out=4 bytes=40",
	}, "\n")
	if got != want {
		t.Errorf("EXPLAIN ANALYZE output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainSharesRenderPathWithQueryWithTrace: EXPLAIN output must be
// byte-identical to CompactLines of the trace QueryWithTrace returns, and
// EXPLAIN ANALYZE (annotations stripped) identical to TreeLines — the "one
// plan-rendering path" guarantee.
func TestExplainSharesRenderPathWithQueryWithTrace(t *testing.T) {
	d := paperExample(t)
	for _, sql := range []string{
		listing1,
		"SELECT RESULTDB" + listing1[len("\nSELECT"):],
	} {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		_, tr, err := d.QueryWithTrace(sel)
		if err != nil {
			t.Fatal(err)
		}
		explain := strings.Join(explainLines(t, d, "EXPLAIN "+sql), "\n")
		if api := strings.Join(tr.CompactLines(), "\n"); api != explain {
			t.Errorf("EXPLAIN diverges from QueryWithTrace.CompactLines:\nexplain:\n%s\napi:\n%s", explain, api)
		}
		analyze := stripAnnotations(explainLines(t, d, "EXPLAIN ANALYZE "+sql))
		if api := stripAnnotations(tr.TreeLines()); api != analyze {
			t.Errorf("EXPLAIN ANALYZE diverges from QueryWithTrace.TreeLines:\nexplain:\n%s\napi:\n%s", analyze, api)
		}
	}
}

// TestExplainAnalyzeSQLRoundTrip: the parser accepts EXPLAIN ANALYZE and the
// renderer reproduces it.
func TestExplainAnalyzeSQLRoundTrip(t *testing.T) {
	st, err := sqlparse.Parse("EXPLAIN ANALYZE SELECT c.id FROM customers AS c")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*sqlparse.Explain)
	if !ok || !ex.Analyze {
		t.Fatalf("parsed %T analyze=%v", st, ok && ex.Analyze)
	}
	if got := ex.SQL(); !strings.HasPrefix(got, "EXPLAIN ANALYZE SELECT") {
		t.Errorf("render = %q", got)
	}
	st2, err := sqlparse.Parse(ex.SQL())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if ex2 := st2.(*sqlparse.Explain); !ex2.Analyze {
		t.Error("ANALYZE flag lost in round trip")
	}
}

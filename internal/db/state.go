package db

import (
	"fmt"
	"sort"
	"strings"

	"resultdb/internal/catalog"
	"resultdb/internal/storage"
)

// dbState is one immutable published version of the whole database: the
// table set (each *storage.Table itself an immutable published version), the
// per-table-name cache version counters, and the commit position. Readers
// pin a state with one atomic load and then execute entirely lock-free;
// writers derive the next state under the writer lock and publish it with
// one atomic store. A state, once published, is never mutated.
type dbState struct {
	// tables maps lower-cased names to published table versions.
	tables map[string]*storage.Table
	// vers holds the per-table-name version counters the semantic result
	// cache keys on. Unlike storage.Table.Generation, these survive
	// DROP+CREATE (a re-created table must not revive results cached against
	// a previous incarnation), mirroring cache.Cache's own counters.
	vers map[string]uint64
	// seq is the commit sequence number: +1 per published mutation batch.
	seq uint64
	// lsn is the WAL LSN of the last commit included in this state (0 when
	// no commit log is installed; seeded by recovery via SetRecoveredLSN).
	lsn uint64
}

// Snapshot pins one immutable published database state: a consistent set of
// table versions acquired with a single atomic load (O(1); the O(tables)
// copying happens on the write path). A Snapshot implements engine.Source
// and snapshot.Source, so queries, statistics, checkpoints, and \save all
// read from the same frozen world. Snapshots are cheap, never expire, and
// need no release call — an abandoned snapshot is garbage-collected with
// the table versions only it still references.
type Snapshot struct {
	db *Database
	st *dbState
}

// Snapshot pins the newest committed state. Every read entry point of the
// database acquires one and then runs without any database-wide lock:
// readers never block writers, writers never block readers, and no reader
// ever observes a half-applied batch.
func (d *Database) Snapshot() *Snapshot {
	return &Snapshot{db: d, st: d.state.Load()}
}

// Table resolves a table name in this snapshot (engine.Source).
func (s *Snapshot) Table(name string) (*storage.Table, error) {
	if t, ok := s.st.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("db: table %q does not exist", name)
}

// TableNames returns the snapshot's table names (original case), sorted.
func (s *Snapshot) TableNames() []string {
	out := make([]string, 0, len(s.st.tables))
	for _, t := range s.st.tables {
		out = append(out, t.Def.Name)
	}
	sort.Strings(out)
	return out
}

// Seq is the snapshot's commit sequence number: 0 for an empty database,
// +1 per committed mutation batch since.
func (s *Snapshot) Seq() uint64 { return s.st.seq }

// LSN is the WAL position this snapshot covers: the LSN of the last commit
// included in it. 0 when the database has no commit log (or no commit was
// logged yet); recovery seeds it so checkpoints pair the snapshot with the
// exact log position it reflects.
func (s *Snapshot) LSN() uint64 { return s.st.lsn }

// versionOf returns the cache version counter of a table name as of this
// snapshot. Results computed against the snapshot are admitted to the
// result cache keyed on these — not on the possibly newer live counters —
// so a fill racing a writer can never be served stale.
func (s *Snapshot) versionOf(name string) uint64 {
	return s.st.vers[strings.ToLower(name)]
}

// writeTxn accumulates one mutation batch on top of a base state. The table
// map and version map are copied once (O(tables)); mutated tables are
// replaced by copy-on-write drafts (storage.Table.BeginVersion). commit
// publishes the batch atomically; a txn abandoned on error leaves the
// published state — and every concurrent reader — untouched.
type writeTxn struct {
	d      *Database
	base   *dbState
	tables map[string]*storage.Table
	vers   map[string]uint64

	drafts   map[string]*storage.Table // draft versions begun this txn
	touched  []string                  // names whose cache versions bump
	replaced []*storage.Table          // superseded versions (stats cache cleanup)
	creates  []*catalog.TableDef       // catalog registrations, applied at commit
	drops    []string                  // catalog removals, applied at commit
}

// newWriteTxn copies the base state's maps. Called with d.mu held.
func (d *Database) newWriteTxn() *writeTxn {
	base := d.state.Load()
	tx := &writeTxn{
		d:      d,
		base:   base,
		tables: make(map[string]*storage.Table, len(base.tables)+1),
		vers:   make(map[string]uint64, len(base.vers)+1),
		drafts: make(map[string]*storage.Table),
	}
	for k, v := range base.tables {
		tx.tables[k] = v
	}
	for k, v := range base.vers {
		tx.vers[k] = v
	}
	return tx
}

// Table resolves a name within the transaction (pending changes included),
// implementing engine.Source for statements that read while mutating
// (CREATE MATERIALIZED VIEW ... AS SELECT).
func (tx *writeTxn) Table(name string) (*storage.Table, error) {
	if t, ok := tx.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("db: table %q does not exist", name)
}

// draft returns the transaction's mutable version of name, deriving it from
// the published version on first use.
func (tx *writeTxn) draft(name string) (*storage.Table, error) {
	key := strings.ToLower(name)
	if t, ok := tx.drafts[key]; ok {
		return t, nil
	}
	cur, ok := tx.tables[key]
	if !ok {
		return nil, fmt.Errorf("db: table %q does not exist", name)
	}
	t := cur.BeginVersion()
	tx.drafts[key] = t
	tx.tables[key] = t
	tx.replaced = append(tx.replaced, cur)
	tx.touch(name)
	return t, nil
}

// create registers a new (empty, unpublished) table in the transaction.
func (tx *writeTxn) create(def *catalog.TableDef) (*storage.Table, error) {
	key := strings.ToLower(def.Name)
	if _, ok := tx.tables[key]; ok || tx.d.cat.Has(def.Name) {
		return nil, fmt.Errorf("catalog: table %q already exists", def.Name)
	}
	t := storage.NewTable(def)
	tx.tables[key] = t
	tx.drafts[key] = t
	tx.creates = append(tx.creates, def)
	// A re-created table is a different table: any cached result computed
	// against a previous incarnation (e.g. before a DROP) must not survive.
	tx.touch(def.Name)
	return t, nil
}

// drop removes a table from the transaction.
func (tx *writeTxn) drop(name string) {
	key := strings.ToLower(name)
	if old, ok := tx.tables[key]; ok {
		tx.replaced = append(tx.replaced, old)
	}
	delete(tx.tables, key)
	tx.drops = append(tx.drops, name)
	tx.touch(name)
}

// touch marks a table name's cached results as invalidated by this batch.
func (tx *writeTxn) touch(name string) {
	key := strings.ToLower(name)
	tx.vers[key]++
	tx.touched = append(tx.touched, key)
}

// commit publishes the transaction as the next database state, stamped with
// the WAL position of its commit record. Called with d.mu held, after the
// batch applied cleanly and (when a commit log is installed) after its log
// append succeeded — so log order is publish order, and a state no reader
// has seen is never ahead of the log. The result-cache version bumps happen
// before the store: once a reader can see the new state, every stale cached
// entry is already invalidated.
func (tx *writeTxn) commit(lsn uint64) {
	d := tx.d
	for _, def := range tx.creates {
		// Validated in create; the registry and the published map move
		// together under the writer lock.
		d.cat.Create(def)
	}
	for _, name := range tx.drops {
		d.cat.Drop(name)
	}
	for _, old := range tx.replaced {
		d.statsCache.Forget(old)
	}
	if len(tx.touched) > 0 {
		d.resultCache.Bump(tx.touched...)
	}
	if lsn == 0 {
		lsn = tx.base.lsn
	}
	d.state.Store(&dbState{
		tables: tx.tables,
		vers:   tx.vers,
		seq:    tx.base.seq + 1,
		lsn:    lsn,
	})
}

// emptyState returns the state of a freshly created database.
func emptyState() *dbState {
	return &dbState{
		tables: make(map[string]*storage.Table),
		vers:   make(map[string]uint64),
	}
}

package db

import (
	"strings"
	"sync"
	"testing"

	"resultdb/internal/sqlparse"
)

// cacheTestDB builds a small two-table database with the cache enabled.
func cacheTestDB(t *testing.T) *Database {
	t.Helper()
	d := New()
	script := `
CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, year INT);
CREATE TABLE roles (id INT PRIMARY KEY, movie_id INT, actor TEXT);
INSERT INTO movies VALUES (1, 'Heat', 1995), (2, 'Ronin', 1998), (3, 'Blow Out', 1981);
INSERT INTO roles VALUES (10, 1, 'De Niro'), (11, 2, 'De Niro'), (12, 1, 'Pacino');
`
	if _, err := d.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	d.EnableCache(1 << 20)
	return d
}

func resultFingerprint(r *Result) string {
	var b strings.Builder
	for _, set := range r.Sets {
		b.WriteString(set.Name)
		b.WriteString("|")
		b.WriteString(strings.Join(set.Columns, ","))
		b.WriteString("|")
		for _, row := range set.Rows {
			b.WriteString(row.String())
			b.WriteString(";")
		}
	}
	return b.String()
}

func TestCacheHitServesIdenticalResult(t *testing.T) {
	d := cacheTestDB(t)
	q := "SELECT RESULTDB m.title, r.actor FROM movies m, roles r WHERE m.id = r.movie_id"
	cold, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// Different spelling of the same statement must hit.
	warm, err := d.Exec("select   RESULTDB  M.Title , R.Actor from movies AS M, roles AS R where M.id=R.movie_id")
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(cold) != resultFingerprint(warm) {
		t.Fatal("warm result differs from cold")
	}
	st := d.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %+v", st)
	}
	if warm != cold {
		t.Fatal("warm hit should return the shared cached snapshot")
	}
}

func TestCacheInsertInvalidates(t *testing.T) {
	d := cacheTestDB(t)
	q := "SELECT m.title FROM movies m WHERE m.year > 1990"
	r1, _ := d.Exec(q)
	if _, err := d.Exec("INSERT INTO movies VALUES (4, 'Thief', 1981)"); err != nil {
		t.Fatal(err)
	}
	// The insert does not satisfy the filter change? year 1981 < 1990, so the
	// row set is unchanged — but the entry must STILL be invalidated (the
	// cache is version-based, not content-based).
	r2, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	st := d.CacheStats()
	if st.Invalidations != 1 {
		t.Fatalf("want 1 invalidation after INSERT, got %+v", st)
	}
	if st.Misses != 2 {
		t.Fatalf("post-INSERT query must recompute, got %+v", st)
	}
	if resultFingerprint(r1) != resultFingerprint(r2) {
		t.Fatal("recomputed result should equal original (insert filtered out)")
	}

	// An insert that DOES change the result.
	if _, err := d.Exec("INSERT INTO movies VALUES (5, 'Collateral', 2004)"); err != nil {
		t.Fatal(err)
	}
	r3, _ := d.Exec(q)
	if len(r3.First().Rows) != len(r1.First().Rows)+1 {
		t.Fatalf("stale row count after invalidating insert: %d vs %d",
			len(r3.First().Rows), len(r1.First().Rows))
	}
}

func TestCacheUnrelatedDMLDoesNotInvalidate(t *testing.T) {
	d := cacheTestDB(t)
	q := "SELECT m.title FROM movies m"
	d.Exec(q)
	if _, err := d.Exec("INSERT INTO roles VALUES (13, 3, 'Travolta')"); err != nil {
		t.Fatal(err)
	}
	d.Exec(q)
	st := d.CacheStats()
	if st.Hits != 1 || st.Invalidations != 0 {
		t.Fatalf("DML on unrelated table should not invalidate: %+v", st)
	}
}

func TestCacheDropCreateInvalidates(t *testing.T) {
	d := cacheTestDB(t)
	q := "SELECT m.title FROM movies m"
	r1, _ := d.Exec(q)
	if _, err := d.ExecScript(`
DROP TABLE movies;
CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, year INT);
INSERT INTO movies VALUES (9, 'Sorcerer', 1977);`); err != nil {
		t.Fatal(err)
	}
	r2, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(r1) == resultFingerprint(r2) {
		t.Fatal("cache served a result from a dropped table incarnation")
	}
	if got := len(r2.First().Rows); got != 1 {
		t.Fatalf("want 1 row from recreated table, got %d", got)
	}
}

func TestCacheMatviewCoversCreatedTables(t *testing.T) {
	d := cacheTestDB(t)
	if _, err := d.Exec("CREATE MATERIALIZED VIEW mv AS SELECT m.title FROM movies m WHERE m.year > 1990"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT mv.title FROM mv"
	r1, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ExecScript("DROP MATERIALIZED VIEW mv; CREATE MATERIALIZED VIEW mv AS SELECT m.title FROM movies m WHERE m.year > 1997"); err != nil {
		t.Fatal(err)
	}
	r2, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.First().Rows) == len(r2.First().Rows) {
		t.Fatal("cached result survived materialized-view re-creation")
	}
}

func TestCacheDisabledByDefaultAndToggles(t *testing.T) {
	d := New()
	if d.CacheEnabled() {
		t.Fatal("cache should be off by default")
	}
	d.EnableCache(0)
	if !d.CacheEnabled() || d.CacheStats().Budget != DefaultCacheBudget {
		t.Fatalf("EnableCache(0) should use default budget, got %+v", d.CacheStats())
	}
	d.DisableCache()
	if d.CacheEnabled() {
		t.Fatal("DisableCache did not disable")
	}
}

func TestCacheEnvVar(t *testing.T) {
	cases := []struct {
		val     string
		enabled bool
		budget  int64
	}{
		{"", false, 0},
		{"off", false, 0},
		{"on", true, DefaultCacheBudget},
		{"256MB", true, 256 * 1000 * 1000},
		{"16MiB", true, 16 << 20},
		{"1048576", true, 1 << 20},
		{"garbage", false, 0},
	}
	for _, c := range cases {
		t.Setenv(CacheEnvVar, c.val)
		d := New()
		if d.CacheEnabled() != c.enabled {
			t.Errorf("RESULTDB_CACHE=%q: enabled=%v want %v", c.val, d.CacheEnabled(), c.enabled)
		}
		if c.enabled && d.CacheStats().Budget != c.budget {
			t.Errorf("RESULTDB_CACHE=%q: budget=%d want %d", c.val, d.CacheStats().Budget, c.budget)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"1024":   1024,
		"64KB":   64000,
		"256MB":  256000000,
		"2GB":    2000000000,
		"16MiB":  16 << 20,
		"1 GiB":  1 << 30,
		"1.5MiB": 3 << 19,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "MB", "1XB", "x12"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) should fail", bad)
		}
	}
}

func TestCacheSingleTableAndGroupBy(t *testing.T) {
	d := cacheTestDB(t)
	for _, q := range []string{
		"SELECT COUNT(*) FROM roles r WHERE r.actor = 'De Niro'",
		"SELECT m.year, COUNT(*) FROM movies m GROUP BY m.year",
		"SELECT DISTINCT r.actor FROM roles r ORDER BY r.actor",
	} {
		r1, err := d.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		r2, err := d.Exec(q)
		if err != nil {
			t.Fatalf("%s warm: %v", q, err)
		}
		if resultFingerprint(r1) != resultFingerprint(r2) {
			t.Fatalf("%s: warm != cold", q)
		}
	}
	st := d.CacheStats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("want 3 hits / 3 misses, got %+v", st)
	}
}

func TestCacheExplainAnalyzeAnnotation(t *testing.T) {
	d := cacheTestDB(t)
	q := "EXPLAIN ANALYZE SELECT m.title FROM movies m WHERE m.year > 1990"
	planText := func(r *Result) string {
		var b strings.Builder
		for _, row := range r.First().Rows {
			b.WriteString(row[0].Text())
			b.WriteString("\n")
		}
		return b.String()
	}
	r1, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText(r1), "cache: miss") {
		t.Fatalf("first EXPLAIN ANALYZE should annotate a miss:\n%s", planText(r1))
	}
	// EXPLAIN warms the cache: the plain statement now hits…
	if _, err := d.Exec("SELECT m.title FROM movies m WHERE m.year > 1990"); err != nil {
		t.Fatal(err)
	}
	if st := d.CacheStats(); st.Hits != 1 {
		t.Fatalf("EXPLAIN should have filled the cache, got %+v", st)
	}
	// …and a second EXPLAIN ANALYZE annotates the hit.
	r2, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planText(r2), "cache: hit") {
		t.Fatalf("second EXPLAIN ANALYZE should annotate a hit:\n%s", planText(r2))
	}
	// With the cache off, no annotation at all.
	d.DisableCache()
	r3, _ := d.Exec(q)
	if strings.Contains(planText(r3), "cache:") {
		t.Fatalf("cache-off EXPLAIN ANALYZE must not mention the cache:\n%s", planText(r3))
	}
}

func TestCacheSingleFlightUnderConcurrency(t *testing.T) {
	d := cacheTestDB(t)
	q := "SELECT RESULTDB m.title, r.actor FROM movies m, roles r WHERE m.id = r.movie_id"
	const n = 16
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = d.Exec(q)
		}(i)
	}
	wg.Wait()
	want := ""
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		fp := resultFingerprint(results[i])
		if want == "" {
			want = fp
		} else if fp != want {
			t.Fatalf("goroutine %d saw a different result", i)
		}
	}
	st := d.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("identical concurrent queries must compute at most once (got %+v)", st)
	}
	if st.Hits+st.Collapsed != n-1 {
		t.Fatalf("every non-leader must be a hit or collapsed, got %+v", st)
	}
}

func TestCacheParallelismSharesEntries(t *testing.T) {
	d := cacheTestDB(t)
	q := "SELECT RESULTDB m.title, r.actor FROM movies m, roles r WHERE m.id = r.movie_id"
	d.SetParallelism(1)
	r1, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	d.SetParallelism(4)
	r2, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := d.CacheStats(); st.Hits != 1 {
		t.Fatalf("parallelism change must not fragment the cache, got %+v", st)
	}
	if resultFingerprint(r1) != resultFingerprint(r2) {
		t.Fatal("results differ across parallelism degrees")
	}
}

func TestCachedResultIsNotMutatedByPostJoin(t *testing.T) {
	// PostJoin reads a cached RDBRP result; the shared snapshot must be
	// intact afterwards (cached values are immutable by contract).
	d := cacheTestDB(t)
	q := "SELECT RESULTDB PRESERVING m.title, r.actor FROM movies m, roles r WHERE m.id = r.movie_id"
	res, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	before := resultFingerprint(res)
	sel, err := sqlparse.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PostJoin(sel, res); err != nil {
		t.Fatal(err)
	}
	warm, err := d.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(warm) != before {
		t.Fatal("cached snapshot mutated by PostJoin")
	}
}

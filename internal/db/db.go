// Package db is the user-facing database facade of the reproduction: a
// main-memory DBMS executing SQL text, with materialized views, multi-cursor
// results, and the paper's SELECT RESULTDB extension in both the native
// semi-join variant (Section 4) and the Decompose-on-top-of-a-standard-plan
// variant (Section 6.3).
package db

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"resultdb/internal/cache"
	"resultdb/internal/catalog"
	"resultdb/internal/colstore"
	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/stats"
	"resultdb/internal/storage"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// Strategy selects how SELECT RESULTDB is executed.
type Strategy uint8

const (
	// StrategySemiJoin runs the native RESULTDB-SEMIJOIN algorithm
	// (Algorithm 4): fold cycles, Yannakakis reduction, decompose folds.
	StrategySemiJoin Strategy = iota
	// StrategyDecompose runs the single-table plan and splits the joined
	// result with the Decompose operator (the Section 6.3 baseline).
	StrategyDecompose
)

// Mode selects the subdatabase flavor (Section 6, "Query Types").
type Mode uint8

const (
	// ModeRDB returns exactly the projected attributes A_i per relation
	// (Definition 2.2).
	ModeRDB Mode = iota
	// ModeRDBRP additionally returns the join attributes, producing a
	// relationship-preserving subdatabase (Definition 2.3) from which the
	// single-table result can be reconstructed by a post-join.
	ModeRDBRP
)

// Database is a main-memory relational database with multiversioned
// (copy-on-write) storage. Reads and writes are safe for concurrent use and
// never block each other:
//
//   - Every read entry point (Query, QueryWithTrace, ExecStream, EXPLAIN,
//     ANALYZE) pins an immutable published state with one atomic load
//     (Snapshot) and then executes, fills caches, traces, and wire-encodes
//     entirely lock-free. A reader always sees some committed state — never
//     a half-applied batch — no matter how many writers race it.
//   - Mutation statements serialize on the writer lock, apply their batch to
//     copy-on-write drafts, append to the commit log (when installed), and
//     publish the successor state with one atomic store. A failed batch
//     publishes nothing.
//
// BEGIN/COMMIT group statements syntactically (the engine is single-writer;
// each mutation statement is its own atomic commit).
//
// The exported configuration fields (Strategy, CoreOptions, DPJoinOrder) and
// the setters over them are read at statement start without synchronization:
// configure at Open time or between statements. Per-connection settings
// belong on a Session, which carries its own copies.
type Database struct {
	// mu is the writer lock: it serializes mutation batches (DML/DDL) and
	// the commit-log appends that order them. Readers never take it. All
	// uses of mu live in this file — verify.sh lints against new d.mu
	// references elsewhere in the package.
	mu sync.Mutex

	// state is the current published dbState (see state.go). Written only
	// under mu; read with one atomic load by everyone else.
	state atomic.Pointer[dbState]

	cat *catalog.Catalog

	// resultCache is the semantic query-result cache (internal/cache): a
	// byte-budgeted LRU keyed by the canonical statement fingerprint and
	// guarded by per-table version counters bumped on every DML/DDL. Always
	// allocated (its version counters must track DML even while serving is
	// off) but consulted only when CoreOptions.ResultCache is set.
	resultCache *cache.Cache[*Result]

	// statsCache lazily builds and caches per-table optimizer statistics
	// (internal/stats), keyed by table-version pointer. It backs ANALYZE and
	// the cost-based planner (CoreOptions.CostBased). Writers Forget
	// superseded versions at publish time.
	statsCache *stats.Cache

	// planVerdicts memoizes, per query, whether cost-based planning
	// diverged from the heuristic plan (see plancache.go). Guarded by its
	// own mutex because concurrent lock-free readers share it.
	planMu       sync.Mutex
	planVerdicts map[string]planVerdict
	planKeys     map[*sqlparse.Select]planKeyMemo

	// commitLog, when set, records every successful mutation statement
	// before it is published or acknowledged (see CommitLog). Nil when
	// durability is off — the write path then pays one nil check and nothing
	// else, and SELECT-only traffic never touches it at all.
	commitLog CommitLog

	// Strategy and CoreOptions configure RESULTDB execution.
	Strategy    Strategy
	CoreOptions core.Options
	// DPJoinOrder enables the DPsize join-order optimizer for single-table
	// plans (the greedy live-cardinality order is the default).
	DPJoinOrder bool
}

// CommitLog is the durability hook on the write path (implemented by
// internal/durable). Append is called with the database writer lock held,
// after the statements applied cleanly to unpublished drafts and before the
// new state is published — so append order is exactly publish order, and a
// state readers can see is never ahead of the log. It returns the LSN
// assigned to the batch (stamped into the published state, pairing every
// snapshot with the exact log position it covers) and a wait function making
// the batch durable; the database invokes wait after releasing the lock, so
// concurrent committers' fsync waits overlap (group commit) instead of
// serializing behind the lock. A nil wait means the batch is already durable.
type CommitLog interface {
	Append(stmts []string) (lsn uint64, wait func() error, err error)
}

// SetCommitLog installs (or, with nil, removes) the durability hook. Call
// before serving traffic; it is not synchronized against in-flight writes.
func (d *Database) SetCommitLog(l CommitLog) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commitLog = l
}

// SetRecoveredLSN stamps the current state with the WAL position it was
// recovered to, so snapshots (and the checkpoints taken from them) pair the
// state with the right log position from the first post-recovery commit on.
// Called by the durability subsystem after replay, before serving traffic.
func (d *Database) SetRecoveredLSN(lsn uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	d.state.Store(&dbState{tables: st.tables, vers: st.vers, seq: st.seq, lsn: lsn})
}

// withWriter runs fn under the writer lock. It exists so sibling files can
// serialize configuration changes against the write path without referencing
// d.mu directly (which verify.sh lints against outside this file).
func (d *Database) withWriter(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn()
}

// execCtx is everything one read statement needs, captured once at entry:
// the pinned snapshot plus the execution options in effect when it started.
// Capturing options alongside the snapshot keeps a statement internally
// consistent and lets a Session substitute per-session options without
// touching the database's.
type execCtx struct {
	// src resolves table names: the pinned Snapshot on read paths, the
	// writeTxn for statements that read while mutating (CREATE MATERIALIZED
	// VIEW ... AS SELECT runs inside the writer's transaction).
	src engine.Source
	// snap is the pinned snapshot; non-nil exactly on read paths. The
	// result cache keys fills on its versions, and traces annotate with its
	// commit position.
	snap        *Snapshot
	opts        core.Options
	strategy    Strategy
	dpJoinOrder bool
}

// readCtx pins the newest committed state and captures the database-level
// options for one read statement.
func (d *Database) readCtx() execCtx {
	snap := d.Snapshot()
	return execCtx{
		src:         snap,
		snap:        snap,
		opts:        d.CoreOptions,
		strategy:    d.Strategy,
		dpJoinOrder: d.DPJoinOrder,
	}
}

// txnCtx builds the execution context for reads running inside a write
// transaction (materialized-view fills): tables resolve through the txn so
// the statement sees its own batch, and no snapshot is pinned (the cache is
// bypassed — its entries must only ever hold committed states).
func (d *Database) txnCtx(tx *writeTxn) execCtx {
	return execCtx{
		src:         tx,
		opts:        d.CoreOptions,
		strategy:    d.Strategy,
		dpJoinOrder: d.DPJoinOrder,
	}
}

// TableStats returns the (cached, version-checked) statistics for a table,
// or nil if the table does not exist. Exported for the shell's \stats
// command.
func (d *Database) TableStats(name string) *stats.Table {
	t, err := d.Snapshot().Table(name)
	if err != nil {
		return nil
	}
	return d.statsCache.Of(t)
}

// execAnalyze implements ANALYZE [table]: eagerly (re)build statistics for
// one table or all tables. It is a read-only statement — statistics are a
// cache over committed data, so it runs against a snapshot and is neither
// logged to the WAL nor a cache-invalidating mutation. Affected reports the
// number of tables analyzed.
func (d *Database) execAnalyze(s *sqlparse.Analyze) (*Result, error) {
	snap := d.Snapshot()
	if s.Table != "" {
		t, err := snap.Table(s.Table)
		if err != nil {
			return nil, err
		}
		d.statsCache.Of(t)
		return &Result{Affected: 1}, nil
	}
	n := 0
	for _, name := range snap.TableNames() {
		if t, err := snap.Table(name); err == nil {
			d.statsCache.Of(t)
			n++
		}
	}
	return &Result{Affected: n}, nil
}

// ResultSet is one cursor of a result: the minimally invasive API extension
// the paper proposes (Section 7, "API Integration") — a query returns a set
// of cursors instead of exactly one.
type ResultSet struct {
	// Name labels the set; for subdatabase results it is the relation
	// alias, for single-table results "result".
	Name    string
	Columns []string
	Rows    []types.Row
	// Vec, when non-nil, is a columnar view aligned with Rows (same values,
	// same order, one frame column per Columns entry). It is attached by the
	// vectorized execution path and consumed by the columnar wire encoder,
	// which reuses its TEXT dictionaries instead of re-deduplicating strings.
	// Purely an accelerator: Rows alone fully determine the result.
	Vec *colstore.View
}

// WireSize returns the Section 6.1 result-set size in bytes.
func (rs *ResultSet) WireSize() int {
	n := 0
	for _, r := range rs.Rows {
		n += r.WireSize()
	}
	return n
}

// NumRows returns the number of rows.
func (rs *ResultSet) NumRows() int { return len(rs.Rows) }

// Result is the outcome of one statement.
type Result struct {
	// Sets holds one set for single-table queries, one per output relation
	// for RESULTDB queries, and none for DDL/DML.
	Sets []*ResultSet
	// Affected counts inserted rows for INSERT.
	Affected int
	// Stats reports what the native RESULTDB algorithm did, when it ran.
	Stats *core.Stats
	// PostJoinPlan is attached to relationship-preserving (RDBRP) results:
	// the shipped recipe for reconstructing the single-table result
	// client-side (the Section 7 "subdatabase snapshot" extension).
	PostJoinPlan *PostJoinPlan
}

// First returns the first result set (the single-table result), or nil.
func (r *Result) First() *ResultSet {
	if len(r.Sets) == 0 {
		return nil
	}
	return r.Sets[0]
}

// Set returns the result set named name (case-insensitive), or nil.
func (r *Result) Set(name string) *ResultSet {
	for _, s := range r.Sets {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	return nil
}

// WireSize sums the sizes of all result sets.
func (r *Result) WireSize() int {
	n := 0
	for _, s := range r.Sets {
		n += s.WireSize()
	}
	return n
}

// executorWith builds an engine executor resolving tables through src and
// honoring the context's options, with an optional tracer (nil = disabled).
func (d *Database) executorWith(src engine.Source, ec execCtx, tr *trace.Tracer) *engine.Executor {
	return &engine.Executor{
		Src:         src,
		DPJoinOrder: ec.dpJoinOrder,
		Parallelism: ec.opts.Parallelism,
		Vectorized:  ec.opts.Vectorized,
		CostBased:   ec.opts.CostBased,
		Tracer:      tr,
		StatsOf: func(table string) *stats.Table {
			t, err := src.Table(table)
			if err != nil {
				return nil
			}
			return d.statsCache.Of(t)
		},
	}
}

// executor builds an engine executor for the context's own source.
func (d *Database) executor(ec execCtx, tr *trace.Tracer) *engine.Executor {
	return d.executorWith(ec.src, ec, tr)
}

// Table resolves a table in the newest committed state (engine.Source).
// Concurrency-sensitive callers resolve through a pinned Snapshot instead;
// Database-level resolution exists for single-threaded embedders and the
// bulk-load paths that fill tables before serving traffic.
func (d *Database) Table(name string) (*storage.Table, error) {
	return d.Snapshot().Table(name)
}

// TableNames lists the newest committed state's tables, sorted
// (snapshot.Source).
func (d *Database) TableNames() []string {
	return d.Snapshot().TableNames()
}

// Catalog exposes the schema catalog (read-only use).
func (d *Database) Catalog() *catalog.Catalog { return d.cat }

// CreateTable registers a new table from a definition; used by workload
// generators that bypass SQL for bulk loading. The returned table is the
// published version: generators may fill it directly only before the
// database serves concurrent traffic.
func (d *Database) CreateTable(def *catalog.TableDef) (*storage.Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tx := d.newWriteTxn()
	t, err := tx.create(def)
	if err != nil {
		return nil, err
	}
	tx.commit(0)
	return t, nil
}

// Exec parses and executes a single SQL statement.
func (d *Database) Exec(sql string) (*Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(*sqlparse.Select); ok {
		sel.Src = sql
	}
	return d.ExecStatement(st)
}

// ExecScript executes a semicolon-separated script, returning one result per
// statement. Execution stops at the first error.
func (d *Database) ExecScript(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := d.ExecStatement(st)
		if err != nil {
			return out, fmt.Errorf("db: statement %q: %w", st.SQL(), err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecStatement executes a parsed statement. A panic anywhere in execution
// is confined to the statement and surfaces as an error, so one poisoned
// query cannot take down an embedding process or server.
func (d *Database) ExecStatement(st sqlparse.Statement) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("db: internal error: %v", p)
		}
	}()
	switch s := st.(type) {
	case *sqlparse.Select:
		return d.Query(s)
	case *sqlparse.CreateTable, *sqlparse.DropTable, *sqlparse.CreateMaterializedView,
		*sqlparse.DropMaterializedView, *sqlparse.Insert:
		return d.execMutation(st)
	case *sqlparse.Explain:
		return d.execExplain(s)
	case *sqlparse.Analyze:
		return d.execAnalyze(s)
	case *sqlparse.Begin, *sqlparse.Commit, *sqlparse.Rollback:
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("db: unsupported statement %T", st)
	}
}

// execMutation applies one DML/DDL statement and, when a commit log is
// installed, records it and waits for durability before acknowledging. The
// apply, the log append, and the publish happen under one writer-lock hold —
// log order is publish order — while the durability wait runs after unlock
// so concurrent commits share fsyncs.
func (d *Database) execMutation(st sqlparse.Statement) (*Result, error) {
	res, wait, err := d.applyAndLog(st)
	if err != nil {
		return nil, err
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			// Not durable ⇒ not acknowledged. The batch is published (readers
			// may see it) but was never acknowledged; the owner should stop
			// serving (a real disk death is fatal anyway), and recovery will
			// simply not include this unacknowledged batch.
			return nil, fmt.Errorf("db: commit not durable: %w", werr)
		}
	}
	return res, nil
}

// applyAndLog runs one mutation batch through the copy-on-write protocol:
// derive drafts from the current state, apply, append to the commit log,
// publish. A failed apply or append publishes nothing — readers can never
// observe a half-applied statement, and the in-memory state never runs
// ahead of a log that could not record it.
func (d *Database) applyAndLog(st sqlparse.Statement) (*Result, func() error, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tx := d.newWriteTxn()
	var res *Result
	var err error
	switch s := st.(type) {
	case *sqlparse.CreateTable:
		res, err = execCreateTable(tx, s)
	case *sqlparse.DropTable:
		res, err = d.execDrop(tx, s.Name, s.IfExists, false)
	case *sqlparse.CreateMaterializedView:
		res, err = d.execCreateMatView(tx, s)
	case *sqlparse.DropMaterializedView:
		res, err = d.execDrop(tx, s.Name, s.IfExists, true)
	case *sqlparse.Insert:
		res, err = execInsert(tx, s)
	default:
		err = fmt.Errorf("db: unsupported mutation %T", st)
	}
	if err != nil {
		return nil, nil, err
	}
	var lsn uint64
	var wait func() error
	if d.commitLog != nil {
		var lerr error
		lsn, wait, lerr = d.commitLog.Append([]string{st.SQL()})
		if lerr != nil {
			return nil, nil, fmt.Errorf("db: commit log append: %w", lerr)
		}
	}
	tx.commit(lsn)
	return res, wait, nil
}

func execCreateTable(tx *writeTxn, s *sqlparse.CreateTable) (*Result, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
	}
	def, err := catalog.NewTableDef(s.Name, cols)
	if err != nil {
		return nil, err
	}
	def.PrimaryKey = s.PrimaryKey
	for _, fk := range s.ForeignKeys {
		def.ForeignKeys = append(def.ForeignKeys, catalog.ForeignKey{
			Columns: fk.Columns, RefTable: fk.RefTable, RefColumns: fk.RefColumns,
		})
	}
	if _, err := tx.create(def); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (d *Database) execDrop(tx *writeTxn, name string, ifExists, mustBeView bool) (*Result, error) {
	def, err := d.cat.Lookup(name)
	if err != nil {
		if ifExists {
			return &Result{}, nil
		}
		return nil, err
	}
	if mustBeView && !def.IsView {
		return nil, fmt.Errorf("db: %q is a table, not a materialized view", name)
	}
	if !mustBeView && def.IsView {
		return nil, fmt.Errorf("db: %q is a materialized view; use DROP MATERIALIZED VIEW", name)
	}
	tx.drop(name)
	return &Result{}, nil
}

func execInsert(tx *writeTxn, s *sqlparse.Insert) (*Result, error) {
	t, err := tx.draft(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the column list (or the full schema) to positions.
	targets := make([]int, 0, len(t.Def.Columns))
	if len(s.Columns) == 0 {
		for i := range t.Def.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, name := range s.Columns {
			idx := t.Def.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("db: table %q has no column %q", s.Table, name)
			}
			targets = append(targets, idx)
		}
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(targets) {
			return nil, fmt.Errorf("db: INSERT expects %d values, got %d", len(targets), len(exprRow))
		}
		row := make(types.Row, len(t.Def.Columns))
		for i := range row {
			row[i] = types.Null()
		}
		for i, e := range exprRow {
			v, err := evalConst(e)
			if err != nil {
				return nil, err
			}
			row[targets[i]] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// evalConst evaluates a literal-only expression (INSERT values).
func evalConst(e sqlparse.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Value, nil
	case *sqlparse.Unary:
		if x.Op == "-" {
			v, err := evalConst(x.E)
			if err != nil {
				return types.Value{}, err
			}
			switch v.Kind() {
			case types.KindInt:
				return types.NewInt(-v.Int()), nil
			case types.KindFloat:
				return types.NewFloat(-v.Float()), nil
			}
		}
	}
	return types.Value{}, fmt.Errorf("db: INSERT values must be literals, got %q", e.SQL())
}

func (d *Database) execCreateMatView(tx *writeTxn, s *sqlparse.CreateMaterializedView) (*Result, error) {
	if s.Query.ResultDB {
		return d.createResultDBView(tx, s)
	}
	ec := d.txnCtx(tx)
	ex := d.executor(ec, nil)
	rel, err := ex.Select(s.Query)
	if err != nil {
		return nil, err
	}
	// Honor explicit select-item aliases (the SPJ fast path resolves plain
	// column references and would otherwise drop the AS names, which MVs
	// need for disambiguation).
	if !anyStar(s.Query.Items) && len(s.Query.Items) == len(rel.Cols) {
		for i, item := range s.Query.Items {
			if item.Alias != "" {
				rel.Cols[i].Rel = ""
				rel.Cols[i].Name = item.Alias
			}
		}
	}
	def, err := relationToDef(s.Name, rel)
	if err != nil {
		return nil, err
	}
	def.IsView = true
	t, err := tx.create(def)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rel.Rows...)
	return &Result{Affected: len(rel.Rows)}, nil
}

// createResultDBView materializes a subdatabase view (use case 2 of the
// paper): one materialized view per output relation, named <view>_<alias>.
// The defining query runs inside the write transaction, so it sees the state
// the view is created against.
func (d *Database) createResultDBView(tx *writeTxn, s *sqlparse.CreateMaterializedView) (*Result, error) {
	res, err := d.queryResultDBAt(d.txnCtx(tx), s.Query, ModeRDBRP, nil, nil)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, set := range res.Sets {
		def, err := resultSetToDef(s.Name+"_"+set.Name, set)
		if err != nil {
			return nil, err
		}
		def.IsView = true
		t, err := tx.create(def)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, set.Rows...)
		total += len(set.Rows)
	}
	return &Result{Affected: total, Sets: res.Sets, Stats: res.Stats}, nil
}

// relationToDef derives a table definition from a relation's schema. Output
// column names must be unique; qualify ambiguous select lists with aliases.
func relationToDef(name string, rel *engine.Relation) (*catalog.TableDef, error) {
	cols := make([]catalog.Column, len(rel.Cols))
	for i, c := range rel.Cols {
		kind := c.Kind
		if kind == types.KindNull {
			kind = inferKind(rel, i)
		}
		cols[i] = catalog.Column{Name: c.Name, Type: kind}
	}
	return catalog.NewTableDef(name, cols)
}

func resultSetToDef(name string, set *ResultSet) (*catalog.TableDef, error) {
	cols := make([]catalog.Column, len(set.Columns))
	for i, cn := range set.Columns {
		kind := types.KindText
		for _, r := range set.Rows {
			if !r[i].IsNull() {
				kind = r[i].Kind()
				break
			}
		}
		// Strip any "alias." qualifier for storable column names.
		if dot := strings.LastIndexByte(cn, '.'); dot >= 0 {
			cn = cn[dot+1:]
		}
		cols[i] = catalog.Column{Name: cn, Type: kind}
	}
	return catalog.NewTableDef(name, cols)
}

func anyStar(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Star {
			return true
		}
	}
	return false
}

func inferKind(rel *engine.Relation, col int) types.Kind {
	for _, r := range rel.Rows {
		if !r[col].IsNull() {
			return r[col].Kind()
		}
	}
	return types.KindText
}

// Package db is the user-facing database facade of the reproduction: a
// main-memory DBMS executing SQL text, with materialized views, multi-cursor
// results, and the paper's SELECT RESULTDB extension in both the native
// semi-join variant (Section 4) and the Decompose-on-top-of-a-standard-plan
// variant (Section 6.3).
package db

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"resultdb/internal/cache"
	"resultdb/internal/catalog"
	"resultdb/internal/colstore"
	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/stats"
	"resultdb/internal/storage"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// Strategy selects how SELECT RESULTDB is executed.
type Strategy uint8

const (
	// StrategySemiJoin runs the native RESULTDB-SEMIJOIN algorithm
	// (Algorithm 4): fold cycles, Yannakakis reduction, decompose folds.
	StrategySemiJoin Strategy = iota
	// StrategyDecompose runs the single-table plan and splits the joined
	// result with the Decompose operator (the Section 6.3 baseline).
	StrategyDecompose
)

// Mode selects the subdatabase flavor (Section 6, "Query Types").
type Mode uint8

const (
	// ModeRDB returns exactly the projected attributes A_i per relation
	// (Definition 2.2).
	ModeRDB Mode = iota
	// ModeRDBRP additionally returns the join attributes, producing a
	// relationship-preserving subdatabase (Definition 2.3) from which the
	// single-table result can be reconstructed by a post-join.
	ModeRDBRP
)

// Database is a main-memory relational database. All exported methods are
// safe for concurrent use: statements take a coarse read or write lock, so
// every statement sees a committed state. BEGIN/COMMIT group statements
// syntactically (the engine is single-writer; snapshot isolation across a
// transaction's statements is trivially satisfied in the single-threaded
// benchmark harnesses and is not otherwise enforced).
type Database struct {
	mu     sync.RWMutex
	cat    *catalog.Catalog
	tables map[string]*storage.Table

	// resultCache is the semantic query-result cache (internal/cache): a
	// byte-budgeted LRU keyed by the canonical statement fingerprint and
	// guarded by per-table version counters bumped on every DML/DDL. Always
	// allocated (its version counters must track DML even while serving is
	// off) but consulted only when CoreOptions.ResultCache is set.
	resultCache *cache.Cache[*Result]

	// statsCache lazily builds and caches per-table optimizer statistics
	// (internal/stats), invalidated by the tables' generation counters. It
	// backs ANALYZE and the cost-based planner (CoreOptions.CostBased).
	statsCache *stats.Cache

	// planVerdicts memoizes, per query, whether cost-based planning
	// diverged from the heuristic plan (see plancache.go). Guarded by its
	// own mutex because queries run under d.mu.RLock concurrently.
	planMu       sync.Mutex
	planVerdicts map[string]planVerdict
	planKeys     map[*sqlparse.Select]planKeyMemo

	// commitLog, when set, records every successful mutation statement
	// before it is acknowledged (see CommitLog). Nil when durability is
	// off — the write path then pays one nil check and nothing else, and
	// SELECT-only traffic never touches it at all.
	commitLog CommitLog

	// Strategy and CoreOptions configure RESULTDB execution.
	Strategy    Strategy
	CoreOptions core.Options
	// DPJoinOrder enables the DPsize join-order optimizer for single-table
	// plans (the greedy live-cardinality order is the default).
	DPJoinOrder bool
}

// CommitLog is the durability hook on the write path (implemented by
// internal/durable). Append is called with the database write lock held and
// only after the statements applied successfully, so append order is exactly
// apply order. It returns a wait function making the batch durable; the
// database invokes it after releasing the lock, so concurrent committers'
// fsync waits overlap (group commit) instead of serializing behind the lock.
// A nil wait means the batch is already durable.
type CommitLog interface {
	Append(stmts []string) (wait func() error, err error)
}

// SetCommitLog installs (or, with nil, removes) the durability hook. Call
// before serving traffic; it is not synchronized against in-flight writes.
func (d *Database) SetCommitLog(l CommitLog) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commitLog = l
}

// View runs fn under the database read lock: a stable snapshot against
// concurrent DML, used by the checkpointer to pair a consistent dump with
// the WAL position it covers.
func (d *Database) View(fn func() error) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return fn()
}

// New returns an empty database with the paper-default RESULTDB options. The
// semantic result cache starts disabled unless the RESULTDB_CACHE
// environment variable turns it on (see CacheEnvVar).
func New() *Database {
	d := &Database{
		cat:         catalog.New(),
		tables:      make(map[string]*storage.Table),
		Strategy:    StrategySemiJoin,
		CoreOptions: core.DefaultOptions(),
		resultCache: cache.New[*Result](DefaultCacheBudget),
		statsCache:  stats.NewCache(),
	}
	d.applyCacheEnv()
	d.applyVecEnv()
	d.applyStatsEnv()
	return d
}

// StatsEnvVar toggles cost-based planning at db.New time: "on"/"1"/"true"/
// "yes" enables the statistics-driven planner (root choice, semi-join order,
// adaptive Bloom prefilters, sideways information passing, and join order),
// "off" and friends force the paper's heuristics. Results are byte-identical
// either way; only the plan — and therefore speed — differs.
const StatsEnvVar = "RESULTDB_STATS"

// applyStatsEnv configures cost-based planning from RESULTDB_STATS.
func (d *Database) applyStatsEnv() {
	switch strings.ToLower(strings.TrimSpace(os.Getenv(StatsEnvVar))) {
	case "off", "0", "false", "no":
		d.CoreOptions.CostBased = false
	case "on", "1", "true", "yes":
		d.CoreOptions.CostBased = true
	}
}

// SetCostBased toggles cost-based planning (see StatsEnvVar). Statistics are
// built lazily per table on first use and cached until the table changes;
// ANALYZE pre-builds them eagerly.
func (d *Database) SetCostBased(on bool) { d.CoreOptions.CostBased = on }

// CostBased reports whether cost-based planning is enabled.
func (d *Database) CostBased() bool { return d.CoreOptions.CostBased }

// TableStats returns the (cached, generation-checked) statistics for a table,
// or nil if the table does not exist. Exported for the shell's \stats command.
func (d *Database) TableStats(name string) *stats.Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, err := d.Table(name)
	if err != nil {
		return nil
	}
	return d.statsCache.Of(t)
}

// execAnalyze implements ANALYZE [table]: eagerly (re)build statistics for
// one table or all tables. It is a read-only statement — statistics are a
// cache over committed data, so it takes the read lock and is neither logged
// to the WAL nor a cache-invalidating mutation. Affected reports the number
// of tables analyzed.
func (d *Database) execAnalyze(s *sqlparse.Analyze) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if s.Table != "" {
		t, err := d.Table(s.Table)
		if err != nil {
			return nil, err
		}
		d.statsCache.Of(t)
		return &Result{Affected: 1}, nil
	}
	n := 0
	for _, t := range d.tables {
		d.statsCache.Of(t)
		n++
	}
	return &Result{Affected: n}, nil
}

// VecEnvVar toggles the vectorized (colstore) execution path at db.New time:
// "off"/"0"/"false"/"no" falls back to the row-at-a-time path, anything else
// (or unset) keeps the default from core.DefaultOptions (on). Results are
// bit-identical either way; the variable exists for A/B benchmarking and as
// an escape hatch.
const VecEnvVar = "RESULTDB_VECTORIZED"

// applyVecEnv configures vectorized execution from RESULTDB_VECTORIZED.
func (d *Database) applyVecEnv() {
	switch strings.ToLower(strings.TrimSpace(os.Getenv(VecEnvVar))) {
	case "off", "0", "false", "no":
		d.CoreOptions.Vectorized = false
	case "on", "1", "true", "yes":
		d.CoreOptions.Vectorized = true
	}
}

// ResultSet is one cursor of a result: the minimally invasive API extension
// the paper proposes (Section 7, "API Integration") — a query returns a set
// of cursors instead of exactly one.
type ResultSet struct {
	// Name labels the set; for subdatabase results it is the relation
	// alias, for single-table results "result".
	Name    string
	Columns []string
	Rows    []types.Row
	// Vec, when non-nil, is a columnar view aligned with Rows (same values,
	// same order, one frame column per Columns entry). It is attached by the
	// vectorized execution path and consumed by the columnar wire encoder,
	// which reuses its TEXT dictionaries instead of re-deduplicating strings.
	// Purely an accelerator: Rows alone fully determine the result.
	Vec *colstore.View
}

// WireSize returns the Section 6.1 result-set size in bytes.
func (rs *ResultSet) WireSize() int {
	n := 0
	for _, r := range rs.Rows {
		n += r.WireSize()
	}
	return n
}

// NumRows returns the number of rows.
func (rs *ResultSet) NumRows() int { return len(rs.Rows) }

// Result is the outcome of one statement.
type Result struct {
	// Sets holds one set for single-table queries, one per output relation
	// for RESULTDB queries, and none for DDL/DML.
	Sets []*ResultSet
	// Affected counts inserted rows for INSERT.
	Affected int
	// Stats reports what the native RESULTDB algorithm did, when it ran.
	Stats *core.Stats
	// PostJoinPlan is attached to relationship-preserving (RDBRP) results:
	// the shipped recipe for reconstructing the single-table result
	// client-side (the Section 7 "subdatabase snapshot" extension).
	PostJoinPlan *PostJoinPlan
}

// First returns the first result set (the single-table result), or nil.
func (r *Result) First() *ResultSet {
	if len(r.Sets) == 0 {
		return nil
	}
	return r.Sets[0]
}

// Set returns the result set named name (case-insensitive), or nil.
func (r *Result) Set(name string) *ResultSet {
	for _, s := range r.Sets {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	return nil
}

// WireSize sums the sizes of all result sets.
func (r *Result) WireSize() int {
	n := 0
	for _, s := range r.Sets {
		n += s.WireSize()
	}
	return n
}

// executor builds an engine executor honoring the database's settings.
func (d *Database) executor() *engine.Executor {
	return &engine.Executor{
		Src:         d,
		DPJoinOrder: d.DPJoinOrder,
		Parallelism: d.CoreOptions.Parallelism,
		Vectorized:  d.CoreOptions.Vectorized,
		CostBased:   d.CoreOptions.CostBased,
		StatsOf: func(table string) *stats.Table {
			t, err := d.Table(table)
			if err != nil {
				return nil
			}
			return d.statsCache.Of(t)
		},
	}
}

// executorTraced is executor with an optional tracer attached (nil =
// disabled, identical to executor()).
func (d *Database) executorTraced(tr *trace.Tracer) *engine.Executor {
	ex := d.executor()
	ex.Tracer = tr
	return ex
}

// SetParallelism sets the degree of intra-query parallelism used by joins,
// filters, semi-join reduction, and Decompose: 0 = auto (the
// RESULTDB_PARALLELISM environment variable, else GOMAXPROCS), 1 = serial,
// n > 1 = n workers. Results are identical at any degree.
func (d *Database) SetParallelism(p int) { d.CoreOptions.Parallelism = p }

// SetVectorized toggles the vectorized (colstore) execution path for scans,
// joins, semi-join reduction, the Bloom prefilter, and Decompose. Results are
// bit-identical to the row path; only speed and the `vectorized` trace
// annotation differ.
func (d *Database) SetVectorized(on bool) { d.CoreOptions.Vectorized = on }

// Table implements engine.Source.
func (d *Database) Table(name string) (*storage.Table, error) {
	if t, ok := d.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("db: table %q does not exist", name)
}

// Catalog exposes the schema catalog (read-only use).
func (d *Database) Catalog() *catalog.Catalog { return d.cat }

// CreateTable registers a new table from a definition; used by workload
// generators that bypass SQL for bulk loading.
func (d *Database) CreateTable(def *catalog.TableDef) (*storage.Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.createTableLocked(def)
}

func (d *Database) createTableLocked(def *catalog.TableDef) (*storage.Table, error) {
	if err := d.cat.Create(def); err != nil {
		return nil, err
	}
	t := storage.NewTable(def)
	d.tables[strings.ToLower(def.Name)] = t
	// A re-created table is a different table: any cached result computed
	// against a previous incarnation (e.g. before a DROP) must not survive.
	d.bumpTables(def.Name)
	return t, nil
}

// Exec parses and executes a single SQL statement.
func (d *Database) Exec(sql string) (*Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(*sqlparse.Select); ok {
		sel.Src = sql
	}
	return d.ExecStatement(st)
}

// ExecScript executes a semicolon-separated script, returning one result per
// statement. Execution stops at the first error.
func (d *Database) ExecScript(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := d.ExecStatement(st)
		if err != nil {
			return out, fmt.Errorf("db: statement %q: %w", st.SQL(), err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecStatement executes a parsed statement. A panic anywhere in execution
// is confined to the statement and surfaces as an error, so one poisoned
// query cannot take down an embedding process or server.
func (d *Database) ExecStatement(st sqlparse.Statement) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("db: internal error: %v", p)
		}
	}()
	switch s := st.(type) {
	case *sqlparse.Select:
		return d.Query(s)
	case *sqlparse.CreateTable, *sqlparse.DropTable, *sqlparse.CreateMaterializedView,
		*sqlparse.DropMaterializedView, *sqlparse.Insert:
		return d.execMutation(st)
	case *sqlparse.Explain:
		return d.execExplain(s)
	case *sqlparse.Analyze:
		return d.execAnalyze(s)
	case *sqlparse.Begin, *sqlparse.Commit, *sqlparse.Rollback:
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("db: unsupported statement %T", st)
	}
}

// execMutation applies one DML/DDL statement and, when a commit log is
// installed, records it and waits for durability before acknowledging. The
// apply and the log append happen under one write-lock hold — log order is
// apply order — while the durability wait runs after unlock so concurrent
// commits share fsyncs.
func (d *Database) execMutation(st sqlparse.Statement) (*Result, error) {
	res, wait, err := d.applyAndLog(st)
	if err != nil {
		return nil, err
	}
	if wait != nil {
		if werr := wait(); werr != nil {
			// Not durable ⇒ not acknowledged. In-memory state is ahead of
			// the log at this point; the owner should stop serving (a real
			// disk death is fatal anyway), and recovery will simply not
			// include this unacknowledged batch.
			return nil, fmt.Errorf("db: commit not durable: %w", werr)
		}
	}
	return res, nil
}

func (d *Database) applyAndLog(st sqlparse.Statement) (*Result, func() error, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var res *Result
	var err error
	switch s := st.(type) {
	case *sqlparse.CreateTable:
		res, err = d.execCreateTableLocked(s)
	case *sqlparse.DropTable:
		res, err = d.execDropLocked(s.Name, s.IfExists, false)
	case *sqlparse.CreateMaterializedView:
		res, err = d.execCreateMatViewLocked(s)
	case *sqlparse.DropMaterializedView:
		res, err = d.execDropLocked(s.Name, s.IfExists, true)
	case *sqlparse.Insert:
		res, err = d.execInsertLocked(s)
	default:
		err = fmt.Errorf("db: unsupported mutation %T", st)
	}
	if err != nil || d.commitLog == nil {
		return res, nil, err
	}
	wait, lerr := d.commitLog.Append([]string{st.SQL()})
	if lerr != nil {
		return nil, nil, fmt.Errorf("db: commit log append: %w", lerr)
	}
	return res, wait, nil
}

func (d *Database) execCreateTableLocked(s *sqlparse.CreateTable) (*Result, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
	}
	def, err := catalog.NewTableDef(s.Name, cols)
	if err != nil {
		return nil, err
	}
	def.PrimaryKey = s.PrimaryKey
	for _, fk := range s.ForeignKeys {
		def.ForeignKeys = append(def.ForeignKeys, catalog.ForeignKey{
			Columns: fk.Columns, RefTable: fk.RefTable, RefColumns: fk.RefColumns,
		})
	}
	if _, err := d.createTableLocked(def); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (d *Database) execDropLocked(name string, ifExists, mustBeView bool) (*Result, error) {
	def, err := d.cat.Lookup(name)
	if err != nil {
		if ifExists {
			return &Result{}, nil
		}
		return nil, err
	}
	if mustBeView && !def.IsView {
		return nil, fmt.Errorf("db: %q is a table, not a materialized view", name)
	}
	if !mustBeView && def.IsView {
		return nil, fmt.Errorf("db: %q is a materialized view; use DROP MATERIALIZED VIEW", name)
	}
	if err := d.cat.Drop(name); err != nil {
		return nil, err
	}
	if t, ok := d.tables[strings.ToLower(name)]; ok {
		d.statsCache.Forget(t)
	}
	delete(d.tables, strings.ToLower(name))
	d.bumpTables(name)
	return &Result{}, nil
}

func (d *Database) execInsertLocked(s *sqlparse.Insert) (*Result, error) {
	t, err := d.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the column list (or the full schema) to positions.
	targets := make([]int, 0, len(t.Def.Columns))
	if len(s.Columns) == 0 {
		for i := range t.Def.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, name := range s.Columns {
			idx := t.Def.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("db: table %q has no column %q", s.Table, name)
			}
			targets = append(targets, idx)
		}
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(targets) {
			return nil, fmt.Errorf("db: INSERT expects %d values, got %d", len(targets), len(exprRow))
		}
		row := make(types.Row, len(t.Def.Columns))
		for i := range row {
			row[i] = types.Null()
		}
		for i, e := range exprRow {
			v, err := evalConst(e)
			if err != nil {
				return nil, err
			}
			row[targets[i]] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	if n > 0 {
		d.bumpTables(s.Table)
	}
	return &Result{Affected: n}, nil
}

// evalConst evaluates a literal-only expression (INSERT values).
func evalConst(e sqlparse.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Value, nil
	case *sqlparse.Unary:
		if x.Op == "-" {
			v, err := evalConst(x.E)
			if err != nil {
				return types.Value{}, err
			}
			switch v.Kind() {
			case types.KindInt:
				return types.NewInt(-v.Int()), nil
			case types.KindFloat:
				return types.NewFloat(-v.Float()), nil
			}
		}
	}
	return types.Value{}, fmt.Errorf("db: INSERT values must be literals, got %q", e.SQL())
}

func (d *Database) execCreateMatViewLocked(s *sqlparse.CreateMaterializedView) (*Result, error) {
	if s.Query.ResultDB {
		return d.createResultDBView(s)
	}
	ex := d.executor()
	rel, err := ex.Select(s.Query)
	if err != nil {
		return nil, err
	}
	// Honor explicit select-item aliases (the SPJ fast path resolves plain
	// column references and would otherwise drop the AS names, which MVs
	// need for disambiguation).
	if !anyStar(s.Query.Items) && len(s.Query.Items) == len(rel.Cols) {
		for i, item := range s.Query.Items {
			if item.Alias != "" {
				rel.Cols[i].Rel = ""
				rel.Cols[i].Name = item.Alias
			}
		}
	}
	def, err := relationToDef(s.Name, rel)
	if err != nil {
		return nil, err
	}
	def.IsView = true
	t, err := d.createTableLocked(def)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rel.Rows...)
	return &Result{Affected: len(rel.Rows)}, nil
}

// createResultDBView materializes a subdatabase view (use case 2 of the
// paper): one materialized view per output relation, named <view>_<alias>.
func (d *Database) createResultDBView(s *sqlparse.CreateMaterializedView) (*Result, error) {
	res, err := d.queryResultDBLocked(s.Query, ModeRDBRP, nil, nil)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, set := range res.Sets {
		def, err := resultSetToDef(s.Name+"_"+set.Name, set)
		if err != nil {
			return nil, err
		}
		def.IsView = true
		t, err := d.createTableLocked(def)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, set.Rows...)
		total += len(set.Rows)
	}
	return &Result{Affected: total, Sets: res.Sets, Stats: res.Stats}, nil
}

// relationToDef derives a table definition from a relation's schema. Output
// column names must be unique; qualify ambiguous select lists with aliases.
func relationToDef(name string, rel *engine.Relation) (*catalog.TableDef, error) {
	cols := make([]catalog.Column, len(rel.Cols))
	for i, c := range rel.Cols {
		kind := c.Kind
		if kind == types.KindNull {
			kind = inferKind(rel, i)
		}
		cols[i] = catalog.Column{Name: c.Name, Type: kind}
	}
	return catalog.NewTableDef(name, cols)
}

func resultSetToDef(name string, set *ResultSet) (*catalog.TableDef, error) {
	cols := make([]catalog.Column, len(set.Columns))
	for i, cn := range set.Columns {
		kind := types.KindText
		for _, r := range set.Rows {
			if !r[i].IsNull() {
				kind = r[i].Kind()
				break
			}
		}
		// Strip any "alias." qualifier for storable column names.
		if dot := strings.LastIndexByte(cn, '.'); dot >= 0 {
			cn = cn[dot+1:]
		}
		cols[i] = catalog.Column{Name: cn, Type: kind}
	}
	return catalog.NewTableDef(name, cols)
}

func anyStar(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Star {
			return true
		}
	}
	return false
}

func inferKind(rel *engine.Relation, col int) types.Kind {
	for _, r := range rel.Rows {
		if !r[col].IsNull() {
			return r[col].Kind()
		}
	}
	return types.KindText
}

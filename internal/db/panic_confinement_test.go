package db

import (
	"strings"
	"testing"
)

// A panic escaping from streaming callbacks (or anything below ExecStream /
// ExecStatement) must surface as a statement error, not crash the process:
// the wire server runs arbitrary client statements on shared goroutines.

func panicTestDB(t *testing.T) *Database {
	t.Helper()
	d := New()
	if _, err := d.ExecScript(`
CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
INSERT INTO t VALUES (1, 'a'), (2, 'b');`); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExecStreamConfinesBeginPanic(t *testing.T) {
	d := panicTestDB(t)
	_, err := d.ExecStream("SELECT id, v FROM t",
		func(StreamMeta) error { panic("consumer exploded in begin") },
		func(*ResultSet) error { return nil })
	if err == nil {
		t.Fatal("panicking begin callback returned nil error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("panic surfaced as %q, want an internal-error statement error", err)
	}
	// The database is still usable afterwards.
	if _, err := d.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("database unusable after confined panic: %v", err)
	}
}

func TestExecStreamConfinesEmitPanic(t *testing.T) {
	d := panicTestDB(t)
	_, err := d.ExecStream("SELECT id, v FROM t",
		func(StreamMeta) error { return nil },
		func(*ResultSet) error { panic("consumer exploded in emit") })
	if err == nil {
		t.Fatal("panicking emit callback returned nil error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("panic surfaced as %q, want an internal-error statement error", err)
	}
	if _, err := d.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("database unusable after confined panic: %v", err)
	}
}

package db

import (
	"os"
	"strings"

	"resultdb/internal/cache"
	"resultdb/internal/catalog"
	"resultdb/internal/core"
	"resultdb/internal/parallel"
	"resultdb/internal/stats"
)

// Config collects every construction-time knob of a Database in one value,
// replacing the sprawl of ad-hoc setters (SetParallelism, SetVectorized,
// SetCostBased, EnableCache, SetCommitLog) that grew with the engine. Build
// one with DefaultConfig, optionally layer the RESULTDB_* environment over
// it with FromEnv, adjust fields, and pass it to Open:
//
//	d := db.Open(db.DefaultConfig().FromEnv())
//
// db.New() is exactly that one-liner. The zero Config is usable but turns
// everything off (serial, row-at-a-time, heuristic planning, no cache);
// DefaultConfig is the paper-default starting point.
//
// The deprecated setters remain as thin wrappers for existing embedders,
// with the same caveat they always had, now documented: they are not
// synchronized against in-flight statements, so call them at setup time or
// between statements.
type Config struct {
	// Strategy selects the SELECT RESULTDB execution strategy
	// (StrategySemiJoin, the paper's Algorithm 4, is the default).
	Strategy Strategy
	// Parallelism is the intra-query parallelism degree: 0 = auto
	// (RESULTDB_PARALLELISM, else GOMAXPROCS), 1 = serial, n > 1 = n
	// workers. Results are identical at any degree.
	Parallelism int
	// Vectorized runs execution on the colstore columnar path. Results are
	// bit-identical to the row path; only speed differs.
	Vectorized bool
	// CostBased switches planning to the statistics-driven cost model.
	// Results are byte-identical to the heuristic plan; only speed differs.
	CostBased bool
	// DPJoinOrder enables the DPsize join-order optimizer for single-table
	// plans (default: greedy live-cardinality ordering).
	DPJoinOrder bool
	// CacheEnabled turns the semantic result cache on.
	CacheEnabled bool
	// CacheBudget is the result cache's byte budget (0 = DefaultCacheBudget).
	// Meaningful only with CacheEnabled.
	CacheBudget int64
	// CommitLog, when non-nil, is installed as the durability hook (the
	// equivalent of SetCommitLog at construction time). internal/durable
	// installs its manager itself after recovery, so most callers leave
	// this nil.
	CommitLog CommitLog
}

// Environment variables read by Config.FromEnv (and therefore by db.New).
// All RESULTDB_* parsing lives in this file.
const (
	// CacheEnvVar configures the result cache:
	//
	//	RESULTDB_CACHE=on          enable with the default budget
	//	RESULTDB_CACHE=256MB       enable with a 256 MB budget (KB/MB/GB/KiB/...)
	//	RESULTDB_CACHE=1048576     enable with a byte budget
	//	RESULTDB_CACHE=off         disable (the default when unset)
	CacheEnvVar = "RESULTDB_CACHE"

	// VecEnvVar toggles the vectorized (colstore) execution path:
	// "off"/"0"/"false"/"no" falls back to the row-at-a-time path, anything
	// else (or unset) keeps the default (on). Results are bit-identical
	// either way; the variable exists for A/B benchmarking and as an escape
	// hatch.
	VecEnvVar = "RESULTDB_VECTORIZED"

	// StatsEnvVar toggles cost-based planning: "on"/"1"/"true"/"yes"
	// enables the statistics-driven planner (root choice, semi-join order,
	// adaptive Bloom prefilters, sideways information passing, and join
	// order), "off" and friends force the paper's heuristics. Results are
	// byte-identical either way; only the plan — and therefore speed —
	// differs.
	StatsEnvVar = "RESULTDB_STATS"

	// ParallelismEnvVar overrides the auto parallelism degree; it is also
	// honored lazily by internal/parallel when Parallelism is left at 0.
	ParallelismEnvVar = parallel.EnvVar
)

// DefaultConfig returns the paper-default configuration: semi-join strategy,
// auto parallelism, vectorized execution, heuristic planning, cache off.
func DefaultConfig() Config {
	opts := core.DefaultOptions()
	return Config{
		Strategy:    StrategySemiJoin,
		Parallelism: opts.Parallelism,
		Vectorized:  opts.Vectorized,
		CostBased:   opts.CostBased,
		CacheBudget: DefaultCacheBudget,
	}
}

// FromEnv returns a copy of c with the RESULTDB_* environment variables
// applied on top: RESULTDB_CACHE, RESULTDB_VECTORIZED, RESULTDB_STATS, and
// RESULTDB_PARALLELISM. Unset or unparsable variables leave the receiver's
// values untouched.
func (c Config) FromEnv() Config {
	switch envToggle(CacheEnvVar) {
	case envOn:
		c.CacheEnabled = true
		c.CacheBudget = DefaultCacheBudget
	case envOff:
		c.CacheEnabled = false
	case envOther:
		if budget, err := ParseByteSize(os.Getenv(CacheEnvVar)); err == nil && budget > 0 {
			c.CacheEnabled = true
			c.CacheBudget = budget
		}
	}
	switch envToggle(VecEnvVar) {
	case envOn:
		c.Vectorized = true
	case envOff:
		c.Vectorized = false
	}
	switch envToggle(StatsEnvVar) {
	case envOn:
		c.CostBased = true
	case envOff:
		c.CostBased = false
	}
	if p := parallel.EnvDegree(); p > 0 && c.Parallelism == 0 {
		c.Parallelism = p
	}
	return c
}

type envState uint8

const (
	envUnset envState = iota
	envOn
	envOff
	envOther
)

// envToggle classifies a boolean-ish environment variable.
func envToggle(name string) envState {
	switch strings.ToLower(strings.TrimSpace(os.Getenv(name))) {
	case "":
		return envUnset
	case "on", "1", "true", "yes":
		return envOn
	case "off", "0", "false", "no":
		return envOff
	default:
		return envOther
	}
}

// Open constructs a Database from a Config. This is the one construction
// path; New is Open over DefaultConfig().FromEnv().
func Open(cfg Config) *Database {
	d := &Database{
		cat:         catalog.New(),
		Strategy:    cfg.Strategy,
		CoreOptions: core.DefaultOptions(),
		resultCache: cache.New[*Result](DefaultCacheBudget),
		statsCache:  stats.NewCache(),
		DPJoinOrder: cfg.DPJoinOrder,
		commitLog:   cfg.CommitLog,
	}
	d.state.Store(emptyState())
	d.CoreOptions.Parallelism = cfg.Parallelism
	d.CoreOptions.Vectorized = cfg.Vectorized
	d.CoreOptions.CostBased = cfg.CostBased
	if cfg.CacheEnabled {
		budget := cfg.CacheBudget
		if budget <= 0 {
			budget = DefaultCacheBudget
		}
		d.CoreOptions.ResultCache = true
		d.CoreOptions.ResultCacheBudget = budget
		d.resultCache.SetBudget(budget)
	}
	return d
}

// New returns an empty database with the paper-default RESULTDB options,
// honoring the RESULTDB_* environment variables (see Config.FromEnv).
func New() *Database {
	return Open(DefaultConfig().FromEnv())
}

// SetParallelism sets the degree of intra-query parallelism used by joins,
// filters, semi-join reduction, and Decompose.
//
// Deprecated: set Config.Parallelism at Open time (or Session.CoreOptions
// per connection). Not synchronized against in-flight statements.
func (d *Database) SetParallelism(p int) { d.CoreOptions.Parallelism = p }

// SetVectorized toggles the vectorized (colstore) execution path. Results
// are bit-identical to the row path.
//
// Deprecated: set Config.Vectorized at Open time (or Session.CoreOptions
// per connection). Not synchronized against in-flight statements.
func (d *Database) SetVectorized(on bool) { d.CoreOptions.Vectorized = on }

// SetCostBased toggles cost-based planning (see StatsEnvVar). Statistics are
// built lazily per table on first use and cached until the table changes;
// ANALYZE pre-builds them eagerly.
//
// Deprecated: set Config.CostBased at Open time (or Session.CoreOptions per
// connection). Not synchronized against in-flight statements.
func (d *Database) SetCostBased(on bool) { d.CoreOptions.CostBased = on }

// CostBased reports whether cost-based planning is enabled.
func (d *Database) CostBased() bool { return d.CoreOptions.CostBased }

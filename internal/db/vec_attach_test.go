package db

import "testing"

// TestVectorizedResultSetsCarryViews checks the wire encoder's fast-path
// precondition: vectorized RESULTDB executions attach an aligned colstore
// view to their result sets (same length, one frame column per output
// column), which is what lets the v2 encoder reuse scan-time dictionaries.
func TestVectorizedResultSetsCarryViews(t *testing.T) {
	d := New()
	d.SetVectorized(true)
	if _, err := d.ExecScript(`
CREATE TABLE a (id INT PRIMARY KEY, name TEXT);
CREATE TABLE b (id INT PRIMARY KEY, a_id INT, v FLOAT);
INSERT INTO a VALUES (1, 'x'), (2, 'y'), (3, 'z');
INSERT INTO b VALUES (10, 1, 0.5), (11, 1, 1.5), (12, 3, 2.5);`); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT RESULTDB a.name, b.v FROM a AS a, b AS b WHERE a.id = b.a_id")
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range res.Sets {
		if set.Vec == nil {
			t.Errorf("set %q has no colstore view attached", set.Name)
			continue
		}
		if set.Vec.Len() != len(set.Rows) {
			t.Errorf("set %q: view length %d != %d rows", set.Name, set.Vec.Len(), len(set.Rows))
		}
		if set.Vec.Frame.NumCols() != len(set.Columns) {
			t.Errorf("set %q: view has %d columns, set has %d", set.Name, set.Vec.Frame.NumCols(), len(set.Columns))
		}
		// Spot-check alignment: view values must equal the row values.
		for i := 0; i < set.Vec.Len(); i++ {
			for j := 0; j < len(set.Columns); j++ {
				if got, want := set.Vec.Frame.Col(j).Value(set.Vec.Index(i)), set.Rows[i][j]; got != want {
					t.Fatalf("set %q cell (%d,%d): view %v != row %v", set.Name, i, j, got, want)
				}
			}
		}
	}
}

package db

import (
	"testing"

	"resultdb/internal/core"
)

func TestDefaultConfigMatchesCoreDefaults(t *testing.T) {
	cfg := DefaultConfig()
	opts := core.DefaultOptions()
	if cfg.Strategy != StrategySemiJoin {
		t.Errorf("Strategy = %v, want semi-join", cfg.Strategy)
	}
	if cfg.Parallelism != opts.Parallelism || cfg.Vectorized != opts.Vectorized || cfg.CostBased != opts.CostBased {
		t.Errorf("engine knobs diverge from core defaults: %+v vs %+v", cfg, opts)
	}
	if cfg.CacheEnabled {
		t.Error("cache must default off")
	}
	if cfg.CacheBudget != DefaultCacheBudget {
		t.Errorf("CacheBudget = %d, want default %d", cfg.CacheBudget, DefaultCacheBudget)
	}
}

func TestConfigFromEnv(t *testing.T) {
	t.Run("cache toggle and budget", func(t *testing.T) {
		t.Setenv(CacheEnvVar, "on")
		if cfg := DefaultConfig().FromEnv(); !cfg.CacheEnabled || cfg.CacheBudget != DefaultCacheBudget {
			t.Errorf("RESULTDB_CACHE=on: %+v", cfg)
		}
		t.Setenv(CacheEnvVar, "32MiB")
		if cfg := DefaultConfig().FromEnv(); !cfg.CacheEnabled || cfg.CacheBudget != 32<<20 {
			t.Errorf("RESULTDB_CACHE=32MiB: enabled=%v budget=%d", cfg.CacheEnabled, cfg.CacheBudget)
		}
		t.Setenv(CacheEnvVar, "off")
		if cfg := DefaultConfig().FromEnv(); cfg.CacheEnabled {
			t.Error("RESULTDB_CACHE=off left the cache on")
		}
		t.Setenv(CacheEnvVar, "certainly not a size")
		if cfg := DefaultConfig().FromEnv(); cfg.CacheEnabled {
			t.Error("unparsable RESULTDB_CACHE enabled the cache")
		}
	})
	t.Run("vectorized and stats toggles", func(t *testing.T) {
		t.Setenv(VecEnvVar, "off")
		t.Setenv(StatsEnvVar, "on")
		cfg := DefaultConfig().FromEnv()
		if cfg.Vectorized {
			t.Error("RESULTDB_VECTORIZED=off ignored")
		}
		if !cfg.CostBased {
			t.Error("RESULTDB_STATS=on ignored")
		}
	})
	t.Run("parallelism fills only the auto value", func(t *testing.T) {
		t.Setenv(ParallelismEnvVar, "3")
		if cfg := DefaultConfig().FromEnv(); cfg.Parallelism != 3 {
			t.Errorf("Parallelism = %d, want 3 from env", cfg.Parallelism)
		}
		base := DefaultConfig()
		base.Parallelism = 2
		if cfg := base.FromEnv(); cfg.Parallelism != 2 {
			t.Errorf("explicit Parallelism overridden by env: %d", cfg.Parallelism)
		}
	})
	t.Run("unset env is a no-op", func(t *testing.T) {
		t.Setenv(CacheEnvVar, "")
		t.Setenv(VecEnvVar, "")
		t.Setenv(StatsEnvVar, "")
		t.Setenv(ParallelismEnvVar, "")
		if got, want := DefaultConfig().FromEnv(), DefaultConfig(); got != want {
			t.Errorf("FromEnv with empty env changed the config: %+v vs %+v", got, want)
		}
	})
}

func TestOpenWiresConfig(t *testing.T) {
	cfg := Config{
		Strategy:     StrategyDecompose,
		Parallelism:  5,
		Vectorized:   true,
		CostBased:    true,
		DPJoinOrder:  true,
		CacheEnabled: true,
		CacheBudget:  123456,
	}
	d := Open(cfg)
	if d.Strategy != StrategyDecompose || !d.DPJoinOrder {
		t.Error("strategy knobs not wired")
	}
	if d.CoreOptions.Parallelism != 5 || !d.CoreOptions.Vectorized || !d.CoreOptions.CostBased {
		t.Errorf("core options not wired: %+v", d.CoreOptions)
	}
	if !d.CacheEnabled() {
		t.Error("cache not enabled")
	}
	if got := d.CacheStats().Budget; got != 123456 {
		t.Errorf("cache budget = %d, want 123456", got)
	}
	// CacheEnabled with a zero budget falls back to the default.
	d2 := Open(Config{CacheEnabled: true})
	if got := d2.CacheStats().Budget; got != DefaultCacheBudget {
		t.Errorf("zero budget = %d, want default %d", got, DefaultCacheBudget)
	}
	// The zero config is usable: everything off, statements still execute.
	d3 := Open(Config{})
	if d3.CacheEnabled() || d3.CoreOptions.Vectorized || d3.CoreOptions.CostBased {
		t.Error("zero config did not turn everything off")
	}
	if _, err := d3.Exec("CREATE TABLE z (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
}

// The deprecated setters must keep working as thin wrappers over the fields.
func TestDeprecatedSettersStillWork(t *testing.T) {
	d := Open(DefaultConfig())
	d.SetParallelism(9)
	d.SetVectorized(false)
	d.SetCostBased(true)
	if d.CoreOptions.Parallelism != 9 || d.CoreOptions.Vectorized || !d.CoreOptions.CostBased || !d.CostBased() {
		t.Errorf("deprecated setters broken: %+v", d.CoreOptions)
	}
	d.EnableCache(1 << 20)
	if !d.CacheEnabled() || d.CacheStats().Budget != 1<<20 {
		t.Error("EnableCache wrapper broken")
	}
	d.DisableCache()
	if d.CacheEnabled() {
		t.Error("DisableCache wrapper broken")
	}
}

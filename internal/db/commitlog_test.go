package db

import (
	"errors"
	"strings"
	"testing"

	"resultdb/internal/sqlparse"
)

func mustParse(t *testing.T, sql string) sqlparse.Statement {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fakeLog records Append calls and counts wait invocations.
type fakeLog struct {
	batches [][]string
	waits   int
	waitErr error
}

func (f *fakeLog) Append(stmts []string) (uint64, func() error, error) {
	cp := append([]string(nil), stmts...)
	f.batches = append(f.batches, cp)
	return uint64(len(f.batches)), func() error {
		f.waits++
		return f.waitErr
	}, nil
}

func TestCommitLogRecordsMutations(t *testing.T) {
	d := New()
	log := &fakeLog{}
	d.SetCommitLog(log)
	script := []string{
		"CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)",
		"INSERT INTO t VALUES (1, 'a'), (2, 'b')",
		"CREATE MATERIALIZED VIEW mv AS SELECT t.name FROM t AS t",
		"DROP MATERIALIZED VIEW mv",
		"DROP TABLE t",
	}
	for _, sql := range script {
		if _, err := d.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if len(log.batches) != len(script) {
		t.Fatalf("logged %d batches, want %d", len(log.batches), len(script))
	}
	// The log carries the canonical re-rendering of each statement (which is
	// what replay re-parses), not the raw input text.
	for i, sql := range script {
		want := mustParse(t, sql).SQL()
		if len(log.batches[i]) != 1 || !strings.EqualFold(log.batches[i][0], want) {
			t.Fatalf("batch %d = %v, want %q", i, log.batches[i], want)
		}
	}
	if log.waits != len(script) {
		t.Fatalf("waits = %d, want %d", log.waits, len(script))
	}
}

func TestCommitLogSkipsReadsAndFailures(t *testing.T) {
	d := New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	log := &fakeLog{}
	d.SetCommitLog(log)
	// Reads never touch the log.
	if _, err := d.QuerySQL("SELECT t.id FROM t AS t"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("EXPLAIN SELECT t.id FROM t AS t"); err != nil {
		t.Fatal(err)
	}
	// Failed mutations are not logged (replay must not re-fail them).
	if _, err := d.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	if _, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if len(log.batches) != 0 {
		t.Fatalf("logged %v, want nothing", log.batches)
	}
}

func TestCommitLogWaitErrorBlocksAck(t *testing.T) {
	d := New()
	if _, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("disk gone")
	d.SetCommitLog(&fakeLog{waitErr: sentinel})
	_, err := d.Exec("INSERT INTO t VALUES (1)")
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

// TestWritePathAllocFreeWhenOff pins the acceptance criterion that the hook
// costs nothing with durability off: the same INSERT allocates no more with
// the (nil) hook consulted than the statement itself needs, measured against
// the identical database one commit earlier in git history it would be
// unfair to diff against — so instead we compare logged-off against a
// no-op logged-on run and require the off path to allocate strictly less.
func TestWritePathAllocFreeWhenOff(t *testing.T) {
	build := func(log CommitLog) *Database {
		d := New()
		if _, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
		d.SetCommitLog(log)
		return d
	}
	off := build(nil)
	sqlText := "INSERT INTO t VALUES (1)"
	st := mustParse(t, sqlText)
	offAllocs := testing.AllocsPerRun(200, func() {
		if _, err := off.ExecStatement(st); err != nil {
			t.Fatal(err)
		}
	})
	on := build(&fakeLog{})
	onAllocs := testing.AllocsPerRun(200, func() {
		if _, err := on.ExecStatement(st); err != nil {
			t.Fatal(err)
		}
	})
	// The hook-on path allocates the statement batch and closures; the
	// hook-off path must not pay any of that.
	if offAllocs >= onAllocs {
		t.Fatalf("off-path allocs %.0f not below on-path %.0f", offAllocs, onAllocs)
	}
}

func TestSnapshotSeesCommittedState(t *testing.T) {
	d := New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY);
		INSERT INTO t VALUES (1), (2);
	`); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	tbl, err := snap.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	// The snapshot is frozen: a later commit is invisible to it, and its LSN
	// tracks the published commit position.
	if _, err := d.Exec("INSERT INTO t VALUES (3)"); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || snap.Seq() == d.Snapshot().Seq() {
		t.Fatalf("snapshot moved: rows=%d seq=%d newest=%d", len(tbl.Rows), snap.Seq(), d.Snapshot().Seq())
	}
	if got, err := snap.Table("t"); err != nil || len(got.Rows) != 2 {
		t.Fatalf("pinned read = %d rows, err %v; want 2", len(got.Rows), err)
	}
}

package db

import (
	"strings"
	"testing"
)

func explainLines(t *testing.T, d *Database, sql string) []string {
	t.Helper()
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("explain %q: %v", sql, err)
	}
	set := res.First()
	if set == nil || set.Name != "plan" {
		t.Fatalf("explain result = %+v", res)
	}
	var lines []string
	for _, r := range set.Rows {
		lines = append(lines, r[0].Text())
	}
	return lines
}

func TestExplainSingleTable(t *testing.T) {
	d := paperExample(t)
	lines := explainLines(t, d, "EXPLAIN "+listing1)
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"single-table plan",
		"scan customers AS c  filter: c.state = 'NY'",
		"hash join",
		"project [c.name, p.name, p.category]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainResultDB(t *testing.T) {
	d := paperExample(t)
	lines := explainLines(t, d, "EXPLAIN SELECT RESULTDB"+listing1[len("\nSELECT"):])
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"RESULTDB plan",
		"native semi-join reduction",
		"root:",
		"semi-join",
		"return c",
		"return p",
		"stats:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainResultDBCyclic(t *testing.T) {
	d := paperExample(t)
	lines := explainLines(t, d, `EXPLAIN SELECT RESULTDB a.name, b.name
		FROM customers AS a, customers AS b, orders AS oa, orders AS ob
		WHERE a.id = oa.cid AND b.id = ob.cid AND oa.pid = ob.pid AND a.id = b.id`)
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "cyclic") || !strings.Contains(text, "fold ") {
		t.Errorf("cyclic explain missing fold trace:\n%s", text)
	}
}

func TestExplainDecomposeFallback(t *testing.T) {
	d := paperExample(t)
	lines := explainLines(t, d, `EXPLAIN SELECT RESULTDB c.name, p.name
		FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.id + p.id > 2`)
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "Decompose strategy") {
		t.Errorf("residual explain should use Decompose:\n%s", text)
	}
}

func TestExplainNonSPJ(t *testing.T) {
	d := paperExample(t)
	lines := explainLines(t, d, "EXPLAIN SELECT COUNT(*) FROM orders AS o")
	if !strings.Contains(strings.Join(lines, "\n"), "sequential pipeline") {
		t.Errorf("aggregate explain = %v", lines)
	}
}

func TestExplainRoundTripsThroughRenderer(t *testing.T) {
	d := paperExample(t)
	sql := "EXPLAIN SELECT c.name FROM customers AS c WHERE c.state = 'NY'"
	// The renderer must reproduce parseable EXPLAIN statements.
	res1 := explainLines(t, d, sql)
	res2 := explainLines(t, d, sql)
	if strings.Join(res1, "|") != strings.Join(res2, "|") {
		t.Error("EXPLAIN not deterministic")
	}
}

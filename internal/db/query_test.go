package db

import (
	"strings"
	"testing"

	"resultdb/internal/sqlparse"
)

func TestDDLAndInsertErrors(t *testing.T) {
	d := New()
	if _, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE TABLE t (id INTEGER)"); err == nil {
		t.Error("duplicate CREATE TABLE should fail")
	}
	if _, err := d.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("INSERT into missing table should fail")
	}
	if _, err := d.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := d.Exec("INSERT INTO t (id, nope) VALUES (1, 'x')"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := d.Exec("INSERT INTO t (name, id) VALUES ('x', 1)"); err != nil {
		t.Errorf("reordered column list: %v", err)
	}
	res, err := d.Exec("INSERT INTO t VALUES (2, 'b'), (3, 'c')")
	if err != nil || res.Affected != 2 {
		t.Errorf("multi-row insert = %+v, %v", res, err)
	}
	// NULL into PRIMARY KEY (NOT NULL) column.
	if _, err := d.Exec("INSERT INTO t VALUES (NULL, 'x')"); err == nil {
		t.Error("NULL PK should fail")
	}
	// Negative literals in INSERT.
	if _, err := d.Exec("INSERT INTO t VALUES (-5, 'neg')"); err != nil {
		t.Errorf("negative literal: %v", err)
	}
	// Column refs in VALUES are rejected.
	if _, err := d.Exec("INSERT INTO t VALUES (id, 'x')"); err == nil {
		t.Error("column ref in VALUES should fail")
	}
}

func TestDropSemantics(t *testing.T) {
	d := New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY);
		CREATE MATERIALIZED VIEW mv AS SELECT t.id FROM t AS t;
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("DROP MATERIALIZED VIEW t"); err == nil {
		t.Error("dropping a table as a view should fail")
	}
	if _, err := d.Exec("DROP TABLE mv"); err == nil {
		t.Error("dropping a view as a table should fail")
	}
	if _, err := d.Exec("DROP MATERIALIZED VIEW mv"); err != nil {
		t.Error(err)
	}
	if _, err := d.Exec("DROP TABLE IF EXISTS nothere"); err != nil {
		t.Error("IF EXISTS should swallow missing table")
	}
	if _, err := d.Exec("DROP TABLE nothere"); err == nil {
		t.Error("missing table should fail without IF EXISTS")
	}
	if _, err := d.Exec("DROP TABLE t"); err != nil {
		t.Error(err)
	}
}

func TestMaterializedViewContents(t *testing.T) {
	d := paperExample(t)
	res, err := d.Exec(`CREATE MATERIALIZED VIEW mv AS
		SELECT c.name AS cname, p.name AS pname FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.state = 'NY'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Errorf("mv rows = %d, want 3", res.Affected)
	}
	// The MV is queryable like a table.
	out, err := d.QuerySQL("SELECT DISTINCT mv.cname FROM mv AS mv")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToStrings(out.First().Rows)
	if strings.Join(got, ",") != "custA,custC" {
		t.Errorf("mv query = %v", got)
	}
	// The MV is a snapshot: later inserts don't change it.
	if _, err := d.Exec("INSERT INTO orders VALUES (2, 3)"); err != nil {
		t.Fatal(err)
	}
	out2, _ := d.QuerySQL("SELECT COUNT(*) FROM mv AS mv")
	if out2.First().Rows[0][0].Int() != 3 {
		t.Error("materialized view is not a snapshot")
	}
}

func TestResultDBMaterializedView(t *testing.T) {
	d := paperExample(t)
	res, err := d.Exec("CREATE MATERIALIZED VIEW sub AS SELECT RESULTDB c.name, p.name FROM customers AS c, orders AS o, products AS p WHERE c.id = o.cid AND p.id = o.pid AND c.state = 'NY'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) < 2 {
		t.Fatalf("expected per-relation views, got %d sets", len(res.Sets))
	}
	// Views named sub_<alias> exist and hold the reduced relations.
	names := d.Catalog().Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"sub_c", "sub_o", "sub_p"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing view %s in %s", want, joined)
		}
	}
	out, err := d.QuerySQL("SELECT COUNT(*) FROM sub_c AS v")
	if err != nil {
		t.Fatal(err)
	}
	if out.First().Rows[0][0].Int() != 2 {
		t.Errorf("sub_c rows = %v, want 2 (custA, custC)", out.First().Rows[0][0])
	}
}

func TestResultDBSingleRelation(t *testing.T) {
	d := paperExample(t)
	res, err := d.QuerySQL("SELECT RESULTDB c.name FROM customers AS c WHERE c.state = 'NY'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || res.Sets[0].Name != "c" {
		t.Fatalf("sets = %+v", res.Sets)
	}
	got := rowsToStrings(res.Sets[0].Rows)
	if strings.Join(got, ",") != "custA,custC" {
		t.Errorf("rows = %v", got)
	}
}

func TestResultDBDeduplicates(t *testing.T) {
	// Projection to a non-key column must dedup (set semantics of
	// Definition 2.2).
	d := paperExample(t)
	res, err := d.QuerySQL("SELECT RESULTDB p.category FROM products AS p, orders AS o WHERE p.id = o.pid")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToStrings(res.Sets[0].Rows)
	if strings.Join(got, ",") != "clothing,electronics" {
		t.Errorf("rows = %v", got)
	}
}

func TestResultDBCrossProductFallsBackToDecompose(t *testing.T) {
	d := paperExample(t)
	d.Strategy = StrategySemiJoin
	res, err := d.QuerySQL("SELECT RESULTDB c.name, p.name FROM customers AS c, products AS p WHERE c.state = 'CA' AND p.category = 'clothing'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Error("semi-join stats on a decompose fallback")
	}
	if len(res.Sets) != 2 {
		t.Fatalf("sets = %d", len(res.Sets))
	}
	if got := rowsToStrings(res.Set("c").Rows); strings.Join(got, ",") != "custB" {
		t.Errorf("c = %v", got)
	}
}

func TestResultDBResidualPredicateFallsBack(t *testing.T) {
	d := paperExample(t)
	res, err := d.QuerySQL(`SELECT RESULTDB c.name, p.name FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.id + p.id > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Error("residual queries must use the decompose path")
	}
	// Oracle: decompose of the single-table result.
	single, err := d.QuerySQL(`SELECT c.name, p.name FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.id + p.id > 2`)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range single.First().Rows {
		names[r[0].Text()] = true
	}
	if got := len(res.Set("c").Rows); got != len(names) {
		t.Errorf("c rows = %d, want %d", got, len(names))
	}
}

func TestResultDBRejectsOrderByAndAggregates(t *testing.T) {
	d := paperExample(t)
	if _, err := d.QuerySQL("SELECT RESULTDB c.name FROM customers AS c ORDER BY c.name"); err == nil {
		t.Error("RESULTDB with ORDER BY should fail")
	}
	if _, err := d.QuerySQL("SELECT RESULTDB COUNT(*) FROM customers AS c"); err == nil {
		t.Error("RESULTDB with aggregates should fail (not SPJ)")
	}
	if _, err := d.QuerySQL("SELECT RESULTDB e.storage FROM products AS p LEFT OUTER JOIN electronics AS e ON p.id = e.pid"); err == nil {
		t.Error("RESULTDB with outer join should fail (not SPJ)")
	}
}

func TestResultDBInSubqueryFilter(t *testing.T) {
	// IN-subqueries inside a single relation's filter are pushed down and
	// work with the semi-join path.
	d := paperExample(t)
	res, err := d.QuerySQL(`SELECT RESULTDB c.name FROM customers AS c, orders AS o
		WHERE c.id = o.cid AND c.id IN (SELECT o2.cid FROM orders AS o2 WHERE o2.pid = 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsToStrings(res.Sets[0].Rows); strings.Join(got, ",") != "custB" {
		t.Errorf("rows = %v", got)
	}
}

func TestMultiCursorAPI(t *testing.T) {
	d := paperExample(t)
	res, err := d.QuerySQL(strings.Replace(listing1, "SELECT", "SELECT RESULTDB", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.First() == nil || res.First().Name != "c" {
		t.Errorf("First = %+v", res.First())
	}
	if res.Set("P") == nil {
		t.Error("Set lookup should be case-insensitive")
	}
	if res.Set("zz") != nil {
		t.Error("Set of unknown name should be nil")
	}
	total := 0
	for _, s := range res.Sets {
		total += s.WireSize()
	}
	if res.WireSize() != total {
		t.Error("Result.WireSize must sum set sizes")
	}
}

func TestTransactionStatements(t *testing.T) {
	d := paperExample(t)
	results, err := d.ExecScript(`
		BEGIN TRANSACTION;
		SELECT DISTINCT c.name FROM customers AS c WHERE c.state = 'NY';
		COMMIT;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].First().NumRows() != 2 {
		t.Errorf("query inside tx = %+v", results[1].First())
	}
	// ROLLBACK parses and is accepted (no-op in the single-writer engine).
	if _, err := d.Exec("ROLLBACK"); err != nil {
		t.Error(err)
	}
}

func TestQueryUnknownTableAndColumn(t *testing.T) {
	d := paperExample(t)
	if _, err := d.QuerySQL("SELECT x.a FROM missing AS x"); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := d.QuerySQL("SELECT c.nope FROM customers AS c"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := d.Exec("SELECT RESULTDB c.name FROM customers AS c WHERE c.id IN (SELECT RESULTDB o.cid FROM orders AS o)"); err == nil {
		t.Error("RESULTDB in subquery should fail")
	}
}

func TestStrategiesAgreeOnManyQueries(t *testing.T) {
	// Cross-strategy agreement on a workload with cycles, self-joins and
	// IN subqueries exercised through SQL.
	queries := []string{
		listing1,
		`SELECT c.name FROM customers AS c, orders AS o WHERE c.id = o.cid`,
		`SELECT p.name, c.name FROM customers AS c, orders AS o, products AS p
		 WHERE c.id = o.cid AND p.id = o.pid AND p.category = 'clothing'`,
		`SELECT a.name, b.name FROM customers AS a, customers AS b, orders AS oa, orders AS ob
		 WHERE a.id = oa.cid AND b.id = ob.cid AND oa.pid = ob.pid AND a.id < b.id`,
	}
	for qi, sql := range queries {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		var fingerprints []string
		for _, strat := range []Strategy{StrategySemiJoin, StrategyDecompose} {
			d := paperExample(t)
			d.Strategy = strat
			for _, mode := range []Mode{ModeRDB, ModeRDBRP} {
				res, err := d.QueryResultDB(sel, mode)
				if err != nil {
					t.Fatalf("query %d strategy %d mode %d: %v", qi, strat, mode, err)
				}
				var parts []string
				for _, set := range res.Sets {
					parts = append(parts, set.Name+":"+strings.Join(rowsToStrings(set.Rows), ";"))
				}
				fingerprints = append(fingerprints, strings.Join(parts, "|"))
			}
		}
		if fingerprints[0] != fingerprints[2] || fingerprints[1] != fingerprints[3] {
			t.Errorf("query %d: strategies disagree:\nsemi: %s\ndec:  %s",
				qi, fingerprints[0], fingerprints[2])
		}
	}
}

func TestValuesRoundTripThroughEngine(t *testing.T) {
	d := New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, f DOUBLE, b BOOLEAN, s TEXT);
		INSERT INTO t VALUES (1, 2.5, TRUE, 'x'), (2, -0.5, FALSE, NULL);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := d.QuerySQL("SELECT t.f, t.b, t.s FROM t AS t ORDER BY t.f")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.First().Rows
	if rows[0][0].Float() != -0.5 || rows[0][1].Bool() || !rows[0][2].IsNull() {
		t.Errorf("row0 = %v", rows[0])
	}
	if rows[1][0].Float() != 2.5 || !rows[1][1].Bool() || rows[1][2].Text() != "x" {
		t.Errorf("row1 = %v", rows[1])
	}
}

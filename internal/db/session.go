package db

import (
	"fmt"

	"resultdb/internal/core"
	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
)

// Session is one client's handle on the database — the wire server opens one
// per connection, the shell uses one for the interactive loop — making the
// engine's visibility rules an explicit contract instead of an accident of
// locking:
//
//   - Snapshot isolation per statement: every statement executed through a
//     session runs against one immutable committed state. It can never
//     observe another connection's half-applied batch, no matter how the
//     statements interleave.
//   - Read your own writes: a mutation acknowledged through this session is
//     visible to every later statement of the same session (writes are
//     globally serialized, and the session re-pins after its own commits).
//   - Snapshot isolation across connections: another session's commit
//     becomes visible only at a statement boundary — by default at the next
//     statement (each statement pins the then-newest state), or, between
//     Pin and Unpin, not at all (repeatable reads against one frozen state).
//
// Per-session execution options (Strategy, CoreOptions, DPJoinOrder) start
// as copies of the database's and may be changed freely between the
// session's own statements without racing other connections — this is what
// the wire server's per-connection settings ride on. A Session is not safe
// for concurrent use by multiple goroutines; open one per client. Sessions
// hold no server-side resources and need no close.
type Session struct {
	db *Database
	// pinned, when non-nil, freezes the session's view (Pin/Unpin). When
	// nil, each statement pins the newest committed state.
	pinned *Snapshot

	// Strategy, CoreOptions, and DPJoinOrder are this session's private
	// execution options, seeded from the database's at NewSession.
	Strategy    Strategy
	CoreOptions core.Options
	DPJoinOrder bool
}

// NewSession opens a session whose options start as copies of the
// database-level configuration.
func (d *Database) NewSession() *Session {
	return &Session{
		db:          d,
		Strategy:    d.Strategy,
		CoreOptions: d.CoreOptions,
		DPJoinOrder: d.DPJoinOrder,
	}
}

// DB returns the underlying database.
func (s *Session) DB() *Database { return s.db }

// Snapshot returns the state the session's next read statement would see:
// the pinned snapshot, or the newest committed state.
func (s *Session) Snapshot() *Snapshot {
	if s.pinned != nil {
		return s.pinned
	}
	return s.db.Snapshot()
}

// Pin freezes the session's view at the newest committed state (or keeps
// the current pin): until Unpin, every read statement sees exactly this
// state — repeatable reads. The session's own writes still re-pin, so read
// your own writes survives pinning.
func (s *Session) Pin() *Snapshot {
	if s.pinned == nil {
		s.pinned = s.db.Snapshot()
	}
	return s.pinned
}

// Unpin releases a pinned view; subsequent statements see the newest
// committed state again.
func (s *Session) Unpin() { s.pinned = nil }

// Pinned reports whether the session is holding a frozen view.
func (s *Session) Pinned() bool { return s.pinned != nil }

// ctx builds the execution context for one read statement: the session's
// view plus its private options.
func (s *Session) ctx() execCtx {
	snap := s.Snapshot()
	return execCtx{
		src:         snap,
		snap:        snap,
		opts:        s.CoreOptions,
		strategy:    s.Strategy,
		dpJoinOrder: s.DPJoinOrder,
	}
}

// afterWrite re-pins a frozen session on the newest state so the session's
// own acknowledged write is visible to its next statement (read your own
// writes). Unpinned sessions need nothing: they pick up the newest state —
// which includes the write, because writes are serialized and acknowledged
// only after publish — at the next statement anyway.
func (s *Session) afterWrite() {
	if s.pinned != nil {
		s.pinned = s.db.Snapshot()
	}
}

// Exec parses and executes a single SQL statement through the session.
func (s *Session) Exec(sql string) (*Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(*sqlparse.Select); ok {
		sel.Src = sql
	}
	return s.ExecStatement(st)
}

// ExecStatement executes a parsed statement through the session: reads run
// against the session's view with the session's options; mutations go
// through the database's serialized write path and then refresh the
// session's view. Panics are confined to the statement, as in
// Database.ExecStatement.
func (s *Session) ExecStatement(st sqlparse.Statement) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("db: internal error: %v", p)
		}
	}()
	switch t := st.(type) {
	case *sqlparse.Select:
		return s.db.query(s.ctx(), t, nil)
	case *sqlparse.Explain:
		return s.db.execExplainAt(s.ctx(), t)
	case *sqlparse.Analyze:
		return s.db.execAnalyze(t)
	case *sqlparse.CreateTable, *sqlparse.DropTable, *sqlparse.CreateMaterializedView,
		*sqlparse.DropMaterializedView, *sqlparse.Insert:
		res, err := s.db.execMutation(st)
		if err == nil {
			s.afterWrite()
		}
		return res, err
	case *sqlparse.Begin, *sqlparse.Commit, *sqlparse.Rollback:
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("db: unsupported statement %T", st)
	}
}

// Query executes a SELECT against the session's view.
func (s *Session) Query(sel *sqlparse.Select) (*Result, error) {
	return s.db.query(s.ctx(), sel, nil)
}

// QueryResultDB executes sel with subdatabase semantics in the requested
// mode against the session's view (the session-scoped analogue of
// Database.QueryResultDB).
func (s *Session) QueryResultDB(sel *sqlparse.Select, mode Mode) (*Result, error) {
	return s.db.queryResultDBAt(s.ctx(), sel, mode, nil, nil)
}

// QueryWithTrace executes a SELECT against the session's view with execution
// tracing enabled (see Database.QueryWithTrace).
func (s *Session) QueryWithTrace(sel *sqlparse.Select) (*Result, *trace.Trace, error) {
	ec := s.ctx()
	tr := trace.New(sel.SQL())
	tr.SetParallelism(parallel.Degree(ec.opts.Parallelism))
	tr.SetSnapshot(ec.snap.Seq(), ec.snap.LSN())
	res, err := s.db.query(ec, sel, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, tr.Finish(), nil
}

// ExecStream executes one SQL statement through the session, delivering the
// result incrementally (see Database.ExecStream for the begin/emit
// contract). Reads stream from the session's view; mutations execute
// through the write path, refresh the session's view, and replay their
// result.
func (s *Session) ExecStream(sql string, begin func(StreamMeta) error, emit func(*ResultSet) error) (*Result, error) {
	return s.db.execStreamAt(s.ctx(), s.afterWrite, sql, begin, emit)
}

package db_test

// Trace invariants of the vectorized path: an EXPLAIN ANALYZE observer must
// not be able to distinguish a vectorized execution from a row-path execution
// of the same query except through the `vectorized` span flag (and the
// dictionary-size annotation that rides with it). Concretely: the
// deterministic portion of the trace (CountsFingerprint — ops, labels,
// phases, details, cardinalities, key counts, byte counts, whole-query
// counters) is bit-identical across the two paths, the vectorized trace marks
// at least one span Vec, and the row-path trace marks none.

import (
	"strings"
	"testing"

	"resultdb/internal/workload/job"
)

func TestVectorizedTraceFingerprintMatchesRowPath(t *testing.T) {
	row := loadJOBTrace(t)
	row.SetVectorized(false)
	vec := loadJOBTrace(t)
	vec.SetVectorized(true)

	check := func(name, sql string, resultDB bool) {
		t.Helper()
		_, trRow := tracedQuery(t, row, sql, resultDB)
		_, trVec := tracedQuery(t, vec, sql, resultDB)
		if got, want := trVec.CountsFingerprint(), trRow.CountsFingerprint(); got != want {
			t.Errorf("%s: vectorized trace fingerprint differs from row path\nrow:\n%s\nvec:\n%s",
				name, want, got)
		}
		for i := range trRow.Spans {
			if trRow.Spans[i].Vec {
				t.Errorf("%s: row-path span %d (%s %s) marked vectorized",
					name, i, trRow.Spans[i].Op, trRow.Spans[i].Label)
			}
		}
		anyVec := false
		for i := range trVec.Spans {
			if trVec.Spans[i].Vec {
				anyVec = true
				break
			}
		}
		if !anyVec {
			t.Errorf("%s: vectorized trace has no span marked vectorized", name)
		}
	}

	for _, q := range job.Queries() {
		check(q.Name+"/rdb", q.SQL, true)
		check(q.Name+"/st", q.SQL, false)
	}
}

// TestVectorizedTraceDictAnnotation: vectorized scans of tables with TEXT
// columns report the dictionary size, and the annotation renders inside the
// strippable bracket (so classic EXPLAIN output stays unchanged).
func TestVectorizedTraceDictAnnotation(t *testing.T) {
	d := loadJOBTrace(t)
	d.SetVectorized(true)
	q, err := job.QueryByName("1b")
	if err != nil {
		t.Fatal(err)
	}
	_, tr := tracedQuery(t, d, q.SQL, true)
	found := false
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Op == "scan" && sp.Vec && sp.Dict > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no vectorized scan span carries a dictionary size")
	}
	lines := strings.Join(tr.TreeLines(), "\n")
	if !strings.Contains(lines, "vectorized") {
		t.Fatal("EXPLAIN ANALYZE output does not annotate vectorized operators")
	}
	compact := strings.Join(tr.CompactLines(), "\n")
	if strings.Contains(compact, "vectorized") || strings.Contains(compact, "dict ") {
		t.Fatal("classic EXPLAIN output must not change with vectorization")
	}
}

package db

import (
	"strings"
	"testing"
)

func TestPostJoinPlanAttachedAndExecutable(t *testing.T) {
	d := paperExample(t)
	res, err := d.QuerySQL("SELECT RESULTDB PRESERVING" + listing1[len("\nSELECT"):])
	if err != nil {
		t.Fatal(err)
	}
	if res.PostJoinPlan == nil {
		t.Fatal("RDBRP result must carry a plan")
	}
	if res.PostJoinPlan.Empty() {
		t.Error("plan for a 3-relation query must not be empty")
	}
	if s := res.PostJoinPlan.String(); !strings.Contains(s, "post-join on") {
		t.Errorf("plan String = %q", s)
	}
	set, err := ExecutePostJoinPlan(res)
	if err != nil {
		t.Fatal(err)
	}
	single, err := d.QuerySQL(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumRows() != single.First().NumRows() {
		t.Errorf("plan execution rows = %d, want %d", set.NumRows(), single.First().NumRows())
	}
}

func TestPostJoinPlanAbsentForRDB(t *testing.T) {
	d := paperExample(t)
	res, err := d.QuerySQL(strings.Replace(listing1, "SELECT", "SELECT RESULTDB", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.PostJoinPlan != nil {
		t.Error("plain RESULTDB must not carry a plan")
	}
	if _, err := ExecutePostJoinPlan(res); err == nil {
		t.Error("executing a missing plan should fail")
	}
}

func TestPostJoinPlanNilHelpers(t *testing.T) {
	var p *PostJoinPlan
	if !p.Empty() {
		t.Error("nil plan is empty")
	}
	if p.String() != "<none>" {
		t.Errorf("nil plan String = %q", p.String())
	}
}

func TestDPJoinOrderProducesSameResults(t *testing.T) {
	d := paperExample(t)
	a, err := d.QuerySQL(listing1)
	if err != nil {
		t.Fatal(err)
	}
	d.DPJoinOrder = true
	b, err := d.QuerySQL(listing1)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := rowsToStrings(a.First().Rows), rowsToStrings(b.First().Rows)
	if strings.Join(ga, "\n") != strings.Join(gb, "\n") {
		t.Errorf("DP order changed results:\n%v\n%v", ga, gb)
	}
}

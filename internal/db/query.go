package db

import (
	"errors"
	"fmt"
	"strings"

	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/stats"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// Query executes a SELECT. SELECT RESULTDB returns one result set per output
// relation (Definition 2.2); everything else returns a single-table result.
// The statement runs lock-free against a snapshot pinned at entry.
func (d *Database) Query(sel *sqlparse.Select) (*Result, error) {
	return d.query(d.readCtx(), sel, nil)
}

// QueryWithTrace executes a SELECT with execution tracing enabled and returns
// the result together with the structured trace (per-operator spans with
// actual cardinalities, wall times, and transfer bytes). The result is
// bit-identical to Query's; tracing only observes.
func (d *Database) QueryWithTrace(sel *sqlparse.Select) (*Result, *trace.Trace, error) {
	ec := d.readCtx()
	tr := trace.New(sel.SQL())
	tr.SetParallelism(parallel.Degree(ec.opts.Parallelism))
	tr.SetSnapshot(ec.snap.Seq(), ec.snap.LSN())
	res, err := d.query(ec, sel, tr)
	if err != nil {
		return nil, nil, err
	}
	return res, tr.Finish(), nil
}

// query dispatches a SELECT with an optional tracer (nil = disabled),
// consulting the semantic result cache when enabled:
//
//   - Untraced queries go through the full cache path (lookup, single-flight
//     collapse of identical concurrent misses, fill) in queryCached.
//   - Traced queries (EXPLAIN, EXPLAIN ANALYZE, QueryWithTrace) always
//     execute — a trace without operator spans would be useless — but probe
//     the cache to annotate the plan with the would-be outcome ("cache: hit"
//     or "cache: miss" in the strippable bracket section) and fill it, so
//     EXPLAIN warms the cache for the statement it explains.
//
// All cache traffic is keyed on the snapshot's table versions: an entry is
// served only when it embeds exactly the state this reader pinned, and a
// fill is admitted only when no writer published past the snapshot while
// the query ran (see queryCached).
func (d *Database) query(ec execCtx, sel *sqlparse.Select, tr *trace.Tracer) (*Result, error) {
	if ec.opts.ResultCache && ec.snap != nil {
		if !tr.Enabled() {
			return d.queryCached(ec, sel)
		}
		key := cacheKey(ec, sel)
		if _, ok := d.resultCache.PeekAt(key, sqlparse.Tables(sel), ec.snap.versionOf); ok {
			tr.SetCacheStatus("hit")
		} else {
			tr.SetCacheStatus("miss")
		}
		res, err := d.queryUncached(ec, sel, tr)
		if err == nil {
			d.resultCache.PutAt(key, res, cachedResultBytes(res), sqlparse.Tables(sel), ec.snap.versionOf)
		}
		return res, err
	}
	return d.queryUncached(ec, sel, tr)
}

// queryUncached always executes, bypassing the result cache.
func (d *Database) queryUncached(ec execCtx, sel *sqlparse.Select, tr *trace.Tracer) (*Result, error) {
	if sel.ResultDB {
		mode := ModeRDB
		if sel.Preserving {
			mode = ModeRDBRP
		}
		return d.queryResultDBAt(ec, sel, mode, tr, nil)
	}
	return d.querySingleTableAt(ec, sel, tr, nil)
}

// QuerySQL parses and executes a SELECT given as text.
func (d *Database) QuerySQL(sql string) (*Result, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return d.Query(sel)
}

// QueryResultDB executes sel with subdatabase semantics regardless of the
// RESULTDB keyword, in the requested mode (RDB per Definition 2.2, RDBRP per
// Definition 2.3). This is the programmatic entry the benchmarks use.
func (d *Database) QueryResultDB(sel *sqlparse.Select, mode Mode) (*Result, error) {
	return d.queryResultDBAt(d.readCtx(), sel, mode, nil, nil)
}

func (d *Database) querySingleTableAt(ec execCtx, sel *sqlparse.Select, tr *trace.Tracer, sink *streamSink) (*Result, error) {
	tr.SetMode("single-table")
	ex := d.executor(ec, tr)
	rel, err := ex.Select(sel)
	if err != nil {
		return nil, err
	}
	if err := sink.begin(StreamMeta{NumSets: 1}); err != nil {
		return nil, err
	}
	set := relToSet("result", rel, rel.ColumnNames())
	if sp := tr.Span("output", "result"); sp != nil {
		sp.Phase = "output"
		sp.RowsIn = len(rel.Rows)
		sp.RowsOut = len(set.Rows)
		sp.Bytes = set.WireSize()
		tr.AddRowsOut(len(set.Rows))
		tr.AddBytes(sp.Bytes)
	}
	if err := sink.emit(set); err != nil {
		return nil, err
	}
	return &Result{Sets: []*ResultSet{set}}, nil
}

func (d *Database) queryResultDBAt(ec execCtx, sel *sqlparse.Select, mode Mode, tr *trace.Tracer, sink *streamSink) (*Result, error) {
	if len(sel.OrderBy) > 0 || sel.Limit != nil {
		return nil, fmt.Errorf("db: RESULTDB does not support ORDER BY/LIMIT (which relation would they apply to?)")
	}
	if mode == ModeRDBRP {
		tr.SetMode("resultdb-preserving")
	} else {
		tr.SetMode("resultdb")
	}
	spec, err := engine.AnalyzeSPJ(stripResultDB(sel), ec.src)
	if err != nil {
		return nil, fmt.Errorf("db: RESULTDB requires a select-project-join query: %w", err)
	}
	outputs := spec.OutputRels()
	if mode == ModeRDBRP {
		outputs = relationshipRels(spec)
	}
	tr.SetOutputs(outputs)
	reduced, stats, err := d.reduceSpec(ec, sel, spec, outputs, tr, mode)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: stats}
	if stats != nil {
		tr.SetStats(stats.String())
	}
	if mode == ModeRDBRP {
		res.PostJoinPlan = buildPostJoinPlan(spec, outputs)
	}
	// The set count and the post-join plan are known before any output
	// relation is projected — this is what lets a streaming consumer write
	// the response header first and then ship each relation as it finishes.
	if err := sink.begin(StreamMeta{NumSets: len(outputs), Plan: res.PostJoinPlan, Stats: stats}); err != nil {
		return nil, err
	}
	for _, alias := range outputs {
		var attrs []string
		if mode == ModeRDBRP {
			attrs = core.RelationshipPreservingAttrs(spec, alias)
		} else {
			attrs = dedupAttrs(spec.ProjectionOf(alias))
		}
		rel := reduced[strings.ToLower(alias)]
		set, err := projectSet(alias, rel, attrs, ec.opts.Parallelism)
		if err != nil {
			return nil, err
		}
		if sp := tr.Span("output", alias); sp != nil {
			sp.Phase = "output"
			sp.RowsIn = len(rel.Rows)
			sp.RowsOut = len(set.Rows)
			sp.Bytes = set.WireSize()
			tr.AddRowsOut(len(set.Rows))
			tr.AddBytes(sp.Bytes)
		}
		if err := sink.emit(set); err != nil {
			return nil, err
		}
		res.Sets = append(res.Sets, set)
	}
	return res, nil
}

// relationshipRels lists the relations with non-empty A_i* (Definition 2.3):
// those contributing projected attributes or join attributes, in FROM order.
func relationshipRels(spec *engine.SPJSpec) []string {
	var out []string
	for _, r := range spec.Rels {
		if len(spec.ProjectionOf(r.Alias)) > 0 || len(spec.JoinAttrsOf(r.Alias)) > 0 {
			out = append(out, r.Alias)
		}
	}
	return out
}

// reduceSpec computes fully reduced base relations for the query's output
// relations, honoring the context's strategy. Queries the semi-join
// algorithm cannot handle (cross-relation residual predicates, disconnected
// join graphs) automatically use the Decompose strategy, which is always
// applicable.
func (d *Database) reduceSpec(ec execCtx, sel *sqlparse.Select, spec *engine.SPJSpec, outputs []string, tr *trace.Tracer, mode Mode) (map[string]*engine.Relation, *core.Stats, error) {
	ex := d.executor(ec, tr)
	strategy := ec.strategy
	if len(spec.Residual) > 0 {
		strategy = StrategyDecompose
		tr.Note("cross-relation residual predicates present; using Decompose strategy")
	}
	if strategy == StrategySemiJoin {
		tr.SetStrategy("semijoin")
		tr.Note("strategy: native semi-join reduction")
		rels, err := ex.BaseRelations(spec)
		if err != nil {
			return nil, nil, err
		}
		opts := ec.opts
		opts.Tracer = tr
		verdictKey := ""
		if opts.CostBased {
			switch {
			case tr.Enabled():
				// Traced runs always plan with statistics so the trace
				// shows the cost-based decisions; they bypass the verdict
				// cache in both directions.
				opts.TableStats = d.aliasStats(ec, spec)
			case d.planConfirmedHeuristic(ec.src, d.planKey(sel)+modeKeySuffix(mode), spec):
				// A prior cost-based run of this statement at these table
				// versions produced exactly the heuristic plan; skip the
				// statistics machinery and take that plan directly.
			default:
				verdictKey = d.planKey(sel) + modeKeySuffix(mode)
				opts.TableStats = d.aliasStats(ec, spec)
			}
		}
		reduced, stats, err := core.SemiJoinReduce(spec, rels, outputs, opts)
		if err == nil {
			if verdictKey != "" && stats != nil {
				d.recordPlanVerdict(ec.src, verdictKey, spec, stats.PlanDiverged)
			}
			return reduced, stats, nil
		}
		if !errors.Is(err, core.ErrDisconnected) {
			return nil, nil, err
		}
		// Cross product in the query: fall through to Decompose.
		tr.Note("join graph disconnected (cross product); falling back to Decompose strategy")
	}
	tr.SetStrategy("decompose")
	tr.Note("strategy: single-table plan + Decompose operator")
	joined, err := ex.RunSPJ(spec)
	if err != nil {
		return nil, nil, err
	}
	decompose := core.DecomposeTraced
	if ec.opts.Vectorized {
		decompose = core.DecomposeVecTraced
	}
	reduced, err := decompose(joined, outputs, ec.opts.Parallelism, tr)
	if err != nil {
		return nil, nil, err
	}
	tr.Note(fmt.Sprintf("decompose into %d relations + dedup", len(outputs)))
	return reduced, nil, nil
}

// aliasStats maps each of the query's aliases (lower-cased) to its base
// table's cached statistics, for the cost-based reduction planner. Aliases
// over missing tables (materialized views dropped mid-flight, etc.) are
// simply absent; the estimator treats absent stats conservatively.
func (d *Database) aliasStats(ec execCtx, spec *engine.SPJSpec) map[string]*stats.Table {
	out := make(map[string]*stats.Table, len(spec.Rels))
	for _, r := range spec.Rels {
		t, err := ec.src.Table(r.Table)
		if err != nil {
			continue
		}
		out[strings.ToLower(r.Alias)] = d.statsCache.Of(t)
	}
	return out
}

// PostJoin reconstructs the single-table result from a previously computed
// relationship-preserving subdatabase result (Definition 2.3). sets must
// come from QueryResultDB(sel, ModeRDBRP) of the same query.
func (d *Database) PostJoin(sel *sqlparse.Select, res *Result) (*ResultSet, error) {
	spec, err := engine.AnalyzeSPJ(stripResultDB(sel), d.Snapshot())
	if err != nil {
		return nil, err
	}
	rels := make(map[string]*engine.Relation)
	var preds []engine.JoinPred
	inResult := map[string]bool{}
	for _, set := range res.Sets {
		inResult[strings.ToLower(set.Name)] = true
		rels[strings.ToLower(set.Name)] = setToRelation(set)
	}
	// Only join predicates whose both sides are present can (and need to)
	// be replayed; predicates through non-output relations were already
	// enforced by the reduction.
	for _, p := range spec.JoinPreds {
		if inResult[strings.ToLower(p.LeftRel)] && inResult[strings.ToLower(p.RightRel)] {
			preds = append(preds, p)
		}
	}
	var projection []engine.Attr
	for _, a := range spec.Projection {
		if inResult[strings.ToLower(a.Rel)] {
			projection = append(projection, a)
		}
	}
	rel, err := core.PostJoin(preds, rels, projection)
	if err != nil {
		return nil, err
	}
	return relToSet("postjoin", rel, rel.ColumnNames()), nil
}

// stripResultDB returns sel with the ResultDB flag cleared (shallow copy),
// so the analyzer and single-table executor treat it as an ordinary query.
func stripResultDB(sel *sqlparse.Select) *sqlparse.Select {
	if !sel.ResultDB {
		return sel
	}
	clone := *sel
	clone.ResultDB = false
	return &clone
}

func dedupAttrs(attrs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range attrs {
		key := strings.ToLower(a)
		if !seen[key] {
			seen[key] = true
			out = append(out, a)
		}
	}
	return out
}

// projectSet projects a reduced full-width relation onto the chosen
// attributes and removes duplicates (set semantics of Definition 2.2). Both
// steps run at degree par (0 = auto, 1 = serial) with deterministic output.
func projectSet(alias string, rel *engine.Relation, attrs []string, par int) (*ResultSet, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		idx, err := rel.ColIndex(alias, a)
		if err != nil {
			return nil, err
		}
		cols[i] = idx
	}
	// ProjectDistinctPar dedups on columnar key hashes when the reduced
	// relation still carries its scan's columnar view (vectorized path) and
	// is exactly ProjectPar+DistinctPar otherwise.
	projected := rel.ProjectDistinctPar(cols, par)
	return relToSet(alias, projected, attrs), nil
}

func relToSet(name string, rel *engine.Relation, columns []string) *ResultSet {
	set := &ResultSet{Name: name, Columns: columns, Rows: rel.Rows}
	// Carry the relation's columnar view when it is aligned with the rows
	// (same length, one frame column per output column), so the columnar
	// wire encoder can reuse scan-time dictionaries.
	if rel.Vec != nil && rel.Vec.Len() == len(rel.Rows) && rel.Vec.Frame.NumCols() == len(columns) {
		set.Vec = rel.Vec
	}
	return set
}

// setToRelation rebuilds an alias-qualified relation from a result set so it
// can participate in a post-join.
func setToRelation(set *ResultSet) *engine.Relation {
	rel := &engine.Relation{Cols: make([]engine.ColRef, len(set.Columns))}
	for i, c := range set.Columns {
		kind := types.KindText
		for _, r := range set.Rows {
			if !r[i].IsNull() {
				kind = r[i].Kind()
				break
			}
		}
		rel.Cols[i] = engine.ColRef{Rel: set.Name, Name: c, Kind: kind}
	}
	rel.Rows = set.Rows
	return rel
}

package db

import "testing"

// sessRows counts the rows a session currently sees in table t.
func sessRows(t *testing.T, s *Session, table string) int {
	t.Helper()
	res, err := s.Exec("SELECT " + table + ".id FROM " + table + " AS " + table)
	if err != nil {
		t.Fatal(err)
	}
	return res.First().NumRows()
}

func sessionFixture(t *testing.T) *Database {
	t.Helper()
	d := Open(DefaultConfig())
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO t VALUES (1, 'a'), (2, 'b');
	`); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSessionReadYourOwnWrites(t *testing.T) {
	d := sessionFixture(t)
	s := d.NewSession()
	if got := sessRows(t, s, "t"); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	if got := sessRows(t, s, "t"); got != 3 {
		t.Fatalf("own write invisible: rows = %d, want 3", got)
	}
}

func TestSessionPinFreezesOtherSessionsCommits(t *testing.T) {
	d := sessionFixture(t)
	a, b := d.NewSession(), d.NewSession()

	a.Pin()
	if !a.Pinned() {
		t.Fatal("Pin did not pin")
	}
	if _, err := b.Exec("INSERT INTO t VALUES (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	// b (unpinned) sees its own commit at the next statement; a (pinned)
	// keeps its frozen view.
	if got := sessRows(t, b, "t"); got != 3 {
		t.Fatalf("writer session rows = %d, want 3", got)
	}
	if got := sessRows(t, a, "t"); got != 2 {
		t.Fatalf("pinned session rows = %d, want 2 (repeatable reads)", got)
	}
	a.Unpin()
	if a.Pinned() {
		t.Fatal("Unpin did not unpin")
	}
	if got := sessRows(t, a, "t"); got != 3 {
		t.Fatalf("unpinned session rows = %d, want 3", got)
	}
}

func TestSessionUnpinnedSeesCommitsAtStatementBoundary(t *testing.T) {
	d := sessionFixture(t)
	a, b := d.NewSession(), d.NewSession()
	if _, err := b.Exec("INSERT INTO t VALUES (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	if got := sessRows(t, a, "t"); got != 3 {
		t.Fatalf("unpinned session missed another session's commit: rows = %d", got)
	}
}

// A pinned session's own acknowledged write must be visible to its next
// statement: afterWrite re-pins on the post-commit state.
func TestSessionPinnedReadYourOwnWrites(t *testing.T) {
	d := sessionFixture(t)
	s := d.NewSession()
	s.Pin()
	if _, err := s.Exec("INSERT INTO t VALUES (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	if !s.Pinned() {
		t.Fatal("write should re-pin, not unpin")
	}
	if got := sessRows(t, s, "t"); got != 3 {
		t.Fatalf("pinned session cannot read its own write: rows = %d, want 3", got)
	}
}

// Per-session options are private copies: changing them affects neither the
// database defaults nor other sessions.
func TestSessionOptionsAreIndependent(t *testing.T) {
	d := sessionFixture(t)
	a, b := d.NewSession(), d.NewSession()
	if a.Strategy != d.Strategy || a.CoreOptions.Parallelism != d.CoreOptions.Parallelism ||
		a.CoreOptions.Vectorized != d.CoreOptions.Vectorized {
		t.Fatal("session options not seeded from database")
	}
	a.Strategy = StrategyDecompose
	a.CoreOptions.Parallelism = 7
	a.DPJoinOrder = true
	if b.Strategy == StrategyDecompose || b.CoreOptions.Parallelism == 7 || b.DPJoinOrder {
		t.Fatal("session option change leaked into sibling session")
	}
	if d.Strategy == StrategyDecompose || d.CoreOptions.Parallelism == 7 || d.DPJoinOrder {
		t.Fatal("session option change leaked into database")
	}
	// The session still executes with its private options.
	if res, err := a.Exec("SELECT RESULTDB t.name FROM t AS t WHERE t.id = 1"); err != nil || len(res.Sets) == 0 {
		t.Fatalf("decompose-strategy session query failed: %v", err)
	}
}

// Session.Snapshot reports the view the next statement would use.
func TestSessionSnapshotReporting(t *testing.T) {
	d := sessionFixture(t)
	s := d.NewSession()
	seq0 := s.Snapshot().Seq()
	pinned := s.Pin()
	if pinned.Seq() != seq0 {
		t.Fatalf("pin seq = %d, want %d", pinned.Seq(), seq0)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().Seq() != seq0 {
		t.Fatal("pinned Snapshot() advanced")
	}
	s.Unpin()
	if s.Snapshot().Seq() != seq0+1 {
		t.Fatalf("unpinned Snapshot().Seq() = %d, want %d", s.Snapshot().Seq(), seq0+1)
	}
}

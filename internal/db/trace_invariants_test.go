package db_test

// Trace-invariant tests: the tracer is an observer, and what it observes must
// obey the algebra. Semi-joins never grow their input, the output spans must
// report exactly the result sets the query returned, and the deterministic
// portion of the trace (CountsFingerprint) must be bit-identical at any
// degree of parallelism. These run against the JOB templates so both the
// acyclic (Yannakakis) and cyclic (folding) paths are covered, and are
// exercised under -race by verify.sh.

import (
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
	"resultdb/internal/workload/job"
)

func loadJOBTrace(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	if err := job.Load(d, job.Config{Scale: 0.05, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return d
}

func tracedQuery(t *testing.T, d *db.Database, sql string, resultDB bool) (*db.Result, *trace.Trace) {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel.ResultDB = resultDB
	res, tr, err := d.QueryWithTrace(sel)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if tr == nil {
		t.Fatal("QueryWithTrace returned a nil trace")
	}
	return res, tr
}

// TestTraceReducingOperatorsNeverGrow: scans (with pushed-down filters),
// semi-joins, and Bloom prefilters only ever remove rows.
func TestTraceReducingOperatorsNeverGrow(t *testing.T) {
	d := loadJOBTrace(t)
	for _, q := range job.Queries() {
		_, tr := tracedQuery(t, d, q.SQL, true)
		for _, sp := range tr.Spans {
			switch sp.Op {
			case "scan", "semi-join", "bloom-semi-join":
				if sp.RowsOut > sp.RowsIn {
					t.Errorf("%s: %s %s grew its input: %d -> %d",
						q.Name, sp.Op, sp.Label, sp.RowsIn, sp.RowsOut)
				}
			}
		}
	}
}

// TestTraceOutputSpansMatchResultSets: the trace's output spans must report
// exactly the cardinalities and wire sizes of the result the caller got, and
// the rows-out counter must be their sum.
func TestTraceOutputSpansMatchResultSets(t *testing.T) {
	d := loadJOBTrace(t)
	for _, q := range job.Queries() {
		res, tr := tracedQuery(t, d, q.SQL, true)
		outputs := map[string]*trace.Span{}
		for i := range tr.Spans {
			if tr.Spans[i].Op == "output" {
				outputs[tr.Spans[i].Label] = &tr.Spans[i]
			}
		}
		if len(outputs) != len(res.Sets) {
			t.Fatalf("%s: %d output spans for %d result sets", q.Name, len(outputs), len(res.Sets))
		}
		total := 0
		for _, set := range res.Sets {
			sp, ok := outputs[set.Name]
			if !ok {
				t.Fatalf("%s: no output span for result set %q", q.Name, set.Name)
			}
			if sp.RowsOut != len(set.Rows) {
				t.Errorf("%s: output span %s rows %d, result set has %d",
					q.Name, set.Name, sp.RowsOut, len(set.Rows))
			}
			if sp.Bytes != set.WireSize() {
				t.Errorf("%s: output span %s bytes %d, result set wire size %d",
					q.Name, set.Name, sp.Bytes, set.WireSize())
			}
			total += len(set.Rows)
		}
		if int(tr.Counters.RowsOut) != total {
			t.Errorf("%s: rows-out counter %d, result total %d", q.Name, tr.Counters.RowsOut, total)
		}
	}
}

// TestTraceCountsIdenticalAcrossParallelism: the deterministic portion of the
// trace is bit-identical at parallelism 1 and 4, for both the RESULTDB and
// the single-table execution of every JOB template.
func TestTraceCountsIdenticalAcrossParallelism(t *testing.T) {
	d := loadJOBTrace(t)
	for _, resultDB := range []bool{true, false} {
		for _, q := range job.Queries() {
			d.SetParallelism(1)
			_, tr1 := tracedQuery(t, d, q.SQL, resultDB)
			d.SetParallelism(4)
			_, tr4 := tracedQuery(t, d, q.SQL, resultDB)
			fp1, fp4 := tr1.CountsFingerprint(), tr4.CountsFingerprint()
			if fp1 != fp4 {
				t.Errorf("%s (resultdb=%v): trace counts differ between par 1 and par 4:\npar1:\n%s\npar4:\n%s",
					q.Name, resultDB, fp1, fp4)
			}
		}
	}
}

// TestTraceDoesNotChangeResults: running with the tracer attached returns the
// same subdatabase as running without it.
func TestTraceDoesNotChangeResults(t *testing.T) {
	d := loadJOBTrace(t)
	for _, name := range []string{"1b", "6a", "11c", "22c", "33c"} {
		q, err := job.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		sel.ResultDB = true
		plain, err := d.Query(sel)
		if err != nil {
			t.Fatal(err)
		}
		traced, _, err := d.QueryWithTrace(sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Sets) != len(traced.Sets) {
			t.Fatalf("%s: set counts differ: %d vs %d", name, len(plain.Sets), len(traced.Sets))
		}
		for i, set := range plain.Sets {
			other := traced.Sets[i]
			if set.Name != other.Name || len(set.Rows) != len(other.Rows) {
				t.Errorf("%s: set %d differs: %s/%d vs %s/%d",
					name, i, set.Name, len(set.Rows), other.Name, len(other.Rows))
			}
		}
	}
}

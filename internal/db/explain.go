package db

import (
	"fmt"

	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
)

// execExplain implements EXPLAIN <select>. The engine is main-memory and
// materializing, so EXPLAIN executes the plan and reports actual
// cardinalities per step (EXPLAIN ANALYZE semantics). For RESULTDB queries
// it reports the join-graph analysis, folds, root choice, and the semi-join
// schedule of Algorithm 4.
func (d *Database) execExplain(ex *sqlparse.Explain) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var lines []string
	sel := ex.Query
	if sel.ResultDB {
		var err error
		lines, err = d.explainResultDB(sel)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		lines, err = d.explainSingleTable(sel)
		if err != nil {
			return nil, err
		}
	}
	set := &ResultSet{Name: "plan", Columns: []string{"plan"}}
	for _, l := range lines {
		set.Rows = append(set.Rows, types.Row{types.NewText(l)})
	}
	return &Result{Sets: []*ResultSet{set}}, nil
}

func (d *Database) explainSingleTable(sel *sqlparse.Select) ([]string, error) {
	exec := d.executor()
	spec, err := engine.AnalyzeSPJ(sel, d)
	if err != nil {
		// Non-SPJ queries (outer joins, aggregates) run through the
		// sequential pipeline; describe it coarsely but execute for real.
		rel, runErr := exec.Select(sel)
		if runErr != nil {
			return nil, runErr
		}
		return []string{
			"sequential pipeline (non-SPJ query: outer join, aggregate, or computed select list)",
			fmt.Sprintf("result rows: %d", len(rel.Rows)),
		}, nil
	}
	lines := []string{"single-table plan (greedy hash-join order, actual cardinalities)"}
	steps, err := exec.ExplainSPJ(spec)
	if err != nil {
		return nil, err
	}
	return append(lines, steps...), nil
}

func (d *Database) explainResultDB(sel *sqlparse.Select) ([]string, error) {
	spec, err := engine.AnalyzeSPJ(stripResultDB(sel), d)
	if err != nil {
		return nil, fmt.Errorf("db: RESULTDB requires a select-project-join query: %w", err)
	}
	lines := []string{"RESULTDB plan (Algorithm 4, actual cardinalities)"}
	outputs := spec.OutputRels()
	lines = append(lines, fmt.Sprintf("output relations: %v", outputs))

	strategy := d.Strategy
	if len(spec.Residual) > 0 {
		strategy = StrategyDecompose
		lines = append(lines, "cross-relation residual predicates present; using Decompose strategy")
	}
	exec := d.executor()
	if strategy == StrategyDecompose {
		steps, err := exec.ExplainSPJ(spec)
		if err != nil {
			return nil, err
		}
		lines = append(lines, "strategy: single-table plan + Decompose operator")
		lines = append(lines, steps...)
		lines = append(lines, fmt.Sprintf("decompose into %d relations + dedup", len(outputs)))
		return lines, nil
	}

	lines = append(lines, "strategy: native semi-join reduction")
	rels, err := exec.BaseRelations(spec)
	if err != nil {
		return nil, err
	}
	for _, r := range spec.Rels {
		filter := spec.FilterSQL(r.Alias)
		if filter == "" {
			filter = "true"
		}
		lines = append(lines, fmt.Sprintf("scan %s AS %s  filter: %s  rows: %d",
			r.Table, r.Alias, filter, len(rels[lower(r.Alias)].Rows)))
	}
	opts := d.CoreOptions
	opts.Trace = func(step string) { lines = append(lines, step) }
	reduced, stats, err := core.SemiJoinReduce(spec, rels, nil, opts)
	if err != nil {
		return nil, err
	}
	for _, alias := range outputs {
		lines = append(lines, fmt.Sprintf("return %s  rows: %d (before projection dedup)",
			alias, len(reduced[lower(alias)].Rows)))
	}
	lines = append(lines, "stats: "+stats.String())
	return lines, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

package db

import (
	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// execExplain implements EXPLAIN [ANALYZE] <select>. The engine is
// main-memory and materializing, so EXPLAIN executes the plan and reports
// actual cardinalities per step. Both forms render from the same structured
// trace that db.QueryWithTrace returns — there is exactly one plan-rendering
// path:
//
//   - EXPLAIN prints the compact classic plan (fully deterministic: one line
//     per step with actual cardinalities, no timings).
//   - EXPLAIN ANALYZE prints the annotated operator tree: spans grouped by
//     phase with rows in/out, key counts, transfer bytes, and (in trailing
//     brackets that tooling may strip) wall times, parallel degrees, morsel
//     counts, and the pinned snapshot's commit position.
//
// For RESULTDB queries the plan reports the join-graph analysis, folds, root
// choice, and the semi-join schedule of Algorithm 4.
func (d *Database) execExplain(ex *sqlparse.Explain) (*Result, error) {
	return d.execExplainAt(d.readCtx(), ex)
}

// execExplainAt is execExplain against an explicit execution context
// (sessions pass their pinned view and private options).
func (d *Database) execExplainAt(ec execCtx, ex *sqlparse.Explain) (*Result, error) {
	tr := trace.New(ex.Query.SQL())
	tr.SetParallelism(parallel.Degree(ec.opts.Parallelism))
	if ec.snap != nil {
		tr.SetSnapshot(ec.snap.Seq(), ec.snap.LSN())
	}
	if _, err := d.query(ec, ex.Query, tr); err != nil {
		return nil, err
	}
	snap := tr.Finish()
	var lines []string
	if ex.Analyze {
		lines = snap.TreeLines()
	} else {
		lines = snap.CompactLines()
	}
	set := &ResultSet{Name: "plan", Columns: []string{"plan"}}
	for _, l := range lines {
		set.Rows = append(set.Rows, types.Row{types.NewText(l)})
	}
	return &Result{Sets: []*ResultSet{set}}, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

package db

import (
	"sort"
	"strings"
	"testing"

	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
)

// paperExample loads the running example of the paper (Figure 1): customers,
// order, products with the sample data whose gray rows form the subdatabase.
func paperExample(t *testing.T) *Database {
	t.Helper()
	d := New()
	script := `
CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, state TEXT);
CREATE TABLE orders (cid INTEGER, pid INTEGER);
CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT, category TEXT);
INSERT INTO customers VALUES (0, 'custA', 'NY'), (1, 'custB', 'CA'), (2, 'custC', 'NY');
INSERT INTO orders VALUES (0, 1), (1, 1), (1, 2), (2, 1), (0, 2), (1, 3);
INSERT INTO products VALUES (0, 'smartphone', 'electronics'), (1, 'laptop', 'electronics'),
                            (2, 'shirt', 'clothing'), (3, 'pants', 'clothing');
`
	if _, err := d.ExecScript(script); err != nil {
		t.Fatalf("load paper example: %v", err)
	}
	return d
}

// Listing 1 of the paper, adapted to the sample data ("order" is a keyword
// in many dialects, so the table is named orders).
const listing1 = `
SELECT c.name, p.name, p.category
FROM customers AS c, orders AS o, products AS p
WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid`

func mustSelect(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func rowsToStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestSingleTablePaperExample(t *testing.T) {
	d := paperExample(t)
	res, err := d.QuerySQL(listing1)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Sets) != 1 {
		t.Fatalf("expected 1 result set, got %d", len(res.Sets))
	}
	got := rowsToStrings(res.First().Rows)
	// Figure 2 of the paper: NY customers custA and custC with their products.
	want := []string{
		"custA | laptop | electronics",
		"custA | shirt | clothing",
		"custC | laptop | electronics",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("single-table result mismatch:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestResultDBPaperExample(t *testing.T) {
	for _, strategy := range []Strategy{StrategySemiJoin, StrategyDecompose} {
		d := paperExample(t)
		d.Strategy = strategy
		res, err := d.QuerySQL(strings.Replace(listing1, "SELECT", "SELECT RESULTDB", 1))
		if err != nil {
			t.Fatalf("strategy %d: %v", strategy, err)
		}
		if len(res.Sets) != 2 {
			t.Fatalf("strategy %d: expected 2 result sets (customers, products), got %d", strategy, len(res.Sets))
		}
		c := res.Set("c")
		p := res.Set("p")
		if c == nil || p == nil {
			t.Fatalf("strategy %d: missing result sets, have %v", strategy, res.Sets)
		}
		gotC := rowsToStrings(c.Rows)
		wantC := []string{"custA", "custC"}
		if strings.Join(gotC, ",") != strings.Join(wantC, ",") {
			t.Errorf("strategy %d: customers = %v, want %v", strategy, gotC, wantC)
		}
		gotP := rowsToStrings(p.Rows)
		wantP := []string{"laptop | electronics", "shirt | clothing"}
		if strings.Join(gotP, ",") != strings.Join(wantP, ",") {
			t.Errorf("strategy %d: products = %v, want %v", strategy, gotP, wantP)
		}
	}
}

func TestResultDBRelationshipPreservingAndPostJoin(t *testing.T) {
	d := paperExample(t)
	sel := mustSelect(t, listing1)
	res, err := d.QueryResultDB(sel, ModeRDBRP)
	if err != nil {
		t.Fatalf("rdbrp: %v", err)
	}
	// RDBRP must include the join keys: c gains id, p gains id, and the
	// connecting relation o appears because its join attributes are needed.
	c := res.Set("c")
	if c == nil {
		t.Fatal("missing c result set")
	}
	if got := strings.Join(c.Columns, ","); got != "name,id" {
		t.Errorf("c columns = %s, want name,id", got)
	}

	// Reconstruction (Definition 2.3): post-joining the RDBRP subdatabase
	// yields the original single-table result.
	// The o relation is not projected, so the post-join cannot recreate the
	// c-o-p connection without it; the paper's definition keeps any
	// relation whose join attributes are required (A_i* non-empty).
	single, err := d.QuerySQL(listing1)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	post, err := d.PostJoin(sel, res)
	if err != nil {
		t.Fatalf("postjoin: %v", err)
	}
	got := rowsToStrings(post.Rows)
	want := rowsToStrings(single.First().Rows)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("post-join mismatch:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

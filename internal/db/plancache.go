package db

import (
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
)

// The plan-verdict cache memoizes one bit per (query, table generations):
// did cost-based reduction planning produce a plan operationally different
// from the heuristic's? Statistics make big queries faster by switching
// roots, reordering passes, and injecting pre-filters — but on tiny queries
// whose cost-based plan comes out identical to the heuristic plan, the
// planning work itself is pure overhead paid on every execution. Once a
// full cost-based run reports core.Stats.PlanDiverged == false, re-running
// the same statement against unchanged tables skips the statistics
// machinery and takes the (provably identical) heuristic path directly.
// Any DML/DDL on an involved table bumps its generation and invalidates
// the verdict, so the next execution re-plans with fresh statistics.
//
// Traced runs (EXPLAIN ANALYZE and friends) bypass the cache in both
// directions: they always plan with statistics so the trace shows the
// cost-based decisions, and they record nothing.

// planVerdictCap bounds the verdict map. Verdicts are one bool plus a few
// slices, so the bound exists only to stop unbounded growth under
// generated-query workloads; overflow simply resets the map (verdicts are
// re-derived in one execution each).
const planVerdictCap = 512

// planVerdict fingerprints the tables a verdict was recorded against.
// Identity is by table pointer plus generation plus row count, mirroring
// the statistics cache's invalidation rule: any of the three changing
// means the statistics (and hence possibly the plan) changed.
type planVerdict struct {
	tables   []*storage.Table
	gens     []uint64
	rows     []int
	diverged bool
}

// planKeyMemo caches one statement's rendered verdict key. Clients that
// re-execute a parsed *Select (benchmark loops, prepared-statement-style
// reuse) would otherwise pay the SQL render — a few microseconds on wide
// JOB queries, which is the same order as the whole planning overhead the
// verdict cache exists to remove. The memo is validated against the
// fields a caller could plausibly mutate between executions (the WHERE
// root pointer, FROM arity, and the mode flags); a stale or colliding
// memo can only misdirect the stats-skip decision, never the results —
// both the cost-based and the heuristic path compute the same bytes.
type planKeyMemo struct {
	where      sqlparse.Expr
	from       int
	resultdb   bool
	preserving bool
	distinct   bool
	key        string
}

// planKey returns the verdict-cache key for sel: the raw source text when
// the parser recorded it (zero cost), else the rendered SQL memoized per
// statement object. The execution mode is appended by the caller — the
// same statement in RDB vs RDBRP mode has different outputs and hence a
// different early-stop surface, so the two must not share a verdict.
func (d *Database) planKey(sel *sqlparse.Select) string {
	if sel.Src != "" {
		return sel.Src
	}
	d.planMu.Lock()
	m, ok := d.planKeys[sel]
	d.planMu.Unlock()
	if ok && m.where == sel.Where && m.from == len(sel.From) &&
		m.resultdb == sel.ResultDB && m.preserving == sel.Preserving && m.distinct == sel.Distinct {
		return m.key
	}
	key := sel.SQL()
	d.planMu.Lock()
	if d.planKeys == nil || len(d.planKeys) >= planVerdictCap {
		d.planKeys = make(map[*sqlparse.Select]planKeyMemo, 64)
	}
	d.planKeys[sel] = planKeyMemo{
		where:      sel.Where,
		from:       len(sel.From),
		resultdb:   sel.ResultDB,
		preserving: sel.Preserving,
		distinct:   sel.Distinct,
		key:        key,
	}
	d.planMu.Unlock()
	return key
}

// modeKeySuffix disambiguates verdicts of the same statement text executed
// in different subdatabase modes (QueryResultDB can force either mode on
// the same parsed statement).
func modeKeySuffix(mode Mode) string {
	if mode == ModeRDBRP {
		return "\x00rp"
	}
	return ""
}

// planConfirmedHeuristic reports whether a previous cost-based execution of
// key recorded a non-diverged plan that is still valid for the table
// versions src resolves (the reader's snapshot, or a write transaction).
// Under MVCC the pointer comparison does the heavy lifting: a published
// version is immutable, so matching pointers means matching statistics.
func (d *Database) planConfirmedHeuristic(src engine.Source, key string, spec *engine.SPJSpec) bool {
	d.planMu.Lock()
	v, ok := d.planVerdicts[key]
	d.planMu.Unlock()
	if !ok || v.diverged || len(v.tables) != len(spec.Rels) {
		return false
	}
	for i, r := range spec.Rels {
		t, err := src.Table(r.Table)
		if err != nil || t != v.tables[i] || t.Generation() != v.gens[i] || t.Len() != v.rows[i] {
			return false
		}
	}
	return true
}

// recordPlanVerdict stores the divergence verdict of a completed cost-based
// execution, fingerprinted by the involved table versions it planned
// against.
func (d *Database) recordPlanVerdict(src engine.Source, key string, spec *engine.SPJSpec, diverged bool) {
	v := planVerdict{
		tables:   make([]*storage.Table, 0, len(spec.Rels)),
		gens:     make([]uint64, 0, len(spec.Rels)),
		rows:     make([]int, 0, len(spec.Rels)),
		diverged: diverged,
	}
	for _, r := range spec.Rels {
		t, err := src.Table(r.Table)
		if err != nil {
			// A table vanished mid-flight; the verdict cannot be
			// fingerprinted, so don't cache it.
			return
		}
		v.tables = append(v.tables, t)
		v.gens = append(v.gens, t.Generation())
		v.rows = append(v.rows, t.Len())
	}
	d.planMu.Lock()
	if d.planVerdicts == nil || len(d.planVerdicts) >= planVerdictCap {
		d.planVerdicts = make(map[string]planVerdict, 64)
	}
	d.planVerdicts[key] = v
	d.planMu.Unlock()
}

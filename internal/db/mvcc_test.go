// MVCC stress gate: N reader sessions race M writer sessions under -race and
// every read must be byte-identical — at the wire-encoding level — to some
// committed prefix of the writes, mirroring the per-prefix oracle machinery of
// internal/durable/crash_test.go. A torn batch, a half-published state, or a
// stale cache fill would produce bytes matching no prefix and fail the gate.
//
// The test lives in package db_test so it can wire-encode results through
// internal/wire (which imports db) exactly as a networked client would
// receive them.
package db_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/wire"
)

const (
	mvccWriters      = 2  // M >= 2, each owning a private table (total order per table)
	mvccReaders      = 6  // N >= 6 concurrent reader sessions
	mvccBatches      = 40 // committed batches per writer
	mvccRowsPerBatch = 25
	mvccSeed         = 7483
)

// mvccTable is writer w's private table name.
func mvccTable(w int) string { return fmt.Sprintf("w%d", w) }

func mvccCreateSQL(w int) string {
	return fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY, val INTEGER)", mvccTable(w))
}

func mvccReadSQL(w int) string {
	tbl := mvccTable(w)
	return fmt.Sprintf("SELECT %s.id, %s.val FROM %s AS %s", tbl, tbl, tbl, tbl)
}

// mvccStatements pre-renders every writer's batch statements from one seeded
// generator, so the live run and the oracle runs execute identical SQL.
func mvccStatements() [][]string {
	rng := rand.New(rand.NewSource(mvccSeed))
	stmts := make([][]string, mvccWriters)
	for w := range stmts {
		stmts[w] = make([]string, mvccBatches)
		id := 0
		for k := range stmts[w] {
			var b strings.Builder
			fmt.Fprintf(&b, "INSERT INTO %s VALUES ", mvccTable(w))
			for r := 0; r < mvccRowsPerBatch; r++ {
				if r > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(%d, %d)", id, rng.Intn(1_000_000))
				id++
			}
			stmts[w][k] = b.String()
		}
	}
	return stmts
}

// mvccEncode renders a result exactly as the wire server ships it (v2
// columnar payload) — the byte-exactness the gate asserts on.
func mvccEncode(res *db.Result) string {
	return string(wire.EncodeResultV2(res))
}

// mvccOracle replays one writer's batches serially on a private database and
// returns the wire encoding of every committed prefix 0..B, keyed by bytes.
// Values are the prefix index, so readers can also assert monotonicity.
func mvccOracle(t *testing.T, w int, stmts []string) map[string]int {
	t.Helper()
	od := db.Open(db.DefaultConfig())
	od.CoreOptions.Parallelism = 1
	if _, err := od.Exec(mvccCreateSQL(w)); err != nil {
		t.Fatal(err)
	}
	allowed := make(map[string]int, len(stmts)+1)
	record := func(prefix int) {
		res, err := od.Exec(mvccReadSQL(w))
		if err != nil {
			t.Fatalf("oracle prefix %d: %v", prefix, err)
		}
		allowed[mvccEncode(res)] = prefix
	}
	record(0)
	for k, sql := range stmts {
		if _, err := od.Exec(sql); err != nil {
			t.Fatalf("oracle batch %d: %v", k, err)
		}
		record(k + 1)
	}
	if len(allowed) != len(stmts)+1 {
		t.Fatalf("oracle prefixes not byte-distinct: %d encodings for %d prefixes", len(allowed), len(stmts)+1)
	}
	return allowed
}

// TestMVCCStressPrefixConsistency is the concurrency gate from verify.sh:
// every concurrent read observes exactly some committed prefix, prefixes
// observed by one reader never move backwards, and the final state is the
// full write history — with the result cache enabled, so the snapshot-keyed
// cache path (DoAt/PutAt) is raced too.
func TestMVCCStressPrefixConsistency(t *testing.T) {
	stmts := mvccStatements()
	allowed := make([]map[string]int, mvccWriters)
	for w := 0; w < mvccWriters; w++ {
		allowed[w] = mvccOracle(t, w, stmts[w])
	}

	cfg := db.DefaultConfig()
	cfg.CacheEnabled = true
	d := db.Open(cfg)
	d.CoreOptions.Parallelism = 1
	for w := 0; w < mvccWriters; w++ {
		if _, err := d.Exec(mvccCreateSQL(w)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		done     atomic.Bool
		failures atomic.Int64
		reads    atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < mvccWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := d.NewSession()
			for k, sql := range stmts[w] {
				if _, err := sess.Exec(sql); err != nil {
					t.Errorf("writer %d batch %d: %v", w, k, err)
					failures.Add(1)
					return
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	for r := 0; r < mvccReaders; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			sess := d.NewSession()
			last := make([]int, mvccWriters) // highest prefix seen per table
			for i := 0; !done.Load() && failures.Load() == 0; i++ {
				w := (r + i) % mvccWriters
				res, err := sess.Exec(mvccReadSQL(w))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					failures.Add(1)
					return
				}
				prefix, ok := allowed[w][mvccEncode(res)]
				if !ok {
					t.Errorf("reader %d: read of %s matches no committed prefix (%d rows)",
						r, mvccTable(w), res.First().NumRows())
					failures.Add(1)
					return
				}
				if prefix < last[w] {
					t.Errorf("reader %d: %s went backwards: prefix %d after %d",
						r, mvccTable(w), prefix, last[w])
					failures.Add(1)
					return
				}
				last[w] = prefix
				reads.Add(1)
			}
		}(r)
	}

	wg.Wait()
	done.Store(true)
	readerWG.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	if got := reads.Load(); got < mvccReaders {
		t.Fatalf("readers made only %d reads", got)
	}

	// Quiesced: the newest state must be the complete history of every writer.
	sess := d.NewSession()
	for w := 0; w < mvccWriters; w++ {
		res, err := sess.Exec(mvccReadSQL(w))
		if err != nil {
			t.Fatal(err)
		}
		if prefix := allowed[w][mvccEncode(res)]; prefix != mvccBatches {
			t.Fatalf("final state of %s is prefix %d, want %d", mvccTable(w), prefix, mvccBatches)
		}
	}
	t.Logf("%d consistent reads raced %d writers x %d batches", reads.Load(), mvccWriters, mvccBatches)
}

// TestMVCCPinnedSnapshotFrozenBytes: a pinned session's reads stay
// byte-identical across another session's commits — the repeatable-read half
// of the Session contract, asserted at the wire level.
func TestMVCCPinnedSnapshotFrozenBytes(t *testing.T) {
	stmts := mvccStatements()
	d := db.Open(db.DefaultConfig())
	d.CoreOptions.Parallelism = 1
	if _, err := d.Exec(mvccCreateSQL(0)); err != nil {
		t.Fatal(err)
	}
	writer := d.NewSession()
	if _, err := writer.Exec(stmts[0][0]); err != nil {
		t.Fatal(err)
	}

	reader := d.NewSession()
	reader.Pin()
	res, err := reader.Exec(mvccReadSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	before := mvccEncode(res)

	for _, sql := range stmts[0][1:4] {
		if _, err := writer.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res, err = reader.Exec(mvccReadSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	if mvccEncode(res) != before {
		t.Fatal("pinned session observed another session's commits")
	}

	reader.Unpin()
	res, err = reader.Exec(mvccReadSQL(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 4*mvccRowsPerBatch {
		t.Fatalf("unpinned session sees %d rows, want %d", res.First().NumRows(), 4*mvccRowsPerBatch)
	}
}

package db

import (
	"errors"
	"reflect"
	"testing"
)

func streamDB(t *testing.T) *Database {
	t.Helper()
	d := New()
	if _, err := d.ExecScript(`
CREATE TABLE a (id INT PRIMARY KEY, name TEXT);
CREATE TABLE b (id INT PRIMARY KEY, a_id INT, v FLOAT);
INSERT INTO a VALUES (1, 'x'), (2, 'y'), (3, 'z');
INSERT INTO b VALUES (10, 1, 0.5), (11, 1, 1.5), (12, 3, 2.5);`); err != nil {
		t.Fatal(err)
	}
	return d
}

// collect runs ExecStream and records the callback sequence.
func collect(t *testing.T, d *Database, sql string) (StreamMeta, []*ResultSet, *Result) {
	t.Helper()
	var meta StreamMeta
	var sets []*ResultSet
	begun := false
	res, err := d.ExecStream(sql,
		func(m StreamMeta) error {
			if begun {
				t.Fatal("begin called twice")
			}
			begun = true
			meta = m
			return nil
		},
		func(set *ResultSet) error {
			if !begun {
				t.Fatal("emit before begin")
			}
			sets = append(sets, set)
			return nil
		})
	if err != nil {
		t.Fatalf("ExecStream(%q): %v", sql, err)
	}
	if !begun {
		t.Fatal("begin never called")
	}
	return meta, sets, res
}

// sameSets compares streamed sets against a result's sets by value.
func sameSets(t *testing.T, sets []*ResultSet, res *Result) {
	t.Helper()
	if len(sets) != len(res.Sets) {
		t.Fatalf("emitted %d sets, result has %d", len(sets), len(res.Sets))
	}
	for i, set := range sets {
		want := res.Sets[i]
		if set.Name != want.Name || !reflect.DeepEqual(set.Columns, want.Columns) || !reflect.DeepEqual(set.Rows, want.Rows) {
			t.Fatalf("emitted set %d differs from the result's set", i)
		}
	}
}

func TestExecStreamResultDB(t *testing.T) {
	d := streamDB(t)
	sql := "SELECT RESULTDB a.name, b.v FROM a AS a, b AS b WHERE a.id = b.a_id"
	meta, sets, res := collect(t, d, sql)
	if meta.NumSets != len(res.Sets) || meta.NumSets != len(sets) {
		t.Fatalf("meta.NumSets = %d, emitted %d, result has %d", meta.NumSets, len(sets), len(res.Sets))
	}
	sameSets(t, sets, res)

	// The streamed result must match a plain Exec of the same query.
	plain, err := d.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	sameSets(t, sets, plain)
}

func TestExecStreamPreservingCarriesPlan(t *testing.T) {
	d := streamDB(t)
	meta, sets, res := collect(t, d,
		"SELECT RESULTDB PRESERVING a.name, b.v FROM a AS a, b AS b WHERE a.id = b.a_id")
	if meta.Plan == nil || res.PostJoinPlan == nil {
		t.Fatal("PRESERVING stream lost the post-join plan")
	}
	if meta.Plan != res.PostJoinPlan {
		t.Error("meta.Plan is not the result's plan")
	}
	sameSets(t, sets, res)
}

func TestExecStreamSingleTable(t *testing.T) {
	d := streamDB(t)
	meta, sets, res := collect(t, d, "SELECT a.name FROM a AS a WHERE a.id > 1")
	if meta.NumSets != 1 || len(sets) != 1 {
		t.Fatalf("single-table stream: NumSets=%d, emitted %d", meta.NumSets, len(sets))
	}
	sameSets(t, sets, res)
}

func TestExecStreamNonSelectReplays(t *testing.T) {
	d := streamDB(t)
	meta, sets, res := collect(t, d, "INSERT INTO a VALUES (4, 'w')")
	if meta.NumSets != 0 || len(sets) != 0 {
		t.Fatalf("DML stream: NumSets=%d, emitted %d", meta.NumSets, len(sets))
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d, want 1", res.Affected)
	}
}

func TestExecStreamCachedReplays(t *testing.T) {
	d := streamDB(t)
	d.EnableCache(DefaultCacheBudget)
	sql := "SELECT RESULTDB a.name, b.v FROM a AS a, b AS b WHERE a.id = b.a_id"
	// Cold fill, then a warm replay: both must stream the full result.
	for _, phase := range []string{"cold", "warm"} {
		meta, sets, res := collect(t, d, sql)
		if meta.NumSets != len(res.Sets) {
			t.Fatalf("%s: meta.NumSets = %d, result has %d", phase, meta.NumSets, len(res.Sets))
		}
		sameSets(t, sets, res)
	}
	if st := d.CacheStats(); st.Hits == 0 {
		t.Error("warm replay did not come from the cache")
	}
}

func TestExecStreamCallbackErrorsAbort(t *testing.T) {
	d := streamDB(t)
	sql := "SELECT RESULTDB a.name, b.v FROM a AS a, b AS b WHERE a.id = b.a_id"
	boom := errors.New("sink full")
	if _, err := d.ExecStream(sql,
		func(StreamMeta) error { return boom },
		func(*ResultSet) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("begin error not propagated: %v", err)
	}
	emits := 0
	if _, err := d.ExecStream(sql,
		func(StreamMeta) error { return nil },
		func(*ResultSet) error { emits++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if emits != 1 {
		t.Fatalf("execution continued after an emit error (%d emits)", emits)
	}
}

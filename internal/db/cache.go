package db

import (
	"fmt"
	"strconv"
	"strings"

	"resultdb/internal/cache"
	"resultdb/internal/sqlparse"
)

// DefaultCacheBudget is the result cache's byte budget when enabled without
// an explicit budget (64 MiB of measured result bytes).
const DefaultCacheBudget = 64 << 20

// EnableCache switches the semantic result cache on with the given byte
// budget (0 = DefaultCacheBudget). Entries survive re-enabling but respect
// the new budget immediately.
//
// Deprecated: set Config.CacheEnabled/Config.CacheBudget at Open time.
// EnableCache serializes against writers but not against in-flight reads.
func (d *Database) EnableCache(budget int64) {
	if budget <= 0 {
		budget = DefaultCacheBudget
	}
	d.withWriter(func() {
		d.CoreOptions.ResultCache = true
		d.CoreOptions.ResultCacheBudget = budget
		d.resultCache.SetBudget(budget)
	})
}

// DisableCache switches the result cache off and drops all entries.
//
// Deprecated: configure the cache at Open time (Config.CacheEnabled).
func (d *Database) DisableCache() {
	d.withWriter(func() {
		d.CoreOptions.ResultCache = false
		d.resultCache.Clear()
	})
}

// CacheEnabled reports whether the result cache is on.
func (d *Database) CacheEnabled() bool {
	return d.CoreOptions.ResultCache
}

// CacheStats snapshots the result cache's counters and occupancy.
func (d *Database) CacheStats() cache.Stats {
	return d.resultCache.Stats()
}

// ClearCache drops every cached result (version counters are preserved, so
// pre-clear computations can never be revived stale).
func (d *Database) ClearCache() {
	d.resultCache.Clear()
}

// ParseByteSize parses "1048576", "64KB", "256MB", "2GB", "16MiB" (decimal
// suffixes are powers of 1000, binary suffixes powers of 1024; case
// insensitive, optional space before the suffix).
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num := strings.TrimSpace(s[:i])
	suffix := strings.ToUpper(strings.TrimSpace(s[i:]))
	mult := int64(1)
	switch suffix {
	case "", "B":
	case "KB":
		mult = 1000
	case "MB":
		mult = 1000 * 1000
	case "GB":
		mult = 1000 * 1000 * 1000
	case "KIB":
		mult = 1 << 10
	case "MIB":
		mult = 1 << 20
	case "GIB":
		mult = 1 << 30
	default:
		return 0, fmt.Errorf("db: unknown byte-size suffix %q", suffix)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("db: bad byte size %q: %w", s, err)
	}
	return int64(f * float64(mult)), nil
}

// cacheKey builds the semantic cache key of a SELECT executed through the
// SQL surface: the canonical statement fingerprint (whitespace-, identifier-
// case- and literal-formatting-insensitive; RESULTDB / PRESERVING flags are
// part of the canonical text) prefixed with the execution knobs that can
// change the *observable* result beyond the row data — the strategy (Stats
// attachment differs between semi-join and Decompose) and the join-order
// optimizer flag. Parallelism is deliberately excluded: results are
// bit-identical at any degree.
func cacheKey(ec execCtx, sel *sqlparse.Select) string {
	return fmt.Sprintf("s%d|dp%t|%s", ec.strategy, ec.dpJoinOrder, sqlparse.Canonical(sel))
}

// queryCached serves sel through the result cache, keyed on the pinned
// snapshot's table versions. Without the old statement-wide read lock, a
// writer can publish a new version at any point of the lookup-execute-fill
// window; the snapshot-versioned cache API (cache.DoAt) keeps every outcome
// correct:
//
//   - A cached entry is served only if it was filled at exactly the
//     versions this snapshot pins — a reader can never see a result newer
//     (or older) than its snapshot.
//   - Concurrent identical misses collapse into one execution only when
//     they pinned the same versions (the single-flight key includes the
//     version fingerprint), so a reader before and a reader after a commit
//     never share a computation.
//   - A computed fill is admitted only if the tables' versions are still
//     current at fill time; a fill that raced a writer is returned to its
//     caller (correct for its snapshot) but not cached.
//
// Cached *Result values are shared snapshots: callers must not mutate them
// (the repo's surfaces — shell printing, wire encoding, PostJoin — only
// read).
func (d *Database) queryCached(ec execCtx, sel *sqlparse.Select) (*Result, error) {
	key := cacheKey(ec, sel)
	tables := sqlparse.Tables(sel)
	res, _, err := d.resultCache.DoAt(key, tables, ec.snap.versionOf, func() (*Result, int64, error) {
		r, err := d.queryUncached(ec, sel, nil)
		if err != nil {
			return nil, 0, err
		}
		return r, cachedResultBytes(r), nil
	})
	return res, err
}

// cachedResultBytes measures a result's cache cost: the Section 6.1 wire
// size of every set plus a small fixed overhead per set for names, columns,
// and bookkeeping.
func cachedResultBytes(r *Result) int64 {
	const perSetOverhead = 64
	n := int64(r.WireSize())
	n += int64(len(r.Sets)) * perSetOverhead
	return n
}

package db

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"resultdb/internal/cache"
	"resultdb/internal/sqlparse"
)

// DefaultCacheBudget is the result cache's byte budget when enabled without
// an explicit budget (64 MiB of measured result bytes).
const DefaultCacheBudget = 64 << 20

// CacheEnvVar configures the result cache at db.New time:
//
//	RESULTDB_CACHE=on          enable with the default budget
//	RESULTDB_CACHE=256MB       enable with a 256 MB budget (KB/MB/GB/KiB/...)
//	RESULTDB_CACHE=1048576     enable with a byte budget
//	RESULTDB_CACHE=off         disable (the default when unset)
const CacheEnvVar = "RESULTDB_CACHE"

// EnableCache switches the semantic result cache on with the given byte
// budget (0 = DefaultCacheBudget). Safe to call at any time; entries survive
// re-enabling but respect the new budget immediately.
func (d *Database) EnableCache(budget int64) {
	if budget <= 0 {
		budget = DefaultCacheBudget
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.CoreOptions.ResultCache = true
	d.CoreOptions.ResultCacheBudget = budget
	d.resultCache.SetBudget(budget)
}

// DisableCache switches the result cache off and drops all entries.
func (d *Database) DisableCache() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.CoreOptions.ResultCache = false
	d.resultCache.Clear()
}

// CacheEnabled reports whether the result cache is on.
func (d *Database) CacheEnabled() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.CoreOptions.ResultCache
}

// CacheStats snapshots the result cache's counters and occupancy.
func (d *Database) CacheStats() cache.Stats {
	return d.resultCache.Stats()
}

// ClearCache drops every cached result (version counters are preserved, so
// pre-clear computations can never be revived stale).
func (d *Database) ClearCache() {
	d.resultCache.Clear()
}

// applyCacheEnv configures the cache from the RESULTDB_CACHE environment
// variable; unset or unparsable values leave the cache off.
func (d *Database) applyCacheEnv() {
	v := strings.TrimSpace(os.Getenv(CacheEnvVar))
	if v == "" {
		return
	}
	switch strings.ToLower(v) {
	case "off", "0", "false", "no":
		return
	case "on", "1", "true", "yes":
		d.CoreOptions.ResultCache = true
		d.CoreOptions.ResultCacheBudget = DefaultCacheBudget
	default:
		budget, err := ParseByteSize(v)
		if err != nil || budget <= 0 {
			return
		}
		d.CoreOptions.ResultCache = true
		d.CoreOptions.ResultCacheBudget = budget
	}
	d.resultCache.SetBudget(d.CoreOptions.ResultCacheBudget)
}

// ParseByteSize parses "1048576", "64KB", "256MB", "2GB", "16MiB" (decimal
// suffixes are powers of 1000, binary suffixes powers of 1024; case
// insensitive, optional space before the suffix).
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num := strings.TrimSpace(s[:i])
	suffix := strings.ToUpper(strings.TrimSpace(s[i:]))
	mult := int64(1)
	switch suffix {
	case "", "B":
	case "KB":
		mult = 1000
	case "MB":
		mult = 1000 * 1000
	case "GB":
		mult = 1000 * 1000 * 1000
	case "KIB":
		mult = 1 << 10
	case "MIB":
		mult = 1 << 20
	case "GIB":
		mult = 1 << 30
	default:
		return 0, fmt.Errorf("db: unknown byte-size suffix %q", suffix)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("db: bad byte size %q: %w", s, err)
	}
	return int64(f * float64(mult)), nil
}

// cacheKey builds the semantic cache key of a SELECT executed through the
// SQL surface: the canonical statement fingerprint (whitespace-, identifier-
// case- and literal-formatting-insensitive; RESULTDB / PRESERVING flags are
// part of the canonical text) prefixed with the execution knobs that can
// change the *observable* result beyond the row data — the strategy (Stats
// attachment differs between semi-join and Decompose) and the join-order
// optimizer flag. Parallelism is deliberately excluded: results are
// bit-identical at any degree.
func (d *Database) cacheKey(sel *sqlparse.Select) string {
	return fmt.Sprintf("s%d|dp%t|%s", d.Strategy, d.DPJoinOrder, sqlparse.Canonical(sel))
}

// bumpTables advances the cache version counter of each named table. Called
// with d.mu held for writing by every DML/DDL path, so no SELECT (which
// holds the read lock across lookup and fill) can interleave.
func (d *Database) bumpTables(names ...string) {
	d.resultCache.Bump(names...)
}

// queryCachedLocked serves sel through the result cache: a fresh entry is
// returned as-is, concurrent identical misses collapse into one execution
// (single-flight), and a computed result is admitted with its measured wire
// size. The caller holds d.mu.RLock, which excludes all DML/DDL for the
// whole lookup-execute-fill window — the versions captured at miss time are
// therefore still current at fill time, so a cached entry can never embed a
// state older than its recorded versions.
//
// Cached *Result values are shared snapshots: callers must not mutate them
// (the repo's surfaces — shell printing, wire encoding, PostJoin — only
// read).
func (d *Database) queryCachedLocked(sel *sqlparse.Select) (*Result, error) {
	key := d.cacheKey(sel)
	tables := sqlparse.Tables(sel)
	res, _, err := d.resultCache.Do(key, tables, func() (*Result, int64, error) {
		r, err := d.queryUncachedLocked(sel, nil)
		if err != nil {
			return nil, 0, err
		}
		return r, cachedResultBytes(r), nil
	})
	return res, err
}

// cachedResultBytes measures a result's cache cost: the Section 6.1 wire
// size of every set plus a small fixed overhead per set for names, columns,
// and bookkeeping.
func cachedResultBytes(r *Result) int64 {
	const perSetOverhead = 64
	n := int64(r.WireSize())
	n += int64(len(r.Sets)) * perSetOverhead
	return n
}

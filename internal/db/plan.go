package db

import (
	"fmt"
	"strings"

	"resultdb/internal/core"
	"resultdb/internal/engine"
)

// PostJoinPlan is the paper's "subdatabase snapshot" extension (Section 7,
// item 5): alongside the reduced relations, the server ships the recipe for
// reconstructing the single-table result — the join predicates among the
// returned relations and the final projection — so clients can execute the
// post-join mechanically without re-parsing or even knowing the original
// query.
type PostJoinPlan struct {
	// Preds are the join predicates whose both sides are present in the
	// returned relations (predicates through non-returned relations were
	// already enforced by the reduction).
	Preds []engine.JoinPred
	// Projection is the original single-table projection, restricted to
	// returned relations.
	Projection []engine.Attr
}

// Empty reports whether the plan carries nothing to do (single-relation
// results).
func (p *PostJoinPlan) Empty() bool {
	return p == nil || len(p.Preds) == 0 && len(p.Projection) == 0
}

// String renders the plan for humans.
func (p *PostJoinPlan) String() string {
	if p == nil {
		return "<none>"
	}
	var preds, proj []string
	for _, j := range p.Preds {
		preds = append(preds, j.String())
	}
	for _, a := range p.Projection {
		proj = append(proj, a.String())
	}
	return fmt.Sprintf("post-join on [%s] project [%s]",
		strings.Join(preds, " AND "), strings.Join(proj, ", "))
}

// buildPostJoinPlan derives the shipped plan from the analyzed query and the
// set of returned relation aliases.
func buildPostJoinPlan(spec *engine.SPJSpec, outputs []string) *PostJoinPlan {
	in := map[string]bool{}
	for _, a := range outputs {
		in[strings.ToLower(a)] = true
	}
	plan := &PostJoinPlan{}
	for _, p := range spec.JoinPreds {
		if in[strings.ToLower(p.LeftRel)] && in[strings.ToLower(p.RightRel)] {
			plan.Preds = append(plan.Preds, p)
		}
	}
	for _, a := range spec.Projection {
		if in[strings.ToLower(a.Rel)] {
			plan.Projection = append(plan.Projection, a)
		}
	}
	return plan
}

// ExecutePostJoinPlan reconstructs the single-table result from a
// relationship-preserving result that carries a shipped plan. It is a pure
// client-side computation over the result sets (no database access), so it
// also runs on results received over the wire.
func ExecutePostJoinPlan(res *Result) (*ResultSet, error) {
	if res.PostJoinPlan == nil {
		return nil, fmt.Errorf("db: result carries no post-join plan (not an RDBRP result?)")
	}
	rels := make(map[string]*engine.Relation, len(res.Sets))
	for _, set := range res.Sets {
		rels[strings.ToLower(set.Name)] = setToRelation(set)
	}
	rel, err := core.PostJoin(res.PostJoinPlan.Preds, rels, res.PostJoinPlan.Projection)
	if err != nil {
		return nil, err
	}
	return relToSet("postjoin", rel, rel.ColumnNames()), nil
}

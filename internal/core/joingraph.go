// Package core implements the paper's contribution: computing a result
// subdatabase (SELECT RESULTDB) natively inside the DBMS.
//
// It provides the join graph model (Section 4.1), the Yannakakis-based
// reduction for acyclic topologies (Section 4.2, Algorithm 2), the
// cyclic-to-acyclic folding transformation (Section 4.3, Algorithm 3), the
// complete RESULTDB-SEMIJOIN algorithm (Section 4.4, Algorithm 4), the
// Decompose operator used as the single-table baseline (Section 6.3), and
// the post-join reconstruction of Definition 2.3.
package core

import (
	"fmt"
	"sort"
	"strings"

	"resultdb/internal/engine"
)

// Node is one vertex of a join graph. Initially it wraps a single filtered
// base relation; after folding it may contain several (Section 4.3).
type Node struct {
	// Aliases lists the base relation instances contained in this node.
	// len(Aliases) > 1 marks a fold.
	Aliases []string
	// Rel holds the node's tuples with alias-qualified columns, so join
	// predicates stay resolvable across folds.
	Rel *engine.Relation
}

// IsFold reports whether the node is the join of multiple base relations.
func (n *Node) IsFold() bool { return len(n.Aliases) > 1 }

// Contains reports whether the node contains the base relation alias.
func (n *Node) Contains(alias string) bool {
	for _, a := range n.Aliases {
		if strings.EqualFold(a, alias) {
			return true
		}
	}
	return false
}

// Name renders the node for logs and tests, e.g. "t⋈u" for a fold.
func (n *Node) Name() string { return strings.Join(n.Aliases, "⋈") }

// Edge is one join between two nodes. Preds lists the (possibly conjunctive,
// after folding) equi predicates; each predicate's Left side resolves inside
// X and Right side inside Y.
type Edge struct {
	X, Y  *Node
	Preds []engine.JoinPred
}

// Other returns the opposite endpoint of n.
func (e *Edge) Other(n *Node) *Node {
	if e.X == n {
		return e.Y
	}
	return e.X
}

// Graph is an undirected join graph JG_Q = (R, J) (Section 4.1): nodes are
// relations, edges are joins. Conjunctive predicates between the same node
// pair form a single edge, matching the paper's edge-counting acyclicity
// test.
type Graph struct {
	Nodes []*Node
	Edges []*Edge
	// projected marks output aliases (those with projection attributes),
	// consulted by the root heuristic and the early-stop optimization.
	projected map[string]bool
}

// BuildGraph constructs the join graph of an analyzed SPJ query from the
// per-alias filtered base relations (keyed by lower-cased alias). outputs
// lists the aliases that must end up fully reduced — the projected relations
// for Definition 2.2, or every relation with non-empty A_i* for
// Definition 2.3. The root heuristic and the early-stop optimization both
// key off this set.
func BuildGraph(spec *engine.SPJSpec, rels map[string]*engine.Relation, outputs []string) (*Graph, error) {
	g := &Graph{projected: make(map[string]bool)}
	byAlias := make(map[string]*Node, len(spec.Rels))
	for _, r := range spec.Rels {
		key := strings.ToLower(r.Alias)
		rel, ok := rels[key]
		if !ok {
			return nil, fmt.Errorf("core: missing relation for alias %q", r.Alias)
		}
		n := &Node{Aliases: []string{r.Alias}, Rel: rel}
		byAlias[key] = n
		g.Nodes = append(g.Nodes, n)
	}
	if outputs == nil {
		outputs = spec.OutputRels()
	}
	for _, alias := range outputs {
		g.projected[strings.ToLower(alias)] = true
	}
	// Merge all predicates between the same node pair into one edge.
	type pairKey struct{ a, b string }
	edgeOf := make(map[pairKey]*Edge)
	for _, jp := range spec.JoinPreds {
		l, r := strings.ToLower(jp.LeftRel), strings.ToLower(jp.RightRel)
		x, ok := byAlias[l]
		if !ok {
			return nil, fmt.Errorf("core: join predicate references unknown alias %q", jp.LeftRel)
		}
		y, ok := byAlias[r]
		if !ok {
			return nil, fmt.Errorf("core: join predicate references unknown alias %q", jp.RightRel)
		}
		key := pairKey{l, r}
		rev := false
		if l > r {
			key = pairKey{r, l}
			rev = true
		}
		e, ok := edgeOf[key]
		if !ok {
			if rev {
				e = &Edge{X: y, Y: x}
			} else {
				e = &Edge{X: x, Y: y}
			}
			edgeOf[key] = e
			g.Edges = append(g.Edges, e)
		}
		p := jp
		if e.X != x {
			p = jp.Reverse()
		}
		e.Preds = append(e.Preds, p)
	}
	return g, nil
}

// NodeOf returns the node currently containing alias, or nil.
func (g *Graph) NodeOf(alias string) *Node {
	for _, n := range g.Nodes {
		if n.Contains(alias) {
			return n
		}
	}
	return nil
}

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n *Node) int {
	d := 0
	for _, e := range g.Edges {
		if e.X == n || e.Y == n {
			d++
		}
	}
	return d
}

// EdgesOf returns the edges incident to n.
func (g *Graph) EdgesOf(n *Node) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.X == n || e.Y == n {
			out = append(out, e)
		}
	}
	return out
}

// Components returns the number of connected components.
func (g *Graph) Components() int {
	if len(g.Nodes) == 0 {
		return 0
	}
	idx := make(map[*Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		idx[n] = i
	}
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(idx[e.X]), find(idx[e.Y])
		if a != b {
			parent[a] = b
		}
	}
	comps := map[int]bool{}
	for i := range g.Nodes {
		comps[find(i)] = true
	}
	return len(comps)
}

// IsCyclic implements JG-cyclicity (Definition 4.2 and the paper's test):
// a connected join graph is cyclic iff #joins >= #relations. Disconnected
// graphs (cross products) generalize via the forest bound
// #edges > #nodes - #components.
func (g *Graph) IsCyclic() bool {
	return len(g.Edges) > len(g.Nodes)-g.Components()
}

// Projected reports whether the node contains at least one output alias.
func (g *Graph) Projected(n *Node) bool {
	for _, a := range n.Aliases {
		if g.projected[strings.ToLower(a)] {
			return true
		}
	}
	return false
}

// resolvePred maps a predicate side to column positions inside a node.
func resolvePreds(n *Node, attrs []engine.Attr) ([]int, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		idx, err := n.Rel.ColIndex(a.Rel, a.Col)
		if err != nil {
			return nil, fmt.Errorf("core: node %s: %w", n.Name(), err)
		}
		cols[i] = idx
	}
	return cols, nil
}

// edgeCols resolves an edge's predicate columns in both endpoint nodes.
func edgeCols(e *Edge) (xCols, yCols []int, err error) {
	xa := make([]engine.Attr, len(e.Preds))
	ya := make([]engine.Attr, len(e.Preds))
	for i, p := range e.Preds {
		xa[i] = engine.Attr{Rel: p.LeftRel, Col: p.LeftCol}
		ya[i] = engine.Attr{Rel: p.RightRel, Col: p.RightCol}
	}
	xCols, err = resolvePreds(e.X, xa)
	if err != nil {
		return nil, nil, err
	}
	yCols, err = resolvePreds(e.Y, ya)
	if err != nil {
		return nil, nil, err
	}
	return xCols, yCols, nil
}

// edgeColsFor resolves an edge's predicate columns with target's side first:
// (targetCols, otherCols) regardless of the edge's stored orientation. The
// exact and Bloom semi-join passes both use this single orientation rule, so
// a future orientation bug cannot diverge between them.
func edgeColsFor(target *Node, e *Edge) (tCols, oCols []int, err error) {
	xCols, yCols, err := edgeCols(e)
	if err != nil {
		return nil, nil, err
	}
	if e.X == target {
		return xCols, yCols, nil
	}
	return yCols, xCols, nil
}

// sortNodesDeterministic orders candidate nodes by the criterion, breaking
// ties by the nodes' ordinal position in the input slice (callers pass
// g.Nodes copies, so ties resolve to FROM-clause order). The sort is stable
// and never consults names or map iteration order, so heuristic choices are
// reproducible across runs and independent of alias spelling.
func sortNodesDeterministic(nodes []*Node, better func(a, b *Node) bool) {
	sort.SliceStable(nodes, func(i, j int) bool {
		return better(nodes[i], nodes[j]) && !better(nodes[j], nodes[i])
	})
}

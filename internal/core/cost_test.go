package core

import (
	"fmt"
	"math/rand"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/engine"
	"resultdb/internal/stats"
	"resultdb/internal/types"
)

// TestChooseRootTieBreakOrdinal pins the tie-breaking rule: when candidates
// are equal under a strategy's criterion, the root is the earliest relation
// in FROM-clause order — never an accident of sorting or of name ordering.
func TestChooseRootTieBreakOrdinal(t *testing.T) {
	cols := []catalog.Column{intCol("id"), intCol("k")}
	src := memSource{
		"ra": mkTable(t, "ra", cols, ir(1, 10), ir(2, 20)),
		"rb": mkTable(t, "rb", cols, ir(1, 10), ir(2, 20)),
		"rc": mkTable(t, "rc", cols, ir(1, 10), ir(2, 20)),
	}
	// Chain x - y - z with x and z projected: under the heuristic x and z
	// tie (both projected, both degree 1), so FROM order must decide.
	query := func(from string) string {
		return fmt.Sprintf(`SELECT x.id, z.id FROM %s WHERE x.k = y.k AND y.k = z.k`, from)
	}
	cases := []struct {
		from, want string
	}{
		{"ra AS x, rb AS y, rc AS z", "x"},
		{"rc AS z, rb AS y, ra AS x", "z"},
		// Alias names sort against FROM order: ordinal must still win.
		{"ra AS z, rb AS y, rc AS x", "z"},
	}
	for _, c := range cases {
		spec, rels := analyze(t, src, query(c.from))
		_, st, err := SemiJoinReduce(spec, rels, nil, Options{Root: RootHeuristic})
		if err != nil {
			t.Fatalf("FROM %s: %v", c.from, err)
		}
		if st.Root != c.want {
			t.Errorf("FROM %s: root = %s, want %s (ordinal tie-break)", c.from, st.Root, c.want)
		}
	}
	// RootMaxDegree on a 4-chain: the two middle nodes tie at degree 2;
	// the earlier one in FROM order must win.
	src4 := chainSource(t)
	spec, rels := analyze(t, src4, chainQuery)
	_, st, err := SemiJoinReduce(spec, rels, nil, Options{Root: RootMaxDegree})
	if err != nil {
		t.Fatal(err)
	}
	if st.Root != "r2" {
		t.Errorf("RootMaxDegree root = %s, want r2 (first of the degree-2 tie)", st.Root)
	}
}

// statsFor builds TableStats for a spec the way db.reduceSpec does: one entry
// per alias, keyed lower-cased, from the base table's statistics.
func statsFor(t *testing.T, src memSource, spec *engine.SPJSpec) map[string]*stats.Table {
	t.Helper()
	out := make(map[string]*stats.Table)
	for _, r := range spec.Rels {
		tab, err := src.Table(r.Table)
		if err != nil {
			t.Fatal(err)
		}
		out[r.Alias] = stats.FromTable(tab)
	}
	return out
}

func relFingerprint(rel *engine.Relation) string {
	s := ""
	for _, row := range rel.Rows {
		for _, v := range row {
			s += v.String() + "|"
		}
		s += "\n"
	}
	return s
}

// TestCostBasedMatchesHeuristic is the core-level byte-identity check: the
// cost-based planner may pick any root, semi-join order, Bloom decision, and
// range prefilter, but every reduced relation must come out identical to the
// heuristic plan's, row for row and in the same order.
func TestCostBasedMatchesHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cols := []catalog.Column{intCol("id"), intCol("k")}
	// A fact table large enough to clear the SIP (512) and Bloom (4096)
	// gates, against a dimension with a narrow key range so both fire.
	factRows := make([]types.Row, 6000)
	for i := range factRows {
		factRows[i] = ir(i, rng.Intn(1000))
	}
	dimRows := make([]types.Row, 50)
	for i := range dimRows {
		dimRows[i] = ir(i, 100+rng.Intn(50))
	}
	midRows := make([]types.Row, 800)
	for i := range midRows {
		midRows[i] = ir(i, rng.Intn(400))
	}
	src := memSource{
		"fact": mkTable(t, "fact", cols, factRows...),
		"dim":  mkTable(t, "dim", cols, dimRows...),
		"mid":  mkTable(t, "mid", cols, midRows...),
	}
	query := `SELECT f.id, m.id FROM fact AS f, mid AS m, dim AS d
		WHERE f.k = m.k AND m.k = d.k`
	for _, early := range []bool{false, true} {
		spec, rels := analyze(t, src, query)
		base, _, err := SemiJoinReduce(spec, rels, nil, Options{EarlyStop: early})
		if err != nil {
			t.Fatal(err)
		}
		spec2, rels2 := analyze(t, src, query)
		opts := Options{EarlyStop: early, CostBased: true, TableStats: statsFor(t, src, spec2)}
		got, st, err := SemiJoinReduce(spec2, rels2, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		for alias, want := range base {
			g, ok := got[alias]
			if !ok {
				t.Fatalf("earlyStop=%v: alias %s missing from cost-based result", early, alias)
			}
			if relFingerprint(g) != relFingerprint(want) {
				t.Errorf("earlyStop=%v: alias %s differs between heuristic and cost-based plans (%d vs %d rows)",
					early, alias, len(g.Rows), len(want.Rows))
			}
		}
		if st.Root == "" {
			t.Errorf("earlyStop=%v: cost-based run recorded no root", early)
		}
	}
}

// TestCostBasedSIPFires checks the sideways-information-passing path actually
// engages on a range-selective edge (so the equivalence test above is not
// vacuously passing with the filter disabled).
func TestCostBasedSIPFires(t *testing.T) {
	cols := []catalog.Column{intCol("id"), intCol("k")}
	factRows := make([]types.Row, 4000)
	for i := range factRows {
		factRows[i] = ir(i, i%2000)
	}
	dimRows := make([]types.Row, 40)
	for i := range dimRows {
		dimRows[i] = ir(i, i)
	}
	src := memSource{
		"fact": mkTable(t, "fact", cols, factRows...),
		"dim":  mkTable(t, "dim", cols, dimRows...),
	}
	spec, rels := analyze(t, src, `SELECT f.id FROM fact AS f, dim AS d WHERE f.k = d.k`)
	opts := Options{CostBased: true, TableStats: statsFor(t, src, spec)}
	_, st, err := SemiJoinReduce(spec, rels, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.RangeSkipped == 0 {
		t.Error("RangeSkipped = 0: the range prefilter never engaged on a highly selective edge")
	}
}

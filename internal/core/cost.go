package core

import (
	"math"
	"sort"
	"strings"

	"resultdb/internal/stats"
)

// This file is the cost model behind Options.CostBased: a thin estimator
// over per-table statistics (internal/stats) that drives four planning
// decisions — root selection (the paper's open Root Node Enumeration
// Problem, Section 4.2), the order of the bottom-up semi-join pass, the
// per-edge adaptive Bloom prefilter decision, and the sideways-information-
// passing range gate. Every decision changes only the plan; the executed
// operators are exact, so results stay byte-identical to the heuristic path.

const (
	// sipMinTargetRows gates sideways information passing: below this probe
	// cardinality the range pre-scan cannot pay for itself.
	sipMinTargetRows = 1024
	// sipMaxKeepFrac applies the range filter only when the histogram
	// predicts it removes at least ~40% of the probe rows. The pre-scan is a
	// cheap typed compare but the surviving rows are gathered into a new
	// relation, so weak cuts cost more than they save.
	sipMaxKeepFrac = 0.6
	// bloomMinTargetRows and bloomMaxSel gate the adaptive Bloom prefilter.
	// A Bloom probe costs about as much as the exact KeySet probe it fronts,
	// so the pass only pays when it empties most of a probe side too large
	// for the exact build to stay cache-resident — hence the aggressive
	// cardinality and selectivity bars. (Benchmarks at JOB scale 0.1 showed
	// a 6.5k-row drop via Bloom still losing to the exact pass alone.)
	bloomMinTargetRows = 32768
	bloomMaxSel        = 0.15
	// rootSwitchFrac and orderSwitchFrac are hysteresis: the cost-based plan
	// replaces the heuristic root / reverse-BFS order only when the model
	// predicts a clear win. Estimates on small inputs are noisy, and a
	// misprediction there costs more than the marginal gain it chases.
	// The order bar is calibrated on JOB: schedules whose predicted saving
	// was under ~2-3% (20b at 0.977, 33c at 0.985) lost at execution, while
	// every real reorder win predicted at least ~5% (24a at 0.952, 12a at
	// 0.947, 15d at 0.873) — 0.965 sits in the gap.
	rootSwitchFrac  = 0.8
	orderSwitchFrac = 0.965
	// rootBeamWidth bounds root enumeration: besides the heuristic root,
	// only the largest nodes are simulated. Each simulation costs a BFS plus
	// O(edges) selectivity math, and on wide queries (JOB 33c joins 13
	// relations) enumerating every node costs more than the plan saves;
	// roots that beat the heuristic are in practice large central relations.
	rootBeamWidth = 4
)

// estimator holds the cost model's state: alias-keyed base-table statistics
// plus the current (actual, updated as the passes execute) per-node row
// counts. colNDV lazily caches each node's per-column base NDV (0 =
// unresolved, NaN = no statistics) so the hot sel/ndv path — called
// O(nodes·edges) times during root enumeration — resolves the alias+column
// stats lookup at most once per column, and only for columns that actually
// join; the zero-value sentinel keeps the cache a plain zeroed allocation.
// Nil estimator = heuristic mode; every entry point tolerates nil.
type estimator struct {
	stats  map[string]*stats.Table
	rows   map[*Node]float64
	colNDV map[*Node][]float64
}

// newEstimator returns an estimator over the graph's current relations, or
// nil when no statistics were provided (planning falls back to heuristics).
func newEstimator(g *Graph, tableStats map[string]*stats.Table) *estimator {
	if len(tableStats) == 0 {
		return nil
	}
	est := &estimator{
		stats:  tableStats,
		rows:   make(map[*Node]float64, len(g.Nodes)),
		colNDV: make(map[*Node][]float64, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		est.rows[n] = float64(len(n.Rel.Rows))
		est.colNDV[n] = make([]float64, len(n.Rel.Cols))
	}
	return est
}

// baseNDV resolves (and caches) the base-table NDV of one column of n;
// any non-positive return (NaN) means no statistics for that column.
func (est *estimator) baseNDV(n *Node, c int) float64 {
	ndvs := est.colNDV[n]
	if ndvs[c] == 0 {
		ndvs[c] = math.NaN()
		if cs := est.colStats(n, c); cs != nil && cs.NDV > 0 {
			ndvs[c] = float64(cs.NDV)
		}
	}
	return ndvs[c]
}

// observe records a node's actual cardinality after an executed reduction,
// keeping later estimates anchored to reality.
func (est *estimator) observe(n *Node) {
	if est != nil {
		est.rows[n] = float64(len(n.Rel.Rows))
	}
}

// colStats resolves base-table column statistics for one column of a node's
// relation via its alias-qualified ColRef (works across folds, whose
// relations keep per-alias column provenance).
func (est *estimator) colStats(n *Node, col int) *stats.Column {
	cr := n.Rel.Cols[col]
	return est.stats[strings.ToLower(cr.Rel)].Col(cr.Name)
}

// ndv estimates the number of distinct keys of n over the key columns cols,
// given per-node row counts rows: the product of per-column base NDVs,
// capped by the node's current cardinality (a filtered or reduced relation
// cannot have more distinct keys than rows). Columns without statistics
// count as all-distinct (the conservative worst case).
func (est *estimator) ndv(rows map[*Node]float64, n *Node, cols []int) float64 {
	r := rows[n]
	if r <= 1 {
		return r
	}
	prod := 1.0
	for _, c := range cols {
		d := r
		if base := est.baseNDV(n, c); base > 0 && base < d {
			d = base
		}
		prod *= d
		if prod >= r {
			return r
		}
	}
	if prod < 1 {
		prod = 1
	}
	return prod
}

// sel estimates the retained fraction of target under target ⋉ source along
// e, using the containment model: sel ≈ ndv(source keys) / ndv(target keys),
// clamped to [0, 1]. An empty source empties the target (sel 0).
func (est *estimator) sel(rows map[*Node]float64, target, source *Node, e *Edge) float64 {
	tCols, sCols, err := edgeColsFor(target, e)
	if err != nil {
		return 1
	}
	return est.selCols(rows, target, source, tCols, sCols)
}

// selCols is sel with the edge's columns already resolved (the planning
// loops resolve each edge once and reuse the slices; resolution allocates).
func (est *estimator) selCols(rows map[*Node]float64, target, source *Node, tCols, sCols []int) float64 {
	ndvS := est.ndv(rows, source, sCols)
	if ndvS <= 0 {
		return 0
	}
	ndvT := est.ndv(rows, target, tCols)
	if ndvT <= 0 {
		return 0
	}
	if s := ndvS / ndvT; s < 1 {
		return s
	}
	return 1
}

// liveSel is sel against the estimator's live (actual) row counts.
func (est *estimator) liveSel(target, source *Node, e *Edge) float64 {
	return est.sel(est.rows, target, source, e)
}

// rangeFrac estimates the fraction of target's col values inside [lo, hi]
// from the base column's histogram; 1 (no benefit) when no histogram exists.
func (est *estimator) rangeFrac(n *Node, col int, lo, hi float64) float64 {
	cs := est.colStats(n, col)
	if cs == nil || cs.Hist == nil {
		return 1
	}
	return cs.Hist.FracInRange(lo, hi)
}

// bloomWorth decides whether an adaptive Bloom prefilter pays for the edge:
// the probe side must be large enough to amortize the build, and the
// estimated drop substantial enough that the (approximate) pass saves the
// exact pass real work.
func (est *estimator) bloomWorth(target, source *Node, e *Edge) bool {
	if len(target.Rel.Rows) < bloomMinTargetRows {
		return false
	}
	return est.liveSel(target, source, e) <= bloomMaxSel
}

// bloomSize returns the expected distinct build-key count for sizing the
// filter (the fill factor depends on distinct insertions, not rows).
func (est *estimator) bloomSize(source *Node, e *Edge) int {
	// edgeColsFor(source, e) resolves source's own key columns first.
	sCols, _, err := edgeColsFor(source, e)
	if err != nil {
		return len(source.Rel.Rows)
	}
	n := int(est.ndv(est.rows, source, sCols))
	if n < 1 {
		n = 1
	}
	return n
}

// simArc is one direction of a spanning-tree edge in the root simulator.
type simArc struct {
	other int // ordinal of the node across the edge
	edge  int // index into rootSim's per-edge arrays
}

// simStep is one directed edge of a simulated BFS orientation.
type simStep struct {
	parent, child int
	edge          int
	parentIsA     bool // parent is the edge's a-endpoint (column resolution)
}

// rootSim precomputes the join tree's structure over node ordinals —
// adjacency, per-edge key-column base NDVs, projection marks — and owns
// reusable scratch buffers, so simulating one candidate root is an
// allocation-free BFS plus O(edges) float math. Planning overhead must stay
// well under the runtime of the smallest real query, or cost-based mode
// loses on exactly the queries it cannot improve.
type rootSim struct {
	est       *estimator
	nodes     []*Node
	adj       [][]simArc
	base      []float64 // starting per-node cardinalities
	projected []bool
	projCount int
	// Per spanning-tree edge: base NDVs of the key columns on each endpoint
	// (a = the BFS parent side at construction). selErr marks edges whose
	// columns failed to resolve; their selectivity is 1, as in sel.
	edgeA      []int
	aNDV, bNDV [][]float64
	selErr     []bool
	// Scratch reused across candidate simulations.
	rows    []float64
	visited []bool
	queue   []int
	order   []simStep
	needed  []bool
	cands   []int
}

// newRootSim builds the simulator directly over g's edge list (the reduced
// graph is a tree, so the edges ARE the spanning tree; a disconnected graph
// just fails every candidate's connectivity check in simulate). ok is false
// only on an empty graph.
func newRootSim(g *Graph, est *estimator) (*rootSim, bool) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, false
	}
	ne := len(g.Edges)
	s := &rootSim{
		est:       est,
		nodes:     g.Nodes,
		adj:       make([][]simArc, n),
		base:      make([]float64, n),
		projected: make([]bool, n),
		edgeA:     make([]int, 0, ne),
		aNDV:      make([][]float64, ne),
		bNDV:      make([][]float64, ne),
		selErr:    make([]bool, ne),
		rows:      make([]float64, n),
		visited:   make([]bool, n),
		queue:     make([]int, 0, n),
		order:     make([]simStep, 0, ne),
		needed:    make([]bool, n),
	}
	idx := make(map[*Node]int, n)
	for i, nd := range g.Nodes {
		idx[nd] = i
		s.base[i] = est.rows[nd]
		if g.Projected(nd) {
			s.projected[i] = true
			s.projCount++
		}
	}
	for _, e := range g.Edges {
		a, okA := idx[e.X]
		b, okB := idx[e.Y]
		if !okA || !okB {
			continue
		}
		k := len(s.edgeA)
		s.edgeA = append(s.edgeA, a)
		s.adj[a] = append(s.adj[a], simArc{other: b, edge: k})
		s.adj[b] = append(s.adj[b], simArc{other: a, edge: k})
		aCols, bCols, err := edgeColsFor(e.X, e)
		if err != nil {
			s.selErr[k] = true
			continue
		}
		s.aNDV[k] = ndvsOf(est, e.X, aCols)
		s.bNDV[k] = ndvsOf(est, e.Y, bCols)
	}
	return s, true
}

// ndvsOf prefetches the base NDVs (0 = unknown) of a node's key columns.
func ndvsOf(est *estimator, n *Node, cols []int) []float64 {
	out := make([]float64, len(cols))
	for i, c := range cols {
		out[i] = est.baseNDV(n, c)
	}
	return out
}

// ndvIdx mirrors estimator.ndv over prefetched base NDVs: the product of
// per-column NDVs capped by the node's simulated cardinality.
func ndvIdx(r float64, ndvs []float64) float64 {
	if r <= 1 {
		return r
	}
	prod := 1.0
	for _, base := range ndvs {
		d := r
		if base > 0 && base < d {
			d = base
		}
		prod *= d
		if prod >= r {
			return r
		}
	}
	if prod < 1 {
		prod = 1
	}
	return prod
}

// stepSel is the containment selectivity of target ⋉ source for one
// simulated step (parentTarget selects which endpoint is the target).
func (s *rootSim) stepSel(st simStep, parentTarget bool) float64 {
	if s.selErr[st.edge] {
		return 1
	}
	tNDV, sNDV := s.aNDV[st.edge], s.bNDV[st.edge]
	tIdx, sIdx := st.parent, st.child
	if !parentTarget {
		tIdx, sIdx = st.child, st.parent
	}
	if (st.parentIsA && !parentTarget) || (!st.parentIsA && parentTarget) {
		tNDV, sNDV = sNDV, tNDV
	}
	ndvS := ndvIdx(s.rows[sIdx], sNDV)
	if ndvS <= 0 {
		return 0
	}
	ndvT := ndvIdx(s.rows[tIdx], tNDV)
	if ndvT <= 0 {
		return 0
	}
	if v := ndvS / ndvT; v < 1 {
		return v
	}
	return 1
}

// simulate runs both reduction passes (including the early-stop schedule)
// from the given root ordinal and returns the estimated total semi-join
// work: Σ (build rows + probe rows) over every executed edge. ok is false
// when the tree is disconnected from root.
func (s *rootSim) simulate(root int, opts *Options) (float64, bool) {
	for i := range s.visited {
		s.visited[i] = false
	}
	s.queue, s.order = s.queue[:0], s.order[:0]
	s.visited[root] = true
	s.queue = append(s.queue, root)
	for qi := 0; qi < len(s.queue); qi++ {
		n := s.queue[qi]
		for _, arc := range s.adj[n] {
			if s.visited[arc.other] {
				continue
			}
			s.visited[arc.other] = true
			s.order = append(s.order, simStep{
				parent: n, child: arc.other, edge: arc.edge,
				parentIsA: s.edgeA[arc.edge] == n,
			})
			s.queue = append(s.queue, arc.other)
		}
	}
	if len(s.queue) != len(s.nodes) {
		return 0, false
	}
	copy(s.rows, s.base)
	cost := 0.0
	for i := len(s.order) - 1; i >= 0; i-- {
		st := s.order[i]
		cost += s.rows[st.parent] + s.rows[st.child]
		s.rows[st.parent] *= s.stepSel(st, true)
	}
	remaining := 0
	if opts.EarlyStop {
		copy(s.needed, s.projected)
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.needed[s.order[i].child] {
				s.needed[s.order[i].parent] = true
			}
		}
		remaining = s.projCount
		if s.projected[root] {
			remaining--
		}
	}
	for _, st := range s.order {
		if opts.EarlyStop {
			if remaining == 0 {
				break
			}
			if !s.needed[st.child] {
				continue
			}
		}
		cost += s.rows[st.parent] + s.rows[st.child]
		s.rows[st.child] *= s.stepSel(st, false)
		if opts.EarlyStop && s.projected[st.child] {
			remaining--
		}
	}
	return cost, true
}

// candidates returns up to rootBeamWidth non-heuristic root ordinals: the
// largest nodes by current cardinality, in ordinal order (ties and the final
// slice keep g.Nodes order, so enumeration is deterministic).
func (s *rootSim) candidates(heur int) []int {
	s.cands = s.cands[:0]
	for i := range s.nodes {
		if i != heur {
			s.cands = append(s.cands, i)
		}
	}
	if len(s.cands) > rootBeamWidth {
		// Selection by size with ordinal tie-break, then restore ordinal order.
		sort.SliceStable(s.cands, func(i, j int) bool {
			return s.base[s.cands[i]] > s.base[s.cands[j]]
		})
		s.cands = s.cands[:rootBeamWidth]
		sort.Ints(s.cands)
	}
	return s.cands
}

// chooseRootCostBased picks the root minimizing the simulated total
// semi-join work, but only deposes the heuristic's choice when the predicted
// saving clears rootSwitchFrac (estimates mispredict on small inputs, and the
// heuristic is already good). Candidates are tried in ordinal (g.Nodes)
// order and ties keep the earliest, so the choice is deterministic. Falls
// back to the paper's heuristic when no statistics are available. The
// second return reports whether the heuristic's choice was deposed.
func chooseRootCostBased(g *Graph, opts *Options, est *estimator) (*Node, bool) {
	heur := chooseRoot(g, RootHeuristic)
	if est == nil || heur == nil {
		return heur, false
	}
	sim, ok := newRootSim(g, est)
	if !ok {
		return heur, false
	}
	heurIdx := -1
	for i, n := range g.Nodes {
		if n == heur {
			heurIdx = i
			break
		}
	}
	heurCost, ok := sim.simulate(heurIdx, opts)
	if !ok {
		return heur, false
	}
	bestIdx, bestCost := heurIdx, heurCost
	for _, ci := range sim.candidates(heurIdx) {
		c, ok := sim.simulate(ci, opts)
		if !ok {
			continue
		}
		if c < bestCost {
			bestIdx, bestCost = ci, c
		}
	}
	if bestCost >= heurCost*rootSwitchFrac {
		return heur, false
	}
	return g.Nodes[bestIdx], bestIdx != heurIdx
}

// costOrderBottomUp reorders the bottom-up pass: it returns the edges of
// order in execution order (the heuristic executes them in reverse BFS
// order), scheduling at each step the most selective ready edge. An edge
// (parent ⋉ child) is ready once every edge below the child has executed, so
// the child is fully reduced by its subtree — the classic Yannakakis
// invariant. Any such children-first linearization yields the identical
// fully-reduced relations (each node's final content depends only on its
// subtree, and semi-joins preserve target row order), so this is a pure
// cost decision with byte-identical output. The second return reports
// whether the returned schedule differs from the heuristic's reverse-BFS
// order.
func costOrderBottomUp(order []bfsEdge, est *estimator) ([]bfsEdge, bool) {
	if est == nil || len(order) <= 1 {
		out := make([]bfsEdge, 0, len(order))
		for i := len(order) - 1; i >= 0; i-- {
			out = append(out, order[i])
		}
		return out, false
	}
	pending := make(map[*Node]int, len(order))
	for _, be := range order {
		pending[be.parent]++
	}
	rows := make(map[*Node]float64, len(est.rows))
	for k, v := range est.rows {
		rows[k] = v
	}
	// Resolve every edge's key columns once; the candidate scan below
	// re-estimates selectivity O(edges) times per scheduled edge.
	tCols := make([][]int, len(order))
	sCols := make([][]int, len(order))
	for i, be := range order {
		tc, sc, err := edgeColsFor(be.parent, be.edge)
		if err == nil {
			tCols[i], sCols[i] = tc, sc
		}
	}
	// Baseline: the reverse-BFS schedule and its simulated probe+build cost.
	reverse := make([]bfsEdge, 0, len(order))
	baseCost := 0.0
	for i := len(order) - 1; i >= 0; i-- {
		be := order[i]
		reverse = append(reverse, be)
		baseCost += rows[be.parent] + rows[be.child]
		if tCols[i] != nil {
			rows[be.parent] *= est.selCols(rows, be.parent, be.child, tCols[i], sCols[i])
		}
	}
	for k, v := range est.rows {
		rows[k] = v
	}
	used := make([]bool, len(order))
	schedule := make([]bfsEdge, 0, len(order))
	greedyCost := 0.0
	for len(schedule) < len(order) {
		bestIdx := -1
		bestSel := 0.0
		// Scan candidates from the end (the reverse-BFS position the
		// heuristic would run first), so ties keep the heuristic order.
		for i := len(order) - 1; i >= 0; i-- {
			if used[i] || pending[order[i].child] > 0 {
				continue
			}
			s := 1.0
			if tCols[i] != nil {
				s = est.selCols(rows, order[i].parent, order[i].child, tCols[i], sCols[i])
			}
			if bestIdx == -1 || s < bestSel {
				bestIdx, bestSel = i, s
			}
		}
		if bestIdx == -1 {
			// Cannot happen on a forest; bail to the remaining reverse-BFS
			// order rather than loop forever.
			for i := len(order) - 1; i >= 0; i-- {
				if !used[i] {
					schedule = append(schedule, order[i])
				}
			}
			return schedule, true
		}
		be := order[bestIdx]
		used[bestIdx] = true
		pending[be.parent]--
		greedyCost += rows[be.parent] + rows[be.child]
		rows[be.parent] *= bestSel
		schedule = append(schedule, be)
	}
	// Hysteresis: keep the heuristic's reverse-BFS order unless the
	// most-selective-first schedule predicts a clearly cheaper pass.
	if greedyCost >= baseCost*orderSwitchFrac {
		return reverse, false
	}
	for i := range schedule {
		if schedule[i] != reverse[i] {
			return schedule, true
		}
	}
	return schedule, false
}

package core

import (
	"strings"
	"testing"

	"resultdb/internal/catalog"
)

// sameClassTriangleSrc: a, b, c each with (id, k); the query joins all three
// pairwise on k — JG-cyclic, α-acyclic.
func sameClassTriangleSrc(t *testing.T) memSource {
	t.Helper()
	cols := []catalog.Column{intCol("id"), intCol("k")}
	return memSource{
		"a": mkTable(t, "a", cols, ir(1, 1), ir(2, 2), ir(3, 7)),
		"b": mkTable(t, "b", cols, ir(1, 1), ir(2, 2), ir(3, 8)),
		"c": mkTable(t, "c", cols, ir(1, 1), ir(2, 9)),
	}
}

const sameClassTriangle = `
SELECT a.id, b.id, c.id FROM a AS a, b AS b, c AS c
WHERE a.k = b.k AND b.k = c.k AND a.k = c.k`

func TestDropImpliedEdgesSameClassTriangle(t *testing.T) {
	spec, rels := analyze(t, sameClassTriangleSrc(t), sameClassTriangle)
	g, err := BuildGraph(spec, rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCyclic() {
		t.Fatal("triangle must be JG-cyclic before reduction")
	}
	st := &Stats{}
	DropImpliedEdges(g, st)
	if st.ImpliedEdgesDropped != 1 {
		t.Errorf("dropped = %d, want 1", st.ImpliedEdgesDropped)
	}
	if g.IsCyclic() {
		t.Error("graph must be a tree after dropping the implied edge")
	}
}

func TestDropImpliedEdgesKeepsGenuineCycles(t *testing.T) {
	cols := []catalog.Column{intCol("id"), intCol("k"), intCol("l")}
	src := memSource{
		"a": mkTable(t, "a", cols, ir(1, 1, 1)),
		"b": mkTable(t, "b", cols, ir(1, 1, 1)),
		"c": mkTable(t, "c", cols, ir(1, 1, 1)),
	}
	// Three distinct attribute classes: no predicate is implied.
	spec, rels := analyze(t, src, `
		SELECT a.id, b.id, c.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.l = c.k AND a.l = c.l`)
	g, _ := BuildGraph(spec, rels, nil)
	st := &Stats{}
	DropImpliedEdges(g, st)
	if st.ImpliedEdgesDropped != 0 {
		t.Errorf("dropped = %d, want 0 (genuine cycle)", st.ImpliedEdgesDropped)
	}
	if !g.IsCyclic() {
		t.Error("genuine cycle must survive alpha-reduction")
	}
}

// TestAlphaReduceSkipsFolding: with AlphaReduce, the same-class triangle
// runs without folds and still matches the Decompose oracle; without it,
// folding happens and the results agree anyway.
func TestAlphaReduceSkipsFolding(t *testing.T) {
	src := sameClassTriangleSrc(t)
	spec, rels := analyze(t, src, sameClassTriangle)

	with := DefaultOptions()
	outWith, stWith, err := SemiJoinReduce(spec, rels, nil, with)
	if err != nil {
		t.Fatal(err)
	}
	if stWith.Folds != 0 || stWith.ImpliedEdgesDropped != 1 {
		t.Errorf("alpha path: folds=%d dropped=%d", stWith.Folds, stWith.ImpliedEdgesDropped)
	}

	spec2, rels2 := analyze(t, src, sameClassTriangle)
	without := DefaultOptions()
	without.AlphaReduce = false
	outWithout, stWithout, err := SemiJoinReduce(spec2, rels2, nil, without)
	if err != nil {
		t.Fatal(err)
	}
	if stWithout.Folds == 0 {
		t.Error("non-alpha path should have folded")
	}
	for _, alias := range []string{"a", "b", "c"} {
		if !sameRelation(outWith[alias].Distinct(), outWithout[alias].Distinct()) {
			t.Errorf("relation %s differs between alpha and fold paths", alias)
		}
	}
	// Both k=1 and k=2 survive (present in all three relations)?
	// a{1,2}, b{1,2}, c{1}: only k=1 joins all three.
	if len(outWith["a"].Rows) != 1 || outWith["a"].Rows[0][0].Int() != 1 {
		t.Errorf("a reduced to %v", outWith["a"].Rows)
	}
}

// TestAlphaReduceTransitiveChainWithShortcut: a 4-chain plus a shortcut
// a.k = d.k (all one class) — the shortcut is implied by the chain.
func TestAlphaReduceTransitiveChainWithShortcut(t *testing.T) {
	cols := []catalog.Column{intCol("id"), intCol("k")}
	src := memSource{
		"a": mkTable(t, "a", cols, ir(1, 1)),
		"b": mkTable(t, "b", cols, ir(1, 1)),
		"c": mkTable(t, "c", cols, ir(1, 1)),
		"d": mkTable(t, "d", cols, ir(1, 1)),
	}
	spec, rels := analyze(t, src, `
		SELECT a.id, d.id FROM a AS a, b AS b, c AS c, d AS d
		WHERE a.k = b.k AND b.k = c.k AND c.k = d.k AND a.k = d.k`)
	g, _ := BuildGraph(spec, rels, nil)
	st := &Stats{}
	DropImpliedEdges(g, st)
	if st.ImpliedEdgesDropped != 1 || g.IsCyclic() {
		t.Errorf("dropped=%d cyclic=%v; want the shortcut removed", st.ImpliedEdgesDropped, g.IsCyclic())
	}
}

// TestStatsStringIncludesAlpha covers the stats rendering.
func TestStatsStringIncludesAlpha(t *testing.T) {
	st := &Stats{ImpliedEdgesDropped: 2}
	if !strings.Contains(st.String(), "implied-edges-dropped=2") {
		t.Errorf("stats = %q", st.String())
	}
}

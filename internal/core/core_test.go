package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

// memSource is a trivial engine.Source for tests.
type memSource map[string]*storage.Table

func (m memSource) Table(name string) (*storage.Table, error) {
	if t, ok := m[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("no table %q", name)
}

func intCol(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindInt} }

func mkTable(t *testing.T, name string, cols []catalog.Column, rows ...types.Row) *storage.Table {
	t.Helper()
	def := catalog.MustTableDef(name, cols)
	tab := storage.NewTable(def)
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	return tab
}

func ir(vals ...int) types.Row {
	row := make(types.Row, len(vals))
	for i, v := range vals {
		row[i] = types.NewInt(int64(v))
	}
	return row
}

// chainSource builds a 4-relation chain r1 - r2 - r3 - r4 joined on k.
func chainSource(t *testing.T) memSource {
	t.Helper()
	cols := []catalog.Column{intCol("id"), intCol("k")}
	return memSource{
		"r1": mkTable(t, "r1", cols, ir(1, 10), ir(2, 20), ir(3, 30)),
		"r2": mkTable(t, "r2", cols, ir(1, 10), ir(2, 20), ir(3, 40)),
		"r3": mkTable(t, "r3", cols, ir(1, 10), ir(2, 50)),
		"r4": mkTable(t, "r4", cols, ir(1, 10), ir(2, 10), ir(3, 60)),
	}
}

const chainQuery = `
SELECT r1.id, r4.id FROM r1 AS r1, r2 AS r2, r3 AS r3, r4 AS r4
WHERE r1.k = r2.k AND r2.k = r3.k AND r3.k = r4.k`

func analyze(t *testing.T, src engine.Source, sql string) (*engine.SPJSpec, map[string]*engine.Relation) {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	ex := &engine.Executor{Src: src}
	rels, err := ex.BaseRelations(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, rels
}

func TestBuildGraphMergesParallelEdges(t *testing.T) {
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("x"), intCol("y")}, ir(1, 2, 3)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("x"), intCol("y")}, ir(1, 2, 3)),
	}
	spec, rels := analyze(t, src, `
		SELECT a.id, b.id FROM a AS a, b AS b WHERE a.x = b.x AND a.y = b.y`)
	g, err := BuildGraph(spec, rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Fatalf("parallel predicates must merge into one edge, got %d", len(g.Edges))
	}
	if len(g.Edges[0].Preds) != 2 {
		t.Fatalf("edge preds = %d, want 2", len(g.Edges[0].Preds))
	}
	if g.IsCyclic() {
		t.Error("two nodes with one (conjunctive) edge are acyclic")
	}
}

func TestIsCyclic(t *testing.T) {
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
		"c": mkTable(t, "c", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
	}
	spec, rels := analyze(t, src, `
		SELECT a.id, b.id, c.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.k = c.k AND a.k = c.k`)
	g, err := BuildGraph(spec, rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCyclic() {
		t.Error("triangle must be cyclic")
	}
	// Chain is acyclic.
	spec2, rels2 := analyze(t, chainSource(t), chainQuery)
	g2, _ := BuildGraph(spec2, rels2, nil)
	if g2.IsCyclic() {
		t.Error("chain must be acyclic")
	}
	if got := g2.Components(); got != 1 {
		t.Errorf("components = %d", got)
	}
}

func TestReduceRelationsChain(t *testing.T) {
	spec, rels := analyze(t, chainSource(t), chainQuery)
	st := &Stats{}
	g, err := BuildGraph(spec, rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReduceRelations(g, DefaultOptions(), st); err != nil {
		t.Fatal(err)
	}
	// Only k=10 survives the full chain: r1{1}, r2{1}, r3{1}, r4{1,2}.
	wantLens := map[string]int{"r1": 1, "r2": 1, "r3": 1, "r4": 2}
	for alias, want := range wantLens {
		n := g.NodeOf(alias)
		if n == nil {
			t.Fatalf("missing node %s", alias)
		}
		if len(n.Rel.Rows) != want {
			t.Errorf("%s reduced to %d rows, want %d", alias, len(n.Rel.Rows), want)
		}
	}
	if st.SemiJoins == 0 {
		t.Error("no semi-joins recorded")
	}
}

func TestReduceRelationsRejectsCyclicAndDisconnected(t *testing.T) {
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
	}
	spec, rels := analyze(t, src, "SELECT a.id, b.id FROM a AS a, b AS b WHERE a.id = 1 AND b.id = 1")
	g, _ := BuildGraph(spec, rels, nil)
	err := ReduceRelations(g, DefaultOptions(), &Stats{})
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("disconnected graph error = %v", err)
	}
}

func TestEarlyStopSkipsUnprojectedSubtrees(t *testing.T) {
	// Star: center r2 joined to r1, r3, r4; only r1 projected.
	src := chainSource(t)
	sql := `
SELECT r1.id FROM r1 AS r1, r2 AS r2, r3 AS r3, r4 AS r4
WHERE r2.k = r1.k AND r2.k = r3.k AND r2.k = r4.k`
	spec, rels := analyze(t, src, sql)

	withStop := Options{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true}
	without := Options{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: false}

	out1, st1, err := SemiJoinReduce(spec, rels, nil, withStop)
	if err != nil {
		t.Fatal(err)
	}
	spec2, rels2 := analyze(t, src, sql)
	out2, st2, err := SemiJoinReduce(spec2, rels2, nil, without)
	if err != nil {
		t.Fatal(err)
	}
	if st1.SemiJoins >= st2.SemiJoins {
		t.Errorf("early stop did not save semi-joins: %d vs %d", st1.SemiJoins, st2.SemiJoins)
	}
	if !sameRelation(out1["r1"], out2["r1"]) {
		t.Error("early stop changed the projected relation's reduction")
	}
}

func sameRelation(a, b *engine.Relation) bool {
	as, bs := renderSorted(a), renderSorted(b)
	return strings.Join(as, "\n") == strings.Join(bs, "\n")
}

func renderSorted(r *engine.Relation) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.String()
	}
	sort.Strings(out)
	return out
}

func TestFoldJoinGraphTriangle(t *testing.T) {
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1), ir(2, 2)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1), ir(2, 3)),
		"c": mkTable(t, "c", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1), ir(2, 2)),
	}
	spec, rels := analyze(t, src, `
		SELECT a.id, b.id, c.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.k = c.k AND a.k = c.k`)
	g, err := BuildGraph(spec, rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := &Stats{}
	if err := FoldJoinGraph(g, FoldMaxDegree, st); err != nil {
		t.Fatal(err)
	}
	if g.IsCyclic() {
		t.Error("graph still cyclic after folding")
	}
	if st.Folds == 0 {
		t.Error("no folds recorded")
	}
	// One fold of a triangle leaves 2 nodes and 1 merged edge.
	if len(g.Nodes) != 2 || len(g.Edges) != 1 {
		t.Errorf("nodes=%d edges=%d after fold", len(g.Nodes), len(g.Edges))
	}
	foundFold := false
	for _, n := range g.Nodes {
		if n.IsFold() {
			foundFold = true
			if len(n.Rel.Cols) != 4 {
				t.Errorf("fold has %d cols, want 4", len(n.Rel.Cols))
			}
		}
	}
	if !foundFold {
		t.Error("no fold node present")
	}
}

func TestFoldStrategiesAllTerminate(t *testing.T) {
	for _, strat := range []FoldStrategy{FoldMaxDegree, FoldFirst, FoldMinCard} {
		src := memSource{
			"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
			"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
			"c": mkTable(t, "c", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
			"d": mkTable(t, "d", []catalog.Column{intCol("id"), intCol("k")}, ir(1, 1)),
		}
		// K4: every pair joined — multiple cycles (the paper's JG 1 shape).
		spec, rels := analyze(t, src, `
			SELECT a.id, b.id, c.id, d.id FROM a AS a, b AS b, c AS c, d AS d
			WHERE a.k = b.k AND a.k = c.k AND a.k = d.k
			  AND b.k = c.k AND b.k = d.k AND c.k = d.k`)
		g, err := BuildGraph(spec, rels, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := &Stats{}
		if err := FoldJoinGraph(g, strat, st); err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if g.IsCyclic() {
			t.Errorf("strategy %d left a cyclic graph", strat)
		}
	}
}

func TestSemiJoinReduceCyclicMatchesDecompose(t *testing.T) {
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("k")},
			ir(1, 1), ir(2, 2), ir(3, 3)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("k")},
			ir(1, 1), ir(2, 2), ir(3, 9)),
		"c": mkTable(t, "c", []catalog.Column{intCol("id"), intCol("k")},
			ir(1, 1), ir(2, 8)),
	}
	sql := `SELECT a.id, b.id, c.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.k = c.k AND a.k = c.k`
	assertReduceMatchesDecompose(t, src, sql)
}

// assertReduceMatchesDecompose checks Theorem 4.4 for one query: the native
// algorithm's reduced relations (projected, deduped) equal the Decompose of
// the single-table result.
func assertReduceMatchesDecompose(t *testing.T, src engine.Source, sql string) {
	t.Helper()
	spec, rels := analyze(t, src, sql)
	reduced, _, err := SemiJoinReduce(spec, rels, nil, DefaultOptions())
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	ex := &engine.Executor{Src: src}
	joined, err := ex.RunSPJ(spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Decompose(joined, spec.OutputRels())
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range spec.OutputRels() {
		key := strings.ToLower(alias)
		got := reduced[key].Distinct()
		want := oracle[key]
		if !sameRelation(got, want) {
			t.Errorf("%s: relation %s mismatch:\nreduced: %v\ndecompose: %v",
				sql, alias, renderSorted(got), renderSorted(want))
		}
	}
}

func TestRootStrategies(t *testing.T) {
	spec, rels := analyze(t, chainSource(t), chainQuery)
	for _, strat := range []RootStrategy{RootHeuristic, RootFirst, RootMaxDegree} {
		spec2, rels2 := spec, rels
		_ = spec2
		reduced, st, err := SemiJoinReduce(spec, rels2, nil, Options{Root: strat, EarlyStop: false})
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if st.Root == "" {
			t.Errorf("strategy %d: no root recorded", strat)
		}
		if len(reduced["r1"].Rows) != 1 {
			t.Errorf("strategy %d: r1 rows = %d", strat, len(reduced["r1"].Rows))
		}
		// Rebuild rels: the reduction mutates node relations but not the
		// input map's relations (SemiJoin allocates new row slices); verify.
		if len(rels["r1"].Rows) != 3 {
			t.Fatalf("input relations mutated: r1 has %d rows", len(rels["r1"].Rows))
		}
	}
	// The heuristic must pick a projected relation as root.
	_, st, err := SemiJoinReduce(spec, rels, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Root != "r1" && st.Root != "r4" {
		t.Errorf("heuristic root = %s, want a projected relation (r1/r4)", st.Root)
	}
}

func TestPostJoinReconstruction(t *testing.T) {
	src := chainSource(t)
	sel, _ := sqlparse.ParseSelect(chainQuery)
	spec, err := engine.AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	ex := &engine.Executor{Src: src}
	// Original single-table result.
	orig, err := ex.Select(sel)
	if err != nil {
		t.Fatal(err)
	}
	// Reduce with relationship-preserving outputs: every relation with
	// non-empty A_i* (all four here, since all have join attributes).
	rels, _ := ex.BaseRelations(spec)
	outputs := []string{"r1", "r2", "r3", "r4"}
	reduced, _, err := SemiJoinReduce(spec, rels, outputs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Project each to A_i* and post-join.
	rpRels := make(map[string]*engine.Relation)
	for _, alias := range outputs {
		attrs := RelationshipPreservingAttrs(spec, alias)
		cols := make([]int, len(attrs))
		for i, a := range attrs {
			idx, err := reduced[alias].ColIndex(alias, a)
			if err != nil {
				t.Fatal(err)
			}
			cols[i] = idx
		}
		rpRels[alias] = reduced[alias].Project(cols).Distinct()
	}
	post, err := PostJoin(spec.JoinPreds, rpRels, spec.Projection)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(post, orig) {
		t.Fatalf("post-join mismatch:\npost: %v\norig: %v", renderSorted(post), renderSorted(orig))
	}
}

func TestRelationshipPreservingAttrs(t *testing.T) {
	src := chainSource(t)
	sel, _ := sqlparse.ParseSelect(chainQuery)
	spec, _ := engine.AnalyzeSPJ(sel, src)
	if got := strings.Join(RelationshipPreservingAttrs(spec, "r1"), ","); got != "id,k" {
		t.Errorf("r1 attrs = %s", got)
	}
	if got := strings.Join(RelationshipPreservingAttrs(spec, "r2"), ","); got != "k" {
		t.Errorf("r2 attrs = %s", got)
	}
}

func TestDecomposeErrors(t *testing.T) {
	rel := &engine.Relation{Cols: []engine.ColRef{{Rel: "a", Name: "x"}}}
	if _, err := Decompose(rel, []string{"missing"}); err == nil {
		t.Error("Decompose with unknown alias should fail")
	}
}

func TestStatsString(t *testing.T) {
	st := &Stats{Cyclic: true, Folds: 2, SemiJoins: 5, Root: "t", EarlyStopped: true}
	s := st.String()
	for _, want := range []string{"root=t", "semijoins=5", "folds=2", "cyclic", "early-stop"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q missing %q", s, want)
		}
	}
}

package core

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/engine"
	"resultdb/internal/parallel"
	"resultdb/internal/trace"
)

// SemiJoinReduce is the paper's RESULTDB-SEMIJOIN algorithm (Algorithm 4):
//
//	(1) if the join graph is cyclic, fold it acyclic (Algorithm 3),
//	(2) reduce all relations with Yannakakis' passes (Algorithm 2),
//	(3) decompose folds back into their base relations,
//	(4) remove duplicates introduced by decomposition.
//
// Input: the analyzed query, its filtered base relations (keyed by
// lower-cased alias, as produced by engine scans with pushed-down filters),
// and the aliases to return (nil means the projected relations,
// Definition 2.2; pass every relation with non-empty A_i* for
// Definition 2.3). Output: for every requested alias, the fully reduced
// base relation at full width; the caller projects to A_i or A_i* and
// deduplicates after projection.
func SemiJoinReduce(spec *engine.SPJSpec, rels map[string]*engine.Relation, outputs []string, opts Options) (map[string]*engine.Relation, *Stats, error) {
	st := &Stats{}
	g, err := BuildGraph(spec, rels, outputs)
	if err != nil {
		return nil, nil, err
	}
	if outputs == nil {
		outputs = spec.OutputRels()
	}
	st.Cyclic = g.IsCyclic()
	if st.Cyclic && opts.AlphaReduce {
		// α-reduction: drop transitively implied predicates; a JG-cyclic
		// but α-acyclic query becomes a tree and needs no folding.
		DropImpliedEdges(g, st)
		if st.ImpliedEdgesDropped > 0 {
			msg := fmt.Sprintf("alpha-reduction dropped %d implied edge(s)", st.ImpliedEdgesDropped)
			opts.Tracer.Note(msg)
			if opts.Trace != nil {
				opts.Trace(msg)
			}
		}
	}
	if g.IsCyclic() {
		msg := fmt.Sprintf("join graph cyclic (%d nodes, %d edges); folding", len(g.Nodes), len(g.Edges))
		opts.Tracer.Note(msg)
		if opts.Trace != nil {
			opts.Trace(msg)
		}
		if err := foldJoinGraphTrace(g, opts.Fold, st, &opts); err != nil {
			return nil, nil, err
		}
	}
	if err := ReduceRelations(g, opts, st); err != nil {
		return nil, nil, err
	}

	out := make(map[string]*engine.Relation)
	for _, n := range g.Nodes {
		if n.IsFold() {
			// Decompose the fold: project out each contained base relation
			// and deduplicate (the join may have multiplied its tuples). On
			// the vectorized path the fold result is columnarized once and
			// each alias dedups on column-data key hashes, materializing only
			// the surviving rows.
			src := n.Rel
			if opts.Vectorized && src.Vec == nil {
				src = engine.Columnarize(src, opts.Parallelism)
			}
			for _, alias := range n.Aliases {
				if !g.projected[strings.ToLower(alias)] {
					continue
				}
				base := src.ProjectDistinctPar(src.ColumnsOf(alias), opts.Parallelism)
				if sp := opts.Tracer.Span("decompose", alias); sp != nil {
					sp.Phase = "decompose"
					sp.Vec = opts.Vectorized
					sp.Detail = "unfold " + n.Name()
					sp.RowsIn = len(n.Rel.Rows)
					sp.RowsOut = len(base.Rows)
				}
				out[strings.ToLower(alias)] = base
			}
			continue
		}
		alias := n.Aliases[0]
		if !g.projected[strings.ToLower(alias)] {
			continue
		}
		out[strings.ToLower(alias)] = n.Rel
	}
	// Sanity: every requested alias must be present.
	for _, alias := range outputs {
		if _, ok := out[strings.ToLower(alias)]; !ok {
			return nil, nil, fmt.Errorf("core: output relation %q missing after reduction (bug)", alias)
		}
	}
	return out, st, nil
}

// Decompose is the paper's Decompose operator (Section 6.3): split a
// single-table join result back into its per-relation components and remove
// duplicates. It is placed on top of a standard plan to give the ResultDB
// output from a single-table execution, and serves as the correctness oracle
// for SemiJoinReduce (Theorem 4.4).
//
// joined must carry alias-qualified columns for every alias in aliases
// (engine.Executor.RunSPJ produces exactly that).
func Decompose(joined *engine.Relation, aliases []string) (map[string]*engine.Relation, error) {
	return DecomposePar(joined, aliases, 0)
}

// DecomposePar is Decompose at an explicit degree of parallelism (0 = auto,
// 1 = serial). The per-relation project+dedup steps are independent, so they
// run concurrently across aliases; each step's own project/dedup work is also
// chunked at the same degree. Results are identical at any degree.
func DecomposePar(joined *engine.Relation, aliases []string, par int) (map[string]*engine.Relation, error) {
	return DecomposeTraced(joined, aliases, par, nil)
}

// DecomposeTraced is DecomposePar recording one span per decomposed relation
// (rows before projection, rows after dedup). Spans are registered after the
// parallel fan-out completes, in alias order, so the trace is deterministic
// at any degree; tr may be nil.
func DecomposeTraced(joined *engine.Relation, aliases []string, par int, tr *trace.Tracer) (map[string]*engine.Relation, error) {
	return decomposeTraced(joined, aliases, par, false, tr)
}

// DecomposeVecTraced is DecomposeTraced on the columnar path: the join result
// is columnarized once (shared across aliases) and each per-alias dedup runs
// on column-data key hashes, materializing only the surviving rows. Output is
// bit-identical to DecomposeTraced.
func DecomposeVecTraced(joined *engine.Relation, aliases []string, par int, tr *trace.Tracer) (map[string]*engine.Relation, error) {
	return decomposeTraced(joined, aliases, par, true, tr)
}

func decomposeTraced(joined *engine.Relation, aliases []string, par int, vec bool, tr *trace.Tracer) (map[string]*engine.Relation, error) {
	var t0 time.Time
	if tr.Enabled() {
		t0 = time.Now()
	}
	src := joined
	if vec && src.Vec == nil {
		src = engine.Columnarize(src, par)
	}
	results := make([]*engine.Relation, len(aliases))
	errs := make([]error, len(aliases))
	parallel.Each(len(aliases), par, func(i int) {
		alias := aliases[i]
		cols := src.ColumnsOf(alias)
		if len(cols) == 0 {
			errs[i] = fmt.Errorf("core: decompose: no columns for relation %q", alias)
			return
		}
		if vec {
			results[i] = src.ProjectDistinctPar(cols, par)
		} else {
			results[i] = src.ProjectPar(cols, par).DistinctPar(par)
		}
	})
	var durNS int64
	if tr.Enabled() {
		durNS = time.Since(t0).Nanoseconds()
	}
	out := make(map[string]*engine.Relation, len(aliases))
	for i, alias := range aliases {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if sp := tr.Span("decompose", alias); sp != nil {
			sp.Phase = "decompose"
			sp.Vec = vec
			sp.RowsIn = len(joined.Rows)
			sp.RowsOut = len(results[i].Rows)
			sp.Par = parallel.Degree(par)
			if i == 0 {
				sp.DurNS = durNS // whole fan-out, attributed once
			}
		}
		out[strings.ToLower(alias)] = results[i]
	}
	return out, nil
}

// PostJoin reconstructs the single-table result from a relationship-
// preserving subdatabase (Definition 2.3): join the reduced relations on the
// original join predicates and project to the original attributes. Filters
// are not re-applied — the reduced relations already satisfy them.
func PostJoin(preds []engine.JoinPred, rels map[string]*engine.Relation, projection []engine.Attr) (*engine.Relation, error) {
	joined, err := engine.JoinAll(preds, rels)
	if err != nil {
		return nil, err
	}
	if projection == nil {
		return joined, nil
	}
	cols := make([]int, len(projection))
	for i, a := range projection {
		idx, err := joined.ColIndex(a.Rel, a.Col)
		if err != nil {
			return nil, err
		}
		cols[i] = idx
	}
	return joined.Project(cols), nil
}

// RelationshipPreservingAttrs returns A_i* = A_i ∪ A_i^J of Definition 2.3
// for one alias: the projected attributes extended by the attributes needed
// to compute the post-join, in stable order without duplicates.
func RelationshipPreservingAttrs(spec *engine.SPJSpec, alias string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(col string) {
		key := strings.ToLower(col)
		if !seen[key] {
			seen[key] = true
			out = append(out, col)
		}
	}
	for _, col := range spec.ProjectionOf(alias) {
		add(col)
	}
	for _, col := range spec.JoinAttrsOf(alias) {
		add(col)
	}
	return out
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"resultdb/internal/bloom"
	"resultdb/internal/engine"
	"resultdb/internal/parallel"
	"resultdb/internal/stats"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// ErrDisconnected reports a join graph whose relations are not all
// connected by join predicates (a cross product). Semi-join reduction
// cannot reduce across a cross product; callers fall back to the Decompose
// strategy.
var ErrDisconnected = errors.New("core: join graph is disconnected; cross products cannot be semi-join reduced")

// RootStrategy selects the root node for the Yannakakis passes (the paper's
// Root Node Enumeration Problem, Section 4.2).
type RootStrategy uint8

const (
	// RootHeuristic is the paper's default: prefer relations included in
	// the projections, prioritizing higher degree among those.
	RootHeuristic RootStrategy = iota
	// RootFirst picks the first node (a naive baseline for ablations).
	RootFirst
	// RootMaxDegree picks the highest-degree node regardless of projection.
	RootMaxDegree
	// RootCostBased simulates both reduction passes per candidate root and
	// picks the one minimizing estimated total semi-join work (Σ build +
	// probe cardinalities over the BFS edge order). Requires table
	// statistics (Options.TableStats); falls back to RootHeuristic without
	// them. Selected implicitly when Options.CostBased upgrades the default.
	RootCostBased
)

// bfsEdge is one tree edge directed away from the root.
type bfsEdge struct {
	parent, child *Node
	edge          *Edge
}

// chooseRoot implements step (0) of Algorithm 2 under the given strategy.
func chooseRoot(g *Graph, strategy RootStrategy) *Node {
	if len(g.Nodes) == 0 {
		return nil
	}
	candidates := append([]*Node(nil), g.Nodes...)
	switch strategy {
	case RootFirst:
		return g.Nodes[0]
	case RootCostBased:
		// Without an estimator (no statistics) the cost-based strategy
		// degenerates to the paper heuristic; ReduceRelations routes the
		// stats-backed case to chooseRootCostBased before reaching here.
		return chooseRoot(g, RootHeuristic)
	case RootMaxDegree:
		sortNodesDeterministic(candidates, func(a, b *Node) bool {
			return g.Degree(a) > g.Degree(b)
		})
		return candidates[0]
	default:
		// Projected relations first, then higher degree (Section 4.2).
		sortNodesDeterministic(candidates, func(a, b *Node) bool {
			pa, pb := g.Projected(a), g.Projected(b)
			if pa != pb {
				return pa
			}
			return g.Degree(a) > g.Degree(b)
		})
		return candidates[0]
	}
}

// bfsEdges orders the tree's edges in breadth-first order from root, each
// directed parent -> child (step before (1) in Algorithm 2).
func bfsEdges(g *Graph, root *Node) ([]bfsEdge, error) {
	visited := map[*Node]bool{root: true}
	queue := []*Node{root}
	var order []bfsEdge
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.EdgesOf(n) {
			o := e.Other(n)
			if visited[o] {
				continue
			}
			visited[o] = true
			order = append(order, bfsEdge{parent: n, child: o, edge: e})
			queue = append(queue, o)
		}
	}
	if len(visited) != len(g.Nodes) {
		return nil, fmt.Errorf("%w (%d of %d nodes reachable)", ErrDisconnected, len(visited), len(g.Nodes))
	}
	return order, nil
}

// semiJoinNodes reduces target by source along edge e (target ⋉ source),
// returning whether target shrank. The probe over target's rows runs at
// degree par (0 = auto, 1 = serial) with deterministic ordered merge. phase
// labels the pass ("bottom-up" or "top-down") in the recorded span.
//
// In cost-based mode (est non-nil) the span gains the estimated output
// cardinality, and sideways information passing may pre-drop probe rows
// outside the build side's numeric key range before they are hashed. The
// range filter only removes rows the exact semi-join would drop anyway
// (NULL, non-numeric against an all-numeric build, or numerically outside
// every build key), so the result is byte-identical.
func semiJoinNodes(target, source *Node, e *Edge, st *Stats, opts *Options, phase string, est *estimator) error {
	tCols, sCols, err := edgeColsFor(target, e)
	if err != nil {
		return err
	}
	before := len(target.Rel.Rows)
	var sp *trace.Span
	if opts.Tracer.Enabled() {
		sp = opts.Tracer.Span("semi-join", target.Name()+" ⋉ "+source.Name())
		sp.Phase = phase
		sp.RowsIn = before
		sp.RowsBuild = len(source.Rel.Rows)
		if est != nil {
			sp.EstOut = int(est.liveSel(target, source, e)*float64(before) + 0.5)
		}
	}
	// Sideways information passing: bound the probe side by the build side's
	// numeric key range before hashing. Gated by the histogram estimate so
	// the pre-scan only runs when it is predicted to pay off, and by the
	// build side being much smaller than the probe side — finding the build
	// range is itself a full scan of the build keys, which only amortizes
	// against a substantially larger probe.
	if est != nil && len(tCols) == 1 && before >= sipMinTargetRows &&
		len(source.Rel.Rows) > 0 && len(source.Rel.Rows)*4 <= before {
		if lo, hi, ok := engine.NumKeyRange(source.Rel, sCols[0]); ok {
			if est.rangeFrac(target, tCols[0], lo, hi) <= sipMaxKeepFrac {
				filtered, skipped := engine.RangeSemiFilter(target.Rel, tCols[0], lo, hi, opts.Parallelism)
				if skipped > 0 {
					target.Rel = filtered
					st.RangeSkipped += skipped
					st.PlanDiverged = true
					if sp != nil {
						sp.RangeSkipped = skipped
					}
				}
			}
		}
	}
	if opts.Vectorized {
		target.Rel = engine.SemiJoinVecSpan(target.Rel, tCols, source.Rel, sCols, opts.Parallelism, sp)
	} else {
		target.Rel = engine.SemiJoinSpan(target.Rel, tCols, source.Rel, sCols, opts.Parallelism, sp)
	}
	st.SemiJoins++
	st.TuplesDropped += before - len(target.Rel.Rows)
	est.observe(target)
	if sp != nil {
		sp.RowsOut = len(target.Rel.Rows)
		opts.Tracer.AddRowsDropped(before - len(target.Rel.Rows))
	}
	if opts.Trace != nil {
		opts.Trace(fmt.Sprintf("semi-join %s ⋉ %s  rows: %d -> %d",
			target.Name(), source.Name(), before, len(target.Rel.Rows)))
	}
	return nil
}

// bloomSemiJoinNodes reduces target by an approximate membership test on
// source's join keys. It may retain false positives but never drops a
// matching tuple. Both the filter build (atomic bit sets) and the probe
// (chunked with ordered merge) run at degree par. nEst sizes the filter
// (the cost-based mode passes the estimated distinct build-key count, which
// governs fill; 0 falls back to the build side's row count).
func bloomSemiJoinNodes(target, source *Node, e *Edge, nEst int, fpRate float64, st *Stats, opts *Options) error {
	par := opts.Parallelism
	if nEst <= 0 {
		nEst = len(source.Rel.Rows)
	}
	tCols, sCols, err := edgeColsFor(target, e)
	if err != nil {
		return err
	}
	var sp *trace.Span
	var t0 time.Time
	if opts.Tracer.Enabled() {
		sp = opts.Tracer.Span("bloom-semi-join", target.Name()+" ⋉ "+source.Name())
		sp.Phase = "bloom-prefilter"
		sp.RowsIn = len(target.Rel.Rows)
		sp.RowsBuild = len(source.Rel.Rows)
		sp.Par = parallel.Degree(par)
		sp.Morsels = parallel.Chunks(len(target.Rel.Rows), par)
		t0 = time.Now()
	}
	f := bloom.New(nEst, fpRate)
	out := &engine.Relation{Cols: target.Rel.Cols}
	if opts.Vectorized {
		// Columnar build and probe: hash straight from column data (identical
		// bits — colstore key hashes equal Row.HashKey), skip NULL keys like
		// AddKey/ContainsKey, and narrow the target's view so later exact
		// semi-joins stay columnar.
		if sp != nil {
			sp.Vec = true
		}
		sk := engine.KeyFor(source.Rel, sCols)
		if parallel.Chunks(len(source.Rel.Rows), par) > 1 {
			parallel.For(len(source.Rel.Rows), par, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					if !sk.HasNull(j) {
						f.AddHashAtomic(sk.Hash(j))
					}
				}
			})
		} else {
			for j, n := 0, len(source.Rel.Rows); j < n; j++ {
				if !sk.HasNull(j) {
					f.AddHash(sk.Hash(j))
				}
			}
		}
		if sp != nil {
			sp.BuildNS = time.Since(t0).Nanoseconds()
			t0 = time.Now()
		}
		tk := engine.KeyFor(target.Rel, tCols)
		kept := parallel.Map(len(target.Rel.Rows), par, func(lo, hi int) []int32 {
			idx := make([]int32, 0, hi-lo)
			for j := lo; j < hi; j++ {
				if !tk.HasNull(j) && f.ContainsHash(tk.Hash(j)) {
					idx = append(idx, int32(j))
				}
			}
			return idx
		})
		out.Rows = make([]types.Row, len(kept))
		for i, j := range kept {
			out.Rows[i] = target.Rel.Rows[j]
		}
		if target.Rel.Vec != nil {
			out.Vec = target.Rel.Vec.Narrow(kept)
		}
	} else {
		if parallel.Chunks(len(source.Rel.Rows), par) > 1 {
			parallel.For(len(source.Rel.Rows), par, func(lo, hi int) {
				for _, row := range source.Rel.Rows[lo:hi] {
					f.AddKeyAtomic(row, sCols)
				}
			})
		} else {
			for _, row := range source.Rel.Rows {
				f.AddKey(row, sCols)
			}
		}
		if sp != nil {
			sp.BuildNS = time.Since(t0).Nanoseconds()
			t0 = time.Now()
		}
		out.Rows = parallel.Map(len(target.Rel.Rows), par, func(lo, hi int) []types.Row {
			kept := make([]types.Row, 0, hi-lo)
			for _, row := range target.Rel.Rows[lo:hi] {
				if f.ContainsKey(row, tCols) {
					kept = append(kept, row)
				}
			}
			return kept
		})
	}
	st.BloomSemiJoins++
	st.BloomDropped += len(target.Rel.Rows) - len(out.Rows)
	if sp != nil {
		sp.ProbeNS = time.Since(t0).Nanoseconds()
		sp.RowsOut = len(out.Rows)
		opts.Tracer.AddRowsDropped(len(target.Rel.Rows) - len(out.Rows))
	}
	target.Rel = out
	return nil
}

// ReduceRelations is Algorithm 2: fully reduce every relation of an acyclic
// join graph with one bottom-up and one top-down pass of semi-joins.
//
// With opts.EarlyStop (the Section 6.3 optimization) the top-down pass skips
// subtrees that contain no projected relation, and stops entirely once every
// projected node has been reduced.
func ReduceRelations(g *Graph, opts Options, st *Stats) error {
	if g.IsCyclic() {
		return fmt.Errorf("core: ReduceRelations requires an acyclic join graph")
	}
	if len(g.Nodes) <= 1 {
		return nil
	}
	par := parallel.Degree(opts.Parallelism)
	st.Parallelism = par
	var est *estimator
	if opts.CostBased {
		est = newEstimator(g, opts.TableStats)
	}
	rootStrategy := opts.Root
	if est != nil && rootStrategy == RootHeuristic {
		rootStrategy = RootCostBased
	}
	var root *Node
	if rootStrategy == RootCostBased && est != nil {
		var switched bool
		root, switched = chooseRootCostBased(g, &opts, est)
		if switched {
			st.PlanDiverged = true
		}
	} else {
		root = chooseRoot(g, rootStrategy)
	}
	st.Root = root.Name()
	if sp := opts.Tracer.Span("root", root.Name()); sp != nil {
		sp.Detail = fmt.Sprintf("(degree %d, projected %v)", g.Degree(root), g.Projected(root))
		sp.RowsIn = len(root.Rel.Rows)
		sp.RowsOut = len(root.Rel.Rows)
	}
	if opts.Trace != nil {
		opts.Trace(fmt.Sprintf("root: %s (degree %d, projected %v)",
			root.Name(), g.Degree(root), g.Projected(root)))
	}
	order, err := bfsEdges(g, root)
	if err != nil {
		return err
	}

	// (0) Bloom prefilter: the same two passes with approximate membership
	// tests; shrinks inputs before the exact passes. The heuristic mode runs
	// every edge when opts.BloomPrefilter is set; the cost-based mode
	// decides per edge (and sizes each filter from the estimated distinct
	// build-key count) whether the approximate pass pays for itself.
	if opts.BloomPrefilter || est != nil {
		fp := opts.BloomFPRate
		if fp <= 0 {
			fp = 0.01
		}
		if opts.BloomPrefilter && est != nil {
			// The cost-based mode gates edges the always-on prefilter would
			// run, so the two executions differ regardless of drops.
			st.PlanDiverged = true
		}
		runBloom := func(target, source *Node, e *Edge) error {
			nEst := 0
			if est != nil {
				if !est.bloomWorth(target, source, e) {
					return nil
				}
				nEst = est.bloomSize(source, e)
			}
			droppedBefore := st.BloomDropped
			if err := bloomSemiJoinNodes(target, source, e, nEst, fp, st, &opts); err != nil {
				return err
			}
			if est != nil && st.BloomDropped > droppedBefore {
				st.PlanDiverged = true
			}
			est.observe(target)
			return nil
		}
		for i := len(order) - 1; i >= 0; i-- {
			be := order[i]
			if err := runBloom(be.parent, be.child, be.edge); err != nil {
				return err
			}
		}
		for _, be := range order {
			if err := runBloom(be.child, be.parent, be.edge); err != nil {
				return err
			}
		}
	}

	// (1) Bottom-up: reduce parents by children, leaves towards root. The
	// cost-based mode executes the same edge set in most-selective-first
	// order (a valid children-first linearization, see costOrderBottomUp);
	// the heuristic keeps reverse BFS order.
	if est != nil {
		sched, reordered := costOrderBottomUp(order, est)
		if reordered {
			st.PlanDiverged = true
		}
		for _, be := range sched {
			if err := semiJoinNodes(be.parent, be.child, be.edge, st, &opts, "bottom-up", est); err != nil {
				return err
			}
		}
	} else {
		for i := len(order) - 1; i >= 0; i-- {
			be := order[i]
			if err := semiJoinNodes(be.parent, be.child, be.edge, st, &opts, "bottom-up", nil); err != nil {
				return err
			}
		}
	}

	// (2) Top-down: reduce children by parents, root towards leaves.
	var needed map[*Node]bool
	if opts.EarlyStop {
		needed = subtreesWithProjection(g, order)
	}
	remainingProjected := 0
	if opts.EarlyStop {
		for _, n := range g.Nodes {
			if g.Projected(n) && n != root {
				remainingProjected++
			}
		}
	}
	for _, be := range order {
		if opts.EarlyStop {
			if remainingProjected == 0 {
				st.EarlyStopped = true
				opts.Tracer.Note("early stop: all output relations fully reduced")
				if opts.Trace != nil {
					opts.Trace("early stop: all output relations fully reduced")
				}
				break
			}
			if !needed[be.child] {
				st.SkippedSemiJoins++
				opts.Tracer.Note("skip top-down into " + be.child.Name() + " (no output relation in subtree)")
				if opts.Trace != nil {
					opts.Trace("skip top-down into " + be.child.Name() + " (no output relation in subtree)")
				}
				continue
			}
		}
		if err := semiJoinNodes(be.child, be.parent, be.edge, st, &opts, "top-down", est); err != nil {
			return err
		}
		if opts.EarlyStop && g.Projected(be.child) {
			remainingProjected--
		}
	}
	return nil
}

// subtreesWithProjection marks, for every node, whether its subtree (under
// the BFS orientation) contains a projected node. Children of unmarked
// subtrees never influence the output and need no top-down reduction.
func subtreesWithProjection(g *Graph, order []bfsEdge) map[*Node]bool {
	marked := make(map[*Node]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		marked[n] = g.Projected(n)
	}
	// Children appear after their parents in BFS order; walking the edges
	// backwards propagates marks from leaves to the root.
	for i := len(order) - 1; i >= 0; i-- {
		be := order[i]
		if marked[be.child] {
			marked[be.parent] = true
		}
	}
	return marked
}

// Options configures the RESULTDB-SEMIJOIN algorithm.
type Options struct {
	// Root selects the root-node strategy (default: the paper heuristic).
	Root RootStrategy
	// Fold selects the folding strategy (default: highest degree).
	Fold FoldStrategy
	// EarlyStop enables the Section 6.3 optimization: stop the top-down
	// pass once all projected relations are fully reduced.
	EarlyStop bool
	// BloomPrefilter runs a cheap Bloom-filter pass over the same semi-join
	// schedule before the exact passes (a correctness-preserving adaptation
	// of predicate transfer, Section 5 related work): the Bloom pass may
	// keep false positives but never drops a contributing tuple, and the
	// subsequent exact passes remove the strays.
	BloomPrefilter bool
	// BloomFPRate is the target false-positive rate of the prefilter
	// (default 0.01 when zero).
	BloomFPRate float64
	// Parallelism is the degree of intra-query parallelism used by the
	// semi-join probes, the Bloom prefilter build/probe, folding joins, and
	// Decompose: 0 = auto (the RESULTDB_PARALLELISM environment variable,
	// else GOMAXPROCS), 1 = serial, n > 1 = n workers. Results are
	// bit-identical at any degree (ordered morsel merge).
	Parallelism int
	// Vectorized runs scans, semi-joins, the Bloom prefilter, fold joins,
	// and decomposition on the colstore columnar path (typed column vectors,
	// dictionary-encoded TEXT, selection-vector kernels). Results are
	// bit-identical to the row path at any parallelism degree; only speed and
	// the `vectorized` trace annotation differ. Defaults to on; the
	// RESULTDB_VECTORIZED environment variable ("on"/"off") overrides it at
	// db.New time.
	Vectorized bool
	// ResultCache enables the semantic query-result cache at the database
	// layer (internal/cache wired through internal/db): SELECT results —
	// classic, RESULTDB, and RESULTDB PRESERVING — are cached under their
	// canonical statement fingerprint and invalidated by per-table version
	// counters on every DML/DDL. core itself ignores the field; it lives
	// here so the whole execution configuration travels in one options bag
	// (db.Database.CoreOptions), alongside Parallelism. Defaults to off; the
	// RESULTDB_CACHE environment variable ("on", "off", or a byte budget
	// like "256MB") overrides it at db.New time.
	ResultCache bool
	// ResultCacheBudget is the cache's byte budget (0 = the 64 MiB default).
	ResultCacheBudget int64
	// CostBased switches planning to the statistics-driven cost model: root
	// selection simulates both passes per candidate (RootCostBased), the
	// bottom-up pass runs most-selective-first, Bloom prefilters become
	// per-edge adaptive decisions sized from estimated distinct key counts,
	// and sideways information passing pre-drops out-of-range probe rows.
	// Results are byte-identical to the heuristic path — only the plan (and
	// speed) changes. Requires TableStats; without them every decision falls
	// back to the heuristic. Defaults to off; the RESULTDB_STATS environment
	// variable ("on"/"off") overrides it at db.New time.
	CostBased bool
	// TableStats maps lower-cased relation aliases to their base tables'
	// statistics (built lazily by internal/db's generation-tagged cache).
	// Consulted only when CostBased is set.
	TableStats map[string]*stats.Table
	// AlphaReduce drops join-graph edges whose predicates are implied by
	// transitivity before checking for cycles, so α-acyclic-but-JG-cyclic
	// queries (Section 4.1's gap between the two notions) skip folding
	// entirely. Exact: only logically redundant predicates are removed.
	AlphaReduce bool
	// Trace, when non-nil, receives one line per algorithm step (root
	// choice, folds, semi-joins with cardinalities). Retained for legacy
	// line-oriented consumers; the structured Tracer below supersedes it.
	Trace func(string)
	// Tracer, when non-nil, records structured per-operator spans (per-edge
	// semi-join reductions of the forward/backward passes, Bloom prefilter
	// work, folds, root choice). Nil is the disabled fast path.
	Tracer *trace.Tracer
}

// DefaultOptions mirror the paper's implementation choices, plus the
// α-reduction extension (exact and strictly work-saving).
func DefaultOptions() Options {
	return Options{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, AlphaReduce: true, Vectorized: true}
}

// Stats reports what the algorithm did; the ablation benches and tests
// inspect it.
type Stats struct {
	Cyclic           bool
	Folds            int
	SemiJoins        int
	SkippedSemiJoins int
	TuplesDropped    int
	EarlyStopped     bool
	Root             string
	// BloomSemiJoins and BloomDropped count the prefilter pass's work.
	BloomSemiJoins int
	BloomDropped   int
	// RangeSkipped counts probe rows pre-dropped by sideways information
	// passing (the cost-based min/max range filter) before hashing.
	RangeSkipped int
	// ImpliedEdgesDropped counts join-graph edges removed by α-reduction.
	ImpliedEdgesDropped int
	// PlanDiverged reports whether cost-based planning executed anything
	// the heuristic plan would not have: a different root, a reordered
	// bottom-up pass, a range pre-filter that dropped rows, or an adaptive
	// Bloom pass that dropped rows. When false, the run was operationally
	// identical to the heuristic plan, so re-running the same query at the
	// same table generations can skip the statistics machinery entirely
	// (the database layer caches this verdict per query).
	PlanDiverged bool
	// Parallelism records the effective degree of parallelism used
	// (after resolving 0 = auto against the environment and GOMAXPROCS).
	Parallelism int
}

// String summarizes the stats on one line.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root=%s semijoins=%d skipped=%d dropped=%d folds=%d",
		s.Root, s.SemiJoins, s.SkippedSemiJoins, s.TuplesDropped, s.Folds)
	if s.Parallelism > 1 {
		fmt.Fprintf(&b, " par=%d", s.Parallelism)
	}
	if s.Cyclic {
		b.WriteString(" cyclic")
	}
	if s.ImpliedEdgesDropped > 0 {
		fmt.Fprintf(&b, " implied-edges-dropped=%d", s.ImpliedEdgesDropped)
	}
	if s.EarlyStopped {
		b.WriteString(" early-stop")
	}
	return b.String()
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"resultdb/internal/bloom"
	"resultdb/internal/engine"
	"resultdb/internal/parallel"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// ErrDisconnected reports a join graph whose relations are not all
// connected by join predicates (a cross product). Semi-join reduction
// cannot reduce across a cross product; callers fall back to the Decompose
// strategy.
var ErrDisconnected = errors.New("core: join graph is disconnected; cross products cannot be semi-join reduced")

// RootStrategy selects the root node for the Yannakakis passes (the paper's
// Root Node Enumeration Problem, Section 4.2).
type RootStrategy uint8

const (
	// RootHeuristic is the paper's default: prefer relations included in
	// the projections, prioritizing higher degree among those.
	RootHeuristic RootStrategy = iota
	// RootFirst picks the first node (a naive baseline for ablations).
	RootFirst
	// RootMaxDegree picks the highest-degree node regardless of projection.
	RootMaxDegree
)

// bfsEdge is one tree edge directed away from the root.
type bfsEdge struct {
	parent, child *Node
	edge          *Edge
}

// chooseRoot implements step (0) of Algorithm 2 under the given strategy.
func chooseRoot(g *Graph, strategy RootStrategy) *Node {
	if len(g.Nodes) == 0 {
		return nil
	}
	candidates := append([]*Node(nil), g.Nodes...)
	switch strategy {
	case RootFirst:
		return g.Nodes[0]
	case RootMaxDegree:
		sortNodesDeterministic(candidates, func(a, b *Node) bool {
			return g.Degree(a) > g.Degree(b)
		})
		return candidates[0]
	default:
		// Projected relations first, then higher degree (Section 4.2).
		sortNodesDeterministic(candidates, func(a, b *Node) bool {
			pa, pb := g.Projected(a), g.Projected(b)
			if pa != pb {
				return pa
			}
			return g.Degree(a) > g.Degree(b)
		})
		return candidates[0]
	}
}

// bfsEdges orders the tree's edges in breadth-first order from root, each
// directed parent -> child (step before (1) in Algorithm 2).
func bfsEdges(g *Graph, root *Node) ([]bfsEdge, error) {
	visited := map[*Node]bool{root: true}
	queue := []*Node{root}
	var order []bfsEdge
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.EdgesOf(n) {
			o := e.Other(n)
			if visited[o] {
				continue
			}
			visited[o] = true
			order = append(order, bfsEdge{parent: n, child: o, edge: e})
			queue = append(queue, o)
		}
	}
	if len(visited) != len(g.Nodes) {
		return nil, fmt.Errorf("%w (%d of %d nodes reachable)", ErrDisconnected, len(visited), len(g.Nodes))
	}
	return order, nil
}

// semiJoinNodes reduces target by source along edge e (target ⋉ source),
// returning whether target shrank. The probe over target's rows runs at
// degree par (0 = auto, 1 = serial) with deterministic ordered merge. phase
// labels the pass ("bottom-up" or "top-down") in the recorded span.
func semiJoinNodes(target, source *Node, e *Edge, st *Stats, opts *Options, phase string) error {
	tCols, sCols, err := edgeColsFor(target, e)
	if err != nil {
		return err
	}
	before := len(target.Rel.Rows)
	var sp *trace.Span
	if opts.Tracer.Enabled() {
		sp = opts.Tracer.Span("semi-join", target.Name()+" ⋉ "+source.Name())
		sp.Phase = phase
		sp.RowsIn = before
		sp.RowsBuild = len(source.Rel.Rows)
	}
	if opts.Vectorized {
		target.Rel = engine.SemiJoinVecSpan(target.Rel, tCols, source.Rel, sCols, opts.Parallelism, sp)
	} else {
		target.Rel = engine.SemiJoinSpan(target.Rel, tCols, source.Rel, sCols, opts.Parallelism, sp)
	}
	st.SemiJoins++
	st.TuplesDropped += before - len(target.Rel.Rows)
	if sp != nil {
		sp.RowsOut = len(target.Rel.Rows)
		opts.Tracer.AddRowsDropped(before - len(target.Rel.Rows))
	}
	if opts.Trace != nil {
		opts.Trace(fmt.Sprintf("semi-join %s ⋉ %s  rows: %d -> %d",
			target.Name(), source.Name(), before, len(target.Rel.Rows)))
	}
	return nil
}

// bloomSemiJoinNodes reduces target by an approximate membership test on
// source's join keys. It may retain false positives but never drops a
// matching tuple. Both the filter build (atomic bit sets) and the probe
// (chunked with ordered merge) run at degree par.
func bloomSemiJoinNodes(target, source *Node, e *Edge, fpRate float64, st *Stats, opts *Options) error {
	par := opts.Parallelism
	tCols, sCols, err := edgeColsFor(target, e)
	if err != nil {
		return err
	}
	var sp *trace.Span
	var t0 time.Time
	if opts.Tracer.Enabled() {
		sp = opts.Tracer.Span("bloom-semi-join", target.Name()+" ⋉ "+source.Name())
		sp.Phase = "bloom-prefilter"
		sp.RowsIn = len(target.Rel.Rows)
		sp.RowsBuild = len(source.Rel.Rows)
		sp.Par = parallel.Degree(par)
		sp.Morsels = parallel.Chunks(len(target.Rel.Rows), par)
		t0 = time.Now()
	}
	f := bloom.New(len(source.Rel.Rows), fpRate)
	out := &engine.Relation{Cols: target.Rel.Cols}
	if opts.Vectorized {
		// Columnar build and probe: hash straight from column data (identical
		// bits — colstore key hashes equal Row.HashKey), skip NULL keys like
		// AddKey/ContainsKey, and narrow the target's view so later exact
		// semi-joins stay columnar.
		if sp != nil {
			sp.Vec = true
		}
		sk := engine.KeyFor(source.Rel, sCols)
		if parallel.Chunks(len(source.Rel.Rows), par) > 1 {
			parallel.For(len(source.Rel.Rows), par, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					if !sk.HasNull(j) {
						f.AddHashAtomic(sk.Hash(j))
					}
				}
			})
		} else {
			for j, n := 0, len(source.Rel.Rows); j < n; j++ {
				if !sk.HasNull(j) {
					f.AddHash(sk.Hash(j))
				}
			}
		}
		if sp != nil {
			sp.BuildNS = time.Since(t0).Nanoseconds()
			t0 = time.Now()
		}
		tk := engine.KeyFor(target.Rel, tCols)
		kept := parallel.Map(len(target.Rel.Rows), par, func(lo, hi int) []int32 {
			idx := make([]int32, 0, hi-lo)
			for j := lo; j < hi; j++ {
				if !tk.HasNull(j) && f.ContainsHash(tk.Hash(j)) {
					idx = append(idx, int32(j))
				}
			}
			return idx
		})
		out.Rows = make([]types.Row, len(kept))
		for i, j := range kept {
			out.Rows[i] = target.Rel.Rows[j]
		}
		if target.Rel.Vec != nil {
			out.Vec = target.Rel.Vec.Narrow(kept)
		}
	} else {
		if parallel.Chunks(len(source.Rel.Rows), par) > 1 {
			parallel.For(len(source.Rel.Rows), par, func(lo, hi int) {
				for _, row := range source.Rel.Rows[lo:hi] {
					f.AddKeyAtomic(row, sCols)
				}
			})
		} else {
			for _, row := range source.Rel.Rows {
				f.AddKey(row, sCols)
			}
		}
		if sp != nil {
			sp.BuildNS = time.Since(t0).Nanoseconds()
			t0 = time.Now()
		}
		out.Rows = parallel.Map(len(target.Rel.Rows), par, func(lo, hi int) []types.Row {
			kept := make([]types.Row, 0, hi-lo)
			for _, row := range target.Rel.Rows[lo:hi] {
				if f.ContainsKey(row, tCols) {
					kept = append(kept, row)
				}
			}
			return kept
		})
	}
	st.BloomSemiJoins++
	st.BloomDropped += len(target.Rel.Rows) - len(out.Rows)
	if sp != nil {
		sp.ProbeNS = time.Since(t0).Nanoseconds()
		sp.RowsOut = len(out.Rows)
		opts.Tracer.AddRowsDropped(len(target.Rel.Rows) - len(out.Rows))
	}
	target.Rel = out
	return nil
}

// ReduceRelations is Algorithm 2: fully reduce every relation of an acyclic
// join graph with one bottom-up and one top-down pass of semi-joins.
//
// With opts.EarlyStop (the Section 6.3 optimization) the top-down pass skips
// subtrees that contain no projected relation, and stops entirely once every
// projected node has been reduced.
func ReduceRelations(g *Graph, opts Options, st *Stats) error {
	if g.IsCyclic() {
		return fmt.Errorf("core: ReduceRelations requires an acyclic join graph")
	}
	if len(g.Nodes) <= 1 {
		return nil
	}
	par := parallel.Degree(opts.Parallelism)
	st.Parallelism = par
	root := chooseRoot(g, opts.Root)
	st.Root = root.Name()
	if sp := opts.Tracer.Span("root", root.Name()); sp != nil {
		sp.Detail = fmt.Sprintf("(degree %d, projected %v)", g.Degree(root), g.Projected(root))
		sp.RowsIn = len(root.Rel.Rows)
		sp.RowsOut = len(root.Rel.Rows)
	}
	if opts.Trace != nil {
		opts.Trace(fmt.Sprintf("root: %s (degree %d, projected %v)",
			root.Name(), g.Degree(root), g.Projected(root)))
	}
	order, err := bfsEdges(g, root)
	if err != nil {
		return err
	}

	// (0) Optional Bloom prefilter: the same two passes with approximate
	// membership tests; shrinks inputs before the exact passes.
	if opts.BloomPrefilter {
		fp := opts.BloomFPRate
		if fp <= 0 {
			fp = 0.01
		}
		for i := len(order) - 1; i >= 0; i-- {
			be := order[i]
			if err := bloomSemiJoinNodes(be.parent, be.child, be.edge, fp, st, &opts); err != nil {
				return err
			}
		}
		for _, be := range order {
			if err := bloomSemiJoinNodes(be.child, be.parent, be.edge, fp, st, &opts); err != nil {
				return err
			}
		}
	}

	// (1) Bottom-up: reduce parents by children, leaves towards root.
	for i := len(order) - 1; i >= 0; i-- {
		be := order[i]
		if err := semiJoinNodes(be.parent, be.child, be.edge, st, &opts, "bottom-up"); err != nil {
			return err
		}
	}

	// (2) Top-down: reduce children by parents, root towards leaves.
	var needed map[*Node]bool
	if opts.EarlyStop {
		needed = subtreesWithProjection(g, order)
	}
	remainingProjected := 0
	if opts.EarlyStop {
		for _, n := range g.Nodes {
			if g.Projected(n) && n != root {
				remainingProjected++
			}
		}
	}
	for _, be := range order {
		if opts.EarlyStop {
			if remainingProjected == 0 {
				st.EarlyStopped = true
				opts.Tracer.Note("early stop: all output relations fully reduced")
				if opts.Trace != nil {
					opts.Trace("early stop: all output relations fully reduced")
				}
				break
			}
			if !needed[be.child] {
				st.SkippedSemiJoins++
				opts.Tracer.Note("skip top-down into " + be.child.Name() + " (no output relation in subtree)")
				if opts.Trace != nil {
					opts.Trace("skip top-down into " + be.child.Name() + " (no output relation in subtree)")
				}
				continue
			}
		}
		if err := semiJoinNodes(be.child, be.parent, be.edge, st, &opts, "top-down"); err != nil {
			return err
		}
		if opts.EarlyStop && g.Projected(be.child) {
			remainingProjected--
		}
	}
	return nil
}

// subtreesWithProjection marks, for every node, whether its subtree (under
// the BFS orientation) contains a projected node. Children of unmarked
// subtrees never influence the output and need no top-down reduction.
func subtreesWithProjection(g *Graph, order []bfsEdge) map[*Node]bool {
	marked := make(map[*Node]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		marked[n] = g.Projected(n)
	}
	// Children appear after their parents in BFS order; walking the edges
	// backwards propagates marks from leaves to the root.
	for i := len(order) - 1; i >= 0; i-- {
		be := order[i]
		if marked[be.child] {
			marked[be.parent] = true
		}
	}
	return marked
}

// Options configures the RESULTDB-SEMIJOIN algorithm.
type Options struct {
	// Root selects the root-node strategy (default: the paper heuristic).
	Root RootStrategy
	// Fold selects the folding strategy (default: highest degree).
	Fold FoldStrategy
	// EarlyStop enables the Section 6.3 optimization: stop the top-down
	// pass once all projected relations are fully reduced.
	EarlyStop bool
	// BloomPrefilter runs a cheap Bloom-filter pass over the same semi-join
	// schedule before the exact passes (a correctness-preserving adaptation
	// of predicate transfer, Section 5 related work): the Bloom pass may
	// keep false positives but never drops a contributing tuple, and the
	// subsequent exact passes remove the strays.
	BloomPrefilter bool
	// BloomFPRate is the target false-positive rate of the prefilter
	// (default 0.01 when zero).
	BloomFPRate float64
	// Parallelism is the degree of intra-query parallelism used by the
	// semi-join probes, the Bloom prefilter build/probe, folding joins, and
	// Decompose: 0 = auto (the RESULTDB_PARALLELISM environment variable,
	// else GOMAXPROCS), 1 = serial, n > 1 = n workers. Results are
	// bit-identical at any degree (ordered morsel merge).
	Parallelism int
	// Vectorized runs scans, semi-joins, the Bloom prefilter, fold joins,
	// and decomposition on the colstore columnar path (typed column vectors,
	// dictionary-encoded TEXT, selection-vector kernels). Results are
	// bit-identical to the row path at any parallelism degree; only speed and
	// the `vectorized` trace annotation differ. Defaults to on; the
	// RESULTDB_VECTORIZED environment variable ("on"/"off") overrides it at
	// db.New time.
	Vectorized bool
	// ResultCache enables the semantic query-result cache at the database
	// layer (internal/cache wired through internal/db): SELECT results —
	// classic, RESULTDB, and RESULTDB PRESERVING — are cached under their
	// canonical statement fingerprint and invalidated by per-table version
	// counters on every DML/DDL. core itself ignores the field; it lives
	// here so the whole execution configuration travels in one options bag
	// (db.Database.CoreOptions), alongside Parallelism. Defaults to off; the
	// RESULTDB_CACHE environment variable ("on", "off", or a byte budget
	// like "256MB") overrides it at db.New time.
	ResultCache bool
	// ResultCacheBudget is the cache's byte budget (0 = the 64 MiB default).
	ResultCacheBudget int64
	// AlphaReduce drops join-graph edges whose predicates are implied by
	// transitivity before checking for cycles, so α-acyclic-but-JG-cyclic
	// queries (Section 4.1's gap between the two notions) skip folding
	// entirely. Exact: only logically redundant predicates are removed.
	AlphaReduce bool
	// Trace, when non-nil, receives one line per algorithm step (root
	// choice, folds, semi-joins with cardinalities). Retained for legacy
	// line-oriented consumers; the structured Tracer below supersedes it.
	Trace func(string)
	// Tracer, when non-nil, records structured per-operator spans (per-edge
	// semi-join reductions of the forward/backward passes, Bloom prefilter
	// work, folds, root choice). Nil is the disabled fast path.
	Tracer *trace.Tracer
}

// DefaultOptions mirror the paper's implementation choices, plus the
// α-reduction extension (exact and strictly work-saving).
func DefaultOptions() Options {
	return Options{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, AlphaReduce: true, Vectorized: true}
}

// Stats reports what the algorithm did; the ablation benches and tests
// inspect it.
type Stats struct {
	Cyclic           bool
	Folds            int
	SemiJoins        int
	SkippedSemiJoins int
	TuplesDropped    int
	EarlyStopped     bool
	Root             string
	// BloomSemiJoins and BloomDropped count the prefilter pass's work.
	BloomSemiJoins int
	BloomDropped   int
	// ImpliedEdgesDropped counts join-graph edges removed by α-reduction.
	ImpliedEdgesDropped int
	// Parallelism records the effective degree of parallelism used
	// (after resolving 0 = auto against the environment and GOMAXPROCS).
	Parallelism int
}

// String summarizes the stats on one line.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root=%s semijoins=%d skipped=%d dropped=%d folds=%d",
		s.Root, s.SemiJoins, s.SkippedSemiJoins, s.TuplesDropped, s.Folds)
	if s.Parallelism > 1 {
		fmt.Fprintf(&b, " par=%d", s.Parallelism)
	}
	if s.Cyclic {
		b.WriteString(" cyclic")
	}
	if s.ImpliedEdgesDropped > 0 {
		fmt.Fprintf(&b, " implied-edges-dropped=%d", s.ImpliedEdgesDropped)
	}
	if s.EarlyStopped {
		b.WriteString(" early-stop")
	}
	return b.String()
}

package core

import (
	"strings"
)

// DropImpliedEdges removes join-graph edges whose predicates are implied by
// the rest of the graph through transitivity of equality — the practical
// payoff of α-acyclicity (the paper's Section 4.1 trade-off, left as future
// work there):
//
// A JG-cyclic query like R.k = S.k AND S.k = T.k AND R.k = T.k is α-acyclic
// — the third predicate follows from the first two. Dropping it turns the
// join graph into a tree, so Yannakakis' algorithm applies directly and the
// expensive folding step (Algorithm 3) is skipped entirely.
//
// Implication is checked at attribute granularity: a predicate a.x = b.y is
// implied iff a.x and b.y are connected in the equality graph over join
// attributes built from all predicates EXCEPT those of the candidate edge.
// (Class membership alone is not sufficient — the equivalence class may owe
// its existence to the very predicate under test.) An edge is dropped iff
// every one of its predicates is implied; removal is greedy to a fixpoint
// and each removal is re-validated against the current graph, so
// implications never rest on already-removed edges.
func DropImpliedEdges(g *Graph, st *Stats) {
	for {
		removed := false
		for i := range g.Edges {
			if !edgeImplied(g, i) {
				continue
			}
			g.Edges = append(g.Edges[:i], g.Edges[i+1:]...)
			st.ImpliedEdgesDropped++
			removed = true
			break // indices shifted; rescan
		}
		if !removed {
			return
		}
	}
}

// edgeImplied reports whether every predicate of g.Edges[idx] is enforced
// transitively by the predicates of the other edges.
func edgeImplied(g *Graph, idx int) bool {
	adj := attrEqualityGraph(g, idx)
	for _, p := range g.Edges[idx].Preds {
		l := attrKey(p.LeftRel, p.LeftCol)
		r := attrKey(p.RightRel, p.RightCol)
		if !attrConnected(adj, l, r) {
			return false
		}
	}
	return true
}

// attrEqualityGraph builds the adjacency over join attributes from every
// edge except skip.
func attrEqualityGraph(g *Graph, skip int) map[string][]string {
	adj := map[string][]string{}
	for i, e := range g.Edges {
		if i == skip {
			continue
		}
		for _, p := range e.Preds {
			l := attrKey(p.LeftRel, p.LeftCol)
			r := attrKey(p.RightRel, p.RightCol)
			adj[l] = append(adj[l], r)
			adj[r] = append(adj[r], l)
		}
	}
	return adj
}

func attrKey(rel, col string) string {
	return strings.ToLower(rel) + "." + strings.ToLower(col)
}

// attrConnected is a BFS reachability test in the equality graph.
func attrConnected(adj map[string][]string, from, to string) bool {
	if from == to {
		return true
	}
	visited := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, o := range adj[n] {
			if o == to {
				return true
			}
			if !visited[o] {
				visited[o] = true
				queue = append(queue, o)
			}
		}
	}
	return false
}

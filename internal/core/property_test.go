package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

// randomDB builds a random database: nTables tables, each with a unique id
// column plus 2 small-domain join/filter columns, so random equi-joins
// actually match.
func randomDB(rng *rand.Rand, nTables int) memSource {
	src := memSource{}
	for i := 0; i < nTables; i++ {
		name := fmt.Sprintf("t%d", i)
		def := catalog.MustTableDef(name, []catalog.Column{
			{Name: "id", Type: types.KindInt},
			{Name: "j1", Type: types.KindInt},
			{Name: "j2", Type: types.KindInt},
		})
		def.PrimaryKey = []string{"id"}
		tab := storage.NewTable(def)
		rows := 3 + rng.Intn(25)
		for r := 0; r < rows; r++ {
			row := types.Row{
				types.NewInt(int64(r)),
				types.NewInt(int64(rng.Intn(5))),
				types.NewInt(int64(rng.Intn(4))),
			}
			if err := tab.Insert(row); err != nil {
				panic(err)
			}
		}
		src[name] = tab
	}
	return src
}

// randomQuery builds a random connected SPJ query over 2-4 relation
// instances (table reuse allowed → self-joins), with optional cycle edges
// and random filters, projecting 1-2 columns from a random subset of
// relations.
func randomQuery(rng *rand.Rand, nTables int) string {
	n := 2 + rng.Intn(3)
	aliases := make([]string, n)
	var from []string
	for i := range aliases {
		aliases[i] = fmt.Sprintf("x%d", i)
		from = append(from, fmt.Sprintf("t%d AS %s", rng.Intn(nTables), aliases[i]))
	}
	joinCols := []string{"j1", "j2", "id"}
	var preds []string
	// Spanning tree: connect each alias i>0 to a random earlier alias.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		preds = append(preds, fmt.Sprintf("%s.%s = %s.%s",
			aliases[i], joinCols[rng.Intn(2)], aliases[j], joinCols[rng.Intn(2)]))
	}
	// Optional extra edges (cycles).
	for e := 0; e < rng.Intn(3); e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		preds = append(preds, fmt.Sprintf("%s.%s = %s.%s",
			aliases[a], joinCols[rng.Intn(2)], aliases[b], joinCols[rng.Intn(2)]))
	}
	// Random filters.
	for f := 0; f < rng.Intn(3); f++ {
		a := aliases[rng.Intn(n)]
		switch rng.Intn(3) {
		case 0:
			preds = append(preds, fmt.Sprintf("%s.j1 < %d", a, 1+rng.Intn(5)))
		case 1:
			preds = append(preds, fmt.Sprintf("%s.id > %d", a, rng.Intn(10)))
		default:
			preds = append(preds, fmt.Sprintf("%s.j2 = %d", a, rng.Intn(4)))
		}
	}
	// Projection: 1..n relations, 1-2 columns each.
	nProj := 1 + rng.Intn(n)
	perm := rng.Perm(n)
	var items []string
	for _, idx := range perm[:nProj] {
		items = append(items, aliases[idx]+".id")
		if rng.Intn(2) == 0 {
			items = append(items, aliases[idx]+".j1")
		}
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s",
		strings.Join(items, ", "), strings.Join(from, ", "), strings.Join(preds, " AND "))
}

// TestTheorem44RandomQueries is the paper's correctness theorem as a
// property test: on random databases and random (possibly cyclic, possibly
// self-joining) SPJ queries, the native RESULTDB-SEMIJOIN algorithm produces
// exactly Decompose(single-table result) for every output relation, under
// every strategy combination.
func TestTheorem44RandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	optsList := []Options{
		{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, AlphaReduce: true},
		{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: false},
		{Root: RootFirst, Fold: FoldFirst, EarlyStop: true},
		{Root: RootMaxDegree, Fold: FoldMinCard, EarlyStop: true},
		// Bloom prefiltering must stay exact despite false positives; a
		// very sloppy rate stresses the exactness of the follow-up passes.
		{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, BloomPrefilter: true, BloomFPRate: 0.3},
		// Parallel execution must be indistinguishable from serial.
		{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, AlphaReduce: true, Parallelism: 4},
		{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, BloomPrefilter: true, BloomFPRate: 0.3, Parallelism: 4},
	}
	const trials = 300
	checked := 0
	for trial := 0; trial < trials; trial++ {
		nTables := 2 + rng.Intn(3)
		src := randomDB(rng, nTables)
		sql := randomQuery(rng, nTables)

		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		spec, err := engine.AnalyzeSPJ(sel, src)
		if err != nil {
			t.Fatalf("trial %d: analyze %q: %v", trial, sql, err)
		}
		ex := &engine.Executor{Src: src}
		joined, err := ex.RunSPJ(spec)
		if err != nil {
			t.Fatalf("trial %d: ST %q: %v", trial, sql, err)
		}
		oracle, err := Decompose(joined, spec.OutputRels())
		if err != nil {
			t.Fatalf("trial %d: decompose: %v", trial, err)
		}
		for _, opts := range optsList {
			rels, err := ex.BaseRelations(spec)
			if err != nil {
				t.Fatal(err)
			}
			reduced, _, err := SemiJoinReduce(spec, rels, nil, opts)
			if err != nil {
				t.Fatalf("trial %d opts %+v: %q: %v", trial, opts, sql, err)
			}
			for _, alias := range spec.OutputRels() {
				key := strings.ToLower(alias)
				got := reduced[key].Distinct()
				want := oracle[key]
				if !sameRelation(got, want) {
					t.Fatalf("trial %d opts %+v: %q relation %s:\nreduced:   %v\ndecompose: %v",
						trial, opts, sql, alias, renderSorted(got), renderSorted(want))
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no trials executed")
	}
}

// TestPostJoinReconstructionRandom property-checks Definition 2.3: joining
// the relationship-preserving subdatabase reproduces the single-table
// result, on random queries.
func TestPostJoinReconstructionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		nTables := 2 + rng.Intn(3)
		src := randomDB(rng, nTables)
		sql := randomQuery(rng, nTables)
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := engine.AnalyzeSPJ(sel, src)
		if err != nil {
			t.Fatal(err)
		}
		ex := &engine.Executor{Src: src}
		orig, err := ex.Select(sel)
		if err != nil {
			t.Fatal(err)
		}

		// Build the RDBRP subdatabase: every relation with A_i* non-empty.
		var outputs []string
		for _, r := range spec.Rels {
			if len(spec.ProjectionOf(r.Alias)) > 0 || len(spec.JoinAttrsOf(r.Alias)) > 0 {
				outputs = append(outputs, r.Alias)
			}
		}
		rels, err := ex.BaseRelations(spec)
		if err != nil {
			t.Fatal(err)
		}
		reduced, _, err := SemiJoinReduce(spec, rels, outputs, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, sql, err)
		}
		rp := make(map[string]*engine.Relation, len(outputs))
		for _, alias := range outputs {
			attrs := RelationshipPreservingAttrs(spec, alias)
			cols := make([]int, len(attrs))
			for i, a := range attrs {
				idx, err := reduced[strings.ToLower(alias)].ColIndex(alias, a)
				if err != nil {
					t.Fatal(err)
				}
				cols[i] = idx
			}
			rp[strings.ToLower(alias)] = reduced[strings.ToLower(alias)].Project(cols).Distinct()
		}
		post, err := PostJoin(spec.JoinPreds, rp, spec.Projection)
		if err != nil {
			t.Fatalf("trial %d: post-join %q: %v", trial, sql, err)
		}
		// Bag semantics caveat: deduplicating the reduced relations can
		// change result multiplicities only if a base relation held exact
		// duplicate A_i* tuples — impossible here because id is unique and
		// always included via the projection or join attrs? Not quite: a
		// relation may participate via j1/j2 only. Compare as sets.
		if !sameRelationSet(post, orig) {
			t.Fatalf("trial %d: %q:\npost: %v\norig: %v",
				trial, sql, renderSorted(post.Distinct()), renderSorted(orig.Distinct()))
		}
	}
}

func sameRelationSet(a, b *engine.Relation) bool {
	return sameRelation(a.Distinct(), b.Distinct())
}

package core

import (
	"math/rand"
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

// bigChainSource builds a 4-relation chain with n rows per relation, large
// enough for the morsel chunking (parallel.Threshold) to actually engage.
func bigChainSource(rng *rand.Rand, n int) memSource {
	src := memSource{}
	cols := []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "k", Type: types.KindInt},
		{Name: "k2", Type: types.KindInt},
	}
	for _, name := range []string{"b1", "b2", "b3", "b4"} {
		def := catalog.MustTableDef(name, cols)
		tab := storage.NewTable(def)
		for i := 0; i < n; i++ {
			row := types.Row{
				types.NewInt(int64(i)),
				types.NewInt(int64(rng.Intn(n / 4))),
				types.NewInt(int64(rng.Intn(8))),
			}
			if err := tab.Insert(row); err != nil {
				panic(err)
			}
		}
		src[name] = tab
	}
	return src
}

// TestReductionParallelMatchesSerial runs the full RESULTDB-SEMIJOIN
// algorithm on chain (acyclic) and cyclic queries over relations large enough
// to engage the parallel morsel paths, and asserts that every reduced output
// relation is byte-identical — same rows in the same order — between serial
// (Parallelism=1) and parallel (Parallelism=4) execution, with and without
// the Bloom prefilter.
func TestReductionParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := bigChainSource(rng, 4000)
	queries := []string{
		// Acyclic chain.
		`SELECT b1.id, b4.id FROM b1 AS b1, b2 AS b2, b3 AS b3, b4 AS b4
		 WHERE b1.k = b2.k AND b2.k = b3.k AND b3.k = b4.k AND b2.k2 < 6`,
		// Cyclic (triangle) — exercises folding's parallel hash join and the
		// fold decompose's parallel project+distinct.
		`SELECT b1.id, b2.id FROM b1 AS b1, b2 AS b2, b3 AS b3
		 WHERE b1.k2 = b2.k2 AND b2.k2 = b3.k2 AND b3.k2 = b1.k2 AND b1.k < 500`,
	}
	variants := []Options{
		{Root: RootHeuristic, Fold: FoldMaxDegree, EarlyStop: true, AlphaReduce: true},
		{Root: RootHeuristic, Fold: FoldMaxDegree, BloomPrefilter: true, BloomFPRate: 0.05},
	}
	for qi, sql := range queries {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := engine.AnalyzeSPJ(sel, src)
		if err != nil {
			t.Fatal(err)
		}
		ex := &engine.Executor{Src: src}
		for vi, base := range variants {
			run := func(par int) map[string]*engine.Relation {
				rels, err := ex.BaseRelations(spec)
				if err != nil {
					t.Fatal(err)
				}
				opts := base
				opts.Parallelism = par
				reduced, st, err := SemiJoinReduce(spec, rels, nil, opts)
				if err != nil {
					t.Fatalf("query %d variant %d par %d: %v", qi, vi, par, err)
				}
				if st.Parallelism < 1 {
					t.Fatalf("query %d: Stats.Parallelism = %d, want >= 1", qi, st.Parallelism)
				}
				return reduced
			}
			want := run(1)
			got := run(4)
			for _, alias := range spec.OutputRels() {
				key := strings.ToLower(alias)
				w, g := want[key], got[key]
				if len(g.Rows) != len(w.Rows) {
					t.Fatalf("query %d variant %d relation %s: %d rows parallel vs %d serial",
						qi, vi, alias, len(g.Rows), len(w.Rows))
				}
				for i := range g.Rows {
					if !g.Rows[i].Equal(w.Rows[i]) {
						t.Fatalf("query %d variant %d relation %s row %d differs:\nparallel: %v\nserial:   %v",
							qi, vi, alias, i, g.Rows[i], w.Rows[i])
					}
				}
			}
		}
	}
}

// TestDecomposeParMatchesSerial checks the Decompose operator at several
// degrees on a wide joined relation with heavy duplication per alias.
func TestDecomposeParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	joined := &engine.Relation{Cols: []engine.ColRef{
		{Rel: "x", Name: "a", Kind: types.KindInt},
		{Rel: "x", Name: "b", Kind: types.KindInt},
		{Rel: "y", Name: "c", Kind: types.KindInt},
		{Rel: "z", Name: "d", Kind: types.KindInt},
	}}
	for i := 0; i < 9000; i++ {
		joined.Rows = append(joined.Rows, types.Row{
			types.NewInt(int64(rng.Intn(40))),
			types.NewInt(int64(rng.Intn(40))),
			types.NewInt(int64(rng.Intn(25))),
			types.NewInt(int64(rng.Intn(3000))),
		})
	}
	aliases := []string{"x", "y", "z"}
	want, err := DecomposePar(joined, aliases, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 7} {
		got, err := DecomposePar(joined, aliases, par)
		if err != nil {
			t.Fatal(err)
		}
		for _, alias := range aliases {
			w, g := want[alias], got[alias]
			if len(g.Rows) != len(w.Rows) {
				t.Fatalf("par=%d alias %s: %d rows, want %d", par, alias, len(g.Rows), len(w.Rows))
			}
			for i := range g.Rows {
				if !g.Rows[i].Equal(w.Rows[i]) {
					t.Fatalf("par=%d alias %s row %d differs", par, alias, i)
				}
			}
		}
	}
	// Unknown alias must surface the same error at any degree.
	if _, err := DecomposePar(joined, []string{"nope"}, 4); err == nil {
		t.Fatal("expected error for unknown alias")
	}
}

package core

import (
	"fmt"

	"resultdb/internal/engine"
	"resultdb/internal/trace"
)

// FoldStrategy selects which nodes to fold when breaking cycles (the paper's
// Tree Folding Enumeration Problem, Section 4.3).
type FoldStrategy uint8

const (
	// FoldMaxDegree is the paper's heuristic: fold the two neighboring
	// nodes with the highest degrees (high-degree nodes are most likely to
	// sit on cycles, so fewer folds are needed).
	FoldMaxDegree FoldStrategy = iota
	// FoldFirst folds the first edge found (a naive baseline for
	// ablations, standing in for the paper's "random" choice while staying
	// deterministic).
	FoldFirst
	// FoldMinCard folds the pair with the smallest joint cardinality
	// estimate (|X| * |Y|), an extension beyond the paper's heuristic.
	FoldMinCard
)

// FoldJoinGraph is Algorithm 3: repeatedly replace two adjacent nodes by
// their join until the graph is acyclic. It mutates g in place.
//
// Lemma 4.3 guarantees termination and result preservation: each fold
// removes one node and at least one edge, and joining adjacent relations
// never changes the overall join result (associativity).
func FoldJoinGraph(g *Graph, strategy FoldStrategy, st *Stats) error {
	opts := Options{Fold: strategy}
	return foldJoinGraphTrace(g, strategy, st, &opts)
}

func foldJoinGraphTrace(g *Graph, strategy FoldStrategy, st *Stats, opts *Options) error {
	for g.IsCyclic() {
		x, y, err := chooseFoldPair(g, strategy)
		if err != nil {
			return err
		}
		xn, yn := x.Name(), y.Name()
		xr, yr := len(x.Rel.Rows), len(y.Rel.Rows)
		var sp *trace.Span
		if opts.Tracer.Enabled() {
			sp = opts.Tracer.Span("fold", xn+" ⋈ "+yn)
			sp.Phase = "fold"
			sp.RowsIn = xr
			sp.RowsBuild = yr
		}
		if err := foldPairSpan(g, x, y, opts.Parallelism, opts.Vectorized, sp); err != nil {
			return err
		}
		st.Folds++
		z := g.Nodes[len(g.Nodes)-1]
		if sp != nil {
			sp.RowsOut = len(z.Rel.Rows)
			opts.Tracer.AddRowsJoined(len(z.Rel.Rows))
		}
		if opts.Trace != nil {
			opts.Trace(fmt.Sprintf("fold %s ⋈ %s  rows: %d x %d -> %d", xn, yn, xr, yr, len(z.Rel.Rows)))
		}
	}
	return nil
}

// chooseFoldPair picks node x and neighbor y per the strategy.
func chooseFoldPair(g *Graph, strategy FoldStrategy) (*Node, *Node, error) {
	if len(g.Edges) == 0 {
		return nil, nil, fmt.Errorf("core: cyclic graph without edges (bug)")
	}
	switch strategy {
	case FoldFirst:
		e := g.Edges[0]
		return e.X, e.Y, nil
	case FoldMinCard:
		best := g.Edges[0]
		bestCard := cardProduct(best)
		for _, e := range g.Edges[1:] {
			if c := cardProduct(e); c < bestCard {
				best, bestCard = e, c
			}
		}
		return best.X, best.Y, nil
	default: // FoldMaxDegree
		// x := the highest-degree node that has at least one neighbor;
		// degree ties break towards smaller relations so the fold join
		// stays cheap.
		candidates := append([]*Node(nil), g.Nodes...)
		sortNodesDeterministic(candidates, func(a, b *Node) bool {
			da, db := g.Degree(a), g.Degree(b)
			if da != db {
				return da > db
			}
			return len(a.Rel.Rows) < len(b.Rel.Rows)
		})
		for _, x := range candidates {
			edges := g.EdgesOf(x)
			if len(edges) == 0 {
				continue
			}
			// y := x's highest-degree neighbor, ties towards the smaller
			// estimated fold size |x| * |y|.
			var y *Node
			yDeg := -1
			for _, e := range edges {
				o := e.Other(x)
				d := g.Degree(o)
				switch {
				case d > yDeg:
					y, yDeg = o, d
				case d == yDeg && y != nil && len(o.Rel.Rows) < len(y.Rel.Rows):
					y = o
				case d == yDeg && y != nil && len(o.Rel.Rows) == len(y.Rel.Rows) && o.Name() < y.Name():
					y = o
				}
			}
			return x, y, nil
		}
		return nil, nil, fmt.Errorf("core: no foldable pair found (bug)")
	}
}

func cardProduct(e *Edge) int {
	return len(e.X.Rel.Rows) * len(e.Y.Rel.Rows)
}

// foldPair replaces x and y by the node x ⋈ y, re-pointing and merging all
// affected edges (line 5 of Algorithm 3). The fold join runs at degree par
// (0 = auto, 1 = serial) with deterministic ordered output.
func foldPair(g *Graph, x, y *Node, par int) error {
	return foldPairSpan(g, x, y, par, false, nil)
}

// foldPairSpan is foldPair recording the fold join's build/probe timings on
// sp (nil = no tracing). With vec, the join hashes its keys from the inputs'
// columnar views when present (bit-identical output either way).
func foldPairSpan(g *Graph, x, y *Node, par int, vec bool, sp *trace.Span) error {
	// Join x and y on the conjunction of all predicates between them.
	var between *Edge
	for _, e := range g.Edges {
		if e.X == x && e.Y == y || e.X == y && e.Y == x {
			between = e
			break
		}
	}
	if between == nil {
		return fmt.Errorf("core: fold pair %s, %s not adjacent", x.Name(), y.Name())
	}
	xCols, yCols, err := edgeCols(between)
	if err != nil {
		return err
	}
	join := engine.HashJoinSpan
	if vec {
		join = engine.HashJoinVecSpan
	}
	var joined *engine.Relation
	if between.X == x {
		joined = join(x.Rel, y.Rel, xCols, yCols, par, sp)
	} else {
		joined = join(x.Rel, y.Rel, yCols, xCols, par, sp)
	}
	z := &Node{
		Aliases: append(append([]string(nil), x.Aliases...), y.Aliases...),
		Rel:     joined,
	}

	// Rebuild the node and edge lists: drop x,y; re-point other edges to z,
	// merging parallel edges into conjunctions.
	var nodes []*Node
	for _, n := range g.Nodes {
		if n != x && n != y {
			nodes = append(nodes, n)
		}
	}
	nodes = append(nodes, z)

	merged := make(map[*Node]*Edge)
	var edges []*Edge
	for _, e := range g.Edges {
		touchesX, touchesY := e.X == x || e.Y == x, e.X == y || e.Y == y
		if touchesX && touchesY {
			continue // the folded edge disappears
		}
		if !touchesX && !touchesY {
			edges = append(edges, e)
			continue
		}
		// Normalize so z is the X side.
		other := e.Other(x)
		preds := e.Preds
		if touchesY {
			other = e.Other(y)
		}
		if e.X == other {
			// predicates have `other` on the Left; flip them so z is Left.
			flipped := make([]engine.JoinPred, len(preds))
			for i, p := range preds {
				flipped[i] = p.Reverse()
			}
			preds = flipped
		}
		if exist, ok := merged[other]; ok {
			exist.Preds = append(exist.Preds, preds...)
			continue
		}
		ne := &Edge{X: z, Y: other, Preds: append([]engine.JoinPred(nil), preds...)}
		merged[other] = ne
		edges = append(edges, ne)
	}
	g.Nodes = nodes
	g.Edges = edges
	return nil
}

package hypergraph

import (
	"fmt"
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

type memSource map[string]*storage.Table

func (m memSource) Table(name string) (*storage.Table, error) {
	if t, ok := m[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("no table %q", name)
}

// threeIntTables builds tables a,b,c,d each with (id, k, l).
func threeIntTables(t *testing.T) memSource {
	t.Helper()
	src := memSource{}
	for _, name := range []string{"a", "b", "c", "d"} {
		def := catalog.MustTableDef(name, []catalog.Column{
			{Name: "id", Type: types.KindInt},
			{Name: "k", Type: types.KindInt},
			{Name: "l", Type: types.KindInt},
		})
		tab := storage.NewTable(def)
		if err := tab.Insert(types.Row{types.NewInt(1), types.NewInt(1), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
		src[name] = tab
	}
	return src
}

func specOf(t *testing.T, src engine.Source, sql string) *engine.SPJSpec {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestChainIsAlphaAcyclic(t *testing.T) {
	src := threeIntTables(t)
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.l = c.l`)
	if !AlphaAcyclic(spec) {
		t.Error("chain must be alpha-acyclic")
	}
	if Classify(spec, false) != "acyclic" {
		t.Error("JG-acyclic chain classifies as acyclic")
	}
}

// TestTriangleSameAttributeIsAlphaAcyclic: the paper's motivating gap. A
// triangle of predicates over ONE attribute class (a.k = b.k AND b.k = c.k
// AND a.k = c.k) is JG-cyclic (3 joins >= 3 relations) but alpha-acyclic:
// all three hyperedges share the single vertex, so GYO reduces them away.
func TestTriangleSameAttributeIsAlphaAcyclic(t *testing.T) {
	src := threeIntTables(t)
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.k = c.k AND a.k = c.k`)
	h := Build(spec)
	ok, tree := h.GYO()
	if !ok {
		t.Fatalf("same-attribute triangle must be alpha-acyclic; hypergraph %s", h)
	}
	if len(tree) != 3 { // two containment edges + the root marker
		t.Errorf("join tree edges = %d, want 3", len(tree))
	}
	if Classify(spec, true) != "alpha-acyclic" {
		t.Error("classification should be alpha-acyclic")
	}
}

// TestTriangleDistinctAttributesIsCyclic: a genuine cycle — three relations
// pairwise joined on three DIFFERENT attribute classes — is cyclic under
// both notions (the classical triangle query).
func TestTriangleDistinctAttributesIsCyclic(t *testing.T) {
	src := threeIntTables(t)
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.l = c.k AND a.l = c.l`)
	if AlphaAcyclic(spec) {
		t.Error("distinct-attribute triangle must not be alpha-acyclic")
	}
	if Classify(spec, true) != "cyclic" {
		t.Error("classification should be cyclic")
	}
}

func TestStarIsAlphaAcyclic(t *testing.T) {
	src := threeIntTables(t)
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b, c AS c, d AS d
		WHERE a.k = b.k AND a.l = c.k AND a.id = d.k`)
	ok, tree := Build(spec).GYO()
	if !ok {
		t.Fatal("star must be alpha-acyclic")
	}
	// The center must be the root (removed last).
	root := tree[len(tree)-1]
	if root.Parent != "" || root.Child != "a" {
		t.Errorf("root = %+v, want relation a", root)
	}
}

func TestEquivalenceClasses(t *testing.T) {
	src := threeIntTables(t)
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b, c AS c
		WHERE a.k = b.k AND b.k = c.k`)
	h := Build(spec)
	// a.k, b.k, c.k all in one class.
	if len(h.Members) != 1 {
		t.Fatalf("classes = %d, want 1 (%s)", len(h.Members), h)
	}
	if len(h.Members[0]) != 3 {
		t.Errorf("class members = %d, want 3", len(h.Members[0]))
	}
}

func TestCycleOfFourDistinctClasses(t *testing.T) {
	src := threeIntTables(t)
	// a-b-c-d-a square on distinct attributes: cyclic under both notions.
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b, c AS c, d AS d
		WHERE a.k = b.k AND b.l = c.k AND c.l = d.k AND d.l = a.l`)
	if AlphaAcyclic(spec) {
		t.Error("square on distinct attributes must be cyclic")
	}
}

func TestSharedClassesOnTreeEdges(t *testing.T) {
	src := threeIntTables(t)
	spec := specOf(t, src, `SELECT a.id FROM a AS a, b AS b WHERE a.k = b.k AND a.l = b.l`)
	ok, tree := Build(spec).GYO()
	if !ok {
		t.Fatal("two relations are always alpha-acyclic")
	}
	// The containment edge must share both classes.
	if len(tree) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	if len(tree[0].SharedClasses) != 2 {
		t.Errorf("shared classes = %v, want 2 entries", tree[0].SharedClasses)
	}
}

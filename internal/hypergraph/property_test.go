package hypergraph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resultdb/internal/engine"
)

// randomSpec builds a random SPJ spec over the four test tables with a
// spanning tree plus optional extra predicates.
func randomSpec(t *testing.T, rng *rand.Rand) (*engine.SPJSpec, bool) {
	t.Helper()
	src := threeIntTables(t)
	names := []string{"a", "b", "c", "d"}
	n := 2 + rng.Intn(3)
	cols := []string{"k", "l", "id"}
	var preds []string
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		preds = append(preds, fmt.Sprintf("%s.%s = %s.%s",
			names[i], cols[rng.Intn(2)], names[j], cols[rng.Intn(2)]))
	}
	extra := rng.Intn(3)
	for e := 0; e < extra; e++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if x == y {
			continue
		}
		preds = append(preds, fmt.Sprintf("%s.%s = %s.%s",
			names[x], cols[rng.Intn(2)], names[y], cols[rng.Intn(2)]))
	}
	var from []string
	for i := 0; i < n; i++ {
		from = append(from, names[i]+" AS "+names[i])
	}
	sql := fmt.Sprintf("SELECT a.id FROM %s WHERE %s",
		strings.Join(from, ", "), strings.Join(preds, " AND "))
	spec := specOf(t, src, sql)
	// JG-cyclicity by the paper's edge-count test over distinct pairs.
	pairs := map[string]bool{}
	for _, p := range spec.JoinPreds {
		l, r := strings.ToLower(p.LeftRel), strings.ToLower(p.RightRel)
		if l > r {
			l, r = r, l
		}
		pairs[l+"|"+r] = true
	}
	jgCyclic := len(pairs) >= len(spec.Rels)
	return spec, jgCyclic
}

// TestJGAcyclicImpliesAlphaAcyclic: the theory guarantee behind the paper's
// Definition 4.2 choice — JG-acyclicity is strictly stronger, so every
// JG-acyclic query must pass the GYO test. (The converse does not hold;
// TestTriangleSameAttributeIsAlphaAcyclic shows the gap.)
func TestJGAcyclicImpliesAlphaAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	checkedAcyclic := 0
	for trial := 0; trial < 400; trial++ {
		spec, jgCyclic := randomSpec(t, rng)
		if jgCyclic {
			continue
		}
		checkedAcyclic++
		if !AlphaAcyclic(spec) {
			t.Fatalf("trial %d: JG-acyclic query failed the GYO test: %v",
				trial, spec.JoinPreds)
		}
	}
	if checkedAcyclic < 50 {
		t.Fatalf("too few acyclic samples (%d); generator broken?", checkedAcyclic)
	}
}

// TestGYOJoinTreeCoversAllRelations: when GYO succeeds, the returned join
// tree must mention every relation exactly once as a child.
func TestGYOJoinTreeCoversAllRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	covered := 0
	for trial := 0; trial < 300; trial++ {
		spec, _ := randomSpec(t, rng)
		h := Build(spec)
		ok, tree := h.GYO()
		if !ok {
			continue
		}
		covered++
		seen := map[string]int{}
		for _, e := range tree {
			seen[e.Child]++
		}
		if len(seen) != len(spec.Rels) {
			t.Fatalf("trial %d: tree covers %d of %d relations: %+v",
				trial, len(seen), len(spec.Rels), tree)
		}
		for child, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("trial %d: relation %s appears %d times", trial, child, cnt)
			}
		}
	}
	if covered < 100 {
		t.Fatalf("too few alpha-acyclic samples (%d)", covered)
	}
}

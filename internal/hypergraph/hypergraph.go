// Package hypergraph implements the query hypergraph and the GYO
// (Graham/Yu-Ozsoyoglu) reduction used to decide α-acyclicity.
//
// The paper (Section 4.1) deliberately trades the classical notion of
// α-acyclicity for the cheaper JG-acyclicity — "checking for α-acyclicity
// requires for example the application of the GYO algorithm ... which is
// computationally more expensive" — and leaves α-acyclicity for future work.
// This package supplies that future-work piece: a query can be JG-cyclic yet
// α-acyclic (a triangle of join predicates over the same attribute class is
// the canonical example), in which case a GYO-derived join tree lets
// Yannakakis' algorithm run without any folding at all.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"resultdb/internal/engine"
)

// Hypergraph models a query: one hyperedge per relation instance, whose
// vertices are the equivalence classes of join attributes (attributes made
// equal by the query's join predicates, transitively).
type Hypergraph struct {
	// Edges maps relation alias (lower-cased) to its vertex set.
	Edges map[string]map[int]bool
	// ClassOf maps "alias.column" (lower-cased) to its vertex id.
	ClassOf map[string]int
	// Members lists, per vertex id, the attributes in the class.
	Members [][]engine.Attr
}

// Build constructs the hypergraph of an analyzed SPJ query.
func Build(spec *engine.SPJSpec) *Hypergraph {
	// Union-find over join attributes.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	add := func(x string) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	key := func(rel, col string) string {
		return strings.ToLower(rel) + "." + strings.ToLower(col)
	}
	attrOf := map[string]engine.Attr{}
	for _, j := range spec.JoinPreds {
		l, r := key(j.LeftRel, j.LeftCol), key(j.RightRel, j.RightCol)
		add(l)
		add(r)
		attrOf[l] = engine.Attr{Rel: j.LeftRel, Col: j.LeftCol}
		attrOf[r] = engine.Attr{Rel: j.RightRel, Col: j.RightCol}
		parent[find(l)] = find(r)
	}

	// Number the classes deterministically by their smallest member key.
	classRep := map[string][]string{}
	for x := range parent {
		root := find(x)
		classRep[root] = append(classRep[root], x)
	}
	var roots []string
	for root, members := range classRep {
		sort.Strings(members)
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool {
		return classRep[roots[i]][0] < classRep[roots[j]][0]
	})
	h := &Hypergraph{
		Edges:   map[string]map[int]bool{},
		ClassOf: map[string]int{},
	}
	for id, root := range roots {
		var members []engine.Attr
		for _, x := range classRep[root] {
			h.ClassOf[x] = id
			members = append(members, attrOf[x])
		}
		h.Members = append(h.Members, members)
	}

	// One hyperedge per relation: the classes its join attributes belong to.
	for _, r := range spec.Rels {
		alias := strings.ToLower(r.Alias)
		h.Edges[alias] = map[int]bool{}
		for _, col := range spec.JoinAttrsOf(r.Alias) {
			if id, ok := h.ClassOf[key(r.Alias, col)]; ok {
				h.Edges[alias][id] = true
			}
		}
	}
	return h
}

// JoinTreeEdge connects a relation to its parent in a GYO-derived join tree.
type JoinTreeEdge struct {
	Child  string
	Parent string
	// SharedClasses are the vertex ids both hyperedges contain — the
	// attributes a semi-join between the two relations must compare.
	SharedClasses []int
}

// GYO runs the Graham/Yu–Özsoyoğlu reduction: repeatedly (1) remove
// vertices occurring in exactly one hyperedge, and (2) remove hyperedges
// contained in another hyperedge, recording the containment as a join-tree
// edge. The query is α-acyclic iff at most one (empty) hyperedge remains.
//
// It returns whether the hypergraph is α-acyclic and, if so, the join tree
// (child→parent containment order; relations removed later are nearer the
// root).
func (h *Hypergraph) GYO() (bool, []JoinTreeEdge) {
	// Work on copies.
	edges := map[string]map[int]bool{}
	for alias, vs := range h.Edges {
		cp := map[int]bool{}
		for v := range vs {
			cp[v] = true
		}
		edges[alias] = cp
	}
	var tree []JoinTreeEdge

	names := func() []string {
		out := make([]string, 0, len(edges))
		for a := range edges {
			out = append(out, a)
		}
		sort.Strings(out)
		return out
	}

	for {
		changed := false

		// (1) Remove vertices appearing in exactly one hyperedge.
		count := map[int]int{}
		for _, vs := range edges {
			for v := range vs {
				count[v]++
			}
		}
		for _, alias := range names() {
			for v := range edges[alias] {
				if count[v] == 1 {
					delete(edges[alias], v)
					changed = true
				}
			}
		}

		// (2) Remove hyperedges contained in another (ears), recording the
		// containment witness as the tree parent.
		aliases := names()
		for _, a := range aliases {
			if _, alive := edges[a]; !alive {
				continue
			}
			for _, b := range aliases {
				if a == b {
					continue
				}
				if _, alive := edges[b]; !alive {
					continue
				}
				if containedIn(edges[a], edges[b]) {
					var shared []int
					for v := range edges[a] {
						shared = append(shared, v)
					}
					sort.Ints(shared)
					tree = append(tree, JoinTreeEdge{Child: a, Parent: b, SharedClasses: shared})
					delete(edges, a)
					changed = true
					break
				}
			}
		}

		if !changed {
			break
		}
	}
	if len(edges) > 1 {
		return false, nil
	}
	// Append the root (the surviving hyperedge) as a self-rooted marker so
	// callers know the tree's root.
	for alias := range edges {
		tree = append(tree, JoinTreeEdge{Child: alias, Parent: "", SharedClasses: nil})
	}
	return true, tree
}

// containedIn reports a ⊆ b. Empty sets are contained in everything, which
// is exactly what the GYO ear-removal needs once isolated vertices are gone.
func containedIn(a, b map[int]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// AlphaAcyclic reports whether the analyzed query is α-acyclic.
func AlphaAcyclic(spec *engine.SPJSpec) bool {
	ok, _ := Build(spec).GYO()
	return ok
}

// Classify names the acyclicity class of a query under both notions, for
// diagnostics and EXPLAIN: "acyclic" (JG-acyclic, hence also α-acyclic),
// "alpha-acyclic" (JG-cyclic but α-acyclic — folding is avoidable), or
// "cyclic" (neither).
func Classify(spec *engine.SPJSpec, jgCyclic bool) string {
	if !jgCyclic {
		return "acyclic"
	}
	if AlphaAcyclic(spec) {
		return "alpha-acyclic"
	}
	return "cyclic"
}

// String renders the hypergraph for debugging.
func (h *Hypergraph) String() string {
	var b strings.Builder
	var aliases []string
	for a := range h.Edges {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	for _, a := range aliases {
		var vs []int
		for v := range h.Edges[a] {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		fmt.Fprintf(&b, "%s%v ", a, vs)
	}
	return strings.TrimSpace(b.String())
}

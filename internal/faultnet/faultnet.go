// Package faultnet is a deterministic network-fault injector: net.Conn and
// net.Listener wrappers that fail on schedule, so every transport failure
// mode the wire layer must survive — a dropped socket, a mid-frame
// truncation, a flipped byte, a stalled peer, a refused accept — is a
// repeatable test instead of a production surprise.
//
// A Plan assigns one Fault per connection, in dial/accept order; connections
// beyond the script run clean. That shape makes retry testing natural: fault
// the first k connections and a correctly retrying client succeeds on
// connection k+1, while a plan that faults every connection must surface a
// typed error. Plans are plain data — build them literally, derive them from
// a seed with RandomPlan, or decode them from arbitrary bytes with
// DecodePlan (the fuzzing entry point; it never fails and always yields a
// bounded plan).
//
// The package is zero-dependency and wholly passive: production code paths
// never import it. It is installed under wire.Server and wire.Client through
// their listen/dial hooks, so turning faults off means not installing it.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Action is the kind of fault a connection suffers.
type Action uint8

const (
	// None leaves the connection clean.
	None Action = iota
	// Drop closes the connection once Offset total bytes (reads plus
	// writes) have passed through it; the next operation fails.
	Drop
	// Stall pauses the connection once, for Delay, at the first operation
	// after Offset total bytes — latency injection / a mid-stream hiccup.
	Stall
	// Truncate delivers only the first Offset written bytes, cutting the
	// final write mid-buffer (mid-frame, for wire traffic) and closing.
	Truncate
	// Corrupt flips (XOR 0xFF) the single written byte at offset Offset,
	// then behaves cleanly — the classic undetected-without-a-checksum bug.
	Corrupt
	// Reset closes the connection on the first write at or beyond write
	// offset Offset, without transmitting any of it.
	Reset
	// Refuse rejects the connection outright: a wrapped listener accepts
	// and instantly closes it, a Dialer fails the dial.
	Refuse

	numActions // count sentinel for RandomPlan/DecodePlan
)

var actionNames = map[Action]string{
	None: "none", Drop: "drop", Stall: "stall", Truncate: "truncate",
	Corrupt: "corrupt", Reset: "reset", Refuse: "refuse",
}

// String names the action ("drop", "stall", ...).
func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// ErrInjected marks every error produced by an injected fault, so tests can
// distinguish scheduled failures from real ones with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// Fault is one connection's failure schedule.
type Fault struct {
	Action Action
	// Offset is the byte threshold the action triggers at; which byte
	// stream it counts (read+write, write-only) depends on the Action.
	Offset int64
	// Delay is the Stall pause length.
	Delay time.Duration
}

func (f Fault) String() string {
	switch f.Action {
	case None:
		return "none"
	case Stall:
		return fmt.Sprintf("stall@%d+%v", f.Offset, f.Delay)
	default:
		return fmt.Sprintf("%s@%d", f.Action, f.Offset)
	}
}

// Plan schedules faults across a sequence of connections.
type Plan struct {
	// Conns assigns Conns[i] to the i-th connection dialed/accepted;
	// connections past the end run clean.
	Conns []Fault
}

func (p Plan) String() string {
	s := "plan["
	for i, f := range p.Conns {
		if i > 0 {
			s += " "
		}
		s += f.String()
	}
	return s + "]"
}

// Repeat returns a plan applying f to the first n connections.
func Repeat(f Fault, n int) Plan {
	conns := make([]Fault, n)
	for i := range conns {
		conns[i] = f
	}
	return Plan{Conns: conns}
}

// RandomPlan derives a deterministic n-connection plan from a seed: random
// actions, offsets spread across the small-message range (0..2048), stall
// delays of at most 20ms. The same seed always yields the same plan.
func RandomPlan(seed int64, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	conns := make([]Fault, n)
	for i := range conns {
		conns[i] = Fault{
			Action: Action(rng.Intn(int(numActions))),
			Offset: int64(rng.Intn(2048)),
			Delay:  time.Duration(rng.Intn(20)) * time.Millisecond,
		}
	}
	return Plan{Conns: conns}
}

// maxDecodedFaults and maxDecodedDelay bound DecodePlan so a fuzzer cannot
// schedule an effectively-infinite stall or an unbounded plan.
const (
	maxDecodedFaults = 8
	maxDecodedDelay  = 25 * time.Millisecond
)

// DecodePlan decodes arbitrary bytes into a valid, bounded fault plan: three
// bytes per fault (action, offset seed, delay seed), at most eight faults,
// delays capped at 25ms. It is a total function — any input yields a usable
// plan — which makes it the fuzzing entry point for the chaos harness.
func DecodePlan(data []byte) Plan {
	var p Plan
	for len(data) >= 3 && len(p.Conns) < maxDecodedFaults {
		action := Action(data[0] % uint8(numActions))
		// Offsets cluster near frame boundaries: byte value n maps to n²/4
		// (0..16k), covering header-sized and payload-sized thresholds.
		off := int64(data[1]) * int64(data[1]) / 4
		delay := time.Duration(data[2]) * maxDecodedDelay / 255
		p.Conns = append(p.Conns, Fault{Action: action, Offset: off, Delay: delay})
		data = data[3:]
	}
	return p
}

// injector hands one fault to each successive connection.
type injector struct {
	mu   sync.Mutex
	plan Plan
	next int
}

func (in *injector) take() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.next >= len(in.plan.Conns) {
		return Fault{}
	}
	f := in.plan.Conns[in.next]
	in.next++
	return f
}

// Listener wraps an accepted-connection stream with a fault plan.
type Listener struct {
	net.Listener
	in *injector
}

// WrapListener applies plan to the connections ln accepts, in accept order.
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, in: &injector{plan: plan}}
}

// Listen is net.Listen plus a fault plan; its signature matches the
// wire.Server listen hook.
func Listen(network, addr string, plan Plan) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return WrapListener(ln, plan), nil
}

// Accept returns the next connection wrapped with its scheduled fault. A
// Refuse fault closes the connection immediately (the dialer sees an instant
// hangup) and Accept moves on to the next one.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		f := l.in.take()
		if f.Action == Refuse {
			c.Close()
			continue
		}
		return &Conn{Conn: c, fault: f}, nil
	}
}

// Dialer dials TCP connections wrapped with a fault plan, in dial order; its
// Dial method matches the wire.Options dial hook.
type Dialer struct {
	in *injector
	// Timeout bounds each dial (0 = none).
	Timeout time.Duration
}

// NewDialer schedules plan over the connections the dialer creates.
func NewDialer(plan Plan) *Dialer {
	return &Dialer{in: &injector{plan: plan}}
}

// Dial connects to addr and applies the connection's scheduled fault. A
// Refuse fault fails the dial itself.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	f := d.in.take()
	if f.Action == Refuse {
		return nil, fmt.Errorf("%w: dial %s refused by plan", ErrInjected, addr)
	}
	c, err := net.DialTimeout("tcp", addr, d.Timeout)
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c, fault: f}, nil
}

// Conn applies one Fault to a wrapped connection. Fault checks happen at
// operation boundaries (one Read or Write call), which matches how the wire
// protocol performs frame-sized operations through bufio.
type Conn struct {
	net.Conn
	fault Fault

	mu      sync.Mutex
	read    int64
	written int64
	stalled bool
	dead    bool
}

// Fault reports the connection's scheduled fault (tests introspect it).
func (c *Conn) Fault() Fault { return c.fault }

// kill closes the underlying connection and marks every future operation
// failed. Callers hold c.mu.
func (c *Conn) kill(op string) error {
	c.dead = true
	c.Conn.Close()
	return fmt.Errorf("%w: %s (%s after %d bytes)", ErrInjected, op, c.fault.Action, c.read+c.written)
}

// maybeStall performs the one-shot Stall pause. Callers hold c.mu; the sleep
// happens with the lock held deliberately — the stall must stall the whole
// connection, concurrent users included.
func (c *Conn) maybeStall() {
	if c.fault.Action == Stall && !c.stalled && c.read+c.written >= c.fault.Offset {
		c.stalled = true
		time.Sleep(c.fault.Delay)
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: read on killed connection", ErrInjected)
	}
	c.maybeStall()
	if c.fault.Action == Drop && c.read+c.written >= c.fault.Offset {
		err := c.kill("read")
		c.mu.Unlock()
		return 0, err
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	c.read += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	// Decide the fault outcome under the lock, then perform the (possibly
	// blocking) underlying write without it — a stalled peer must not wedge
	// the connection's Read side through the mutex.
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: write on killed connection", ErrInjected)
	}
	c.maybeStall()
	payload := b
	truncated := false
	switch c.fault.Action {
	case Drop:
		if c.read+c.written >= c.fault.Offset {
			err := c.kill("write")
			c.mu.Unlock()
			return 0, err
		}
	case Reset:
		if c.written >= c.fault.Offset {
			err := c.kill("write")
			c.mu.Unlock()
			return 0, err
		}
	case Truncate:
		if remaining := c.fault.Offset - c.written; remaining <= int64(len(b)) {
			if remaining < 0 {
				remaining = 0
			}
			payload = b[:remaining]
			truncated = true
		}
	case Corrupt:
		if off := c.fault.Offset - c.written; 0 <= off && off < int64(len(b)) {
			mangled := append([]byte(nil), b...)
			mangled[off] ^= 0xFF
			payload = mangled
		}
	}
	c.mu.Unlock()

	n, err := c.Conn.Write(payload)
	c.mu.Lock()
	c.written += int64(n)
	if truncated {
		c.kill("write")
		err = fmt.Errorf("%w: write truncated at %d bytes", ErrInjected, c.fault.Offset)
	}
	c.mu.Unlock()
	return n, err
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.Conn.Close()
}

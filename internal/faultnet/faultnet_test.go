package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back, for driving the
// conn wrapper from both sides.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

func dialFaulty(t *testing.T, addr string, f Fault) net.Conn {
	t.Helper()
	c, err := NewDialer(Plan{Conns: []Fault{f}}).Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCleanConnectionPassesThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	c := dialFaulty(t, addr, Fault{}) // Action None
	msg := []byte("hello, faultnet")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestDropKillsAfterOffset(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	c := dialFaulty(t, addr, Fault{Action: Drop, Offset: 8})
	if _, err := c.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write below the threshold failed: %v", err)
	}
	_, err := c.Write([]byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write past drop offset: err = %v, want ErrInjected", err)
	}
	// The connection stays dead.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after drop: %v", err)
	}
}

func TestTruncateCutsMidBuffer(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	c := dialFaulty(t, addr, Fault{Action: Truncate, Offset: 5})
	n, err := c.Write([]byte("0123456789"))
	if n != 5 {
		t.Fatalf("truncated write wrote %d bytes, want 5", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write err = %v, want ErrInjected", err)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	c := dialFaulty(t, addr, Fault{Action: Corrupt, Offset: 3})
	msg := []byte("abcdef")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	want := []byte("abc" + string([]byte{'d' ^ 0xFF}) + "ef")
	if !bytes.Equal(got, want) {
		t.Fatalf("echo after corrupt = %q, want %q", got, want)
	}
	// The original buffer must not be mangled in place.
	if string(msg) != "abcdef" {
		t.Fatalf("caller's buffer mutated: %q", msg)
	}
	// Later traffic is clean.
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	two := make([]byte, 2)
	if _, err := io.ReadFull(c, two); err != nil || string(two) != "ok" {
		t.Fatalf("post-corruption traffic = %q, %v", two, err)
	}
}

func TestResetFailsWriteWithoutTransmitting(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	c := dialFaulty(t, addr, Fault{Action: Reset, Offset: 0})
	n, err := c.Write([]byte("never arrives"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestStallDelaysOnce(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	const delay = 30 * time.Millisecond
	c := dialFaulty(t, addr, Fault{Action: Stall, Offset: 0, Delay: delay})
	start := time.Now()
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < delay {
		t.Fatalf("first write took %v, want >= %v", d, delay)
	}
	// One-shot: the second write is fast.
	start = time.Now()
	if _, err := c.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > delay {
		t.Fatalf("second write stalled too (%v)", d)
	}
}

func TestDialerRefuse(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d := NewDialer(Plan{Conns: []Fault{{Action: Refuse}}})
	if _, err := d.Dial(addr); !errors.Is(err, ErrInjected) {
		t.Fatalf("refused dial err = %v, want ErrInjected", err)
	}
	// The next connection runs clean.
	c, err := d.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestListenerRefuseClosesAndMovesOn(t *testing.T) {
	ln, err := Listen("tcp", "127.0.0.1:0", Plan{Conns: []Fault{{Action: Refuse}}})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	// First dial: accepted then instantly closed by the plan.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused connection stayed open")
	}
	// Second dial: served.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("second connection never accepted")
	}
}

func TestPlanAssignsFaultsInOrderThenClean(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d := NewDialer(Plan{Conns: []Fault{
		{Action: Drop, Offset: 1},
		{Action: Reset, Offset: 2},
	}})
	for i, want := range []Fault{{Action: Drop, Offset: 1}, {Action: Reset, Offset: 2}, {}} {
		c, err := d.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.(*Conn).Fault(); got != want {
			t.Errorf("connection %d fault = %v, want %v", i, got, want)
		}
		c.Close()
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a, b := RandomPlan(7, 5), RandomPlan(7, 5)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	if c := RandomPlan(8, 5); c.String() == a.String() {
		t.Fatal("different seeds produced identical plans (suspicious)")
	}
}

func TestDecodePlanBounded(t *testing.T) {
	// Hostile input: max actions, max offsets, max delays, excess length.
	data := bytes.Repeat([]byte{0xFF}, 3*maxDecodedFaults*4)
	p := DecodePlan(data)
	if len(p.Conns) > maxDecodedFaults {
		t.Fatalf("decoded %d faults, cap is %d", len(p.Conns), maxDecodedFaults)
	}
	for _, f := range p.Conns {
		if f.Delay > maxDecodedDelay {
			t.Fatalf("decoded delay %v exceeds cap %v", f.Delay, maxDecodedDelay)
		}
		if f.Action >= numActions {
			t.Fatalf("decoded out-of-range action %d", f.Action)
		}
	}
	// Short and empty inputs yield empty plans, not panics.
	if got := DecodePlan(nil); len(got.Conns) != 0 {
		t.Fatalf("nil input decoded to %v", got)
	}
	if got := DecodePlan([]byte{1, 2}); len(got.Conns) != 0 {
		t.Fatalf("2-byte input decoded to %v", got)
	}
}

package sqlparse

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resultdb/internal/types"
)

// exprGen builds random expression trees whose rendering must re-parse to
// an identical rendering (SQL() is a fixpoint after one parse).
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) colRef() *ColumnRef {
	tables := []string{"t", "u", "v"}
	cols := []string{"a", "b", "c", "d"}
	return &ColumnRef{
		Table:  tables[g.rng.Intn(len(tables))],
		Column: cols[g.rng.Intn(len(cols))],
	}
}

func (g *exprGen) literal() *Literal {
	switch g.rng.Intn(5) {
	case 0:
		return &Literal{Value: types.NewInt(int64(g.rng.Intn(200) - 100))}
	case 1:
		return &Literal{Value: types.NewFloat(float64(g.rng.Intn(100)) + 0.25)}
	case 2:
		// Strings including quotes and spaces.
		samples := []string{"x", "it's", "a b", "", "100%"}
		return &Literal{Value: types.NewText(samples[g.rng.Intn(len(samples))])}
	case 3:
		return &Literal{Value: types.NewBool(g.rng.Intn(2) == 0)}
	default:
		return &Literal{Value: types.Null()}
	}
}

func (g *exprGen) scalar(depth int) Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return g.colRef()
		}
		return g.literal()
	}
	ops := []BinaryOp{OpAdd, OpSub, OpMul}
	return &Binary{Op: ops[g.rng.Intn(len(ops))], L: g.scalar(depth - 1), R: g.scalar(depth - 1)}
}

func (g *exprGen) predicate(depth int) Expr {
	if depth <= 0 {
		cmp := []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &Binary{Op: cmp[g.rng.Intn(len(cmp))], L: g.colRef(), R: g.scalar(1)}
	}
	switch g.rng.Intn(8) {
	case 0:
		return &Binary{Op: OpAnd, L: g.predicate(depth - 1), R: g.predicate(depth - 1)}
	case 1:
		return &Binary{Op: OpOr, L: g.predicate(depth - 1), R: g.predicate(depth - 1)}
	case 2:
		return &Unary{Op: "NOT", E: g.predicate(depth - 1)}
	case 3:
		return &Between{E: g.colRef(), Lo: g.scalar(0), Hi: g.scalar(0), Not: g.rng.Intn(2) == 0}
	case 4:
		n := 1 + g.rng.Intn(3)
		list := make([]Expr, n)
		for i := range list {
			list[i] = g.literal()
		}
		return &InList{E: g.colRef(), List: list, Not: g.rng.Intn(2) == 0}
	case 5:
		pats := []string{"%x%", "a_", "100^%", "it''s%"}
		return &Like{E: g.colRef(), Pattern: strings.ReplaceAll(pats[g.rng.Intn(len(pats))], "''", "'"), Not: g.rng.Intn(2) == 0}
	case 6:
		return &IsNull{E: g.colRef(), Not: g.rng.Intn(2) == 0}
	default:
		cmp := []BinaryOp{OpEq, OpLt, OpGe}
		return &Binary{Op: cmp[g.rng.Intn(len(cmp))], L: g.scalar(depth - 1), R: g.scalar(depth - 1)}
	}
}

func (g *exprGen) selectStmt() *Select {
	sel := &Select{
		Distinct: g.rng.Intn(3) == 0,
		ResultDB: g.rng.Intn(4) == 0,
	}
	if sel.ResultDB && g.rng.Intn(2) == 0 {
		sel.Preserving = true
	}
	nItems := 1 + g.rng.Intn(3)
	for i := 0; i < nItems; i++ {
		sel.Items = append(sel.Items, SelectItem{Expr: g.colRef()})
	}
	for _, name := range []string{"t", "u", "v"} {
		sel.From = append(sel.From, FromItem{Ref: TableRef{Table: name + "_base", Alias: name}})
	}
	sel.Where = g.predicate(3)
	return sel
}

// TestRenderParseFixpointRandom: for random ASTs, SQL() parses back to a
// statement whose SQL() is byte-identical.
func TestRenderParseFixpointRandom(t *testing.T) {
	g := &exprGen{rng: rand.New(rand.NewSource(99))}
	for trial := 0; trial < 500; trial++ {
		sel := g.selectStmt()
		sql1 := sel.SQL()
		st, err := Parse(sql1)
		if err != nil {
			t.Fatalf("trial %d: generated SQL does not parse: %v\n%s", trial, err, sql1)
		}
		sql2 := st.SQL()
		if sql1 != sql2 {
			t.Fatalf("trial %d: render not a fixpoint:\n1: %s\n2: %s", trial, sql1, sql2)
		}
	}
}

// TestRenderedPredicatesPreserveSemantics: random predicates evaluated by
// the engine must produce the same filtered rows before and after a
// render/parse round trip. (Rendering bugs that re-associate operators
// would change results, not just text.)
func TestRenderedPredicatesPreserveSemantics(t *testing.T) {
	// Uses only sqlparse-level checks: compare conjunct structure.
	g := &exprGen{rng: rand.New(rand.NewSource(7))}
	for trial := 0; trial < 300; trial++ {
		e := g.predicate(4)
		sql := e.SQL()
		sel, err := ParseSelect(fmt.Sprintf("SELECT t.a FROM t_base AS t WHERE %s", sql))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, sql)
		}
		if got := sel.Where.SQL(); got != sql {
			t.Fatalf("trial %d: predicate mutated:\n1: %s\n2: %s", trial, sql, got)
		}
	}
}

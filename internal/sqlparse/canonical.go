package sqlparse

import "strings"

// Canonical returns the normalized fingerprint rendering of a SELECT: the
// statement is deep-cloned with every identifier (table names, aliases,
// column references, select-item aliases, function names) folded to lower
// case and redundant alias spellings dropped, then rendered through the
// package's single SQL renderer. Two statements that differ only in
// whitespace, comments, identifier case, literal formatting (0.50 vs 0.5,
// ” vs escaped quotes), or "t AS a" vs "t a" spelling therefore produce the
// same fingerprint, while any semantic difference (including RESULTDB vs
// RESULTDB PRESERVING vs classic form) changes it.
//
// The fold matches the engine's case-insensitive name resolution, so two
// statements with equal fingerprints are guaranteed to read the same tables
// and produce semantically identical results; the semantic result cache
// (internal/cache, wired in internal/db) keys on this string.
func Canonical(sel *Select) string {
	return canonicalSelect(sel).SQL()
}

// Tables lists every base table name a SELECT reads: all FROM and JOIN
// references plus, recursively, the tables of IN (SELECT ...) subqueries
// anywhere in the select list, WHERE, or HAVING. Names are reported in first
// appearance order with original case; callers needing set semantics fold
// case themselves. The result cache uses this to bind an entry to the
// version counters of everything the statement read.
func Tables(sel *Select) []string {
	seen := map[string]bool{}
	var out []string
	collectTables(sel, seen, &out)
	return out
}

func collectTables(sel *Select, seen map[string]bool, out *[]string) {
	add := func(name string) {
		key := strings.ToLower(name)
		if !seen[key] {
			seen[key] = true
			*out = append(*out, name)
		}
	}
	for _, fi := range sel.From {
		add(fi.Ref.Table)
		for _, j := range fi.Joins {
			add(j.Ref.Table)
		}
	}
	var walkSub func(e Expr)
	walkSub = func(e Expr) {
		WalkExpr(e, func(x Expr) {
			if sub, ok := x.(*InSubquery); ok {
				collectTables(sub.Query, seen, out)
				// WalkExpr does not descend into subquery bodies; predicates
				// inside the subquery may nest further subqueries and are
				// covered by the recursive collectTables call above.
			}
		})
	}
	for _, item := range sel.Items {
		walkSub(item.Expr)
	}
	walkSub(sel.Where)
	for _, g := range sel.GroupBy {
		walkSub(g)
	}
	walkSub(sel.Having)
	for _, o := range sel.OrderBy {
		walkSub(o.Expr)
	}
}

// canonicalSelect deep-clones sel with all identifiers lower-cased (the
// original AST is never mutated).
func canonicalSelect(sel *Select) *Select {
	out := &Select{
		Distinct:   sel.Distinct,
		ResultDB:   sel.ResultDB,
		Preserving: sel.Preserving,
		Limit:      sel.Limit,
	}
	for _, item := range sel.Items {
		out.Items = append(out.Items, SelectItem{
			Star:  item.Star,
			Table: strings.ToLower(item.Table),
			Expr:  canonicalExpr(item.Expr),
			Alias: strings.ToLower(item.Alias),
		})
	}
	for _, fi := range sel.From {
		cfi := FromItem{Ref: canonicalRef(fi.Ref)}
		for _, j := range fi.Joins {
			cfi.Joins = append(cfi.Joins, Join{
				Type: j.Type,
				Ref:  canonicalRef(j.Ref),
				On:   canonicalExpr(j.On),
			})
		}
		out.From = append(out.From, cfi)
	}
	out.Where = canonicalExpr(sel.Where)
	for _, g := range sel.GroupBy {
		out.GroupBy = append(out.GroupBy, canonicalExpr(g))
	}
	out.Having = canonicalExpr(sel.Having)
	for _, o := range sel.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: canonicalExpr(o.Expr), Desc: o.Desc})
	}
	return out
}

// canonicalRef lowercases a table reference and drops aliases that merely
// restate the table name ("movies AS movies" == "movies").
func canonicalRef(r TableRef) TableRef {
	table := strings.ToLower(r.Table)
	alias := strings.ToLower(r.Alias)
	if alias == table {
		alias = ""
	}
	return TableRef{Table: table, Alias: alias}
}

// canonicalExpr is CloneExpr with identifier folding; unlike CloneExpr it
// also descends into IN-subquery bodies so nested statements canonicalize.
func canonicalExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		return &ColumnRef{Table: strings.ToLower(x.Table), Column: strings.ToLower(x.Column)}
	case *Literal:
		c := *x
		return &c
	case *Binary:
		return &Binary{Op: x.Op, L: canonicalExpr(x.L), R: canonicalExpr(x.R)}
	case *Unary:
		return &Unary{Op: x.Op, E: canonicalExpr(x.E)}
	case *Between:
		return &Between{E: canonicalExpr(x.E), Lo: canonicalExpr(x.Lo), Hi: canonicalExpr(x.Hi), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, v := range x.List {
			list[i] = canonicalExpr(v)
		}
		return &InList{E: canonicalExpr(x.E), List: list, Not: x.Not}
	case *InSubquery:
		return &InSubquery{E: canonicalExpr(x.E), Query: canonicalSelect(x.Query), Not: x.Not}
	case *Like:
		return &Like{E: canonicalExpr(x.E), Pattern: x.Pattern, Not: x.Not}
	case *IsNull:
		return &IsNull{E: canonicalExpr(x.E), Not: x.Not}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = canonicalExpr(a)
		}
		return &FuncCall{Name: strings.ToLower(x.Name), Star: x.Star, Args: args}
	default:
		return e
	}
}

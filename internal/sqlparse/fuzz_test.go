package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the parser and checks the package's two
// safety contracts:
//
//  1. the parser never panics, whatever the input, and
//  2. for any input that parses, SQL() produces text that re-parses to a
//     statement whose SQL() is byte-identical (the render/parse fixpoint the
//     round-trip tests lock for hand-built ASTs).
//
// The fixpoint half is what keeps quoted identifiers, float exponents,
// keyword-colliding names, and unary minus honest: every one of those was a
// renderer bug this target can re-find.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT c.name, p.name FROM customers AS c, orders AS o, products AS p " +
			"WHERE c.id = o.cust_id AND o.prod_id = p.id AND c.state = 'NY'",
		"SELECT RESULTDB c.*, p.* FROM customers AS c, orders AS o WHERE c.id = o.cust_id",
		"SELECT RESULTDB PRESERVING o.id FROM orders AS o WHERE o.total > 10.5",
		"EXPLAIN ANALYZE SELECT DISTINCT t.a FROM t WHERE t.a IN (1, 2, 3)",
		"SELECT t.a FROM t WHERE t.x BETWEEN 1e-05 AND 2.5E+10 OR NOT (t.b IS NULL)",
		`SELECT "select"."a b" FROM "weird ""name""" AS "select" WHERE "a b" LIKE 'x%'`,
		"SELECT COUNT(*), SUM(t.a) AS s FROM t GROUP BY t.b HAVING COUNT(*) > 1 ORDER BY s DESC LIMIT 10",
		"SELECT -t.a, -(-(3)) FROM t WHERE t.a <> -0.0",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, " +
			"FOREIGN KEY (cid) REFERENCES c (id))",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, TRUE)",
		"CREATE MATERIALIZED VIEW v AS SELECT t.a FROM t; DROP MATERIALIZED VIEW IF EXISTS v;",
		"BEGIN TRANSACTION; COMMIT; ROLLBACK",
		"SELECT t.a FROM t -- comment\nWHERE /* block */ t.a = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseScript(src) // must never panic
		if err != nil {
			return
		}
		for _, st := range stmts {
			sql1 := st.SQL()
			st2, err := Parse(sql1)
			if err != nil {
				t.Fatalf("rendered SQL does not re-parse: %v\ninput:    %q\nrendered: %q", err, src, sql1)
			}
			if sql2 := st2.SQL(); sql2 != sql1 {
				t.Fatalf("render is not a fixpoint:\ninput: %q\n1: %q\n2: %q", src, sql1, sql2)
			}
		}
	})
}

// TestFuzzSeedsAllParse keeps the seed corpus honest in normal -run test
// sweeps (the fuzz engine only checks them under -fuzz): every seed above
// that is meant to parse must parse and hold the fixpoint.
func TestFuzzSeedsAllParse(t *testing.T) {
	for _, src := range []string{
		"SELECT t.a FROM t WHERE t.x BETWEEN 1e-05 AND 2.5E+10",
		`SELECT "select"."a b" FROM "weird ""name""" AS "select"`,
		"SELECT -t.a FROM t WHERE t.a <> -0.0",
		"SELECT t.a FROM t WHERE t.f = 100000.0",
	} {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		sql1 := st.SQL()
		st2, err := Parse(sql1)
		if err != nil {
			t.Fatalf("%q: rendered %q does not re-parse: %v", src, sql1, err)
		}
		if sql2 := st2.SQL(); sql2 != sql1 {
			t.Fatalf("%q: not a fixpoint:\n1: %q\n2: %q", src, sql1, sql2)
		}
		if strings.Contains(sql1, "--") {
			t.Fatalf("%q: rendering contains a comment marker: %q", src, sql1)
		}
	}
}

package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"resultdb/internal/types"
)

// parser consumes the token stream produced by the lexer.
type parser struct {
	toks []token
	i    int
	src  string
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparse: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*Select, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sqlparse: expected a SELECT statement")
	}
	sel.Src = src
	return sel, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmts []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if !p.acceptSymbol(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' or end of input")
		}
	}
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) backup()     { p.i-- }
func (p *parser) at(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.at(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q", s)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	where := "end of input"
	if t.kind != tokEOF {
		where = fmt.Sprintf("%q at offset %d", t.text, t.pos)
	}
	return fmt.Errorf("sqlparse: %s, found %s", fmt.Sprintf(format, args...), where)
}

// expectIdent consumes an identifier (keywords are not valid identifiers).
func (p *parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected %s", what)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected a statement keyword")
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "EXPLAIN":
		p.next()
		analyze := p.acceptKeyword("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Analyze: analyze, Query: sel}, nil
	case "ANALYZE":
		p.next()
		a := &Analyze{}
		if t := p.peek(); t.kind == tokIdent {
			p.i++
			a.Table = t.text
		}
		return a, nil
	case "BEGIN":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		return &Rollback{}, nil
	default:
		return nil, p.errorf("unsupported statement %s", t.text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if p.acceptKeyword("MATERIALIZED") {
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent("view name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateMaterializedView{Name: name, Query: sel}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		} else if p.acceptKeyword("FOREIGN") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.expectIdent("referenced table")
			if err != nil {
				return nil, err
			}
			refCols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.ForeignKeys = append(ct.ForeignKeys, ForeignKeyDef{
				Columns: cols, RefTable: ref, RefColumns: refCols,
			})
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
			if col.PrimaryKey {
				ct.PrimaryKey = append(ct.PrimaryKey, col.Name)
			}
		}
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return ct, nil
	}
}

func (p *parser) parseParenIdentList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent("column name")
	if err != nil {
		return ColumnDef{}, err
	}
	kind, err := p.parseTypeName()
	if err != nil {
		return ColumnDef{}, err
	}
	col := ColumnDef{Name: name, Type: kind}
	for {
		switch {
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			col.NotNull = true
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		default:
			return col, nil
		}
	}
}

func (p *parser) parseTypeName() (types.Kind, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected a type name")
	}
	p.i++
	var kind types.Kind
	switch t.text {
	case "INTEGER", "INT", "BIGINT":
		kind = types.KindInt
	case "DOUBLE", "FLOAT", "REAL":
		kind = types.KindFloat
	case "TEXT":
		kind = types.KindText
	case "VARCHAR", "CHAR":
		kind = types.KindText
		// optional length, e.g. VARCHAR(32): parsed and ignored.
		if p.acceptSymbol("(") {
			if p.peek().kind != tokNumber {
				return 0, p.errorf("expected length")
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
	case "BOOLEAN", "BOOL":
		kind = types.KindBool
	default:
		return 0, p.errorf("unsupported type %s", t.text)
	}
	return kind, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	materialized := p.acceptKeyword("MATERIALIZED")
	if materialized {
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
	} else if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if materialized {
		return &DropMaterializedView{Name: name, IfExists: ifExists}, nil
	}
	return &DropTable{Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		cols, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			return ins, nil
		}
	}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("RESULTDB") {
		sel.ResultDB = true
		if p.acceptKeyword("PRESERVING") {
			sel.Preserving = true
		}
	}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		sel.Limit = &n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	t := p.peek()
	if t.kind == tokIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokSymbol && p.toks[p.i+2].text == "*" {
		p.i += 3
		return SelectItem{Star: true, Table: t.text}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent("alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent("alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	ref, err := p.parseTableRef()
	if err != nil {
		return FromItem{}, err
	}
	item := FromItem{Ref: ref}
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return FromItem{}, err
			}
			jt = JoinLeftOuter
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return FromItem{}, err
			}
			jt = JoinInner
		case p.acceptKeyword("JOIN"):
			jt = JoinInner
		default:
			return item, nil
		}
		jref, err := p.parseTableRef()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return FromItem{}, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return FromItem{}, err
		}
		item.Joins = append(item.Joins, Join{Type: jt, Ref: jref, On: on})
	}
}

// Expression grammar, loosest to tightest:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | predicate
//	pred   := additive (compare additive | IN ... | BETWEEN ... | LIKE ... | IS [NOT] NULL)?
//	additive := mul (('+'|'-') mul)*
//	mul    := unary (('*'|'/') unary)*
//	unary  := '-' unary | primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

var compareOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := compareOps[t.text]; ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	not := false
	if p.at("NOT") {
		// Lookahead for NOT IN / NOT BETWEEN / NOT LIKE.
		nxt := p.toks[p.i+1]
		if nxt.kind == tokKeyword && (nxt.text == "IN" || nxt.text == "BETWEEN" || nxt.text == "LIKE") {
			p.next()
			not = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		return p.parseInTail(l, not)
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{E: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errorf("expected LIKE pattern string")
		}
		p.next()
		return &Like{E: l, Pattern: t.text, Not: not}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Not: isNot}, nil
	}
	if not {
		return nil, p.errorf("dangling NOT")
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr, not bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.at("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InSubquery{E: l, Query: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InList{E: l, List: list, Not: not}, nil
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals immediately.
		if lit, ok := e.(*Literal); ok {
			switch lit.Value.Kind() {
			case types.KindInt:
				return &Literal{Value: types.NewInt(-lit.Value.Int())}, nil
			case types.KindFloat:
				return &Literal{Value: types.NewFloat(-lit.Value.Float())}, nil
			}
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case tokString:
		p.next()
		return &Literal{Value: types.NewText(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: types.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: types.NewBool(false)}, nil
		}
		return nil, p.errorf("unexpected keyword in expression")
	case tokIdent:
		p.next()
		// Function call?
		if p.acceptSymbol("(") {
			return p.parseFuncTail(t.text)
		}
		// table.column?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("expected an expression")
}

func (p *parser) parseFuncTail(name string) (Expr, error) {
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.acceptSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptSymbol(")") {
		return f, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
}

package sqlparse

import (
	"strings"
	"testing"

	"resultdb/internal/types"
)

func parseOne(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := parseOne(t, `CREATE TABLE t (
		id INTEGER PRIMARY KEY,
		name VARCHAR(32) NOT NULL,
		score DOUBLE,
		ok BOOLEAN,
		FOREIGN KEY (id) REFERENCES other (oid)
	)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "t" || len(ct.Columns) != 4 {
		t.Fatalf("table %s with %d columns", ct.Name, len(ct.Columns))
	}
	if ct.Columns[0].Type != types.KindInt || !ct.Columns[0].PrimaryKey {
		t.Errorf("col0 = %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type != types.KindText || !ct.Columns[1].NotNull {
		t.Errorf("col1 = %+v", ct.Columns[1])
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", ct.PrimaryKey)
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0].RefTable != "other" {
		t.Errorf("fk = %+v", ct.ForeignKeys)
	}
}

func TestParseTablePrimaryKeyClause(t *testing.T) {
	st := parseOne(t, "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
	ct := st.(*CreateTable)
	if strings.Join(ct.PrimaryKey, ",") != "a,b" {
		t.Errorf("pk = %v", ct.PrimaryKey)
	}
}

func TestParseInsert(t *testing.T) {
	st := parseOne(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL)")
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	lit := ins.Rows[1][0].(*Literal)
	if lit.Value.Int() != -2 {
		t.Errorf("negative literal folded to %v", lit.Value)
	}
	if !ins.Rows[1][1].(*Literal).Value.IsNull() {
		t.Error("NULL literal")
	}
}

func TestParseSelectBasics(t *testing.T) {
	sel, err := ParseSelect(`SELECT DISTINCT c.name AS cname, p.*
		FROM customers AS c, products p
		WHERE c.id = 1 AND (p.price < 10 OR p.price > 100)
		ORDER BY c.name DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Distinct || sel.ResultDB {
		t.Error("flags wrong")
	}
	if len(sel.Items) != 2 || sel.Items[0].Alias != "cname" || !sel.Items[1].Star || sel.Items[1].Table != "p" {
		t.Errorf("items = %+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[1].Ref.Alias != "p" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || *sel.Limit != 5 {
		t.Errorf("limit = %v", sel.Limit)
	}
}

func TestParseResultDBKeyword(t *testing.T) {
	sel, err := ParseSelect("SELECT RESULTDB a.x FROM a WHERE a.x > 0")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.ResultDB {
		t.Error("RESULTDB flag not set")
	}
	// RESULTDB DISTINCT both allowed, in that order.
	sel2, err := ParseSelect("SELECT RESULTDB DISTINCT a.x FROM a")
	if err != nil {
		t.Fatal(err)
	}
	if !sel2.ResultDB || !sel2.Distinct {
		t.Error("RESULTDB DISTINCT flags")
	}
}

func TestParseJoins(t *testing.T) {
	sel, err := ParseSelect(`SELECT p.id FROM products AS p
		LEFT OUTER JOIN electronics AS e ON p.id = e.pid
		JOIN clothing AS c ON p.id = c.pid AND c.size = 'M'
		INNER JOIN x ON x.id = p.id`)
	if err != nil {
		t.Fatal(err)
	}
	joins := sel.From[0].Joins
	if len(joins) != 3 {
		t.Fatalf("joins = %d", len(joins))
	}
	if joins[0].Type != JoinLeftOuter || joins[1].Type != JoinInner || joins[2].Type != JoinInner {
		t.Errorf("join types = %v %v %v", joins[0].Type, joins[1].Type, joins[2].Type)
	}
}

func TestParsePredicates(t *testing.T) {
	sel, err := ParseSelect(`SELECT a.x FROM a WHERE
		a.x BETWEEN 1 AND 10
		AND a.y NOT IN (1, 2, 3)
		AND a.z LIKE '%foo%'
		AND a.w IS NOT NULL
		AND a.v NOT LIKE 'bar%'
		AND a.u IN (SELECT b.id FROM b WHERE b.k = 'x')
		AND NOT a.t = 5`)
	if err != nil {
		t.Fatal(err)
	}
	conj := Conjuncts(sel.Where)
	if len(conj) != 7 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if b, ok := conj[0].(*Between); !ok || b.Not {
		t.Errorf("conj0 = %#v", conj[0])
	}
	if in, ok := conj[1].(*InList); !ok || !in.Not || len(in.List) != 3 {
		t.Errorf("conj1 = %#v", conj[1])
	}
	if l, ok := conj[2].(*Like); !ok || l.Pattern != "%foo%" {
		t.Errorf("conj2 = %#v", conj[2])
	}
	if n, ok := conj[3].(*IsNull); !ok || !n.Not {
		t.Errorf("conj3 = %#v", conj[3])
	}
	if l, ok := conj[4].(*Like); !ok || !l.Not {
		t.Errorf("conj4 = %#v", conj[4])
	}
	if s, ok := conj[5].(*InSubquery); !ok || s.Not || s.Query == nil {
		t.Errorf("conj5 = %#v", conj[5])
	}
	if u, ok := conj[6].(*Unary); !ok || u.Op != "NOT" {
		t.Errorf("conj6 = %#v", conj[6])
	}
}

func TestParsePrecedence(t *testing.T) {
	sel, err := ParseSelect("SELECT a.x FROM a WHERE a.x = 1 OR a.y = 2 AND a.z = 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %#v", sel.Where)
	}
	if and, ok := or.R.(*Binary); !ok || and.Op != OpAnd {
		t.Errorf("AND must bind tighter than OR: %#v", or.R)
	}
	// Arithmetic precedence.
	sel2, _ := ParseSelect("SELECT a.x FROM a WHERE a.x = 1 + 2 * 3")
	cmp := sel2.Where.(*Binary)
	add := cmp.R.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("rhs = %#v", cmp.R)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != OpMul {
		t.Error("* must bind tighter than +")
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel, err := ParseSelect("SELECT a.x FROM a WHERE a.s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	lit := sel.Where.(*Binary).R.(*Literal)
	if lit.Value.Text() != "it's" {
		t.Errorf("escaped string = %q", lit.Value.Text())
	}
}

func TestParseComments(t *testing.T) {
	sel, err := ParseSelect(`SELECT a.x -- trailing comment
		FROM a /* block
		comment */ WHERE a.x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.From) != 1 {
		t.Error("comments broke parsing")
	}
}

func TestParseScriptAndTransaction(t *testing.T) {
	stmts, err := ParseScript(`
		BEGIN TRANSACTION;
		SELECT a.x FROM a;
		SELECT b.y FROM b;
		COMMIT;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if _, ok := stmts[0].(*Begin); !ok {
		t.Errorf("stmt0 = %T", stmts[0])
	}
	if _, ok := stmts[3].(*Commit); !ok {
		t.Errorf("stmt3 = %T", stmts[3])
	}
}

func TestParseAnalyze(t *testing.T) {
	if a := parseOne(t, "ANALYZE").(*Analyze); a.Table != "" {
		t.Errorf("bare ANALYZE table = %q", a.Table)
	}
	a := parseOne(t, "analyze movies").(*Analyze)
	if a.Table != "movies" {
		t.Errorf("table = %q", a.Table)
	}
	if got := a.SQL(); got != "ANALYZE movies" {
		t.Errorf("SQL() = %q", got)
	}
	if _, err := Parse("ANALYZE t extra"); err == nil {
		t.Error("trailing tokens accepted")
	}
}

func TestParseMatViewAndDrops(t *testing.T) {
	st := parseOne(t, "CREATE MATERIALIZED VIEW mv AS SELECT a.x FROM a")
	mv := st.(*CreateMaterializedView)
	if mv.Name != "mv" || mv.Query == nil {
		t.Fatalf("mv = %+v", mv)
	}
	if d := parseOne(t, "DROP MATERIALIZED VIEW IF EXISTS mv").(*DropMaterializedView); !d.IfExists {
		t.Error("IF EXISTS lost")
	}
	if d := parseOne(t, "DROP TABLE t").(*DropTable); d.IfExists {
		t.Error("IfExists wrongly set")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a.x FROM",
		"SELECT a.x FROM t WHERE",
		"CREATE TABLE t (x unknowntype)",
		"INSERT INTO t VALUES 1",
		"SELECT a.x FROM t WHERE a.x = 'unterminated",
		"SELECT a.x FROM t WHERE a.x ~ 1",
		"SELECT a.x FROM t LIMIT x",
		"SELECT a.x FROM t WHERE a.x BETWEEN 1",
		"SELECT a.x FROM t WHERE a.x NOT 5",
		"SELECT a.x FROM t WHERE 1.2.3 = 1",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

// TestRenderRoundTrip: rendering a parsed statement and re-parsing it yields
// an identical rendering (SQL() is a fixpoint after one round).
func TestRenderRoundTrip(t *testing.T) {
	sqls := []string{
		"SELECT DISTINCT c.name AS cname, p.category FROM customers AS c, products AS p WHERE c.id = p.id AND p.price BETWEEN 1 AND 10 ORDER BY c.name DESC LIMIT 3",
		"SELECT RESULTDB c.name FROM customers AS c WHERE c.state = 'NY' AND c.id IN (SELECT o.cid FROM orders AS o)",
		"SELECT p.id FROM products AS p LEFT OUTER JOIN electronics AS e ON p.id = e.pid WHERE e.storage IS NOT NULL",
		"SELECT COUNT(*) FROM t AS t WHERE t.x NOT LIKE 'a%' OR (t.y = 1 AND t.z <> 2)",
		"INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, PRIMARY KEY (id), FOREIGN KEY (id) REFERENCES u (uid))",
		"CREATE MATERIALIZED VIEW mv AS SELECT t.x FROM t AS t WHERE t.x > -5",
		"DROP MATERIALIZED VIEW IF EXISTS mv",
		"SELECT t.x FROM t AS t WHERE t.b = TRUE AND t.c = FALSE AND t.f = 1.25",
	}
	for _, sql := range sqls {
		st1, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		r1 := st1.SQL()
		st2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", r1, err)
		}
		if r2 := st2.SQL(); r1 != r2 {
			t.Errorf("render not stable:\n1: %s\n2: %s", r1, r2)
		}
	}
}

func TestCloneExprIndependence(t *testing.T) {
	sel, _ := ParseSelect("SELECT a.x FROM a WHERE a.x = 1 AND a.y IN (2, 3) AND a.z LIKE 'p%'")
	clone := CloneExpr(sel.Where)
	WalkExpr(clone, func(e Expr) {
		if c, ok := e.(*ColumnRef); ok {
			c.Table = "renamed"
		}
	})
	// Original must be untouched.
	found := false
	WalkExpr(sel.Where, func(e Expr) {
		if c, ok := e.(*ColumnRef); ok && c.Table == "renamed" {
			found = true
		}
	})
	if found {
		t.Error("CloneExpr shares column refs with the original")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	sel, _ := ParseSelect("SELECT a.x FROM a WHERE a.x = 1 AND a.y = 2 AND a.z = 3")
	conj := Conjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	rebuilt := AndAll(conj)
	if rebuilt.SQL() != sel.Where.SQL() {
		t.Errorf("AndAll(Conjuncts(e)) = %s, want %s", rebuilt.SQL(), sel.Where.SQL())
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if got := Conjuncts(nil); got != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
}

func TestHasAggregate(t *testing.T) {
	sel, _ := ParseSelect("SELECT COUNT(*) FROM t")
	if !HasAggregate(sel.Items[0].Expr) {
		t.Error("COUNT(*) not detected")
	}
	sel2, _ := ParseSelect("SELECT t.x FROM t")
	if HasAggregate(sel2.Items[0].Expr) {
		t.Error("plain column detected as aggregate")
	}
}

package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexical unit with its source position (for error messages).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int    // byte offset in the input
}

// keywords recognized by the lexer. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "RESULTDB": true, "PRESERVING": true, "DISTINCT": true, "FROM": true,
	"WHERE": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "GROUP": true, "HAVING": true, "CREATE": true, "TABLE": true,
	"DROP": true, "MATERIALIZED": true, "VIEW": true, "IF": true,
	"EXISTS": true, "INSERT": true, "INTO": true, "VALUES": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"BEGIN": true, "TRANSACTION": true, "EXPLAIN": true, "ANALYZE": true, "COMMIT": true, "ROLLBACK": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "DOUBLE": true,
	"FLOAT": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"CHAR": true, "BOOLEAN": true, "BOOL": true,
}

// lexer tokenizes SQL text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (SQL statements are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.emit(tokKeyword, upper, start)
	} else {
		l.emit(tokIdent, word, start)
	}
}

func (l *lexer) lexNumber(start int) error {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return fmt.Errorf("sqlparse: malformed number %q at offset %d", text, start)
	}
	// Optional exponent, [eE][+-]?digits — the notation strconv's shortest
	// float formatting emits (e.g. 1e-05), so rendered literals re-lex. An
	// 'e' not followed by a well-formed exponent is left for the next token.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		j := l.pos + 1
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
			for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				j++
			}
			l.pos = j
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // '' escape
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokIdent, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated quoted identifier at offset %d", start)
}

func (l *lexer) lexSymbol(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		l.emit(tokSymbol, two, start)
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '.', '=', '<', '>', '+', '-', '*', '/':
		l.pos++
		l.emit(tokSymbol, string(c), start)
		return nil
	}
	return fmt.Errorf("sqlparse: unexpected character %q at offset %d", string(c), start)
}

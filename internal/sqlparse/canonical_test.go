package sqlparse

import (
	"strings"
	"testing"
)

func mustSelect(t *testing.T, sql string) *Select {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestCanonicalInsensitivity(t *testing.T) {
	// Groups of spellings that must share one fingerprint.
	groups := [][]string{
		{ // whitespace + identifier case + AS spelling
			"SELECT t.title FROM movies AS t WHERE t.year > 2000",
			"select   T.TITLE from MOVIES t\n where T.year>2000",
			"SELECT t.title FROM Movies AS T WHERE t.Year > 2000",
		},
		{ // literal formatting: float trailing zeros, string quoting
			"SELECT * FROM r WHERE r.x < 0.50 AND r.name = 'ann'",
			"SELECT * FROM r WHERE r.x < 0.5 AND r.name = 'ann'",
		},
		{ // redundant alias == table name
			"SELECT movies.title FROM movies",
			"SELECT Movies.Title FROM movies AS movies",
		},
		{ // RESULTDB forms canonicalize too
			"SELECT RESULTDB t.title, c.name FROM movies t, cast_info c WHERE t.id = c.movie_id",
			"select resultdb T.title , C.name from movies AS T , cast_info AS C where T.id=C.movie_id",
		},
	}
	for gi, g := range groups {
		want := Canonical(mustSelect(t, g[0]))
		for _, sql := range g[1:] {
			if got := Canonical(mustSelect(t, sql)); got != want {
				t.Errorf("group %d: fingerprints differ:\n%q -> %q\n%q -> %q",
					gi, g[0], want, sql, got)
			}
		}
	}
}

func TestCanonicalDistinguishesSemantics(t *testing.T) {
	// Pairs that must NOT collide.
	pairs := [][2]string{
		{"SELECT t.title FROM movies t", "SELECT t.title FROM shows t"},
		{"SELECT t.title FROM movies t", "SELECT DISTINCT t.title FROM movies t"},
		{"SELECT t.a FROM r t WHERE t.a = 1", "SELECT t.a FROM r t WHERE t.a = 2"},
		{"SELECT t.a FROM r t WHERE t.a = 1", "SELECT t.a FROM r t WHERE t.a = 1.0"},
		{"SELECT t.a FROM r t", "SELECT RESULTDB t.a FROM r t"},
		{"SELECT RESULTDB t.a FROM r t", "SELECT RESULTDB PRESERVING t.a FROM r t"},
		{"SELECT t.a AS x FROM r t", "SELECT t.a AS y FROM r t"},
		{"SELECT t.a FROM r t LIMIT 1", "SELECT t.a FROM r t LIMIT 2"},
	}
	for _, p := range pairs {
		a := Canonical(mustSelect(t, p[0]))
		b := Canonical(mustSelect(t, p[1]))
		if a == b {
			t.Errorf("distinct statements share fingerprint %q:\n  %s\n  %s", a, p[0], p[1])
		}
	}
}

func TestCanonicalDoesNotMutate(t *testing.T) {
	sel := mustSelect(t, "SELECT T.Title FROM Movies AS T WHERE T.Year IN (SELECT Y.v FROM Years Y)")
	before := sel.SQL()
	_ = Canonical(sel)
	if after := sel.SQL(); after != before {
		t.Fatalf("Canonical mutated the AST:\nbefore: %s\nafter:  %s", before, after)
	}
}

func TestCanonicalLowercasesStringsOnlyOutsideLiterals(t *testing.T) {
	c := Canonical(mustSelect(t, "SELECT t.a FROM r t WHERE t.name = 'MiXeD' AND t.b LIKE 'Pat%'"))
	if !strings.Contains(c, "'MiXeD'") || !strings.Contains(c, "'Pat%'") {
		t.Fatalf("literal case must be preserved, got %q", c)
	}
}

func TestTables(t *testing.T) {
	sel := mustSelect(t, `
		SELECT t.title FROM movies t
		JOIN cast_info c ON t.id = c.movie_id
		WHERE t.kind IN (SELECT k.id FROM kinds k WHERE k.name IN (SELECT s.n FROM synonyms s))
		  AND c.role IN (1, 2)`)
	got := Tables(sel)
	want := []string{"movies", "cast_info", "kinds", "synonyms"}
	if len(got) != len(want) {
		t.Fatalf("Tables = %v, want %v", got, want)
	}
	for i := range want {
		if !strings.EqualFold(got[i], want[i]) {
			t.Fatalf("Tables = %v, want %v", got, want)
		}
	}
	// Duplicates (self-joins, repeated references) are reported once.
	sel2 := mustSelect(t, "SELECT a.x FROM r a, r b WHERE a.x = b.y")
	if got := Tables(sel2); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Tables(self-join) = %v, want [r]", got)
	}
}

// Package sqlparse contains the SQL dialect of the reproduction: a lexer, an
// AST, a recursive-descent parser, and an SQL renderer (used by the rewrite
// methods, which are SQL-to-SQL transformations).
//
// The dialect covers what the paper needs: SPJ SELECTs with the RESULTDB
// keyword, DISTINCT, inner/comma/LEFT OUTER joins, WHERE with AND/OR/NOT,
// comparisons, IN (list or subquery), BETWEEN, LIKE, IS NULL, COUNT(*),
// ORDER BY/LIMIT, DDL (CREATE TABLE, DROP TABLE, CREATE/DROP MATERIALIZED
// VIEW), INSERT, and BEGIN/COMMIT/ROLLBACK.
package sqlparse

import (
	"strings"

	"resultdb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// SQL renders the statement back to parseable SQL text.
	SQL() string
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    types.Kind
	NotNull bool
	// PrimaryKey marks an inline PRIMARY KEY on the column.
	PrimaryKey bool
}

// ForeignKeyDef is a table-level FOREIGN KEY clause.
type ForeignKeyDef struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// CreateTable is CREATE TABLE name (...).
type CreateTable struct {
	Name        string
	Columns     []ColumnDef
	PrimaryKey  []string
	ForeignKeys []ForeignKeyDef
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateMaterializedView is CREATE MATERIALIZED VIEW name AS select.
type CreateMaterializedView struct {
	Name  string
	Query *Select
}

// DropMaterializedView is DROP MATERIALIZED VIEW [IF EXISTS] name.
type DropMaterializedView struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// Begin, Commit, and Rollback delimit transactions.
type (
	Begin    struct{}
	Commit   struct{}
	Rollback struct{}
)

// Explain is EXPLAIN [ANALYZE] <select>: report the execution plan (with
// actual cardinalities; the engine is main-memory, so EXPLAIN executes).
// ANALYZE renders the full operator tree with per-operator timings, parallel
// degrees, and transfer bytes instead of the compact plan.
type Explain struct {
	Analyze bool
	Query   *Select
}

// Analyze is ANALYZE [table]: (re)build optimizer statistics — per-column
// min/max, null fraction, distinct-count sketch, and equi-depth histogram —
// for one table, or for every table when no name is given. Statistics feed
// the cost-based reduction planner (Options.CostBased / RESULTDB_STATS).
type Analyze struct {
	// Table is the table to analyze; empty means all tables.
	Table string
}

// JoinType distinguishes inner and left outer joins.
type JoinType uint8

const (
	// JoinInner is INNER JOIN (or a comma join with a WHERE predicate).
	JoinInner JoinType = iota
	// JoinLeftOuter is LEFT [OUTER] JOIN.
	JoinLeftOuter
)

// TableRef names a relation in FROM, with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if set, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is one JOIN ... ON ... clause chained onto a FROM item.
type Join struct {
	Type JoinType
	Ref  TableRef
	On   Expr
}

// FromItem is a base table reference followed by chained joins.
type FromItem struct {
	Ref   TableRef
	Joins []Join
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	// Star is SELECT * (Table empty) or SELECT t.* (Table set).
	Star  bool
	Table string
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a (sub)query.
type Select struct {
	Distinct bool
	// ResultDB is the paper's SELECT RESULTDB extension: return the
	// subdatabase instead of the single-table result.
	ResultDB bool
	// Preserving is this repo's spelling of Definition 2.3: SELECT
	// RESULTDB PRESERVING additionally returns the join attributes
	// (relationship-preserving subdatabase), enabling the client-side
	// post-join.
	Preserving bool
	Items      []SelectItem
	From       []FromItem
	Where      Expr
	// GroupBy lists grouping expressions (column references); aggregate
	// select items are evaluated per group. An extension beyond the
	// paper's SPJ scope (its future-work item 2, data transformations).
	GroupBy []Expr
	// Having filters groups after aggregation.
	Having  Expr
	OrderBy []OrderItem
	Limit   *int64
	// Src is the raw statement text this Select was parsed from, when the
	// parse entry point had it (ParseSelect, Database.Exec). It is not part
	// of the statement's semantics and is never rendered; the database uses
	// it as a cheap stable cache key to avoid re-rendering SQL() on every
	// execution of a re-parsed statement. Empty when the Select was built
	// programmatically or arrived via a multi-statement script.
	Src string
}

func (*CreateTable) stmt()            {}
func (*DropTable) stmt()              {}
func (*CreateMaterializedView) stmt() {}
func (*DropMaterializedView) stmt()   {}
func (*Insert) stmt()                 {}
func (*Begin) stmt()                  {}
func (*Commit) stmt()                 {}
func (*Rollback) stmt()               {}
func (*Select) stmt()                 {}
func (*Explain) stmt()                {}
func (*Analyze) stmt()                {}

// Expr is any scalar expression.
type Expr interface {
	expr()
	// SQL renders the expression back to parseable SQL text.
	SQL() string
}

// ColumnRef references table.column or a bare column.
type ColumnRef struct {
	Table  string
	Column string
}

// Literal wraps a constant value.
type Literal struct {
	Value types.Value
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators, grouped by family.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "?"
	}
}

// Binary is L op R.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Unary is NOT e or -e.
type Unary struct {
	Op string // "NOT" or "-"
	E  Expr
}

// Between is e [NOT] BETWEEN lo AND hi.
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

// InList is e [NOT] IN (v1, v2, ...).
type InList struct {
	E    Expr
	List []Expr
	Not  bool
}

// InSubquery is e [NOT] IN (SELECT ...).
type InSubquery struct {
	E     Expr
	Query *Select
	Not   bool
}

// Like is e [NOT] LIKE 'pattern' (with % and _ wildcards).
type Like struct {
	E       Expr
	Pattern string
	Not     bool
}

// IsNull is e IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Not bool
}

// FuncCall is an aggregate or scalar function call; Star marks COUNT(*).
type FuncCall struct {
	Name string
	Star bool
	Args []Expr
}

func (*ColumnRef) expr()  {}
func (*Literal) expr()    {}
func (*Binary) expr()     {}
func (*Unary) expr()      {}
func (*Between) expr()    {}
func (*InList) expr()     {}
func (*InSubquery) expr() {}
func (*Like) expr()       {}
func (*IsNull) expr()     {}
func (*FuncCall) expr()   {}

// Conjuncts flattens a tree of ANDs into its list of conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll rebuilds a conjunction from a list of conjuncts (nil if empty).
func AndAll(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &Binary{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// ColumnRefs collects every column reference in e, in evaluation order.
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
	})
	return out
}

// WalkExpr invokes fn on e and every sub-expression. Subquery bodies are not
// descended into (their column references belong to a different scope).
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Unary:
		WalkExpr(x.E, fn)
	case *Between:
		WalkExpr(x.E, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *InList:
		WalkExpr(x.E, fn)
		for _, v := range x.List {
			WalkExpr(v, fn)
		}
	case *InSubquery:
		WalkExpr(x.E, fn)
	case *Like:
		WalkExpr(x.E, fn)
	case *IsNull:
		WalkExpr(x.E, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// CloneExpr deep-copies an expression tree. Subquery bodies are shared (the
// rewriter never mutates them); every other node is fresh, so callers may
// rewrite column references in place.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		c := *x
		return &c
	case *Literal:
		c := *x
		return &c
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Unary:
		return &Unary{Op: x.Op, E: CloneExpr(x.E)}
	case *Between:
		return &Between{E: CloneExpr(x.E), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, v := range x.List {
			list[i] = CloneExpr(v)
		}
		return &InList{E: CloneExpr(x.E), List: list, Not: x.Not}
	case *InSubquery:
		return &InSubquery{E: CloneExpr(x.E), Query: x.Query, Not: x.Not}
	case *Like:
		return &Like{E: CloneExpr(x.E), Pattern: x.Pattern, Not: x.Not}
	case *IsNull:
		return &IsNull{E: CloneExpr(x.E), Not: x.Not}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: x.Name, Star: x.Star, Args: args}
	default:
		return e
	}
}

// HasAggregate reports whether e contains an aggregate function call.
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if f, ok := x.(*FuncCall); ok {
			switch strings.ToUpper(f.Name) {
			case "COUNT", "SUM", "MIN", "MAX", "AVG":
				found = true
			}
		}
	})
	return found
}

package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"resultdb/internal/types"
)

// quoteString renders a string literal with ” escaping.
func quoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// identNeedsQuoting reports whether s would not survive a render/parse round
// trip as a bare identifier. The byte-wise scan mirrors lexWord exactly
// (the lexer classifies bytes, not runes), and keywords must be quoted or
// they change token kind on re-parse.
func identNeedsQuoting(s string) bool {
	if s == "" || !isIdentStart(rune(s[0])) {
		return true
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(rune(s[i])) {
			return true
		}
	}
	return keywords[strings.ToUpper(s)]
}

// quoteIdent renders an identifier, double-quoting it (with "" escaping)
// only when a bare rendering would not re-lex to the same name.
func quoteIdent(s string) string {
	if identNeedsQuoting(s) {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// renderValue renders a literal value as SQL.
func renderValue(v types.Value) string {
	switch v.Kind() {
	case types.KindText:
		return quoteString(v.Text())
	case types.KindBool:
		if v.Bool() {
			return "TRUE"
		}
		return "FALSE"
	case types.KindFloat:
		// Shortest round-trippable form, but keep a mark of floatness
		// (".0") when the shortest form looks like an integer, so the
		// literal re-parses to the same value AND the same kind.
		s := strconv.FormatFloat(v.Float(), 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

// SQL renders the column reference.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return quoteIdent(c.Table) + "." + quoteIdent(c.Column)
	}
	return quoteIdent(c.Column)
}

// SQL renders the literal.
func (l *Literal) SQL() string { return renderValue(l.Value) }

// SQL renders the binary expression with defensive parentheses around
// AND/OR operands.
func (b *Binary) SQL() string {
	l, r := b.L.SQL(), b.R.SQL()
	switch b.Op {
	case OpAnd, OpOr:
		if lb, ok := b.L.(*Binary); ok && lb.Op != b.Op && (lb.Op == OpAnd || lb.Op == OpOr) {
			l = "(" + l + ")"
		}
		if rb, ok := b.R.(*Binary); ok && rb.Op != b.Op && (rb.Op == OpAnd || rb.Op == OpOr) {
			r = "(" + r + ")"
		}
	}
	return l + " " + b.Op.String() + " " + r
}

// SQL renders the unary expression. Both forms parenthesize the operand:
// NOT for precedence, and minus because "-" followed by a negative-literal
// rendering would otherwise fuse into a "--" comment marker.
func (u *Unary) SQL() string {
	if u.Op == "NOT" {
		return "NOT (" + u.E.SQL() + ")"
	}
	return u.Op + "(" + u.E.SQL() + ")"
}

// SQL renders the BETWEEN predicate.
func (b *Between) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sBETWEEN %s AND %s", b.E.SQL(), not, b.Lo.SQL(), b.Hi.SQL())
}

// SQL renders the IN-list predicate.
func (in *InList) SQL() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.SQL()
	}
	not := ""
	if in.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (%s)", in.E.SQL(), not, strings.Join(parts, ", "))
}

// SQL renders the IN-subquery predicate.
func (in *InSubquery) SQL() string {
	not := ""
	if in.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (%s)", in.E.SQL(), not, in.Query.SQL())
}

// SQL renders the LIKE predicate.
func (l *Like) SQL() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sLIKE %s", l.E.SQL(), not, quoteString(l.Pattern))
}

// SQL renders the IS NULL predicate.
func (i *IsNull) SQL() string {
	if i.Not {
		return i.E.SQL() + " IS NOT NULL"
	}
	return i.E.SQL() + " IS NULL"
}

// SQL renders the function call.
func (f *FuncCall) SQL() string {
	if f.Star {
		return quoteIdent(f.Name) + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	return quoteIdent(f.Name) + "(" + strings.Join(parts, ", ") + ")"
}

func (t TableRef) sql() string {
	if t.Alias != "" && t.Alias != t.Table {
		return quoteIdent(t.Table) + " AS " + quoteIdent(t.Alias)
	}
	return quoteIdent(t.Table)
}

// SQL renders the SELECT statement.
func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.ResultDB {
		b.WriteString("RESULTDB ")
		if s.Preserving {
			b.WriteString("PRESERVING ")
		}
	}
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.Table != "":
			b.WriteString(quoteIdent(item.Table) + ".*")
		case item.Star:
			b.WriteString("*")
		default:
			b.WriteString(item.Expr.SQL())
			if item.Alias != "" {
				b.WriteString(" AS " + quoteIdent(item.Alias))
			}
		}
	}
	b.WriteString(" FROM ")
	for i, item := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.Ref.sql())
		for _, j := range item.Joins {
			switch j.Type {
			case JoinLeftOuter:
				b.WriteString(" LEFT OUTER JOIN ")
			default:
				b.WriteString(" JOIN ")
			}
			b.WriteString(j.Ref.sql())
			b.WriteString(" ON ")
			b.WriteString(j.On.SQL())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	return b.String()
}

// SQL renders CREATE TABLE.
func (c *CreateTable) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", quoteIdent(c.Name))
	inlinePK := map[string]bool{}
	items := 0
	sep := func() {
		if items > 0 {
			b.WriteString(", ")
		}
		items++
	}
	for _, col := range c.Columns {
		sep()
		fmt.Fprintf(&b, "%s %s", quoteIdent(col.Name), col.Type.String())
		if col.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
			inlinePK[col.Name] = true
		} else if col.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	var pkOut []string
	for _, k := range c.PrimaryKey {
		if !inlinePK[k] {
			pkOut = append(pkOut, quoteIdent(k))
		}
	}
	if len(pkOut) > 0 {
		sep()
		fmt.Fprintf(&b, "PRIMARY KEY (%s)", strings.Join(pkOut, ", "))
	}
	for _, fk := range c.ForeignKeys {
		sep()
		fmt.Fprintf(&b, "FOREIGN KEY (%s) REFERENCES %s (%s)",
			joinIdents(fk.Columns), quoteIdent(fk.RefTable), joinIdents(fk.RefColumns))
	}
	b.WriteString(")")
	return b.String()
}

// joinIdents renders a comma-separated identifier list, quoting as needed.
func joinIdents(names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = quoteIdent(n)
	}
	return strings.Join(out, ", ")
}

// SQL renders DROP TABLE.
func (d *DropTable) SQL() string {
	if d.IfExists {
		return "DROP TABLE IF EXISTS " + quoteIdent(d.Name)
	}
	return "DROP TABLE " + quoteIdent(d.Name)
}

// SQL renders CREATE MATERIALIZED VIEW.
func (c *CreateMaterializedView) SQL() string {
	return "CREATE MATERIALIZED VIEW " + quoteIdent(c.Name) + " AS " + c.Query.SQL()
}

// SQL renders DROP MATERIALIZED VIEW.
func (d *DropMaterializedView) SQL() string {
	if d.IfExists {
		return "DROP MATERIALIZED VIEW IF EXISTS " + quoteIdent(d.Name)
	}
	return "DROP MATERIALIZED VIEW " + quoteIdent(d.Name)
}

// SQL renders INSERT.
func (i *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + quoteIdent(i.Table))
	if len(i.Columns) > 0 {
		b.WriteString(" (" + joinIdents(i.Columns) + ")")
	}
	b.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for c, e := range row {
			if c > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		b.WriteString(")")
	}
	return b.String()
}

// SQL renders EXPLAIN [ANALYZE].
func (e *Explain) SQL() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Query.SQL()
	}
	return "EXPLAIN " + e.Query.SQL()
}

// SQL renders ANALYZE [table].
func (a *Analyze) SQL() string {
	if a.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + quoteIdent(a.Table)
}

// SQL renders BEGIN.
func (*Begin) SQL() string { return "BEGIN TRANSACTION" }

// SQL renders COMMIT.
func (*Commit) SQL() string { return "COMMIT" }

// SQL renders ROLLBACK.
func (*Rollback) SQL() string { return "ROLLBACK" }

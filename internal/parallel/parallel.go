// Package parallel is the morsel-style execution layer of the engine: a
// small, stdlib-only worker pool plus chunked For/Map primitives that the
// join, semi-join, filter, and Decompose operators use to spread row ranges
// across cores.
//
// Design rules, in order of priority:
//
//  1. Determinism. Inputs are split into contiguous chunks and per-chunk
//     outputs are merged in chunk order, so a parallel operator produces a
//     byte-identical result to its serial form. Every correctness test in
//     the repository therefore doubles as a determinism check.
//  2. No goroutine tax on small inputs. Work below Threshold rows runs
//     serially in the calling goroutine; Chunks reports the split decision
//     so operators can pick serial data structures up front.
//  3. No deadlocks under nesting. Tasks are handed to pool workers with a
//     non-blocking send; whatever the pool cannot take immediately runs
//     inline in the caller. A worker that itself fans out (for example
//     Decompose → Distinct) can never wait on a task that no one runs.
//
// The pool is shared process-wide and sized from runtime.GOMAXPROCS. The
// effective degree of parallelism for a call resolves as: explicit positive
// degree > RESULTDB_PARALLELISM environment override > GOMAXPROCS; degree 1
// forces the serial path.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Threshold is the minimum number of rows per chunk: inputs shorter than
// 2*Threshold run serially, and a parallel split never creates chunks
// smaller than Threshold rows. Chosen so per-chunk goroutine handoff cost
// (~1µs) stays well under 1% of per-chunk work for typical row operations.
const Threshold = 512

// EnvVar is the environment variable overriding the default degree of
// parallelism (0 or unset means runtime.GOMAXPROCS).
const EnvVar = "RESULTDB_PARALLELISM"

// EnvDegree returns the RESULTDB_PARALLELISM override, or 0 when unset or
// unparsable. It is re-read on every call so tests can use t.Setenv.
func EnvDegree() int {
	s := os.Getenv(EnvVar)
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// Degree resolves a requested degree of parallelism: a positive request wins,
// then the RESULTDB_PARALLELISM environment override, then GOMAXPROCS.
// The result is always >= 1.
func Degree(requested int) int {
	if requested > 0 {
		return requested
	}
	if e := EnvDegree(); e > 0 {
		return e
	}
	return runtime.GOMAXPROCS(0)
}

// Chunks reports how many chunks For/ForChunks/Map would use for n items at
// the given requested degree: 1 when the input is below the serial-fallback
// threshold or the degree resolves to 1, otherwise at most Degree(degree)
// chunks of at least Threshold items each.
func Chunks(n, degree int) int {
	d := Degree(degree)
	if d <= 1 || n < 2*Threshold {
		return 1
	}
	nc := n / Threshold
	if nc > d {
		nc = d
	}
	if nc < 1 {
		nc = 1
	}
	return nc
}

// pool is the shared worker pool. Workers block on an unbuffered channel, so
// a non-blocking send succeeds exactly when a worker is idle; everything else
// runs inline in the submitting goroutine.
var pool struct {
	once  sync.Once
	tasks chan func()
}

func startPool() {
	pool.tasks = make(chan func())
	n := runtime.GOMAXPROCS(0)
	for i := 0; i < n; i++ {
		go func() {
			for task := range pool.tasks {
				task()
			}
		}()
	}
}

// trySubmit hands task to an idle pool worker, reporting whether one took it.
func trySubmit(task func()) bool {
	pool.once.Do(startPool)
	select {
	case pool.tasks <- task:
		return true
	default:
		return false
	}
}

// bounds returns the half-open range of chunk c when n items are split into
// nc contiguous chunks.
func bounds(n, nc, c int) (lo, hi int) {
	return c * n / nc, (c + 1) * n / nc
}

// runChunks executes run(0..nc-1) across the pool, with chunk 0 always in
// the calling goroutine. Panics from any chunk propagate to the caller;
// when several chunks panic, the lowest-numbered one wins (deterministic).
func runChunks(nc int, run func(chunk int)) {
	if nc <= 1 {
		run(0)
		return
	}
	panics := make([]any, nc)
	exec := func(c int) {
		defer func() {
			if p := recover(); p != nil {
				panics[c] = p
			}
		}()
		run(c)
	}
	var wg sync.WaitGroup
	for c := 1; c < nc; c++ {
		c := c
		wg.Add(1)
		task := func() {
			defer wg.Done()
			exec(c)
		}
		if !trySubmit(task) {
			task() // pool saturated: run inline, never block
		}
	}
	exec(0)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// For runs body over contiguous sub-ranges of [0, n) in parallel. body must
// only touch state owned by its range (e.g. disjoint slice elements). Serial
// below the threshold; see Chunks.
func For(n, degree int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nc := Chunks(n, degree)
	if nc <= 1 {
		body(0, n)
		return
	}
	runChunks(nc, func(c int) {
		lo, hi := bounds(n, nc, c)
		body(lo, hi)
	})
}

// ForChunks is For with the chunk index exposed, for operators that keep
// per-chunk local state (e.g. partitioned hash-join builds). The chunk count
// equals Chunks(n, degree); chunk indices are dense in [0, Chunks).
func ForChunks(n, degree int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	nc := Chunks(n, degree)
	if nc <= 1 {
		body(0, 0, n)
		return
	}
	runChunks(nc, func(c int) {
		lo, hi := bounds(n, nc, c)
		body(c, lo, hi)
	})
}

// Each runs body(0..k-1) in parallel with no serial-fallback threshold: the
// items are assumed to be coarse independent tasks (one relation each, say),
// not rows. Degree 1 runs serially in order.
func Each(k, degree int, body func(i int)) {
	if k <= 0 {
		return
	}
	d := Degree(degree)
	nc := k
	if nc > d {
		nc = d
	}
	if d <= 1 || nc <= 1 {
		for i := 0; i < k; i++ {
			body(i)
		}
		return
	}
	runChunks(nc, func(c int) {
		lo, hi := bounds(k, nc, c)
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Map runs body over contiguous sub-ranges of [0, n), each chunk returning
// its own output slice; the chunks are concatenated in input order, so the
// result is identical to body(0, n). The per-chunk buffers are what makes
// variable-output operators (probes, filters) deterministic without locks.
func Map[T any](n, degree int, body func(lo, hi int) []T) []T {
	if n <= 0 {
		return nil
	}
	nc := Chunks(n, degree)
	if nc <= 1 {
		return body(0, n)
	}
	parts := make([][]T, nc)
	runChunks(nc, func(c int) {
		lo, hi := bounds(n, nc, c)
		parts[c] = body(lo, hi)
	})
	return mergeParts(parts)
}

// MapErr is Map for fallible bodies. On failure it returns the error of the
// lowest-numbered failing chunk — the chunk covering the earliest rows — so
// the reported error matches what serial execution would have hit first.
func MapErr[T any](n, degree int, body func(lo, hi int) ([]T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	nc := Chunks(n, degree)
	if nc <= 1 {
		return body(0, n)
	}
	parts := make([][]T, nc)
	errs := make([]error, nc)
	runChunks(nc, func(c int) {
		lo, hi := bounds(n, nc, c)
		parts[c], errs[c] = body(lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeParts(parts), nil
}

// mergeParts concatenates per-chunk outputs in chunk order. An all-empty
// result merges to nil, matching what an empty serial loop produces.
func mergeParts[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

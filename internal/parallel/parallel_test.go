package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegreeResolution(t *testing.T) {
	if got := Degree(3); got != 3 {
		t.Fatalf("explicit degree: got %d, want 3", got)
	}
	t.Setenv(EnvVar, "5")
	if got := Degree(0); got != 5 {
		t.Fatalf("env degree: got %d, want 5", got)
	}
	if got := Degree(2); got != 2 {
		t.Fatalf("explicit beats env: got %d, want 2", got)
	}
	t.Setenv(EnvVar, "junk")
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("bad env falls back to GOMAXPROCS: got %d", got)
	}
	t.Setenv(EnvVar, "-4")
	if got := EnvDegree(); got != 0 {
		t.Fatalf("negative env degree: got %d, want 0", got)
	}
}

func TestChunksThresholdFallback(t *testing.T) {
	cases := []struct {
		n, degree, want int
	}{
		{0, 8, 1},
		{Threshold, 8, 1},       // below 2*Threshold: serial
		{2*Threshold - 1, 8, 1}, // still below
		{2 * Threshold, 8, 2},   // first parallel point
		{100 * Threshold, 4, 4}, // capped by degree
		{100 * Threshold, 1, 1}, // degree 1 forces serial
		{3 * Threshold, 8, 3},   // capped by n/Threshold
		{10 * Threshold, 8, 8},  // capped by degree again
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.degree); got != c.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", c.n, c.degree, got, c.want)
		}
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	const n = 10*Threshold + 37
	hits := make([]int32, n)
	For(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForChunksDenseAndContiguous(t *testing.T) {
	const n = 8 * Threshold
	nc := Chunks(n, 4)
	seen := make([]struct{ lo, hi int32 }, nc)
	var calls int32
	ForChunks(n, 4, func(chunk, lo, hi int) {
		atomic.AddInt32(&calls, 1)
		atomic.StoreInt32(&seen[chunk].lo, int32(lo))
		atomic.StoreInt32(&seen[chunk].hi, int32(hi))
	})
	if int(calls) != nc {
		t.Fatalf("got %d chunk calls, want %d", calls, nc)
	}
	if seen[0].lo != 0 || int(seen[nc-1].hi) != n {
		t.Fatalf("chunks do not cover [0,%d): first=%d last=%d", n, seen[0].lo, seen[nc-1].hi)
	}
	for c := 1; c < nc; c++ {
		if seen[c].lo != seen[c-1].hi {
			t.Fatalf("chunk %d not contiguous: lo=%d prev hi=%d", c, seen[c].lo, seen[c-1].hi)
		}
	}
}

// TestMapOrderDeterministic is the core determinism guarantee: a parallel Map
// merges per-chunk outputs in input order, bit-identical to the serial run.
func TestMapOrderDeterministic(t *testing.T) {
	const n = 16*Threshold + 11
	body := func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			if i%3 != 0 { // variable-size output per chunk
				out = append(out, i*i)
			}
		}
		return out
	}
	serial := body(0, n)
	for _, degree := range []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)} {
		got := Map(n, degree, body)
		if len(got) != len(serial) {
			t.Fatalf("degree %d: len %d, want %d", degree, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("degree %d: index %d = %d, want %d", degree, i, got[i], serial[i])
			}
		}
	}
}

func TestMapEmptyOutputIsNil(t *testing.T) {
	got := Map(8*Threshold, 4, func(lo, hi int) []int { return nil })
	if got != nil {
		t.Fatalf("all-empty map: got %v, want nil", got)
	}
	if got := Map(0, 4, func(lo, hi int) []int { return []int{1} }); got != nil {
		t.Fatalf("n=0 map: got %v, want nil", got)
	}
}

func TestMapErrLowestChunkWins(t *testing.T) {
	const n = 8 * Threshold
	nc := Chunks(n, 4)
	if nc < 3 {
		t.Skipf("need >=3 chunks, got %d", nc)
	}
	// Every chunk after the first fails; the error of the earliest failing
	// chunk (covering the earliest rows) must be reported.
	_, err := MapErr(n, 4, func(lo, hi int) ([]int, error) {
		if lo == 0 {
			return []int{1}, nil
		}
		return nil, fmt.Errorf("chunk starting at %d", lo)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	lo1, _ := bounds(n, nc, 1)
	if want := fmt.Sprintf("chunk starting at %d", lo1); err.Error() != want {
		t.Fatalf("got error %q, want %q", err, want)
	}

	// No error: identical to serial.
	got, err := MapErr(n, 4, func(lo, hi int) ([]int, error) {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("index %d = %d", i, v)
		}
	}
}

func TestMapErrSerialPath(t *testing.T) {
	want := errors.New("boom")
	_, err := MapErr(10, 1, func(lo, hi int) ([]int, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestPanicPropagation(t *testing.T) {
	const n = 8 * Threshold
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := p.(string); !ok || s != "chunk panic" {
			t.Fatalf("unexpected panic value %v", p)
		}
	}()
	For(n, 4, func(lo, hi int) {
		if lo > 0 {
			panic("chunk panic")
		}
	})
}

func TestPanicInSerialPath(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("serial panic did not propagate")
		}
	}()
	For(3, 1, func(lo, hi int) { panic("serial") })
}

// TestNestedForNoDeadlock exercises fan-out from inside pool workers (the
// Decompose → Distinct nesting): inner tasks must either find an idle worker
// or run inline, never block.
func TestNestedForNoDeadlock(t *testing.T) {
	const outer = 16
	var total int64
	Each(outer, runtime.GOMAXPROCS(0), func(i int) {
		For(4*Threshold, 4, func(lo, hi int) {
			atomic.AddInt64(&total, int64(hi-lo))
		})
	})
	if total != int64(outer)*4*Threshold {
		t.Fatalf("nested work lost: total %d", total)
	}
}

func TestEachRunsEveryItem(t *testing.T) {
	for _, degree := range []int{1, 3, 16} {
		const k = 9
		hits := make([]int32, k)
		Each(k, degree, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("degree %d: item %d run %d times", degree, i, h)
			}
		}
	}
}

package stats

import (
	"math"
	"sort"
)

// defaultHistBuckets is the target bucket count for equi-depth histograms.
// 64 buckets resolve ~1.6% selectivity steps, plenty for the coarse gating
// decisions the planner makes (apply-or-skip, not exact cardinalities).
const defaultHistBuckets = 64

// Histogram is an equi-depth histogram over float64 values (numeric column
// values; INTEGER columns are histogrammed by their float value, matching
// join-key semantics where 1 == 1.0).
//
// Bucket i covers (lower_i, Bounds[i]] where lower_0 = Min (inclusive) and
// lower_i = Bounds[i-1] for i > 0. Bounds are non-decreasing; equal adjacent
// bounds represent heavy hitters (a value spanning whole buckets).
type Histogram struct {
	// Min is the smallest value (lower edge of the first bucket, inclusive).
	Min float64
	// Bounds[i] is the inclusive upper edge of bucket i.
	Bounds []float64
	// Counts[i] is the number of (sampled) values in bucket i.
	Counts []int
	// Mass is the total number of values the histogram was built from
	// (sum of Counts).
	Mass int
}

// BuildHistogram builds an equi-depth histogram with at most buckets buckets
// from vals. NaN values are ignored. The input slice is not modified.
// Returns nil when no usable values remain.
func BuildHistogram(vals []float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	sorted := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Float64s(sorted)
	n := len(sorted)
	if buckets > n {
		buckets = n
	}
	h := &Histogram{
		Min:    sorted[0],
		Bounds: make([]float64, buckets),
		Counts: make([]int, buckets),
		Mass:   n,
	}
	prev := 0
	for i := 0; i < buckets; i++ {
		hi := (i + 1) * n / buckets
		h.Bounds[i] = sorted[hi-1]
		h.Counts[i] = hi - prev
		prev = hi
	}
	return h
}

// FracInRange estimates the fraction of the histogrammed values falling in
// the closed interval [lo, hi], in [0, 1]. Within a bucket the distribution
// is assumed uniform over the bucket's value span; zero-width buckets (heavy
// hitters) count fully when their value is inside the interval.
func (h *Histogram) FracInRange(lo, hi float64) float64 {
	if h == nil || h.Mass == 0 {
		return 1
	}
	if hi < lo {
		return 0
	}
	last := h.Bounds[len(h.Bounds)-1]
	if hi < h.Min || lo > last {
		return 0
	}
	covered := 0.0
	lower := h.Min
	for i, upper := range h.Bounds {
		if lower > hi {
			// Bounds ascend; no later bucket can overlap [lo, hi].
			break
		}
		cnt := float64(h.Counts[i])
		if cnt > 0 {
			covered += cnt * overlapFrac(lower, upper, i == 0, lo, hi)
		}
		lower = upper
	}
	frac := covered / float64(h.Mass)
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// overlapFrac estimates what fraction of a bucket spanning (lower, upper]
// (or [lower, upper] for the first bucket) lies within [lo, hi].
func overlapFrac(lower, upper float64, first bool, lo, hi float64) float64 {
	if upper < lo || lower > hi {
		return 0
	}
	if upper == lower {
		// Point bucket: entirely one value.
		if upper >= lo && upper <= hi {
			return 1
		}
		return 0
	}
	if lo <= lower && hi >= upper {
		// Whole bucket covered; avoids Inf/Inf when a bucket edge is ±Inf.
		return 1
	}
	a := math.Max(lower, lo)
	b := math.Min(upper, hi)
	if b <= a && !(first && a == lower && b == a) {
		// Degenerate overlap at the open lower edge: approximately nothing.
		if b < a {
			return 0
		}
	}
	frac := (b - a) / (upper - lower)
	if math.IsNaN(frac) || frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

package stats

import (
	"math"
	"math/bits"
)

// sketch estimates the number of distinct 64-bit hashes fed to it.
//
// It is exact up to sketchExactMax distinct hashes (a plain hash set), then
// degrades to a HyperLogLog register array with 2^sketchP registers. Both
// phases are fully deterministic: the inputs are already seeded FNV-1a hashes
// (types.Value.HashFNV from types.FNVOffset64), and no randomization is
// applied here, so repeated builds over the same rows agree bit-for-bit.
type sketch struct {
	exact map[uint64]struct{}
	regs  []uint8
}

const (
	// sketchExactMax is the exact-phase capacity. JOB dimension tables and
	// most join-key columns at bench scales stay below it, giving the
	// planner exact NDVs where they matter most.
	sketchExactMax = 1 << 13
	// sketchP is the HyperLogLog precision (register count 2^p). p=12 gives
	// ~1.6% standard error at 4 KiB per overflowing column.
	sketchP = 12
)

// add feeds one 64-bit hash.
func (s *sketch) add(h uint64) {
	if s.regs != nil {
		s.addHLL(h)
		return
	}
	if s.exact == nil {
		s.exact = make(map[uint64]struct{}, 64)
	}
	if _, ok := s.exact[h]; ok {
		return
	}
	if len(s.exact) >= sketchExactMax {
		// Overflow: fold the exact set into HLL registers and continue there.
		s.regs = make([]uint8, 1<<sketchP)
		for eh := range s.exact {
			s.addHLL(eh)
		}
		s.exact = nil
		s.addHLL(h)
		return
	}
	s.exact[h] = struct{}{}
}

func (s *sketch) addHLL(h uint64) {
	// FNV-1a has weak avalanche into the top bits for short, similar inputs
	// (sequential integer keys land in a narrow band of registers, starving
	// the rest and collapsing the estimate). HLL needs uniform bits, so run
	// the hash through a bijective finalizer first; the exact phase keeps the
	// raw hash (distinctness is preserved either way).
	h = mix64(h)
	idx := h >> (64 - sketchP)
	rho := uint8(bits.LeadingZeros64(h<<sketchP|1)) + 1
	if rho > s.regs[idx] {
		s.regs[idx] = rho
	}
}

// mix64 is the splitmix64 finalizer: a fixed bijection on uint64 with full
// avalanche, turning the FNV stream hash into HLL-grade uniform bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// estimate returns the distinct-count estimate. Exact while in the exact
// phase; bias-corrected HyperLogLog with linear-counting small-range
// correction after overflow.
func (s *sketch) estimate() int {
	if s.regs == nil {
		return len(s.exact)
	}
	m := float64(len(s.regs))
	sum := 0.0
	zeros := 0
	for _, r := range s.regs {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting for the small range.
		est = m * math.Log(m/float64(zeros))
	}
	if est < 0 {
		return 0
	}
	return int(est + 0.5)
}

// Package stats collects lightweight per-column table statistics — row and
// null counts, min/max, a distinct-count sketch, and equi-depth histograms —
// for the cost-based planning mode (core.Options.CostBased, RESULTDB_STATS).
//
// Statistics are built in one pass over the row-major storage (never from the
// columnar frames, so estimates are identical whether vectorized execution is
// on or off), are fully deterministic (the NDV sketch hashes with the same
// seeded FNV-1a stream as the join hash tables), and are cached against the
// table's generation counter by Cache — the same invalidation pattern as the
// colstore frame cache in storage.Table.Columns.
//
// The numbers feed estimates only: plan choice may change, query results may
// not. The planner layers that consume them (root selection, reducer
// scheduling, adaptive Bloom sizing, sideways range passing) all preserve
// byte-identical output by construction.
package stats

import (
	"fmt"
	"math"
	"strings"

	"resultdb/internal/storage"
	"resultdb/internal/types"
)

// histSampleCap bounds the number of values fed into a histogram build. Above
// the cap a deterministic stride sample is taken, so builds stay O(rows) scan
// + O(cap log cap) sort regardless of table size.
const histSampleCap = 1 << 16

// Column holds the statistics of one table column.
type Column struct {
	// Name is the column name as declared (original case).
	Name string
	// Kind is the declared column type.
	Kind types.Kind
	// Rows is the table row count at build time.
	Rows int
	// Nulls is the number of NULL values.
	Nulls int
	// NDV is the estimated number of distinct non-null values. It is always
	// within [0, Rows-Nulls], and exact for columns with up to a few thousand
	// distinct values (the sketch stays in its exact phase).
	NDV int
	// Numeric reports that every non-null value is INTEGER or DOUBLE. Only
	// then are MinF/MaxF and Hist populated. NaN values do not clear the
	// flag but are excluded from the range and the histogram.
	Numeric bool
	// HasRange reports MinF/MaxF are valid (Numeric, and at least one
	// non-null non-NaN value was seen).
	HasRange bool
	// MinF and MaxF bound the non-null numeric values (NaN excluded).
	MinF, MaxF float64
	// Hist is the equi-depth histogram over the (possibly sampled) numeric
	// values, nil for non-numeric or empty columns.
	Hist *Histogram
}

// NonNull returns the number of non-null values.
func (c *Column) NonNull() int { return c.Rows - c.Nulls }

// NullFrac returns the fraction of NULL values in [0,1].
func (c *Column) NullFrac() float64 {
	if c.Rows == 0 {
		return 0
	}
	return float64(c.Nulls) / float64(c.Rows)
}

// Table holds the statistics of one table at one generation.
type Table struct {
	// Name is the table name.
	Name string
	// Rows is the row count at build time.
	Rows int
	// Cols holds per-column stats in definition order.
	Cols []Column

	byName map[string]int
}

// Col returns the stats for the named column (case-insensitive), or nil.
func (t *Table) Col(name string) *Column {
	if t == nil {
		return nil
	}
	if i, ok := t.byName[strings.ToLower(name)]; ok {
		return &t.Cols[i]
	}
	return nil
}

// String renders a compact human-readable summary (used by the shell's
// \stats command).
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rows\n", t.Name, t.Rows)
	for i := range t.Cols {
		c := &t.Cols[i]
		fmt.Fprintf(&b, "  %-20s %-8s ndv=%-8d nulls=%d", c.Name, c.Kind, c.NDV, c.Nulls)
		if c.HasRange {
			fmt.Fprintf(&b, " range=[%v, %v]", trimFloat(c.MinF), trimFloat(c.MaxF))
		}
		if c.Hist != nil {
			fmt.Fprintf(&b, " hist=%d buckets", len(c.Hist.Counts))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// colAcc accumulates one column's statistics during the single build pass.
type colAcc struct {
	nulls   int
	sk      sketch
	numeric bool
	hasRange bool
	minF, maxF float64
	vals    []float64 // histogram sample (numeric, non-NaN)
}

// FromTable builds fresh statistics for t in a single pass over its rows.
// The build is deterministic: same rows in the same order produce identical
// statistics.
func FromTable(t *storage.Table) *Table {
	nCols := len(t.Def.Columns)
	out := &Table{
		Name:   t.Def.Name,
		Rows:   len(t.Rows),
		Cols:   make([]Column, nCols),
		byName: make(map[string]int, nCols),
	}
	accs := make([]colAcc, nCols)
	for i := range accs {
		accs[i].numeric = true
	}
	// Deterministic stride sample for histograms: every stride-th row.
	stride := 1
	if len(t.Rows) > histSampleCap {
		stride = (len(t.Rows) + histSampleCap - 1) / histSampleCap
	}
	for ri, row := range t.Rows {
		sample := ri%stride == 0
		for ci := 0; ci < nCols && ci < len(row); ci++ {
			v := row[ci]
			a := &accs[ci]
			if v.IsNull() {
				a.nulls++
				continue
			}
			a.sk.add(v.HashFNV(types.FNVOffset64))
			switch v.Kind() {
			case types.KindInt, types.KindFloat:
				f := v.Float()
				if math.IsNaN(f) {
					continue
				}
				if !a.hasRange {
					a.minF, a.maxF, a.hasRange = f, f, true
				} else if f < a.minF {
					a.minF = f
				} else if f > a.maxF {
					a.maxF = f
				}
				if sample && a.numeric {
					a.vals = append(a.vals, f)
				}
			default:
				a.numeric = false
				a.hasRange = false
				a.vals = nil
			}
		}
	}
	for ci := range out.Cols {
		def := t.Def.Columns[ci]
		a := &accs[ci]
		c := &out.Cols[ci]
		c.Name = def.Name
		c.Kind = def.Type
		c.Rows = len(t.Rows)
		c.Nulls = a.nulls
		nonNull := c.Rows - c.Nulls
		ndv := a.sk.estimate()
		if ndv > nonNull {
			ndv = nonNull
		}
		if ndv < 1 && nonNull > 0 {
			ndv = 1
		}
		c.NDV = ndv
		c.Numeric = a.numeric && nonNull > 0
		c.HasRange = a.hasRange
		if a.hasRange {
			c.MinF, c.MaxF = a.minF, a.maxF
		}
		if c.Numeric && len(a.vals) > 0 {
			c.Hist = BuildHistogram(a.vals, defaultHistBuckets)
		}
		out.byName[strings.ToLower(def.Name)] = ci
	}
	return out
}

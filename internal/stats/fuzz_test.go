package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzHistogramBuild feeds arbitrary byte strings (decoded as float64s and a
// bucket count) into the histogram builder and checks its structural
// invariants: counts sum to the mass, bounds are non-decreasing, the full
// range covers everything, and every FracInRange answer is a valid fraction.
func FuzzHistogramBuild(f *testing.F) {
	f.Add([]byte{1}, 4)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 240, 63, 0, 0, 0, 0, 0, 0, 8, 64}, 2)
	f.Add(make([]byte, 800), 64)
	f.Fuzz(func(t *testing.T, data []byte, buckets int) {
		if buckets > 1<<12 {
			buckets = 1 << 12
		}
		vals := make([]float64, 0, len(data)/8+1)
		for len(data) >= 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		if len(data) > 0 {
			vals = append(vals, float64(int8(data[0])))
		}
		h := BuildHistogram(vals, buckets)
		finite := 0
		for _, v := range vals {
			if !math.IsNaN(v) {
				finite++
			}
		}
		if h == nil {
			if finite != 0 {
				t.Fatalf("nil histogram for %d usable values", finite)
			}
			return
		}
		if h.Mass != finite {
			t.Fatalf("mass %d != usable values %d", h.Mass, finite)
		}
		sum := 0
		for i, c := range h.Counts {
			if c < 0 {
				t.Fatalf("negative count at bucket %d", i)
			}
			sum += c
			if i > 0 && h.Bounds[i] < h.Bounds[i-1] {
				t.Fatalf("bounds decrease at bucket %d: %g < %g", i, h.Bounds[i], h.Bounds[i-1])
			}
		}
		if sum != h.Mass {
			t.Fatalf("counts sum %d != mass %d", sum, h.Mass)
		}
		for _, probe := range [][2]float64{
			{math.Inf(-1), math.Inf(1)},
			{h.Min, h.Bounds[len(h.Bounds)-1]},
			{0, 1},
			{h.Min - 1, h.Min},
		} {
			frac := h.FracInRange(probe[0], probe[1])
			if math.IsNaN(frac) || frac < 0 || frac > 1 {
				t.Fatalf("FracInRange(%g,%g) = %g", probe[0], probe[1], frac)
			}
		}
		if got := h.FracInRange(math.Inf(-1), math.Inf(1)); math.Abs(got-1) > 1e-6 {
			t.Fatalf("full range frac = %g, want 1", got)
		}
	})
}

package stats

import (
	"sync"

	"resultdb/internal/storage"
)

// Cache lazily builds and caches per-table statistics, invalidated by the
// table's generation counter — the exact pattern storage.Table uses for its
// columnar frame cache. Safe for concurrent lock-free readers, which may
// race to build stats for the same table version.
//
// Entries are keyed by table-version pointer (under MVCC each published
// version is its own key). The writer Forgets superseded versions when it
// publishes, but a reader on an old snapshot can re-insert an entry for a
// version the writer already retired; cacheCap bounds that stray growth by
// resetting the map — entries are re-derived in one build each.
type Cache struct {
	mu      sync.Mutex
	entries map[*storage.Table]*cacheEntry
}

// cacheCap bounds the number of cached tables (see Cache doc).
const cacheCap = 4096

type cacheEntry struct {
	gen  uint64
	rows int
	st   *Table
}

// NewCache returns an empty statistics cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[*storage.Table]*cacheEntry)}
}

// Of returns current statistics for t, building them if the cache is cold or
// stale (the table's generation moved on since the last build).
func (c *Cache) Of(t *storage.Table) *Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[t]; ok && e.gen == t.Generation() && e.rows == t.Len() {
		return e.st
	}
	st := FromTable(t)
	if len(c.entries) >= cacheCap {
		c.entries = make(map[*storage.Table]*cacheEntry)
	}
	c.entries[t] = &cacheEntry{gen: t.Generation(), rows: t.Len(), st: st}
	return st
}

// Forget drops any cached entry for t. Called when a table is dropped so the
// pointer-keyed map does not pin dead tables.
func (c *Cache) Forget(t *storage.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, t)
}

// Len returns the number of cached tables (for tests).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

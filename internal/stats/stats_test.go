package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

func intTable(t *testing.T, name string, vals []int64) *storage.Table {
	t.Helper()
	def := catalog.MustTableDef(name, []catalog.Column{{Name: "v", Type: types.KindInt}})
	tab := storage.NewTable(def)
	rows := make([]types.Row, len(vals))
	for i, v := range vals {
		rows[i] = types.Row{types.NewInt(v)}
	}
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFromTableBasics(t *testing.T) {
	def := catalog.MustTableDef("t", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "grp", Type: types.KindInt},
		{Name: "name", Type: types.KindText},
		{Name: "score", Type: types.KindFloat},
	})
	tab := storage.NewTable(def)
	var rows []types.Row
	for i := 0; i < 100; i++ {
		score := types.NewFloat(float64(i) / 2)
		if i%10 == 0 {
			score = types.Null()
		}
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 7)),
			types.NewText(fmt.Sprintf("n%03d", i%5)),
			score,
		})
	}
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	st := FromTable(tab)
	if st.Rows != 100 {
		t.Fatalf("rows = %d, want 100", st.Rows)
	}
	id := st.Col("ID") // case-insensitive lookup
	if id == nil || id.NDV != 100 || id.Nulls != 0 || !id.HasRange || id.MinF != 0 || id.MaxF != 99 {
		t.Fatalf("id stats wrong: %+v", id)
	}
	if id.Hist == nil || id.Hist.Mass != 100 {
		t.Fatalf("id histogram wrong: %+v", id.Hist)
	}
	grp := st.Col("grp")
	if grp.NDV != 7 {
		t.Fatalf("grp ndv = %d, want 7", grp.NDV)
	}
	name := st.Col("name")
	if name.NDV != 5 || name.Numeric || name.Hist != nil {
		t.Fatalf("name stats wrong: %+v", name)
	}
	score := st.Col("score")
	if score.Nulls != 10 || score.NDV > 90 {
		t.Fatalf("score stats wrong: %+v", score)
	}
	if got := score.NullFrac(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("score null frac = %g, want 0.1", got)
	}
}

// TestPropertySweep is the seeded property sweep from the issue: across many
// random tables, NDV never exceeds the non-null row count, histogram mass
// equals the (unsampled) row count, min/max match a brute-force scan, and
// FracInRange stays within [0,1] and covers the full range.
func TestPropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2000)
		domain := 1 + rng.Intn(500)
		vals := make([]int64, n)
		truth := map[int64]bool{}
		var min, max int64
		for i := range vals {
			v := int64(rng.Intn(domain)) - int64(domain/2)
			vals[i] = v
			if len(truth) == 0 || v < min {
				min = v
			}
			if len(truth) == 0 || v > max {
				max = v
			}
			truth[v] = true
		}
		st := FromTable(intTable(t, "p", vals))
		c := st.Col("v")
		if c.NDV > c.NonNull() {
			t.Fatalf("trial %d: NDV %d > non-null %d", trial, c.NDV, c.NonNull())
		}
		if n > 0 {
			if c.NDV != len(truth) {
				// Exact phase covers these sizes; the sketch must be exact.
				t.Fatalf("trial %d: NDV %d, want exact %d", trial, c.NDV, len(truth))
			}
			if !c.HasRange || c.MinF != float64(min) || c.MaxF != float64(max) {
				t.Fatalf("trial %d: range [%g,%g], want [%d,%d]", trial, c.MinF, c.MaxF, min, max)
			}
			if c.Hist == nil || c.Hist.Mass != n {
				t.Fatalf("trial %d: histogram mass %v, want %d", trial, c.Hist, n)
			}
			full := c.Hist.FracInRange(math.Inf(-1), math.Inf(1))
			if math.Abs(full-1) > 1e-9 {
				t.Fatalf("trial %d: full-range frac = %g, want 1", trial, full)
			}
			sum := 0
			for _, cnt := range c.Hist.Counts {
				sum += cnt
			}
			if sum != c.Hist.Mass {
				t.Fatalf("trial %d: counts sum %d != mass %d", trial, sum, c.Hist.Mass)
			}
			lo := float64(min) + rng.Float64()*float64(max-min+1)
			hi := lo + rng.Float64()*float64(max-min+1)
			frac := c.Hist.FracInRange(lo, hi)
			if frac < 0 || frac > 1 || math.IsNaN(frac) {
				t.Fatalf("trial %d: frac(%g,%g) = %g out of [0,1]", trial, lo, hi, frac)
			}
		}
	}
}

// TestSketchLargeNDV checks the HyperLogLog phase stays within a few percent
// once the exact phase overflows.
func TestSketchLargeNDV(t *testing.T) {
	var s sketch
	const n = 200000
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		// Distinct values hashed through the same path FromTable uses.
		s.add(types.NewInt(int64(i)*1000003 + rng.Int63n(3)).HashFNV(types.FNVOffset64))
	}
	est := s.estimate()
	if math.Abs(float64(est)-n)/n > 0.05 {
		t.Fatalf("sketch estimate %d for ~%d distinct (err %.1f%%)", est, n, 100*math.Abs(float64(est)-n)/n)
	}
}

// TestSketchSequentialKeys regresses the FNV-clustering failure: sequential
// integer keys (the common primary-key shape) hash into a narrow band of HLL
// registers without the finalizer, collapsing the estimate ~3x.
func TestSketchSequentialKeys(t *testing.T) {
	var s sketch
	const n = 50000
	for i := 0; i < n; i++ {
		s.add(types.NewInt(int64(i)).HashFNV(types.FNVOffset64))
	}
	est := s.estimate()
	if math.Abs(float64(est)-n)/n > 0.05 {
		t.Fatalf("sketch estimate %d for %d sequential keys (err %.1f%%)", est, n, 100*math.Abs(float64(est)-n)/n)
	}
}

func TestHistogramFracInRange(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i) // uniform 0..999
	}
	h := BuildHistogram(vals, 64)
	if h.Mass != 1000 {
		t.Fatalf("mass = %d", h.Mass)
	}
	cases := []struct{ lo, hi, want, tol float64 }{
		{0, 999, 1, 1e-9},
		{-100, -1, 0, 0},
		{1000, 2000, 0, 0},
		{0, 499, 0.5, 0.05},
		{250, 749, 0.5, 0.05},
		{900, 999, 0.1, 0.05},
	}
	for _, c := range cases {
		got := h.FracInRange(c.lo, c.hi)
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("FracInRange(%g,%g) = %g, want %g ± %g", c.lo, c.hi, got, c.want, c.tol)
		}
	}
}

// TestCacheInvalidation is the stale-generation invalidation check: stats are
// reused while the table is unchanged and rebuilt after DML.
func TestCacheInvalidation(t *testing.T) {
	tab := intTable(t, "c", []int64{1, 2, 3})
	cache := NewCache()
	s1 := cache.Of(tab)
	if s1.Rows != 3 || s1.Col("v").NDV != 3 {
		t.Fatalf("initial stats wrong: %+v", s1)
	}
	if s2 := cache.Of(tab); s2 != s1 {
		t.Fatal("unchanged table must hit the cache (same pointer)")
	}
	if err := tab.Insert(types.Row{types.NewInt(4)}); err != nil {
		t.Fatal(err)
	}
	s3 := cache.Of(tab)
	if s3 == s1 {
		t.Fatal("stats not rebuilt after insert")
	}
	if s3.Rows != 4 || s3.Col("v").NDV != 4 {
		t.Fatalf("post-DML stats wrong: %+v", s3)
	}
	cache.Forget(tab)
	if cache.Len() != 0 {
		t.Fatalf("Forget left %d entries", cache.Len())
	}
}

// TestDeterministicBuild: two builds over identical data agree exactly.
func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(400)
	}
	a := FromTable(intTable(t, "d", vals))
	b := FromTable(intTable(t, "d", vals))
	ca, cb := a.Col("v"), b.Col("v")
	if ca.NDV != cb.NDV || ca.MinF != cb.MinF || ca.MaxF != cb.MaxF || ca.Nulls != cb.Nulls {
		t.Fatalf("non-deterministic build: %+v vs %+v", ca, cb)
	}
	for i := range ca.Hist.Bounds {
		if ca.Hist.Bounds[i] != cb.Hist.Bounds[i] || ca.Hist.Counts[i] != cb.Hist.Counts[i] {
			t.Fatalf("non-deterministic histogram at bucket %d", i)
		}
	}
}

// TestMixedKindColumn: a column whose non-null values are not all numeric
// must not claim a numeric range or histogram, but still counts NDV.
func TestMixedKindColumn(t *testing.T) {
	def := catalog.MustTableDef("m", []catalog.Column{{Name: "v", Type: types.KindText}})
	tab := storage.NewTable(def)
	rows := []types.Row{
		{types.NewText("a")},
		{types.NewText("b")},
		{types.Null()},
		{types.NewText("a")},
	}
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	c := FromTable(tab).Col("v")
	if c.Numeric || c.HasRange || c.Hist != nil {
		t.Fatalf("text column claims numeric stats: %+v", c)
	}
	if c.NDV != 2 || c.Nulls != 1 {
		t.Fatalf("text column counts wrong: %+v", c)
	}
}

package hierarchy

import (
	"testing"

	"resultdb/internal/db"
)

func TestLoadAndSubtypePartition(t *testing.T) {
	d := db.New()
	cfg := Config{Products: 200, Seed: 1}
	if err := Load(d, cfg); err != nil {
		t.Fatal(err)
	}
	p, _ := d.Table("products")
	e, _ := d.Table("electronics")
	c, _ := d.Table("clothing")
	if p.Len() != 200 {
		t.Errorf("products = %d", p.Len())
	}
	if e.Len()+c.Len() != 200 {
		t.Errorf("subtypes %d + %d != 200", e.Len(), c.Len())
	}
	// Every subtype row references an existing product (FK integrity).
	res, err := d.QuerySQL(`SELECT COUNT(*) FROM electronics AS e, products AS p WHERE e.pid = p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.First().Rows[0][0].Int() != int64(e.Len()) {
		t.Error("dangling electronics FK")
	}
}

// TestOuterJoinVsResultDBConsistency: the RESULTDB formulation returns the
// same subtype rows that the Listing 2 OUTER JOIN formulation pads into a
// single table — without any NULLs.
func TestOuterJoinVsResultDBConsistency(t *testing.T) {
	d := db.New()
	if err := Load(d, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	outer, err := d.QuerySQL(OuterJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Count non-NULL electronics and clothing rows in the padded result.
	set := outer.First()
	var outerElec, outerCloth int
	for _, row := range set.Rows {
		if !row[0].IsNull() { // e.id
			outerElec++
		}
		if !row[3].IsNull() { // c.id
			outerCloth++
		}
	}

	elec, err := d.QuerySQL(ResultDBElectronics)
	if err != nil {
		t.Fatal(err)
	}
	cloth, err := d.QuerySQL(ResultDBClothing)
	if err != nil {
		t.Fatal(err)
	}
	if elec.First().NumRows() != outerElec {
		t.Errorf("electronics: RESULTDB %d vs outer-join %d", elec.First().NumRows(), outerElec)
	}
	if cloth.First().NumRows() != outerCloth {
		t.Errorf("clothing: RESULTDB %d vs outer-join %d", cloth.First().NumRows(), outerCloth)
	}
	// And RESULTDB results contain no NULLs at all.
	for _, res := range []*db.Result{elec, cloth} {
		for _, row := range res.First().Rows {
			for _, v := range row {
				if v.IsNull() {
					t.Fatal("NULL in RESULTDB subtype result")
				}
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	d1, d2 := db.New(), db.New()
	cfg := Config{Products: 100, Seed: 9}
	if err := Load(d1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Load(d2, cfg); err != nil {
		t.Fatal(err)
	}
	t1, _ := d1.Table("products")
	t2, _ := d2.Table("products")
	for i := range t1.Rows {
		if !t1.Rows[i].Equal(t2.Rows[i]) {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
}

// Package hierarchy builds the subtype schema of the paper's Figure 3 —
// products with electronics and clothing subtypes — used by the
// hierarchical-data use case (Section 1.2, Listing 2): retrieving rows from
// multiple distinct relations that lack a common schema forces OUTER JOINs
// and NULL padding under single-table SQL, while RESULTDB returns each
// subtype as its own clean relation.
package hierarchy

import (
	"fmt"
	"math/rand"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/types"
)

// Config sizes the catalog.
type Config struct {
	// Products is the supertype cardinality; roughly half are electronics
	// and half clothing.
	Products int
	Seed     int64
}

// DefaultConfig is a small demo size.
func DefaultConfig() Config { return Config{Products: 1000, Seed: 11} }

// Load creates products/electronics/clothing with Figure 3's shape.
func Load(d *db.Database, cfg Config) error {
	products := catalog.MustTableDef("products", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "name", Type: types.KindText},
		{Name: "price", Type: types.KindInt},
	})
	products.PrimaryKey = []string{"id"}
	electronics := catalog.MustTableDef("electronics", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "pid", Type: types.KindInt},
		{Name: "storage", Type: types.KindText},
	})
	electronics.PrimaryKey = []string{"id"}
	electronics.ForeignKeys = []catalog.ForeignKey{{Columns: []string{"pid"}, RefTable: "products", RefColumns: []string{"id"}}}
	clothing := catalog.MustTableDef("clothing", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "pid", Type: types.KindInt},
		{Name: "size", Type: types.KindText},
	})
	clothing.PrimaryKey = []string{"id"}
	clothing.ForeignKeys = []catalog.ForeignKey{{Columns: []string{"pid"}, RefTable: "products", RefColumns: []string{"id"}}}

	pt, err := d.CreateTable(products)
	if err != nil {
		return err
	}
	et, err := d.CreateTable(electronics)
	if err != nil {
		return err
	}
	ct, err := d.CreateTable(clothing)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	electronicNames := []string{"smartphone", "laptop", "tablet", "camera", "headphones", "monitor"}
	clothingNames := []string{"shirt", "pants", "jacket", "dress", "socks", "coat"}
	storages := []string{"32 GB", "64 GB", "128 GB", "256 GB", "1 TB"}
	sizes := []string{"XS", "S", "M", "L", "XL"}

	eid, cid := 0, 0
	for i := 0; i < cfg.Products; i++ {
		isElectronic := i%2 == 0
		var name string
		var price int
		if isElectronic {
			name = electronicNames[rng.Intn(len(electronicNames))]
			price = 100 + rng.Intn(3900) // 100..3999
		} else {
			name = clothingNames[rng.Intn(len(clothingNames))]
			price = 10 + rng.Intn(290) // 10..299
		}
		err := pt.Insert(types.Row{
			types.NewInt(int64(i)),
			types.NewText(fmt.Sprintf("%s-%d", name, i)),
			types.NewInt(int64(price)),
		})
		if err != nil {
			return err
		}
		if isElectronic {
			err = et.Insert(types.Row{
				types.NewInt(int64(eid)),
				types.NewInt(int64(i)),
				types.NewText(storages[rng.Intn(len(storages))]),
			})
			eid++
		} else {
			err = ct.Insert(types.Row{
				types.NewInt(int64(cid)),
				types.NewInt(int64(i)),
				types.NewText(sizes[rng.Intn(len(sizes))]),
			})
			cid++
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// OuterJoinQuery is Listing 2: the single-table formulation, forced into
// LEFT OUTER JOINs with NULL padding.
const OuterJoinQuery = `
SELECT e.*, c.*
FROM products AS p
LEFT OUTER JOIN electronics AS e ON p.id = e.pid
LEFT OUTER JOIN clothing AS c ON p.id = c.pid
WHERE p.price < 1000`

// ResultDBElectronics and ResultDBClothing are the subdatabase formulation:
// each subtype restricted to products under the price cap, no NULL padding.
// (A future UNION-free multi-root RESULTDB could merge these into one
// statement; with SPJ-only RESULTDB each subtype is one query.)
const (
	ResultDBElectronics = `
SELECT RESULTDB e.id, e.pid, e.storage
FROM products AS p, electronics AS e
WHERE p.id = e.pid AND p.price < 1000`
	ResultDBClothing = `
SELECT RESULTDB c.id, c.pid, c.size
FROM products AS p, clothing AS c
WHERE p.id = c.pid AND p.price < 1000`
)

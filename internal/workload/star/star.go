// Package star builds the worst-case star schema of the paper's Figure 7
// experiment: dimension tables plus a fact table containing their Cartesian
// product, so every dimension tuple joins with every combination of the
// others — maximum denormalization redundancy.
package star

import (
	"fmt"
	"math/rand"
	"strings"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/types"
)

// Config shapes the schema.
type Config struct {
	// Dims is the number of dimension tables (the paper sketches three).
	Dims int
	// DimRows is the per-dimension cardinality; the fact table has
	// DimRows^Dims rows (the full Cartesian product).
	DimRows int
	// PayloadLen is the width of each dimension's text payload; wider
	// payloads widen the redundancy gap (Section 6.1).
	PayloadLen int
	// Seed makes the payloads deterministic.
	Seed int64
}

// DefaultConfig matches a laptop-friendly instantiation of Figure 7:
// 3 dimensions x 25 rows -> a 15,625-row fact table.
func DefaultConfig() Config {
	return Config{Dims: 3, DimRows: 25, PayloadLen: 40, Seed: 7}
}

// DimName returns the i-th dimension table name (d1, d2, ...).
func DimName(i int) string { return fmt.Sprintf("d%d", i+1) }

// Load creates and fills the schema. Each dimension d<i> has
// (id, payload, val) with val uniform in [0,100); filtering val < 100*s
// selects a fraction s of the dimension. The fact table has a foreign key
// per dimension plus a measure.
func Load(d *db.Database, cfg Config) error {
	if cfg.Dims < 1 {
		return fmt.Errorf("star: need at least one dimension")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for i := 0; i < cfg.Dims; i++ {
		def := catalog.MustTableDef(DimName(i), []catalog.Column{
			{Name: "id", Type: types.KindInt},
			{Name: "payload", Type: types.KindText},
			{Name: "val", Type: types.KindInt},
		})
		def.PrimaryKey = []string{"id"}
		t, err := d.CreateTable(def)
		if err != nil {
			return err
		}
		for r := 0; r < cfg.DimRows; r++ {
			// val is a permutation-free uniform draw; using r mod 100 keeps
			// selectivity exact for DimRows <= 100.
			val := r * 100 / cfg.DimRows
			payload := randomPayload(rng, cfg.PayloadLen)
			err := t.Insert(types.Row{
				types.NewInt(int64(r)),
				types.NewText(payload),
				types.NewInt(int64(val)),
			})
			if err != nil {
				return err
			}
		}
	}

	factCols := []catalog.Column{{Name: "id", Type: types.KindInt}}
	for i := 0; i < cfg.Dims; i++ {
		factCols = append(factCols, catalog.Column{Name: DimName(i) + "_id", Type: types.KindInt})
	}
	factCols = append(factCols, catalog.Column{Name: "measure", Type: types.KindFloat})
	fdef := catalog.MustTableDef("fact", factCols)
	fdef.PrimaryKey = []string{"id"}
	for i := 0; i < cfg.Dims; i++ {
		fdef.ForeignKeys = append(fdef.ForeignKeys, catalog.ForeignKey{
			Columns: []string{DimName(i) + "_id"}, RefTable: DimName(i), RefColumns: []string{"id"},
		})
	}
	fact, err := d.CreateTable(fdef)
	if err != nil {
		return err
	}

	// Cartesian product of the dimensions (the paper's worst case).
	idx := make([]int, cfg.Dims)
	id := 0
	for {
		row := make(types.Row, 0, cfg.Dims+2)
		row = append(row, types.NewInt(int64(id)))
		for _, v := range idx {
			row = append(row, types.NewInt(int64(v)))
		}
		row = append(row, types.NewFloat(rng.Float64()*1000))
		if err := fact.Insert(row); err != nil {
			return err
		}
		id++
		// Odometer increment.
		pos := cfg.Dims - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < cfg.DimRows {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			return nil
		}
	}
}

// Query builds the Figure 7 workload query: join the fact table with every
// dimension, select all attributes, and filter each dimension with the given
// selectivity in (0,1].
func Query(cfg Config, selectivity float64) string {
	var items, from, where []string
	items = append(items, "f.*")
	from = append(from, "fact AS f")
	cut := int(selectivity * 100)
	for i := 0; i < cfg.Dims; i++ {
		dn := DimName(i)
		items = append(items, dn+".*")
		from = append(from, fmt.Sprintf("%s AS %s", dn, dn))
		where = append(where, fmt.Sprintf("f.%s_id = %s.id", dn, dn))
		if cut < 100 {
			where = append(where, fmt.Sprintf("%s.val < %d", dn, cut))
		}
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s",
		strings.Join(items, ", "), strings.Join(from, ", "), strings.Join(where, " AND "))
}

// PayloadQuery is the RDB variant of the Figure 7 query text: it projects
// only the payloads of the dimensions and the fact's measure, i.e. no key
// columns (the paper: "RDB only projects the payload of the dimension
// tables and the fact table").
func PayloadQuery(cfg Config, selectivity float64) string {
	var items, from, where []string
	items = append(items, "f.measure")
	from = append(from, "fact AS f")
	cut := int(selectivity * 100)
	for i := 0; i < cfg.Dims; i++ {
		dn := DimName(i)
		items = append(items, dn+".payload")
		from = append(from, fmt.Sprintf("%s AS %s", dn, dn))
		where = append(where, fmt.Sprintf("f.%s_id = %s.id", dn, dn))
		if cut < 100 {
			where = append(where, fmt.Sprintf("%s.val < %d", dn, cut))
		}
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s",
		strings.Join(items, ", "), strings.Join(from, ", "), strings.Join(where, " AND "))
}

func randomPayload(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz "
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

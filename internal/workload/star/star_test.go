package star

import (
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
)

func TestLoadShapesAndCartesianFact(t *testing.T) {
	cfg := Config{Dims: 3, DimRows: 5, PayloadLen: 8, Seed: 1}
	d := db.New()
	if err := Load(d, cfg); err != nil {
		t.Fatal(err)
	}
	fact, err := d.Table("fact")
	if err != nil {
		t.Fatal(err)
	}
	if fact.Len() != 125 {
		t.Errorf("fact rows = %d, want 5^3 = 125", fact.Len())
	}
	for i := 0; i < cfg.Dims; i++ {
		dim, err := d.Table(DimName(i))
		if err != nil {
			t.Fatal(err)
		}
		if dim.Len() != 5 {
			t.Errorf("%s rows = %d", DimName(i), dim.Len())
		}
	}
	// Every dimension combination appears exactly once.
	res, err := d.QuerySQL("SELECT COUNT(*) FROM fact AS f, d1 AS d1 WHERE f.d1_id = d1.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().Rows[0][0].Int() != 125 {
		t.Errorf("join count = %v", res.First().Rows[0][0])
	}
}

func TestSelectivityIsExact(t *testing.T) {
	cfg := Config{Dims: 2, DimRows: 10, PayloadLen: 4, Seed: 2}
	d := db.New()
	if err := Load(d, cfg); err != nil {
		t.Fatal(err)
	}
	// val < 50 must select exactly half of each dimension (val = r*100/n).
	res, err := d.QuerySQL("SELECT COUNT(*) FROM d1 AS d1 WHERE d1.val < 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().Rows[0][0].Int() != 5 {
		t.Errorf("selected %v of 10, want 5", res.First().Rows[0][0])
	}
	// Joint selectivity on the fact: s^2 * |fact|.
	sel, err := sqlparse.ParseSelect(Query(cfg, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.First().NumRows(); got != 25 {
		t.Errorf("joined rows = %d, want 25 (0.5^2 * 100)", got)
	}
}

func TestQueriesParseAndModesShrink(t *testing.T) {
	cfg := Config{Dims: 3, DimRows: 8, PayloadLen: 16, Seed: 3}
	d := db.New()
	if err := Load(d, cfg); err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0.25, 0.5, 1.0} {
		full, err := sqlparse.ParseSelect(Query(cfg, s))
		if err != nil {
			t.Fatalf("Query(%v): %v", s, err)
		}
		payload, err := sqlparse.ParseSelect(PayloadQuery(cfg, s))
		if err != nil {
			t.Fatalf("PayloadQuery(%v): %v", s, err)
		}
		st, err := d.Query(full)
		if err != nil {
			t.Fatal(err)
		}
		rdbrp, err := d.QueryResultDB(full, db.ModeRDBRP)
		if err != nil {
			t.Fatal(err)
		}
		rdb, err := d.QueryResultDB(payload, db.ModeRDB)
		if err != nil {
			t.Fatal(err)
		}
		if !(st.WireSize() >= rdbrp.WireSize() && rdbrp.WireSize() >= rdb.WireSize()) {
			t.Errorf("s=%v: sizes not ordered ST(%d) >= RDBRP(%d) >= RDB(%d)",
				s, st.WireSize(), rdbrp.WireSize(), rdb.WireSize())
		}
	}
}

func TestLoadValidatesConfig(t *testing.T) {
	if err := Load(db.New(), Config{Dims: 0}); err == nil {
		t.Error("zero dimensions should fail")
	}
}

func TestDimName(t *testing.T) {
	if DimName(0) != "d1" || DimName(2) != "d3" {
		t.Error("DimName numbering off")
	}
}

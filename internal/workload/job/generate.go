package job

import (
	"fmt"
	"math/rand"
	"strings"

	"resultdb/internal/types"
)

// gen produces deterministic synthetic rows with IMDb-like skew.
type gen struct {
	cfg   Config
	rng   *rand.Rand
	sizes map[string]int
}

func newGen(cfg Config) *gen {
	return &gen{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sizes: Sizes(cfg),
	}
}

// movieRef draws a movie id with a bounded head/tail popularity skew: 30%
// of fact rows reference a "popular" head of 5% of the titles, the rest are
// uniform. Unlike a raw Zipf draw, the maximum per-movie degree stays
// bounded, so multi-fact joins through a hub movie amplify (the paper's
// redundancy effect) without exploding combinatorially.
func (g *gen) movieRef() int {
	n := g.sizes["title"]
	if head := n / 20; head > 0 && g.rng.Float64() < 0.3 {
		return g.rng.Intn(head)
	}
	return g.rng.Intn(n)
}

// personRef draws a person id: 20% of credits go to a prolific head of 2%.
func (g *gen) personRef() int {
	n := g.sizes["name"]
	if head := n / 50; head > 0 && g.rng.Float64() < 0.2 {
		return g.rng.Intn(head)
	}
	return g.rng.Intn(n)
}

var syllables = []string{
	"an", "ar", "bel", "ca", "dor", "el", "fan", "gor", "hal", "in", "jo",
	"kar", "lu", "mor", "na", "or", "pel", "qua", "ril", "sa", "tor", "ul",
	"vor", "wen", "xi", "yor", "zan",
}

// capitalize upper-cases the first ASCII letter.
func capitalize(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if 'a' <= b[0] && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// word builds a pseudo-word of n syllables.
func (g *gen) word(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[g.rng.Intn(len(syllables))])
	}
	return b.String()
}

func (g *gen) titleText(id int) string {
	return fmt.Sprintf("%s %s (%d)", capitalize(g.word(2)), g.word(2+g.rng.Intn(3)), id)
}

func (g *gen) personName(id int) string {
	return fmt.Sprintf("%s, %s #%d", capitalize(g.word(2)), capitalize(g.word(2)), id)
}

// infoText is deliberately wide (20-100 chars): wide attributes are what
// make denormalized single-table results balloon (paper Problem 1).
func (g *gen) infoText() string {
	n := 3 + g.rng.Intn(12)
	words := make([]string, n)
	for i := range words {
		words[i] = g.word(1 + g.rng.Intn(3))
	}
	return strings.Join(words, " ")
}

var countries = []string{"[us]", "[us]", "[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[it]", "[ca]"}
var genders = []string{"m", "m", "f", "f", ""}
var kindNames = []string{"movie", "tv series", "tv movie", "video movie", "tv mini series", "video game", "episode"}
var companyKinds = []string{"production companies", "distributors", "special effects companies", "miscellaneous companies"}
var roleNames = []string{"actor", "actress", "producer", "writer", "cinematographer", "composer",
	"costume designer", "director", "editor", "guest", "miscellaneous crew", "production designer"}
var infoNames = []string{"budget", "bottom 10 rank", "certificates", "color info", "countries",
	"genres", "gross", "languages", "locations", "mpaa", "plot", "rating", "release dates",
	"runtimes", "sound mix", "tech info", "top 250 rank", "trivia", "votes", "taglines"}

type inserter interface {
	Insert(types.Row) error
}

func row(vals ...types.Value) types.Row { return vals }

func iv(v int) types.Value    { return types.NewInt(int64(v)) }
func tv(s string) types.Value { return types.NewText(s) }

// fill generates every table. Lookup tables are fixed; entity tables use
// uniform attributes with categorical skew; fact tables use Zipf references.
func (g *gen) fill(tables map[string]inserter) error {
	ins := func(name string, r types.Row) error {
		if err := tables[name].Insert(r); err != nil {
			return fmt.Errorf("job: insert into %s: %w", name, err)
		}
		return nil
	}

	for i, k := range kindNames {
		if err := ins("kind_type", row(iv(i), tv(k))); err != nil {
			return err
		}
	}
	for i, k := range companyKinds {
		if err := ins("company_type", row(iv(i), tv(k))); err != nil {
			return err
		}
	}
	for i, r := range roleNames {
		if err := ins("role_type", row(iv(i), tv(r))); err != nil {
			return err
		}
	}
	for i, inf := range infoNames {
		if err := ins("info_type", row(iv(i), tv(inf))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["keyword"]; i++ {
		kw := g.word(2 + g.rng.Intn(2))
		if i%37 == 0 {
			kw = "sequel-" + kw // a recognizable selective family for filters
		}
		if err := ins("keyword", row(iv(i), tv(kw))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["company_name"]; i++ {
		cc := countries[g.rng.Intn(len(countries))]
		name := capitalize(g.word(2)) + " " + []string{"Pictures", "Films", "Studio", "Entertainment", "Productions"}[g.rng.Intn(5)]
		if err := ins("company_name", row(iv(i), tv(name), tv(cc))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["title"]; i++ {
		year := 1930 + g.rng.Intn(95) // 1930..2024, uniform
		kind := g.rng.Intn(nKindType)
		if g.rng.Float64() < 0.55 {
			kind = 0 // most titles are movies
		}
		if err := ins("title", row(iv(i), tv(g.titleText(i)), iv(year), iv(kind))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["name"]; i++ {
		if err := ins("name", row(iv(i), tv(g.personName(i)), tv(genders[g.rng.Intn(len(genders))]))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["movie_companies"]; i++ {
		movie := g.movieRef()
		company := g.rng.Intn(g.sizes["company_name"])
		ctype := g.rng.Intn(nCompanyType)
		note := ""
		if g.rng.Float64() < 0.3 {
			note = "(" + g.word(2) + ")"
		}
		if err := ins("movie_companies", row(iv(i), iv(movie), iv(company), iv(ctype), tv(note))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["cast_info"]; i++ {
		movie := g.movieRef()
		person := g.personRef()
		role := g.rng.Intn(nRoleType)
		note := ""
		if g.rng.Float64() < 0.2 {
			note = "(as " + g.word(2) + ")"
		}
		if err := ins("cast_info", row(iv(i), iv(person), iv(movie), iv(role), tv(note))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["movie_info"]; i++ {
		movie := g.movieRef()
		itype := g.rng.Intn(nInfoType)
		if err := ins("movie_info", row(iv(i), iv(movie), iv(itype), tv(g.infoText()))); err != nil {
			return err
		}
	}
	for i := 0; i < g.sizes["movie_keyword"]; i++ {
		movie := g.movieRef()
		kw := g.rng.Intn(g.sizes["keyword"])
		if err := ins("movie_keyword", row(iv(i), iv(movie), iv(kw))); err != nil {
			return err
		}
	}
	return nil
}

// Package job provides the reproduction's stand-in for the Join Order
// Benchmark (JOB) over the IMDb dataset (Section 6, "Datasets & Workloads").
//
// The real IMDb snapshot is licensed and multi-gigabyte, so this package
// generates a synthetic database with the same schema skeleton, foreign-key
// topology, and skew characteristics that drive the paper's observations:
// movies follow a Zipf popularity distribution, fact-like tables
// (cast_info, movie_companies, movie_info, movie_keyword) reference hub
// relations (title, name, company_name), and text attributes carry enough
// width that denormalized join results amplify size. Query templates q(1b),
// q(2a), ... q(33c) mirror the 33 per-template instances evaluated in the
// paper's Figure 8 / Table 2.
package job

import (
	"fmt"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/types"
)

// Config controls generation.
type Config struct {
	// Scale multiplies every table's base cardinality; 1.0 is the default
	// benchmark size (small enough for CI, large enough for skew to show).
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig is the size the benchmark harness uses.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

// Base cardinalities at Scale = 1.
const (
	nKindType    = 7
	nCompanyType = 4
	nRoleType    = 12
	nInfoType    = 20
	nKeyword     = 2000
	nCompany     = 2000
	nTitle       = 10000
	nName        = 20000
	nMovieComp   = 30000
	nCastInfo    = 80000
	nMovieInfo   = 40000
	nMovieKw     = 30000
)

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Sizes reports the per-table row counts for a config.
func Sizes(cfg Config) map[string]int {
	s := cfg.Scale
	return map[string]int{
		"kind_type":       nKindType,
		"company_type":    nCompanyType,
		"role_type":       nRoleType,
		"info_type":       nInfoType,
		"keyword":         scaled(nKeyword, s),
		"company_name":    scaled(nCompany, s),
		"title":           scaled(nTitle, s),
		"name":            scaled(nName, s),
		"movie_companies": scaled(nMovieComp, s),
		"cast_info":       scaled(nCastInfo, s),
		"movie_info":      scaled(nMovieInfo, s),
		"movie_keyword":   scaled(nMovieKw, s),
	}
}

// defs declares the IMDb-like schema with primary and foreign keys.
func defs() []*catalog.TableDef {
	intc := func(name string) catalog.Column { return catalog.Column{Name: name, Type: types.KindInt} }
	text := func(name string) catalog.Column { return catalog.Column{Name: name, Type: types.KindText} }

	mk := func(name string, pk string, cols ...catalog.Column) *catalog.TableDef {
		d := catalog.MustTableDef(name, cols)
		d.PrimaryKey = []string{pk}
		return d
	}
	fk := func(d *catalog.TableDef, col, refTable, refCol string) {
		d.ForeignKeys = append(d.ForeignKeys, catalog.ForeignKey{
			Columns: []string{col}, RefTable: refTable, RefColumns: []string{refCol},
		})
	}

	kindType := mk("kind_type", "id", intc("id"), text("kind"))
	companyType := mk("company_type", "id", intc("id"), text("kind"))
	roleType := mk("role_type", "id", intc("id"), text("role"))
	infoType := mk("info_type", "id", intc("id"), text("info"))
	keyword := mk("keyword", "id", intc("id"), text("keyword"))
	companyName := mk("company_name", "id", intc("id"), text("name"), text("country_code"))
	title := mk("title", "id", intc("id"), text("title"), intc("production_year"), intc("kind_id"))
	fk(title, "kind_id", "kind_type", "id")
	name := mk("name", "id", intc("id"), text("name"), text("gender"))
	movieCompanies := mk("movie_companies", "id",
		intc("id"), intc("movie_id"), intc("company_id"), intc("company_type_id"), text("note"))
	fk(movieCompanies, "movie_id", "title", "id")
	fk(movieCompanies, "company_id", "company_name", "id")
	fk(movieCompanies, "company_type_id", "company_type", "id")
	castInfo := mk("cast_info", "id",
		intc("id"), intc("person_id"), intc("movie_id"), intc("role_id"), text("note"))
	fk(castInfo, "person_id", "name", "id")
	fk(castInfo, "movie_id", "title", "id")
	fk(castInfo, "role_id", "role_type", "id")
	movieInfo := mk("movie_info", "id",
		intc("id"), intc("movie_id"), intc("info_type_id"), text("info"))
	fk(movieInfo, "movie_id", "title", "id")
	fk(movieInfo, "info_type_id", "info_type", "id")
	movieKeyword := mk("movie_keyword", "id", intc("id"), intc("movie_id"), intc("keyword_id"))
	fk(movieKeyword, "movie_id", "title", "id")
	fk(movieKeyword, "keyword_id", "keyword", "id")

	return []*catalog.TableDef{
		kindType, companyType, roleType, infoType, keyword, companyName,
		title, name, movieCompanies, castInfo, movieInfo, movieKeyword,
	}
}

// Load creates the schema and fills it with generated data.
func Load(d *db.Database, cfg Config) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	tables := make(map[string]inserter)
	for _, def := range defs() {
		t, err := d.CreateTable(def)
		if err != nil {
			return fmt.Errorf("job: %w", err)
		}
		tables[def.Name] = t
	}
	g := newGen(cfg)
	return g.fill(tables)
}

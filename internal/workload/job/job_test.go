package job

import (
	"sort"
	"strings"
	"testing"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
)

func TestQueryCatalog(t *testing.T) {
	qs := Queries()
	if len(qs) != 33 {
		t.Fatalf("expected 33 query templates, got %d", len(qs))
	}
	seen := map[string]bool{}
	cyclic := 0
	for _, q := range qs {
		if seen[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		seen[q.Name] = true
		if q.Cyclic {
			cyclic++
		}
		if _, err := sqlparse.ParseSelect(q.SQL); err != nil {
			t.Errorf("%s does not parse: %v", q.Name, err)
		}
	}
	if cyclic < 3 {
		t.Errorf("want several cyclic templates, have %d", cyclic)
	}
	for _, name := range Table1Queries {
		if _, err := QueryByName(name); err != nil {
			t.Errorf("Table1 query %s missing: %v", name, err)
		}
	}
	if _, err := QueryByName("zz"); err == nil {
		t.Error("unknown query should error")
	}
}

func TestSizesScale(t *testing.T) {
	s1 := Sizes(Config{Scale: 1})
	s2 := Sizes(Config{Scale: 0.5})
	if s2["title"] != s1["title"]/2 {
		t.Errorf("title at 0.5 scale = %d, want %d", s2["title"], s1["title"]/2)
	}
	// Lookup tables never scale.
	if s2["kind_type"] != s1["kind_type"] {
		t.Error("lookup tables must not scale")
	}
	// Tiny scales clamp to at least one row.
	s3 := Sizes(Config{Scale: 0.00001})
	if s3["keyword"] < 1 {
		t.Error("scaled size must be >= 1")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := Config{Scale: 0.02, Seed: 7}
	d1, d2 := db.New(), db.New()
	if err := Load(d1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Load(d2, cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"title", "cast_info", "movie_info"} {
		t1, _ := d1.Table(name)
		t2, _ := d2.Table(name)
		if t1.Len() != t2.Len() {
			t.Fatalf("%s lengths differ", name)
		}
		for i := range t1.Rows {
			if !t1.Rows[i].Equal(t2.Rows[i]) {
				t.Fatalf("%s row %d differs across identical seeds", name, i)
			}
		}
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	d := db.New()
	if err := Load(d, Config{Scale: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	// Every fact-table reference must land on an existing hub row.
	checks := []struct{ fact, col, hub string }{
		{"movie_companies", "movie_id", "title"},
		{"movie_companies", "company_id", "company_name"},
		{"cast_info", "movie_id", "title"},
		{"cast_info", "person_id", "name"},
		{"movie_info", "movie_id", "title"},
		{"movie_keyword", "keyword_id", "keyword"},
	}
	for _, c := range checks {
		factN, err := d.QuerySQL("SELECT COUNT(*) FROM " + c.fact + " AS f")
		if err != nil {
			t.Fatal(err)
		}
		joinN, err := d.QuerySQL("SELECT COUNT(*) FROM " + c.fact + " AS f, " + c.hub +
			" AS h WHERE f." + c.col + " = h.id")
		if err != nil {
			t.Fatal(err)
		}
		if factN.First().Rows[0][0].Int() != joinN.First().Rows[0][0].Int() {
			t.Errorf("%s.%s has dangling references to %s", c.fact, c.col, c.hub)
		}
	}
}

// TestResultDBMatchesDecomposeOnAllTemplates cross-validates the native
// algorithm against the Decompose oracle on every template at a small scale
// (Theorem 4.4 exercised through SQL on realistic join shapes).
func TestResultDBMatchesDecomposeOnAllTemplates(t *testing.T) {
	semi := db.New()
	dec := db.New()
	cfg := Config{Scale: 0.05, Seed: 42}
	if err := Load(semi, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Load(dec, cfg); err != nil {
		t.Fatal(err)
	}
	semi.Strategy = db.StrategySemiJoin
	dec.Strategy = db.StrategyDecompose
	for _, q := range Queries() {
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []db.Mode{db.ModeRDB, db.ModeRDBRP} {
			a, err := semi.QueryResultDB(sel, mode)
			if err != nil {
				t.Fatalf("%s semi mode %d: %v", q.Name, mode, err)
			}
			b, err := dec.QueryResultDB(sel, mode)
			if err != nil {
				t.Fatalf("%s dec mode %d: %v", q.Name, mode, err)
			}
			if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
				t.Errorf("%s mode %d: strategies disagree\nsemi: %.200s\ndec:  %.200s",
					q.Name, mode, fa, fb)
			}
		}
	}
}

func fingerprint(res *db.Result) string {
	var parts []string
	for _, set := range res.Sets {
		rows := make([]string, len(set.Rows))
		for i, r := range set.Rows {
			rows[i] = r.String()
		}
		sort.Strings(rows)
		parts = append(parts, set.Name+"="+strings.Join(rows, ";"))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func TestLoadAndRunAllQueries(t *testing.T) {
	d := db.New()
	cfg := DefaultConfig()
	cfg.Scale = 0.25
	start := time.Now()
	if err := Load(d, cfg); err != nil {
		t.Fatalf("load: %v", err)
	}
	t.Logf("load took %v", time.Since(start))
	for _, q := range Queries() {
		qStart := time.Now()
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.Name, err)
		}
		st, err := d.Query(sel)
		if err != nil {
			t.Fatalf("%s: single-table: %v", q.Name, err)
		}
		rdb, err := d.QueryResultDB(sel, db.ModeRDB)
		if err != nil {
			t.Fatalf("%s: resultdb: %v", q.Name, err)
		}
		if q.Cyclic != (rdb.Stats != nil && rdb.Stats.Cyclic) {
			t.Errorf("%s: cyclic = %v, stats %v", q.Name, q.Cyclic, rdb.Stats)
		}
		rdbSize := 0
		for _, s := range rdb.Sets {
			rdbSize += s.WireSize()
		}
		t.Logf("%-4s ST rows=%7d size=%9d | RDB sets=%d size=%9d | %v | %v",
			q.Name, st.First().NumRows(), st.WireSize(), len(rdb.Sets), rdbSize,
			time.Since(qStart).Round(time.Millisecond), rdb.Stats)
	}
}

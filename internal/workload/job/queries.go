package job

import "fmt"

// Query is one benchmark query template instance.
type Query struct {
	// Name matches the JOB instance naming the paper reports (1b, 2a, ...).
	Name string
	// SQL is the single-table form; annotate with RESULTDB or pass through
	// db.QueryResultDB for the subdatabase forms.
	SQL string
	// Cyclic marks templates whose join graph is JG-cyclic (they exercise
	// the folding path of Algorithm 4).
	Cyclic bool
}

// Table1Queries lists the ten instances the paper details in Tables 1 and 3.
var Table1Queries = []string{"3c", "4a", "9c", "11c", "16b", "18c", "22c", "25b", "28c", "33c"}

// Queries returns the 33 template instances in Figure 8 / Table 2 order.
// Aliases follow JOB conventions: t=title, mc=movie_companies,
// cn=company_name, ct=company_type, ci=cast_info, n=name, rt=role_type,
// mi=movie_info, it=info_type, mk=movie_keyword, k=keyword, kt=kind_type.
func Queries() []Query {
	return queries
}

// QueryByName returns the named template.
func QueryByName(name string) (Query, error) {
	for _, q := range queries {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("job: unknown query %q", name)
}

var queries = []Query{
	{Name: "1b", SQL: `
SELECT mc.note, t.title, t.production_year
FROM company_type AS ct, movie_companies AS mc, title AS t
WHERE ct.kind = 'production companies'
  AND ct.id = mc.company_type_id
  AND mc.movie_id = t.id
  AND t.production_year BETWEEN 2005 AND 2010`},

	{Name: "2a", SQL: `
SELECT t.title
FROM company_name AS cn, movie_companies AS mc, title AS t, movie_keyword AS mk, keyword AS k
WHERE cn.country_code = '[de]'
  AND cn.id = mc.company_id
  AND mc.movie_id = t.id
  AND t.id = mk.movie_id
  AND mk.keyword_id = k.id
  AND k.keyword LIKE 'sequel-%'`},

	{Name: "3c", SQL: `
SELECT t.title
FROM keyword AS k, movie_keyword AS mk, title AS t
WHERE k.keyword LIKE 'sequel-%'
  AND mk.keyword_id = k.id
  AND mk.movie_id = t.id
  AND t.production_year > 1990`},

	{Name: "4a", SQL: `
SELECT mi.info, t.title
FROM info_type AS it, movie_info AS mi, title AS t
WHERE it.id = 11
  AND it.id = mi.info_type_id
  AND mi.movie_id = t.id
  AND t.production_year > 2005`},

	{Name: "5c", SQL: `
SELECT t.title
FROM company_type AS ct, movie_companies AS mc, title AS t
WHERE ct.kind = 'production companies'
  AND mc.company_type_id = ct.id
  AND mc.note LIKE '(%'
  AND t.id = mc.movie_id
  AND t.production_year > 2000`},

	{Name: "6a", Cyclic: true, SQL: `
SELECT k.keyword, n.name, t.title
FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
WHERE k.keyword LIKE 'sequel-%'
  AND n.gender = 'm'
  AND ci.movie_id = t.id
  AND mk.movie_id = t.id
  AND ci.movie_id = mk.movie_id
  AND mk.keyword_id = k.id
  AND ci.person_id = n.id
  AND t.production_year > 2010`},

	{Name: "7a", SQL: `
SELECT n.name, t.title
FROM name AS n, cast_info AS ci, title AS t, movie_info AS mi, info_type AS it
WHERE it.id = 5
  AND mi.info_type_id = it.id
  AND t.id = mi.movie_id
  AND ci.movie_id = t.id
  AND n.id = ci.person_id
  AND n.gender = 'f'
  AND t.production_year BETWEEN 1980 AND 1995`},

	{Name: "8a", SQL: `
SELECT ci.note, n.name, t.title
FROM cast_info AS ci, name AS n, role_type AS rt, title AS t
WHERE rt.role = 'writer'
  AND ci.role_id = rt.id
  AND ci.note LIKE '(as%'
  AND ci.person_id = n.id
  AND ci.movie_id = t.id`},

	{Name: "9c", SQL: `
SELECT n.name, t.title, ci.note
FROM cast_info AS ci, company_name AS cn, movie_companies AS mc, name AS n, role_type AS rt, title AS t
WHERE rt.role = 'actress'
  AND cn.country_code = '[us]'
  AND ci.movie_id = t.id
  AND mc.movie_id = t.id
  AND mc.company_id = cn.id
  AND ci.role_id = rt.id
  AND ci.person_id = n.id
  AND t.production_year > 2005`},

	{Name: "10c", SQL: `
SELECT ci.note, t.title
FROM cast_info AS ci, company_name AS cn, company_type AS ct, movie_companies AS mc, role_type AS rt, title AS t
WHERE ct.kind = 'production companies'
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND cn.country_code = '[us]'
  AND mc.movie_id = t.id
  AND ci.movie_id = t.id
  AND ci.role_id = rt.id
  AND rt.role = 'producer'`},

	{Name: "11c", SQL: `
SELECT cn.name
FROM company_name AS cn, company_type AS ct, movie_companies AS mc, title AS t
WHERE cn.country_code = '[de]'
  AND ct.id = mc.company_type_id
  AND ct.kind = 'distributors'
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND t.production_year > 1995`},

	{Name: "12a", SQL: `
SELECT cn.name, mi.info, t.title
FROM company_name AS cn, company_type AS ct, info_type AS it, movie_companies AS mc, movie_info AS mi, title AS t
WHERE cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND it.id = 3
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mi.info_type_id = it.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND t.production_year BETWEEN 2000 AND 2010`},

	{Name: "13b", SQL: `
SELECT cn.name, mi.info, t.title
FROM company_name AS cn, company_type AS ct, info_type AS it, movie_companies AS mc, movie_info AS mi, title AS t
WHERE cn.country_code = '[de]'
  AND ct.kind = 'distributors'
  AND it.id = 7
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mi.info_type_id = it.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id`},

	{Name: "14a", Cyclic: true, SQL: `
SELECT mi.info, t.title
FROM info_type AS it, keyword AS k, movie_info AS mi, movie_keyword AS mk, title AS t
WHERE it.id = 16
  AND k.keyword LIKE 'sequel-%'
  AND mi.info_type_id = it.id
  AND mi.movie_id = t.id
  AND mk.movie_id = t.id
  AND mi.movie_id = mk.movie_id
  AND mk.keyword_id = k.id`},

	{Name: "15d", SQL: `
SELECT mi.info, t.title
FROM company_name AS cn, info_type AS it, movie_companies AS mc, movie_info AS mi, title AS t
WHERE cn.country_code = '[us]'
  AND it.id = 10
  AND mi.info_type_id = it.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND t.production_year > 1990`},

	{Name: "16b", SQL: `
SELECT k.keyword, n.name, t.title
FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
WHERE ci.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND ci.person_id = n.id
  AND t.production_year > 1980`},

	{Name: "17a", SQL: `
SELECT n.name
FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
WHERE k.keyword LIKE 'sequel-%'
  AND mk.keyword_id = k.id
  AND mk.movie_id = t.id
  AND ci.movie_id = t.id
  AND ci.person_id = n.id
  AND n.gender = 'm'`},

	{Name: "18c", SQL: `
SELECT mi.info, t.title
FROM cast_info AS ci, info_type AS it, movie_info AS mi, role_type AS rt, title AS t
WHERE rt.role = 'producer'
  AND ci.role_id = rt.id
  AND it.id = 7
  AND mi.info_type_id = it.id
  AND ci.movie_id = t.id
  AND mi.movie_id = t.id`},

	{Name: "19a", SQL: `
SELECT n.name, t.title
FROM cast_info AS ci, info_type AS it, movie_info AS mi, name AS n, role_type AS rt, title AS t
WHERE it.id = 2
  AND rt.role = 'actress'
  AND n.gender = 'f'
  AND mi.info_type_id = it.id
  AND ci.role_id = rt.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mi.movie_id = t.id
  AND t.production_year BETWEEN 2000 AND 2015`},

	{Name: "20b", SQL: `
SELECT t.title
FROM cast_info AS ci, kind_type AS kt, keyword AS k, movie_keyword AS mk, title AS t
WHERE kt.kind = 'movie'
  AND kt.id = t.kind_id
  AND k.keyword LIKE 'sequel-%'
  AND mk.keyword_id = k.id
  AND mk.movie_id = t.id
  AND ci.movie_id = t.id
  AND t.production_year > 2000`},

	{Name: "21a", Cyclic: true, SQL: `
SELECT cn.name, mc.note, t.title
FROM company_name AS cn, company_type AS ct, keyword AS k, movie_companies AS mc, movie_keyword AS mk, title AS t
WHERE cn.country_code = '[de]'
  AND ct.kind = 'production companies'
  AND k.keyword LIKE 'sequel-%'
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mk.movie_id = t.id
  AND mc.movie_id = mk.movie_id
  AND mk.keyword_id = k.id`},

	{Name: "22c", SQL: `
SELECT cn.name, mi.info, t.title
FROM company_name AS cn, company_type AS ct, info_type AS it, keyword AS k, movie_companies AS mc, movie_info AS mi, movie_keyword AS mk, title AS t
WHERE cn.country_code = '[us]'
  AND ct.kind = 'production companies'
  AND it.id = 10
  AND k.keyword LIKE 'sequel-%'
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mi.info_type_id = it.id
  AND mk.keyword_id = k.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mk.movie_id = t.id
  AND t.production_year > 1990`},

	{Name: "23a", Cyclic: true, SQL: `
SELECT kt.kind, t.title
FROM info_type AS it, kind_type AS kt, movie_info AS mi, movie_keyword AS mk, title AS t
WHERE kt.kind = 'movie'
  AND kt.id = t.kind_id
  AND it.id = 18
  AND mi.info_type_id = it.id
  AND mi.movie_id = t.id
  AND mk.movie_id = t.id
  AND mi.movie_id = mk.movie_id
  AND t.production_year > 2010`},

	{Name: "24a", SQL: `
SELECT ci.note, n.name, t.title
FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, role_type AS rt, title AS t
WHERE k.keyword LIKE 'sequel-%'
  AND rt.role = 'actor'
  AND ci.role_id = rt.id
  AND ci.person_id = n.id
  AND ci.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND n.gender = 'm'`},

	{Name: "25b", SQL: `
SELECT mi.info, n.name, t.title
FROM cast_info AS ci, info_type AS it, keyword AS k, movie_info AS mi, movie_keyword AS mk, name AS n, title AS t
WHERE it.id = 19
  AND k.keyword LIKE 'sequel-%'
  AND mi.info_type_id = it.id
  AND mk.keyword_id = k.id
  AND ci.movie_id = t.id
  AND mi.movie_id = t.id
  AND mk.movie_id = t.id
  AND ci.person_id = n.id
  AND t.production_year > 2015`},

	{Name: "26a", SQL: `
SELECT ci.note, n.name, t.title
FROM cast_info AS ci, kind_type AS kt, name AS n, role_type AS rt, title AS t
WHERE kt.kind = 'tv series'
  AND kt.id = t.kind_id
  AND rt.role = 'director'
  AND ci.role_id = rt.id
  AND ci.movie_id = t.id
  AND ci.person_id = n.id`},

	{Name: "27a", SQL: `
SELECT cn.name, mi.info, n.name
FROM cast_info AS ci, company_name AS cn, info_type AS it, movie_companies AS mc, movie_info AS mi, name AS n, title AS t
WHERE cn.country_code = '[gb]'
  AND it.id = 4
  AND mi.info_type_id = it.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND ci.movie_id = t.id
  AND ci.person_id = n.id
  AND n.gender = 'f'`},

	{Name: "28c", SQL: `
SELECT ci.note, mi.info, t.title
FROM cast_info AS ci, info_type AS it, kind_type AS kt, movie_info AS mi, title AS t
WHERE kt.kind = 'movie'
  AND kt.id = t.kind_id
  AND it.id = 12
  AND mi.info_type_id = it.id
  AND mi.movie_id = t.id
  AND ci.movie_id = t.id
  AND ci.note LIKE '(as%'`},

	{Name: "29a", Cyclic: true, SQL: `
SELECT ci.note, n.name, t.title
FROM cast_info AS ci, movie_keyword AS mk, keyword AS k, name AS n, title AS t
WHERE k.keyword LIKE 'sequel-%'
  AND mk.keyword_id = k.id
  AND ci.movie_id = t.id
  AND mk.movie_id = t.id
  AND ci.movie_id = mk.movie_id
  AND ci.person_id = n.id
  AND n.gender = 'f'
  AND t.production_year > 2005`},

	{Name: "30c", SQL: `
SELECT mi.info, n.name, t.title
FROM cast_info AS ci, info_type AS it, movie_info AS mi, name AS n, role_type AS rt, title AS t
WHERE it.id = 15
  AND rt.role = 'writer'
  AND mi.info_type_id = it.id
  AND ci.role_id = rt.id
  AND ci.movie_id = t.id
  AND mi.movie_id = t.id
  AND ci.person_id = n.id`},

	{Name: "31a", SQL: `
SELECT ci.note, mi.info, t.title
FROM cast_info AS ci, info_type AS it, movie_info AS mi, role_type AS rt, title AS t
WHERE it.id = 8
  AND rt.role = 'cinematographer'
  AND mi.info_type_id = it.id
  AND ci.role_id = rt.id
  AND ci.movie_id = t.id
  AND mi.movie_id = t.id`},

	{Name: "32a", SQL: `
SELECT k.keyword, t.title
FROM keyword AS k, kind_type AS kt, movie_keyword AS mk, title AS t
WHERE k.keyword LIKE 'sequel-%'
  AND kt.kind = 'episode'
  AND kt.id = t.kind_id
  AND mk.keyword_id = k.id
  AND mk.movie_id = t.id`},

	{Name: "33c", SQL: `
SELECT cn.name, t.title
FROM company_name AS cn, company_type AS ct, kind_type AS kt, movie_companies AS mc, title AS t
WHERE cn.country_code = '[jp]'
  AND ct.kind = 'distributors'
  AND kt.kind = 'tv movie'
  AND kt.id = t.kind_id
  AND mc.company_type_id = ct.id
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND t.production_year > 2000`},
}

// Package ssb implements a Star Schema Benchmark (SSB)-like workload: a
// lineorder fact table with customer, supplier, part, and date dimensions,
// and SPJ adaptations of the thirteen SSB query flights.
//
// The paper's Figure 7 uses a synthetic worst-case star schema; SSB is the
// standard realistic one, and its queries show how SELECT RESULTDB behaves
// on warehouse-shaped joins: the fact table is never projected in full, the
// dimensions compress massively, and the relationship-preserving form is
// dominated by the fact table's foreign keys.
package ssb

import (
	"fmt"
	"math/rand"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/types"
)

// Config sizes the generated database.
type Config struct {
	// Scale multiplies the base cardinalities (1.0 = 30k lineorders).
	Scale float64
	Seed  int64
}

// DefaultConfig is the benchmark-harness size.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 77} }

// Base cardinalities at Scale = 1.
const (
	nCustomer  = 1500
	nSupplier  = 100
	nPart      = 1000
	nDates     = 365 * 4 // four years of days
	nLineorder = 30000
)

func scaled(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 1 {
		v = 1
	}
	return v
}

// Sizes reports per-table row counts for a config.
func Sizes(cfg Config) map[string]int {
	return map[string]int{
		"customer":  scaled(nCustomer, cfg.Scale),
		"supplier":  scaled(nSupplier, cfg.Scale),
		"part":      scaled(nPart, cfg.Scale),
		"dates":     nDates, // the calendar does not scale
		"lineorder": scaled(nLineorder, cfg.Scale),
	}
}

var regions = []string{"AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"}

// nationsOf maps each region to its nations (5 each, as in SSB).
var nationsOf = map[string][]string{
	"AMERICA":     {"UNITED STATES", "CANADA", "BRAZIL", "ARGENTINA", "PERU"},
	"ASIA":        {"CHINA", "JAPAN", "INDIA", "INDONESIA", "VIETNAM"},
	"EUROPE":      {"GERMANY", "FRANCE", "UNITED KINGDOM", "RUSSIA", "ROMANIA"},
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

var mfgrs = []string{"MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"}
var colors = []string{"red", "green", "blue", "ivory", "navy", "plum", "gold", "mint"}

// Load creates and fills the SSB schema.
func Load(d *db.Database, cfg Config) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	sizes := Sizes(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))

	intc := func(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindInt} }
	text := func(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindText} }

	customer := catalog.MustTableDef("customer", []catalog.Column{
		intc("c_id"), text("c_name"), text("c_city"), text("c_nation"), text("c_region"),
	})
	customer.PrimaryKey = []string{"c_id"}
	supplier := catalog.MustTableDef("supplier", []catalog.Column{
		intc("s_id"), text("s_name"), text("s_city"), text("s_nation"), text("s_region"),
	})
	supplier.PrimaryKey = []string{"s_id"}
	part := catalog.MustTableDef("part", []catalog.Column{
		intc("p_id"), text("p_name"), text("p_mfgr"), text("p_category"), text("p_brand"), text("p_color"),
	})
	part.PrimaryKey = []string{"p_id"}
	dates := catalog.MustTableDef("dates", []catalog.Column{
		intc("d_id"), text("d_date"), intc("d_year"), intc("d_month"), intc("d_weeknum"),
	})
	dates.PrimaryKey = []string{"d_id"}
	lineorder := catalog.MustTableDef("lineorder", []catalog.Column{
		intc("lo_id"), intc("lo_custkey"), intc("lo_partkey"), intc("lo_suppkey"),
		intc("lo_orderdate"), intc("lo_quantity"), intc("lo_extendedprice"),
		intc("lo_discount"), intc("lo_revenue"),
	})
	lineorder.PrimaryKey = []string{"lo_id"}
	for _, fk := range []struct{ col, ref, refCol string }{
		{"lo_custkey", "customer", "c_id"},
		{"lo_partkey", "part", "p_id"},
		{"lo_suppkey", "supplier", "s_id"},
		{"lo_orderdate", "dates", "d_id"},
	} {
		lineorder.ForeignKeys = append(lineorder.ForeignKeys, catalog.ForeignKey{
			Columns: []string{fk.col}, RefTable: fk.ref, RefColumns: []string{fk.refCol},
		})
	}

	tabs := map[string]*tableHandle{}
	for _, def := range []*catalog.TableDef{customer, supplier, part, dates, lineorder} {
		t, err := d.CreateTable(def)
		if err != nil {
			return fmt.Errorf("ssb: %w", err)
		}
		tabs[def.Name] = &tableHandle{insert: t.Insert}
	}

	iv := func(v int) types.Value { return types.NewInt(int64(v)) }
	tv := func(s string) types.Value { return types.NewText(s) }

	geo := func() (city, nation, region string) {
		region = regions[rng.Intn(len(regions))]
		nation = nationsOf[region][rng.Intn(5)]
		city = fmt.Sprintf("%s-%d", nation[:3], rng.Intn(10))
		return
	}

	for i := 0; i < sizes["customer"]; i++ {
		city, nation, region := geo()
		err := tabs["customer"].insert(types.Row{
			iv(i), tv(fmt.Sprintf("Customer#%06d", i)), tv(city), tv(nation), tv(region),
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < sizes["supplier"]; i++ {
		city, nation, region := geo()
		err := tabs["supplier"].insert(types.Row{
			iv(i), tv(fmt.Sprintf("Supplier#%04d", i)), tv(city), tv(nation), tv(region),
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < sizes["part"]; i++ {
		mfgr := mfgrs[rng.Intn(len(mfgrs))]
		category := fmt.Sprintf("%s#%d", mfgr, 1+rng.Intn(5))
		brand := fmt.Sprintf("%s#%d", category, 1+rng.Intn(8))
		err := tabs["part"].insert(types.Row{
			iv(i), tv(fmt.Sprintf("part-%05d", i)), tv(mfgr), tv(category), tv(brand),
			tv(colors[rng.Intn(len(colors))]),
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < nDates; i++ {
		year := 1992 + i/365
		doy := i % 365
		month := doy/31 + 1
		err := tabs["dates"].insert(types.Row{
			iv(i), tv(fmt.Sprintf("%04d-%03d", year, doy)), iv(year), iv(month), iv(doy/7 + 1),
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < sizes["lineorder"]; i++ {
		qty := 1 + rng.Intn(50)
		price := 100 + rng.Intn(9900)
		discount := rng.Intn(11)
		err := tabs["lineorder"].insert(types.Row{
			iv(i),
			iv(rng.Intn(sizes["customer"])),
			iv(rng.Intn(sizes["part"])),
			iv(rng.Intn(sizes["supplier"])),
			iv(rng.Intn(nDates)),
			iv(qty), iv(price), iv(discount),
			iv(price * qty * (100 - discount) / 100),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

type tableHandle struct {
	insert func(types.Row) error
}

// Query is one SSB flight instance in SPJ form.
type Query struct {
	Name string
	SQL  string
}

// Queries returns SPJ adaptations of the thirteen SSB flights: the joins
// and filters are the originals; aggregation (out of the paper's SPJ scope)
// is replaced by projecting the aggregation inputs plus the group-by
// attributes — exactly the columns a client-side aggregate would need.
func Queries() []Query {
	return ssbQueries
}

// QueryByName returns the named flight.
func QueryByName(name string) (Query, error) {
	for _, q := range ssbQueries {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("ssb: unknown query %q", name)
}

var ssbQueries = []Query{
	{"q1.1", `SELECT lo.lo_extendedprice, lo.lo_discount
FROM lineorder AS lo, dates AS d
WHERE lo.lo_orderdate = d.d_id AND d.d_year = 1993
  AND lo.lo_discount BETWEEN 1 AND 3 AND lo.lo_quantity < 25`},
	{"q1.2", `SELECT lo.lo_extendedprice, lo.lo_discount
FROM lineorder AS lo, dates AS d
WHERE lo.lo_orderdate = d.d_id AND d.d_year = 1994 AND d.d_month = 1
  AND lo.lo_discount BETWEEN 4 AND 6 AND lo.lo_quantity BETWEEN 26 AND 35`},
	{"q1.3", `SELECT lo.lo_extendedprice, lo.lo_discount
FROM lineorder AS lo, dates AS d
WHERE lo.lo_orderdate = d.d_id AND d.d_year = 1994 AND d.d_weeknum = 6
  AND lo.lo_discount BETWEEN 5 AND 7 AND lo.lo_quantity BETWEEN 26 AND 35`},
	{"q2.1", `SELECT lo.lo_revenue, d.d_year, p.p_brand
FROM lineorder AS lo, dates AS d, part AS p, supplier AS s
WHERE lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id AND lo.lo_suppkey = s.s_id
  AND p.p_category = 'MFGR#1#2' AND s.s_region = 'AMERICA'`},
	{"q2.2", `SELECT lo.lo_revenue, d.d_year, p.p_brand
FROM lineorder AS lo, dates AS d, part AS p, supplier AS s
WHERE lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id AND lo.lo_suppkey = s.s_id
  AND p.p_brand BETWEEN 'MFGR#2#2#2' AND 'MFGR#2#4#5' AND s.s_region = 'ASIA'`},
	{"q2.3", `SELECT lo.lo_revenue, d.d_year, p.p_brand
FROM lineorder AS lo, dates AS d, part AS p, supplier AS s
WHERE lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id AND lo.lo_suppkey = s.s_id
  AND p.p_brand = 'MFGR#3#3#3' AND s.s_region = 'EUROPE'`},
	{"q3.1", `SELECT c.c_nation, s.s_nation, d.d_year, lo.lo_revenue
FROM customer AS c, lineorder AS lo, supplier AS s, dates AS d
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id AND lo.lo_orderdate = d.d_id
  AND c.c_region = 'ASIA' AND s.s_region = 'ASIA'
  AND d.d_year BETWEEN 1992 AND 1994`},
	{"q3.2", `SELECT c.c_city, s.s_city, d.d_year, lo.lo_revenue
FROM customer AS c, lineorder AS lo, supplier AS s, dates AS d
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id AND lo.lo_orderdate = d.d_id
  AND c.c_nation = 'CHINA' AND s.s_nation = 'CHINA'
  AND d.d_year BETWEEN 1992 AND 1994`},
	{"q3.3", `SELECT c.c_city, s.s_city, d.d_year, lo.lo_revenue
FROM customer AS c, lineorder AS lo, supplier AS s, dates AS d
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id AND lo.lo_orderdate = d.d_id
  AND c.c_city = 'CHI-1' AND s.s_nation = 'CHINA'`},
	{"q3.4", `SELECT c.c_city, s.s_city, d.d_year, lo.lo_revenue
FROM customer AS c, lineorder AS lo, supplier AS s, dates AS d
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id AND lo.lo_orderdate = d.d_id
  AND c.c_city = 'UNI-1' AND s.s_city = 'UNI-2' AND d.d_year = 1993`},
	{"q4.1", `SELECT d.d_year, c.c_nation, lo.lo_revenue
FROM customer AS c, dates AS d, lineorder AS lo, part AS p, supplier AS s
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id
  AND lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id
  AND c.c_region = 'AMERICA' AND s.s_region = 'AMERICA'
  AND p.p_mfgr IN ('MFGR#1', 'MFGR#2')`},
	{"q4.2", `SELECT d.d_year, s.s_nation, p.p_category, lo.lo_revenue
FROM customer AS c, dates AS d, lineorder AS lo, part AS p, supplier AS s
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id
  AND lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id
  AND c.c_region = 'AMERICA' AND s.s_region = 'AMERICA'
  AND d.d_year BETWEEN 1994 AND 1995
  AND p.p_mfgr IN ('MFGR#1', 'MFGR#2')`},
	{"q4.3", `SELECT d.d_year, s.s_city, p.p_brand, lo.lo_revenue
FROM customer AS c, dates AS d, lineorder AS lo, part AS p, supplier AS s
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id
  AND lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id
  AND c.c_region = 'AMERICA' AND s.s_nation = 'UNITED STATES'
  AND d.d_year BETWEEN 1994 AND 1995 AND p.p_category = 'MFGR#1#4'`},
}

// AggregateQueries returns the true (aggregate) form of selected SSB
// flights, exercising the engine's GROUP BY extension. Each pairs with the
// SPJ flight of the same name: the SPJ form returns exactly the aggregation
// inputs, so a client can compute the same aggregate from a subdatabase
// after the post-join.
func AggregateQueries() []Query {
	return []Query{
		{"q1.1-agg", `SELECT SUM(lo.lo_extendedprice * lo.lo_discount) AS revenue
FROM lineorder AS lo, dates AS d
WHERE lo.lo_orderdate = d.d_id AND d.d_year = 1993
  AND lo.lo_discount BETWEEN 1 AND 3 AND lo.lo_quantity < 25`},
		{"q2.1-agg", `SELECT SUM(lo.lo_revenue), d.d_year, p.p_brand
FROM lineorder AS lo, dates AS d, part AS p, supplier AS s
WHERE lo.lo_orderdate = d.d_id AND lo.lo_partkey = p.p_id AND lo.lo_suppkey = s.s_id
  AND p.p_category = 'MFGR#1#2' AND s.s_region = 'AMERICA'
GROUP BY d.d_year, p.p_brand
ORDER BY d.d_year, p.p_brand`},
		{"q3.1-agg", `SELECT c.c_nation, s.s_nation, d.d_year, SUM(lo.lo_revenue) AS revenue
FROM customer AS c, lineorder AS lo, supplier AS s, dates AS d
WHERE lo.lo_custkey = c.c_id AND lo.lo_suppkey = s.s_id AND lo.lo_orderdate = d.d_id
  AND c.c_region = 'ASIA' AND s.s_region = 'ASIA'
  AND d.d_year BETWEEN 1992 AND 1994
GROUP BY c.c_nation, s.s_nation, d.d_year
HAVING SUM(lo.lo_revenue) > 0
ORDER BY d.d_year`},
	}
}

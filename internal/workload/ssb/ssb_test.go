package ssb

import (
	"sort"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
)

func loadSSB(t *testing.T, scale float64) *db.Database {
	t.Helper()
	d := db.New()
	if err := Load(d, Config{Scale: scale, Seed: 77}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadShapes(t *testing.T) {
	d := loadSSB(t, 0.2)
	sizes := Sizes(Config{Scale: 0.2})
	for name, want := range sizes {
		tab, err := d.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Len() != want {
			t.Errorf("%s rows = %d, want %d", name, tab.Len(), want)
		}
	}
	// FK integrity: every lineorder joins each dimension.
	lo, _ := d.Table("lineorder")
	for _, dim := range []struct{ col, tab, key string }{
		{"lo_custkey", "customer", "c_id"},
		{"lo_partkey", "part", "p_id"},
		{"lo_suppkey", "supplier", "s_id"},
		{"lo_orderdate", "dates", "d_id"},
	} {
		res, err := d.QuerySQL("SELECT COUNT(*) FROM lineorder AS lo, " + dim.tab +
			" AS x WHERE lo." + dim.col + " = x." + dim.key)
		if err != nil {
			t.Fatal(err)
		}
		if res.First().Rows[0][0].Int() != int64(lo.Len()) {
			t.Errorf("dangling %s", dim.col)
		}
	}
}

func TestAllFlightsRunBothWays(t *testing.T) {
	d := loadSSB(t, 0.2)
	if len(Queries()) != 13 {
		t.Fatalf("flights = %d, want 13", len(Queries()))
	}
	nonEmpty := 0
	for _, q := range Queries() {
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.Name, err)
		}
		st, err := d.Query(sel)
		if err != nil {
			t.Fatalf("%s: single table: %v", q.Name, err)
		}
		rdb, err := d.QueryResultDB(sel, db.ModeRDB)
		if err != nil {
			t.Fatalf("%s: resultdb: %v", q.Name, err)
		}
		rdbrp, err := d.QueryResultDB(sel, db.ModeRDBRP)
		if err != nil {
			t.Fatalf("%s: rdbrp: %v", q.Name, err)
		}
		if st.First().NumRows() > 0 {
			nonEmpty++
		}
		// RDB never larger than RDBRP.
		if rdb.WireSize() > rdbrp.WireSize() {
			t.Errorf("%s: RDB %d > RDBRP %d", q.Name, rdb.WireSize(), rdbrp.WireSize())
		}
	}
	if nonEmpty < 8 {
		t.Errorf("only %d of 13 flights return rows; generator filters misaligned", nonEmpty)
	}
}

// TestDimensionCompression: SSB's whole point for ResultDB — dimension
// attributes repeat once per matching fact row in the single table, but
// appear once per entity in the subdatabase.
func TestDimensionCompression(t *testing.T) {
	d := loadSSB(t, 0.5)
	q, err := QueryByName("q3.1")
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := sqlparse.ParseSelect(q.SQL)
	st, err := d.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	rdb, err := d.QueryResultDB(sel, db.ModeRDB)
	if err != nil {
		t.Fatal(err)
	}
	if st.First().NumRows() < 100 {
		t.Skip("q3.1 too selective at this scale")
	}
	c := rdb.Set("c")
	if c == nil {
		t.Fatal("missing customer set")
	}
	if c.NumRows() >= st.First().NumRows() {
		t.Errorf("customer relation (%d) should be far smaller than the join (%d)",
			c.NumRows(), st.First().NumRows())
	}
	// Distinct nations only: at most 5 per region.
	if c.NumRows() > 5 {
		t.Errorf("ASIA customers project to %d distinct nations, want <= 5", c.NumRows())
	}
}

func TestStrategiesAgreeOnSSB(t *testing.T) {
	semi := loadSSB(t, 0.2)
	dec := loadSSB(t, 0.2)
	dec.Strategy = db.StrategyDecompose
	for _, q := range Queries() {
		sel, _ := sqlparse.ParseSelect(q.SQL)
		a, err := semi.QueryResultDB(sel, db.ModeRDB)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		b, err := dec.QueryResultDB(sel, db.ModeRDB)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if fp(a) != fp(b) {
			t.Errorf("%s: strategies disagree", q.Name)
		}
	}
}

func fp(res *db.Result) string {
	var parts []string
	for _, set := range res.Sets {
		rows := make([]string, len(set.Rows))
		for i, r := range set.Rows {
			rows[i] = r.String()
		}
		sort.Strings(rows)
		parts = append(parts, set.Name+"="+strings.Join(rows, ";"))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func TestQueryByNameErrors(t *testing.T) {
	if _, err := QueryByName("q9.9"); err == nil {
		t.Error("unknown flight should error")
	}
}

// TestAggregateFlightsMatchManualAggregation: the GROUP BY form of a flight
// must equal aggregating the SPJ form's rows by hand — which is exactly
// what a client computing over a shipped subdatabase would do.
func TestAggregateFlightsMatchManualAggregation(t *testing.T) {
	d := loadSSB(t, 0.5)
	for _, aq := range AggregateQueries() {
		sel, err := sqlparse.ParseSelect(aq.SQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", aq.Name, err)
		}
		res, err := d.Query(sel)
		if err != nil {
			t.Fatalf("%s: %v", aq.Name, err)
		}
		if res.First() == nil {
			t.Fatalf("%s: no result", aq.Name)
		}
	}

	// Detailed check for q3.1: group the SPJ rows manually.
	spj, err := QueryByName("q3.1")
	if err != nil {
		t.Fatal(err)
	}
	spjSel, _ := sqlparse.ParseSelect(spj.SQL)
	rows, err := d.Query(spjSel)
	if err != nil {
		t.Fatal(err)
	}
	manual := map[string]int64{}
	for _, r := range rows.First().Rows {
		// c_nation, s_nation, d_year, lo_revenue
		key := r[0].Text() + "|" + r[1].Text() + "|" + r[2].String()
		manual[key] += r[3].Int()
	}
	aggSel, _ := sqlparse.ParseSelect(AggregateQueries()[2].SQL)
	agg, err := d.Query(aggSel)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.First().Rows) != len(manual) {
		t.Fatalf("groups = %d, manual %d", len(agg.First().Rows), len(manual))
	}
	for _, r := range agg.First().Rows {
		key := r[0].Text() + "|" + r[1].Text() + "|" + r[2].String()
		if manual[key] != r[3].Int() {
			t.Errorf("group %s: %d != %d", key, r[3].Int(), manual[key])
		}
	}
}

// Package storage provides in-memory, row-major physical tables plus hash
// indexes. A Table pairs a catalog.TableDef with its rows and is the unit the
// executor scans and the semi-join reducer filters.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"resultdb/internal/catalog"
	"resultdb/internal/colstore"
	"resultdb/internal/types"
)

// Table is an in-memory relation: a definition plus rows.
//
// Under the MVCC regime (internal/db), a *Table is one published version of
// a relation: once a version is visible to readers it is never mutated again.
// Writers derive a successor with BeginVersion, apply their batch to the
// draft, and publish the draft as the next version — readers holding the old
// pointer keep a stable, fully consistent row set with zero locking. The row
// prefix is shared between versions (append-only storage), so deriving a
// version is O(1) and appending amortizes exactly like a plain slice.
//
// Direct mutation (Insert/InsertAll on a published table) remains supported
// for the single-threaded bulk-load paths (workload generators, CSV import,
// snapshot restore) that run before any concurrent traffic; it must never be
// used on a table reachable by a concurrent reader. The lazily built derived
// caches (Columns, Index) are internally locked because concurrent readers
// of the *same version* may race to build them.
type Table struct {
	Def  *catalog.TableDef
	Rows []types.Row

	indexes map[string]*HashIndex // keyed by canonical column list

	// gen counts invalidations; the column-vector cache is tagged with the
	// generation it was built from and discarded when the table moves on.
	gen uint64

	colMu   sync.Mutex
	cols    *colstore.Frame
	colsGen uint64
}

// NewTable returns an empty table for def.
func NewTable(def *catalog.TableDef) *Table {
	return &Table{Def: def}
}

// BeginVersion derives a mutable successor of a published version: it shares
// t's row prefix (copy-on-write — the parent's header caps what readers can
// see, so appends to the draft never become visible through old snapshots),
// starts one generation later, and carries none of the parent's derived
// caches. The caller applies one mutation batch to the draft and publishes
// it; a draft discarded on error simply never becomes visible.
//
// Only one draft may be derived from the newest version at a time (the
// database's writer lock enforces this): successive versions share one
// growing backing array, and two concurrent drafts of the same parent would
// race on its append region.
func (t *Table) BeginVersion() *Table {
	return &Table{Def: t.Def, Rows: t.Rows, gen: t.gen + 1}
}

// invalidate discards derived structures (hash indexes, column vectors)
// after the row set changed. One call per logical mutation batch.
func (t *Table) invalidate() {
	t.indexes = nil
	t.gen++
}

// Generation returns the table's invalidation counter. It changes whenever
// the row set changes, so derived caches can detect staleness in O(1).
func (t *Table) Generation() uint64 { return t.gen }

// insertRow validates and appends a row without invalidating caches; callers
// invalidate once per batch.
func (t *Table) insertRow(row types.Row) error {
	if len(row) != len(t.Def.Columns) {
		return fmt.Errorf("storage: table %q expects %d values, got %d",
			t.Def.Name, len(t.Def.Columns), len(row))
	}
	out := make(types.Row, len(row))
	for i, v := range row {
		col := t.Def.Columns[i]
		if v.IsNull() && col.NotNull {
			return fmt.Errorf("storage: NULL in NOT NULL column %s.%s", t.Def.Name, col.Name)
		}
		cv, err := types.Coerce(v, col.Type)
		if err != nil {
			return fmt.Errorf("storage: column %s.%s: %w", t.Def.Name, col.Name, err)
		}
		out[i] = cv
	}
	t.Rows = append(t.Rows, out)
	return nil
}

// Insert validates and appends a row. Values are coerced to column types;
// arity and NOT NULL violations are errors.
func (t *Table) Insert(row types.Row) error {
	if err := t.insertRow(row); err != nil {
		return err
	}
	t.invalidate()
	return nil
}

// InsertAll appends rows, stopping at the first error. Derived caches are
// invalidated once per batch, not once per row, so bulk loads do not
// repeatedly discard (and any interleaved reader rebuild) indexes.
func (t *Table) InsertAll(rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	defer t.invalidate()
	for _, r := range rows {
		if err := t.insertRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Clone returns a copy sharing row values but not the row slice, so the copy
// can be filtered/reduced without disturbing the original.
func (t *Table) Clone() *Table {
	rows := make([]types.Row, len(t.Rows))
	copy(rows, t.Rows)
	return &Table{Def: t.Def, Rows: rows}
}

// WireSize returns the total result-set size in bytes under the paper's
// Section 6.1 accounting.
func (t *Table) WireSize() int {
	n := 0
	for _, r := range t.Rows {
		n += r.WireSize()
	}
	return n
}

// SortRows orders rows lexicographically in place, for deterministic output.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		return types.CompareRows(t.Rows[i], t.Rows[j]) < 0
	})
}

// Distinct removes duplicate rows in place, preserving first-seen order.
func (t *Table) Distinct() {
	seen := types.NewRowSet()
	out := t.Rows[:0:0]
	for _, r := range t.Rows {
		if seen.Add(r) {
			out = append(out, r)
		}
	}
	t.Rows = out
	t.invalidate()
}

// Columns returns the table's columnar image (typed vectors, dictionary-
// encoded TEXT, null bitmaps), building it lazily on first use and caching
// it until the next mutation. Safe for concurrent readers: the build is
// guarded by a mutex and tagged with the generation it was built from, the
// same counter that invalidates hash indexes.
func (t *Table) Columns() *colstore.Frame {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.cols != nil && t.colsGen == t.gen && t.cols.Rows() == len(t.Rows) {
		return t.cols
	}
	kinds := make([]types.Kind, len(t.Def.Columns))
	for i, c := range t.Def.Columns {
		kinds[i] = c.Type
	}
	t.cols = colstore.NewFrame(kinds, t.Rows)
	t.colsGen = t.gen
	return t.cols
}

// HashIndex maps composite key hashes to row positions; used by hash joins
// and semi-join reductions.
type HashIndex struct {
	cols    []int
	buckets map[uint64][]int
	table   *Table
}

// Index returns (building if necessary) a hash index on the given column
// positions of t.
func (t *Table) Index(cols []int) *HashIndex {
	key := fmt.Sprint(cols)
	if t.indexes == nil {
		t.indexes = make(map[string]*HashIndex)
	}
	if idx, ok := t.indexes[key]; ok {
		return idx
	}
	idx := &HashIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[uint64][]int),
		table:   t,
	}
	for pos, r := range t.Rows {
		if rowHasNull(r, cols) {
			continue // NULL keys never join
		}
		h := r.HashKey(cols)
		idx.buckets[h] = append(idx.buckets[h], pos)
	}
	t.indexes[key] = idx
	return idx
}

// Probe returns the positions of rows whose key columns equal probe's key
// columns (probeCols in the probing row). NULL probes match nothing.
func (idx *HashIndex) Probe(probe types.Row, probeCols []int) []int {
	if rowHasNull(probe, probeCols) {
		return nil
	}
	h := probe.HashKey(probeCols)
	candidates := idx.buckets[h]
	if len(candidates) == 0 {
		return nil
	}
	out := make([]int, 0, len(candidates))
	for _, pos := range candidates {
		if keysEqual(idx.table.Rows[pos], idx.cols, probe, probeCols) {
			out = append(out, pos)
		}
	}
	return out
}

// Contains reports whether any indexed row matches probe's key.
func (idx *HashIndex) Contains(probe types.Row, probeCols []int) bool {
	if rowHasNull(probe, probeCols) {
		return false
	}
	h := probe.HashKey(probeCols)
	for _, pos := range idx.buckets[h] {
		if keysEqual(idx.table.Rows[pos], idx.cols, probe, probeCols) {
			return true
		}
	}
	return false
}

func rowHasNull(r types.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

func keysEqual(a types.Row, aCols []int, b types.Row, bCols []int) bool {
	for i := range aCols {
		if !types.Equal(a[aCols[i]], b[bCols[i]]) {
			return false
		}
	}
	return true
}

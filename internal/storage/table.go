// Package storage provides in-memory, row-major physical tables plus hash
// indexes. A Table pairs a catalog.TableDef with its rows and is the unit the
// executor scans and the semi-join reducer filters.
package storage

import (
	"fmt"
	"sort"

	"resultdb/internal/catalog"
	"resultdb/internal/types"
)

// Table is an in-memory relation: a definition plus rows.
//
// Tables are not internally synchronized; internal/db serializes access with
// its transaction lock.
type Table struct {
	Def  *catalog.TableDef
	Rows []types.Row

	indexes map[string]*HashIndex // keyed by canonical column list
}

// NewTable returns an empty table for def.
func NewTable(def *catalog.TableDef) *Table {
	return &Table{Def: def}
}

// Insert validates and appends a row. Values are coerced to column types;
// arity and NOT NULL violations are errors.
func (t *Table) Insert(row types.Row) error {
	if len(row) != len(t.Def.Columns) {
		return fmt.Errorf("storage: table %q expects %d values, got %d",
			t.Def.Name, len(t.Def.Columns), len(row))
	}
	out := make(types.Row, len(row))
	for i, v := range row {
		col := t.Def.Columns[i]
		if v.IsNull() && col.NotNull {
			return fmt.Errorf("storage: NULL in NOT NULL column %s.%s", t.Def.Name, col.Name)
		}
		cv, err := types.Coerce(v, col.Type)
		if err != nil {
			return fmt.Errorf("storage: column %s.%s: %w", t.Def.Name, col.Name, err)
		}
		out[i] = cv
	}
	t.Rows = append(t.Rows, out)
	t.indexes = nil // invalidate
	return nil
}

// InsertAll appends rows, stopping at the first error.
func (t *Table) InsertAll(rows []types.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Clone returns a copy sharing row values but not the row slice, so the copy
// can be filtered/reduced without disturbing the original.
func (t *Table) Clone() *Table {
	rows := make([]types.Row, len(t.Rows))
	copy(rows, t.Rows)
	return &Table{Def: t.Def, Rows: rows}
}

// WireSize returns the total result-set size in bytes under the paper's
// Section 6.1 accounting.
func (t *Table) WireSize() int {
	n := 0
	for _, r := range t.Rows {
		n += r.WireSize()
	}
	return n
}

// SortRows orders rows lexicographically in place, for deterministic output.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		return types.CompareRows(t.Rows[i], t.Rows[j]) < 0
	})
}

// Distinct removes duplicate rows in place, preserving first-seen order.
func (t *Table) Distinct() {
	seen := types.NewRowSet()
	out := t.Rows[:0:0]
	for _, r := range t.Rows {
		if seen.Add(r) {
			out = append(out, r)
		}
	}
	t.Rows = out
	t.indexes = nil
}

// HashIndex maps composite key hashes to row positions; used by hash joins
// and semi-join reductions.
type HashIndex struct {
	cols    []int
	buckets map[uint64][]int
	table   *Table
}

// Index returns (building if necessary) a hash index on the given column
// positions of t.
func (t *Table) Index(cols []int) *HashIndex {
	key := fmt.Sprint(cols)
	if t.indexes == nil {
		t.indexes = make(map[string]*HashIndex)
	}
	if idx, ok := t.indexes[key]; ok {
		return idx
	}
	idx := &HashIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[uint64][]int),
		table:   t,
	}
	for pos, r := range t.Rows {
		if rowHasNull(r, cols) {
			continue // NULL keys never join
		}
		h := r.HashKey(cols)
		idx.buckets[h] = append(idx.buckets[h], pos)
	}
	t.indexes[key] = idx
	return idx
}

// Probe returns the positions of rows whose key columns equal probe's key
// columns (probeCols in the probing row). NULL probes match nothing.
func (idx *HashIndex) Probe(probe types.Row, probeCols []int) []int {
	if rowHasNull(probe, probeCols) {
		return nil
	}
	h := probe.HashKey(probeCols)
	candidates := idx.buckets[h]
	if len(candidates) == 0 {
		return nil
	}
	out := make([]int, 0, len(candidates))
	for _, pos := range candidates {
		if keysEqual(idx.table.Rows[pos], idx.cols, probe, probeCols) {
			out = append(out, pos)
		}
	}
	return out
}

// Contains reports whether any indexed row matches probe's key.
func (idx *HashIndex) Contains(probe types.Row, probeCols []int) bool {
	if rowHasNull(probe, probeCols) {
		return false
	}
	h := probe.HashKey(probeCols)
	for _, pos := range idx.buckets[h] {
		if keysEqual(idx.table.Rows[pos], idx.cols, probe, probeCols) {
			return true
		}
	}
	return false
}

func rowHasNull(r types.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

func keysEqual(a types.Row, aCols []int, b types.Row, bCols []int) bool {
	for i := range aCols {
		if !types.Equal(a[aCols[i]], b[bCols[i]]) {
			return false
		}
	}
	return true
}

package storage

import (
	"math/rand"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/types"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	def := catalog.MustTableDef("t", []catalog.Column{
		{Name: "id", Type: types.KindInt, NotNull: true},
		{Name: "name", Type: types.KindText},
		{Name: "score", Type: types.KindFloat},
	})
	def.PrimaryKey = []string{"id"}
	return NewTable(def)
}

func TestInsertValidation(t *testing.T) {
	tab := newTable(t)
	ok := types.Row{types.NewInt(1), types.NewText("a"), types.NewFloat(1.5)}
	if err := tab.Insert(ok); err != nil {
		t.Fatal(err)
	}
	// Arity mismatch.
	if err := tab.Insert(types.Row{types.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	// NOT NULL violation.
	if err := tab.Insert(types.Row{types.Null(), types.NewText("a"), types.Null()}); err == nil {
		t.Error("NULL in NOT NULL column accepted")
	}
	// Coercion: int into float column.
	if err := tab.Insert(types.Row{types.NewInt(2), types.Null(), types.NewInt(3)}); err != nil {
		t.Errorf("int->float coercion failed: %v", err)
	}
	if got := tab.Rows[1][2]; got.Kind() != types.KindFloat || got.Float() != 3 {
		t.Errorf("coerced value = %v", got)
	}
	// Type error: text into int column.
	if err := tab.Insert(types.Row{types.NewText("x"), types.Null(), types.Null()}); err == nil {
		t.Error("text into int column accepted")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

func TestCloneIsolation(t *testing.T) {
	tab := newTable(t)
	if err := tab.InsertAll([]types.Row{
		{types.NewInt(1), types.NewText("a"), types.NewFloat(0)},
		{types.NewInt(2), types.NewText("b"), types.NewFloat(0)},
	}); err != nil {
		t.Fatal(err)
	}
	c := tab.Clone()
	c.Rows = c.Rows[:1]
	if tab.Len() != 2 {
		t.Error("Clone's truncation affected the original")
	}
}

func TestDistinct(t *testing.T) {
	tab := newTable(t)
	rows := []types.Row{
		{types.NewInt(1), types.NewText("a"), types.NewFloat(1)},
		{types.NewInt(1), types.NewText("a"), types.NewFloat(1)},
		{types.NewInt(2), types.NewText("a"), types.NewFloat(1)},
	}
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	tab.Distinct()
	if tab.Len() != 2 {
		t.Errorf("Distinct left %d rows, want 2", tab.Len())
	}
	// First-seen order preserved.
	if tab.Rows[0][0].Int() != 1 || tab.Rows[1][0].Int() != 2 {
		t.Errorf("Distinct reordered rows: %v", tab.Rows)
	}
}

func TestSortRowsAndWireSize(t *testing.T) {
	tab := newTable(t)
	if err := tab.InsertAll([]types.Row{
		{types.NewInt(2), types.NewText("bb"), types.NewFloat(0)},
		{types.NewInt(1), types.NewText("a"), types.NewFloat(0)},
	}); err != nil {
		t.Fatal(err)
	}
	tab.SortRows()
	if tab.Rows[0][0].Int() != 1 {
		t.Error("SortRows did not order by first column")
	}
	// id(8) + name(2) + score(8) + id(8) + name(1) + score(8)
	if got := tab.WireSize(); got != 35 {
		t.Errorf("WireSize = %d, want 35", got)
	}
}

func TestHashIndexProbe(t *testing.T) {
	tab := newTable(t)
	for i := 0; i < 100; i++ {
		err := tab.Insert(types.Row{
			types.NewInt(int64(i)),
			types.NewText("n"),
			types.NewFloat(float64(i % 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	idx := tab.Index([]int{2}) // score has 10 distinct values
	probe := types.Row{types.NewFloat(3)}
	hits := idx.Probe(probe, []int{0})
	if len(hits) != 10 {
		t.Errorf("Probe hits = %d, want 10", len(hits))
	}
	for _, pos := range hits {
		if tab.Rows[pos][2].Float() != 3 {
			t.Errorf("false positive at %d", pos)
		}
	}
	if !idx.Contains(probe, []int{0}) {
		t.Error("Contains misses present key")
	}
	if idx.Contains(types.Row{types.NewFloat(42)}, []int{0}) {
		t.Error("Contains finds absent key")
	}
	// NULL probes never match.
	if idx.Contains(types.Row{types.Null()}, []int{0}) {
		t.Error("NULL probe matched")
	}
}

func TestIndexInvalidatedOnInsert(t *testing.T) {
	tab := newTable(t)
	if err := tab.Insert(types.Row{types.NewInt(1), types.Null(), types.Null()}); err != nil {
		t.Fatal(err)
	}
	idx := tab.Index([]int{0})
	if !idx.Contains(types.Row{types.NewInt(1)}, []int{0}) {
		t.Fatal("index missing row")
	}
	if err := tab.Insert(types.Row{types.NewInt(2), types.Null(), types.Null()}); err != nil {
		t.Fatal(err)
	}
	idx2 := tab.Index([]int{0})
	if !idx2.Contains(types.Row{types.NewInt(2)}, []int{0}) {
		t.Error("index not rebuilt after insert")
	}
}

func TestIndexSkipsNullKeys(t *testing.T) {
	tab := newTable(t)
	if err := tab.InsertAll([]types.Row{
		{types.NewInt(1), types.Null(), types.Null()},
		{types.NewInt(2), types.NewText("x"), types.Null()},
	}); err != nil {
		t.Fatal(err)
	}
	idx := tab.Index([]int{1}) // name column: one NULL, one "x"
	if got := idx.Probe(types.Row{types.NewText("x")}, []int{0}); len(got) != 1 {
		t.Errorf("probe = %v", got)
	}
}

// TestHashIndexRandomized cross-checks Probe against a linear scan.
func TestHashIndexRandomized(t *testing.T) {
	tab := newTable(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		err := tab.Insert(types.Row{
			types.NewInt(int64(rng.Intn(50))),
			types.NewText(string(rune('a' + rng.Intn(5)))),
			types.NewFloat(float64(rng.Intn(5))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	idx := tab.Index([]int{0, 1})
	for trial := 0; trial < 200; trial++ {
		probe := types.Row{
			types.NewInt(int64(rng.Intn(60))),
			types.NewText(string(rune('a' + rng.Intn(6)))),
		}
		got := idx.Probe(probe, []int{0, 1})
		want := 0
		for _, r := range tab.Rows {
			if types.Equal(r[0], probe[0]) && types.Equal(r[1], probe[1]) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("probe %v: got %d hits, scan says %d", probe, len(got), want)
		}
	}
}

// TestColumnsCacheAndGeneration: the columnar frame is built lazily, cached
// until the table changes, and invalidated by the same generation counter as
// the hash indexes. A batch InsertAll bumps the generation exactly once.
func TestColumnsCacheAndGeneration(t *testing.T) {
	tab := newTable(t)
	rows := []types.Row{
		{types.NewInt(1), types.NewText("a"), types.NewFloat(1.5)},
		{types.NewInt(2), types.NewText("b"), types.Null()},
		{types.NewInt(3), types.Null(), types.NewFloat(3.5)},
	}
	g0 := tab.Generation()
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	if got := tab.Generation(); got != g0+1 {
		t.Fatalf("InsertAll of %d rows bumped generation %d times, want once", len(rows), got-g0)
	}

	f := tab.Columns()
	if f.Rows() != 3 {
		t.Fatalf("frame rows = %d, want 3", f.Rows())
	}
	if tab.Columns() != f {
		t.Fatal("Columns() rebuilt the frame without any table change")
	}

	// A single insert invalidates; the next Columns() sees the new row.
	if err := tab.Insert(types.Row{types.NewInt(4), types.NewText("a"), types.Null()}); err != nil {
		t.Fatal(err)
	}
	f2 := tab.Columns()
	if f2 == f {
		t.Fatal("Columns() returned a stale frame after Insert")
	}
	if f2.Rows() != 4 {
		t.Fatalf("frame rows after insert = %d, want 4", f2.Rows())
	}
	// Frame values reconstruct the stored rows exactly.
	for j, row := range tab.Rows {
		for c := range row {
			if !types.Equal(f2.Col(c).Value(j), row[c]) {
				t.Fatalf("frame[%d][%d] = %v, want %v", c, j, f2.Col(c).Value(j), row[c])
			}
		}
	}

	// Distinct mutates rows in place and must invalidate too.
	tab.Distinct()
	f3 := tab.Columns()
	if f3.Rows() != len(tab.Rows) {
		t.Fatalf("frame rows after Distinct = %d, want %d", f3.Rows(), len(tab.Rows))
	}
}

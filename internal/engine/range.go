package engine

import (
	"math"

	"resultdb/internal/colstore"
	"resultdb/internal/parallel"
	"resultdb/internal/types"
)

// Sideways information passing support: the cost-based reducer computes the
// build side's numeric key range and pre-drops probe rows that cannot match
// before they reach the hash table. Correctness relies on join-key equality
// semantics (types.Equal / the key hash encoding): a numeric build key can
// only equal a numeric probe value with the same float64 value, NULL keys
// never join, and non-numeric probe values never equal numeric build keys.
// NaN probe values are always kept (cmp3 reports 0 against any bound, the
// same convention types.Compare uses), so the filter has no false drops.

// NumKeyRange returns the [min, max] bounds of rel's column col over its
// non-NULL values, for use as a semi-join prefilter range. ok is false when
// any non-null value is non-numeric (a range filter would be unsound to
// derive), when only NaN values exist, or when the column is empty.
func NumKeyRange(rel *Relation, col int) (lo, hi float64, ok bool) {
	if rel.Vec != nil {
		return colstore.NumMinMaxView(rel.Vec, col)
	}
	for _, row := range rel.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		if v.Kind() != types.KindInt && v.Kind() != types.KindFloat {
			return 0, 0, false
		}
		f := v.Float()
		if math.IsNaN(f) {
			continue
		}
		if !ok {
			lo, hi, ok = f, f, true
		} else if f < lo {
			lo = f
		} else if f > hi {
			hi = f
		}
	}
	return lo, hi, ok
}

// RangeSemiFilter returns rel restricted to rows whose col value could equal
// a numeric join key in [lo, hi]: non-NULL, numeric, and within the bounds
// under cmp3 semantics (NaN always passes). Rows are kept in input order and
// the columnar view (when present) is narrowed alongside, so a subsequent
// exact semi-join sees a smaller but otherwise identical relation. The
// second result is the number of rows skipped.
//
// Only sound when the build side is all-numeric (see NumKeyRange): dropped
// rows are NULL (never join), non-numeric (never equal a numeric key), or
// numerically outside every build key.
func RangeSemiFilter(rel *Relation, col int, lo, hi float64, par int) (*Relation, int) {
	var keep []int32
	if rel.Vec != nil {
		if k, ok := colstore.NumRangeSelect(rel.Vec, col, lo, hi, par); ok {
			keep = k
		}
	}
	if keep == nil {
		keep = parallel.Map(len(rel.Rows), par, func(a, b int) []int32 {
			kept := make([]int32, 0, b-a)
			for j := a; j < b; j++ {
				v := rel.Rows[j][col]
				if v.IsNull() || (v.Kind() != types.KindInt && v.Kind() != types.KindFloat) {
					continue
				}
				f := v.Float()
				if rangeCmp3(f, lo) >= 0 && rangeCmp3(f, hi) <= 0 {
					kept = append(kept, int32(j))
				}
			}
			return kept
		})
	}
	if len(keep) == len(rel.Rows) {
		return rel, 0
	}
	out := &Relation{Cols: rel.Cols, Rows: make([]types.Row, len(keep))}
	for i, j := range keep {
		out.Rows[i] = rel.Rows[j]
	}
	if rel.Vec != nil {
		out.Vec = rel.Vec.Narrow(keep)
	}
	return out, len(rel.Rows) - len(keep)
}

// rangeCmp3 mirrors colstore's cmp3 (types.Compare on non-NULL numerics):
// three-way by float value with NaN reporting 0 against everything.
func rangeCmp3(v, rhs float64) int {
	switch {
	case v < rhs:
		return -1
	case v > rhs:
		return 1
	default:
		return 0
	}
}

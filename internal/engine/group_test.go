package engine

import (
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/sqlparse"
)

// salesSource: one fact table for grouping tests.
func salesSource(t *testing.T) memSource {
	t.Helper()
	return memSource{
		"sales": mkTable(t, "sales",
			[]catalog.Column{intCol("id"), textCol("region"), textCol("item"), intCol("amount")}, nil,
			ir(1, "east", "apple", 10),
			ir(2, "east", "pear", 20),
			ir(3, "west", "apple", 5),
			ir(4, "west", "pear", 7),
			ir(5, "west", "apple", 3),
			ir(6, "north", "plum", nil)),
	}
}

func TestGroupByBasic(t *testing.T) {
	rel := runSelect(t, salesSource(t), `
		SELECT s.region, COUNT(*), SUM(s.amount)
		FROM sales AS s GROUP BY s.region ORDER BY s.region`)
	expectRows(t, rel,
		"east | 2 | 30", "north | 1 | NULL", "west | 3 | 15")
	if rel.Cols[0].Name != "region" {
		t.Errorf("column name = %s", rel.Cols[0].Name)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	rel := runSelect(t, salesSource(t), `
		SELECT s.region, s.item, COUNT(*)
		FROM sales AS s WHERE s.amount IS NOT NULL
		GROUP BY s.region, s.item`)
	expectRows(t, rel,
		"east | apple | 1", "east | pear | 1",
		"west | apple | 2", "west | pear | 1")
}

func TestGroupByHaving(t *testing.T) {
	rel := runSelect(t, salesSource(t), `
		SELECT s.region, SUM(s.amount) AS total
		FROM sales AS s GROUP BY s.region HAVING SUM(s.amount) > 10`)
	expectRows(t, rel, "east | 30", "west | 15")
	// HAVING referencing a group key.
	rel = runSelect(t, salesSource(t), `
		SELECT s.region, COUNT(*) FROM sales AS s
		GROUP BY s.region HAVING s.region = 'west'`)
	expectRows(t, rel, "west | 3")
}

func TestGroupByComputedOutput(t *testing.T) {
	rel := runSelect(t, salesSource(t), `
		SELECT s.region, SUM(s.amount) * 2 + COUNT(*) AS score
		FROM sales AS s WHERE s.amount IS NOT NULL GROUP BY s.region`)
	expectRows(t, rel, "east | 62", "west | 33")
	if rel.Cols[1].Name != "score" {
		t.Errorf("alias = %s", rel.Cols[1].Name)
	}
}

func TestGroupByOverJoin(t *testing.T) {
	src := shopSource(t)
	rel := runSelect(t, src, `
		SELECT c.name, COUNT(*) FROM customers AS c, orders AS o
		WHERE c.id = o.cid GROUP BY c.name ORDER BY c.name`)
	expectRows(t, rel, "custA | 2", "custB | 3", "custC | 1")
}

func TestGroupByErrors(t *testing.T) {
	src := salesSource(t)
	bad := []string{
		// Non-grouped column in the select list.
		"SELECT s.item, COUNT(*) FROM sales AS s GROUP BY s.region",
		// Star with grouping.
		"SELECT * FROM sales AS s GROUP BY s.region",
	}
	for _, sql := range bad {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatalf("%s should parse: %v", sql, err)
		}
		ex := &Executor{Src: src}
		if _, err := ex.Select(sel); err == nil {
			t.Errorf("%s should fail", sql)
		}
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	rel := runSelect(t, salesSource(t), `
		SELECT s.region, COUNT(*) FROM sales AS s WHERE s.amount > 999 GROUP BY s.region`)
	if len(rel.Rows) != 0 {
		t.Errorf("empty grouping produced %d rows", len(rel.Rows))
	}
	// Without GROUP BY, aggregates over empty input yield one row.
	rel = runSelect(t, salesSource(t), `
		SELECT COUNT(*) FROM sales AS s WHERE s.amount > 999`)
	if len(rel.Rows) != 1 || rel.Rows[0][0].Int() != 0 {
		t.Errorf("global aggregate over empty input = %v", rel.Rows)
	}
}

func TestGroupByRendersAndReparses(t *testing.T) {
	sql := "SELECT s.region, COUNT(*) FROM sales AS s WHERE s.amount > 0 GROUP BY s.region HAVING COUNT(*) > 1 ORDER BY s.region LIMIT 3"
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sqlparse.ParseSelect(sel.SQL())
	if err != nil {
		t.Fatalf("rendered GROUP BY does not reparse: %v\n%s", err, sel.SQL())
	}
	if again.SQL() != sel.SQL() {
		t.Errorf("render not stable: %s vs %s", sel.SQL(), again.SQL())
	}
}

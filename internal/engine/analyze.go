package engine

import (
	"fmt"
	"strings"

	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
)

// Source resolves table names to physical tables. internal/db implements it
// over its table map (including materialized views).
type Source interface {
	Table(name string) (*storage.Table, error)
}

// RelRef is one relation instance in a query: its alias and base table name.
type RelRef struct {
	Alias string
	Table string
}

// Attr is one attribute of one relation instance, identified by alias.
type Attr struct {
	Rel string
	Col string
}

// String renders the attribute as alias.column.
func (a Attr) String() string { return a.Rel + "." + a.Col }

// JoinPred is one equi-join predicate between two relation instances.
type JoinPred struct {
	LeftRel  string
	LeftCol  string
	RightRel string
	RightCol string
}

// String renders the predicate as SQL.
func (j JoinPred) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftRel, j.LeftCol, j.RightRel, j.RightCol)
}

// Reverse swaps the two sides.
func (j JoinPred) Reverse() JoinPred {
	return JoinPred{LeftRel: j.RightRel, LeftCol: j.RightCol, RightRel: j.LeftRel, RightCol: j.LeftCol}
}

// SPJSpec is the analyzed form of a select-project-join query: the paper's
// Q = π_A(σ_J(σ_F(R×))) decomposition (Section 3). It drives the planner,
// the native RESULTDB algorithm, and the SQL rewrite methods.
type SPJSpec struct {
	// Rels lists the relation instances, in FROM order.
	Rels []RelRef
	// Filters holds single-relation conjuncts (σ_F), keyed by alias.
	Filters map[string][]sqlparse.Expr
	// JoinPreds holds the equi-join conjuncts (σ_J).
	JoinPreds []JoinPred
	// Residual holds every other conjunct (cross-relation non-equi, OR
	// trees spanning relations, constants); evaluated after all joins.
	Residual []sqlparse.Expr
	// Projection lists the projected attributes per the select list, with
	// stars expanded (π_A). Aggregate-only queries have no Projection.
	Projection []Attr
	// Distinct mirrors SELECT DISTINCT.
	Distinct bool
}

// RelByAlias returns the RelRef for alias, or false.
func (s *SPJSpec) RelByAlias(alias string) (RelRef, bool) {
	for _, r := range s.Rels {
		if equalFold(r.Alias, alias) {
			return r, true
		}
	}
	return RelRef{}, false
}

// ProjectionOf returns the projected columns of one relation instance, in
// select-list order.
func (s *SPJSpec) ProjectionOf(alias string) []string {
	var out []string
	for _, a := range s.Projection {
		if equalFold(a.Rel, alias) {
			out = append(out, a.Col)
		}
	}
	return out
}

// OutputRels returns the aliases that contribute at least one projected
// attribute (the relations the subdatabase consists of, Definition 2.2),
// in FROM order.
func (s *SPJSpec) OutputRels() []string {
	var out []string
	for _, r := range s.Rels {
		if len(s.ProjectionOf(r.Alias)) > 0 {
			out = append(out, r.Alias)
		}
	}
	return out
}

// JoinAttrsOf returns the distinct join-predicate columns of alias (the A_i^J
// sets of Definition 2.3), in first-use order.
func (s *SPJSpec) JoinAttrsOf(alias string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(col string) {
		key := strings.ToLower(col)
		if !seen[key] {
			seen[key] = true
			out = append(out, col)
		}
	}
	for _, j := range s.JoinPreds {
		if equalFold(j.LeftRel, alias) {
			add(j.LeftCol)
		}
		if equalFold(j.RightRel, alias) {
			add(j.RightCol)
		}
	}
	return out
}

// FilterSQL renders the conjunction of alias's pushed-down filters, or "".
func (s *SPJSpec) FilterSQL(alias string) string {
	e := sqlparse.AndAll(s.Filters[alias])
	if e == nil {
		return ""
	}
	return e.SQL()
}

// AnalyzeSPJ decomposes a SELECT into an SPJSpec. The query must be a pure
// SPJ query: inner joins only, no aggregates in the select list, and every
// select item a plain column reference or star.
//
// src is used to expand stars and resolve bare column names to their owning
// relation; it may not be nil.
func AnalyzeSPJ(sel *sqlparse.Select, src Source) (*SPJSpec, error) {
	spec := &SPJSpec{
		Filters:  make(map[string][]sqlparse.Expr),
		Distinct: sel.Distinct,
	}

	// Collect relation instances; reject outer joins.
	var conjuncts []sqlparse.Expr
	for _, item := range sel.From {
		spec.Rels = append(spec.Rels, RelRef{Alias: item.Ref.Name(), Table: item.Ref.Table})
		for _, j := range item.Joins {
			if j.Type != sqlparse.JoinInner {
				return nil, fmt.Errorf("engine: outer joins are not SPJ; cannot analyze")
			}
			spec.Rels = append(spec.Rels, RelRef{Alias: j.Ref.Name(), Table: j.Ref.Table})
			conjuncts = append(conjuncts, sqlparse.Conjuncts(j.On)...)
		}
	}
	seen := map[string]bool{}
	for _, r := range spec.Rels {
		key := strings.ToLower(r.Alias)
		if seen[key] {
			return nil, fmt.Errorf("engine: duplicate relation alias %q", r.Alias)
		}
		seen[key] = true
	}
	conjuncts = append(conjuncts, sqlparse.Conjuncts(sel.Where)...)

	// Column ownership map for resolving bare references.
	owner, colKinds, err := buildOwnership(spec.Rels, src)
	if err != nil {
		return nil, err
	}
	resolve := func(c *sqlparse.ColumnRef) (string, error) {
		if c.Table != "" {
			if _, ok := spec.RelByAlias(c.Table); !ok {
				return "", fmt.Errorf("engine: unknown relation %q in reference %s", c.Table, c.SQL())
			}
			if _, ok := colKinds[strings.ToLower(c.Table)+"."+strings.ToLower(c.Column)]; !ok {
				return "", fmt.Errorf("engine: unknown column %s", c.SQL())
			}
			return c.Table, nil
		}
		owners := owner[strings.ToLower(c.Column)]
		switch len(owners) {
		case 1:
			return owners[0], nil
		case 0:
			return "", fmt.Errorf("engine: unknown column %q", c.Column)
		default:
			return "", fmt.Errorf("engine: ambiguous column %q (in %s)", c.Column, strings.Join(owners, ", "))
		}
	}

	// Classify conjuncts.
	for _, c := range conjuncts {
		if jp, ok := asEquiJoin(c, resolve); ok {
			spec.JoinPreds = append(spec.JoinPreds, jp)
			continue
		}
		rels, err := referencedRels(c, resolve)
		if err != nil {
			return nil, err
		}
		if len(rels) == 1 {
			spec.Filters[rels[0]] = append(spec.Filters[rels[0]], c)
		} else {
			spec.Residual = append(spec.Residual, c)
		}
	}

	// Expand the projection.
	for _, item := range sel.Items {
		switch {
		case item.Star && item.Table == "":
			for _, r := range spec.Rels {
				t, err := src.Table(r.Table)
				if err != nil {
					return nil, err
				}
				for _, col := range t.Def.Columns {
					spec.Projection = append(spec.Projection, Attr{Rel: r.Alias, Col: col.Name})
				}
			}
		case item.Star:
			r, ok := spec.RelByAlias(item.Table)
			if !ok {
				return nil, fmt.Errorf("engine: unknown relation %q in %s.*", item.Table, item.Table)
			}
			t, err := src.Table(r.Table)
			if err != nil {
				return nil, err
			}
			for _, col := range t.Def.Columns {
				spec.Projection = append(spec.Projection, Attr{Rel: r.Alias, Col: col.Name})
			}
		default:
			cr, ok := item.Expr.(*sqlparse.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("engine: select item %q is not a plain column; not SPJ", item.Expr.SQL())
			}
			rel, err := resolve(cr)
			if err != nil {
				return nil, err
			}
			spec.Projection = append(spec.Projection, Attr{Rel: rel, Col: cr.Column})
		}
	}
	return spec, nil
}

// buildOwnership maps lower-cased column names to the aliases defining them
// and records (alias.column -> kind) existence.
func buildOwnership(rels []RelRef, src Source) (map[string][]string, map[string]bool, error) {
	owner := make(map[string][]string)
	exists := make(map[string]bool)
	for _, r := range rels {
		t, err := src.Table(r.Table)
		if err != nil {
			return nil, nil, err
		}
		for _, col := range t.Def.Columns {
			key := strings.ToLower(col.Name)
			owner[key] = append(owner[key], r.Alias)
			exists[strings.ToLower(r.Alias)+"."+key] = true
		}
	}
	return owner, exists, nil
}

// asEquiJoin recognizes conjuncts of the form a.x = b.y with a != b.
func asEquiJoin(e sqlparse.Expr, resolve func(*sqlparse.ColumnRef) (string, error)) (JoinPred, bool) {
	b, ok := e.(*sqlparse.Binary)
	if !ok || b.Op != sqlparse.OpEq {
		return JoinPred{}, false
	}
	l, lok := b.L.(*sqlparse.ColumnRef)
	r, rok := b.R.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return JoinPred{}, false
	}
	lr, err := resolve(l)
	if err != nil {
		return JoinPred{}, false
	}
	rr, err := resolve(r)
	if err != nil {
		return JoinPred{}, false
	}
	if equalFold(lr, rr) {
		return JoinPred{}, false
	}
	return JoinPred{LeftRel: lr, LeftCol: l.Column, RightRel: rr, RightCol: r.Column}, true
}

// referencedRels returns the distinct aliases referenced by e (outer scope
// only; subquery bodies are opaque).
func referencedRels(e sqlparse.Expr, resolve func(*sqlparse.ColumnRef) (string, error)) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	var firstErr error
	for _, c := range sqlparse.ColumnRefs(e) {
		rel, err := resolve(c)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		key := strings.ToLower(rel)
		if !seen[key] {
			seen[key] = true
			out = append(out, rel)
		}
	}
	return out, firstErr
}

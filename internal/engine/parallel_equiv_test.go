package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"resultdb/internal/types"
)

// The morsel-parallel operators promise bit-identical results at any degree
// of parallelism (ordered chunk merge). These tests verify exact row-order
// equality between the serial path (par=1) and several parallel degrees on
// inputs large enough to actually engage chunking (> 2*parallel.Threshold).

// bigRelation builds a relation with n rows: (id, key, payload), where key is
// drawn from a domain small enough to generate plenty of join matches and
// duplicates.
func bigRelation(rng *rand.Rand, alias string, n, keyDomain int) *Relation {
	rel := &Relation{Cols: []ColRef{
		{Rel: alias, Name: "id", Kind: types.KindInt},
		{Rel: alias, Name: "key", Kind: types.KindInt},
		{Rel: alias, Name: "payload", Kind: types.KindText},
	}}
	rel.Rows = make([]types.Row, n)
	for i := 0; i < n; i++ {
		rel.Rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(keyDomain))),
			types.NewText(fmt.Sprintf("p%d", rng.Intn(keyDomain/2+1))),
		}
	}
	return rel
}

// identicalRows asserts exact equality: same schema width, same row count,
// same values in the same order.
func identicalRows(t *testing.T, what string, got, want *Relation) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: schema width %d != %d", what, len(got.Cols), len(want.Cols))
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: row count %d != %d", what, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("%s: row %d differs:\n got %v\nwant %v", what, i, got.Rows[i], want.Rows[i])
		}
	}
}

var sweepDegrees = []int{2, 4, 7}

func TestHashJoinParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := bigRelation(rng, "l", 5000, 97)
	r := bigRelation(rng, "r", 3000, 97)
	want := hashJoinInner(l, r, []int{1}, []int{1}, 1, nil)
	if len(want.Rows) == 0 {
		t.Fatal("test setup: join produced no rows")
	}
	for _, par := range sweepDegrees {
		got := hashJoinInner(l, r, []int{1}, []int{1}, par, nil)
		identicalRows(t, fmt.Sprintf("hashJoinInner par=%d", par), got, want)
	}
}

func TestHashJoinParallelCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	l := bigRelation(rng, "l", 1200, 7)
	r := bigRelation(rng, "r", 3, 7)
	want := hashJoinInner(l, r, nil, nil, 1, nil)
	for _, par := range sweepDegrees {
		got := hashJoinInner(l, r, nil, nil, par, nil)
		identicalRows(t, fmt.Sprintf("cross par=%d", par), got, want)
	}
}

func TestSemiJoinParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	l := bigRelation(rng, "l", 6000, 211)
	r := bigRelation(rng, "r", 500, 211)
	want := SemiJoinDegree(l, []int{1}, r, []int{1}, 1)
	if len(want.Rows) == 0 || len(want.Rows) == len(l.Rows) {
		t.Fatalf("test setup: semi-join kept %d of %d rows (want a strict subset)",
			len(want.Rows), len(l.Rows))
	}
	for _, par := range sweepDegrees {
		got := SemiJoinDegree(l, []int{1}, r, []int{1}, par)
		identicalRows(t, fmt.Sprintf("SemiJoinDegree par=%d", par), got, want)
	}
}

func TestDistinctParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// keyDomain small → many exact duplicate (key, payload) pairs after
	// projecting id away.
	rel := bigRelation(rng, "d", 8000, 23).Project([]int{1, 2})
	want := rel.DistinctPar(1)
	if len(want.Rows) == len(rel.Rows) {
		t.Fatal("test setup: no duplicates to remove")
	}
	for _, par := range sweepDegrees {
		got := rel.DistinctPar(par)
		identicalRows(t, fmt.Sprintf("DistinctPar par=%d", par), got, want)
	}
}

func TestProjectParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	rel := bigRelation(rng, "p", 4000, 50)
	want := rel.ProjectPar([]int{2, 0}, 1)
	for _, par := range sweepDegrees {
		got := rel.ProjectPar([]int{2, 0}, par)
		identicalRows(t, fmt.Sprintf("ProjectPar par=%d", par), got, want)
	}
}

func TestFilterRowsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	rel := bigRelation(rng, "f", 7000, 113)
	check := func(row types.Row) (types.Value, error) {
		return types.NewBool(row[1].Int()%3 == 0), nil
	}
	want, err := filterRows(rel.Rows, check, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(want) == len(rel.Rows) {
		t.Fatalf("test setup: filter kept %d of %d rows", len(want), len(rel.Rows))
	}
	for _, par := range sweepDegrees {
		got, err := filterRows(rel.Rows, check, par)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("par=%d: kept %d rows, want %d", par, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("par=%d: row %d differs", par, i)
			}
		}
	}
}

func TestFilterRowsParallelErrorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	rel := bigRelation(rng, "e", 6000, 50)
	// Fail on the first row whose id is >= 4999; the serial scan hits row
	// 4999 first, and MapErr must report the same (lowest-chunk) error.
	boom := fmt.Errorf("boom")
	check := func(row types.Row) (types.Value, error) {
		if row[0].Int() >= 4999 {
			return types.Value{}, boom
		}
		return types.NewBool(true), nil
	}
	_, wantErr := filterRows(rel.Rows, check, 1)
	if wantErr == nil {
		t.Fatal("test setup: serial filter did not error")
	}
	for _, par := range sweepDegrees {
		_, err := filterRows(rel.Rows, check, par)
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("par=%d: error %v, want %v", par, err, wantErr)
		}
	}
}

func TestJoinAllDegreeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	rels := map[string]*Relation{
		"a": bigRelation(rng, "a", 2500, 601),
		"b": bigRelation(rng, "b", 2000, 601),
		"c": bigRelation(rng, "c", 1500, 601),
	}
	preds := []JoinPred{
		{LeftRel: "a", LeftCol: "key", RightRel: "b", RightCol: "key"},
		{LeftRel: "b", LeftCol: "key", RightRel: "c", RightCol: "key"},
	}
	clone := func() map[string]*Relation {
		m := make(map[string]*Relation, len(rels))
		for k, v := range rels {
			m[k] = v
		}
		return m
	}
	want, err := JoinAllDegree(preds, clone(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("test setup: join produced no rows")
	}
	for _, par := range sweepDegrees {
		got, err := JoinAllDegree(preds, clone(), par)
		if err != nil {
			t.Fatal(err)
		}
		identicalRows(t, fmt.Sprintf("JoinAllDegree par=%d", par), got, want)
	}
}

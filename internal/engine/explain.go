package engine

import (
	"fmt"
	"strings"

	"resultdb/internal/sqlparse"
)

// ExplainSPJ renders an executed plan description for an analyzed SPJ query:
// the scans with pushed-down filters and post-filter cardinalities, the
// greedy join order with intermediate cardinalities, and residual
// predicates. Because the engine is main-memory and materializing, EXPLAIN
// executes the plan and reports actual numbers (EXPLAIN ANALYZE semantics).
func (e *Executor) ExplainSPJ(spec *SPJSpec) ([]string, error) {
	var lines []string
	rels := make(map[string]*Relation, len(spec.Rels))
	for _, r := range spec.Rels {
		rel, err := e.baseRelation(r, spec.Filters[r.Alias])
		if err != nil {
			return nil, err
		}
		rels[strings.ToLower(r.Alias)] = rel
		filter := spec.FilterSQL(r.Alias)
		if filter == "" {
			filter = "true"
		}
		base, err := e.Src.Table(r.Table)
		if err != nil {
			return nil, err
		}
		lines = append(lines, fmt.Sprintf("scan %s AS %s  filter: %s  rows: %d -> %d",
			r.Table, r.Alias, filter, base.Len(), len(rel.Rows)))
	}
	joined, err := JoinAllTrace(spec.JoinPreds, rels, func(step string) {
		lines = append(lines, step)
	})
	if err != nil {
		return nil, err
	}
	if len(spec.Residual) > 0 {
		before := len(joined.Rows)
		joined, err = e.filter(joined, sqlparse.AndAll(spec.Residual))
		if err != nil {
			return nil, err
		}
		lines = append(lines, fmt.Sprintf("residual filter: %s  rows: %d -> %d",
			sqlparse.AndAll(spec.Residual).SQL(), before, len(joined.Rows)))
	}
	var proj []string
	for _, a := range spec.Projection {
		proj = append(proj, a.String())
	}
	distinct := ""
	if spec.Distinct {
		distinct = " distinct"
	}
	lines = append(lines, fmt.Sprintf("project%s [%s]  rows: %d",
		distinct, strings.Join(proj, ", "), len(joined.Rows)))
	return lines, nil
}

package engine

import (
	"fmt"

	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
)

// selectGrouped handles aggregate queries, with or without GROUP BY: the
// joined, filtered input is partitioned by the grouping expressions (one
// implicit group when there are none), every select item is evaluated per
// group (aggregates over the group's rows, other expressions over the
// grouping key), and HAVING filters the groups.
//
// GROUP BY is an extension beyond the paper's SPJ scope (its future-work
// item 2); RESULTDB itself remains SPJ-only.
func (e *Executor) selectGrouped(sel *sqlparse.Select) (*Relation, error) {
	// Evaluate the joined, filtered input with all columns available.
	inner := &sqlparse.Select{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  sel.From,
		Where: sel.Where,
	}
	joined, err := e.Select(inner)
	if err != nil {
		return nil, err
	}
	if sel.Distinct && len(sel.GroupBy) == 0 {
		joined = joined.Distinct()
	}
	b := &binder{rel: joined, sub: e.subRunner()}

	// Partition by the grouping key.
	keyEvals := make([]boundExpr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		keyEvals[i], err = b.bind(g)
		if err != nil {
			return nil, fmt.Errorf("engine: GROUP BY: %w", err)
		}
	}
	type group struct {
		key  types.Row
		rows []types.Row
	}
	var groups []*group
	if len(sel.GroupBy) == 0 {
		groups = []*group{{rows: joined.Rows}}
	} else {
		index := map[uint64][]*group{}
		for _, row := range joined.Rows {
			key := make(types.Row, len(keyEvals))
			for i, ev := range keyEvals {
				key[i], err = ev(row)
				if err != nil {
					return nil, err
				}
			}
			h := key.Hash()
			var g *group
			for _, cand := range index[h] {
				if cand.key.Equal(key) {
					g = cand
					break
				}
			}
			if g == nil {
				g = &group{key: key}
				index[h] = append(index[h], g)
				groups = append(groups, g)
			}
			g.rows = append(g.rows, row)
		}
	}

	// Output schema: one column per select item.
	out := &Relation{}
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("engine: cannot mix * with aggregates/GROUP BY")
		}
		col := ColRef{Name: item.Alias}
		if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
			col.Rel = cr.Table
			if col.Name == "" {
				col.Name = cr.Column
			}
		}
		if col.Name == "" {
			col.Name = item.Expr.SQL()
		}
		out.Cols = append(out.Cols, col)
	}

	groupBySQL := map[string]int{}
	for i, g := range sel.GroupBy {
		groupBySQL[g.SQL()] = i
	}

	for _, g := range groups {
		grel := &Relation{Cols: joined.Cols, Rows: g.rows}
		row := make(types.Row, len(sel.Items))
		for i, item := range sel.Items {
			v, err := e.evalGroupExpr(item.Expr, g.key, groupBySQL, grel, b)
			if err != nil {
				return nil, err
			}
			row[i] = v
			if !v.IsNull() && out.Cols[i].Kind == types.KindNull {
				out.Cols[i].Kind = v.Kind()
			}
		}
		if sel.Having != nil {
			hv, err := e.evalGroupExpr(sel.Having, g.key, groupBySQL, grel, b)
			if err != nil {
				return nil, fmt.Errorf("engine: HAVING: %w", err)
			}
			if !truthy(hv) {
				continue
			}
		}
		out.Rows = append(out.Rows, row)
	}
	if sel.Distinct && len(sel.GroupBy) > 0 {
		out = out.Distinct()
	}
	return e.finish(out, sel)
}

// evalGroupExpr evaluates an expression in grouped context: aggregate calls
// run over the group's rows, grouping expressions resolve to the group key,
// and scalar operators recurse. A column reference that is neither grouped
// nor inside an aggregate is an error (the usual SQL rule).
func (e *Executor) evalGroupExpr(expr sqlparse.Expr, key types.Row,
	groupBySQL map[string]int, grel *Relation, b *binder) (types.Value, error) {
	if i, ok := groupBySQL[expr.SQL()]; ok {
		return key[i], nil
	}
	switch x := expr.(type) {
	case *sqlparse.Literal:
		return x.Value, nil
	case *sqlparse.FuncCall:
		v, _, err := e.aggregate(x, grel, b)
		return v, err
	case *sqlparse.Binary:
		l, err := e.evalGroupExpr(x.L, key, groupBySQL, grel, b)
		if err != nil {
			return types.Value{}, err
		}
		r, err := e.evalGroupExpr(x.R, key, groupBySQL, grel, b)
		if err != nil {
			return types.Value{}, err
		}
		return applyBinary(x.Op, l, r)
	case *sqlparse.Unary:
		v, err := e.evalGroupExpr(x.E, key, groupBySQL, grel, b)
		if err != nil {
			return types.Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return v, nil
			}
			if v.Kind() != types.KindBool {
				return types.Value{}, fmt.Errorf("engine: NOT on %s", v.Kind())
			}
			return types.NewBool(!v.Bool()), nil
		case "-":
			switch v.Kind() {
			case types.KindInt:
				return types.NewInt(-v.Int()), nil
			case types.KindFloat:
				return types.NewFloat(-v.Float()), nil
			}
			return types.Value{}, fmt.Errorf("engine: unary minus on %s", v.Kind())
		}
		return types.Value{}, fmt.Errorf("engine: unknown unary %q", x.Op)
	case *sqlparse.ColumnRef:
		return types.Value{}, fmt.Errorf(
			"engine: column %s must appear in GROUP BY or inside an aggregate", x.SQL())
	default:
		return types.Value{}, fmt.Errorf("engine: unsupported expression %q in grouped context", expr.SQL())
	}
}

// applyBinary evaluates one binary operator on already-computed operands
// (grouped context has no row to defer to).
func applyBinary(op sqlparse.BinaryOp, l, r types.Value) (types.Value, error) {
	switch op {
	case sqlparse.OpAnd, sqlparse.OpOr:
		if l.IsNull() || r.IsNull() {
			return types.Null(), nil
		}
		if op == sqlparse.OpAnd {
			return types.NewBool(l.Bool() && r.Bool()), nil
		}
		return types.NewBool(l.Bool() || r.Bool()), nil
	case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		if l.IsNull() || r.IsNull() {
			return types.Null(), nil
		}
		c := types.Compare(l, r)
		var ok bool
		switch op {
		case sqlparse.OpEq:
			ok = c == 0
		case sqlparse.OpNe:
			ok = c != 0
		case sqlparse.OpLt:
			ok = c < 0
		case sqlparse.OpLe:
			ok = c <= 0
		case sqlparse.OpGt:
			ok = c > 0
		case sqlparse.OpGe:
			ok = c >= 0
		}
		return types.NewBool(ok), nil
	default:
		if l.IsNull() || r.IsNull() {
			return types.Null(), nil
		}
		return arith(op, l, r)
	}
}

package engine

import (
	"fmt"
	"time"

	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// hashJoinInner joins l and r on the equi columns lCols (positions in l) and
// rCols (positions in r). With empty column lists it degrades to a Cartesian
// product. Output schema is l's columns followed by r's.
//
// Execution is morsel-parallel at degree par (0 = auto, 1 = serial): the
// build side is partitioned across workers, the probe side is split into
// contiguous row chunks with per-chunk output buffers merged in input order,
// so the result is bit-identical to serial execution at any degree.
//
// A non-nil sp records the build/probe wall-time split, the effective
// degree, and the morsel count; a nil sp (tracing disabled) skips all clock
// reads.
func hashJoinInner(l, r *Relation, lCols, rCols []int, par int, sp *trace.Span) *Relation {
	out := &Relation{Cols: concatCols(l.Cols, r.Cols)}
	var t0 time.Time
	if len(lCols) == 0 {
		if sp != nil {
			sp.Par = parallel.Degree(par)
			sp.Morsels = parallel.Chunks(len(l.Rows), par)
			t0 = time.Now()
		}
		out.Rows = parallel.Map(len(l.Rows), par, func(lo, hi int) []types.Row {
			rows := make([]types.Row, 0, (hi-lo)*len(r.Rows))
			for _, lr := range l.Rows[lo:hi] {
				for _, rr := range r.Rows {
					rows = append(rows, concatRows(lr, rr))
				}
			}
			return rows
		})
		if sp != nil {
			sp.ProbeNS = time.Since(t0).Nanoseconds()
		}
		return out
	}
	// Build on the smaller input, probe with the larger in parallel chunks.
	build, probe := r, l
	buildCols, probeCols := rCols, lCols
	if len(r.Rows) > len(l.Rows) {
		build, probe = l, r
		buildCols, probeCols = lCols, rCols
	}
	if sp != nil {
		sp.Par = parallel.Degree(par)
		sp.Morsels = parallel.Chunks(len(probe.Rows), par)
		t0 = time.Now()
	}
	idx := buildHash(build, buildCols, par)
	if sp != nil {
		sp.BuildNS = time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}
	if probe == l {
		out.Rows = parallel.Map(len(probe.Rows), par, func(lo, hi int) []types.Row {
			rows := make([]types.Row, 0, hi-lo)
			var lr types.Row
			emit := func(pos int) { rows = append(rows, concatRows(lr, build.Rows[pos])) }
			for _, row := range probe.Rows[lo:hi] {
				lr = row
				probeHashEach(idx, build, buildCols, lr, probeCols, emit)
			}
			return rows
		})
	} else {
		out.Rows = parallel.Map(len(probe.Rows), par, func(lo, hi int) []types.Row {
			rows := make([]types.Row, 0, hi-lo)
			var rr types.Row
			emit := func(pos int) { rows = append(rows, concatRows(build.Rows[pos], rr)) }
			for _, row := range probe.Rows[lo:hi] {
				rr = row
				probeHashEach(idx, build, buildCols, rr, probeCols, emit)
			}
			return rows
		})
	}
	if sp != nil {
		sp.ProbeNS = time.Since(t0).Nanoseconds()
	}
	return out
}

// joinOn joins l and r with an arbitrary ON expression, inner or left outer.
// Equi conjuncts of the ON tree are executed as a hash join; remaining
// conjuncts are evaluated per candidate pair. For a left outer join,
// unmatched left rows are padded with NULLs.
//
// The probe over l's rows runs in parallel chunks (bound expressions are
// pure after binding, so concurrent evaluation is safe); per-chunk buffers
// keep the output order identical to the serial loop.
func joinOn(l, r *Relation, on sqlparse.Expr, outer bool, sub SubqueryRunner, par int) (*Relation, error) {
	combined := &Relation{Cols: concatCols(l.Cols, r.Cols)}

	// Split ON into hashable equi pairs and a residual.
	var lCols, rCols []int
	var residual []sqlparse.Expr
	for _, c := range sqlparse.Conjuncts(on) {
		li, ri, ok := equiPair(c, l, r)
		if ok {
			lCols = append(lCols, li)
			rCols = append(rCols, ri)
			continue
		}
		residual = append(residual, c)
	}
	var check boundExpr
	if len(residual) > 0 {
		b := &binder{rel: combined, sub: sub}
		var err error
		check, err = b.bind(sqlparse.AndAll(residual))
		if err != nil {
			return nil, err
		}
	}

	nullPad := make(types.Row, len(r.Cols))
	emit := func(dst *[]types.Row, lr types.Row, matched *bool, rr types.Row) error {
		row := concatRows(lr, rr)
		if check != nil {
			v, err := check(row)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		*matched = true
		*dst = append(*dst, row)
		return nil
	}

	if len(lCols) > 0 {
		idx := buildHash(r, rCols, par)
		rows, err := parallel.MapErr(len(l.Rows), par, func(lo, hi int) ([]types.Row, error) {
			chunk := make([]types.Row, 0, hi-lo)
			for _, lr := range l.Rows[lo:hi] {
				matched := false
				var probeErr error
				probeHashEach(idx, r, rCols, lr, lCols, func(pos int) {
					if probeErr == nil {
						probeErr = emit(&chunk, lr, &matched, r.Rows[pos])
					}
				})
				if probeErr != nil {
					return nil, probeErr
				}
				if outer && !matched {
					chunk = append(chunk, concatRows(lr, nullPad))
				}
			}
			return chunk, nil
		})
		if err != nil {
			return nil, err
		}
		combined.Rows = rows
		return combined, nil
	}
	// No equi conjunct: nested loop, chunked over the left input.
	rows, err := parallel.MapErr(len(l.Rows), par, func(lo, hi int) ([]types.Row, error) {
		chunk := make([]types.Row, 0, hi-lo)
		for _, lr := range l.Rows[lo:hi] {
			matched := false
			for _, rr := range r.Rows {
				if err := emit(&chunk, lr, &matched, rr); err != nil {
					return nil, err
				}
			}
			if outer && !matched {
				chunk = append(chunk, concatRows(lr, nullPad))
			}
		}
		return chunk, nil
	})
	if err != nil {
		return nil, err
	}
	combined.Rows = rows
	return combined, nil
}

// equiPair recognizes an ON conjunct "x = y" where one side resolves in l
// and the other in r; returns their column positions.
func equiPair(e sqlparse.Expr, l, r *Relation) (li, ri int, ok bool) {
	b, isBin := e.(*sqlparse.Binary)
	if !isBin || b.Op != sqlparse.OpEq {
		return 0, 0, false
	}
	lc, lok := b.L.(*sqlparse.ColumnRef)
	rc, rok := b.R.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	if i, err := l.ColIndex(lc.Table, lc.Column); err == nil {
		if j, err := r.ColIndex(rc.Table, rc.Column); err == nil {
			return i, j, true
		}
	}
	if i, err := l.ColIndex(rc.Table, rc.Column); err == nil {
		if j, err := r.ColIndex(lc.Table, lc.Column); err == nil {
			return i, j, true
		}
	}
	return 0, 0, false
}

// HashJoin is the exported inner hash join used by internal/core when
// folding join-graph nodes (Algorithm 3). Empty key lists produce a
// Cartesian product. The degree of parallelism is resolved from the
// environment (see HashJoinDegree for an explicit degree).
func HashJoin(l, r *Relation, lCols, rCols []int) *Relation {
	return hashJoinInner(l, r, lCols, rCols, 0, nil)
}

// HashJoinDegree is HashJoin at an explicit degree of parallelism
// (0 = auto, 1 = serial).
func HashJoinDegree(l, r *Relation, lCols, rCols []int, par int) *Relation {
	return hashJoinInner(l, r, lCols, rCols, par, nil)
}

// HashJoinSpan is HashJoinDegree recording build/probe timings, degree, and
// morsel count into sp (which may be nil).
func HashJoinSpan(l, r *Relation, lCols, rCols []int, par int, sp *trace.Span) *Relation {
	return hashJoinInner(l, r, lCols, rCols, par, sp)
}

// SemiJoin filters l to the rows whose key appears in r (l ⋉ r); the
// primitive of the paper's reduction phase (Section 4.1).
func SemiJoin(l *Relation, lCols []int, r *Relation, rCols []int) *Relation {
	return SemiJoinSpan(l, lCols, r, rCols, 0, nil)
}

// SemiJoinDegree is SemiJoin with an explicit degree of parallelism: the key
// set is built serially (the build side is typically the smaller input), the
// probe over l's rows runs in parallel chunks merged in input order.
func SemiJoinDegree(l *Relation, lCols []int, r *Relation, rCols []int, par int) *Relation {
	return SemiJoinSpan(l, lCols, r, rCols, par, nil)
}

// SemiJoinSpan is SemiJoinDegree recording the key-set build and probe
// wall-time split, degree, and morsel count into sp (nil = no recording, no
// clock reads).
func SemiJoinSpan(l *Relation, lCols []int, r *Relation, rCols []int, par int, sp *trace.Span) *Relation {
	var t0 time.Time
	if sp != nil {
		sp.Par = parallel.Degree(par)
		sp.Morsels = parallel.Chunks(len(l.Rows), par)
		t0 = time.Now()
	}
	keys := types.NewKeySet()
	for _, rr := range r.Rows {
		keys.AddKey(rr, rCols)
	}
	if sp != nil {
		sp.BuildNS = time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}
	out := &Relation{Cols: l.Cols}
	out.Rows = parallel.Map(len(l.Rows), par, func(lo, hi int) []types.Row {
		rows := make([]types.Row, 0, hi-lo)
		for _, lr := range l.Rows[lo:hi] {
			if keys.ContainsKey(lr, lCols) {
				rows = append(rows, lr)
			}
		}
		return rows
	})
	if sp != nil {
		sp.ProbeNS = time.Since(t0).Nanoseconds()
	}
	return out
}

// hashTable is a join index partitioned by hash so it can be built in
// parallel: partition p owns the keys with hash % P == p. The serial build
// uses a single partition. Bucket position lists are always in ascending row
// order — the invariant that keeps parallel probes bit-identical to serial.
type hashTable struct {
	parts []map[uint64][]int
}

// lookup returns the candidate build positions for hash h.
func (t *hashTable) lookup(h uint64) []int {
	if len(t.parts) == 1 {
		return t.parts[0][h]
	}
	return t.parts[h%uint64(len(t.parts))][h]
}

// buildHash indexes r's rows by their key hash at degree par. Rows with NULL
// keys are skipped (they can never match under SQL join semantics).
//
// The parallel build is two-phase morsel style: (1) each worker scans a
// contiguous row chunk, hashing keys and scattering (hash, pos) entries into
// chunk-local partition lists; (2) each worker owns one partition and folds
// the chunk-local lists into its hash map, visiting chunks in input order so
// bucket position lists stay ascending.
func buildHash(r *Relation, cols []int, par int) *hashTable {
	n := len(r.Rows)
	nc := parallel.Chunks(n, par)
	if nc <= 1 {
		m := make(map[uint64][]int, n)
		for pos, row := range r.Rows {
			if hasNull(row, cols) {
				continue
			}
			h := row.HashKey(cols)
			m[h] = append(m[h], pos)
		}
		return &hashTable{parts: []map[uint64][]int{m}}
	}

	type entry struct {
		h   uint64
		pos int
	}
	P := nc // one partition per chunk keeps both phases balanced
	locals := make([][][]entry, nc)
	parallel.ForChunks(n, par, func(chunk, lo, hi int) {
		local := make([][]entry, P)
		est := (hi-lo)/P + 1
		for p := range local {
			local[p] = make([]entry, 0, est)
		}
		for pos := lo; pos < hi; pos++ {
			row := r.Rows[pos]
			if hasNull(row, cols) {
				continue
			}
			h := row.HashKey(cols)
			p := int(h % uint64(P))
			local[p] = append(local[p], entry{h: h, pos: pos})
		}
		locals[chunk] = local
	})

	parts := make([]map[uint64][]int, P)
	parallel.Each(P, par, func(p int) {
		total := 0
		for c := 0; c < nc; c++ {
			total += len(locals[c][p])
		}
		m := make(map[uint64][]int, total)
		for c := 0; c < nc; c++ { // chunk order => ascending positions
			for _, e := range locals[c][p] {
				m[e.h] = append(m[e.h], e.pos)
			}
		}
		parts[p] = m
	})
	return &hashTable{parts: parts}
}

// probeHashEach invokes yield for every build-side position whose key matches
// probe's, in ascending position order. The callback form avoids the per-probe
// slice allocation of a return-value API on the hot loop.
func probeHashEach(idx *hashTable, built *Relation, builtCols []int, probe types.Row, probeCols []int, yield func(pos int)) {
	if hasNull(probe, probeCols) {
		return
	}
	h := probe.HashKey(probeCols)
	for _, pos := range idx.lookup(h) {
		if keysMatch(built.Rows[pos], builtCols, probe, probeCols) {
			yield(pos)
		}
	}
}

func hasNull(r types.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

func keysMatch(a types.Row, aCols []int, b types.Row, bCols []int) bool {
	for i := range aCols {
		if !types.Equal(a[aCols[i]], b[bCols[i]]) {
			return false
		}
	}
	return true
}

func concatCols(a, b []ColRef) []ColRef {
	out := make([]ColRef, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func concatRows(a, b types.Row) types.Row {
	out := make(types.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// crossCheck asserts both column lists have equal length; join construction
// bugs fail loudly instead of corrupting results.
func crossCheck(lCols, rCols []int) error {
	if len(lCols) != len(rCols) {
		return fmt.Errorf("engine: mismatched join key arity %d vs %d", len(lCols), len(rCols))
	}
	return nil
}

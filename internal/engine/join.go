package engine

import (
	"fmt"

	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
)

// hashJoinInner joins l and r on the equi columns lCols (positions in l) and
// rCols (positions in r). With empty column lists it degrades to a Cartesian
// product. Output schema is l's columns followed by r's.
func hashJoinInner(l, r *Relation, lCols, rCols []int) *Relation {
	out := &Relation{Cols: concatCols(l.Cols, r.Cols)}
	if len(lCols) == 0 {
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
		return out
	}
	// Build on the smaller input.
	if len(r.Rows) <= len(l.Rows) {
		idx := buildHash(r, rCols)
		for _, lr := range l.Rows {
			for _, pos := range probeHash(idx, r, rCols, lr, lCols) {
				out.Rows = append(out.Rows, concatRows(lr, r.Rows[pos]))
			}
		}
		return out
	}
	idx := buildHash(l, lCols)
	for _, rr := range r.Rows {
		for _, pos := range probeHash(idx, l, lCols, rr, rCols) {
			out.Rows = append(out.Rows, concatRows(l.Rows[pos], rr))
		}
	}
	return out
}

// joinOn joins l and r with an arbitrary ON expression, inner or left outer.
// Equi conjuncts of the ON tree are executed as a hash join; remaining
// conjuncts are evaluated per candidate pair. For a left outer join,
// unmatched left rows are padded with NULLs.
func joinOn(l, r *Relation, on sqlparse.Expr, outer bool, sub SubqueryRunner) (*Relation, error) {
	combined := &Relation{Cols: concatCols(l.Cols, r.Cols)}

	// Split ON into hashable equi pairs and a residual.
	var lCols, rCols []int
	var residual []sqlparse.Expr
	for _, c := range sqlparse.Conjuncts(on) {
		li, ri, ok := equiPair(c, l, r)
		if ok {
			lCols = append(lCols, li)
			rCols = append(rCols, ri)
			continue
		}
		residual = append(residual, c)
	}
	var check boundExpr
	if len(residual) > 0 {
		b := &binder{rel: combined, sub: sub}
		var err error
		check, err = b.bind(sqlparse.AndAll(residual))
		if err != nil {
			return nil, err
		}
	}

	nullPad := make(types.Row, len(r.Cols))
	emit := func(lr types.Row, matched *bool, rr types.Row) error {
		row := concatRows(lr, rr)
		if check != nil {
			v, err := check(row)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		*matched = true
		combined.Rows = append(combined.Rows, row)
		return nil
	}

	if len(lCols) > 0 {
		idx := buildHash(r, rCols)
		for _, lr := range l.Rows {
			matched := false
			for _, pos := range probeHash(idx, r, rCols, lr, lCols) {
				if err := emit(lr, &matched, r.Rows[pos]); err != nil {
					return nil, err
				}
			}
			if outer && !matched {
				combined.Rows = append(combined.Rows, concatRows(lr, nullPad))
			}
		}
		return combined, nil
	}
	// No equi conjunct: nested loop.
	for _, lr := range l.Rows {
		matched := false
		for _, rr := range r.Rows {
			if err := emit(lr, &matched, rr); err != nil {
				return nil, err
			}
		}
		if outer && !matched {
			combined.Rows = append(combined.Rows, concatRows(lr, nullPad))
		}
	}
	return combined, nil
}

// equiPair recognizes an ON conjunct "x = y" where one side resolves in l
// and the other in r; returns their column positions.
func equiPair(e sqlparse.Expr, l, r *Relation) (li, ri int, ok bool) {
	b, isBin := e.(*sqlparse.Binary)
	if !isBin || b.Op != sqlparse.OpEq {
		return 0, 0, false
	}
	lc, lok := b.L.(*sqlparse.ColumnRef)
	rc, rok := b.R.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	if i, err := l.ColIndex(lc.Table, lc.Column); err == nil {
		if j, err := r.ColIndex(rc.Table, rc.Column); err == nil {
			return i, j, true
		}
	}
	if i, err := l.ColIndex(rc.Table, rc.Column); err == nil {
		if j, err := r.ColIndex(lc.Table, lc.Column); err == nil {
			return i, j, true
		}
	}
	return 0, 0, false
}

// HashJoin is the exported inner hash join used by internal/core when
// folding join-graph nodes (Algorithm 3). Empty key lists produce a
// Cartesian product.
func HashJoin(l, r *Relation, lCols, rCols []int) *Relation {
	return hashJoinInner(l, r, lCols, rCols)
}

// SemiJoin filters l to the rows whose key appears in r (l ⋉ r); the
// primitive of the paper's reduction phase (Section 4.1).
func SemiJoin(l *Relation, lCols []int, r *Relation, rCols []int) *Relation {
	return semiJoinRows(l, lCols, r, rCols)
}

// semiJoinRows filters l to rows whose key appears in r (l ⋉ r).
func semiJoinRows(l *Relation, lCols []int, r *Relation, rCols []int) *Relation {
	keys := types.NewKeySet()
	for _, rr := range r.Rows {
		keys.AddKey(rr, rCols)
	}
	out := &Relation{Cols: l.Cols}
	for _, lr := range l.Rows {
		if keys.ContainsKey(lr, lCols) {
			out.Rows = append(out.Rows, lr)
		}
	}
	return out
}

type hashTable map[uint64][]int

func buildHash(r *Relation, cols []int) hashTable {
	idx := make(hashTable, len(r.Rows))
	for pos, row := range r.Rows {
		if hasNull(row, cols) {
			continue
		}
		h := row.HashKey(cols)
		idx[h] = append(idx[h], pos)
	}
	return idx
}

func probeHash(idx hashTable, built *Relation, builtCols []int, probe types.Row, probeCols []int) []int {
	if hasNull(probe, probeCols) {
		return nil
	}
	h := probe.HashKey(probeCols)
	candidates := idx[h]
	if len(candidates) == 0 {
		return nil
	}
	var out []int
	for _, pos := range candidates {
		if keysMatch(built.Rows[pos], builtCols, probe, probeCols) {
			out = append(out, pos)
		}
	}
	return out
}

func hasNull(r types.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

func keysMatch(a types.Row, aCols []int, b types.Row, bCols []int) bool {
	for i := range aCols {
		if !types.Equal(a[aCols[i]], b[bCols[i]]) {
			return false
		}
	}
	return true
}

func concatCols(a, b []ColRef) []ColRef {
	out := make([]ColRef, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func concatRows(a, b types.Row) types.Row {
	out := make(types.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// crossCheck asserts both column lists have equal length; join construction
// bugs fail loudly instead of corrupting results.
func crossCheck(lCols, rCols []int) error {
	if len(lCols) != len(rCols) {
		return fmt.Errorf("engine: mismatched join key arity %d vs %d", len(lCols), len(rCols))
	}
	return nil
}

package engine

// Vectorized execution: the engine side of internal/colstore.
//
// The vectorized path is engaged per-relation, by data: a scan run with
// Executor.Vectorized attaches the table's columnar image (a colstore.View
// aligned with the materialized rows) to the Relation it produces, and every
// vectorized operator below consumes the view when present and falls back to
// row-major keys when not. Operators therefore compose freely across the two
// representations — a columnar base table semi-joins against a folded
// (row-major) intermediate without conversion, because both sides hash with
// the same inlined FNV-1a (types.Value.HashFNV == colstore.Column.HashFNV).
//
// Every function in this file is bit-identical to its row-path counterpart:
// same rows, same order, same trace cardinalities, at any parallelism degree.
// The only observable difference is the `vectorized` annotation on trace
// spans (excluded from trace.CountsFingerprint).
//
// Scan filters are compiled into colstore kernels under a prefix rule: the
// longest prefix of the pushed-down conjuncts that maps onto typed kernels
// runs columnar (dictionary-mask text predicates, typed numeric comparisons,
// IS NULL tests); the remaining conjuncts evaluate row-at-a-time over the
// survivors, exactly as the row path's bound expression would. All kernels
// are error-free, so the split cannot reorder errors, with one documented
// exception: when an earlier conjunct evaluates to NULL (not FALSE) for a
// row, the row path still evaluates the later conjuncts (and would surface
// their runtime errors, e.g. LIKE on a non-text value) while the kernel path
// drops the row without touching them. The engine's test suites contain no
// such query; SQL implementations differ on this point anyway.

import (
	"sort"
	"time"

	"resultdb/internal/colstore"
	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// KeyFor returns the colstore key addressing rel's key columns: columnar via
// the attached view when present, row-major otherwise. Both forms hash
// identically, so mixed-side joins and Bloom filters are safe.
func KeyFor(rel *Relation, cols []int) colstore.Key {
	if rel.Vec != nil {
		return colstore.ViewKey(rel.Vec, cols)
	}
	return colstore.RowsKey(rel.Rows, cols)
}

// gatherRows materializes the rows a view selects, as pointer copies from the
// backing row slice (late materialization: no value is touched).
func gatherRows(src []types.Row, v *colstore.View) []types.Row {
	if v.Sel == nil {
		return src
	}
	out := make([]types.Row, len(v.Sel))
	for i, j := range v.Sel {
		out[i] = src[j]
	}
	return out
}

// baseRelationVec is the vectorized scan: filter the table's columnar image
// with compiled kernels (plus a row-wise residual for unsupported conjuncts)
// and gather the surviving rows. Bit-identical to baseRelation's row path.
func (e *Executor) baseRelationVec(t *storage.Table, r RelRef, filters []sqlparse.Expr) (*Relation, error) {
	f := t.Columns()
	rel := &Relation{Cols: make([]ColRef, len(t.Def.Columns))}
	for i, c := range t.Def.Columns {
		rel.Cols[i] = ColRef{Rel: r.Alias, Name: c.Name, Kind: c.Type}
	}
	var sp *trace.Span
	var t0 time.Time
	if e.Tracer.Enabled() {
		sp = e.Tracer.Span("scan", r.Table+" AS "+r.Alias)
		sp.Phase = "scan"
		sp.Detail = "true"
		if len(filters) > 0 {
			sp.Detail = sqlparse.AndAll(filters).SQL()
		}
		sp.RowsIn = len(t.Rows)
		sp.Par = parallel.Degree(e.Parallelism)
		sp.Morsels = parallel.Chunks(len(t.Rows), e.Parallelism)
		sp.Vec = true
		sp.Dict = f.DictEntries()
		t0 = time.Now()
	}
	view := &colstore.View{Frame: f}
	if len(filters) == 0 {
		rel.Rows = t.Rows
		rel.Vec = view
		if sp != nil {
			sp.RowsOut = len(rel.Rows)
			sp.DurNS = time.Since(t0).Nanoseconds()
			e.Tracer.AddRowsScanned(len(rel.Rows))
		}
		return rel, nil
	}
	kernels, residual := compileScanKernels(f, rel, filters)
	if len(kernels) > 0 {
		view = &colstore.View{Frame: f, Sel: colstore.RunKernels(f.Rows(), kernels, e.Parallelism)}
	}
	if len(residual) > 0 {
		b := &binder{rel: rel, sub: e.subRunner()}
		check, err := b.bind(sqlparse.AndAll(residual))
		if err != nil {
			return nil, err
		}
		keep, err := parallel.MapErr(view.Len(), e.Parallelism, func(lo, hi int) ([]int32, error) {
			out := make([]int32, 0, hi-lo)
			for j := lo; j < hi; j++ {
				v, err := check(t.Rows[view.Index(j)])
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					out = append(out, int32(j))
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		view = view.Narrow(keep)
	}
	out := &Relation{Cols: rel.Cols, Vec: view}
	out.Rows = gatherRows(t.Rows, view)
	if sp != nil {
		sp.RowsOut = len(out.Rows)
		sp.DurNS = time.Since(t0).Nanoseconds()
		e.Tracer.AddRowsScanned(len(out.Rows))
		e.Tracer.AddRowsDropped(len(t.Rows) - len(out.Rows))
	}
	return out, nil
}

// compileScanKernels maps the longest kernelizable prefix of the pushed-down
// conjuncts onto colstore kernels; the rest is returned as the row-wise
// residual (in original order, so error behavior matches the row path — see
// the package comment's prefix rule).
func compileScanKernels(f *colstore.Frame, rel *Relation, filters []sqlparse.Expr) ([]colstore.Kernel, []sqlparse.Expr) {
	var kernels []colstore.Kernel
	for i, cond := range filters {
		k, ok := compileKernel(f, rel, cond)
		if !ok {
			return kernels, filters[i:]
		}
		kernels = append(kernels, k)
	}
	return kernels, nil
}

// litOf unwraps a literal expression.
func litOf(e sqlparse.Expr) (types.Value, bool) {
	if l, ok := e.(*sqlparse.Literal); ok {
		return l.Value, true
	}
	return types.Value{}, false
}

// colOf resolves a column reference against rel, returning its position.
func colOf(e sqlparse.Expr, rel *Relation) (int, bool) {
	cr, ok := e.(*sqlparse.ColumnRef)
	if !ok {
		return 0, false
	}
	idx, err := rel.ColIndex(cr.Table, cr.Column)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// cmpOpOf maps a parser comparison operator to the kernel enum.
func cmpOpOf(op sqlparse.BinaryOp) (colstore.CmpOp, bool) {
	switch op {
	case sqlparse.OpEq:
		return colstore.CmpEq, true
	case sqlparse.OpNe:
		return colstore.CmpNe, true
	case sqlparse.OpLt:
		return colstore.CmpLt, true
	case sqlparse.OpLe:
		return colstore.CmpLe, true
	case sqlparse.OpGt:
		return colstore.CmpGt, true
	case sqlparse.OpGe:
		return colstore.CmpGe, true
	}
	return 0, false
}

// flipCmp mirrors an operator across the comparison (lit op col ≡ col op' lit).
func flipCmp(op colstore.CmpOp) colstore.CmpOp {
	switch op {
	case colstore.CmpLt:
		return colstore.CmpGt
	case colstore.CmpLe:
		return colstore.CmpGe
	case colstore.CmpGt:
		return colstore.CmpLt
	case colstore.CmpGe:
		return colstore.CmpLe
	}
	return op // Eq, Ne are symmetric
}

// sampleOf returns an arbitrary non-NULL value of the column's kind, used to
// evaluate cross-kind comparisons once (types.Compare orders distinct
// non-numeric kinds by kind tag, so the result is constant over the column).
func sampleOf(col colstore.Column) (types.Value, bool) {
	switch col.(type) {
	case *colstore.Int64Column:
		return types.NewInt(0), true
	case *colstore.Float64Column:
		return types.NewFloat(0), true
	case *colstore.BoolColumn:
		return types.NewBool(false), true
	case *colstore.TextColumn:
		return types.NewText(""), true
	}
	return types.Value{}, false
}

// constOrNonNull compiles a predicate whose outcome is the same for every
// non-NULL value of the column: keep all non-NULL rows or none.
func constOrNonNull(col colstore.Column, pass bool) colstore.Kernel {
	if pass {
		return colstore.NewNonNullKernel(col)
	}
	return colstore.NewConstKernel(false)
}

func numeric(v types.Value) bool {
	return v.Kind() == types.KindInt || v.Kind() == types.KindFloat
}

// compileKernel compiles one conjunct into a colstore kernel, or reports that
// it must stay in the row-wise residual. Supported shapes: column-vs-literal
// comparisons (either side order), BETWEEN with literal bounds, IN over a
// literal list, LIKE on a dictionary-encoded text column, IS [NOT] NULL.
// Every produced kernel reproduces the bound expression's three-valued
// semantics exactly (NULL never passes) and cannot raise a runtime error.
func compileKernel(f *colstore.Frame, rel *Relation, e sqlparse.Expr) (colstore.Kernel, bool) {
	switch x := e.(type) {
	case *sqlparse.Binary:
		op, ok := cmpOpOf(x.Op)
		if !ok {
			return nil, false
		}
		idx, lit := 0, types.Value{}
		if ci, cok := colOf(x.L, rel); cok {
			lv, lok := litOf(x.R)
			if !lok {
				return nil, false
			}
			idx, lit = ci, lv
		} else if ci, cok := colOf(x.R, rel); cok {
			lv, lok := litOf(x.L)
			if !lok {
				return nil, false
			}
			idx, lit, op = ci, lv, flipCmp(op)
		} else {
			return nil, false
		}
		if lit.IsNull() {
			return colstore.NewConstKernel(false), true // cmp with NULL is NULL
		}
		col := f.Col(idx)
		switch c := col.(type) {
		case *colstore.TextColumn:
			// One types.Compare per distinct string; rows are a code lookup.
			return colstore.NewDictKernel(c, c.Keep(func(s string) bool {
				return colstore.EvalCmp(op, types.Compare(types.NewText(s), lit))
			})), true
		case *colstore.Int64Column, *colstore.Float64Column:
			if numeric(lit) {
				k, ok := colstore.NewNumCmpKernel(col, op, lit.Float())
				return k, ok
			}
			sample, _ := sampleOf(col)
			return constOrNonNull(col, colstore.EvalCmp(op, types.Compare(sample, lit))), true
		case *colstore.BoolColumn:
			if lit.Kind() == types.KindBool {
				return colstore.NewBoolKernel(c,
					colstore.EvalCmp(op, types.Compare(types.NewBool(true), lit)),
					colstore.EvalCmp(op, types.Compare(types.NewBool(false), lit))), true
			}
			sample, _ := sampleOf(col)
			return constOrNonNull(col, colstore.EvalCmp(op, types.Compare(sample, lit))), true
		}
		return nil, false // AnyColumn: mixed kinds, stay row-wise

	case *sqlparse.Between:
		idx, ok := colOf(x.E, rel)
		if !ok {
			return nil, false
		}
		lo, lok := litOf(x.Lo)
		hi, hok := litOf(x.Hi)
		if !lok || !hok {
			return nil, false
		}
		if lo.IsNull() || hi.IsNull() {
			return colstore.NewConstKernel(false), true // any NULL operand → NULL
		}
		between := func(v types.Value) bool {
			in := types.Compare(v, lo) >= 0 && types.Compare(v, hi) <= 0
			return in != x.Not
		}
		col := f.Col(idx)
		switch c := col.(type) {
		case *colstore.TextColumn:
			return colstore.NewDictKernel(c, c.Keep(func(s string) bool {
				return between(types.NewText(s))
			})), true
		case *colstore.Int64Column, *colstore.Float64Column:
			if numeric(lo) && numeric(hi) {
				k, ok := colstore.NewNumBetweenKernel(col, lo.Float(), hi.Float(), x.Not)
				return k, ok
			}
			sample, _ := sampleOf(col)
			return constOrNonNull(col, between(sample)), true
		case *colstore.BoolColumn:
			return colstore.NewBoolKernel(c,
				between(types.NewBool(true)), between(types.NewBool(false))), true
		}
		return nil, false

	case *sqlparse.InList:
		idx, ok := colOf(x.E, rel)
		if !ok {
			return nil, false
		}
		lits := make([]types.Value, len(x.List))
		for i, it := range x.List {
			v, ok := litOf(it)
			if !ok {
				return nil, false
			}
			lits[i] = v
		}
		// inPass reproduces the bound InList for a non-NULL probe value:
		// match → !Not; no match with a NULL item → UNKNOWN (drop); else Not.
		inPass := func(v types.Value) bool {
			sawNull := false
			for _, it := range lits {
				if it.IsNull() {
					sawNull = true
					continue
				}
				if types.Compare(v, it) == 0 {
					return !x.Not
				}
			}
			if sawNull {
				return false
			}
			return x.Not
		}
		col := f.Col(idx)
		switch c := col.(type) {
		case *colstore.TextColumn:
			return colstore.NewDictKernel(c, c.Keep(func(s string) bool {
				return inPass(types.NewText(s))
			})), true
		case *colstore.Int64Column, *colstore.Float64Column:
			var items []float64
			sawNull := false
			for _, it := range lits {
				switch {
				case it.IsNull():
					sawNull = true
				case numeric(it):
					items = append(items, it.Float())
				}
				// Non-numeric items can never equal a numeric value
				// (types.Compare orders distinct kinds); omit them.
			}
			k, ok := colstore.NewNumInKernel(col, items, x.Not, sawNull)
			return k, ok
		case *colstore.BoolColumn:
			return colstore.NewBoolKernel(c,
				inPass(types.NewBool(true)), inPass(types.NewBool(false))), true
		}
		return nil, false

	case *sqlparse.Like:
		idx, ok := colOf(x.E, rel)
		if !ok {
			return nil, false
		}
		// Only a typed TEXT column is safe: the row path raises an error for
		// LIKE on non-text values, which a kernel must not swallow.
		c, ok := f.Col(idx).(*colstore.TextColumn)
		if !ok {
			return nil, false
		}
		match := compileLike(x.Pattern)
		return colstore.NewDictKernel(c, c.Keep(func(s string) bool {
			return match(s) != x.Not
		})), true

	case *sqlparse.IsNull:
		idx, ok := colOf(x.E, rel)
		if !ok {
			return nil, false
		}
		return colstore.NewIsNullKernel(f.Col(idx), x.Not), true
	}
	return nil, false
}

// SemiJoinVec is SemiJoinVecSpan without tracing.
func SemiJoinVec(l *Relation, lCols []int, r *Relation, rCols []int, par int) *Relation {
	return SemiJoinVecSpan(l, lCols, r, rCols, par, nil)
}

// SemiJoinVecSpan is the vectorized l ⋉ r: the build side's distinct keys go
// into a position-based key set (no per-row key projection, dictionary-hash
// text keys), the probe emits a selection vector, and only the surviving rows
// are gathered. Either side may be columnar or row-major; the result carries
// l's view narrowed to the survivors when l was columnar. Bit-identical to
// SemiJoinSpan.
func SemiJoinVecSpan(l *Relation, lCols []int, r *Relation, rCols []int, par int, sp *trace.Span) *Relation {
	var t0 time.Time
	if sp != nil {
		sp.Vec = true
		sp.Par = parallel.Degree(par)
		sp.Morsels = parallel.Chunks(len(l.Rows), par)
		t0 = time.Now()
	}
	build := KeyFor(r, rCols)
	keys := colstore.NewKeySet(build)
	for j, n := 0, build.Len(); j < n; j++ {
		keys.Add(j)
	}
	if sp != nil {
		sp.BuildNS = time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}
	probe := KeyFor(l, lCols)
	kept := parallel.Map(len(l.Rows), par, func(lo, hi int) []int32 {
		out := make([]int32, 0, hi-lo)
		for j := lo; j < hi; j++ {
			if keys.Contains(probe, j) {
				out = append(out, int32(j))
			}
		}
		return out
	})
	out := &Relation{Cols: l.Cols}
	out.Rows = make([]types.Row, len(kept))
	for i, j := range kept {
		out.Rows[i] = l.Rows[j]
	}
	if l.Vec != nil {
		out.Vec = l.Vec.Narrow(kept)
	}
	if sp != nil {
		sp.ProbeNS = time.Since(t0).Nanoseconds()
	}
	return out
}

// hashJoinVecInner is hashJoinInner running build and probe on colstore keys
// when at least one side is columnar (same side choice, same emit order, same
// two-phase parallel build). Cross joins and all-row-major inputs delegate to
// the row path unchanged. The joined output is row-major (Vec nil): its
// schema no longer matches either frame.
func hashJoinVecInner(l, r *Relation, lCols, rCols []int, par int, sp *trace.Span) *Relation {
	if len(lCols) == 0 || (l.Vec == nil && r.Vec == nil) {
		return hashJoinInner(l, r, lCols, rCols, par, sp)
	}
	out := &Relation{Cols: concatCols(l.Cols, r.Cols)}
	build, probe := r, l
	buildCols, probeCols := rCols, lCols
	if len(r.Rows) > len(l.Rows) {
		build, probe = l, r
		buildCols, probeCols = lCols, rCols
	}
	var t0 time.Time
	if sp != nil {
		sp.Vec = true
		sp.Par = parallel.Degree(par)
		sp.Morsels = parallel.Chunks(len(probe.Rows), par)
		t0 = time.Now()
	}
	ht := colstore.BuildHashTable(KeyFor(build, buildCols), par)
	if sp != nil {
		sp.BuildNS = time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}
	pk := KeyFor(probe, probeCols)
	if probe == l {
		out.Rows = parallel.Map(len(probe.Rows), par, func(lo, hi int) []types.Row {
			rows := make([]types.Row, 0, hi-lo)
			for j := lo; j < hi; j++ {
				lr := probe.Rows[j]
				ht.Each(pk, j, func(pos int32) {
					rows = append(rows, concatRows(lr, build.Rows[pos]))
				})
			}
			return rows
		})
	} else {
		out.Rows = parallel.Map(len(probe.Rows), par, func(lo, hi int) []types.Row {
			rows := make([]types.Row, 0, hi-lo)
			for j := lo; j < hi; j++ {
				rr := probe.Rows[j]
				ht.Each(pk, j, func(pos int32) {
					rows = append(rows, concatRows(build.Rows[pos], rr))
				})
			}
			return rows
		})
	}
	if sp != nil {
		sp.ProbeNS = time.Since(t0).Nanoseconds()
	}
	return out
}

// HashJoinVecSpan is the exported vectorized hash join (used by internal/core
// when folding): vectorized when either input carries a columnar view, the
// plain row join otherwise. sp may be nil.
func HashJoinVecSpan(l, r *Relation, lCols, rCols []int, par int, sp *trace.Span) *Relation {
	return hashJoinVecInner(l, r, lCols, rCols, par, sp)
}

// Columnarize returns rel with a freshly built columnar image attached (a
// shallow copy; rows are shared). Columns whose values do not match their
// declared kind degrade to exact-value fallback vectors, so this is safe on
// any relation, including post-join intermediates. Used before repeated
// columnar consumption (Decompose's per-alias project+dedup).
func Columnarize(rel *Relation, par int) *Relation {
	kinds := make([]types.Kind, len(rel.Cols))
	for i, c := range rel.Cols {
		kinds[i] = c.Kind
	}
	f := colstore.NewFrameDegree(kinds, rel.Rows, par)
	return &Relation{Cols: rel.Cols, Rows: rel.Rows, Vec: &colstore.View{Frame: f}}
}

// ProjectDistinctPar projects r onto cols and removes duplicate rows —
// exactly ProjectPar(cols, par).DistinctPar(par), but when r carries a
// columnar view the dedup runs on column data (dictionary-hash keys, no
// materialization of dropped rows): survivors are found first, then only they
// are projected. First occurrence wins, output in input order, identical at
// any degree.
func (r *Relation) ProjectDistinctPar(cols []int, par int) *Relation {
	if r.Vec == nil {
		return r.ProjectPar(cols, par).DistinctPar(par)
	}
	out := &Relation{Cols: make([]ColRef, len(cols))}
	for i, c := range cols {
		out.Cols[i] = r.Cols[c]
	}
	key := colstore.ViewKey(r.Vec, cols)
	n := len(r.Rows)
	nc := parallel.Chunks(n, par)

	materialize := func(order []int32) {
		out.Rows = make([]types.Row, len(order))
		parallel.For(len(order), par, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Rows[i] = r.Rows[order[i]].Project(cols)
			}
		})
		// Keep the output columnar too: gather the surviving positions into
		// a frame aligned with out.Rows. Text columns share the source
		// dictionary (code copies only), which is what lets the columnar
		// wire encoder ship scan-time dictionaries without re-encoding.
		kinds := make([]types.Kind, len(out.Cols))
		for i, c := range out.Cols {
			kinds[i] = c.Kind
		}
		out.Vec = &colstore.View{Frame: colstore.GatherView(r.Vec, cols, kinds, order, par)}
	}

	if nc <= 1 {
		buckets := make(map[uint64][]int32, n)
		order := make([]int32, 0, n)
		for j := 0; j < n; j++ {
			h := key.Hash(j)
			dup := false
			for _, p := range buckets[h] {
				if colstore.KeysEqual(key, int(p), key, j) {
					dup = true
					break
				}
			}
			if !dup {
				buckets[h] = append(buckets[h], int32(j))
				order = append(order, int32(j))
			}
		}
		materialize(order)
		return out
	}

	// Parallel path: the same four phases as DistinctPar, on key hashes
	// instead of materialized rows.
	hs := make([]uint64, n)
	parallel.For(n, par, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			hs[j] = key.Hash(j)
		}
	})
	P := nc
	locals := make([][][]int32, nc)
	parallel.ForChunks(n, par, func(chunk, lo, hi int) {
		local := make([][]int32, P)
		for j := lo; j < hi; j++ {
			p := int(hs[j] % uint64(P))
			local[p] = append(local[p], int32(j))
		}
		locals[chunk] = local
	})
	survivors := make([][]int32, P)
	parallel.Each(P, par, func(p int) {
		seen := make(map[uint64][]int32)
		var keep []int32
		for c := 0; c < nc; c++ {
			for _, j := range locals[c][p] {
				h := hs[j]
				dup := false
				for _, q := range seen[h] {
					if colstore.KeysEqual(key, int(q), key, int(j)) {
						dup = true
						break
					}
				}
				if !dup {
					seen[h] = append(seen[h], j)
					keep = append(keep, j)
				}
			}
		}
		survivors[p] = keep
	})
	total := 0
	for _, s := range survivors {
		total += len(s)
	}
	order := make([]int32, 0, total)
	for _, s := range survivors {
		order = append(order, s...)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	materialize(order)
	return out
}

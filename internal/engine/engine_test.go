package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

// memSource is a trivial engine.Source over a map of tables.
type memSource map[string]*storage.Table

func (m memSource) Table(name string) (*storage.Table, error) {
	if t, ok := m[strings.ToLower(name)]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("no table %q", name)
}

func mkTable(t *testing.T, name string, cols []catalog.Column, pk []string, rows ...types.Row) *storage.Table {
	t.Helper()
	def := catalog.MustTableDef(name, cols)
	def.PrimaryKey = pk
	tab := storage.NewTable(def)
	if err := tab.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	return tab
}

func intCol(n string) catalog.Column  { return catalog.Column{Name: n, Type: types.KindInt} }
func textCol(n string) catalog.Column { return catalog.Column{Name: n, Type: types.KindText} }

func ir(vals ...any) types.Row {
	row := make(types.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			row[i] = types.NewInt(int64(x))
		case string:
			row[i] = types.NewText(x)
		case float64:
			row[i] = types.NewFloat(x)
		case bool:
			row[i] = types.NewBool(x)
		case nil:
			row[i] = types.Null()
		default:
			panic("unsupported")
		}
	}
	return row
}

// shopSource is the paper's running example as an engine source.
func shopSource(t *testing.T) memSource {
	t.Helper()
	return memSource{
		"customers": mkTable(t, "customers",
			[]catalog.Column{intCol("id"), textCol("name"), textCol("state")}, []string{"id"},
			ir(0, "custA", "NY"), ir(1, "custB", "CA"), ir(2, "custC", "NY")),
		"orders": mkTable(t, "orders",
			[]catalog.Column{intCol("oid"), intCol("cid"), intCol("pid")}, []string{"oid"},
			ir(0, 0, 1), ir(1, 1, 1), ir(2, 1, 2), ir(3, 2, 1), ir(4, 0, 2), ir(5, 1, 3)),
		"products": mkTable(t, "products",
			[]catalog.Column{intCol("id"), textCol("name"), textCol("category")}, []string{"id"},
			ir(0, "smartphone", "electronics"), ir(1, "laptop", "electronics"),
			ir(2, "shirt", "clothing"), ir(3, "pants", "clothing")),
	}
}

func runSelect(t *testing.T, src Source, sql string) *Relation {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ex := &Executor{Src: src}
	rel, err := ex.Select(sel)
	if err != nil {
		t.Fatalf("select %q: %v", sql, err)
	}
	return rel
}

func sortedStrings(rel *Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, r := range rel.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, rel *Relation, want ...string) {
	t.Helper()
	got := sortedStrings(rel)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("rows mismatch:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestSelectSingleTableFilter(t *testing.T) {
	rel := runSelect(t, shopSource(t), "SELECT c.name FROM customers AS c WHERE c.state = 'NY'")
	expectRows(t, rel, "custA", "custC")
}

func TestSelectJoinThreeWay(t *testing.T) {
	rel := runSelect(t, shopSource(t), `
		SELECT c.name, p.name FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.state = 'NY'`)
	expectRows(t, rel,
		"custA | laptop", "custA | shirt", "custC | laptop")
}

func TestSelectExplicitJoinSyntax(t *testing.T) {
	rel := runSelect(t, shopSource(t), `
		SELECT c.name, p.name
		FROM customers AS c
		JOIN orders AS o ON c.id = o.cid
		JOIN products AS p ON p.id = o.pid
		WHERE c.state = 'NY'`)
	expectRows(t, rel,
		"custA | laptop", "custA | shirt", "custC | laptop")
}

func TestSelectDistinctAndOrderLimit(t *testing.T) {
	rel := runSelect(t, shopSource(t), `
		SELECT DISTINCT p.category FROM products AS p ORDER BY p.category`)
	if len(rel.Rows) != 2 || rel.Rows[0].String() != "clothing" {
		t.Fatalf("rows = %v", rel.Rows)
	}
	rel2 := runSelect(t, shopSource(t), `
		SELECT p.name FROM products AS p ORDER BY p.name DESC LIMIT 2`)
	expectRows(t, rel2, "smartphone", "shirt")
}

func TestSelectLeftOuterJoin(t *testing.T) {
	src := shopSource(t)
	// custB (CA) has orders; give customers an outer join against a
	// filtered product set so some rows pad with NULL.
	rel := runSelect(t, src, `
		SELECT c.name, p.name
		FROM customers AS c
		LEFT OUTER JOIN orders AS o ON c.id = o.cid AND o.pid = 3
		LEFT OUTER JOIN products AS p ON p.id = o.pid`)
	expectRows(t, rel,
		"custA | NULL", "custB | pants", "custC | NULL")
}

func TestSelectAggregates(t *testing.T) {
	src := shopSource(t)
	rel := runSelect(t, src, `SELECT COUNT(*) FROM orders AS o`)
	if rel.Rows[0][0].Int() != 6 {
		t.Fatalf("count = %v", rel.Rows[0])
	}
	rel = runSelect(t, src, `
		SELECT COUNT(*), MIN(o.pid), MAX(o.pid), SUM(o.pid), AVG(o.pid)
		FROM orders AS o WHERE o.cid = 1`)
	r := rel.Rows[0]
	if r[0].Int() != 3 || r[1].Int() != 1 || r[2].Int() != 3 || r[3].Int() != 6 || r[4].Float() != 2 {
		t.Fatalf("aggregates = %v", r)
	}
	// COUNT over a join.
	rel = runSelect(t, src, `
		SELECT COUNT(*) FROM customers AS c, orders AS o
		WHERE c.id = o.cid AND c.state = 'NY'`)
	if rel.Rows[0][0].Int() != 3 {
		t.Fatalf("join count = %v", rel.Rows[0])
	}
}

func TestSelectInSubquery(t *testing.T) {
	rel := runSelect(t, shopSource(t), `
		SELECT c.name FROM customers AS c
		WHERE c.id IN (SELECT o.cid FROM orders AS o WHERE o.pid = 3)`)
	expectRows(t, rel, "custB")
	rel = runSelect(t, shopSource(t), `
		SELECT c.name FROM customers AS c
		WHERE c.id NOT IN (SELECT o.cid FROM orders AS o WHERE o.pid = 3)`)
	expectRows(t, rel, "custA", "custC")
}

func TestSelectComputedItems(t *testing.T) {
	rel := runSelect(t, shopSource(t), `
		SELECT o.pid * 10 + o.cid AS code FROM orders AS o WHERE o.oid = 2`)
	if rel.Rows[0][0].Int() != 21 {
		t.Fatalf("computed = %v", rel.Rows[0])
	}
	if rel.Cols[0].Name != "code" {
		t.Errorf("alias = %s", rel.Cols[0].Name)
	}
}

func TestSelectCrossProductFallback(t *testing.T) {
	// No join predicate between the two relations: Cartesian product.
	rel := runSelect(t, shopSource(t), `
		SELECT c.name, p.name FROM customers AS c, products AS p
		WHERE c.state = 'CA' AND p.category = 'clothing'`)
	expectRows(t, rel, "custB | shirt", "custB | pants")
}

func TestSelectResidualPredicate(t *testing.T) {
	// Cross-relation non-equi predicate lands in the residual filter.
	rel := runSelect(t, shopSource(t), `
		SELECT c.name, o.pid FROM customers AS c, orders AS o
		WHERE c.id = o.cid AND o.pid > c.id`)
	expectRows(t, rel,
		"custA | 1", "custA | 2", "custC | NULL"[:0]+"custB | 2", "custB | 3")
}

func TestThreeValuedLogic(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t",
			[]catalog.Column{intCol("id"), intCol("x")}, []string{"id"},
			ir(1, 10), ir(2, nil), ir(3, 30)),
	}
	// NULL comparisons are unknown: row 2 never matches either branch.
	rel := runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.x > 15")
	expectRows(t, rel, "3")
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE NOT (t.x > 15)")
	expectRows(t, rel, "1")
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.x IS NULL")
	expectRows(t, rel, "2")
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.x IS NOT NULL")
	expectRows(t, rel, "1", "3")
	// FALSE AND NULL = FALSE, TRUE OR NULL = TRUE (short circuit).
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id = 2 AND (1 = 0 AND t.x > 5)")
	expectRows(t, rel)
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id = 2 AND (1 = 1 OR t.x > 5)")
	expectRows(t, rel, "2")
	// IN with NULL element: unknown unless matched.
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id IN (1, NULL)")
	expectRows(t, rel, "1")
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id NOT IN (1, NULL)")
	expectRows(t, rel) // all unknown or false
}

func TestNullJoinKeysNeverMatch(t *testing.T) {
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("k")}, []string{"id"},
			ir(1, 7), ir(2, nil)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("k")}, []string{"id"},
			ir(10, 7), ir(11, nil)),
	}
	rel := runSelect(t, src, "SELECT a.id, b.id FROM a AS a, b AS b WHERE a.k = b.k")
	expectRows(t, rel, "1 | 10")
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "h_x_o", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%b%c", true},
		{"abc", "%x%", false},
		{"aXbXc", "a%c", true},
		{"ab", "a_b", false},
		{"sequel-anna", "sequel-%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
		// compileLike fast paths must agree with the general matcher.
		if got := compileLike(c.p)(c.s); got != c.want {
			t.Errorf("compileLike(%q)(%q) = %v, want %v", c.p, c.s, got, c.want)
		}
	}
}

func TestArith(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id"), intCol("x")}, []string{"id"}, ir(1, 7)),
	}
	rel := runSelect(t, src, "SELECT t.x + 1, t.x - 2, t.x * 3, t.x / 2, -t.x FROM t AS t")
	r := rel.Rows[0]
	want := []int64{8, 5, 21, 3, -7}
	for i, w := range want {
		if r[i].Int() != w {
			t.Errorf("col %d = %v, want %d", i, r[i], w)
		}
	}
	// Division by zero errors.
	sel, _ := sqlparse.ParseSelect("SELECT t.x / 0 FROM t AS t")
	ex := &Executor{Src: src}
	if _, err := ex.Select(sel); err == nil {
		t.Error("division by zero should error")
	}
}

func TestAnalyzeSPJClassification(t *testing.T) {
	src := shopSource(t)
	sel, _ := sqlparse.ParseSelect(`
		SELECT c.name, p.name FROM customers AS c, orders AS o, products AS p
		WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid AND c.id + p.id > 0`)
	spec, err := AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rels) != 3 {
		t.Fatalf("rels = %d", len(spec.Rels))
	}
	if len(spec.Filters["c"]) != 1 {
		t.Errorf("c filters = %v", spec.Filters["c"])
	}
	if len(spec.JoinPreds) != 2 {
		t.Errorf("join preds = %v", spec.JoinPreds)
	}
	if len(spec.Residual) != 1 {
		t.Errorf("residual = %v", spec.Residual)
	}
	if got := strings.Join(spec.OutputRels(), ","); got != "c,p" {
		t.Errorf("output rels = %s", got)
	}
	if got := strings.Join(spec.JoinAttrsOf("o"), ","); got != "cid,pid" {
		t.Errorf("o join attrs = %s", got)
	}
	if got := strings.Join(spec.ProjectionOf("p"), ","); got != "name" {
		t.Errorf("p projection = %s", got)
	}
}

func TestAnalyzeSPJBareColumnResolution(t *testing.T) {
	src := shopSource(t)
	// "state" is unique to customers; "name" is ambiguous.
	sel, _ := sqlparse.ParseSelect(`SELECT state FROM customers AS c, products AS p WHERE c.id = p.id`)
	spec, err := AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Projection[0].Rel != "c" {
		t.Errorf("bare column resolved to %s", spec.Projection[0].Rel)
	}
	sel2, _ := sqlparse.ParseSelect(`SELECT name FROM customers AS c, products AS p WHERE c.id = p.id`)
	if _, err := AnalyzeSPJ(sel2, src); err == nil {
		t.Error("ambiguous bare column should fail analysis")
	}
}

func TestAnalyzeSPJRejectsOuterJoinsAndDuplicateAliases(t *testing.T) {
	src := shopSource(t)
	sel, _ := sqlparse.ParseSelect(`SELECT p.id FROM products AS p LEFT OUTER JOIN orders AS o ON p.id = o.pid`)
	if _, err := AnalyzeSPJ(sel, src); err == nil {
		t.Error("outer join should be rejected")
	}
	sel2, _ := sqlparse.ParseSelect(`SELECT c.id FROM customers AS c, orders AS c WHERE 1 = 1`)
	if _, err := AnalyzeSPJ(sel2, src); err == nil {
		t.Error("duplicate alias should be rejected")
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	rel := runSelect(t, shopSource(t), `
		SELECT a.name, b.name FROM customers AS a, customers AS b
		WHERE a.state = b.state AND a.id < b.id`)
	expectRows(t, rel, "custA | custC")
}

func TestJoinAllCycleEdgesApplied(t *testing.T) {
	// Triangle: a-b, b-c, a-c; the a-c edge closes a cycle and must be
	// enforced exactly once by the greedy joiner.
	src := memSource{
		"a": mkTable(t, "a", []catalog.Column{intCol("id"), intCol("x")}, []string{"id"},
			ir(1, 100), ir(2, 200)),
		"b": mkTable(t, "b", []catalog.Column{intCol("id"), intCol("aid")}, []string{"id"},
			ir(1, 1), ir(2, 2)),
		"c": mkTable(t, "c", []catalog.Column{intCol("id"), intCol("bid"), intCol("ax")}, []string{"id"},
			ir(1, 1, 100), ir(2, 2, 100)),
	}
	rel := runSelect(t, src, `
		SELECT a.id, c.id FROM a AS a, b AS b, c AS c
		WHERE a.id = b.aid AND b.id = c.bid AND a.x = c.ax`)
	expectRows(t, rel, "1 | 1")
}

func TestHashJoinMatchesNestedLoopOracle(t *testing.T) {
	// Randomized join vs a brute-force oracle.
	for seed := int64(0); seed < 5; seed++ {
		l := &Relation{Cols: []ColRef{{Rel: "l", Name: "k"}, {Rel: "l", Name: "v"}}}
		r := &Relation{Cols: []ColRef{{Rel: "r", Name: "k"}, {Rel: "r", Name: "w"}}}
		rng := newTestRand(seed)
		for i := 0; i < 60; i++ {
			l.Rows = append(l.Rows, ir(rng(8), i))
			r.Rows = append(r.Rows, ir(rng(8), i+1000))
		}
		got := hashJoinInner(l, r, []int{0}, []int{0}, 1, nil)
		want := 0
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				if types.Equal(lr[0], rr[0]) {
					want++
				}
			}
		}
		if len(got.Rows) != want {
			t.Fatalf("seed %d: hash join %d rows, oracle %d", seed, len(got.Rows), want)
		}
	}
}

// newTestRand returns a tiny deterministic generator.
func newTestRand(seed int64) func(n int) int {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	return func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
}

func TestSemiJoinExported(t *testing.T) {
	l := &Relation{Cols: []ColRef{{Rel: "l", Name: "k"}}}
	r := &Relation{Cols: []ColRef{{Rel: "r", Name: "k"}}}
	l.Rows = []types.Row{ir(1), ir(2), ir(3), ir(2)}
	r.Rows = []types.Row{ir(2), ir(4)}
	out := SemiJoin(l, []int{0}, r, []int{0})
	expectRows(t, out, "2", "2")
}

func TestRelationHelpers(t *testing.T) {
	rel := &Relation{
		Cols: []ColRef{{Rel: "a", Name: "x"}, {Rel: "a", Name: "y"}, {Rel: "b", Name: "x"}},
		Rows: []types.Row{ir(1, 2, 3)},
	}
	if _, err := rel.ColIndex("", "x"); err == nil {
		t.Error("ambiguous bare name should error")
	}
	if i, err := rel.ColIndex("b", "x"); err != nil || i != 2 {
		t.Errorf("ColIndex(b.x) = %d, %v", i, err)
	}
	if _, err := rel.ColIndex("a", "zz"); err == nil {
		t.Error("unknown column should error")
	}
	if got := rel.ColumnsOf("a"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ColumnsOf(a) = %v", got)
	}
	if names := rel.ColumnNames(); names[2] != "b.x" {
		t.Errorf("ColumnNames = %v", names)
	}
	p := rel.Project([]int{2, 0})
	if p.Rows[0][0].Int() != 3 || p.Cols[0].Rel != "b" {
		t.Errorf("Project = %+v", p)
	}
}

func TestTableToRelation(t *testing.T) {
	src := shopSource(t)
	tab, _ := src.Table("customers")
	rel := TableToRelation("c", tab)
	if len(rel.Cols) != 3 || rel.Cols[0].Rel != "c" || len(rel.Rows) != 3 {
		t.Errorf("TableToRelation = %+v", rel)
	}
}

// Package engine implements query execution for the reproduction's
// main-memory DBMS: SPJ analysis (join-graph extraction and predicate
// pushdown), a greedy cardinality-based join planner, hash joins and left
// outer joins, expression evaluation with SQL three-valued logic, DISTINCT,
// aggregation (COUNT), ORDER BY, and LIMIT.
//
// Operators materialize intermediate relations (batch-at-a-time execution),
// which matches a main-memory engine and keeps cardinalities exact — the
// paper injects true cardinalities into mutable's optimizer for the same
// effect (Section 6.3).
package engine

import (
	"fmt"
	"sort"

	"resultdb/internal/types"
)

// ColRef identifies one column of an intermediate relation: the relation
// alias it came from, its name, and its type.
type ColRef struct {
	Rel  string
	Name string
	Kind types.Kind
}

// Relation is a materialized intermediate result: a schema plus rows.
type Relation struct {
	Cols []ColRef
	Rows []types.Row
}

// ColIndex resolves a (possibly table-qualified) column reference against
// the schema. rel == "" means a bare column name, which must be unambiguous.
func (r *Relation) ColIndex(rel, name string) (int, error) {
	found := -1
	for i, c := range r.Cols {
		if !equalFold(c.Name, name) {
			continue
		}
		if rel != "" && !equalFold(c.Rel, rel) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("engine: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if rel != "" {
			return 0, fmt.Errorf("engine: unknown column %s.%s", rel, name)
		}
		return 0, fmt.Errorf("engine: unknown column %s", name)
	}
	return found, nil
}

// ColumnsOf returns the positions of every column belonging to alias rel,
// in schema order.
func (r *Relation) ColumnsOf(rel string) []int {
	var out []int
	for i, c := range r.Cols {
		if equalFold(c.Rel, rel) {
			out = append(out, i)
		}
	}
	return out
}

// Project returns a new relation restricted to the given column positions.
func (r *Relation) Project(cols []int) *Relation {
	out := &Relation{Cols: make([]ColRef, len(cols))}
	for i, c := range cols {
		out.Cols[i] = r.Cols[c]
	}
	out.Rows = make([]types.Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Project(cols)
	}
	return out
}

// Distinct returns a new relation with duplicate rows removed (first
// occurrence wins).
func (r *Relation) Distinct() *Relation {
	seen := types.NewRowSet()
	out := &Relation{Cols: r.Cols}
	for _, row := range r.Rows {
		if seen.Add(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// SortBy orders rows by the given key columns (all ascending unless desc).
func (r *Relation) SortBy(keys []int, desc []bool) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k, col := range keys {
			c := types.Compare(a[col], b[col])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// WireSize returns the Section 6.1 result-set size of the relation in bytes.
func (r *Relation) WireSize() int {
	n := 0
	for _, row := range r.Rows {
		n += row.WireSize()
	}
	return n
}

// ColumnNames renders output column labels ("rel.name" when rel is set).
func (r *Relation) ColumnNames() []string {
	out := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		if c.Rel != "" {
			out[i] = c.Rel + "." + c.Name
		} else {
			out[i] = c.Name
		}
	}
	return out
}

// equalFold is a cheap ASCII case-insensitive compare (identifiers are ASCII).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Package engine implements query execution for the reproduction's
// main-memory DBMS: SPJ analysis (join-graph extraction and predicate
// pushdown), a greedy cardinality-based join planner, hash joins and left
// outer joins, expression evaluation with SQL three-valued logic, DISTINCT,
// aggregation (COUNT), ORDER BY, and LIMIT.
//
// Operators materialize intermediate relations (batch-at-a-time execution),
// which matches a main-memory engine and keeps cardinalities exact — the
// paper injects true cardinalities into mutable's optimizer for the same
// effect (Section 6.3).
package engine

import (
	"fmt"
	"sort"

	"resultdb/internal/colstore"
	"resultdb/internal/parallel"
	"resultdb/internal/types"
)

// ColRef identifies one column of an intermediate relation: the relation
// alias it came from, its name, and its type.
type ColRef struct {
	Rel  string
	Name string
	Kind types.Kind
}

// Relation is a materialized intermediate result: a schema plus rows.
//
// Vec, when non-nil, is the relation's columnar image: a colstore view whose
// logical order matches Rows exactly (Vec.Len() == len(Rows), and
// Vec.Index(j) is the frame position backing Rows[j]). Vectorized operators
// attach it so downstream operators (semi-joins, Bloom probes,
// project+distinct) can run on typed column vectors and selection vectors
// instead of re-touching rows; operators that cannot preserve the alignment
// (joins, general projection) leave it nil and later consumers fall back to
// the row-major path. Vec never changes what a relation *is* — only how fast
// operators read it.
type Relation struct {
	Cols []ColRef
	Rows []types.Row
	Vec  *colstore.View
}

// ColIndex resolves a (possibly table-qualified) column reference against
// the schema. rel == "" means a bare column name, which must be unambiguous.
func (r *Relation) ColIndex(rel, name string) (int, error) {
	found := -1
	for i, c := range r.Cols {
		if !equalFold(c.Name, name) {
			continue
		}
		if rel != "" && !equalFold(c.Rel, rel) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("engine: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if rel != "" {
			return 0, fmt.Errorf("engine: unknown column %s.%s", rel, name)
		}
		return 0, fmt.Errorf("engine: unknown column %s", name)
	}
	return found, nil
}

// ColumnsOf returns the positions of every column belonging to alias rel,
// in schema order.
func (r *Relation) ColumnsOf(rel string) []int {
	var out []int
	for i, c := range r.Cols {
		if equalFold(c.Rel, rel) {
			out = append(out, i)
		}
	}
	return out
}

// Project returns a new relation restricted to the given column positions.
func (r *Relation) Project(cols []int) *Relation {
	return r.ProjectPar(cols, 0)
}

// ProjectPar is Project at an explicit degree of parallelism (0 = auto,
// 1 = serial). Output rows are written to fixed positions, so the result is
// identical at any degree.
func (r *Relation) ProjectPar(cols []int, par int) *Relation {
	out := &Relation{Cols: make([]ColRef, len(cols))}
	for i, c := range cols {
		out.Cols[i] = r.Cols[c]
	}
	out.Rows = make([]types.Row, len(r.Rows))
	parallel.For(len(r.Rows), par, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Rows[i] = r.Rows[i].Project(cols)
		}
	})
	return out
}

// Distinct returns a new relation with duplicate rows removed (first
// occurrence wins).
func (r *Relation) Distinct() *Relation {
	return r.DistinctPar(0)
}

// DistinctPar is Distinct at an explicit degree of parallelism (0 = auto,
// 1 = serial). The parallel path hash-partitions rows so equal rows land in
// the same partition, deduplicates each partition independently (keeping the
// first occurrence by original row index), and emits the survivors in
// ascending index order — exactly the rows, and exactly the order, the
// serial first-occurrence-wins loop produces.
func (r *Relation) DistinctPar(par int) *Relation {
	n := len(r.Rows)
	nc := parallel.Chunks(n, par)
	out := &Relation{Cols: r.Cols}
	if nc <= 1 {
		seen := types.NewRowSet()
		for _, row := range r.Rows {
			if seen.Add(row) {
				out.Rows = append(out.Rows, row)
			}
		}
		return out
	}

	// Phase 1: hash every row (disjoint writes).
	hs := make([]uint64, n)
	parallel.For(n, par, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hs[i] = r.Rows[i].Hash()
		}
	})

	// Phase 2: chunk-local partition lists; duplicates share a hash, hence a
	// partition, and indices stay ascending within each (chunk, partition).
	P := nc
	locals := make([][][]int, nc)
	parallel.ForChunks(n, par, func(chunk, lo, hi int) {
		local := make([][]int, P)
		for i := lo; i < hi; i++ {
			p := int(hs[i] % uint64(P))
			local[p] = append(local[p], i)
		}
		locals[chunk] = local
	})

	// Phase 3: per-partition dedup, visiting chunks in input order so the
	// first occurrence by original index survives.
	survivors := make([][]int, P)
	parallel.Each(P, par, func(p int) {
		seen := make(map[uint64][]int)
		var keep []int
		for c := 0; c < nc; c++ {
			for _, i := range locals[c][p] {
				h := hs[i]
				dup := false
				for _, j := range seen[h] {
					if r.Rows[j].Equal(r.Rows[i]) {
						dup = true
						break
					}
				}
				if !dup {
					seen[h] = append(seen[h], i)
					keep = append(keep, i)
				}
			}
		}
		survivors[p] = keep
	})

	// Phase 4: merge survivors back into global input order.
	total := 0
	for _, s := range survivors {
		total += len(s)
	}
	order := make([]int, 0, total)
	for _, s := range survivors {
		order = append(order, s...)
	}
	sort.Ints(order)
	out.Rows = make([]types.Row, len(order))
	for i, idx := range order {
		out.Rows[i] = r.Rows[idx]
	}
	return out
}

// SortBy orders rows by the given key columns (all ascending unless desc).
func (r *Relation) SortBy(keys []int, desc []bool) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k, col := range keys {
			c := types.Compare(a[col], b[col])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// WireSize returns the Section 6.1 result-set size of the relation in bytes.
func (r *Relation) WireSize() int {
	n := 0
	for _, row := range r.Rows {
		n += row.WireSize()
	}
	return n
}

// ColumnNames renders output column labels ("rel.name" when rel is set).
func (r *Relation) ColumnNames() []string {
	out := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		if c.Rel != "" {
			out[i] = c.Rel + "." + c.Name
		} else {
			out[i] = c.Name
		}
	}
	return out
}

// equalFold is a cheap ASCII case-insensitive compare (identifiers are ASCII).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

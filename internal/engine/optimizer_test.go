package engine

import (
	"math/rand"
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/sqlparse"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

func TestDPMatchesGreedyOnPaperExample(t *testing.T) {
	src := shopSource(t)
	sel, _ := sqlparse.ParseSelect(`
		SELECT c.name, p.name FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.state = 'NY'`)
	spec, err := AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	exGreedy := &Executor{Src: src}
	exDP := &Executor{Src: src, DPJoinOrder: true}
	a, err := exGreedy.RunSPJ(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exDP.RunSPJ(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("greedy %d rows, DP %d rows", len(a.Rows), len(b.Rows))
	}
	// Same multiset of rows (column order may differ between join orders).
	if got, want := sumCells(a), sumCells(b); got != want {
		t.Fatalf("row content differs: %v vs %v", got, want)
	}
}

// sumCells builds an order-insensitive fingerprint over cell values.
func sumCells(r *Relation) int {
	seen := map[string]int{}
	for _, row := range r.Rows {
		for i, v := range row {
			seen[r.Cols[i].Rel+"."+r.Cols[i].Name+"="+v.String()]++
		}
	}
	n := 0
	for k, c := range seen {
		n += len(k) * c
	}
	return n
}

// TestDPMatchesGreedyRandomized: both orders must produce identical result
// multisets on random queries (join order never changes semantics).
func TestDPMatchesGreedyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nTables := 3 + rng.Intn(2)
		src := memSource{}
		for i := 0; i < nTables; i++ {
			name := string(rune('a' + i))
			def := catalog.MustTableDef(name, []catalog.Column{
				{Name: "id", Type: types.KindInt},
				{Name: "j", Type: types.KindInt},
				{Name: "k", Type: types.KindInt},
			})
			tab := newTab(t, def, rng, 5+rng.Intn(20))
			src[name] = tab
		}
		var preds []string
		for i := 1; i < nTables; i++ {
			l := string(rune('a' + i))
			r := string(rune('a' + rng.Intn(i)))
			cols := []string{"j", "k"}
			preds = append(preds, l+"."+cols[rng.Intn(2)]+" = "+r+"."+cols[rng.Intn(2)])
		}
		sql := "SELECT a.id FROM "
		var from []string
		for i := 0; i < nTables; i++ {
			n := string(rune('a' + i))
			from = append(from, n+" AS "+n)
		}
		sql += strings.Join(from, ", ") + " WHERE " + strings.Join(preds, " AND ")

		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := AnalyzeSPJ(sel, src)
		if err != nil {
			t.Fatal(err)
		}
		g := &Executor{Src: src}
		d := &Executor{Src: src, DPJoinOrder: true}
		ra, err := g.RunSPJ(spec)
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		rb, err := d.RunSPJ(spec)
		if err != nil {
			t.Fatalf("trial %d dp: %v", trial, err)
		}
		if len(ra.Rows) != len(rb.Rows) || sumCells(ra) != sumCells(rb) {
			t.Fatalf("trial %d: %q: greedy %d rows vs dp %d rows", trial, sql, len(ra.Rows), len(rb.Rows))
		}
	}
}

func newTab(t *testing.T, def *catalog.TableDef, rng *rand.Rand, rows int) *storage.Table {
	t.Helper()
	tab := mkTable(t, def.Name, def.Columns, nil)
	for r := 0; r < rows; r++ {
		err := tab.Insert(types.Row{
			types.NewInt(int64(r)),
			types.NewInt(int64(rng.Intn(6))),
			types.NewInt(int64(rng.Intn(4))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestDPPlanPrefersSelectiveJoins(t *testing.T) {
	// big1 x big2 via a low-selectivity key would be huge; the filteredtiny
	// relation keys should join first.
	src := memSource{}
	big := func(name string, rows int) {
		def := catalog.MustTableDef(name, []catalog.Column{
			{Name: "id", Type: types.KindInt},
			{Name: "k", Type: types.KindInt},
		})
		tab := mkTable(t, name, def.Columns, nil)
		for i := 0; i < rows; i++ {
			if err := tab.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3))}); err != nil {
				t.Fatal(err)
			}
		}
		src[name] = tab
	}
	big("big1", 300)
	big("big2", 300)
	big("tiny", 3)
	sel, _ := sqlparse.ParseSelect(`SELECT big1.id FROM big1 AS big1, big2 AS big2, tiny AS tiny
		WHERE big1.k = big2.k AND big2.id = tiny.id AND big1.id = tiny.id`)
	spec, err := AnalyzeSPJ(sel, src)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Src: src}
	rels, err := ex.BaseRelations(spec)
	if err != nil {
		t.Fatal(err)
	}
	planStr, err := PlanString(spec.JoinPreds, rels)
	if err != nil {
		t.Fatal(err)
	}
	// tiny must not be joined last: the plan that leaves big1 ⋈ big2 for
	// the first step materializes ~30000 rows.
	if planStr == "((big1 ⋈ big2) ⋈ tiny)" {
		t.Errorf("DP chose the worst plan: %s", planStr)
	}
}

func TestDPFallsBackBeyondLimit(t *testing.T) {
	// 15+ relations fall back to greedy — just check it still runs.
	src := memSource{}
	var from, preds []string
	for i := 0; i < 16; i++ {
		name := "r" + string(rune('a'+i))
		def := catalog.MustTableDef(name, []catalog.Column{
			{Name: "id", Type: types.KindInt},
		})
		tab := mkTable(t, name, def.Columns, nil, ir(1), ir(2))
		src[name] = tab
		from = append(from, name+" AS "+name)
		if i > 0 {
			prev := "r" + string(rune('a'+i-1))
			preds = append(preds, name+".id = "+prev+".id")
		}
	}
	sql := "SELECT ra.id FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(preds, " AND ")
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Src: src, DPJoinOrder: true}
	rel, err := ex.Select(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rel.Rows))
	}
}

package engine

import (
	"strings"
	"testing"

	"resultdb/internal/catalog"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

func TestOuterJoinNonEquiOn(t *testing.T) {
	src := memSource{
		"l": mkTable(t, "l", []catalog.Column{intCol("id"), intCol("x")}, nil,
			ir(1, 10), ir(2, 20)),
		"r": mkTable(t, "r", []catalog.Column{intCol("id"), intCol("y")}, nil,
			ir(1, 15), ir(2, 5)),
	}
	// Non-equi ON: nested loop path with outer padding.
	rel := runSelect(t, src, `
		SELECT l.id, r.id FROM l AS l
		LEFT OUTER JOIN r AS r ON l.x < r.y`)
	expectRows(t, rel, "1 | 1", "2 | NULL")
}

func TestOuterJoinMixedOnEquiAndResidual(t *testing.T) {
	src := memSource{
		"l": mkTable(t, "l", []catalog.Column{intCol("id"), intCol("k")}, nil,
			ir(1, 1), ir(2, 2)),
		"r": mkTable(t, "r", []catalog.Column{intCol("id"), intCol("k"), intCol("v")}, nil,
			ir(1, 1, 100), ir(2, 1, 5), ir(3, 2, 1)),
	}
	// Hash on k, residual v > 10 evaluated per candidate; l(2) unmatched.
	rel := runSelect(t, src, `
		SELECT l.id, r.id FROM l AS l
		LEFT OUTER JOIN r AS r ON l.k = r.k AND r.v > 10`)
	expectRows(t, rel, "1 | 1", "2 | NULL")
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id"), intCol("x")}, nil),
	}
	rel := runSelect(t, src, `SELECT COUNT(*), COUNT(t.x), SUM(t.x), MIN(t.x), MAX(t.x), AVG(t.x) FROM t AS t`)
	r := rel.Rows[0]
	if r[0].Int() != 0 || r[1].Int() != 0 {
		t.Errorf("counts = %v", r)
	}
	for i := 2; i <= 5; i++ {
		if !r[i].IsNull() {
			t.Errorf("aggregate %d over empty input = %v, want NULL", i, r[i])
		}
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id"), intCol("x")}, nil,
			ir(1, 10), ir(2, nil), ir(3, 20)),
	}
	rel := runSelect(t, src, `SELECT COUNT(*), COUNT(t.x), SUM(t.x), AVG(t.x) FROM t AS t`)
	r := rel.Rows[0]
	if r[0].Int() != 3 || r[1].Int() != 2 || r[2].Int() != 30 || r[3].Float() != 15 {
		t.Errorf("aggregates = %v", r)
	}
}

func TestMinMaxOverText(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id"), textCol("s")}, nil,
			ir(1, "pear"), ir(2, "apple"), ir(3, "zebra")),
	}
	rel := runSelect(t, src, `SELECT MIN(t.s), MAX(t.s) FROM t AS t`)
	r := rel.Rows[0]
	if r[0].Text() != "apple" || r[1].Text() != "zebra" {
		t.Errorf("min/max = %v", r)
	}
}

func TestExprTypeErrors(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id"), textCol("s")}, nil, ir(1, "x")),
	}
	bad := []string{
		"SELECT t.id FROM t AS t WHERE NOT t.id",      // NOT on non-boolean
		"SELECT t.id FROM t AS t WHERE t.id LIKE 'x'", // LIKE on int
		"SELECT -t.s FROM t AS t",                     // unary minus on text
		"SELECT t.id + t.s FROM t AS t",               // arithmetic on text
	}
	for _, sql := range bad {
		sel, err := sqlparse.ParseSelect(sql)
		if err != nil {
			t.Fatalf("%s should parse: %v", sql, err)
		}
		ex := &Executor{Src: src}
		if _, err := ex.Select(sel); err == nil {
			t.Errorf("%s should fail at evaluation", sql)
		}
	}
}

func TestBetweenAndInListSemantics(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id"), intCol("x")}, nil,
			ir(1, 5), ir(2, 10), ir(3, 15), ir(4, nil)),
	}
	rel := runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.x BETWEEN 5 AND 10")
	expectRows(t, rel, "1", "2")
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.x NOT BETWEEN 5 AND 10")
	expectRows(t, rel, "3") // NULL row is unknown, not true
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.x IN (5, 15)")
	expectRows(t, rel, "1", "3")
}

func TestExplainSPJOutput(t *testing.T) {
	src := shopSource(t)
	sel, _ := sqlparse.ParseSelect(`
		SELECT c.name, p.name FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.state = 'NY' AND c.id + p.id >= 0`)
	tr := trace.New(sel.SQL())
	ex := &Executor{Src: src, Tracer: tr}
	if _, err := ex.Select(sel); err != nil {
		t.Fatal(err)
	}
	lines := tr.Finish().CompactLines()
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"scan customers AS c",
		"rows: 3 -> 2", // NY filter
		"hash join",
		"residual filter",
		"project",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

func TestSubqueryWithNullsThreeValued(t *testing.T) {
	src := memSource{
		"t": mkTable(t, "t", []catalog.Column{intCol("id")}, nil, ir(1), ir(2)),
		"s": mkTable(t, "s", []catalog.Column{intCol("v")}, nil, ir(1), ir(-1)),
	}
	// Subquery list contains no NULL: NOT IN behaves normally.
	rel := runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id NOT IN (SELECT s.v FROM s AS s)")
	expectRows(t, rel, "2")
	// Add a NULL to the subquery: NOT IN becomes never-true.
	if err := src["s"].Insert(types.Row{types.Null()}); err != nil {
		t.Fatal(err)
	}
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id NOT IN (SELECT s.v FROM s AS s)")
	expectRows(t, rel)
	// IN still finds actual matches.
	rel = runSelect(t, src, "SELECT t.id FROM t AS t WHERE t.id IN (SELECT s.v FROM s AS s)")
	expectRows(t, rel, "1")
}

func TestSelectItemBareStarWithJoin(t *testing.T) {
	src := shopSource(t)
	rel := runSelect(t, src, `SELECT * FROM customers AS c, orders AS o WHERE c.id = o.cid AND c.id = 0`)
	if len(rel.Cols) != 6 { // 3 customer cols + 3 order cols
		t.Errorf("star columns = %d", len(rel.Cols))
	}
	if len(rel.Rows) != 2 {
		t.Errorf("rows = %d", len(rel.Rows))
	}
}

func TestLimitZeroAndBeyond(t *testing.T) {
	src := shopSource(t)
	rel := runSelect(t, src, "SELECT c.id FROM customers AS c LIMIT 0")
	if len(rel.Rows) != 0 {
		t.Errorf("LIMIT 0 rows = %d", len(rel.Rows))
	}
	rel = runSelect(t, src, "SELECT c.id FROM customers AS c LIMIT 99")
	if len(rel.Rows) != 3 {
		t.Errorf("LIMIT 99 rows = %d", len(rel.Rows))
	}
}

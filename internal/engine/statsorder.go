package engine

import (
	"strings"

	"resultdb/internal/stats"
	"resultdb/internal/trace"
)

// joinAllStats is joinAll with a statistics-driven join order: instead of
// picking the connected relation with the smallest raw cardinality, it picks
// the one minimizing the estimated join output under the standard NDV
// containment model |A ⋈ B| ≈ |A|·|B| / Π_p max(ndv_A(p), ndv_B(p)), with
// per-column NDVs taken from base-table statistics and capped by the current
// (actual) cardinalities. Actual cardinalities are used wherever they are
// known — the intermediate result and every base relation are materialized,
// so only join output sizes are estimates.
//
// The join ORDER may differ from joinAll's; each individual hash join is the
// identical operator, so the joined row multiset is the same (row order
// within the result depends on the order, which is why differential tests
// canonicalize with ORDER BY before comparing the two planners byte-wise).
func joinAllStats(spec *SPJSpec, rels map[string]*Relation, statsOf func(table string) *stats.Table, par int, tr *trace.Tracer) (*Relation, error) {
	preds := spec.JoinPreds
	statsByAlias := make(map[string]*stats.Table, len(spec.Rels))
	for _, r := range spec.Rels {
		statsByAlias[strings.ToLower(r.Alias)] = statsOf(r.Table)
	}
	ndvOf := func(rel *Relation, col int, cap_ int) float64 {
		c := rel.Cols[col]
		cs := statsByAlias[strings.ToLower(c.Rel)].Col(c.Name)
		d := float64(cap_)
		if cs != nil && cs.NDV > 0 && float64(cs.NDV) < d {
			d = float64(cs.NDV)
		}
		if d < 1 {
			d = 1
		}
		return d
	}

	remaining := make(map[string]*Relation, len(rels))
	for k, v := range rels {
		remaining[k] = v
	}

	// Seed: smallest actual cardinality, ties towards the smaller alias —
	// the same deterministic seed rule as joinAll.
	var curAlias string
	for alias, rel := range remaining {
		if curAlias == "" ||
			len(rel.Rows) < len(remaining[curAlias].Rows) ||
			len(rel.Rows) == len(remaining[curAlias].Rows) && alias < curAlias {
			curAlias = alias
		}
	}
	cur := remaining[curAlias]
	delete(remaining, curAlias)
	inSet := map[string]bool{curAlias: true}

	// estJoin estimates |cur ⋈ rel| for a candidate, returning whether any
	// predicate connects it (candidates with no predicate are cross
	// products, estimated at |cur|·|rel|).
	estJoin := func(alias string, rel *Relation) (float64, bool) {
		est := float64(len(cur.Rows)) * float64(len(rel.Rows))
		connected := false
		for _, j := range preds {
			l, r := strings.ToLower(j.LeftRel), strings.ToLower(j.RightRel)
			var side JoinPred
			switch {
			case inSet[l] && r == alias:
				side = j
			case inSet[r] && l == alias:
				side = j.Reverse()
			default:
				continue
			}
			li, err := cur.ColIndex(side.LeftRel, side.LeftCol)
			if err != nil {
				continue
			}
			ri, err := rel.ColIndex(side.RightRel, side.RightCol)
			if err != nil {
				continue
			}
			connected = true
			ndvL := ndvOf(cur, li, len(cur.Rows))
			ndvR := ndvOf(rel, ri, len(rel.Rows))
			d := ndvL
			if ndvR > d {
				d = ndvR
			}
			est /= d
		}
		return est, connected
	}

	for len(remaining) > 0 {
		// Choose the next relation: smallest estimated join output among
		// connected candidates, else the smallest relation overall (the
		// cross product is deferred as long as possible, like joinAll).
		next := ""
		nextConnected := false
		nextEst := 0.0
		for alias, rel := range remaining {
			est, c := estJoin(alias, rel)
			switch {
			case next == "":
			case c && !nextConnected:
			case c != nextConnected:
				continue
			case est < nextEst:
			case est == nextEst && alias < next:
			default:
				continue
			}
			next, nextConnected, nextEst = alias, c, est
		}
		nrel := remaining[next]
		delete(remaining, next)
		var err error
		cur, err = joinStep(cur, inSet, next, nrel, preds, par, tr, int(nextEst+0.5))
		if err != nil {
			return nil, err
		}
		inSet[next] = true
	}
	return cur, nil
}

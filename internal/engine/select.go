package engine

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/stats"
	"resultdb/internal/storage"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// Executor evaluates SELECT statements against a Source.
type Executor struct {
	Src Source
	// DPJoinOrder switches the SPJ join ordering from the greedy heuristic
	// to the DPsize optimal search (see JoinAllDP). Greedy is the default.
	DPJoinOrder bool
	// Parallelism is the degree of intra-query parallelism for joins,
	// filters, and semi-joins: 0 resolves via RESULTDB_PARALLELISM or
	// GOMAXPROCS, 1 forces serial execution. Results are identical at any
	// degree (deterministic morsel merge).
	Parallelism int
	// Vectorized switches base-table scans and equi-joins to the colstore
	// columnar path (typed column vectors, selection-vector kernels,
	// dictionary-encoded TEXT). Results are bit-identical to the row path;
	// only speed and the `vectorized` trace annotation differ.
	Vectorized bool
	// CostBased switches the greedy SPJ join ordering from raw cardinality
	// to the statistics-driven estimate (joinAllStats), when StatsOf is also
	// set. DPJoinOrder takes precedence. The joined row multiset is
	// identical either way; row order may differ with the join order.
	CostBased bool
	// StatsOf resolves table statistics by table name (nil results are
	// tolerated: columns without stats fall back to worst-case NDVs).
	StatsOf func(table string) *stats.Table
	// Tracer, when non-nil, records per-operator spans (scan, join,
	// filter, project cardinalities and timings). Nil (the default) is the
	// disabled fast path: operators skip all recording on a single nil
	// check.
	Tracer *trace.Tracer
}

// Select evaluates sel and returns the single-table result. RESULTDB
// queries are not handled here (internal/db routes them to internal/core);
// the ResultDB flag is ignored so the same AST can be executed both ways.
func (e *Executor) Select(sel *sqlparse.Select) (*Relation, error) {
	if hasAggregates(sel.Items) || len(sel.GroupBy) > 0 || sel.Having != nil {
		if e.Tracer.Enabled() {
			e.Tracer.Note("sequential pipeline (non-SPJ query: outer join, aggregate, or computed select list)")
		}
		rel, err := e.selectGrouped(sel)
		// The grouped pipeline evaluates its join input through Select,
		// which records the inner strategy; the statement as a whole is
		// the sequential pipeline.
		e.Tracer.SetStrategy("sequential")
		return rel, err
	}
	if !hasOuterJoin(sel) {
		spec, err := AnalyzeSPJ(sel, e.Src)
		if err == nil {
			e.Tracer.SetStrategy("spj")
			joined, err := e.RunSPJ(spec)
			if err != nil {
				return nil, err
			}
			out, err := projectAttrs(joined, spec.Projection)
			if err != nil {
				return nil, err
			}
			if sel.Distinct {
				out = out.Distinct()
			}
			if sp := e.Tracer.Span("project", projectionLabel(spec)); sp != nil {
				sp.RowsIn = len(joined.Rows)
				sp.RowsOut = len(out.Rows)
				if sel.Distinct {
					sp.Detail = "distinct"
				}
			}
			return e.finish(out, sel)
		}
		// Analysis can fail for legitimate non-SPJ shapes (computed select
		// items); the sequential path below handles those. Genuine errors
		// (unknown columns) resurface there.
	}
	return e.selectSequential(sel)
}

// finish applies ORDER BY and LIMIT to the projected relation.
func (e *Executor) finish(rel *Relation, sel *sqlparse.Select) (*Relation, error) {
	if len(sel.OrderBy) > 0 {
		keys := make([]int, len(sel.OrderBy))
		desc := make([]bool, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			cr, ok := o.Expr.(*sqlparse.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("engine: ORDER BY supports column references only")
			}
			idx, err := rel.ColIndex(cr.Table, cr.Column)
			if err != nil {
				return nil, fmt.Errorf("engine: ORDER BY column must appear in the select list: %w", err)
			}
			keys[i] = idx
			desc[i] = o.Desc
		}
		rel.SortBy(keys, desc)
	}
	if sel.Limit != nil && int64(len(rel.Rows)) > *sel.Limit {
		rel.Rows = rel.Rows[:*sel.Limit]
	}
	return rel, nil
}

// RunSPJ executes the join part of an analyzed SPJ query: scan with pushed
// filters, greedy hash-join order by live cardinality, then residual
// predicates. The output schema contains every column of every relation,
// alias-qualified.
func (e *Executor) RunSPJ(spec *SPJSpec) (*Relation, error) {
	rels, err := e.BaseRelations(spec)
	if err != nil {
		return nil, err
	}
	var joined *Relation
	switch {
	case e.DPJoinOrder:
		joined, err = joinAllDP(spec.JoinPreds, rels, e.Parallelism, e.Tracer)
	case e.CostBased && e.StatsOf != nil:
		joined, err = joinAllStats(spec, rels, e.StatsOf, e.Parallelism, e.Tracer)
	default:
		joined, err = joinAll(spec.JoinPreds, rels, e.Parallelism, e.Tracer)
	}
	if err != nil {
		return nil, err
	}
	if len(spec.Residual) > 0 {
		before := len(joined.Rows)
		joined, err = e.filter(joined, sqlparse.AndAll(spec.Residual))
		if err != nil {
			return nil, err
		}
		if sp := e.Tracer.Span("residual-filter", ""); sp != nil {
			sp.Phase = "join"
			sp.Detail = sqlparse.AndAll(spec.Residual).SQL()
			sp.RowsIn = before
			sp.RowsOut = len(joined.Rows)
		}
	}
	return joined, nil
}

// projectionLabel renders the projected attribute list for trace spans.
func projectionLabel(spec *SPJSpec) string {
	var proj []string
	for _, a := range spec.Projection {
		proj = append(proj, a.String())
	}
	return strings.Join(proj, ", ")
}

// JoinAll joins all relations: start from the smallest, repeatedly add
// the connected relation with the smallest cardinality (falling back to a
// Cartesian product when the residual graph is disconnected). Cycle edges
// whose endpoints are already joined are applied inside the same step via
// composite keys, so every equi predicate is enforced exactly once.
//
// rels is keyed by lower-cased alias. It is also the post-join operator of
// the paper (Section 6.4): internal/core hands it the reduced relations.
func JoinAll(preds []JoinPred, rels map[string]*Relation) (*Relation, error) {
	return joinAll(preds, rels, 0, nil)
}

// JoinAllDegree is JoinAll at an explicit degree of parallelism (0 = auto,
// 1 = serial); each hash join's build is partitioned and its probe chunked
// across the shared worker pool.
func JoinAllDegree(preds []JoinPred, rels map[string]*Relation, par int) (*Relation, error) {
	return joinAll(preds, rels, par, nil)
}

func joinAll(preds []JoinPred, rels map[string]*Relation, par int, tr *trace.Tracer) (*Relation, error) {
	remaining := make(map[string]*Relation, len(rels))
	for k, v := range rels {
		remaining[k] = v
	}

	// Pick the smallest relation as the seed; cardinality ties break towards
	// the lexicographically smaller alias so the join order (and therefore
	// every traced cardinality) is deterministic across runs.
	var curAlias string
	for alias, rel := range remaining {
		if curAlias == "" ||
			len(rel.Rows) < len(remaining[curAlias].Rows) ||
			len(rel.Rows) == len(remaining[curAlias].Rows) && alias < curAlias {
			curAlias = alias
		}
	}
	cur := remaining[curAlias]
	delete(remaining, curAlias)
	inSet := map[string]bool{curAlias: true}

	connected := func(alias string) bool {
		for _, j := range preds {
			l, r := strings.ToLower(j.LeftRel), strings.ToLower(j.RightRel)
			if l == alias && inSet[r] || r == alias && inSet[l] {
				return true
			}
		}
		return false
	}

	for len(remaining) > 0 {
		// Choose the next relation: smallest among connected ones, else
		// smallest overall; ties break towards the smaller alias (see the
		// seed choice above).
		next := ""
		nextConnected := false
		for alias, rel := range remaining {
			c := connected(alias)
			switch {
			case next == "":
				next, nextConnected = alias, c
			case c && !nextConnected:
				next, nextConnected = alias, c
			case c == nextConnected && len(rel.Rows) < len(remaining[next].Rows):
				next = alias
			case c == nextConnected && len(rel.Rows) == len(remaining[next].Rows) && alias < next:
				next = alias
			}
		}
		nrel := remaining[next]
		delete(remaining, next)
		var err error
		cur, err = joinStep(cur, inSet, next, nrel, preds, par, tr, 0)
		if err != nil {
			return nil, err
		}
		inSet[next] = true
	}
	return cur, nil
}

// joinStep joins `next` into the current intermediate result, applying every
// predicate between next and the joined set in one hash join (cycle edges
// included, via composite keys). estOut, when non-zero, is the planner's
// estimated output cardinality, recorded in the span's strippable bracket.
func joinStep(cur *Relation, inSet map[string]bool, next string, nrel *Relation, preds []JoinPred, par int, tr *trace.Tracer, estOut int) (*Relation, error) {
	// Gather every join predicate between `next` and the joined set.
	var lCols, rCols []int
	for _, j := range preds {
		l, r := strings.ToLower(j.LeftRel), strings.ToLower(j.RightRel)
		var side JoinPred
		switch {
		case inSet[l] && r == next:
			side = j
		case inSet[r] && l == next:
			side = j.Reverse()
		default:
			continue
		}
		li, err := cur.ColIndex(side.LeftRel, side.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := nrel.ColIndex(side.RightRel, side.RightCol)
		if err != nil {
			return nil, err
		}
		lCols = append(lCols, li)
		rCols = append(rCols, ri)
	}
	if err := crossCheck(lCols, rCols); err != nil {
		return nil, err
	}
	before := len(cur.Rows)
	var sp *trace.Span
	if tr.Enabled() {
		op := "hash-join"
		if len(lCols) == 0 {
			op = "cross-join"
		}
		sp = tr.Span(op, next)
		sp.Phase = "join"
		sp.Keys = len(lCols)
		sp.RowsIn = before
		sp.RowsBuild = len(nrel.Rows)
		sp.EstOut = estOut
	}
	cur = hashJoinVecInner(cur, nrel, lCols, rCols, par, sp)
	if sp != nil {
		sp.RowsOut = len(cur.Rows)
		tr.AddRowsJoined(len(cur.Rows))
	}
	return cur, nil
}

// BaseRelations scans every relation of an analyzed query with its
// pushed-down filters applied (the σ_F step). Keys are lower-cased aliases.
// internal/core reduces exactly these relations.
func (e *Executor) BaseRelations(spec *SPJSpec) (map[string]*Relation, error) {
	rels := make(map[string]*Relation, len(spec.Rels))
	for _, r := range spec.Rels {
		rel, err := e.baseRelation(r, spec.Filters[r.Alias])
		if err != nil {
			return nil, err
		}
		rels[strings.ToLower(r.Alias)] = rel
	}
	return rels, nil
}

// baseRelation scans one base table into an alias-qualified relation,
// applying the pushed-down filter conjuncts during the scan.
func (e *Executor) baseRelation(r RelRef, filters []sqlparse.Expr) (*Relation, error) {
	t, err := e.Src.Table(r.Table)
	if err != nil {
		return nil, err
	}
	if e.Vectorized {
		return e.baseRelationVec(t, r, filters)
	}
	var sp *trace.Span
	var t0 time.Time
	if e.Tracer.Enabled() {
		sp = e.Tracer.Span("scan", r.Table+" AS "+r.Alias)
		sp.Phase = "scan"
		sp.Detail = "true"
		if len(filters) > 0 {
			sp.Detail = sqlparse.AndAll(filters).SQL()
		}
		sp.RowsIn = len(t.Rows)
		sp.Par = parallel.Degree(e.Parallelism)
		sp.Morsels = parallel.Chunks(len(t.Rows), e.Parallelism)
		t0 = time.Now()
	}
	rel := &Relation{Cols: make([]ColRef, len(t.Def.Columns))}
	for i, c := range t.Def.Columns {
		rel.Cols[i] = ColRef{Rel: r.Alias, Name: c.Name, Kind: c.Type}
	}
	if len(filters) == 0 {
		rel.Rows = t.Rows
		if sp != nil {
			sp.RowsOut = len(rel.Rows)
			sp.DurNS = time.Since(t0).Nanoseconds()
			e.Tracer.AddRowsScanned(len(rel.Rows))
		}
		return rel, nil
	}
	b := &binder{rel: rel, sub: e.subRunner()}
	check, err := b.bind(sqlparse.AndAll(filters))
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: rel.Cols}
	out.Rows, err = filterRows(t.Rows, check, e.Parallelism)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.RowsOut = len(out.Rows)
		sp.DurNS = time.Since(t0).Nanoseconds()
		e.Tracer.AddRowsScanned(len(out.Rows))
		e.Tracer.AddRowsDropped(len(t.Rows) - len(out.Rows))
	}
	return out, nil
}

// filter returns the rows of rel satisfying cond.
func (e *Executor) filter(rel *Relation, cond sqlparse.Expr) (*Relation, error) {
	if cond == nil {
		return rel, nil
	}
	b := &binder{rel: rel, sub: e.subRunner()}
	check, err := b.bind(cond)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: rel.Cols}
	out.Rows, err = filterRows(rel.Rows, check, e.Parallelism)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// filterRows evaluates a compiled predicate over rows in parallel chunks
// (bound expressions are pure after binding), keeping the passing rows in
// input order via the deterministic per-chunk merge.
func filterRows(rows []types.Row, check boundExpr, par int) ([]types.Row, error) {
	return parallel.MapErr(len(rows), par, func(lo, hi int) ([]types.Row, error) {
		kept := make([]types.Row, 0, hi-lo)
		for _, row := range rows[lo:hi] {
			v, err := check(row)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, row)
			}
		}
		return kept, nil
	})
}

func (e *Executor) subRunner() SubqueryRunner {
	return func(sub *sqlparse.Select) (*Relation, error) {
		if sub.ResultDB {
			return nil, fmt.Errorf("engine: RESULTDB is not allowed in subqueries")
		}
		return e.Select(sub)
	}
}

// selectSequential executes FROM items left to right (required for outer
// joins, whose result depends on join order), then WHERE, projection,
// DISTINCT, ORDER BY, LIMIT.
func (e *Executor) selectSequential(sel *sqlparse.Select) (*Relation, error) {
	if e.Tracer.Enabled() {
		e.Tracer.SetStrategy("sequential")
		e.Tracer.Note("sequential pipeline (non-SPJ query: outer join, aggregate, or computed select list)")
	}
	var cur *Relation
	for _, item := range sel.From {
		base, err := e.baseRelation(RelRef{Alias: item.Ref.Name(), Table: item.Ref.Table}, nil)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = base
		} else {
			cur = hashJoinInner(cur, base, nil, nil, e.Parallelism, nil) // comma join: cross product
		}
		for _, j := range item.Joins {
			right, err := e.baseRelation(RelRef{Alias: j.Ref.Name(), Table: j.Ref.Table}, nil)
			if err != nil {
				return nil, err
			}
			cur, err = joinOn(cur, right, j.On, j.Type == sqlparse.JoinLeftOuter, e.subRunner(), e.Parallelism)
			if err != nil {
				return nil, err
			}
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("engine: query has no FROM clause")
	}
	var err error
	cur, err = e.filter(cur, sel.Where)
	if err != nil {
		return nil, err
	}
	out, err := e.projectItems(cur, sel.Items)
	if err != nil {
		return nil, err
	}
	if sel.Distinct {
		out = out.Distinct()
	}
	return e.finish(out, sel)
}

// projectAttrs projects an alias-qualified relation onto resolved attributes.
func projectAttrs(rel *Relation, attrs []Attr) (*Relation, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		idx, err := rel.ColIndex(a.Rel, a.Col)
		if err != nil {
			return nil, err
		}
		cols[i] = idx
	}
	return rel.Project(cols), nil
}

// projectItems evaluates a general select list (stars, columns, computed
// expressions) against rel.
func (e *Executor) projectItems(rel *Relation, items []sqlparse.SelectItem) (*Relation, error) {
	var outCols []ColRef
	var evals []boundExpr
	b := &binder{rel: rel, sub: e.subRunner()}
	for _, item := range items {
		switch {
		case item.Star && item.Table == "":
			for i, c := range rel.Cols {
				idx := i
				outCols = append(outCols, c)
				evals = append(evals, func(r types.Row) (types.Value, error) { return r[idx], nil })
			}
		case item.Star:
			positions := rel.ColumnsOf(item.Table)
			if len(positions) == 0 {
				return nil, fmt.Errorf("engine: unknown relation %q in %s.*", item.Table, item.Table)
			}
			for _, pos := range positions {
				idx := pos
				outCols = append(outCols, rel.Cols[pos])
				evals = append(evals, func(r types.Row) (types.Value, error) { return r[idx], nil })
			}
		default:
			ev, err := b.bind(item.Expr)
			if err != nil {
				return nil, err
			}
			col := ColRef{Name: item.Alias}
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				col.Rel = cr.Table
				if col.Name == "" {
					col.Name = cr.Column
				}
			}
			if col.Name == "" {
				col.Name = item.Expr.SQL()
			}
			outCols = append(outCols, col)
			evals = append(evals, ev)
		}
	}
	out := &Relation{Cols: outCols}
	for _, row := range rel.Rows {
		nr := make(types.Row, len(evals))
		for i, ev := range evals {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

func (e *Executor) aggregate(f *sqlparse.FuncCall, rel *Relation, b *binder) (types.Value, types.Kind, error) {
	if f.Name == "COUNT" && f.Star {
		return types.NewInt(int64(len(rel.Rows))), types.KindInt, nil
	}
	if len(f.Args) != 1 {
		return types.Value{}, 0, fmt.Errorf("engine: %s expects one argument", f.Name)
	}
	ev, err := b.bind(f.Args[0])
	if err != nil {
		return types.Value{}, 0, err
	}
	switch f.Name {
	case "COUNT":
		var n int64
		for _, row := range rel.Rows {
			v, err := ev(row)
			if err != nil {
				return types.Value{}, 0, err
			}
			if !v.IsNull() {
				n++
			}
		}
		return types.NewInt(n), types.KindInt, nil
	case "SUM", "AVG":
		var sum float64
		var n int64
		allInt := true
		for _, row := range rel.Rows {
			v, err := ev(row)
			if err != nil {
				return types.Value{}, 0, err
			}
			if v.IsNull() {
				continue
			}
			if v.Kind() != types.KindInt {
				allInt = false
			}
			sum += v.Float()
			n++
		}
		if n == 0 {
			return types.Null(), types.KindNull, nil
		}
		if f.Name == "AVG" {
			return types.NewFloat(sum / float64(n)), types.KindFloat, nil
		}
		if allInt {
			return types.NewInt(int64(sum)), types.KindInt, nil
		}
		return types.NewFloat(sum), types.KindFloat, nil
	case "MIN", "MAX":
		var best types.Value
		first := true
		for _, row := range rel.Rows {
			v, err := ev(row)
			if err != nil {
				return types.Value{}, 0, err
			}
			if v.IsNull() {
				continue
			}
			if first {
				best = v
				first = false
				continue
			}
			c := types.Compare(v, best)
			if f.Name == "MIN" && c < 0 || f.Name == "MAX" && c > 0 {
				best = v
			}
		}
		if first {
			return types.Null(), types.KindNull, nil
		}
		return best, best.Kind(), nil
	}
	return types.Value{}, 0, fmt.Errorf("engine: unsupported function %s", f.Name)
}

func hasAggregates(items []sqlparse.SelectItem) bool {
	for _, item := range items {
		if item.Expr != nil && sqlparse.HasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func hasOuterJoin(sel *sqlparse.Select) bool {
	for _, item := range sel.From {
		for _, j := range item.Joins {
			if j.Type != sqlparse.JoinInner {
				return true
			}
		}
	}
	return false
}

// TableToRelation converts a storage table into an alias-qualified relation
// (used by internal/core and internal/db when bridging layers).
func TableToRelation(alias string, t *storage.Table) *Relation {
	rel := &Relation{Cols: make([]ColRef, len(t.Def.Columns))}
	for i, c := range t.Def.Columns {
		rel.Cols[i] = ColRef{Rel: alias, Name: c.Name, Kind: c.Type}
	}
	rel.Rows = t.Rows
	return rel
}

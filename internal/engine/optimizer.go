package engine

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// maxDPRelations bounds the dynamic-programming join-order search; beyond
// it the greedy order is used (2^n subsets get expensive past this point).
const maxDPRelations = 14

// JoinAllDP joins all relations using a DPsize-style optimal bushy join
// order under a textbook cardinality model:
//
//	|S ⋈_p T| = |S| * |T| / Π_c max(ndv_S(c), ndv_T(c))
//
// with per-attribute distinct counts measured exactly on the (filtered)
// base relations — the moral equivalent of the paper injecting true
// cardinalities into mutable's optimizer. Plan cost is the sum of estimated
// intermediate cardinalities; the greedy order (JoinAll) remains the
// default and the fallback for queries beyond maxDPRelations.
func JoinAllDP(preds []JoinPred, rels map[string]*Relation) (*Relation, error) {
	return JoinAllDPDegree(preds, rels, 0)
}

// JoinAllDPDegree is JoinAllDP executing the chosen plan's hash joins at an
// explicit degree of parallelism (0 = auto, 1 = serial). Planning itself
// stays serial; only plan execution fans out.
func JoinAllDPDegree(preds []JoinPred, rels map[string]*Relation, par int) (*Relation, error) {
	return joinAllDP(preds, rels, par, nil)
}

// joinAllDP is the traced DP join; tr may be nil (disabled tracing).
func joinAllDP(preds []JoinPred, rels map[string]*Relation, par int, tr *trace.Tracer) (*Relation, error) {
	if len(rels) < 2 || len(rels) > maxDPRelations {
		return joinAll(preds, rels, par, tr)
	}
	opt, err := newOptimizer(preds, rels)
	if err != nil {
		return nil, err
	}
	opt.par = par
	opt.tr = tr
	root, err := opt.plan()
	if err != nil {
		return nil, err
	}
	return opt.execute(root)
}

// optimizer carries the DP state.
type optimizer struct {
	// par is the degree of parallelism for executing the chosen plan.
	par int
	// tr records one span per executed plan join (nil = disabled).
	tr *trace.Tracer
	aliases []string // index -> alias (lower-cased), deterministic order
	base    []*Relation
	preds   []JoinPred
	// predSides[i] = (left index, right index) for preds[i].
	predSides [][2]int

	// ndv[i] maps attr key (alias.col) -> distinct count in base[i].
	ndv []map[string]float64

	// DP tables keyed by subset bitmask.
	bestCost map[uint32]float64
	bestRows map[uint32]float64
	bestPlan map[uint32]*planNode
}

// planNode is a node of the chosen bushy join tree.
type planNode struct {
	mask        uint32
	left, right *planNode // nil for leaves
	leaf        int       // leaf relation index when left == nil
}

func newOptimizer(preds []JoinPred, rels map[string]*Relation) (*optimizer, error) {
	opt := &optimizer{
		preds:    preds,
		bestCost: map[uint32]float64{},
		bestRows: map[uint32]float64{},
		bestPlan: map[uint32]*planNode{},
	}
	for alias := range rels {
		opt.aliases = append(opt.aliases, alias)
	}
	// Deterministic order.
	for i := 1; i < len(opt.aliases); i++ {
		for j := i; j > 0 && opt.aliases[j] < opt.aliases[j-1]; j-- {
			opt.aliases[j], opt.aliases[j-1] = opt.aliases[j-1], opt.aliases[j]
		}
	}
	idxOf := map[string]int{}
	for i, a := range opt.aliases {
		idxOf[a] = i
		opt.base = append(opt.base, rels[a])
	}
	for _, p := range preds {
		l, lok := idxOf[strings.ToLower(p.LeftRel)]
		r, rok := idxOf[strings.ToLower(p.RightRel)]
		if !lok || !rok {
			return nil, fmt.Errorf("engine: join predicate %s references unknown relation", p)
		}
		opt.predSides = append(opt.predSides, [2]int{l, r})
	}
	// Exact NDVs of join attributes on the filtered base relations.
	opt.ndv = make([]map[string]float64, len(opt.base))
	for i := range opt.base {
		opt.ndv[i] = map[string]float64{}
	}
	for pi, p := range preds {
		sides := opt.predSides[pi]
		opt.measureNDV(sides[0], p.LeftRel, p.LeftCol)
		opt.measureNDV(sides[1], p.RightRel, p.RightCol)
	}
	return opt, nil
}

func attrKeyOf(rel, col string) string {
	return strings.ToLower(rel) + "." + strings.ToLower(col)
}

func (o *optimizer) measureNDV(idx int, rel, col string) {
	key := attrKeyOf(rel, col)
	if _, done := o.ndv[idx][key]; done {
		return
	}
	r := o.base[idx]
	ci, err := r.ColIndex(rel, col)
	if err != nil {
		o.ndv[idx][key] = 1
		return
	}
	seen := types.NewKeySet()
	for _, row := range r.Rows {
		seen.AddKey(row, []int{ci})
	}
	n := float64(seen.Len())
	if n < 1 {
		n = 1
	}
	o.ndv[idx][key] = n
}

// plan runs DPsize and returns the optimal plan for the full set.
func (o *optimizer) plan() (*planNode, error) {
	n := len(o.aliases)
	full := uint32(1)<<n - 1
	for i := 0; i < n; i++ {
		m := uint32(1) << i
		o.bestCost[m] = 0
		o.bestRows[m] = float64(len(o.base[i].Rows))
		o.bestPlan[m] = &planNode{mask: m, leaf: i}
	}
	for size := 2; size <= n; size++ {
		for mask := uint32(1); mask <= full; mask++ {
			if bits.OnesCount32(mask) != size {
				continue
			}
			// Enumerate splits: sub iterates proper non-empty subsets.
			var best *planNode
			bestCost := math.Inf(1)
			bestRows := 0.0
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				rest := mask &^ sub
				if sub < rest {
					continue // each split considered once
				}
				lp, lok := o.bestPlan[sub]
				rp, rok := o.bestPlan[rest]
				if !lok || !rok {
					continue
				}
				crossPreds := o.predsAcross(sub, rest)
				rows := o.estimateJoin(sub, rest, crossPreds)
				cost := o.bestCost[sub] + o.bestCost[rest] + rows
				if len(crossPreds) == 0 {
					// Cross products are admissible but strongly penalized.
					cost += rows * 10
				}
				if cost < bestCost {
					bestCost = cost
					bestRows = rows
					best = &planNode{mask: mask, left: lp, right: rp}
				}
			}
			if best != nil {
				o.bestCost[mask] = bestCost
				o.bestRows[mask] = bestRows
				o.bestPlan[mask] = best
			}
		}
	}
	root, ok := o.bestPlan[full]
	if !ok {
		return nil, fmt.Errorf("engine: DP found no plan (bug)")
	}
	return root, nil
}

// predsAcross lists predicate indices with one side in each subset.
func (o *optimizer) predsAcross(a, b uint32) []int {
	var out []int
	for pi, sides := range o.predSides {
		l, r := uint32(1)<<sides[0], uint32(1)<<sides[1]
		if a&l != 0 && b&r != 0 || a&r != 0 && b&l != 0 {
			out = append(out, pi)
		}
	}
	return out
}

// estimateJoin applies the NDV model for joining two planned subsets.
func (o *optimizer) estimateJoin(a, b uint32, crossPreds []int) float64 {
	rows := o.bestRows[a] * o.bestRows[b]
	for _, pi := range crossPreds {
		p := o.preds[pi]
		sides := o.predSides[pi]
		lk := attrKeyOf(p.LeftRel, p.LeftCol)
		rk := attrKeyOf(p.RightRel, p.RightCol)
		lNDV := o.subsetNDV(a, sides[0], lk)
		if a&(1<<sides[0]) == 0 {
			lNDV = o.subsetNDV(a, sides[1], rk)
		}
		rNDV := o.subsetNDV(b, sides[1], rk)
		if b&(1<<sides[1]) == 0 {
			rNDV = o.subsetNDV(b, sides[0], lk)
		}
		rows /= math.Max(math.Max(lNDV, rNDV), 1)
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// subsetNDV estimates the distinct count of one attribute within a planned
// subset: the base NDV capped by the subset's estimated cardinality.
func (o *optimizer) subsetNDV(mask uint32, baseIdx int, key string) float64 {
	n, ok := o.ndv[baseIdx][key]
	if !ok {
		n = 1
	}
	if rows, ok := o.bestRows[mask]; ok && rows < n {
		n = rows
	}
	if n < 1 {
		n = 1
	}
	return n
}

// execute materializes the chosen plan bottom-up with hash joins.
func (o *optimizer) execute(n *planNode) (*Relation, error) {
	if n.left == nil {
		return o.base[n.leaf], nil
	}
	l, err := o.execute(n.left)
	if err != nil {
		return nil, err
	}
	r, err := o.execute(n.right)
	if err != nil {
		return nil, err
	}
	var lCols, rCols []int
	for _, pi := range o.predsAcross(n.left.mask, n.right.mask) {
		p := o.preds[pi]
		sides := o.predSides[pi]
		side := p
		if n.left.mask&(1<<sides[0]) == 0 {
			side = p.Reverse()
		}
		li, err := l.ColIndex(side.LeftRel, side.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := r.ColIndex(side.RightRel, side.RightCol)
		if err != nil {
			return nil, err
		}
		lCols = append(lCols, li)
		rCols = append(rCols, ri)
	}
	var sp *trace.Span
	if o.tr.Enabled() {
		op := "hash-join"
		if len(lCols) == 0 {
			op = "cross-join"
		}
		sp = o.tr.Span(op, o.maskLabel(n.right.mask))
		sp.Phase = "join"
		sp.Keys = len(lCols)
		sp.RowsIn = len(l.Rows)
		sp.RowsBuild = len(r.Rows)
	}
	joined := hashJoinVecInner(l, r, lCols, rCols, o.par, sp)
	if sp != nil {
		sp.RowsOut = len(joined.Rows)
		o.tr.AddRowsJoined(len(joined.Rows))
	}
	return joined, nil
}

// maskLabel names a plan subtree by its relation aliases, in deterministic
// index order.
func (o *optimizer) maskLabel(mask uint32) string {
	var parts []string
	for i, a := range o.aliases {
		if mask&(1<<uint(i)) != 0 {
			parts = append(parts, a)
		}
	}
	return strings.Join(parts, ",")
}

// PlanString renders the chosen DP plan for diagnostics; used by tests.
func PlanString(preds []JoinPred, rels map[string]*Relation) (string, error) {
	opt, err := newOptimizer(preds, rels)
	if err != nil {
		return "", err
	}
	root, err := opt.plan()
	if err != nil {
		return "", err
	}
	var render func(n *planNode) string
	render = func(n *planNode) string {
		if n.left == nil {
			return opt.aliases[n.leaf]
		}
		return "(" + render(n.left) + " ⋈ " + render(n.right) + ")"
	}
	return render(root), nil
}

package engine

import (
	"fmt"
	"strings"

	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
)

// boundExpr is a compiled expression: evaluate against one row of the bound
// relation. SQL three-valued logic is represented by returning NULL.
type boundExpr func(types.Row) (types.Value, error)

// SubqueryRunner executes a non-correlated subquery and returns its
// materialized result. The binder uses it for IN (SELECT ...) predicates.
type SubqueryRunner func(*sqlparse.Select) (*Relation, error)

// binder compiles AST expressions against a relation schema.
type binder struct {
	rel *Relation
	sub SubqueryRunner
}

// bind compiles e for evaluation against rows of b.rel.
func (b *binder) bind(e sqlparse.Expr) (boundExpr, error) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		v := x.Value
		return func(types.Row) (types.Value, error) { return v, nil }, nil

	case *sqlparse.ColumnRef:
		idx, err := b.rel.ColIndex(x.Table, x.Column)
		if err != nil {
			return nil, err
		}
		return func(r types.Row) (types.Value, error) { return r[idx], nil }, nil

	case *sqlparse.Binary:
		return b.bindBinary(x)

	case *sqlparse.Unary:
		inner, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(r types.Row) (types.Value, error) {
				v, err := inner(r)
				if err != nil || v.IsNull() {
					return v, err
				}
				if v.Kind() != types.KindBool {
					return types.Value{}, fmt.Errorf("engine: NOT on non-boolean %s", v.Kind())
				}
				return types.NewBool(!v.Bool()), nil
			}, nil
		case "-":
			return func(r types.Row) (types.Value, error) {
				v, err := inner(r)
				if err != nil || v.IsNull() {
					return v, err
				}
				switch v.Kind() {
				case types.KindInt:
					return types.NewInt(-v.Int()), nil
				case types.KindFloat:
					return types.NewFloat(-v.Float()), nil
				}
				return types.Value{}, fmt.Errorf("engine: unary minus on %s", v.Kind())
			}, nil
		}
		return nil, fmt.Errorf("engine: unknown unary operator %q", x.Op)

	case *sqlparse.Between:
		ev, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := b.bind(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bind(x.Hi)
		if err != nil {
			return nil, err
		}
		return func(r types.Row) (types.Value, error) {
			v, err := ev(r)
			if err != nil {
				return types.Value{}, err
			}
			lv, err := lo(r)
			if err != nil {
				return types.Value{}, err
			}
			hv, err := hi(r)
			if err != nil {
				return types.Value{}, err
			}
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return types.Null(), nil
			}
			in := types.Compare(v, lv) >= 0 && types.Compare(v, hv) <= 0
			if x.Not {
				in = !in
			}
			return types.NewBool(in), nil
		}, nil

	case *sqlparse.InList:
		ev, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		items := make([]boundExpr, len(x.List))
		for i, it := range x.List {
			items[i], err = b.bind(it)
			if err != nil {
				return nil, err
			}
		}
		return func(r types.Row) (types.Value, error) {
			v, err := ev(r)
			if err != nil {
				return types.Value{}, err
			}
			if v.IsNull() {
				return types.Null(), nil
			}
			sawNull := false
			for _, item := range items {
				iv, err := item(r)
				if err != nil {
					return types.Value{}, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if types.Compare(v, iv) == 0 {
					return types.NewBool(!x.Not), nil
				}
			}
			if sawNull {
				return types.Null(), nil // unknown under 3VL
			}
			return types.NewBool(x.Not), nil
		}, nil

	case *sqlparse.InSubquery:
		return b.bindInSubquery(x)

	case *sqlparse.Like:
		ev, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		match := compileLike(x.Pattern)
		return func(r types.Row) (types.Value, error) {
			v, err := ev(r)
			if err != nil {
				return types.Value{}, err
			}
			if v.IsNull() {
				return types.Null(), nil
			}
			if v.Kind() != types.KindText {
				return types.Value{}, fmt.Errorf("engine: LIKE on non-text %s", v.Kind())
			}
			ok := match(v.Text())
			if x.Not {
				ok = !ok
			}
			return types.NewBool(ok), nil
		}, nil

	case *sqlparse.IsNull:
		ev, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		return func(r types.Row) (types.Value, error) {
			v, err := ev(r)
			if err != nil {
				return types.Value{}, err
			}
			isNull := v.IsNull()
			if x.Not {
				isNull = !isNull
			}
			return types.NewBool(isNull), nil
		}, nil

	case *sqlparse.FuncCall:
		return nil, fmt.Errorf("engine: aggregate/function %s not allowed in this context", x.Name)
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", e)
}

func (b *binder) bindBinary(x *sqlparse.Binary) (boundExpr, error) {
	l, err := b.bind(x.L)
	if err != nil {
		return nil, err
	}
	r, err := b.bind(x.R)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case sqlparse.OpAnd:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			// Short-circuit: FALSE AND x = FALSE even if x is NULL.
			if !lv.IsNull() && lv.Kind() == types.KindBool && !lv.Bool() {
				return types.NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if !rv.IsNull() && rv.Kind() == types.KindBool && !rv.Bool() {
				return types.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.NewBool(lv.Bool() && rv.Bool()), nil
		}, nil
	case sqlparse.OpOr:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			if !lv.IsNull() && lv.Kind() == types.KindBool && lv.Bool() {
				return types.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if !rv.IsNull() && rv.Kind() == types.KindBool && rv.Bool() {
				return types.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.NewBool(lv.Bool() || rv.Bool()), nil
		}, nil
	case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			c := types.Compare(lv, rv)
			var ok bool
			switch op {
			case sqlparse.OpEq:
				ok = c == 0
			case sqlparse.OpNe:
				ok = c != 0
			case sqlparse.OpLt:
				ok = c < 0
			case sqlparse.OpLe:
				ok = c <= 0
			case sqlparse.OpGt:
				ok = c > 0
			case sqlparse.OpGe:
				ok = c >= 0
			}
			return types.NewBool(ok), nil
		}, nil
	case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul, sqlparse.OpDiv:
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("engine: unsupported binary operator %s", op)
}

// arith evaluates numeric arithmetic: int op int stays integral (SQL
// truncating division), anything involving a float promotes to float.
func arith(op sqlparse.BinaryOp, a, b types.Value) (types.Value, error) {
	if a.Kind() == types.KindInt && b.Kind() == types.KindInt {
		x, y := a.Int(), b.Int()
		switch op {
		case sqlparse.OpAdd:
			return types.NewInt(x + y), nil
		case sqlparse.OpSub:
			return types.NewInt(x - y), nil
		case sqlparse.OpMul:
			return types.NewInt(x * y), nil
		case sqlparse.OpDiv:
			if y == 0 {
				return types.Value{}, fmt.Errorf("engine: division by zero")
			}
			return types.NewInt(x / y), nil
		}
	}
	if (a.Kind() == types.KindInt || a.Kind() == types.KindFloat) &&
		(b.Kind() == types.KindInt || b.Kind() == types.KindFloat) {
		x, y := a.Float(), b.Float()
		switch op {
		case sqlparse.OpAdd:
			return types.NewFloat(x + y), nil
		case sqlparse.OpSub:
			return types.NewFloat(x - y), nil
		case sqlparse.OpMul:
			return types.NewFloat(x * y), nil
		case sqlparse.OpDiv:
			if y == 0 {
				return types.Value{}, fmt.Errorf("engine: division by zero")
			}
			return types.NewFloat(x / y), nil
		}
	}
	return types.Value{}, fmt.Errorf("engine: arithmetic on %s and %s", a.Kind(), b.Kind())
}

// bindInSubquery runs the (non-correlated) subquery once at bind time and
// compiles membership probing against its materialized key set.
func (b *binder) bindInSubquery(x *sqlparse.InSubquery) (boundExpr, error) {
	if b.sub == nil {
		return nil, fmt.Errorf("engine: subqueries not supported in this context")
	}
	ev, err := b.bind(x.E)
	if err != nil {
		return nil, err
	}
	rel, err := b.sub(x.Query)
	if err != nil {
		return nil, err
	}
	if len(rel.Cols) != 1 {
		return nil, fmt.Errorf("engine: IN subquery must return one column, got %d", len(rel.Cols))
	}
	keys := types.NewKeySet()
	sawNull := false
	for _, row := range rel.Rows {
		if row[0].IsNull() {
			sawNull = true
			continue
		}
		keys.AddKey(row, []int{0})
	}
	return func(r types.Row) (types.Value, error) {
		v, err := ev(r)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		probe := types.Row{v}
		if keys.ContainsKey(probe, []int{0}) {
			return types.NewBool(!x.Not), nil
		}
		if sawNull {
			return types.Null(), nil
		}
		return types.NewBool(x.Not), nil
	}, nil
}

// compileLike compiles a SQL LIKE pattern (% multi-char, _ single-char
// wildcards) into a matcher. Matching is done directly (no regexp) with
// iterative backtracking on %.
func compileLike(pattern string) func(string) bool {
	// Fast paths for the common shapes.
	if !strings.ContainsAny(pattern, "%_") {
		return func(s string) bool { return s == pattern }
	}
	if strings.Count(pattern, "%") == 2 && !strings.Contains(pattern, "_") &&
		strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2 {
		inner := pattern[1 : len(pattern)-1]
		if !strings.Contains(inner, "%") {
			return func(s string) bool { return strings.Contains(s, inner) }
		}
	}
	return func(s string) bool { return likeMatch(s, pattern) }
}

// likeMatch implements LIKE with greedy-with-backtracking % handling,
// operating on bytes (patterns in this repo are ASCII).
func likeMatch(s, p string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// truthy applies predicate semantics: only a non-NULL boolean TRUE passes.
func truthy(v types.Value) bool {
	return !v.IsNull() && v.Kind() == types.KindBool && v.Bool()
}

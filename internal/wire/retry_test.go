package wire

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"
)

// fakeClock drives the retry loop without real sleeping: Sleep records the
// request and advances virtual time instantly.
type fakeClock struct {
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time { return c.now }
func (c *fakeClock) Sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

// dialCounter is a dial hook that always fails, counting attempts.
type dialCounter struct{ n int }

func (d *dialCounter) dial(addr string) (net.Conn, error) {
	d.n++
	return nil, errors.New("synthetic dial failure")
}

// newBrokenClient builds a client whose every dial fails, on a fake clock.
func newBrokenClient(t *testing.T, p RetryPolicy) (*Client, *dialCounter, *fakeClock) {
	t.Helper()
	dc := &dialCounter{}
	c, err := DialOptions("synthetic:0", Options{Version: FormatV2, Retry: p, Dial: dc.dial})
	if p.maxAttempts() > 1 {
		if err != nil {
			t.Fatalf("retrying DialOptions surfaced the dial error eagerly: %v", err)
		}
	} else if err == nil {
		t.Fatal("no-retry DialOptions swallowed the dial error")
	}
	if c == nil {
		t.Skip("client not constructed")
	}
	fc := newFakeClock()
	c.clock = fc
	return c, dc, fc
}

func TestRetryAttemptCount(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, Jitter: -1, Seed: 1}
	c, dc, fc := newBrokenClient(t, p)
	_, err := c.Exec("SELECT x FROM t")
	if err == nil {
		t.Fatal("expected failure")
	}
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("untyped error %T", err)
	}
	if xe.Attempts != 5 {
		t.Fatalf("attempts = %d, want 5", xe.Attempts)
	}
	// One dial at DialOptions time, then one per Exec attempt.
	if dc.n != 6 {
		t.Fatalf("dials = %d, want 6", dc.n)
	}
	// 4 backoff sleeps between the 5 attempts, doubling without jitter.
	want := []time.Duration{100, 200, 400, 800}
	if len(fc.sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want 4 doubling delays", fc.sleeps)
	}
	for i, w := range want {
		if fc.sleeps[i] != w*time.Millisecond {
			t.Errorf("sleep %d = %v, want %v", i, fc.sleeps[i], w*time.Millisecond)
		}
	}
}

func TestRetryBackoffCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond, Jitter: -1, Seed: 1}
	c, _, fc := newBrokenClient(t, p)
	c.Exec("SELECT x FROM t")
	if len(fc.sleeps) != 7 {
		t.Fatalf("sleeps = %d, want 7", len(fc.sleeps))
	}
	for i, d := range fc.sleeps {
		if d > 300*time.Millisecond {
			t.Errorf("sleep %d = %v exceeds the 300ms cap", i, d)
		}
	}
	if fc.sleeps[0] != 100*time.Millisecond || fc.sleeps[1] != 200*time.Millisecond {
		t.Errorf("pre-cap sleeps = %v, want 100ms then 200ms", fc.sleeps[:2])
	}
	for _, d := range fc.sleeps[2:] {
		if d != 300*time.Millisecond {
			t.Errorf("post-cap sleep = %v, want exactly the cap", d)
		}
	}
}

func TestRetryJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 1 * time.Second, MaxBackoff: time.Second, Jitter: 0.5}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		d := p.backoff(1, rng)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jittered delay %v outside [500ms, 1s]", d)
		}
	}
	// Jitter 0 means the 0.5 default; negative disables it entirely.
	pDefault := RetryPolicy{BaseBackoff: time.Second, MaxBackoff: time.Second}
	for i := 0; i < 2000; i++ {
		d := pDefault.backoff(1, rng)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("default-jitter delay %v outside [500ms, 1s]", d)
		}
	}
	pNone := RetryPolicy{BaseBackoff: time.Second, MaxBackoff: time.Second, Jitter: -1}
	if d := pNone.backoff(1, rng); d != time.Second {
		t.Fatalf("jitter-disabled delay = %v, want exactly 1s", d)
	}
}

func TestRetryDeterministicWithSeed(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Second, MaxBackoff: 4 * time.Second, Jitter: 0.5}
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 5)
		for i := range out {
			out[i] = p.backoff(i+1, rng)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryQueryTimeoutStopsEarly(t *testing.T) {
	// 100ms backoff, no jitter, 250ms overall budget: attempt 1 fails,
	// sleep 100ms; attempt 2 fails, the 200ms backoff is clamped to the
	// remaining 150ms; attempt 3 fails with the budget exhausted — even
	// though MaxAttempts would allow 10.
	p := RetryPolicy{
		MaxAttempts:  10,
		BaseBackoff:  100 * time.Millisecond,
		Jitter:       -1,
		QueryTimeout: 250 * time.Millisecond,
		Seed:         1,
	}
	c, _, fc := newBrokenClient(t, p)
	_, err := c.Exec("SELECT x FROM t")
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("untyped error %T", err)
	}
	if xe.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (budget-bounded)", xe.Attempts)
	}
	if len(fc.sleeps) != 2 {
		t.Fatalf("sleeps = %v, want [100ms 150ms]", fc.sleeps)
	}
	if fc.sleeps[0] != 100*time.Millisecond || fc.sleeps[1] != 150*time.Millisecond {
		t.Fatalf("sleeps = %v, want [100ms 150ms] (second clamped to the budget)", fc.sleeps)
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	dc := &dialCounter{}
	_, err := DialOptions("synthetic:0", Options{Retry: RetryPolicy{MaxAttempts: 1, Seed: 1}, Dial: dc.dial})
	if err == nil {
		t.Fatal("no-retry DialOptions swallowed the dial error")
	}
	if dc.n != 1 {
		t.Fatalf("dials = %d, want exactly 1 with retry disabled", dc.n)
	}
}

func TestRetryFromEnv(t *testing.T) {
	t.Setenv(RetriesEnvVar, "6")
	t.Setenv(RetryBackoffEnvVar, "75ms")
	p := RetryFromEnv()
	if p.MaxAttempts != 6 {
		t.Fatalf("MaxAttempts = %d, want 6", p.MaxAttempts)
	}
	if p.BaseBackoff != 75*time.Millisecond {
		t.Fatalf("BaseBackoff = %v, want 75ms", p.BaseBackoff)
	}
	if p.AttemptTimeout == 0 || p.QueryTimeout == 0 {
		t.Fatal("env-enabled policy should inherit the default deadlines")
	}

	t.Setenv(RetriesEnvVar, "not-a-number")
	if p := RetryFromEnv(); p.MaxAttempts != 0 {
		t.Fatalf("unparsable %s yielded policy %+v, want zero", RetriesEnvVar, p)
	}
	os.Unsetenv(RetriesEnvVar)
	os.Unsetenv(RetryBackoffEnvVar)
	if p := RetryFromEnv(); p != (RetryPolicy{}) {
		t.Fatalf("unset env yielded %+v, want the zero policy", p)
	}
}

func TestRetryBackoffHugeAttemptDoesNotOverflow(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Second, MaxBackoff: 2 * time.Second, Jitter: -1}
	rng := rand.New(rand.NewSource(1))
	if d := p.backoff(1_000_000, rng); d != 2*time.Second {
		t.Fatalf("huge attempt backoff = %v, want the 2s cap", d)
	}
}

package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/faultnet"
)

// The chaos differential gate: a retrying client driven through every
// faultnet failure mode, across both payload versions, buffered and streamed
// responses, and two degrees of parallelism, must return either the
// byte-exact oracle result or a typed *ExchangeError — never a silent
// partial or corrupt result, and never a hang.

func chaosDB(t testing.TB) *db.Database {
	t.Helper()
	d := db.New()
	script := `
CREATE TABLE cust (id INT PRIMARY KEY, name TEXT, tier TEXT);
CREATE TABLE ord (id INT PRIMARY KEY, cust_id INT, total FLOAT);
INSERT INTO cust VALUES (1, 'Ann', 'gold'), (2, 'Bob', 'gold'), (3, 'Cay', 'base'), (4, 'Dee', 'base');`
	if _, err := d.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	// Enough order rows that responses span many kilobytes: mid-response
	// faults must land inside the transfer, not after it.
	var b strings.Builder
	for i := 0; i < 1200; i++ {
		if i%100 == 0 {
			if i > 0 {
				b.WriteString(";\n")
			}
			b.WriteString("INSERT INTO ord VALUES ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d.5)", 100+i, i%4+1, i)
	}
	b.WriteString(";")
	if _, err := d.ExecScript(b.String()); err != nil {
		t.Fatal(err)
	}
	return d
}

// chaosQuery projects o.id too, keeping the ord relation's rows unique: the
// response then spans several kilobytes, so mid-response fault offsets land
// inside the transfer instead of beyond it.
const chaosQuery = "SELECT RESULTDB c.name, c.tier, o.id, o.total FROM cust AS c, ord AS o WHERE c.id = o.cust_id AND o.total > 10"

// canonical encodes a result at a fixed version and parallelism, giving the
// byte-exact comparison key the gate checks client results against.
func canonical(res *db.Result) []byte {
	return EncodeResultOptions(res, EncodeOptions{Version: FormatV1, Parallelism: 1})
}

// chaosRetry is a fast, deterministic retry policy for fault sweeps: real
// backoff sleeps would dominate the gate's runtime, fake-clock precision is
// covered by the retry unit tests.
func chaosRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    attempts,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Jitter:         -1,
		ConnectTimeout: 5 * time.Second,
		AttemptTimeout: 10 * time.Second,
		QueryTimeout:   60 * time.Second,
		Seed:           1,
	}
}

// chaosFaults is the fault matrix: every action at offsets hitting the
// hello, the query frame, and the response body.
var chaosFaults = []faultnet.Fault{
	{Action: faultnet.Refuse},
	{Action: faultnet.Drop, Offset: 0},
	{Action: faultnet.Drop, Offset: 3},
	{Action: faultnet.Drop, Offset: 60},
	{Action: faultnet.Drop, Offset: 700},
	{Action: faultnet.Stall, Offset: 0, Delay: 5 * time.Millisecond},
	{Action: faultnet.Stall, Offset: 200, Delay: 10 * time.Millisecond},
	{Action: faultnet.Truncate, Offset: 2},
	{Action: faultnet.Truncate, Offset: 9},
	{Action: faultnet.Truncate, Offset: 120},
	{Action: faultnet.Corrupt, Offset: 1},
	{Action: faultnet.Corrupt, Offset: 8},
	{Action: faultnet.Corrupt, Offset: 40},
	{Action: faultnet.Corrupt, Offset: 900},
	{Action: faultnet.Reset, Offset: 0},
	{Action: faultnet.Reset, Offset: 30},
}

func TestChaosDifferentialGate(t *testing.T) {
	d := chaosDB(t)
	oracleRes, err := d.Exec(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle := canonical(oracleRes)
	if len(oracle) == 0 {
		t.Fatal("empty oracle encoding")
	}

	for _, par := range []int{1, 4} {
		for _, opts := range []Options{
			{Version: FormatV1},
			{Version: FormatV2},
			{Version: FormatV1, Streaming: true},
			{Version: FormatV2, Streaming: true},
		} {
			par, opts := par, opts
			name := fmt.Sprintf("v%d_stream=%v_par%d", opts.Version-1, opts.Streaming, par)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				served := chaosDB(t)
				served.SetParallelism(par)
				srv := NewServer(served)
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()

				// One faulted connection, then clean: the retrying client
				// must always converge on the exact oracle bytes.
				for _, f := range chaosFaults {
					o := opts
					o.Retry = chaosRetry(4)
					o.Dial = faultnet.NewDialer(faultnet.Plan{Conns: []faultnet.Fault{f}}).Dial
					c, err := DialOptions(addr, o)
					if err != nil {
						t.Fatalf("fault %v: dial: %v", f, err)
					}
					res, err := c.Exec(chaosQuery)
					if err != nil {
						t.Fatalf("fault %v: retrying client failed: %v", f, err)
					}
					if got := canonical(res); !bytes.Equal(got, oracle) {
						t.Fatalf("fault %v: result diverged from oracle (%d vs %d bytes)", f, len(got), len(oracle))
					}
					c.Close()
				}

				// Every connection faulted with a hard failure: the client
				// must exhaust its attempts and surface a typed error — a
				// nil error with wrong bytes is the one forbidden outcome.
				for _, f := range []faultnet.Fault{
					{Action: faultnet.Refuse},
					{Action: faultnet.Drop, Offset: 0},
					{Action: faultnet.Truncate, Offset: 7},
					{Action: faultnet.Corrupt, Offset: 40},
					{Action: faultnet.Reset, Offset: 0},
				} {
					o := opts
					o.Retry = chaosRetry(3)
					o.Dial = faultnet.NewDialer(faultnet.Repeat(f, 32)).Dial
					c, err := DialOptions(addr, o)
					if err == nil {
						res, err := c.Exec(chaosQuery)
						if err == nil {
							if got := canonical(res); !bytes.Equal(got, oracle) {
								t.Fatalf("all-faults %v: SILENT CORRUPTION: nil error with diverging result", f)
							}
							t.Fatalf("all-faults %v: expected failure, got clean result", f)
						}
						var xe *ExchangeError
						if !errors.As(err, &xe) {
							t.Fatalf("all-faults %v: untyped error %T: %v", f, err, err)
						}
						if xe.Kind == KindTerminal {
							t.Fatalf("all-faults %v: transport fault classified terminal: %v", f, err)
						}
						if xe.Attempts != 3 {
							t.Fatalf("all-faults %v: %d attempts, want 3", f, xe.Attempts)
						}
						c.Close()
					}
				}
			})
		}
	}
}

// TestChaosSeededSweep drives randomized fault plans (deterministic per
// seed) against a retrying client: any outcome is legal except a wrong
// result or an untyped error.
func TestChaosSeededSweep(t *testing.T) {
	d := chaosDB(t)
	oracleRes, err := d.Exec(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle := canonical(oracleRes)

	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for seed := int64(1); seed <= 10; seed++ {
		plan := faultnet.RandomPlan(seed, 6)
		o := Options{Version: FormatV2, Streaming: true}
		o.Retry = chaosRetry(8)
		o.Dial = faultnet.NewDialer(plan).Dial
		c, err := DialOptions(addr, o)
		if err != nil {
			continue // refused initial dial with retries disabled mid-plan is fine
		}
		res, err := c.Exec(chaosQuery)
		switch {
		case err == nil:
			if got := canonical(res); !bytes.Equal(got, oracle) {
				t.Fatalf("seed %d (%v): SILENT CORRUPTION", seed, plan)
			}
		default:
			var xe *ExchangeError
			if !errors.As(err, &xe) {
				t.Fatalf("seed %d (%v): untyped error %T: %v", seed, plan, err, err)
			}
		}
		c.Close()
	}
}

// TestChaosNonIdempotentNeverRetried locks the write-safety rule: a DML
// statement that dies mid-exchange fails after exactly one attempt, even
// with retries configured.
func TestChaosNonIdempotentNeverRetried(t *testing.T) {
	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	o := Options{Version: FormatV2}
	o.Retry = chaosRetry(5)
	// Fault every connection so a retry, if wrongly attempted, would also
	// fail — the assertion is on the attempt count.
	o.Dial = faultnet.NewDialer(faultnet.Repeat(faultnet.Fault{Action: faultnet.Drop, Offset: 40}, 16)).Dial
	c, err := DialOptions(addr, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("INSERT INTO cust VALUES (99, 'Zed', 'gold')")
	if err == nil {
		t.Fatal("expected the faulted INSERT to fail")
	}
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("untyped error %T: %v", err, err)
	}
	if xe.Attempts != 1 {
		t.Fatalf("non-idempotent statement retried: %d attempts", xe.Attempts)
	}
}

// TestChaosErrorContext checks the satellite fix: a mid-result connection
// drop surfaces with query context (hash, frame index, bytes read) instead
// of a raw io.EOF.
func TestChaosErrorContext(t *testing.T) {
	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// v1 payloads: the response is ~14KB uncompressed, so an offset-600 drop
	// is guaranteed to strike mid-transfer on any read segmentation.
	o := Options{Version: FormatV1, Streaming: true}
	// Single attempt (explicit, so ambient RESULTDB_RETRIES can't leak in):
	// observe the raw classified failure. Drop deep into the response so the
	// client has already consumed response frames.
	o.Retry = RetryPolicy{MaxAttempts: 1, Seed: 1}
	o.Dial = faultnet.NewDialer(faultnet.Repeat(faultnet.Fault{Action: faultnet.Drop, Offset: 600}, 4)).Dial
	c, err := DialOptions(addr, o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec(chaosQuery)
	if err == nil {
		t.Fatal("expected mid-result drop to fail")
	}
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("mid-result drop returned untyped %T: %v", err, err)
	}
	if xe.QueryHash == 0 {
		t.Error("missing query hash")
	}
	if xe.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", xe.Attempts)
	}
	if xe.FrameIndex < 1 || xe.BytesRead <= 0 {
		t.Errorf("mid-result drop context: frame %d, %d bytes — want progress recorded", xe.FrameIndex, xe.BytesRead)
	}
	if !IsRetryable(err) && !IsCorrupt(err) {
		t.Errorf("mid-result drop classified %v", xe.Kind)
	}
	msg := err.Error()
	if !bytes.Contains([]byte(msg), []byte("exchange error")) {
		t.Errorf("error lacks exchange context: %q", msg)
	}
}

// TestChaosServerSideFaults installs faultnet under the server's ListenFunc
// hook, so the faults hit the response direction: a corrupted response byte
// must be caught by the CRC trailer and healed by a retry on the next
// (clean) accepted connection.
func TestChaosServerSideFaults(t *testing.T) {
	d := chaosDB(t)
	oracleRes, err := d.Exec(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle := canonical(oracleRes)

	for _, f := range []faultnet.Fault{
		{Action: faultnet.Corrupt, Offset: 2000}, // inside the encoded response
		{Action: faultnet.Truncate, Offset: 900}, // cut mid-response-frame
		{Action: faultnet.Drop, Offset: 1500},
		{Action: faultnet.Refuse},
	} {
		srv := NewServer(chaosDB(t))
		srv.ListenFunc = func(network, addr string) (net.Listener, error) {
			return faultnet.Listen(network, addr, faultnet.Plan{Conns: []faultnet.Fault{f}})
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		// v1 payloads: the ~14KB response guarantees every offset above
		// lands inside the server's transmission.
		o := Options{Version: FormatV1, Streaming: true}
		o.Retry = chaosRetry(4)
		c, err := DialOptions(addr, o)
		if err != nil {
			t.Fatalf("fault %v: dial: %v", f, err)
		}
		res, err := c.Exec(chaosQuery)
		if err != nil {
			t.Fatalf("server-side fault %v: retrying client failed: %v", f, err)
		}
		if got := canonical(res); !bytes.Equal(got, oracle) {
			t.Fatalf("server-side fault %v: SILENT CORRUPTION", f)
		}
		c.Close()
		if f.Action == faultnet.Corrupt {
			// The corrupt response must have been detected, not absorbed.
			if n := c.Reconnects(); n == 0 {
				t.Errorf("corrupt response healed without a reconnect — CRC never tripped?")
			}
		}
		srv.Close()
	}
}

// TestIntegrityNegotiatedByDefault locks the CRC32 handshake in: modern
// connections get trailers, opt-outs and legacy connections do not, and all
// of them execute identically.
func TestIntegrityNegotiated(t *testing.T) {
	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		name string
		opts Options
		want bool
	}{
		{"default", Options{Version: FormatV2, Streaming: true}, true},
		{"buffered", Options{Version: FormatV1}, true},
		{"opt-out", Options{Version: FormatV2, NoIntegrity: true}, false},
		{"legacy", Options{Legacy: true}, false},
	}
	for _, tc := range cases {
		c, err := DialOptions(addr, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := c.Integrity(); got != tc.want {
			t.Errorf("%s: integrity = %v, want %v", tc.name, got, tc.want)
		}
		if _, err := c.Exec(chaosQuery); err != nil {
			t.Errorf("%s: exec: %v", tc.name, err)
		}
		c.Close()
	}
	if n := srv.Stats().ChecksumFailures; n != 0 {
		t.Errorf("clean traffic produced %d checksum failures", n)
	}
}

// TestShutdownKicksIdleConnections: drain must not wait for idle clients.
func TestShutdownKicksIdleConnections(t *testing.T) {
	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(chaosQuery); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(30 * time.Second) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on an idle connection")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Shutdown of an idle connection took %v", d)
	}
	if n := srv.ActiveConns(); n != 0 {
		t.Fatalf("%d connections still active after Shutdown", n)
	}
	// The listener is gone: new dials must fail (the client with retries
	// must still surface a typed error, not hang).
	o := Options{Version: FormatV2}
	o.Retry = chaosRetry(2)
	if c2, err := DialOptions(addr, o); err == nil {
		if _, err := c2.Exec(chaosQuery); err == nil {
			t.Fatal("Exec succeeded against a shut-down server")
		}
		c2.Close()
	}
}

// TestShutdownUnderLoad drains while concurrent clients are mid-query:
// every Exec must either succeed byte-exactly or fail with an error — and
// the drain must complete.
func TestShutdownUnderLoad(t *testing.T) {
	d := chaosDB(t)
	oracleRes, err := d.Exec(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle := canonical(oracleRes)

	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.Exec(chaosQuery)
				if err != nil {
					return // drained mid-exchange: an error, never bad bytes
				}
				if got := canonical(res); !bytes.Equal(got, oracle) {
					t.Error("SILENT CORRUPTION during drain")
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(10 * time.Second) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown hung under load")
	}
	close(stop)
	wg.Wait()
	if n := srv.ActiveConns(); n != 0 {
		t.Fatalf("%d connections active after drain", n)
	}
	st := srv.Stats()
	if st.Accepted == 0 || st.Queries == 0 {
		t.Fatalf("implausible stats after load: %+v", st)
	}
}

// TestServerStats checks the counters and their trace rendering.
func TestServerStats(t *testing.T) {
	srv := NewServer(chaosDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(chaosQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT nope FROM nowhere"); err == nil {
		t.Fatal("bad query succeeded")
	} else if !IsTerminal(err) {
		t.Errorf("statement error classified %v, want terminal", err)
	}
	st := srv.Stats()
	if st.Accepted < 1 || st.Queries < 2 || st.QueryErrors < 1 {
		t.Fatalf("stats = %+v, want >=1 accepted, >=2 queries, >=1 error", st)
	}
	lines := st.Trace().CompactLines()
	joined := ""
	for _, l := range lines {
		joined += l + "\n"
	}
	for _, want := range []string{"conns_accepted: ", "queries: 2", "query_errors: 1"} {
		if !bytes.Contains([]byte(joined), []byte(want)) {
			t.Errorf("stats trace missing %q in:\n%s", want, joined)
		}
	}
}

// FuzzFaultPlan decodes arbitrary bytes into a bounded fault plan and runs
// a retrying client under it: the client must neither hang nor panic, and a
// nil error must mean byte-exact oracle equality.
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{2, 40, 10, 4, 90, 0})
	f.Add([]byte{6, 0, 0, 6, 0, 0, 3, 30, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 24))

	d := chaosDB(f)
	oracleRes, err := d.Exec(chaosQuery)
	if err != nil {
		f.Fatal(err)
	}
	oracle := canonical(oracleRes)
	srv := NewServer(chaosDB(f))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })

	f.Fuzz(func(t *testing.T, data []byte) {
		plan := faultnet.DecodePlan(data)
		o := Options{Version: FormatV2, Streaming: true}
		o.Retry = RetryPolicy{
			MaxAttempts:    2,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     2 * time.Millisecond,
			Jitter:         -1,
			ConnectTimeout: 2 * time.Second,
			AttemptTimeout: 5 * time.Second,
			QueryTimeout:   20 * time.Second,
			Seed:           1,
		}
		o.Dial = faultnet.NewDialer(plan).Dial
		c, err := DialOptions(addr, o)
		if err != nil {
			return
		}
		defer c.Close()
		res, err := c.Exec(chaosQuery)
		if err == nil {
			if got := canonical(res); !bytes.Equal(got, oracle) {
				t.Fatalf("plan %v: silent corruption", plan)
			}
			return
		}
		var xe *ExchangeError
		if !errors.As(err, &xe) {
			t.Fatalf("plan %v: untyped error %T: %v", plan, err, err)
		}
	})
}

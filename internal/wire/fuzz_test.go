package wire

import (
	"bytes"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/engine"
	"resultdb/internal/types"
)

// fuzzSeedResult builds a representative subdatabase result: two sets (all
// five value kinds, NaN and -0.0 included) plus a shipped post-join plan.
func fuzzSeedResult() *db.Result {
	nan := types.NewFloat(0)
	{
		// Build NaN without importing math in a way the encoder must preserve
		// bit-for-bit (0/0).
		zero := 0.0
		nan = types.NewFloat(zero / zero)
	}
	return &db.Result{
		Sets: []*db.ResultSet{
			{
				Name:    "c",
				Columns: []string{"id", "name", "score"},
				Rows: []types.Row{
					{types.NewInt(1), types.NewText("Ann"), types.NewFloat(1.5)},
					{types.NewInt(-7), types.NewText("it's"), nan},
					{types.Null(), types.NewText(""), types.NewFloat(0)},
				},
			},
			{
				Name:    "p",
				Columns: []string{"ok"},
				Rows:    []types.Row{{types.NewBool(true)}, {types.NewBool(false)}},
			},
		},
		PostJoinPlan: &db.PostJoinPlan{
			Preds:      []engine.JoinPred{{LeftRel: "c", LeftCol: "id", RightRel: "o", RightCol: "cust_id"}},
			Projection: []engine.Attr{{Rel: "c", Col: "name"}, {Rel: "p", Col: "ok"}},
		},
	}
}

// FuzzEncodeDecode throws arbitrary bytes at DecodeResult and checks the
// wire format's two safety contracts:
//
//  1. the decoder never panics and never over-allocates on hostile counts
//     (it returns an error instead), and
//  2. decode is idempotent through the codec: if a payload decodes, then
//     re-encoding the result and decoding again reproduces the same result,
//     verified by byte-comparing the two canonical encodings. (The raw input
//     itself may differ from the re-encoding — varints have non-minimal
//     forms — so decode-equality, not byte-equality of the input, is the
//     invariant.)
func FuzzEncodeDecode(f *testing.F) {
	f.Add(EncodeResult(fuzzSeedResult()))
	f.Add(EncodeResult(&db.Result{}))
	f.Add(EncodeResult(&db.Result{Sets: []*db.ResultSet{{Name: "empty"}}}))
	f.Add(EncodeResultV2(fuzzSeedResult()))
	f.Add(EncodeResultV2(&db.Result{}))
	f.Add([]byte{})
	f.Add([]byte{0xa1, 0x84, 0x90, 0x92, 0x05}) // bare magic, then truncation
	// Hostile v2 shapes: a dictionary claiming absurdly many entries, and a
	// column whose null bitmap is cut short. Both must be rejected cleanly;
	// the fuzzer mutates from here into the rest of the columnar format.
	hostile := NewEncoder()
	hostile.uvarint(magic)
	hostile.uvarint(FormatV2)
	hostile.uvarint(0)
	hostile.uvarint(1)
	hostile.str("s")
	hostile.uvarint(1)
	hostile.str("c")
	hostile.uvarint(3)
	hostile.buf = append(hostile.buf, textDict|colText<<colKindShift)
	hostile.uvarint(1 << 40) // dictionary entries: absurd
	f.Add(hostile.Bytes())
	truncBitmap := NewEncoder()
	truncBitmap.uvarint(magic)
	truncBitmap.uvarint(FormatV2)
	truncBitmap.uvarint(0)
	truncBitmap.uvarint(1)
	truncBitmap.str("s")
	truncBitmap.uvarint(1)
	truncBitmap.str("c")
	truncBitmap.uvarint(100)
	truncBitmap.buf = append(truncBitmap.buf, colNullsBit|colInt<<colKindShift, 0x02) // 13-byte bitmap, 1 present
	f.Add(truncBitmap.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data) // must never panic
		if err != nil {
			return
		}
		// Idempotency through both codecs: whatever decoded must survive a
		// v1 and a v2 re-encode, and both must agree on the values (byte
		// equality of the canonical v1 form).
		enc := EncodeResult(res)
		res2, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("re-encoded v1 payload does not decode: %v", err)
		}
		if enc2 := EncodeResult(res2); !bytes.Equal(enc, enc2) {
			t.Fatalf("v1 decode/encode not idempotent:\nfirst:  %x\nsecond: %x", enc, enc2)
		}
		encV2 := EncodeResultV2(res)
		if v, err := PayloadVersion(encV2); err != nil || v != FormatV2 {
			t.Fatalf("v2 re-encoding has version %d, %v", v, err)
		}
		// (No size assertion here: fuzz inputs can decode to mixed-kind
		// columns, the one case where v2 costs an extra desc byte. The
		// differential gate asserts v2 <= v1 on the real workloads.)
		res3, err := DecodeResult(encV2)
		if err != nil {
			t.Fatalf("re-encoded v2 payload does not decode: %v", err)
		}
		if enc3 := EncodeResult(res3); !bytes.Equal(enc, enc3) {
			t.Fatalf("v2 round trip altered the result:\nv1 form:  %x\nvia v2:   %x", enc, enc3)
		}
	})
}

// TestDecodeRejectsHostileCounts locks the allocation bounds: headers that
// announce more elements than the payload could possibly hold must error
// without allocating row storage for them.
func TestDecodeRejectsHostileCounts(t *testing.T) {
	base := EncodeResult(fuzzSeedResult())
	// Sanity: the untampered payload round-trips.
	if _, err := DecodeResult(base); err != nil {
		t.Fatalf("seed payload does not decode: %v", err)
	}
	e := NewEncoder()
	e.uvarint(magic)
	e.uvarint(FormatV1)
	e.uvarint(0) // flags
	e.uvarint(1) // one set
	e.str("s")
	e.uvarint(1 << 40) // columns: absurd
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("absurd column count was accepted")
	}
	e = NewEncoder()
	e.uvarint(magic)
	e.uvarint(FormatV1)
	e.uvarint(0)
	e.uvarint(1)
	e.str("s")
	e.uvarint(1)
	e.str("a")
	e.uvarint(1 << 50) // rows: absurd
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("absurd row count was accepted")
	}
	e = NewEncoder()
	e.uvarint(magic)
	e.uvarint(FormatV1)
	e.uvarint(0)
	e.uvarint(1)
	e.str("s")
	e.uvarint(0) // zero columns...
	e.uvarint(2) // ...but two rows
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("rows in a zero-column set were accepted")
	}
}

// Package wire serializes results for transport and models data-transfer
// cost. It provides a compact binary encoding of single-table and
// subdatabase results, an analytic transfer-time model matching the paper's
// Section 6.4 setup (a fixed data transfer rate, default 100 Mbps), and a
// minimal TCP server/client so the distributed-database use case (Section
// 1.2, use case 3) runs over a real socket.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"resultdb/internal/db"
	"resultdb/internal/engine"
	"resultdb/internal/trace"
	"resultdb/internal/types"
)

// Format versioning so decoders can reject foreign payloads. The header
// version number identifies the payload layout: the original row-major
// tagged-value format (user-facing "v1") shipped with header version 2; the
// columnar format of encodev2.go ("v2": null bitmaps, delta/varint integer
// runs, shared text dictionaries, bit-packed bools, per-column deflate) is
// header version 3. Decoders accept both; encoders pick via EncodeOptions.
const (
	magic = 0x52444221 // "RDB!"

	// FormatV1 is the row-major tagged-value payload layout ("v1").
	FormatV1 = 2
	// FormatV2 is the columnar payload layout ("v2").
	FormatV2 = 3
)

// payload flag bits.
const flagHasPlan = 1 << 0

// value kind tags on the wire.
const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagText
	tagBool
)

// Encoder appends the wire form of results to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// NewEncoderSized returns an empty encoder whose buffer has the given
// capacity, so encoding a result of a known shape performs one allocation
// instead of O(log size) append regrowths (each of which copies the whole
// buffer built so far).
func NewEncoderSized(capacity int) *Encoder {
	if capacity < 0 {
		capacity = 0
	}
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// resultCapacityHint estimates the encoded size of r from its row and column
// counts alone (no value scan): per-cell costs average a few bytes for
// varint integers and bools and tens for JOB-style text, so 12 bytes per
// cell lands within one append-doubling of the real size on the benchmark
// workloads — close enough that encoding does O(1) allocations either way.
func resultCapacityHint(r *db.Result) int {
	h := 16
	for _, set := range r.Sets {
		h += setCapacityHint(set)
	}
	if p := r.PostJoinPlan; p != nil {
		h += 16 + 64*len(p.Preds) + 32*len(p.Projection)
	}
	return h
}

// setCapacityHint is resultCapacityHint for a single set (the streaming
// server sizes each chunk's encoder with it).
func setCapacityHint(set *db.ResultSet) int {
	h := 24 + len(set.Name)
	for _, c := range set.Columns {
		h += 8 + len(c)
	}
	return h + len(set.Rows)*len(set.Columns)*12
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *Encoder) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *Encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *Encoder) value(v types.Value) {
	switch v.Kind() {
	case types.KindNull:
		e.buf = append(e.buf, tagNull)
	case types.KindInt:
		e.buf = append(e.buf, tagInt)
		e.varint(v.Int())
	case types.KindFloat:
		e.buf = append(e.buf, tagFloat)
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v.Float()))
	case types.KindText:
		e.buf = append(e.buf, tagText)
		e.str(v.Text())
	case types.KindBool:
		e.buf = append(e.buf, tagBool)
		if v.Bool() {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
	}
}

// Uvarint appends an unsigned varint (for external composers like
// internal/snapshot).
func (e *Encoder) Uvarint(v uint64) { e.uvarint(v) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) { e.str(s) }

// Value appends one typed value.
func (e *Encoder) Value(v types.Value) { e.value(v) }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) { return d.uvarint() }

// Str reads a length-prefixed string.
func (d *Decoder) Str() (string, error) { return d.str() }

// Value reads one typed value.
func (d *Decoder) Value() (types.Value, error) { return d.value() }

// Remaining reports the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// EncodeOptions configures EncodeResultOptions.
type EncodeOptions struct {
	// Version selects the payload layout: FormatV1 or FormatV2. The zero
	// value means FormatV1 (the original format), so existing callers are
	// unaffected.
	Version int
	// Parallelism is the degree used for per-column encoding in FormatV2
	// (0 = auto, 1 = serial). Output bytes are identical at any degree.
	Parallelism int
	// Tracer, when enabled, records one "encode" span per result set with
	// the exact wire bytes the set contributed.
	Tracer *trace.Tracer
}

func (o EncodeOptions) version() int {
	if o.Version == 0 {
		return FormatV1
	}
	return o.Version
}

// EncodeResult serializes a result in the original v1 format: all of its
// sets plus, when present, the shipped post-join plan (the paper's
// subdatabase-snapshot extension).
func EncodeResult(r *db.Result) []byte {
	return EncodeResultOptions(r, EncodeOptions{})
}

// EncodeResultV2 serializes a result in the columnar v2 format.
func EncodeResultV2(r *db.Result) []byte {
	return EncodeResultOptions(r, EncodeOptions{Version: FormatV2})
}

// EncodeResultTraced is EncodeResult recording one "encode" span per result
// set (rows in, exact wire bytes contributed by the set) plus the trace's
// bytes-out counter; tr may be nil (disabled, zero extra cost).
func EncodeResultTraced(r *db.Result, tr *trace.Tracer) []byte {
	return EncodeResultOptions(r, EncodeOptions{Tracer: tr})
}

// EncodeResultOptions serializes a result in the requested format version.
// Panics on an unknown version (programmer error, like encodeSet's arity
// check). The streamed server produces exactly these bytes chunk by chunk
// (encodeHeader + per-set encodeSetVersion + encodePlan), so buffered and
// streamed transfers are byte-identical.
func EncodeResultOptions(r *db.Result, opts EncodeOptions) []byte {
	v := opts.version()
	if v != FormatV1 && v != FormatV2 {
		panic(fmt.Sprintf("wire: unknown format version %d", v))
	}
	tr := opts.Tracer
	e := NewEncoderSized(resultCapacityHint(r))
	e.encodeHeader(v, len(r.Sets), r.PostJoinPlan != nil)
	for _, set := range r.Sets {
		before := e.Len()
		e.encodeSetVersion(set, v, opts.Parallelism)
		if sp := tr.Span("encode", set.Name); sp != nil {
			sp.Phase = "wire"
			if v == FormatV2 {
				sp.Detail = "v2 columnar"
				sp.Vec = set.Vec != nil
			}
			sp.RowsIn = len(set.Rows)
			sp.RowsOut = len(set.Rows)
			sp.Bytes = e.Len() - before
			tr.AddBytes(e.Len() - before)
		}
	}
	if r.PostJoinPlan != nil {
		before := e.Len()
		e.encodePlan(r.PostJoinPlan)
		if sp := tr.Span("encode", "post-join plan"); sp != nil {
			sp.Phase = "wire"
			sp.Bytes = e.Len() - before
			tr.AddBytes(e.Len() - before)
		}
	}
	return e.Bytes()
}

// encodeHeader writes the payload prologue: magic, version, flags, set
// count. For RESULTDB queries all three inputs are known before the first
// relation is projected, which is what lets the streaming server emit the
// header first and the sets as they are produced.
func (e *Encoder) encodeHeader(version, nSets int, hasPlan bool) {
	e.uvarint(magic)
	e.uvarint(uint64(version))
	var flags uint64
	if hasPlan {
		flags |= flagHasPlan
	}
	e.uvarint(flags)
	e.uvarint(uint64(nSets))
}

// encodeSetVersion writes one result set in the given format version.
func (e *Encoder) encodeSetVersion(set *db.ResultSet, version, par int) {
	if version == FormatV2 {
		e.encodeSetV2(set, par)
		return
	}
	e.encodeSet(set)
}

func (e *Encoder) encodePlan(p *db.PostJoinPlan) {
	e.uvarint(uint64(len(p.Preds)))
	for _, j := range p.Preds {
		e.str(j.LeftRel)
		e.str(j.LeftCol)
		e.str(j.RightRel)
		e.str(j.RightCol)
	}
	e.uvarint(uint64(len(p.Projection)))
	for _, a := range p.Projection {
		e.str(a.Rel)
		e.str(a.Col)
	}
}

func (e *Encoder) encodeSet(set *db.ResultSet) {
	e.str(set.Name)
	e.uvarint(uint64(len(set.Columns)))
	for _, c := range set.Columns {
		e.str(c)
	}
	e.uvarint(uint64(len(set.Rows)))
	for _, row := range set.Rows {
		if len(row) != len(set.Columns) {
			panic(fmt.Sprintf("wire: row arity %d != %d columns", len(row), len(set.Columns)))
		}
		for _, v := range row {
			e.value(v)
		}
	}
}

// Decoder reads the wire form back.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *Decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *Decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", fmt.Errorf("wire: truncated string of length %d at offset %d", n, d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *Decoder) value() (types.Value, error) {
	if d.off >= len(d.buf) {
		return types.Value{}, fmt.Errorf("wire: truncated value at offset %d", d.off)
	}
	tag := d.buf[d.off]
	d.off++
	switch tag {
	case tagNull:
		return types.Null(), nil
	case tagInt:
		v, err := d.varint()
		if err != nil {
			return types.Value{}, err
		}
		return types.NewInt(v), nil
	case tagFloat:
		if len(d.buf)-d.off < 8 {
			return types.Value{}, fmt.Errorf("wire: truncated float at offset %d", d.off)
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return types.NewFloat(math.Float64frombits(bits)), nil
	case tagText:
		s, err := d.str()
		if err != nil {
			return types.Value{}, err
		}
		return types.NewText(s), nil
	case tagBool:
		if d.off >= len(d.buf) {
			return types.Value{}, fmt.Errorf("wire: truncated bool at offset %d", d.off)
		}
		b := d.buf[d.off] != 0
		d.off++
		return types.NewBool(b), nil
	default:
		return types.Value{}, fmt.Errorf("wire: unknown value tag %d at offset %d", tag, d.off-1)
	}
}

// count reads an element count and bounds it by the bytes actually left in
// the payload (each element costs at least minBytes on the wire), so hostile
// headers cannot drive huge allocations or long loops before the truncation
// is discovered.
func (d *Decoder) count(minBytes int, what string) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.Remaining()/minBytes) {
		return 0, fmt.Errorf("wire: %s count %d exceeds remaining payload (%d bytes)", what, n, d.Remaining())
	}
	return int(n), nil
}

// PayloadVersion reports the format version of an encoded payload
// (FormatV1 or FormatV2) without decoding it.
func PayloadVersion(buf []byte) (int, error) {
	d := NewDecoder(buf)
	m, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if m != magic {
		return 0, fmt.Errorf("wire: bad magic %#x", m)
	}
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v != FormatV1 && v != FormatV2 {
		return 0, fmt.Errorf("wire: unsupported version %d", v)
	}
	return int(v), nil
}

// DecodeResult parses a payload produced by EncodeResultOptions in either
// format version.
func DecodeResult(buf []byte) (*db.Result, error) {
	return decodeResult(buf, 0)
}

// DecodeResultExpect is DecodeResult restricted to one format version: a
// payload in any other version is rejected before its sets are touched.
// Clients use it to enforce the version they negotiated, so a server (or a
// middlebox) cannot downgrade or upgrade the stream silently.
func DecodeResultExpect(buf []byte, version int) (*db.Result, error) {
	if version != FormatV1 && version != FormatV2 {
		return nil, fmt.Errorf("wire: unknown expected version %d", version)
	}
	return decodeResult(buf, version)
}

// decodeResult parses a payload; expect 0 accepts any supported version.
func decodeResult(buf []byte, expect int) (*db.Result, error) {
	d := NewDecoder(buf)
	m, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("wire: bad magic %#x", m)
	}
	v, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if v != FormatV1 && v != FormatV2 {
		return nil, fmt.Errorf("wire: unsupported version %d", v)
	}
	if expect != 0 && int(v) != expect {
		return nil, fmt.Errorf("wire: version %d payload where version %d was negotiated", v, expect)
	}
	flags, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// A set costs at least 3 bytes (empty name, zero columns, zero rows).
	nSets, err := d.count(3, "result set")
	if err != nil {
		return nil, err
	}
	// The v2 materialization budget: total decoded cells across all sets,
	// bounded by what a legitimate encoder can express in len(buf) bytes
	// (see decodeSetV2).
	budget := newCellBudget(len(buf))
	res := &db.Result{}
	for i := 0; i < nSets; i++ {
		var set *db.ResultSet
		if v == FormatV2 {
			set, err = d.decodeSetV2(budget)
		} else {
			set, err = d.decodeSet()
		}
		if err != nil {
			return nil, err
		}
		res.Sets = append(res.Sets, set)
	}
	if flags&flagHasPlan != 0 {
		plan, err := d.decodePlan()
		if err != nil {
			return nil, err
		}
		res.PostJoinPlan = plan
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return res, nil
}

func (d *Decoder) decodePlan() (*db.PostJoinPlan, error) {
	plan := &db.PostJoinPlan{}
	nPreds, err := d.count(4, "join predicate") // four length-prefixed strings
	if err != nil {
		return nil, err
	}
	for i := 0; i < nPreds; i++ {
		var j engine.JoinPred
		if j.LeftRel, err = d.str(); err != nil {
			return nil, err
		}
		if j.LeftCol, err = d.str(); err != nil {
			return nil, err
		}
		if j.RightRel, err = d.str(); err != nil {
			return nil, err
		}
		if j.RightCol, err = d.str(); err != nil {
			return nil, err
		}
		plan.Preds = append(plan.Preds, j)
	}
	nProj, err := d.count(2, "projection attr") // two length-prefixed strings
	if err != nil {
		return nil, err
	}
	for i := 0; i < nProj; i++ {
		var a engine.Attr
		if a.Rel, err = d.str(); err != nil {
			return nil, err
		}
		if a.Col, err = d.str(); err != nil {
			return nil, err
		}
		plan.Projection = append(plan.Projection, a)
	}
	return plan, nil
}

func (d *Decoder) decodeSet() (*db.ResultSet, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	nCols, err := d.count(1, "column") // a column name costs >= 1 byte
	if err != nil {
		return nil, err
	}
	set := &db.ResultSet{Name: name}
	for i := 0; i < nCols; i++ {
		c, err := d.str()
		if err != nil {
			return nil, err
		}
		set.Columns = append(set.Columns, c)
	}
	nRows, err := d.count(nCols, "row") // a row costs >= 1 byte per value
	if err != nil {
		return nil, err
	}
	if nCols == 0 && nRows > 0 {
		return nil, fmt.Errorf("wire: %d rows in a zero-column set", nRows)
	}
	for i := 0; i < nRows; i++ {
		row := make(types.Row, nCols)
		for j := range row {
			row[j], err = d.value()
			if err != nil {
				return nil, err
			}
		}
		set.Rows = append(set.Rows, row)
	}
	return set, nil
}

package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/types"
)

func sampleResult() *db.Result {
	return &db.Result{Sets: []*db.ResultSet{
		{
			Name:    "c",
			Columns: []string{"name", "id"},
			Rows: []types.Row{
				{types.NewText("custA"), types.NewInt(0)},
				{types.NewText("it's"), types.NewInt(-7)},
				{types.Null(), types.NewInt(math.MaxInt64)},
			},
		},
		{
			Name:    "p",
			Columns: []string{"price", "ok"},
			Rows: []types.Row{
				{types.NewFloat(3.25), types.NewBool(true)},
				{types.NewFloat(math.Inf(1)), types.NewBool(false)},
			},
		},
		{Name: "empty", Columns: []string{"x"}},
	}}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleResult()
	buf := EncodeResult(r)
	got, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sets) != len(r.Sets) {
		t.Fatalf("sets = %d, want %d", len(got.Sets), len(r.Sets))
	}
	for i, set := range r.Sets {
		gs := got.Sets[i]
		if gs.Name != set.Name || strings.Join(gs.Columns, ",") != strings.Join(set.Columns, ",") {
			t.Errorf("set %d header mismatch: %+v", i, gs)
		}
		if len(gs.Rows) != len(set.Rows) {
			t.Fatalf("set %d rows = %d, want %d", i, len(gs.Rows), len(set.Rows))
		}
		for j := range set.Rows {
			if !gs.Rows[j].Equal(set.Rows[j]) {
				t.Errorf("set %d row %d = %v, want %v", i, j, gs.Rows[j], set.Rows[j])
			}
		}
	}
}

// randomValue draws any value kind for fuzz-style round-trip checks.
func randomValue(rng *rand.Rand) types.Value {
	switch rng.Intn(5) {
	case 0:
		return types.Null()
	case 1:
		return types.NewInt(rng.Int63() - rng.Int63())
	case 2:
		return types.NewFloat(rng.NormFloat64() * 1e6)
	case 3:
		n := rng.Intn(20)
		b := make([]byte, n)
		rng.Read(b)
		return types.NewText(string(b))
	default:
		return types.NewBool(rng.Intn(2) == 0)
	}
}

func TestEncodeDecodeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		nCols := 1 + rng.Intn(5)
		set := &db.ResultSet{Name: "s", Columns: make([]string, nCols)}
		for i := range set.Columns {
			set.Columns[i] = string(rune('a' + i))
		}
		for r := 0; r < rng.Intn(30); r++ {
			row := make(types.Row, nCols)
			for i := range row {
				row[i] = randomValue(rng)
			}
			set.Rows = append(set.Rows, row)
		}
		res := &db.Result{Sets: []*db.ResultSet{set}}
		got, err := DecodeResult(EncodeResult(res))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, row := range set.Rows {
			if !got.Sets[0].Rows[i].Equal(row) {
				t.Fatalf("trial %d row %d: %v != %v", trial, i, got.Sets[0].Rows[i], row)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		[]byte("definitely not a result"),
		EncodeResult(sampleResult())[:10], // truncated
	}
	for i, buf := range cases {
		if _, err := DecodeResult(buf); err == nil {
			t.Errorf("case %d: garbage decoded successfully", i)
		}
	}
	// Trailing bytes rejected.
	buf := append(EncodeResult(sampleResult()), 0xFF)
	if _, err := DecodeResult(buf); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestTransferModel(t *testing.T) {
	m := TransferModel{Mbps: 100}
	// 100 Mbps = 12.5 MB/s; 12_500_000 bytes should take 1s.
	if d := m.Duration(12_500_000); d != time.Second {
		t.Errorf("Duration = %v, want 1s", d)
	}
	if d := m.Duration(0); d != 0 {
		t.Errorf("zero bytes = %v", d)
	}
	if d := (TransferModel{}).Duration(1 << 20); d != 0 {
		t.Errorf("zero rate should be free: %v", d)
	}
	// Monotone in bytes.
	if m.Duration(1000) >= m.Duration(2000) {
		t.Error("transfer time not monotone")
	}
	if DefaultTransfer.Mbps != 100 {
		t.Errorf("DefaultTransfer = %v, paper uses 100 Mbps", DefaultTransfer.Mbps)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	d := db.New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO t VALUES (1, 'a'), (2, 'b');
	`); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec("SELECT t.name FROM t AS t WHERE t.id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || res.First().NumRows() != 1 || res.First().Rows[0][0].Text() != "b" {
		t.Fatalf("result = %+v", res.First())
	}
	if c.BytesRead() == 0 {
		t.Error("BytesRead not accounted")
	}

	// Errors propagate as errors, connection stays usable.
	if _, err := c.Exec("SELECT nope FROM missing"); err == nil {
		t.Error("server error not propagated")
	}
	if _, err := c.Exec("SELECT t.id FROM t AS t"); err != nil {
		t.Errorf("connection unusable after error: %v", err)
	}

	// DDL/DML and RESULTDB over the wire.
	if _, err := c.Exec("INSERT INTO t VALUES (3, 'c')"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT RESULTDB t.name FROM t AS t WHERE t.id > 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || res.Sets[0].NumRows() != 2 {
		t.Fatalf("resultdb over wire = %+v", res.Sets)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	d := db.New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY);
		INSERT INTO t VALUES (1), (2), (3);
	`); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for q := 0; q < 20; q++ {
				res, err := c.Exec("SELECT COUNT(*) FROM t AS t")
				if err != nil {
					errc <- err
					return
				}
				if res.First().Rows[0][0].Int() != 3 {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteReadFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameQuery || string(payload) != "SELECT 1" {
		t.Errorf("frame = %d %q", typ, payload)
	}
	// Empty payloads round-trip too.
	if err := writeFrame(&buf, frameOK, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(&buf)
	if err != nil || typ != frameOK || len(payload) != 0 {
		t.Errorf("empty frame = %d %q %v", typ, payload, err)
	}
}

func TestReadFrameRejectsOversizeAndTruncation(t *testing.T) {
	// Oversized length header.
	var hdr [5]byte
	hdr[0] = frameQuery
	binary.BigEndian.PutUint32(hdr[1:], maxFrame+1)
	if _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Error("oversize frame accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameQuery, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestServerRejectsUnknownFrameType(t *testing.T) {
	d := db.New()
	srv := NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, 0x7F, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameErr || !strings.Contains(string(payload), "unexpected frame type") {
		t.Errorf("response = %d %q", typ, payload)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	srv := NewServer(db.New())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Error("dial after Close should fail")
	}
	// Double close is safe.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestEncoderLenTracksBytes(t *testing.T) {
	e := NewEncoder()
	if e.Len() != 0 {
		t.Error("fresh encoder not empty")
	}
	e.Str("hello")
	if e.Len() != len(e.Bytes()) || e.Len() == 0 {
		t.Errorf("Len = %d, Bytes = %d", e.Len(), len(e.Bytes()))
	}
}

// TestQuickEncodeDecodeInts: any single-column integer result survives the
// wire round trip (testing/quick drives the values).
func TestQuickEncodeDecodeInts(t *testing.T) {
	f := func(vals []int64, name string) bool {
		set := &db.ResultSet{Name: name, Columns: []string{"v"}}
		for _, v := range vals {
			set.Rows = append(set.Rows, types.Row{types.NewInt(v)})
		}
		res := &db.Result{Sets: []*db.ResultSet{set}}
		got, err := DecodeResult(EncodeResult(res))
		if err != nil {
			return false
		}
		if got.Sets[0].Name != name || len(got.Sets[0].Rows) != len(vals) {
			return false
		}
		for i, v := range vals {
			if got.Sets[0].Rows[i][0].Int() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package wire

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

// This file is the correctness gate of the semantic result cache: for every
// workload query it executes the statement
//
//	(1) cold     — first execution on the cached database (a miss),
//	(2) warm     — second execution (must be a cache hit), and
//	(3) reheated — after an invalidating INSERT into a referenced table
//	               (the entry must be discarded and recomputed),
//
// and requires each of the three to be byte-identical, after wire encoding,
// to an uncached oracle database that received exactly the same statements.
// The wire encoding covers set names, column lists, row data, and the
// shipped post-join plan, so any divergence — stale rows, wrong dedup, a
// mixed-up entry, a surviving pre-DML result — shows up as a byte diff.

// literalFor produces a deterministic, distinctive literal for a column.
func literalFor(kind types.Kind, seq int) string {
	switch kind {
	case types.KindInt:
		return fmt.Sprintf("%d", 900000000+seq)
	case types.KindFloat:
		return fmt.Sprintf("%d.5", 900000000+seq)
	case types.KindBool:
		return "TRUE"
	default:
		return fmt.Sprintf("'cache_diff_%d'", seq)
	}
}

var insertSeq int

// invalidatingInsert builds an INSERT statement for the first base table the
// query references, with fresh synthetic values for every column.
func invalidatingInsert(t *testing.T, d *db.Database, sel *sqlparse.Select) string {
	t.Helper()
	tables := sqlparse.Tables(sel)
	if len(tables) == 0 {
		t.Fatal("query references no tables")
	}
	def, err := d.Catalog().Lookup(tables[0])
	if err != nil {
		t.Fatalf("lookup %s: %v", tables[0], err)
	}
	insertSeq++
	vals := make([]string, len(def.Columns))
	for i, c := range def.Columns {
		vals[i] = literalFor(c.Type, insertSeq)
	}
	return fmt.Sprintf("INSERT INTO %s VALUES (%s)", def.Name, strings.Join(vals, ", "))
}

// execBytes executes sql and returns the wire encoding of the result.
func execBytes(t *testing.T, d *db.Database, sql string) []byte {
	t.Helper()
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return EncodeResult(res)
}

// checkColdWarmInvalidate runs the three-phase differential for one query.
func checkColdWarmInvalidate(t *testing.T, cached, oracle *db.Database, name, sql string) {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}

	st0 := cached.CacheStats()
	cold := execBytes(t, cached, sql)
	want := execBytes(t, oracle, sql)
	if !bytes.Equal(cold, want) {
		t.Fatalf("%s: cold cached execution differs from uncached oracle", name)
	}

	warm := execBytes(t, cached, sql)
	if !bytes.Equal(warm, want) {
		t.Fatalf("%s: warm (cache-hit) execution differs from uncached oracle", name)
	}
	st1 := cached.CacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("%s: warm execution was not a cache hit (%+v -> %+v)", name, st0, st1)
	}

	// Invalidate: the same INSERT goes to both databases.
	ins := invalidatingInsert(t, cached, sel)
	if _, err := cached.Exec(ins); err != nil {
		t.Fatalf("%s: %q on cached db: %v", name, ins, err)
	}
	if _, err := oracle.Exec(ins); err != nil {
		t.Fatalf("%s: %q on oracle db: %v", name, ins, err)
	}
	reheated := execBytes(t, cached, sql)
	wantAfter := execBytes(t, oracle, sql)
	if !bytes.Equal(reheated, wantAfter) {
		t.Fatalf("%s: post-INSERT execution differs from uncached oracle (stale cache?)", name)
	}
	st2 := cached.CacheStats()
	if st2.Invalidations <= st1.Invalidations {
		t.Fatalf("%s: INSERT did not invalidate the cached entry (%+v -> %+v)", name, st1, st2)
	}
}

// cachedAndOracle loads the same workload into a cached db and an uncached
// oracle.
func cachedAndOracle(t *testing.T, load func(d *db.Database) error) (*db.Database, *db.Database) {
	t.Helper()
	cached, oracle := db.New(), db.New()
	if err := load(cached); err != nil {
		t.Fatal(err)
	}
	if err := load(oracle); err != nil {
		t.Fatal(err)
	}
	cached.EnableCache(256 << 20)
	if oracle.CacheEnabled() {
		t.Fatal("oracle must stay uncached")
	}
	return cached, oracle
}

func TestCacheDifferentialJOB(t *testing.T) {
	cached, oracle := cachedAndOracle(t, func(d *db.Database) error {
		return job.Load(d, job.Config{Scale: 0.05, Seed: 42})
	})
	for _, q := range job.Queries() {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		checkColdWarmInvalidate(t, cached, oracle, q.Name+"/rdb", sql)
	}
	// The ten Table-1 instances additionally run relationship-preserving
	// (post-join plan included in the encoding) and classic single-table.
	for _, name := range job.Table1Queries {
		q, err := job.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := strings.TrimSpace(q.SQL)
		rp := "SELECT RESULTDB PRESERVING" + strings.TrimPrefix(trimmed, "SELECT")
		checkColdWarmInvalidate(t, cached, oracle, name+"/rdbrp", rp)
		checkColdWarmInvalidate(t, cached, oracle, name+"/st", trimmed)
	}
}

func TestCacheDifferentialStar(t *testing.T) {
	cfg := star.Config{Dims: 3, DimRows: 12, PayloadLen: 16, Seed: 7}
	cached, oracle := cachedAndOracle(t, func(d *db.Database) error {
		return star.Load(d, cfg)
	})
	for _, sel := range []float64{0.2, 0.6, 1.0} {
		st := star.Query(cfg, sel)
		rdb := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(star.PayloadQuery(cfg, sel)), "SELECT")
		checkColdWarmInvalidate(t, cached, oracle, fmt.Sprintf("star-%.1f/st", sel), st)
		checkColdWarmInvalidate(t, cached, oracle, fmt.Sprintf("star-%.1f/rdb", sel), rdb)
	}
}

func TestCacheDifferentialHierarchy(t *testing.T) {
	cached, oracle := cachedAndOracle(t, func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	})
	checkColdWarmInvalidate(t, cached, oracle, "hier/outer", strings.TrimSpace(hierarchy.OuterJoinQuery))
	checkColdWarmInvalidate(t, cached, oracle, "hier/rdb-electronics", strings.TrimSpace(hierarchy.ResultDBElectronics))
	checkColdWarmInvalidate(t, cached, oracle, "hier/rdb-clothing", strings.TrimSpace(hierarchy.ResultDBClothing))
}

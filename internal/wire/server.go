package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resultdb/internal/db"
)

// Frame types of the protocol. Every frame is a 1-byte type, a 4-byte
// big-endian length, and the payload.
//
// A connection that never sends frameHello speaks the original protocol:
// v1 payloads, one frameOK per query. After a hello exchange (uvarint
// version + uvarint flags in both directions; flag bit 0 requests
// streaming), responses use the negotiated payload version, and — when
// streaming was granted — arrive as frameChunk frames terminated by a
// frameEnd. The concatenated chunk payloads are byte-identical to the
// frameOK payload the same query would have produced unstreamed; chunking
// exists so the server can flush relation-by-relation while the executor is
// still projecting later relations. A frameErr may replace frameOK or
// interrupt a chunk stream at any point (the client discards the partial
// buffer).
const (
	frameQuery byte = 1 // client -> server: SQL text
	frameOK    byte = 2 // server -> client: encoded Result
	frameErr   byte = 3 // server -> client: error text
	frameHello byte = 4 // both directions: uvarint version, uvarint flags
	frameChunk byte = 5 // server -> client: partial encoded Result
	frameEnd   byte = 6 // server -> client: end of chunked response
)

// helloStreaming is the hello flag bit requesting (client) or granting
// (server) streamed responses.
const helloStreaming = 1 << 0

// encodeHello builds a hello payload.
func encodeHello(version int, streaming bool) []byte {
	e := NewEncoderSized(4)
	e.uvarint(uint64(version))
	var flags uint64
	if streaming {
		flags |= helloStreaming
	}
	e.uvarint(flags)
	return e.Bytes()
}

// decodeHello parses a hello payload.
func decodeHello(payload []byte) (version int, streaming bool, err error) {
	d := NewDecoder(payload)
	v, err := d.uvarint()
	if err != nil {
		return 0, false, err
	}
	flags, err := d.uvarint()
	if err != nil {
		return 0, false, err
	}
	if d.Remaining() != 0 {
		return 0, false, fmt.Errorf("wire: %d trailing bytes in hello", d.Remaining())
	}
	return int(v), flags&helloStreaming != 0, nil
}

const maxFrame = 1 << 30

// errFrameTooLarge marks an oversized inbound frame. The header has been
// consumed but the payload has not, so the stream cannot be resynchronized:
// the server answers frameErr and drops the connection instead of silently
// dying.
var errFrameTooLarge = errors.New("wire: frame exceeds size limit")

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w (%d bytes > %d)", errFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server exposes a Database over TCP. Configure the hardening knobs before
// Listen; they are not safe to change while serving.
type Server struct {
	db *db.Database

	// ReadTimeout bounds how long a connection may sit idle (or dribble one
	// frame) before the server drops it; zero means no deadline. The
	// deadline is re-armed before every frame read, so a busy connection
	// lives forever and an abandoned one is reaped.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame; zero means none.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections (0 = unlimited). The
	// accept loop blocks once the cap is reached, leaving excess dials in
	// the kernel backlog until a slot frees — clients see latency, not
	// errors, under overload.
	MaxConns int
	// MaxVersion clamps version negotiation (0 = FormatV2, the highest
	// supported). Set to FormatV1 to force every connection onto the
	// original row-major payloads regardless of what clients request.
	MaxVersion int

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup

	active atomic.Int64
}

// NewServer wraps a database.
func NewServer(d *db.Database) *Server { return &Server{db: d} }

// ActiveConns reports the number of connections currently being served.
func (s *Server) ActiveConns() int { return int(s.active.Load()) }

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	var sem chan struct{}
	if s.MaxConns > 0 {
		sem = make(chan struct{}, s.MaxConns)
	}
	s.wg.Add(1)
	go s.acceptLoop(ln, sem)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener, sem chan struct{}) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		if sem != nil {
			sem <- struct{}{} // blocks accepting beyond MaxConns
		}
		s.wg.Add(1)
		s.active.Add(1)
		go func() {
			defer func() {
				s.active.Add(-1)
				if sem != nil {
					<-sem
				}
				s.wg.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// maxVersion returns the highest payload version this server will speak.
func (s *Server) maxVersion() int {
	if s.MaxVersion == 0 {
		return FormatV2
	}
	return s.MaxVersion
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// Connection state: hello-less clients get the original protocol (v1
	// payloads, buffered frameOK responses) byte for byte.
	version := FormatV1
	streaming := false
	// reply writes one response frame under the write deadline and flushes.
	reply := func(typ byte, payload []byte) error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := writeFrame(w, typ, payload); err != nil {
			return err
		}
		return w.Flush()
	}
	// send writes one frame without flushing (chunk pipelining: the flush
	// happens per chunk in the stream writer, after the frame is complete).
	send := func(typ byte, payload []byte) error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		return writeFrame(w, typ, payload)
	}
	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		typ, payload, err := readFrame(r)
		if err != nil {
			if errors.Is(err, errFrameTooLarge) {
				// Answer before dropping: the stream cannot be resynced past
				// an unread oversized payload, but the client deserves to
				// know why the connection is going away.
				reply(frameErr, []byte(err.Error()))
			}
			return // client gone, idle timeout, or poisoned stream
		}
		switch typ {
		case frameHello:
			v, wantStream, err := decodeHello(payload)
			if err != nil {
				reply(frameErr, []byte(err.Error()))
				return
			}
			if v < FormatV1 {
				reply(frameErr, []byte(fmt.Sprintf("wire: unsupported version %d", v)))
				return
			}
			version = min(v, s.maxVersion())
			streaming = wantStream
			if err := reply(frameHello, encodeHello(version, streaming)); err != nil {
				return
			}
			continue
		case frameQuery:
		default:
			reply(frameErr, []byte(fmt.Sprintf("unexpected frame type %d", typ)))
			return
		}
		if streaming {
			if !s.serveStreamed(string(payload), version, reply, send, w) {
				return
			}
			continue
		}
		res, err := s.db.Exec(string(payload))
		if err != nil {
			if werr := reply(frameErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		opts := EncodeOptions{Version: version, Parallelism: s.db.CoreOptions.Parallelism}
		if werr := reply(frameOK, EncodeResultOptions(res, opts)); werr != nil {
			return
		}
	}
}

// serveStreamed answers one query as a chunk stream, overlapping execution,
// encoding, and transmission: the header chunk goes out before the first
// relation is projected; each relation is encoded on its own goroutine
// (columns in parallel inside it) while the executor projects the next one;
// and a writer goroutine flushes chunks in order as their encodes finish.
// Returns false when the connection is no longer usable.
func (s *Server) serveStreamed(sql string, version int, reply, send func(byte, []byte) error, w *bufio.Writer) bool {
	par := s.db.CoreOptions.Parallelism

	// Ordered delivery pipeline: emit enqueues a promise per chunk; the
	// writer resolves them in order. Capacity bounds how far encoding may
	// run ahead of the network.
	queue := make(chan chan []byte, 4)
	writeErr := make(chan error, 1)
	failed := make(chan struct{})
	var failOnce sync.Once
	go func() {
		var err error
		for p := range queue {
			data := <-p
			if err != nil {
				continue // drain remaining promises after a write error
			}
			if werr := send(frameChunk, data); werr != nil {
				err = werr
			} else if werr := w.Flush(); werr != nil {
				err = werr
			}
			if err != nil {
				failOnce.Do(func() { close(failed) })
			}
		}
		writeErr <- err
	}()
	enqueue := func(encode func() []byte) error {
		p := make(chan []byte, 1)
		go func() { p <- encode() }()
		select {
		case queue <- p:
			return nil
		case <-failed:
			return errors.New("wire: connection write failed")
		}
	}

	res, execErr := s.db.ExecStream(sql,
		func(meta db.StreamMeta) error {
			return enqueue(func() []byte {
				e := NewEncoderSized(16)
				e.encodeHeader(version, meta.NumSets, meta.Plan != nil)
				return e.Bytes()
			})
		},
		func(set *db.ResultSet) error {
			return enqueue(func() []byte {
				e := NewEncoderSized(setCapacityHint(set))
				e.encodeSetVersion(set, version, par)
				return e.Bytes()
			})
		})
	if execErr == nil && res.PostJoinPlan != nil {
		execErr = enqueue(func() []byte {
			e := NewEncoder()
			e.encodePlan(res.PostJoinPlan)
			return e.Bytes()
		})
	}
	close(queue)
	werr := <-writeErr
	if werr != nil {
		return false
	}
	if execErr != nil {
		// Either the statement failed (possibly mid-stream — the client
		// discards the partial response) or enqueue aborted on a write
		// error already handled above.
		return reply(frameErr, []byte(execErr.Error())) == nil
	}
	return reply(frameEnd, nil) == nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client speaks the protocol to a Server.
//
// Concurrency contract: Exec is safe for concurrent use — a mutex serializes
// whole request/response exchanges on the single underlying connection, so
// concurrent Execs queue and run one at a time (open one Client per desired
// in-flight request for pipelining). BytesRead may be read concurrently with
// in-flight Execs. Close may be called at any time; Execs blocked on the
// connection fail with the close error.
type Client struct {
	conn net.Conn

	mu sync.Mutex // serializes one full Exec exchange
	r  *bufio.Reader
	w  *bufio.Writer

	helloPending bool // hello sent at dial time, reply not yet consumed
	version      int  // negotiated payload version (FormatV1 without a hello)
	streaming    bool // negotiated streamed responses

	bytesRead atomic.Int64
}

// Options configures a client connection.
type Options struct {
	// Version is the payload version to request (FormatV1 or FormatV2;
	// 0 = FormatV2). The server may clamp it down; Version() reports the
	// negotiated outcome.
	Version int
	// Streaming requests chunked responses (server-side pipelining of
	// execution, encoding, and transmission).
	Streaming bool
	// Legacy skips the hello exchange entirely, reproducing the original
	// protocol byte for byte: v1 payloads, buffered responses. Version and
	// Streaming are ignored.
	Legacy bool
}

// Dial connects to a server, negotiating the newest payload version and
// streamed responses. Use DialOptions to pin a version or disable either.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{Version: FormatV2, Streaming: true})
}

// DialOptions connects to a server with explicit protocol options. The hello
// is written at dial time but the server's reply is consumed lazily, on the
// first Exec (or Version/Streaming call) — so dialing an overloaded server
// queues instead of blocking, exactly like the legacy protocol: clients see
// latency, not errors, and negotiation failures surface on first use.
func DialOptions(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), version: FormatV1}
	if opts.Legacy {
		return c, nil
	}
	want := opts.Version
	if want == 0 {
		want = FormatV2
	}
	if err := writeFrame(c.w, frameHello, encodeHello(want, opts.Streaming)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	c.helloPending = true
	return c, nil
}

// finishHello consumes the server's hello reply if one is still in flight.
// Callers must hold c.mu. On failure the connection is unusable; the pending
// flag stays set so every subsequent call reports an error too.
func (c *Client) finishHello() error {
	if !c.helloPending {
		return nil
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return err
	}
	switch typ {
	case frameHello:
		v, streaming, err := decodeHello(payload)
		if err != nil {
			return err
		}
		if v != FormatV1 && v != FormatV2 {
			return fmt.Errorf("wire: server negotiated unsupported version %d", v)
		}
		c.version = v
		c.streaming = streaming
		c.helloPending = false
		return nil
	case frameErr:
		return errors.New(string(payload))
	default:
		return fmt.Errorf("wire: unexpected frame type %d in hello exchange", typ)
	}
}

// Version reports the negotiated payload version (FormatV1 or FormatV2),
// completing the hello exchange if its reply is still in flight. Reports
// FormatV1 if negotiation failed (the next Exec returns the actual error).
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishHello()
	return c.version
}

// Streaming reports whether responses arrive as chunk streams, completing
// the hello exchange if its reply is still in flight.
func (c *Client) Streaming() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishHello()
	return c.streaming
}

// BytesRead returns the accumulated payload bytes received, for transfer
// accounting. Safe to call concurrently with Exec.
func (c *Client) BytesRead() int { return int(c.bytesRead.Load()) }

// Exec sends one statement and decodes the response. Safe for concurrent
// use; see the Client concurrency contract.
func (c *Client) Exec(sql string) (*db.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, frameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	// The query is already in flight; now settle the negotiation reply (if
	// pending) so we know how to read the response that follows it.
	if err := c.finishHello(); err != nil {
		return nil, err
	}
	if c.streaming {
		return c.readStreamed()
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	c.bytesRead.Add(int64(len(payload)))
	switch typ {
	case frameOK:
		return DecodeResultExpect(payload, c.version)
	case frameErr:
		return nil, errors.New(string(payload))
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %d", typ)
	}
}

// readStreamed collects one chunked response. The concatenated chunks are
// exactly the payload an unstreamed frameOK would have carried; a frameErr
// at any point aborts the response and the partial buffer is discarded.
func (c *Client) readStreamed() (*db.Result, error) {
	var buf []byte
	for {
		typ, payload, err := readFrame(c.r)
		if err != nil {
			return nil, err
		}
		c.bytesRead.Add(int64(len(payload)))
		switch typ {
		case frameChunk:
			buf = append(buf, payload...)
		case frameEnd:
			return DecodeResultExpect(buf, c.version)
		case frameErr:
			return nil, errors.New(string(payload))
		default:
			return nil, fmt.Errorf("wire: unexpected frame type %d in chunked response", typ)
		}
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/trace"
)

// Frame types of the protocol. Every frame is a 1-byte type, a 4-byte
// big-endian length, and the payload.
//
// A connection that never sends frameHello speaks the original protocol:
// v1 payloads, one frameOK per query. After a hello exchange (uvarint
// version + uvarint flags in both directions; flag bit 0 requests
// streaming, bit 1 requests CRC32 frame trailers), responses use the
// negotiated payload version, and — when streaming was granted — arrive as
// frameChunk frames terminated by a frameEnd. The concatenated chunk
// payloads are byte-identical to the frameOK payload the same query would
// have produced unstreamed; chunking exists so the server can flush
// relation-by-relation while the executor is still projecting later
// relations. A frameErr may replace frameOK or interrupt a chunk stream at
// any point (the client discards the partial buffer).
//
// When the integrity flag is granted, every frame after the hello exchange
// — both directions — carries a 4-byte big-endian CRC32-IEEE trailer over
// the header and payload, so a flipped bit anywhere surfaces as a typed
// checksum error instead of silently wrong data. The hello frames
// themselves always travel trailer-free (the grant is not known yet), and
// hello-less legacy connections are byte-for-byte unchanged.
const (
	frameQuery byte = 1 // client -> server: SQL text
	frameOK    byte = 2 // server -> client: encoded Result
	frameErr   byte = 3 // server -> client: error text
	frameHello byte = 4 // both directions: uvarint version, uvarint flags
	frameChunk byte = 5 // server -> client: partial encoded Result
	frameEnd   byte = 6 // server -> client: end of chunked response
)

// Hello flag bits: each is requested by the client and echoed by the server
// iff granted.
const (
	// helloStreaming requests/grants streamed (chunked) responses.
	helloStreaming = 1 << 0
	// helloIntegrity requests/grants CRC32 frame trailers on every
	// post-hello frame in both directions.
	helloIntegrity = 1 << 1
)

// encodeHello builds a hello payload.
func encodeHello(version int, flags uint64) []byte {
	e := NewEncoderSized(4)
	e.uvarint(uint64(version))
	e.uvarint(flags)
	return e.Bytes()
}

// decodeHello parses a hello payload.
func decodeHello(payload []byte) (version int, flags uint64, err error) {
	d := NewDecoder(payload)
	v, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	flags, err = d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if d.Remaining() != 0 {
		return 0, 0, fmt.Errorf("wire: %d trailing bytes in hello", d.Remaining())
	}
	return int(v), flags, nil
}

const maxFrame = 1 << 30

// errFrameTooLarge marks an oversized inbound frame. The header has been
// consumed but the payload has not, so the stream cannot be resynchronized:
// the server answers frameErr and drops the connection instead of silently
// dying.
var errFrameTooLarge = errors.New("wire: frame exceeds size limit")

// errChecksum marks a frame whose CRC32 trailer did not match its contents.
// The frame arrived whole — the stream is still synchronized — but its bytes
// cannot be trusted.
var errChecksum = errors.New("wire: frame checksum mismatch")

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w (%d bytes > %d)", errFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// writeFrameCRC writes one frame, appending the CRC32-IEEE trailer (over
// header and payload) when crc is set.
func writeFrameCRC(w io.Writer, typ byte, payload []byte, crc bool) error {
	if !crc {
		return writeFrame(w, typ, payload)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], sum)
	_, err := w.Write(trailer[:])
	return err
}

// readFrameCRC reads one frame, consuming and verifying the CRC32 trailer
// when crc is set. A mismatch returns errChecksum (wrapped) with the frame
// fully consumed, so the stream stays synchronized.
func readFrameCRC(r io.Reader, crc bool) (byte, []byte, error) {
	if !crc {
		return readFrame(r)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w (%d bytes > %d)", errFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return 0, nil, err
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if got := binary.BigEndian.Uint32(trailer[:]); got != sum {
		return 0, nil, fmt.Errorf("%w (frame type %d, %d bytes, got %08x want %08x)",
			errChecksum, hdr[0], n, got, sum)
	}
	return hdr[0], payload, nil
}

// serverStats is the server's atomic counter block; ServerStats is its
// exported snapshot.
type serverStats struct {
	accepted          atomic.Int64
	queries           atomic.Int64
	queryErrors       atomic.Int64
	panics            atomic.Int64
	writeStalls       atomic.Int64
	oversizedFrames   atomic.Int64
	checksumFailures  atomic.Int64
	drained           atomic.Int64
	backpressureWaits atomic.Int64
}

// ServerStats is a point-in-time snapshot of the server's operational
// counters, for overload and fault diagnosis.
type ServerStats struct {
	// Accepted counts connections accepted over the server's lifetime.
	Accepted int64 `json:"accepted"`
	// Queries counts statements executed (including failing ones).
	Queries int64 `json:"queries"`
	// QueryErrors counts statements that returned an error.
	QueryErrors int64 `json:"query_errors"`
	// Panics counts executor panics confined to their connection.
	Panics int64 `json:"panics"`
	// WriteStalls counts connections shed because a response write missed
	// the WriteTimeout — a slow or stuck client reader.
	WriteStalls int64 `json:"write_stalls"`
	// OversizedFrames counts inbound frames rejected for exceeding the
	// frame size limit.
	OversizedFrames int64 `json:"oversized_frames"`
	// ChecksumFailures counts inbound frames whose CRC32 trailer did not
	// match.
	ChecksumFailures int64 `json:"checksum_failures"`
	// Drained counts connections that exited via graceful drain.
	Drained int64 `json:"drained"`
	// BackpressureWaits counts accepts that had to wait for a MaxConns
	// slot — sustained growth means the server is saturated.
	BackpressureWaits int64 `json:"backpressure_waits"`
}

// Trace renders the counters as a trace — one "counter" span each — so the
// server's operational state reuses the EXPLAIN ANALYZE rendering path
// (trace.CompactLines / trace.TreeLines).
func (st ServerStats) Trace() *trace.Trace {
	counters := []struct {
		name  string
		value int64
	}{
		{"conns_accepted", st.Accepted},
		{"queries", st.Queries},
		{"query_errors", st.QueryErrors},
		{"panics", st.Panics},
		{"write_stalls", st.WriteStalls},
		{"oversized_frames", st.OversizedFrames},
		{"checksum_failures", st.ChecksumFailures},
		{"conns_drained", st.Drained},
		{"backpressure_waits", st.BackpressureWaits},
	}
	tr := &trace.Trace{Mode: "server-stats"}
	for _, c := range counters {
		tr.Spans = append(tr.Spans, trace.Span{
			Op:      "counter",
			Label:   c.name,
			Phase:   "server",
			RowsOut: int(c.value),
		})
	}
	return tr
}

// Server exposes a Database over TCP. Configure the hardening knobs before
// Listen; they are not safe to change while serving.
type Server struct {
	db *db.Database

	// ReadTimeout bounds how long a connection may sit idle (or dribble one
	// frame) before the server drops it; zero means no deadline. The
	// deadline is re-armed before every frame read, so a busy connection
	// lives forever and an abandoned one is reaped.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame; zero means none. A
	// write that misses it sheds the connection (a stuck client reader must
	// not pin a server goroutine and its response buffer forever) and
	// counts as a write stall in Stats.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections (0 = unlimited). The
	// accept loop blocks once the cap is reached, leaving excess dials in
	// the kernel backlog until a slot frees — clients see latency, not
	// errors, under overload. Waits are counted in Stats.
	MaxConns int
	// MaxVersion clamps version negotiation (0 = FormatV2, the highest
	// supported). Set to FormatV1 to force every connection onto the
	// original row-major payloads regardless of what clients request.
	MaxVersion int
	// ListenFunc overrides how Listen binds the socket — the fault-injection
	// hook (wrap the listener with faultnet) and test seam. nil means
	// net.Listen.
	ListenFunc func(network, addr string) (net.Listener, error)

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	active   atomic.Int64
	draining atomic.Bool
	stats    serverStats
}

// NewServer wraps a database.
func NewServer(d *db.Database) *Server { return &Server{db: d} }

// ActiveConns reports the number of connections currently being served.
func (s *Server) ActiveConns() int { return int(s.active.Load()) }

// Stats snapshots the server's operational counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Accepted:          s.stats.accepted.Load(),
		Queries:           s.stats.queries.Load(),
		QueryErrors:       s.stats.queryErrors.Load(),
		Panics:            s.stats.panics.Load(),
		WriteStalls:       s.stats.writeStalls.Load(),
		OversizedFrames:   s.stats.oversizedFrames.Load(),
		ChecksumFailures:  s.stats.checksumFailures.Load(),
		Drained:           s.stats.drained.Load(),
		BackpressureWaits: s.stats.backpressureWaits.Load(),
	}
}

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	listen := s.ListenFunc
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()
	var sem chan struct{}
	if s.MaxConns > 0 {
		sem = make(chan struct{}, s.MaxConns)
	}
	s.wg.Add(1)
	go s.acceptLoop(ln, sem)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener, sem chan struct{}) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				// Saturated: record the overload signal, then block
				// accepting beyond MaxConns as before.
				s.stats.backpressureWaits.Add(1)
				sem <- struct{}{}
			}
		}
		if s.draining.Load() {
			// Shutdown raced the accept: refuse the connection rather than
			// start work the drain would have to wait for.
			conn.Close()
			if sem != nil {
				<-sem
			}
			continue
		}
		s.stats.accepted.Add(1)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		s.active.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.active.Add(-1)
				if sem != nil {
					<-sem
				}
				s.wg.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// maxVersion returns the highest payload version this server will speak.
func (s *Server) maxVersion() int {
	if s.MaxVersion == 0 {
		return FormatV2
	}
	return s.MaxVersion
}

// execBuffered runs one statement on the connection's session with panics
// confined to the connection: an executor panic becomes a statement error
// (terminal for the client — a deterministic panic would just repeat)
// instead of a dead server.
func (s *Server) execBuffered(sess *db.Session, sql string) (res *db.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			err = fmt.Errorf("internal error: %v", p)
		}
	}()
	return sess.Exec(sql)
}

// isTimeout reports whether err is a deadline miss.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		// Belt and braces: a panic anywhere in the connection loop (outside
		// the per-statement recover) kills this connection only.
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
		}
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// Each connection gets its own session: statements on this connection see
	// their own completed writes immediately (the session re-pins after every
	// mutation) and execute against one consistent MVCC snapshot each, never
	// blocking on — or observing half of — another connection's writes.
	sess := s.db.NewSession()
	// Connection state: hello-less clients get the original protocol (v1
	// payloads, buffered frameOK responses, no trailers) byte for byte.
	version := FormatV1
	streaming := false
	integrity := false
	// reply writes one response frame under the write deadline and flushes.
	reply := func(typ byte, payload []byte) error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		err := writeFrameCRC(w, typ, payload, integrity)
		if err == nil {
			err = w.Flush()
		}
		if isTimeout(err) {
			s.stats.writeStalls.Add(1)
		}
		return err
	}
	// send writes one frame without flushing (chunk pipelining: the flush
	// happens per chunk in the stream writer, after the frame is complete).
	send := func(typ byte, payload []byte) error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		err := writeFrameCRC(w, typ, payload, integrity)
		if isTimeout(err) {
			s.stats.writeStalls.Add(1)
		}
		return err
	}
	for {
		if s.draining.Load() {
			s.stats.drained.Add(1)
			return // in-flight response finished; refuse further queries
		}
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		typ, payload, err := readFrameCRC(r, integrity)
		if err != nil {
			if errors.Is(err, errFrameTooLarge) {
				// Answer before dropping: the stream cannot be resynced past
				// an unread oversized payload, but the client deserves to
				// know why the connection is going away.
				s.stats.oversizedFrames.Add(1)
				reply(frameErr, []byte(err.Error()))
			}
			if errors.Is(err, errChecksum) {
				// The frame arrived whole but its bytes cannot be trusted —
				// possibly a corrupted query that would execute as a
				// different statement. Report and shed the connection; the
				// link is unreliable.
				s.stats.checksumFailures.Add(1)
				reply(frameErr, []byte(err.Error()))
			}
			if s.draining.Load() {
				s.stats.drained.Add(1)
			}
			return // client gone, idle timeout, or poisoned stream
		}
		switch typ {
		case frameHello:
			v, flags, err := decodeHello(payload)
			if err != nil {
				reply(frameErr, []byte(err.Error()))
				return
			}
			if v < FormatV1 {
				reply(frameErr, []byte(fmt.Sprintf("wire: unsupported version %d", v)))
				return
			}
			version = min(v, s.maxVersion())
			streaming = flags&helloStreaming != 0
			wantIntegrity := flags&helloIntegrity != 0
			var grant uint64
			if streaming {
				grant |= helloStreaming
			}
			if wantIntegrity {
				grant |= helloIntegrity
			}
			// The grant reply itself travels trailer-free; the trailer
			// discipline starts with the next frame in either direction.
			if err := reply(frameHello, encodeHello(version, grant)); err != nil {
				return
			}
			integrity = wantIntegrity
			continue
		case frameQuery:
		default:
			reply(frameErr, []byte(fmt.Sprintf("unexpected frame type %d", typ)))
			return
		}
		s.stats.queries.Add(1)
		if streaming {
			if !s.serveStreamed(sess, string(payload), version, reply, send, w) {
				return
			}
			continue
		}
		res, err := s.execBuffered(sess, string(payload))
		if err != nil {
			s.stats.queryErrors.Add(1)
			if werr := reply(frameErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		opts := EncodeOptions{Version: version, Parallelism: sess.CoreOptions.Parallelism}
		if werr := reply(frameOK, EncodeResultOptions(res, opts)); werr != nil {
			return
		}
	}
}

// serveStreamed answers one query as a chunk stream, overlapping execution,
// encoding, and transmission: the header chunk goes out before the first
// relation is projected; each relation is encoded on its own goroutine
// (columns in parallel inside it) while the executor projects the next one;
// and a writer goroutine flushes chunks in order as their encodes finish.
// Returns false when the connection is no longer usable.
func (s *Server) serveStreamed(sess *db.Session, sql string, version int, reply, send func(byte, []byte) error, w *bufio.Writer) bool {
	par := sess.CoreOptions.Parallelism

	// Ordered delivery pipeline: emit enqueues a promise per chunk; the
	// writer resolves them in order. Capacity bounds how far encoding may
	// run ahead of the network. A nil resolved payload marks a panicked
	// encode — the writer aborts the stream rather than send a gap.
	queue := make(chan chan []byte, 4)
	writeErr := make(chan error, 1)
	failed := make(chan struct{})
	var failOnce sync.Once
	go func() {
		var err error
		for p := range queue {
			data := <-p
			if err != nil {
				continue // drain remaining promises after a write error
			}
			if data == nil {
				err = errors.New("wire: chunk encode panicked")
			} else if werr := send(frameChunk, data); werr != nil {
				err = werr
			} else if werr := w.Flush(); werr != nil {
				err = werr
			}
			if err != nil {
				failOnce.Do(func() { close(failed) })
			}
		}
		writeErr <- err
	}()
	enqueue := func(encode func() []byte) error {
		p := make(chan []byte, 1)
		go func() {
			defer func() {
				if pn := recover(); pn != nil {
					s.stats.panics.Add(1)
					p <- nil // resolve the promise so the writer never hangs
				}
			}()
			data := encode()
			if data == nil {
				data = []byte{}
			}
			p <- data
		}()
		select {
		case queue <- p:
			return nil
		case <-failed:
			return errors.New("wire: connection write failed")
		}
	}

	res, execErr := func() (res *db.Result, err error) {
		defer func() {
			if p := recover(); p != nil {
				s.stats.panics.Add(1)
				err = fmt.Errorf("internal error: %v", p)
			}
		}()
		return sess.ExecStream(sql,
			func(meta db.StreamMeta) error {
				return enqueue(func() []byte {
					e := NewEncoderSized(16)
					e.encodeHeader(version, meta.NumSets, meta.Plan != nil)
					return e.Bytes()
				})
			},
			func(set *db.ResultSet) error {
				return enqueue(func() []byte {
					e := NewEncoderSized(setCapacityHint(set))
					e.encodeSetVersion(set, version, par)
					return e.Bytes()
				})
			})
	}()
	if execErr == nil && res.PostJoinPlan != nil {
		execErr = enqueue(func() []byte {
			e := NewEncoder()
			e.encodePlan(res.PostJoinPlan)
			return e.Bytes()
		})
	}
	close(queue)
	werr := <-writeErr
	if werr != nil {
		return false
	}
	if execErr != nil {
		s.stats.queryErrors.Add(1)
		// Either the statement failed (possibly mid-stream — the client
		// discards the partial response) or enqueue aborted on a write
		// error already handled above.
		return reply(frameErr, []byte(execErr.Error())) == nil
	}
	return reply(frameEnd, nil) == nil
}

// Shutdown drains the server gracefully: new accepts are refused, idle
// connections are kicked immediately, busy connections finish their
// in-flight query and response, and Shutdown returns once every connection
// has exited. A positive timeout bounds the wait — connections still alive
// when it expires are force-closed. Safe to call more than once.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	// Kick every connection out of its blocking frame read: the deadline is
	// absolute and already past, so even a read armed after this loop fails
	// fast, and a connection mid-query merely finishes its response first
	// (write deadlines are untouched) and exits at the loop-top drain check.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-done:
	case <-expired:
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// Close stops the listener and drains with no time bound (connections are
// still kicked out of idle reads, so this returns as soon as in-flight
// queries finish).
func (s *Server) Close() error {
	return s.Shutdown(0)
}

package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"resultdb/internal/db"
)

// Frame types of the protocol. Every frame is a 1-byte type, a 4-byte
// big-endian length, and the payload.
const (
	frameQuery byte = 1 // client -> server: SQL text
	frameOK    byte = 2 // server -> client: encoded Result
	frameErr   byte = 3 // server -> client: error text
)

const maxFrame = 1 << 30

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server exposes a Database over TCP.
type Server struct {
	db *db.Database

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer wraps a database.
func NewServer(d *db.Database) *Server { return &Server{db: d} }

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		typ, payload, err := readFrame(r)
		if err != nil {
			return // client gone
		}
		if typ != frameQuery {
			writeFrame(w, frameErr, []byte(fmt.Sprintf("unexpected frame type %d", typ)))
			w.Flush()
			return
		}
		res, err := s.db.Exec(string(payload))
		if err != nil {
			if werr := writeFrame(w, frameErr, []byte(err.Error())); werr != nil {
				return
			}
		} else {
			if werr := writeFrame(w, frameOK, EncodeResult(res)); werr != nil {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client speaks the protocol to a Server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// BytesRead accumulates payload bytes received, for transfer accounting.
	BytesRead int
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Exec sends one statement and decodes the response.
func (c *Client) Exec(sql string) (*db.Result, error) {
	if err := writeFrame(c.w, frameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	c.BytesRead += len(payload)
	switch typ {
	case frameOK:
		return DecodeResult(payload)
	case frameErr:
		return nil, errors.New(string(payload))
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %d", typ)
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

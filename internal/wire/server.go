package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"resultdb/internal/db"
)

// Frame types of the protocol. Every frame is a 1-byte type, a 4-byte
// big-endian length, and the payload.
const (
	frameQuery byte = 1 // client -> server: SQL text
	frameOK    byte = 2 // server -> client: encoded Result
	frameErr   byte = 3 // server -> client: error text
)

const maxFrame = 1 << 30

// errFrameTooLarge marks an oversized inbound frame. The header has been
// consumed but the payload has not, so the stream cannot be resynchronized:
// the server answers frameErr and drops the connection instead of silently
// dying.
var errFrameTooLarge = errors.New("wire: frame exceeds size limit")

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w (%d bytes > %d)", errFrameTooLarge, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server exposes a Database over TCP. Configure the hardening knobs before
// Listen; they are not safe to change while serving.
type Server struct {
	db *db.Database

	// ReadTimeout bounds how long a connection may sit idle (or dribble one
	// frame) before the server drops it; zero means no deadline. The
	// deadline is re-armed before every frame read, so a busy connection
	// lives forever and an abandoned one is reaped.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame; zero means none.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections (0 = unlimited). The
	// accept loop blocks once the cap is reached, leaving excess dials in
	// the kernel backlog until a slot frees — clients see latency, not
	// errors, under overload.
	MaxConns int

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup

	active atomic.Int64
}

// NewServer wraps a database.
func NewServer(d *db.Database) *Server { return &Server{db: d} }

// ActiveConns reports the number of connections currently being served.
func (s *Server) ActiveConns() int { return int(s.active.Load()) }

// Listen binds addr ("host:port"; ":0" picks a free port) and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	var sem chan struct{}
	if s.MaxConns > 0 {
		sem = make(chan struct{}, s.MaxConns)
	}
	s.wg.Add(1)
	go s.acceptLoop(ln, sem)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener, sem chan struct{}) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		if sem != nil {
			sem <- struct{}{} // blocks accepting beyond MaxConns
		}
		s.wg.Add(1)
		s.active.Add(1)
		go func() {
			defer func() {
				s.active.Add(-1)
				if sem != nil {
					<-sem
				}
				s.wg.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// reply writes one response frame under the write deadline and flushes.
	reply := func(typ byte, payload []byte) error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := writeFrame(w, typ, payload); err != nil {
			return err
		}
		return w.Flush()
	}
	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		typ, payload, err := readFrame(r)
		if err != nil {
			if errors.Is(err, errFrameTooLarge) {
				// Answer before dropping: the stream cannot be resynced past
				// an unread oversized payload, but the client deserves to
				// know why the connection is going away.
				reply(frameErr, []byte(err.Error()))
			}
			return // client gone, idle timeout, or poisoned stream
		}
		if typ != frameQuery {
			reply(frameErr, []byte(fmt.Sprintf("unexpected frame type %d", typ)))
			return
		}
		res, err := s.db.Exec(string(payload))
		if err != nil {
			if werr := reply(frameErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if werr := reply(frameOK, EncodeResult(res)); werr != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client speaks the protocol to a Server.
//
// Concurrency contract: Exec is safe for concurrent use — a mutex serializes
// whole request/response exchanges on the single underlying connection, so
// concurrent Execs queue and run one at a time (open one Client per desired
// in-flight request for pipelining). BytesRead may be read concurrently with
// in-flight Execs. Close may be called at any time; Execs blocked on the
// connection fail with the close error.
type Client struct {
	conn net.Conn

	mu sync.Mutex // serializes one full Exec exchange
	r  *bufio.Reader
	w  *bufio.Writer

	bytesRead atomic.Int64
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// BytesRead returns the accumulated payload bytes received, for transfer
// accounting. Safe to call concurrently with Exec.
func (c *Client) BytesRead() int { return int(c.bytesRead.Load()) }

// Exec sends one statement and decodes the response. Safe for concurrent
// use; see the Client concurrency contract.
func (c *Client) Exec(sql string) (*db.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, frameQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	c.bytesRead.Add(int64(len(payload)))
	switch typ {
	case frameOK:
		return DecodeResult(payload)
	case frameErr:
		return nil, errors.New(string(payload))
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %d", typ)
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

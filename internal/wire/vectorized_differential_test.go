package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

// This file is the correctness gate of the vectorized (colstore) execution
// path: for every workload query, the wire-encoded response of a vectorized
// database — across parallelism degrees and with the semantic result cache on
// and off — must be byte-identical to a row-path oracle that received exactly
// the same statements. The wire encoding covers set names, column lists, row
// data (values AND their order), and the shipped post-join plan, so any
// divergence — a kernel mis-evaluating three-valued logic, a dictionary code
// collision, a selection vector out of order, a dedup keeping the wrong
// duplicate — shows up as a byte diff.

// vecConfig is one vectorized candidate configuration.
type vecConfig struct {
	name  string
	par   int
	cache bool
}

var vecConfigs = []vecConfig{
	{"vec-par1", 1, false},
	{"vec-par4", 4, false},
	{"vec-par1-cache", 1, true},
	{"vec-par4-cache", 4, true},
}

// vecFleet loads the same workload into a row-path oracle and one vectorized
// candidate per configuration.
func vecFleet(t *testing.T, load func(d *db.Database) error) (*db.Database, []*db.Database) {
	t.Helper()
	oracle := db.New()
	oracle.SetVectorized(false)
	oracle.SetParallelism(1)
	if err := load(oracle); err != nil {
		t.Fatal(err)
	}
	cands := make([]*db.Database, len(vecConfigs))
	for i, cfg := range vecConfigs {
		d := db.New()
		d.SetVectorized(true)
		d.SetParallelism(cfg.par)
		if cfg.cache {
			d.EnableCache(256 << 20)
		}
		if err := load(d); err != nil {
			t.Fatal(err)
		}
		cands[i] = d
	}
	return oracle, cands
}

// checkVec runs sql everywhere and requires byte-identical wire encodings.
// Cached candidates run twice so both the cold fill and the warm hit are
// compared against the oracle.
func checkVec(t *testing.T, oracle *db.Database, cands []*db.Database, name, sql string) {
	t.Helper()
	want := execBytes(t, oracle, sql)
	for i, d := range cands {
		got := execBytes(t, d, sql)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s [%s]: vectorized execution differs from row-path oracle\nsql: %s",
				name, vecConfigs[i].name, sql)
		}
		if vecConfigs[i].cache {
			warm := execBytes(t, d, sql)
			if !bytes.Equal(warm, want) {
				t.Fatalf("%s [%s]: warm (cache-hit) execution differs from row-path oracle",
					name, vecConfigs[i].name)
			}
		}
	}
}

func TestVectorizedDifferentialJOB(t *testing.T) {
	oracle, cands := vecFleet(t, func(d *db.Database) error {
		return job.Load(d, job.Config{Scale: 0.05, Seed: 42})
	})
	for _, q := range job.Queries() {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		checkVec(t, oracle, cands, q.Name+"/rdb", sql)
	}
	for _, name := range job.Table1Queries {
		q, err := job.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := strings.TrimSpace(q.SQL)
		rp := "SELECT RESULTDB PRESERVING" + strings.TrimPrefix(trimmed, "SELECT")
		checkVec(t, oracle, cands, name+"/rdbrp", rp)
		checkVec(t, oracle, cands, name+"/st", trimmed)
	}
}

func TestVectorizedDifferentialStar(t *testing.T) {
	cfg := star.Config{Dims: 3, DimRows: 12, PayloadLen: 16, Seed: 7}
	oracle, cands := vecFleet(t, func(d *db.Database) error {
		return star.Load(d, cfg)
	})
	for _, sel := range []float64{0.2, 0.6, 1.0} {
		st := star.Query(cfg, sel)
		rdb := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(star.PayloadQuery(cfg, sel)), "SELECT")
		checkVec(t, oracle, cands, fmt.Sprintf("star-%.1f/st", sel), st)
		checkVec(t, oracle, cands, fmt.Sprintf("star-%.1f/rdb", sel), rdb)
	}
}

func TestVectorizedDifferentialHierarchy(t *testing.T) {
	oracle, cands := vecFleet(t, func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	})
	checkVec(t, oracle, cands, "hier/outer", strings.TrimSpace(hierarchy.OuterJoinQuery))
	checkVec(t, oracle, cands, "hier/rdb-electronics", strings.TrimSpace(hierarchy.ResultDBElectronics))
	checkVec(t, oracle, cands, "hier/rdb-clothing", strings.TrimSpace(hierarchy.ResultDBClothing))
}

// --- Property test: random schemas, rows, and predicates ---------------------

// propVariant shapes the random data so the corners of the columnar layout
// get hit: NULL-heavy columns (bitmap paths, three-valued logic) and
// degenerate TEXT dictionaries (one entry; all-distinct entries).
type propVariant struct {
	name     string
	nullProb float64
	// textMode: 0 = small shared dictionary, 1 = single value, 2 = all distinct
	textMode int
}

// propLoad creates two joinable tables with every column kind and fills them
// with seeded random rows (identical SQL on every database).
func propLoad(rng *rand.Rand, v propVariant) []string {
	stmts := []string{
		"CREATE TABLE r (k INT, a INT, b FLOAT, c TEXT, d BOOL)",
		"CREATE TABLE s (k INT, e INT, f TEXT)",
	}
	lit := func(gen func() string) string {
		if rng.Float64() < v.nullProb {
			return "NULL"
		}
		return gen()
	}
	text := func(i int) string {
		switch v.textMode {
		case 1:
			return "'const'"
		case 2:
			return fmt.Sprintf("'u%d'", i)
		default:
			return fmt.Sprintf("'v%d'", rng.Intn(8))
		}
	}
	var rRows, sRows []string
	for i := 0; i < 160; i++ {
		i := i
		rRows = append(rRows, fmt.Sprintf("(%s, %s, %s, %s, %s)",
			lit(func() string { return fmt.Sprintf("%d", rng.Intn(20)) }),
			lit(func() string { return fmt.Sprintf("%d", rng.Intn(100)) }),
			lit(func() string { return fmt.Sprintf("%d.%d", rng.Intn(50), rng.Intn(10)) }),
			lit(func() string { return text(i) }),
			lit(func() string {
				if rng.Intn(2) == 0 {
					return "TRUE"
				}
				return "FALSE"
			})))
	}
	for i := 0; i < 120; i++ {
		i := i
		sRows = append(sRows, fmt.Sprintf("(%s, %s, %s)",
			lit(func() string { return fmt.Sprintf("%d", rng.Intn(20)) }),
			lit(func() string { return fmt.Sprintf("%d", rng.Intn(100)) }),
			lit(func() string { return text(i + 1000) })))
	}
	stmts = append(stmts,
		"INSERT INTO r VALUES "+strings.Join(rRows, ", "),
		"INSERT INTO s VALUES "+strings.Join(sRows, ", "))
	return stmts
}

// rPreds and sPreds cover every kernel shape (typed comparisons both operand
// orders, BETWEEN, IN with a NULL item, LIKE, IS [NOT] NULL, bool equality,
// cross-kind comparisons that degenerate to constants) plus shapes that must
// fall back to the row-wise residual (column-vs-column, arithmetic).
var rPreds = []string{
	"r.a < 50",
	"60 > r.a",
	"r.a BETWEEN 10 AND 60",
	"r.a NOT BETWEEN 20 AND 80",
	"r.a IN (1, 2, 3, 17, 44)",
	"r.a IN (5, NULL, 61)",
	"r.a NOT IN (7, 8)",
	"r.c LIKE 'v%'",
	"r.c NOT LIKE '%3'",
	"r.c = 'v3'",
	"r.c IN ('v1', 'v2', 'const')",
	"r.c IS NULL",
	"r.b IS NOT NULL",
	"r.d = TRUE",
	"r.d <> FALSE",
	"r.a = 'not_a_number'",
	"r.a >= 25.5",
	"r.a <> 30",
	"r.a = r.k",
	"r.a + 0 < 50",
}

var sPreds = []string{
	"s.e < 70",
	"s.e BETWEEN 5 AND 95",
	"s.f LIKE 'v%'",
	"s.f IS NOT NULL",
	"s.e IN (10, 20, 30, 40)",
	"s.e * 1 >= 10",
}

// TestVectorizedDifferentialProperty sweeps seeded random predicate
// combinations over NULL-heavy and dictionary-degenerate data, comparing the
// vectorized candidates against the row-path oracle byte-for-byte in all
// three query modes.
func TestVectorizedDifferentialProperty(t *testing.T) {
	variants := []propVariant{
		{"nullheavy", 0.35, 0},
		{"dict1", 0.15, 1},
		{"dictN", 0.15, 2},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			dataRng := rand.New(rand.NewSource(31 + int64(v.textMode)))
			stmts := propLoad(dataRng, v)
			oracle, cands := vecFleet(t, func(d *db.Database) error {
				for _, s := range stmts {
					if _, err := d.Exec(s); err != nil {
						return fmt.Errorf("%q: %w", s[:min(len(s), 40)], err)
					}
				}
				return nil
			})
			qRng := rand.New(rand.NewSource(97 + int64(v.textMode)))
			for iter := 0; iter < 40; iter++ {
				conds := []string{"r.k = s.k"}
				for n := qRng.Intn(3) + 1; n > 0; n-- {
					conds = append(conds, rPreds[qRng.Intn(len(rPreds))])
				}
				for n := qRng.Intn(2); n > 0; n-- {
					conds = append(conds, sPreds[qRng.Intn(len(sPreds))])
				}
				where := strings.Join(conds, " AND ")
				st := fmt.Sprintf("SELECT DISTINCT r.a, r.c, s.f FROM r, s WHERE %s", where)
				rdb := fmt.Sprintf("SELECT RESULTDB r.a, r.c, s.f FROM r, s WHERE %s", where)
				rp := fmt.Sprintf("SELECT RESULTDB PRESERVING r.a, s.f FROM r, s WHERE %s", where)
				checkVec(t, oracle, cands, fmt.Sprintf("%s-%d/st", v.name, iter), st)
				checkVec(t, oracle, cands, fmt.Sprintf("%s-%d/rdb", v.name, iter), rdb)
				checkVec(t, oracle, cands, fmt.Sprintf("%s-%d/rdbrp", v.name, iter), rp)
			}
		})
	}
}

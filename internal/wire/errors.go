package wire

import (
	"errors"
	"fmt"
)

// ErrorKind classifies a failed client/server exchange, so callers (the
// client package, the shell, the retry loop itself) can tell a failure that
// a fresh connection may fix from one that will repeat forever.
type ErrorKind uint8

const (
	// KindRetryable marks transport-level failures — a dropped or reset
	// connection, a dial failure, a read/write deadline, a server-reported
	// protocol error. Retrying an idempotent statement on a fresh
	// connection is safe and may succeed.
	KindRetryable ErrorKind = iota
	// KindTerminal marks failures the server produced deliberately: the
	// statement itself errored. Retrying resends the same statement to the
	// same answer.
	KindTerminal
	// KindCorrupt marks payloads that arrived but failed validation — a
	// checksum mismatch, an undecodable or version-mismatched payload, a
	// desynchronized frame stream. The bytes cannot be trusted; a retry
	// re-fetches from scratch.
	KindCorrupt
)

// String names the kind ("retryable", "terminal", "corrupt").
func (k ErrorKind) String() string {
	switch k {
	case KindRetryable:
		return "retryable"
	case KindTerminal:
		return "terminal"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ExchangeError is the typed error the wire client returns: the underlying
// failure wrapped with enough query context to diagnose a mid-stream death —
// which statement (by text hash, so logs don't leak query text), how far the
// response had progressed (frames consumed, payload bytes read), and how many
// attempts were made before giving up.
type ExchangeError struct {
	// Kind classifies whether a retry could have helped.
	Kind ErrorKind
	// QueryHash is the FNV-1a hash of the statement text.
	QueryHash uint64
	// Attempts is the number of attempts made, including the failing one.
	Attempts int
	// FrameIndex is the number of response frames consumed in the failing
	// attempt when the error struck.
	FrameIndex int
	// BytesRead is the payload byte count received in the failing attempt.
	BytesRead int64
	// Err is the underlying failure.
	Err error
}

func (e *ExchangeError) Error() string {
	return fmt.Sprintf("wire: %s exchange error (query %016x, attempt %d, frame %d, %d payload bytes read): %v",
		e.Kind, e.QueryHash, e.Attempts, e.FrameIndex, e.BytesRead, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *ExchangeError) Unwrap() error { return e.Err }

// Classify extracts the error kind from any error produced by the client.
// Errors from other sources report false.
func Classify(err error) (ErrorKind, bool) {
	var xe *ExchangeError
	if errors.As(err, &xe) {
		return xe.Kind, true
	}
	return 0, false
}

// IsRetryable reports whether err is a classified transient transport
// failure (an exhausted retry loop still reports its last failure's kind).
func IsRetryable(err error) bool {
	k, ok := Classify(err)
	return ok && k == KindRetryable
}

// IsTerminal reports whether err is a classified server-side statement
// failure.
func IsTerminal(err error) bool {
	k, ok := Classify(err)
	return ok && k == KindTerminal
}

// IsCorrupt reports whether err is a classified corrupt-payload failure.
func IsCorrupt(err error) bool {
	k, ok := Classify(err)
	return ok && k == KindCorrupt
}

// queryHash is the allocation-free FNV-1a the ExchangeError context uses.
func queryHash(sql string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(sql); i++ {
		h ^= uint64(sql[i])
		h *= prime64
	}
	return h
}

package wire

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"resultdb/internal/db"
)

func streamTestDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	if _, err := d.ExecScript(`
CREATE TABLE cust (id INT PRIMARY KEY, name TEXT, tier TEXT);
CREATE TABLE ord (id INT PRIMARY KEY, cust_id INT, total FLOAT);
INSERT INTO cust VALUES (1, 'Ann', 'gold'), (2, 'Bob', 'gold'), (3, 'Cay', 'base');
INSERT INTO ord VALUES (10, 1, 9.5), (11, 1, 20.25), (12, 2, 3.0);`); err != nil {
		t.Fatal(err)
	}
	return d
}

const streamTestQuery = "SELECT RESULTDB c.name, o.total FROM cust AS c, ord AS o WHERE c.id = o.cust_id"

func TestHelloNegotiationDefaults(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.Version(); v != FormatV2 {
		t.Errorf("default Dial negotiated version %d, want %d", v, FormatV2)
	}
	if !c.Streaming() {
		t.Error("default Dial did not negotiate streaming")
	}
	res, err := c.Exec(streamTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 2 {
		t.Fatalf("want 2 result sets, got %d", len(res.Sets))
	}
	// PRESERVING results ship a post-join plan; it must survive the
	// streamed v2 path (the plan travels as its own chunk).
	rp, err := c.Exec("SELECT RESULTDB PRESERVING c.name, o.total FROM cust AS c, ord AS o WHERE c.id = o.cust_id")
	if err != nil {
		t.Fatal(err)
	}
	if rp.PostJoinPlan == nil {
		t.Error("post-join plan lost over the streamed v2 path")
	}
}

func TestHelloNegotiationPinnedV1(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialOptions(addr, Options{Version: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.Version(); v != FormatV1 {
		t.Errorf("pinned v1 negotiation yielded %d", v)
	}
	if c.Streaming() {
		t.Error("streaming granted without being requested")
	}
	if _, err := c.Exec(streamTestQuery); err != nil {
		t.Fatal(err)
	}
}

func TestServerMaxVersionClampsNegotiation(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	srv.MaxVersion = FormatV1
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr) // requests v2+streaming
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.Version(); v != FormatV1 {
		t.Errorf("MaxVersion=v1 server negotiated %d", v)
	}
	if !c.Streaming() {
		t.Error("streaming should be independent of the payload version clamp")
	}
	if _, err := c.Exec(streamTestQuery); err != nil {
		t.Fatal(err)
	}
}

// TestStreamedMatchesBuffered locks the core transfer invariant: the same
// query over a legacy connection, a buffered v2 connection, and a streamed
// v2 connection produces value-identical results.
func TestStreamedMatchesBuffered(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var canon [][]byte
	for _, opts := range []Options{
		{Legacy: true},
		{Version: FormatV2},
		{Version: FormatV2, Streaming: true},
		{Version: FormatV1, Streaming: true},
	} {
		c, err := DialOptions(addr, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Exec(streamTestQuery)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if c.BytesRead() == 0 {
			t.Errorf("opts %+v: BytesRead not accounted", opts)
		}
		canon = append(canon, EncodeResult(res))
		c.Close()
	}
	for i := 1; i < len(canon); i++ {
		if !bytes.Equal(canon[0], canon[i]) {
			t.Errorf("connection flavor %d decoded a different result than legacy", i)
		}
	}
}

// TestStreamedConnectionSurvivesErrors: a failed statement over a streamed
// connection reports its error and leaves the connection usable.
func TestStreamedConnectionSurvivesErrors(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT nope FROM nowhere AS n"); err == nil {
		t.Fatal("bad query did not error")
	}
	if _, err := c.Exec(streamTestQuery); err != nil {
		t.Fatalf("connection unusable after a query error: %v", err)
	}
}

// TestDMLOverStreamedConnection: non-SELECT statements run over a streamed
// connection (the server replays their result through the chunk protocol).
func TestDMLOverStreamedConnection(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// (Affected counts are not part of the wire format, in v1 or v2 — only
	// the statement's success and its result sets travel.)
	if _, err := c.Exec("INSERT INTO cust VALUES (4, 'Dee', 'base')"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Exec("SELECT c.name FROM cust AS c WHERE c.id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if got.First().NumRows() != 1 || got.First().Rows[0][0].Text() != "Dee" {
		t.Fatalf("inserted row not visible over streaming: %+v", got.First())
	}
}

// TestClientAbandonsStreamOnMidStreamError drives the client against a
// hand-rolled server that sends a chunk and then aborts with frameErr — the
// partial buffer must be discarded and the error surfaced.
func TestClientAbandonsStreamOnMidStreamError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Hello exchange.
		typ, payload, err := readFrame(conn)
		if err != nil || typ != frameHello {
			return
		}
		v, _, err := decodeHello(payload)
		if err != nil {
			return
		}
		writeFrame(conn, frameHello, encodeHello(v, helloStreaming))
		// Query: answer with one chunk, then die mid-stream.
		if typ, _, err = readFrame(conn); err != nil || typ != frameQuery {
			return
		}
		e := NewEncoder()
		e.encodeHeader(FormatV2, 1, false)
		writeFrame(conn, frameChunk, e.Bytes())
		writeFrame(conn, frameErr, []byte("executor died mid-stream"))
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT whatever")
	if err == nil || !strings.Contains(err.Error(), "mid-stream") {
		t.Fatalf("want the server's mid-stream error, got %v", err)
	}
}

// TestClientRejectsDowngradedPayload: a server that negotiates v2 but ships
// a v1 payload is caught by DecodeResultExpect.
func TestClientRejectsDowngradedPayload(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		typ, payload, err := readFrame(conn)
		if err != nil || typ != frameHello {
			return
		}
		v, _, err := decodeHello(payload)
		if err != nil {
			return
		}
		writeFrame(conn, frameHello, encodeHello(v, 0))
		if typ, _, err = readFrame(conn); err != nil || typ != frameQuery {
			return
		}
		// Negotiated v2, but ship v1 bytes.
		writeFrame(conn, frameOK, EncodeResult(&db.Result{}))
	}()

	c, err := DialOptions(ln.Addr().String(), Options{Version: FormatV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT whatever")
	if err == nil || !strings.Contains(err.Error(), "negotiated") {
		t.Fatalf("want a version-mismatch error, got %v", err)
	}
}

// TestServerRejectsMalformedHello: a broken hello draws frameErr and a
// dropped connection.
func TestServerRejectsMalformedHello(t *testing.T) {
	srv := NewServer(streamTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHello, []byte{0x80}); err != nil { // truncated uvarint
		t.Fatal(err)
	}
	typ, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameErr {
		t.Fatalf("malformed hello drew frame type %d, want frameErr", typ)
	}
}

package wire

import (
	"time"

	"resultdb/internal/db"
)

// TransferModel converts result-set sizes into transfer times at a fixed
// data transfer rate (DTR), the Section 6.4 methodology: "we assume a DTR of
// 100 Mbps, a speed commonly regarded as reliable for general use".
type TransferModel struct {
	// Mbps is the data transfer rate in megabits per second.
	Mbps float64
}

// DefaultTransfer is the paper's 100 Mbps setting.
var DefaultTransfer = TransferModel{Mbps: 100}

// Duration returns the time to move n bytes at the modeled rate.
func (m TransferModel) Duration(n int) time.Duration {
	if m.Mbps <= 0 {
		return 0
	}
	seconds := float64(n) * 8 / (m.Mbps * 1e6)
	return time.Duration(seconds * float64(time.Second))
}

// ResultDuration returns the transfer time of a whole result under the
// Section 6.1 size accounting (datatype widths for numerics, string lengths
// for text), which is what the paper's Table 3 transfer column uses.
func (m TransferModel) ResultDuration(r *db.Result) time.Duration {
	return m.Duration(r.WireSize())
}

// EncodedDuration returns the transfer time of the actual encoded payload,
// for experiments that ship real bytes. It uses the original v1 encoding;
// use EncodedDurationVersion to model the negotiated wire version.
func (m TransferModel) EncodedDuration(r *db.Result) time.Duration {
	return m.Duration(len(EncodeResult(r)))
}

// EncodedDurationVersion returns the transfer time of the payload encoded at
// the given wire format version (FormatV1 or FormatV2), so benchmark reports
// can model what a client on either protocol would actually wait for.
func (m TransferModel) EncodedDurationVersion(r *db.Result, version int) time.Duration {
	return m.Duration(len(EncodeResultOptions(r, EncodeOptions{Version: version})))
}

package wire

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"

	"resultdb/internal/colstore"
	"resultdb/internal/db"
	"resultdb/internal/parallel"
	"resultdb/internal/types"
)

// The v2 payload is column-at-a-time. A set still opens with name, column
// count, column names, and row count (byte-identical to v1 up to here), but
// the rows follow as one block per column instead of tagged values row by
// row. Each column block is
//
//	desc byte
//	[ uvarint compressed-length + deflate stream   — when the flate bit is set ]
//	[ null bitmap, ceil(n/8) bytes, LSB-first, set bit = NULL — when hasNulls ]
//	payload
//
// (bitmap and payload are what the deflate stream inflates to). The desc
// byte packs, LSB up: a 2-bit payload variant, the hasNulls bit, a 3-bit
// column kind, the flate bit, and a reserved zero bit. Payloads by kind:
//
//	allNull — nothing: every row is NULL. Only legal for n <= v2AllNullMax,
//	          so a near-empty column block cannot claim an absurd row count
//	          (larger all-NULL columns ship as `any`, which deflate crushes).
//	int     — variant 0: one zigzag varint per non-NULL value.
//	          variant 1: varint of the first value, then varints of the
//	          wrapping int64 deltas (exact for any values, tiny for runs of
//	          ascending keys).
//	float   — 8 bytes little-endian per non-NULL value.
//	text    — variant 0: one length-prefixed string per non-NULL value.
//	          variant 1: uvarint dictionary size, the dictionary strings in
//	          first-occurrence order, then one uvarint code per non-NULL
//	          value. When the result set carries a colstore view, codes are
//	          remapped from the scan-time dictionary without hashing a
//	          single string.
//	bool    — non-NULL values bit-packed LSB-first, ceil(nn/8) bytes.
//	any     — all n values (NULLs included) as v1 tagged values; the
//	          mixed-kind escape hatch, never has a bitmap.
//
// Every choice is pick-the-smaller with a deterministic tie-break, so the
// encoding is a pure function of the result: parallel and serial encodes,
// vec-backed and row-backed gathers, streamed and buffered transfers all
// produce identical bytes. For typed columns the desc byte replaces n tag
// bytes and the bitmap costs ceil(n/8) <= n-1 of them, so a v2 set never
// exceeds its v1 size (mixed-kind columns, which none of the workloads
// produce, cost at most one extra byte each).

// desc byte layout.
const (
	colVariantMask = 0x03   // bits 0-1: payload variant
	colNullsBit    = 1 << 2 // bit 2: null bitmap present
	colKindShift   = 3      // bits 3-5: column kind
	colFlateBit    = 1 << 6 // bit 6: bitmap+payload deflate-compressed
	colReservedBit = 1 << 7 // bit 7: must be zero
)

// column kinds.
const (
	colAllNull = 0
	colInt     = 1
	colFloat   = 2
	colText    = 3
	colBool    = 4
	colAny     = 5
)

// payload variants.
const (
	intPlain   = 0
	intDelta   = 1
	textInline = 0
	textDict   = 1
)

// Decoder-plausibility constants. A v2 column legitimately materializes at
// most 8256 values per encoded body byte (8 from bool bit-packing times
// 1032, deflate's maximum compression ratio), plus the v2AllNullMax rows an
// empty-body all-NULL column may carry. The decoder rejects any column
// claiming more before allocating, and bounds the total cells of a payload
// by the same arithmetic, so a hostile header cannot drive allocation
// beyond a small multiple of the payload size — while every output of the
// encoder (which enforces v2AllNullMax on its side) decodes.
const (
	v2AllNullMax = 1024
	v2MaxRatio   = 8256
	v2CellSlack  = 65536
)

// cellBudget caps the total decoded cells (rows x columns) of one payload.
type cellBudget struct {
	cells uint64
}

func newCellBudget(payloadLen int) *cellBudget {
	return &cellBudget{cells: uint64(payloadLen)*(v2MaxRatio+v2AllNullMax) + v2CellSlack}
}

func (b *cellBudget) charge(rows, cols uint64) error {
	if cols == 0 {
		return nil
	}
	if rows > b.cells/cols {
		return fmt.Errorf("wire: %d-row set exceeds the payload's materialization budget", rows)
	}
	b.cells -= rows * cols
	return nil
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded (zigzag) size of v in bytes.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// --- Encoding ----------------------------------------------------------------

// colData is the gathered form of one result column, ready to size and emit.
type colData struct {
	n     int
	nn    int    // non-NULL count
	nulls []byte // LSB-first bitmap, set bit = NULL; nil when no NULLs
	kind  int

	ints   []int64   // colInt: non-NULL values in row order
	floats []float64 // colFloat
	bools  []bool    // colBool
	codes  []uint32  // colText: wire code per non-NULL value, row order
	dict   []string  // colText: first-occurrence dictionary
}

func (c *colData) setNull(i int) {
	if c.nulls == nil {
		c.nulls = make([]byte, (c.n+7)/8)
	}
	c.nulls[i>>3] |= 1 << (i & 7)
}

// encodeSetV2 writes one result set column-at-a-time, parallelizing the
// per-column encoders at degree par and stitching the blocks in column
// order (identical bytes at any degree).
func (e *Encoder) encodeSetV2(set *db.ResultSet, par int) {
	e.str(set.Name)
	nCols := len(set.Columns)
	e.uvarint(uint64(nCols))
	for _, c := range set.Columns {
		e.str(c)
	}
	e.uvarint(uint64(len(set.Rows)))
	if len(set.Rows) == 0 || nCols == 0 {
		return
	}
	for _, row := range set.Rows {
		if len(row) != nCols {
			panic(fmt.Sprintf("wire: row arity %d != %d columns", len(row), nCols))
		}
	}
	blocks := make([][]byte, nCols)
	parallel.Each(nCols, par, func(j int) {
		blocks[j] = encodeColV2(set, j)
	})
	for _, b := range blocks {
		e.buf = append(e.buf, b...)
	}
}

// encodeColV2 gathers, sizes, and emits one column block (desc + body).
func encodeColV2(set *db.ResultSet, j int) []byte {
	c := gatherCol(set, j)
	e := NewEncoder()
	var variant int
	switch c.kind {
	case colAllNull:
		// Nothing: the desc byte alone says every row is NULL.
	case colInt:
		plain := 0
		for _, v := range c.ints {
			plain += varintLen(v)
		}
		delta := varintLen(c.ints[0])
		for k := 1; k < len(c.ints); k++ {
			delta += varintLen(c.ints[k] - c.ints[k-1]) // wrapping, exact
		}
		if delta < plain {
			variant = intDelta
			e.varint(c.ints[0])
			for k := 1; k < len(c.ints); k++ {
				e.varint(c.ints[k] - c.ints[k-1])
			}
		} else {
			for _, v := range c.ints {
				e.varint(v)
			}
		}
	case colFloat:
		for _, v := range c.floats {
			e.buf = binary64(e.buf, v)
		}
	case colBool:
		packed := make([]byte, (len(c.bools)+7)/8)
		for k, v := range c.bools {
			if v {
				packed[k>>3] |= 1 << (k & 7)
			}
		}
		e.buf = append(e.buf, packed...)
	case colText:
		inline := 0
		for _, code := range c.codes {
			s := c.dict[code]
			inline += uvarintLen(uint64(len(s))) + len(s)
		}
		dictSz := uvarintLen(uint64(len(c.dict)))
		for _, s := range c.dict {
			dictSz += uvarintLen(uint64(len(s))) + len(s)
		}
		for _, code := range c.codes {
			dictSz += uvarintLen(uint64(code))
		}
		if dictSz < inline {
			variant = textDict
			e.uvarint(uint64(len(c.dict)))
			for _, s := range c.dict {
				e.str(s)
			}
			for _, code := range c.codes {
				e.uvarint(uint64(code))
			}
		} else {
			for _, code := range c.codes {
				e.str(c.dict[code])
			}
		}
	case colAny:
		for _, row := range set.Rows {
			e.value(row[j])
		}
	}
	// Assemble bitmap + payload, then let deflate take a strictly-smaller
	// shot at the whole body.
	body := e.buf
	if c.nulls != nil && c.kind != colAny && c.kind != colAllNull {
		body = append(append(make([]byte, 0, len(c.nulls)+len(body)), c.nulls...), body...)
	}
	desc := byte(variant) | byte(c.kind)<<colKindShift
	if c.nulls != nil && c.kind != colAny && c.kind != colAllNull {
		desc |= colNullsBit
	}
	if comp, ok := tryFlate(body); ok {
		out := make([]byte, 0, 1+uvarintLen(uint64(len(comp)))+len(comp))
		out = append(out, desc|colFlateBit)
		oe := &Encoder{buf: out}
		oe.uvarint(uint64(len(comp)))
		oe.buf = append(oe.buf, comp...)
		return oe.buf
	}
	out := make([]byte, 0, 1+len(body))
	out = append(out, desc)
	return append(out, body...)
}

func binary64(buf []byte, v float64) []byte {
	bits64 := math.Float64bits(v)
	return append(buf,
		byte(bits64), byte(bits64>>8), byte(bits64>>16), byte(bits64>>24),
		byte(bits64>>32), byte(bits64>>40), byte(bits64>>48), byte(bits64>>56))
}

// flateWriters pools deflate compressors (their BestCompression state is
// large) across columns and goroutines.
var flateWriters = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestCompression)
		if err != nil {
			panic(err) // only fails for an invalid level
		}
		return w
	},
}

// tryFlate compresses body and reports whether shipping the compressed form
// (including its length prefix) is strictly smaller.
func tryFlate(body []byte) ([]byte, bool) {
	if len(body) < 16 {
		return nil, false // can't beat the length prefix + deflate framing
	}
	var buf bytes.Buffer
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(body); err != nil {
		flateWriters.Put(w)
		return nil, false
	}
	if err := w.Close(); err != nil {
		flateWriters.Put(w)
		return nil, false
	}
	flateWriters.Put(w)
	comp := buf.Bytes()
	if uvarintLen(uint64(len(comp)))+len(comp) >= len(body) {
		return nil, false
	}
	return comp, true
}

// gatherCol extracts column j of the set into typed vectors. When the set
// carries an aligned colstore view the gather is vector copies (and, for
// TEXT, a dictionary remap with zero string hashing); otherwise it scans
// the rows. Both paths produce identical colData, so the wire bytes do not
// depend on which executed.
func gatherCol(set *db.ResultSet, j int) *colData {
	c := &colData{n: len(set.Rows)}
	if set.Vec != nil {
		if ok := gatherColVec(set, j, c); ok {
			return c
		}
		*c = colData{n: len(set.Rows)}
	}
	gatherColRows(set, j, c)
	return c
}

// gatherColRows is the row-scan gather: classify the column's kind, then
// collect non-NULL values (two cheap passes).
func gatherColRows(set *db.ResultSet, j int, c *colData) {
	kind := types.KindNull
	mixed := false
	for _, row := range set.Rows {
		v := row[j]
		if v.IsNull() {
			continue
		}
		if kind == types.KindNull {
			kind = v.Kind()
		} else if v.Kind() != kind {
			mixed = true
			break
		}
		c.nn++
	}
	if mixed {
		c.kind = colAny
		c.nn = 0
		return
	}
	if kind == types.KindNull {
		c.finishAllNull()
		return
	}
	switch kind {
	case types.KindInt:
		c.kind = colInt
		c.ints = make([]int64, 0, c.nn)
		for i, row := range set.Rows {
			if v := row[j]; v.IsNull() {
				c.setNull(i)
			} else {
				c.ints = append(c.ints, v.Int())
			}
		}
	case types.KindFloat:
		c.kind = colFloat
		c.floats = make([]float64, 0, c.nn)
		for i, row := range set.Rows {
			if v := row[j]; v.IsNull() {
				c.setNull(i)
			} else {
				c.floats = append(c.floats, v.Float())
			}
		}
	case types.KindBool:
		c.kind = colBool
		c.bools = make([]bool, 0, c.nn)
		for i, row := range set.Rows {
			if v := row[j]; v.IsNull() {
				c.setNull(i)
			} else {
				c.bools = append(c.bools, v.Bool())
			}
		}
	case types.KindText:
		c.kind = colText
		c.codes = make([]uint32, 0, c.nn)
		idx := make(map[string]uint32, 16)
		for i, row := range set.Rows {
			v := row[j]
			if v.IsNull() {
				c.setNull(i)
				continue
			}
			s := v.Text()
			code, ok := idx[s]
			if !ok {
				code = uint32(len(c.dict))
				idx[s] = code
				c.dict = append(c.dict, s)
			}
			c.codes = append(c.codes, code)
		}
	}
}

// finishAllNull classifies a column with no non-NULL values. Columns too
// large for the implicit form fall back to tagged values so the decoder's
// materialization budget (which charges bytes, not headers) stays sound;
// deflate then collapses the run of NULL tags to a few bytes.
func (c *colData) finishAllNull() {
	if c.n > v2AllNullMax {
		c.kind = colAny
		return
	}
	c.kind = colAllNull
}

// gatherColVec gathers from the set's colstore view; reports false for
// column representations it does not accelerate (AnyColumn), which then
// take the row-scan path.
func gatherColVec(set *db.ResultSet, j int, c *colData) bool {
	col := set.Vec.Frame.Col(j)
	v := set.Vec
	n := c.n
	switch col := col.(type) {
	case *colstore.Int64Column:
		c.ints = make([]int64, 0, n)
		for i := 0; i < n; i++ {
			fi := v.Index(i)
			if col.Null(fi) {
				c.setNull(i)
			} else {
				c.ints = append(c.ints, col.Vals[fi])
			}
		}
		c.nn = len(c.ints)
		if c.nn == 0 {
			c.ints = nil
			c.nulls = nil
			c.finishAllNull()
			return true
		}
		c.kind = colInt
	case *colstore.Float64Column:
		c.floats = make([]float64, 0, n)
		for i := 0; i < n; i++ {
			fi := v.Index(i)
			if col.Null(fi) {
				c.setNull(i)
			} else {
				c.floats = append(c.floats, col.Vals[fi])
			}
		}
		c.nn = len(c.floats)
		if c.nn == 0 {
			c.floats = nil
			c.nulls = nil
			c.finishAllNull()
			return true
		}
		c.kind = colFloat
	case *colstore.BoolColumn:
		c.bools = make([]bool, 0, n)
		for i := 0; i < n; i++ {
			fi := v.Index(i)
			if col.Null(fi) {
				c.setNull(i)
			} else {
				c.bools = append(c.bools, col.Vals[fi])
			}
		}
		c.nn = len(c.bools)
		if c.nn == 0 {
			c.bools = nil
			c.nulls = nil
			c.finishAllNull()
			return true
		}
		c.kind = colBool
	case *colstore.TextColumn:
		// Remap scan-time dictionary codes to wire codes in first-occurrence
		// order over the result rows — byte-identical to the row-scan path,
		// without hashing any string.
		remap := make([]int32, len(col.Dict))
		for k := range remap {
			remap[k] = -1
		}
		c.codes = make([]uint32, 0, n)
		for i := 0; i < n; i++ {
			fi := v.Index(i)
			if col.Null(fi) {
				c.setNull(i)
				continue
			}
			src := col.Codes[fi]
			if remap[src] < 0 {
				remap[src] = int32(len(c.dict))
				c.dict = append(c.dict, col.Dict[src])
			}
			c.codes = append(c.codes, uint32(remap[src]))
		}
		c.nn = len(c.codes)
		if c.nn == 0 {
			c.codes = nil
			c.nulls = nil
			c.finishAllNull()
			return true
		}
		c.kind = colText
	default:
		return false
	}
	return true
}

// --- Decoding ----------------------------------------------------------------

// decodeSetV2 parses one columnar set. Row materialization is bounded by
// the payload-wide cell budget before any allocation sized by the claimed
// row count happens.
func (d *Decoder) decodeSetV2(budget *cellBudget) (*db.ResultSet, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	nCols, err := d.count(1, "column") // a column name costs >= 1 byte
	if err != nil {
		return nil, err
	}
	set := &db.ResultSet{Name: name}
	for i := 0; i < nCols; i++ {
		c, err := d.str()
		if err != nil {
			return nil, err
		}
		set.Columns = append(set.Columns, c)
	}
	nRows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nCols == 0 && nRows > 0 {
		return nil, fmt.Errorf("wire: %d rows in a zero-column set", nRows)
	}
	if nRows == 0 || nCols == 0 {
		return set, nil
	}
	// Unlike v1, a v2 row can cost arbitrarily few bytes (that is the
	// point), so the claimed count is charged against the budget derived
	// from the payload size instead of Remaining.
	if err := budget.charge(nRows, uint64(nCols)); err != nil {
		return nil, err
	}
	n := int(nRows)
	rows := types.MakeRows(n, nCols)
	for j := 0; j < nCols; j++ {
		if err := d.decodeColV2(rows, j, n); err != nil {
			return nil, err
		}
	}
	set.Rows = rows
	return set, nil
}

// decodeColV2 parses one column block, filling column j of rows. Cells it
// does not touch keep the zero types.Value, which is NULL.
func (d *Decoder) decodeColV2(rows []types.Row, j, n int) error {
	if d.off >= len(d.buf) {
		return fmt.Errorf("wire: truncated column descriptor at offset %d", d.off)
	}
	desc := d.buf[d.off]
	d.off++
	variant := int(desc & colVariantMask)
	hasNulls := desc&colNullsBit != 0
	kind := int(desc >> colKindShift & 0x07)
	flated := desc&colFlateBit != 0
	if desc&colReservedBit != 0 {
		return fmt.Errorf("wire: column descriptor %#x has reserved bit set", desc)
	}
	if kind > colAny {
		return fmt.Errorf("wire: unknown column kind %d", kind)
	}
	if variant != 0 && kind != colInt && kind != colText {
		return fmt.Errorf("wire: column kind %d has no variant %d", kind, variant)
	}
	if variant > 1 {
		return fmt.Errorf("wire: unknown payload variant %d", variant)
	}
	if hasNulls && (kind == colAllNull || kind == colAny) {
		return fmt.Errorf("wire: column kind %d cannot carry a null bitmap", kind)
	}

	// Establish the body reader, bounding the claimed row count by the
	// bytes that will actually back it before anything is allocated.
	src := d
	if flated {
		clen, err := d.uvarint()
		if err != nil {
			return err
		}
		if clen > uint64(d.Remaining()) {
			return fmt.Errorf("wire: truncated compressed column (%d > %d bytes)", clen, d.Remaining())
		}
		if uint64(n) > v2MaxRatio*clen+v2AllNullMax {
			return fmt.Errorf("wire: %d rows implausible for a %d-byte compressed column", n, clen)
		}
		raw, err := inflateColumn(d.buf[d.off:d.off+int(clen)], 1032*int(clen)+64)
		if err != nil {
			return err
		}
		d.off += int(clen)
		src = NewDecoder(raw)
	} else {
		switch kind {
		case colAllNull:
			if n > v2AllNullMax {
				return fmt.Errorf("wire: %d rows implausible for an implicit all-NULL column", n)
			}
		case colAny:
			if n > d.Remaining() {
				return fmt.Errorf("wire: %d rows implausible for a %d-byte column", n, d.Remaining())
			}
		default:
			if (n+7)/8 > d.Remaining() {
				return fmt.Errorf("wire: %d rows implausible for a %d-byte column", n, d.Remaining())
			}
		}
	}

	var nulls []byte
	nn := n
	if hasNulls {
		nb := (n + 7) / 8
		if src.Remaining() < nb {
			return fmt.Errorf("wire: truncated null bitmap at offset %d", src.off)
		}
		nulls = src.buf[src.off : src.off+nb]
		src.off += nb
		if n%8 != 0 && nulls[nb-1]>>(n%8) != 0 {
			return fmt.Errorf("wire: null bitmap has bits beyond row %d", n)
		}
		set := 0
		for _, b := range nulls {
			set += bits.OnesCount8(b)
		}
		if set == 0 || set == n {
			return fmt.Errorf("wire: non-canonical null bitmap (%d of %d set)", set, n)
		}
		nn = n - set
	}
	isNull := func(i int) bool {
		return nulls != nil && nulls[i>>3]&(1<<(i&7)) != 0
	}

	switch kind {
	case colAllNull:
		// Rows were zero-initialized; zero types.Value is NULL.
	case colInt:
		var prev int64
		first := true
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			v, err := src.varint()
			if err != nil {
				return err
			}
			if variant == intDelta && !first {
				prev += v // wrapping, mirrors the encoder exactly
			} else {
				prev = v
			}
			first = false
			rows[i][j] = types.NewInt(prev)
		}
	case colFloat:
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			if src.Remaining() < 8 {
				return fmt.Errorf("wire: truncated float column at offset %d", src.off)
			}
			b := src.buf[src.off:]
			bits64 := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
			src.off += 8
			rows[i][j] = types.NewFloat(math.Float64frombits(bits64))
		}
	case colBool:
		nb := (nn + 7) / 8
		if src.Remaining() < nb {
			return fmt.Errorf("wire: truncated bool column at offset %d", src.off)
		}
		packed := src.buf[src.off : src.off+nb]
		src.off += nb
		if nn%8 != 0 && nb > 0 && packed[nb-1]>>(nn%8) != 0 {
			return fmt.Errorf("wire: bool column has bits beyond value %d", nn)
		}
		k := 0
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			rows[i][j] = types.NewBool(packed[k>>3]&(1<<(k&7)) != 0)
			k++
		}
	case colText:
		if variant == textDict {
			nDict, err := src.count(1, "dictionary entry")
			if err != nil {
				return err
			}
			dict := make([]types.Value, nDict)
			for k := 0; k < nDict; k++ {
				s, err := src.str()
				if err != nil {
					return err
				}
				dict[k] = types.NewText(s)
			}
			for i := 0; i < n; i++ {
				if isNull(i) {
					continue
				}
				code, err := src.uvarint()
				if err != nil {
					return err
				}
				if code >= uint64(nDict) {
					return fmt.Errorf("wire: dictionary code %d out of range (%d entries)", code, nDict)
				}
				rows[i][j] = dict[code]
			}
		} else {
			for i := 0; i < n; i++ {
				if isNull(i) {
					continue
				}
				s, err := src.str()
				if err != nil {
					return err
				}
				rows[i][j] = types.NewText(s)
			}
		}
	case colAny:
		for i := 0; i < n; i++ {
			v, err := src.value()
			if err != nil {
				return err
			}
			rows[i][j] = v
		}
	}
	if flated && src.off != len(src.buf) {
		return fmt.Errorf("wire: %d trailing bytes in compressed column", len(src.buf)-src.off)
	}
	return nil
}

// inflateColumn decompresses a deflate stream with a hard output cap (1032
// is deflate's maximum compression ratio, so anything past 1032x the input
// is hostile by construction).
func inflateColumn(comp []byte, limit int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	out, err := io.ReadAll(io.LimitReader(fr, int64(limit)+1))
	if err != nil {
		return nil, fmt.Errorf("wire: corrupt compressed column: %w", err)
	}
	if len(out) > limit {
		return nil, fmt.Errorf("wire: compressed column inflates past the deflate ratio bound")
	}
	return out, nil
}

package wire

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/workload/hierarchy"
)

// TestServerCacheStress is the concurrency gate of the cached server: N
// clients hammer one wire.Server (result cache ON) with the hierarchy
// workload's classic and RESULTDB queries, interleaved round-by-round with
// invalidating DML. Every response must be byte-identical to a cold,
// single-threaded, uncached oracle database that received the same DML.
//
// Each round begins with an INSERT (applied to the served database over the
// wire and to the oracle directly), which invalidates every cached entry —
// so the following burst of identical concurrent queries exercises the
// single-flight path: many simultaneous misses must collapse into one
// execution whose result is then shared, still matching the oracle.
//
// Run under -race (verify.sh does) to also shake out data races in the
// server accept loop, the per-connection handlers, the client mutex, and
// the cache's LRU/flight bookkeeping.
func TestServerCacheStress(t *testing.T) {
	served, oracle := db.New(), db.New()
	for _, d := range []*db.Database{served, oracle} {
		if err := hierarchy.Load(d, hierarchy.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	served.EnableCache(64 << 20)

	srv := NewServer(served)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	queries := []string{
		strings.TrimSpace(hierarchy.OuterJoinQuery),
		strings.TrimSpace(hierarchy.ResultDBElectronics),
		strings.TrimSpace(hierarchy.ResultDBClothing),
	}

	// One writer connection for DML, N reader connections for the burst.
	writer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	const nClients = 6
	readers := make([]*Client, nClients)
	for i := range readers {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		readers[i] = c
	}

	const rounds = 4
	for round := 0; round < rounds; round++ {
		// Invalidating DML, same statement to both sides. Derive it from
		// the first query's lead table so the INSERT provably intersects
		// the cached entries' table sets.
		sel, err := sqlparse.ParseSelect(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		ins := invalidatingInsert(t, served, sel)
		if _, err := writer.Exec(ins); err != nil {
			t.Fatalf("round %d: %q over wire: %v", round, ins, err)
		}
		if _, err := oracle.Exec(ins); err != nil {
			t.Fatalf("round %d: %q on oracle: %v", round, ins, err)
		}

		// Cold single-threaded oracle answers for this round.
		want := make([][]byte, len(queries))
		for i, q := range queries {
			want[i] = execBytes(t, oracle, q)
		}

		// Concurrent burst: every client runs every query; all responses
		// must match the oracle bytes.
		var wg sync.WaitGroup
		errs := make(chan error, nClients*len(queries))
		for ci, c := range readers {
			wg.Add(1)
			go func(ci int, c *Client) {
				defer wg.Done()
				for qi, q := range queries {
					res, err := c.Exec(q)
					if err != nil {
						errs <- fmt.Errorf("round %d client %d query %d: %v", round, ci, qi, err)
						return
					}
					if !bytes.Equal(EncodeResult(res), want[qi]) {
						errs <- fmt.Errorf("round %d client %d query %d: response differs from cold oracle", round, ci, qi)
						return
					}
				}
			}(ci, c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}

	st := served.CacheStats()
	if st.Hits == 0 {
		t.Errorf("stress run produced no cache hits: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("DML rounds produced no invalidations: %+v", st)
	}
}

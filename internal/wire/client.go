package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
)

// Client speaks the protocol to a Server, production-robustly: transport
// failures are wrapped with query context (ExchangeError), idempotent
// statements are retried with capped exponential backoff and jitter under a
// RetryPolicy, and a broken connection is transparently redialed with the
// hello negotiation re-run (the renegotiated connection may cleanly
// downgrade, e.g. against a restarted server clamped to v1).
//
// Concurrency contract: Exec is safe for concurrent use — a mutex serializes
// whole request/response exchanges (including any retries) on the single
// underlying connection, so concurrent Execs queue and run one at a time
// (open one Client per desired in-flight request for pipelining). BytesRead
// may be read concurrently with in-flight Execs. Close may be called at any
// time; Execs blocked on the connection fail with the close error.
type Client struct {
	mu   sync.Mutex // serializes one full Exec exchange (retries included)
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	addr  string
	opts  Options
	retry RetryPolicy
	dial  func(addr string) (net.Conn, error)
	clock clock
	rng   *rand.Rand

	helloPending bool // hello sent, reply not yet consumed
	version      int  // negotiated payload version (FormatV1 without a hello)
	streaming    bool // negotiated streamed responses
	integrity    bool // negotiated CRC32 frame trailers
	broken       bool // transport failed; the next attempt redials

	bytesRead  atomic.Int64
	reconnects atomic.Int64
}

// Options configures a client connection.
type Options struct {
	// Version is the payload version to request (FormatV1 or FormatV2;
	// 0 = FormatV2). The server may clamp it down; Version() reports the
	// negotiated outcome.
	Version int
	// Streaming requests chunked responses (server-side pipelining of
	// execution, encoding, and transmission).
	Streaming bool
	// Legacy skips the hello exchange entirely, reproducing the original
	// protocol byte for byte: v1 payloads, buffered responses, no frame
	// checksums. Version, Streaming, and NoIntegrity are ignored.
	Legacy bool
	// NoIntegrity skips requesting CRC32 frame trailers during the hello
	// exchange. By default every negotiated connection requests them, so a
	// flipped bit anywhere in a frame surfaces as a typed corrupt-payload
	// error instead of silently wrong data.
	NoIntegrity bool
	// Retry configures reconnect/retry behavior. The zero value falls back
	// to RetryFromEnv() (RESULTDB_RETRIES / RESULTDB_RETRY_BACKOFF), which
	// is itself zero — single attempt — when the variables are unset.
	Retry RetryPolicy
	// Dial overrides the transport dialer — the client's fault-injection
	// hook (install faultnet.Dialer.Dial) and test seam. nil means TCP
	// with the retry policy's ConnectTimeout.
	Dial func(addr string) (net.Conn, error)
}

// Dial connects to a server, negotiating the newest payload version,
// streamed responses, and frame integrity. Use DialOptions to pin a version
// or disable any of them.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{Version: FormatV2, Streaming: true})
}

// DialOptions connects to a server with explicit protocol options. The hello
// is written at dial time but the server's reply is consumed lazily, at the
// start of the first Exec (or Version/Streaming call) — so dialing an
// overloaded server queues instead of blocking, exactly like the legacy
// protocol: clients see latency, not errors, and negotiation failures
// surface on first use.
func DialOptions(addr string, opts Options) (*Client, error) {
	if isZeroRetry(opts.Retry) {
		opts.Retry = RetryFromEnv()
	}
	c := &Client{
		addr:    addr,
		opts:    opts,
		retry:   opts.Retry,
		clock:   realClock{},
		version: FormatV1,
	}
	seed := opts.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
	c.dial = opts.Dial
	if c.dial == nil {
		c.dial = func(addr string) (net.Conn, error) {
			if t := c.retry.ConnectTimeout; t > 0 {
				return net.DialTimeout("tcp", addr, t)
			}
			return net.Dial("tcp", addr)
		}
	}
	if err := c.connect(); err != nil {
		if c.retry.maxAttempts() > 1 {
			// With retries configured the dial-time failure is just attempt
			// zero: hand the broken client back and let the first Exec's
			// retry loop redial (and re-negotiate) with backoff.
			c.broken = true
			return c, nil
		}
		return nil, err
	}
	return c, nil
}

// isZeroRetry reports whether p is the zero policy (RetryPolicy is
// comparable; spelled out so adding fields keeps this honest).
func isZeroRetry(p RetryPolicy) bool { return p == RetryPolicy{} }

// connect dials and performs the write half of the hello exchange. Callers
// hold c.mu (or are inside DialOptions, before the client escapes).
func (c *Client) connect() error {
	conn, err := c.dial(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	c.version = FormatV1
	c.streaming = false
	c.integrity = false
	c.helloPending = false
	c.broken = false
	if c.opts.Legacy {
		return nil
	}
	want := c.opts.Version
	if want == 0 {
		want = FormatV2
	}
	var flags uint64
	if c.opts.Streaming {
		flags |= helloStreaming
	}
	if !c.opts.NoIntegrity {
		flags |= helloIntegrity
	}
	// The hello itself always travels checksum-free: the trailer discipline
	// starts with the first post-hello frame, once both sides know it.
	if err := writeFrame(c.w, frameHello, encodeHello(want, flags)); err != nil {
		conn.Close()
		c.broken = true
		return err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		c.broken = true
		return err
	}
	c.helloPending = true
	return nil
}

// breakConn marks the connection unusable; the next attempt redials.
// Callers hold c.mu.
func (c *Client) breakConn() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.broken = true
}

// finishHello consumes the server's hello reply if one is still in flight.
// Callers must hold c.mu. On failure the connection is marked broken, so a
// retrying Exec redials rather than reporting the same stale failure
// forever.
func (c *Client) finishHello() error {
	if !c.helloPending {
		return nil
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		c.broken = true
		return err
	}
	switch typ {
	case frameHello:
		v, flags, err := decodeHello(payload)
		if err != nil {
			c.broken = true
			return err
		}
		if v != FormatV1 && v != FormatV2 {
			c.broken = true
			return fmt.Errorf("wire: server negotiated unsupported version %d", v)
		}
		c.version = v
		c.streaming = flags&helloStreaming != 0
		// Honor the integrity grant only if we requested it: a server
		// volunteering trailers we did not ask for would desynchronize us.
		c.integrity = !c.opts.NoIntegrity && flags&helloIntegrity != 0
		c.helloPending = false
		return nil
	case frameErr:
		c.broken = true
		return errors.New(string(payload))
	default:
		c.broken = true
		return fmt.Errorf("wire: unexpected frame type %d in hello exchange", typ)
	}
}

// Version reports the negotiated payload version (FormatV1 or FormatV2),
// completing the hello exchange if its reply is still in flight. Reports
// FormatV1 if negotiation failed (the next Exec returns the actual error).
func (c *Client) Version() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishHello()
	return c.version
}

// Streaming reports whether responses arrive as chunk streams, completing
// the hello exchange if its reply is still in flight.
func (c *Client) Streaming() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishHello()
	return c.streaming
}

// Integrity reports whether frames carry CRC32 trailers on this connection,
// completing the hello exchange if its reply is still in flight.
func (c *Client) Integrity() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishHello()
	return c.integrity
}

// BytesRead returns the accumulated payload bytes received, for transfer
// accounting. Safe to call concurrently with Exec.
func (c *Client) BytesRead() int { return int(c.bytesRead.Load()) }

// Reconnects returns how many times the client redialed after a transport
// failure. Safe to call concurrently with Exec.
func (c *Client) Reconnects() int { return int(c.reconnects.Load()) }

// SetRetry replaces the retry policy (the shell's \retry command). Takes
// effect from the next Exec.
func (c *Client) SetRetry(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// RetryPolicy reports the active retry policy.
func (c *Client) RetryPolicy() RetryPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry
}

// isIdempotent reports whether a statement may be safely re-sent after an
// ambiguous failure: reads (SELECT, EXPLAIN) are, everything else — and
// anything unparsable — is not.
func isIdempotent(sql string) bool {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return false
	}
	switch st.(type) {
	case *sqlparse.Select, *sqlparse.Explain:
		return true
	}
	return false
}

// Exec sends one statement and decodes the response. Safe for concurrent
// use; see the Client concurrency contract.
//
// Failures return an *ExchangeError carrying the kind (retryable, terminal,
// corrupt), the query hash, and how far the response had progressed. With a
// RetryPolicy configured, retryable and corrupt failures of idempotent
// statements are retried on a fresh connection under capped exponential
// backoff; terminal (server-reported statement) errors and non-idempotent
// statements are never retried, though the connection still heals on the
// next call.
func (c *Client) Exec(sql string) (*db.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var overall time.Time
	if t := c.retry.QueryTimeout; t > 0 {
		overall = c.clock.Now().Add(t)
	}
	idempotent := -1 // computed lazily on first failure: 1 yes, 0 no
	for attempt := 1; ; attempt++ {
		res, xe := c.exchange(sql, overall)
		if xe == nil {
			return res, nil
		}
		xe.Attempts = attempt
		if xe.Kind == KindTerminal {
			return nil, xe
		}
		// The transport or the payload failed: the connection cannot be
		// trusted for another exchange.
		c.breakConn()
		if idempotent < 0 {
			idempotent = 0
			if isIdempotent(sql) {
				idempotent = 1
			}
		}
		if idempotent == 0 || attempt >= c.retry.maxAttempts() {
			return nil, xe
		}
		delay := c.retry.backoff(attempt, c.rng)
		if !overall.IsZero() {
			remaining := overall.Sub(c.clock.Now())
			if remaining <= 0 {
				return nil, xe
			}
			if delay > remaining {
				delay = remaining
			}
		}
		c.clock.Sleep(delay)
	}
}

// exchange performs one attempt: reconnect if needed, settle the hello,
// send the query, read and decode the response. Callers hold c.mu.
func (c *Client) exchange(sql string, overall time.Time) (*db.Result, *ExchangeError) {
	fail := func(kind ErrorKind, frames int, bytes int64, err error) (*db.Result, *ExchangeError) {
		return nil, &ExchangeError{
			Kind:       kind,
			QueryHash:  queryHash(sql),
			FrameIndex: frames,
			BytesRead:  bytes,
			Err:        err,
		}
	}
	if c.broken || c.conn == nil {
		c.reconnects.Add(1)
		if err := c.connect(); err != nil {
			c.broken = true
			return fail(KindRetryable, 0, 0, fmt.Errorf("reconnect: %w", err))
		}
	}
	// Per-attempt deadline, distinct from (and clamped by) the overall
	// query timeout.
	deadline := overall
	if t := c.retry.AttemptTimeout; t > 0 {
		d := c.clock.Now().Add(t)
		if deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	if !deadline.IsZero() {
		c.conn.SetDeadline(deadline)
		defer c.conn.SetDeadline(time.Time{})
	}
	// Settle the negotiation reply first: whether the query frame (and the
	// response) carries a CRC trailer is decided by the hello outcome.
	if err := c.finishHello(); err != nil {
		return fail(classifyTransport(err), 0, 0, fmt.Errorf("hello exchange: %w", err))
	}
	if err := writeFrameCRC(c.w, frameQuery, []byte(sql), c.integrity); err != nil {
		return fail(KindRetryable, 0, 0, err)
	}
	if err := c.w.Flush(); err != nil {
		return fail(KindRetryable, 0, 0, err)
	}
	frames := 0
	var bytes int64
	readNext := func() (byte, []byte, error) {
		typ, payload, err := readFrameCRC(c.r, c.integrity)
		if err != nil {
			return 0, nil, err
		}
		frames++
		bytes += int64(len(payload))
		c.bytesRead.Add(int64(len(payload)))
		return typ, payload, nil
	}
	if c.streaming {
		var buf []byte
		for {
			typ, payload, err := readNext()
			if err != nil {
				return fail(classifyTransport(err), frames, bytes, err)
			}
			switch typ {
			case frameChunk:
				buf = append(buf, payload...)
			case frameEnd:
				res, err := DecodeResultExpect(buf, c.version)
				if err != nil {
					return fail(KindCorrupt, frames, bytes, err)
				}
				return res, nil
			case frameErr:
				return fail(classifyServerErr(payload), frames, bytes, errors.New(string(payload)))
			default:
				return fail(KindCorrupt, frames, bytes,
					fmt.Errorf("wire: unexpected frame type %d in chunked response", typ))
			}
		}
	}
	typ, payload, err := readNext()
	if err != nil {
		return fail(classifyTransport(err), frames, bytes, err)
	}
	switch typ {
	case frameOK:
		res, err := DecodeResultExpect(payload, c.version)
		if err != nil {
			return fail(KindCorrupt, frames, bytes, err)
		}
		return res, nil
	case frameErr:
		return fail(classifyServerErr(payload), frames, bytes, errors.New(string(payload)))
	default:
		return fail(KindCorrupt, frames, bytes, fmt.Errorf("wire: unexpected frame type %d", typ))
	}
}

// classifyTransport distinguishes a checksum failure (corrupt bytes arrived)
// from an ordinary transport death (nothing arrived).
func classifyTransport(err error) ErrorKind {
	if errors.Is(err, errChecksum) {
		return KindCorrupt
	}
	return KindRetryable
}

// classifyServerErr classifies a frameErr payload: protocol-level failures
// (the server prefixes them "wire:") are retryable on a fresh connection;
// anything else is the statement's own error and terminal.
func classifyServerErr(payload []byte) ErrorKind {
	if strings.HasPrefix(string(payload), "wire:") {
		return KindRetryable
	}
	return KindTerminal
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

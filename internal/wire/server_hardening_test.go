package wire

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"resultdb/internal/db"
)

func hardenedTestDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	if _, err := d.ExecScript(`
CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
INSERT INTO t VALUES (1, 'a'), (2, 'b');`); err != nil {
		t.Fatal(err)
	}
	return d
}

// rawFrame writes a hand-rolled frame header (and optionally payload).
func rawFrame(t *testing.T, conn net.Conn, typ byte, length uint32, payload []byte) {
	t.Helper()
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], length)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
}

// readRawFrame reads one frame off a raw connection.
func readRawFrame(t *testing.T, conn net.Conn) (byte, []byte) {
	t.Helper()
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatal(err)
	}
	return hdr[0], payload
}

func TestServerOversizedFrameAnswersErrAndDrops(t *testing.T) {
	srv := NewServer(hardenedTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim a payload just over the limit; send no payload bytes — the
	// server must answer from the header alone.
	rawFrame(t, conn, frameQuery, maxFrame+1, nil)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload := readRawFrame(t, conn)
	if typ != frameErr {
		t.Fatalf("want frameErr, got type %d", typ)
	}
	if !strings.Contains(string(payload), "exceeds size limit") {
		t.Fatalf("unhelpful oversize error %q", payload)
	}
	// The connection must then be closed by the server.
	if _, err := io.ReadFull(conn, make([]byte, 1)); err == nil {
		t.Fatal("server kept a poisoned connection open")
	}
}

func TestServerUnexpectedFrameTypeAnswersErr(t *testing.T) {
	srv := NewServer(hardenedTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawFrame(t, conn, frameOK, 0, nil)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload := readRawFrame(t, conn)
	if typ != frameErr || !strings.Contains(string(payload), "unexpected frame type") {
		t.Fatalf("want unexpected-frame error, got type %d %q", typ, payload)
	}
}

func TestServerReadDeadlineReapsIdleConns(t *testing.T) {
	srv := NewServer(hardenedTestDB(t))
	srv.ReadTimeout = 100 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 1)); err == nil {
		t.Fatal("idle connection was not reaped")
	}

	// A busy connection survives many deadline windows.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Exec("SELECT t.id FROM t AS t"); err != nil {
			t.Fatalf("busy connection dropped on exec %d: %v", i, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
}

func TestServerMaxConnsLimitsConcurrency(t *testing.T) {
	srv := NewServer(hardenedTestDB(t))
	srv.MaxConns = 2
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Two established, executing connections occupy both slots.
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Client{c1, c2} {
		if _, err := c.Exec("SELECT t.id FROM t AS t"); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.ActiveConns(); got != 2 {
		t.Fatalf("want 2 active conns, got %d", got)
	}

	// A third dial succeeds at TCP level (kernel backlog) but is not served
	// until a slot frees.
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c3.Exec("SELECT t.id FROM t AS t")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("third connection served beyond MaxConns (err=%v)", err)
	case <-time.After(150 * time.Millisecond):
	}
	c1.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("third connection failed after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third connection never served after slot freed")
	}
	c2.Close()
}

func TestClientConcurrentExec(t *testing.T) {
	srv := NewServer(hardenedTestDB(t))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 8
	const reps = 25
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				res, err := c.Exec("SELECT t.name FROM t AS t WHERE t.id = 2")
				if err != nil {
					t.Errorf("concurrent exec: %v", err)
					return
				}
				if res.First().NumRows() != 1 || res.First().Rows[0][0].Text() != "b" {
					t.Errorf("interleaved response: %+v", res.First())
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.BytesRead() == 0 {
		t.Error("BytesRead not accounted")
	}
}

package wire

import (
	"math/rand"
	"os"
	"strconv"
	"time"
)

// Environment knobs picked up by DialOptions when Options.Retry is zero, so
// any tool built on the client (the shell, benchrunner, tests) gains retry
// behavior without new flags.
const (
	// RetriesEnvVar (RESULTDB_RETRIES) sets RetryPolicy.MaxAttempts.
	RetriesEnvVar = "RESULTDB_RETRIES"
	// RetryBackoffEnvVar (RESULTDB_RETRY_BACKOFF) sets
	// RetryPolicy.BaseBackoff; any time.ParseDuration string ("100ms").
	RetryBackoffEnvVar = "RESULTDB_RETRY_BACKOFF"
)

// RetryPolicy configures idempotent-statement retry on the wire client.
// The zero value disables retry entirely (one attempt, no added deadlines),
// preserving the original client behavior.
//
// Only idempotent statements (SELECT, EXPLAIN) are ever retried: a
// non-idempotent statement that fails mid-exchange may or may not have been
// applied, so the client surfaces the typed error and lets the application
// decide. Every failure still marks the connection broken, and the next Exec
// transparently reconnects and re-negotiates the protocol.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries for an idempotent statement,
	// the first included. 0 and 1 both mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay before the second attempt; each
	// further attempt doubles it. Defaults to 50ms when retry is enabled.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 2s.
	MaxBackoff time.Duration
	// Jitter randomizes each backoff downward: a delay d is drawn uniformly
	// from [d*(1-Jitter), d]. 0 means the 0.5 default; negative disables
	// jitter.
	Jitter float64
	// ConnectTimeout bounds each (re)dial attempt. 0 = none.
	ConnectTimeout time.Duration
	// AttemptTimeout bounds one full exchange — query write through
	// response read — per attempt, distinct from the overall QueryTimeout.
	// 0 = none.
	AttemptTimeout time.Duration
	// QueryTimeout bounds the whole Exec call across all attempts and
	// backoff sleeps. 0 = none.
	QueryTimeout time.Duration
	// Seed seeds the jitter source, making backoff sequences reproducible;
	// 0 means a fixed default seed.
	Seed int64
}

// DefaultRetryPolicy is the recommended production policy: 4 attempts,
// 50ms..2s exponential backoff with 0.5 jitter, 5s per-attempt exchange
// deadline, 30s overall.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    50 * time.Millisecond,
		MaxBackoff:     2 * time.Second,
		AttemptTimeout: 5 * time.Second,
		QueryTimeout:   30 * time.Second,
	}
}

// RetryFromEnv builds a policy from the RESULTDB_RETRIES and
// RESULTDB_RETRY_BACKOFF environment variables; unset or unparsable
// variables leave the zero (no-retry) policy.
func RetryFromEnv() RetryPolicy {
	var p RetryPolicy
	if v := os.Getenv(RetriesEnvVar); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			p = DefaultRetryPolicy()
			p.MaxAttempts = n
		}
	}
	if v := os.Getenv(RetryBackoffEnvVar); v != "" && p.MaxAttempts > 1 {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			p.BaseBackoff = d
		}
	}
	return p
}

// maxAttempts normalizes MaxAttempts (minimum one attempt).
func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseBackoff
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return p.MaxBackoff
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// backoff computes the jittered delay after the attempt-th failure
// (1-based): min(base * 2^(attempt-1), cap), then drawn uniformly from
// [d*(1-jitter), d].
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.base()
	// Shift with an explicit bound so absurd attempt counts cannot
	// overflow; the cap clamps long before 2^20 anyway.
	for i := 1; i < attempt && i < 20 && d < p.cap(); i++ {
		d *= 2
	}
	if d > p.cap() {
		d = p.cap()
	}
	if j := p.jitter(); j > 0 {
		d = time.Duration(float64(d) * (1 - j*rng.Float64()))
	}
	return d
}

// clock abstracts time for the retry loop so backoff tests run on a fake
// clock with zero real sleeping.
type clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

package wire

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

// This file is the correctness gate of the columnar v2 wire format and the
// streamed transfer path: for every workload query, the result decoded from
// a v2 connection — buffered and streamed, at server parallelism 1 and 4 —
// must be value-identical to what a local row-path oracle computes (compared
// through the canonical v1 encoding, which is injective on results), and the
// v2 payload must never exceed the v1 payload of the same result. Any codec
// bug — a bitmap off by one, a dictionary code remapped wrong, a delta
// overflow, a chunk stitched out of order — shows up as a byte diff.

// wireCandidate is one served configuration under test.
type wireCandidate struct {
	name   string
	client *Client
}

// wireFleet loads the workload into a local oracle and into two served
// databases (parallelism 1 and 4, vectorized so the dictionary-reuse encode
// path runs), then connects a buffered and a streamed v2 client to each.
func wireFleet(t *testing.T, load func(d *db.Database) error) (*db.Database, []wireCandidate) {
	t.Helper()
	oracle := db.New()
	oracle.SetVectorized(false)
	oracle.SetParallelism(1)
	if err := load(oracle); err != nil {
		t.Fatal(err)
	}
	var cands []wireCandidate
	for _, par := range []int{1, 4} {
		d := db.New()
		d.SetVectorized(true)
		d.SetParallelism(par)
		if err := load(d); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(d)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		for _, streaming := range []bool{false, true} {
			c, err := DialOptions(addr, Options{Version: FormatV2, Streaming: streaming})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			name := fmt.Sprintf("v2-par%d", par)
			if streaming {
				name += "-stream"
			}
			cands = append(cands, wireCandidate{name: name, client: c})
		}
	}
	return oracle, cands
}

// checkWire runs sql on the oracle and across every served candidate,
// requiring value-identical results and v2 payloads no larger than v1.
func checkWire(t *testing.T, oracle *db.Database, cands []wireCandidate, name, sql string) {
	t.Helper()
	res, err := oracle.Exec(sql)
	if err != nil {
		t.Fatalf("%s: oracle: %v", name, err)
	}
	want := EncodeResult(res)
	if v2 := EncodeResultV2(res); len(v2) > len(want) {
		t.Errorf("%s: v2 payload %d bytes > v1 payload %d bytes", name, len(v2), len(want))
	}
	for _, cand := range cands {
		got, err := cand.client.Exec(sql)
		if err != nil {
			t.Fatalf("%s [%s]: %v", name, cand.name, err)
		}
		if !bytes.Equal(EncodeResult(got), want) {
			t.Fatalf("%s [%s]: result received over the wire differs from the local oracle\nsql: %s",
				name, cand.name, sql)
		}
	}
}

func TestWireV2DifferentialJOB(t *testing.T) {
	oracle, cands := wireFleet(t, func(d *db.Database) error {
		return job.Load(d, job.Config{Scale: 0.05, Seed: 42})
	})
	for _, q := range job.Queries() {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		checkWire(t, oracle, cands, q.Name+"/rdb", sql)
	}
	for _, name := range job.Table1Queries {
		q, err := job.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := strings.TrimSpace(q.SQL)
		rp := "SELECT RESULTDB PRESERVING" + strings.TrimPrefix(trimmed, "SELECT")
		checkWire(t, oracle, cands, name+"/rdbrp", rp)
		checkWire(t, oracle, cands, name+"/st", trimmed)
	}
}

func TestWireV2DifferentialStar(t *testing.T) {
	cfg := star.Config{Dims: 3, DimRows: 12, PayloadLen: 16, Seed: 7}
	oracle, cands := wireFleet(t, func(d *db.Database) error {
		return star.Load(d, cfg)
	})
	for _, sel := range []float64{0.2, 0.6, 1.0} {
		st := star.Query(cfg, sel)
		rdb := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(star.PayloadQuery(cfg, sel)), "SELECT")
		checkWire(t, oracle, cands, fmt.Sprintf("star-%.1f/st", sel), st)
		checkWire(t, oracle, cands, fmt.Sprintf("star-%.1f/rdb", sel), rdb)
	}
}

func TestWireV2DifferentialHierarchy(t *testing.T) {
	oracle, cands := wireFleet(t, func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	})
	checkWire(t, oracle, cands, "hier/outer", strings.TrimSpace(hierarchy.OuterJoinQuery))
	checkWire(t, oracle, cands, "hier/rdb-electronics", strings.TrimSpace(hierarchy.ResultDBElectronics))
	checkWire(t, oracle, cands, "hier/rdb-clothing", strings.TrimSpace(hierarchy.ResultDBClothing))
}

package wire

import (
	"bytes"
	"compress/flate"
	"fmt"
	"math"
	"strings"
	"testing"

	"resultdb/internal/colstore"
	"resultdb/internal/db"
	"resultdb/internal/types"
)

// oneSet wraps a single result set in a Result.
func oneSet(name string, cols []string, rows []types.Row) *db.Result {
	return &db.Result{Sets: []*db.ResultSet{{Name: name, Columns: cols, Rows: rows}}}
}

// mustRoundTripV2 encodes r at v2, decodes, and checks value equality by
// comparing canonical v1 re-encodings (v1 is injective on results, so byte
// equality there is value equality). Returns the v2 payload.
func mustRoundTripV2(t *testing.T, r *db.Result) []byte {
	t.Helper()
	enc := EncodeResultV2(r)
	if v, err := PayloadVersion(enc); err != nil || v != FormatV2 {
		t.Fatalf("PayloadVersion = %d, %v; want %d", v, err, FormatV2)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatalf("v2 payload does not decode: %v", err)
	}
	if got, want := EncodeResult(dec), EncodeResult(r); !bytes.Equal(got, want) {
		t.Fatalf("v2 round trip altered the result\n got: %x\nwant: %x", got, want)
	}
	return enc
}

func TestV2RoundTripValueExtremes(t *testing.T) {
	nan := math.NaN()
	r := oneSet("x",
		[]string{"i", "f", "s", "b", "ni"},
		[]types.Row{
			{types.NewInt(math.MaxInt64), types.NewFloat(nan), types.NewText(""), types.NewBool(true), types.Null()},
			{types.NewInt(math.MinInt64), types.NewFloat(math.Copysign(0, -1)), types.NewText("it's"), types.NewBool(false), types.NewInt(0)},
			{types.NewInt(0), types.NewFloat(math.Inf(1)), types.NewText(strings.Repeat("z", 300)), types.Null(), types.Null()},
			{types.Null(), types.NewFloat(math.Inf(-1)), types.Null(), types.NewBool(true), types.NewInt(-1)},
		})
	enc := mustRoundTripV2(t, r)
	// Bit-level float checks: NaN payload and -0 sign must survive.
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	rows := dec.Sets[0].Rows
	if !math.IsNaN(rows[0][1].Float()) {
		t.Error("NaN did not survive the v2 round trip")
	}
	if f := rows[1][1].Float(); f != 0 || !math.Signbit(f) {
		t.Errorf("-0.0 became %v", f)
	}
}

func TestV2EmptyShapes(t *testing.T) {
	for _, r := range []*db.Result{
		{},
		{Sets: []*db.ResultSet{{Name: "empty"}}},
		oneSet("nocols", nil, nil),
		oneSet("norows", []string{"a", "b"}, nil),
	} {
		v2 := mustRoundTripV2(t, r)
		v1 := EncodeResult(r)
		// Zero-row sets have no column blocks: v2 matches v1 byte for byte
		// except the version number in the header.
		if len(v2) != len(v1) {
			t.Errorf("empty-shape v2 size %d != v1 size %d", len(v2), len(v1))
		}
	}
}

func TestV2AllNullColumns(t *testing.T) {
	small := make([]types.Row, 100)
	for i := range small {
		small[i] = types.Row{types.Null(), types.NewInt(int64(i))}
	}
	r := oneSet("s", []string{"nul", "id"}, small)
	enc := mustRoundTripV2(t, r)
	if v1 := EncodeResult(r); len(enc) >= len(v1) {
		t.Errorf("all-NULL column: v2 %d bytes >= v1 %d bytes", len(enc), len(v1))
	}

	// Larger than v2AllNullMax: the implicit form is off the table, the
	// column ships as tagged values, deflate crushes the run — and it must
	// still round-trip and beat v1.
	large := make([]types.Row, v2AllNullMax+500)
	for i := range large {
		large[i] = types.Row{types.Null()}
	}
	r = oneSet("l", []string{"nul"}, large)
	enc = mustRoundTripV2(t, r)
	if v1 := EncodeResult(r); len(enc) >= len(v1) {
		t.Errorf("large all-NULL column: v2 %d bytes >= v1 %d bytes", len(enc), len(v1))
	}
}

func TestV2MixedKindColumnRoundTrips(t *testing.T) {
	r := oneSet("m", []string{"v"}, []types.Row{
		{types.NewInt(1)},
		{types.NewText("two")},
		{types.NewBool(true)},
		{types.Null()},
		{types.NewFloat(5.5)},
	})
	mustRoundTripV2(t, r)
}

func TestV2TextDictionaryDegenerate(t *testing.T) {
	// All-equal strings: dictionary of one entry, one-byte codes.
	same := make([]types.Row, 200)
	for i := range same {
		same[i] = types.Row{types.NewText("constant")}
	}
	r := oneSet("same", []string{"s"}, same)
	enc := mustRoundTripV2(t, r)
	if v1 := EncodeResult(r); len(enc) >= len(v1)/4 {
		t.Errorf("constant text column compressed poorly: v2 %d vs v1 %d bytes", len(enc), len(v1))
	}

	// All-distinct strings: the dictionary buys nothing; inline must win or
	// tie, and the whole thing still must not exceed v1.
	distinct := make([]types.Row, 64)
	for i := range distinct {
		distinct[i] = types.Row{types.NewText(fmt.Sprintf("unique-%d-%d", i, i*i))}
	}
	r = oneSet("distinct", []string{"s"}, distinct)
	enc = mustRoundTripV2(t, r)
	if v1 := EncodeResult(r); len(enc) > len(v1) {
		t.Errorf("distinct text column: v2 %d bytes > v1 %d bytes", len(enc), len(v1))
	}
}

func TestV2IntDeltaExtremes(t *testing.T) {
	// Sequential keys: delta form shrinks to ~1 byte per row.
	seq := make([]types.Row, 1000)
	for i := range seq {
		seq[i] = types.Row{types.NewInt(int64(1_000_000 + i))}
	}
	r := oneSet("seq", []string{"id"}, seq)
	enc := mustRoundTripV2(t, r)
	if v1 := EncodeResult(r); len(enc)*2 >= len(v1) {
		t.Errorf("sequential ints barely compressed: v2 %d vs v1 %d bytes", len(enc), len(v1))
	}

	// Extremes whose deltas wrap int64: correctness over compression.
	r = oneSet("wrap", []string{"v"}, []types.Row{
		{types.NewInt(math.MaxInt64)},
		{types.NewInt(math.MinInt64)},
		{types.NewInt(math.MaxInt64)},
		{types.NewInt(-1)},
		{types.NewInt(1)},
	})
	mustRoundTripV2(t, r)
}

// jobishResult builds a multi-set result shaped like the benchmark
// workloads: a dictionary-friendly text column, a sequential key column, a
// float column, nulls sprinkled in.
func jobishResult(n int) *db.Result {
	rows1 := make([]types.Row, n)
	rows2 := make([]types.Row, n/2)
	for i := range rows1 {
		var note types.Value
		if i%7 == 0 {
			note = types.Null()
		} else {
			note = types.NewText(fmt.Sprintf("genre-%d", i%5))
		}
		rows1[i] = types.Row{types.NewInt(int64(i)), note, types.NewFloat(float64(i) * 0.25)}
	}
	for i := range rows2 {
		rows2[i] = types.Row{types.NewInt(int64(i * 3)), types.NewBool(i%3 == 0)}
	}
	return &db.Result{Sets: []*db.ResultSet{
		{Name: "t", Columns: []string{"id", "note", "score"}, Rows: rows1},
		{Name: "u", Columns: []string{"fk", "ok"}, Rows: rows2},
	}}
}

func TestV2ParallelismInvariantBytes(t *testing.T) {
	r := jobishResult(500)
	p1 := EncodeResultOptions(r, EncodeOptions{Version: FormatV2, Parallelism: 1})
	p4 := EncodeResultOptions(r, EncodeOptions{Version: FormatV2, Parallelism: 4})
	if !bytes.Equal(p1, p4) {
		t.Fatal("v2 bytes differ between parallelism 1 and 4")
	}
}

func TestV2NeverLargerThanV1(t *testing.T) {
	for _, r := range []*db.Result{
		jobishResult(10),
		jobishResult(1000),
		oneSet("one", []string{"a"}, []types.Row{{types.NewInt(42)}}),
		oneSet("null1", []string{"a"}, []types.Row{{types.Null()}}),
		oneSet("bools", []string{"b"}, []types.Row{
			{types.NewBool(true)}, {types.NewBool(false)}, {types.Null()},
		}),
	} {
		v1, v2 := EncodeResult(r), EncodeResultV2(r)
		if len(v2) > len(v1) {
			t.Errorf("v2 %d bytes > v1 %d bytes for %q", len(v2), len(v1), r.Sets[0].Name)
		}
	}
}

// TestV2VecGatherMatchesRowGather checks the dictionary-reuse fast path: a
// set carrying a colstore view (with a scan-time dictionary larger than the
// result needs, and a selection vector) must encode to exactly the bytes of
// the plain row-scan gather.
func TestV2VecGatherMatchesRowGather(t *testing.T) {
	kinds := []types.Kind{types.KindInt, types.KindText, types.KindFloat}
	frameRows := make([]types.Row, 40)
	for i := range frameRows {
		var s types.Value
		if i%5 == 0 {
			s = types.Null()
		} else {
			s = types.NewText(fmt.Sprintf("word-%d", i%9))
		}
		frameRows[i] = types.Row{types.NewInt(int64(i * 10)), s, types.NewFloat(float64(i))}
	}
	frame := colstore.NewFrame(kinds, frameRows)
	// Select a shuffled-ish subset so wire codes must be remapped to
	// first-occurrence order, not reused as-is.
	sel := []int32{33, 2, 7, 2, 19, 38, 7, 11}
	view := &colstore.View{Frame: frame, Sel: sel}
	rows := make([]types.Row, len(sel))
	for i, j := range sel {
		rows[i] = frameRows[j]
	}
	withVec := &db.Result{Sets: []*db.ResultSet{{
		Name: "v", Columns: []string{"id", "w", "f"}, Rows: rows, Vec: view,
	}}}
	withoutVec := &db.Result{Sets: []*db.ResultSet{{
		Name: "v", Columns: []string{"id", "w", "f"}, Rows: rows,
	}}}
	a, b := EncodeResultV2(withVec), EncodeResultV2(withoutVec)
	if !bytes.Equal(a, b) {
		t.Fatal("vec-backed and row-scan v2 encodes differ")
	}
	mustRoundTripV2(t, withVec)
}

func TestDecodeResultExpectRejectsCrossVersion(t *testing.T) {
	r := jobishResult(20)
	v1, v2 := EncodeResult(r), EncodeResultV2(r)
	if _, err := DecodeResultExpect(v1, FormatV1); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResultExpect(v2, FormatV2); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResultExpect(v1, FormatV2); err == nil {
		t.Fatal("v1 payload accepted where v2 was negotiated")
	}
	if _, err := DecodeResultExpect(v2, FormatV1); err == nil {
		t.Fatal("v2 payload accepted where v1 was negotiated")
	}
	if _, err := DecodeResultExpect(v1, 99); err == nil {
		t.Fatal("unknown expected version accepted")
	}
}

// v2Prologue hand-rolls a one-set v2 payload up to the row count; the test
// appends column blocks after it.
func v2Prologue(nRows int) *Encoder {
	e := NewEncoder()
	e.uvarint(magic)
	e.uvarint(FormatV2)
	e.uvarint(0) // flags
	e.uvarint(1) // one set
	e.str("s")
	e.uvarint(1) // one column
	e.str("c")
	e.uvarint(uint64(nRows))
	return e
}

func TestV2DecoderRejectsMalformedColumns(t *testing.T) {
	cases := []struct {
		name string
		rows int
		col  []byte // desc + body
		want string
	}{
		{"reserved bit", 1, []byte{colReservedBit | colInt<<colKindShift, 2}, "reserved bit"},
		{"unknown kind", 1, []byte{7 << colKindShift}, "unknown column kind"},
		{"variant on float", 1, []byte{1 | colFloat<<colKindShift}, "no variant"},
		{"variant 2 on int", 1, []byte{2 | colInt<<colKindShift, 2}, "unknown payload variant"},
		{"bitmap on all-null", 2, []byte{colNullsBit | colAllNull<<colKindShift, 0x01}, "cannot carry a null bitmap"},
		{"bitmap on any", 2, []byte{colNullsBit | colAny<<colKindShift, 0x01, tagNull, tagNull}, "cannot carry a null bitmap"},
		{"bitmap all set", 2, []byte{colNullsBit | colInt<<colKindShift, 0x03}, "non-canonical null bitmap"},
		{"bitmap none set", 2, []byte{colNullsBit | colInt<<colKindShift, 0x00, 2, 4}, "non-canonical null bitmap"},
		{"bitmap spare bits", 2, []byte{colNullsBit | colInt<<colKindShift, 0x05, 2}, "bits beyond row"},
		{"bool spare bits", 2, []byte{colBool << colKindShift, 0x04}, "bits beyond value"},
		{"dict code out of range", 1, []byte{textDict | colText<<colKindShift, 1, 1, 'a', 5}, "out of range"},
		{"truncated column", 3, []byte{colInt << colKindShift, 2}, "truncated"},
		{"truncated descriptor", 1, nil, "truncated column descriptor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := v2Prologue(tc.rows)
			e.buf = append(e.buf, tc.col...)
			_, err := DecodeResult(e.Bytes())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestV2DecoderRejectsHostileCounts(t *testing.T) {
	// An implicit all-NULL column may not claim more than v2AllNullMax rows.
	e := v2Prologue(v2AllNullMax + 1)
	e.buf = append(e.buf, colAllNull<<colKindShift)
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("oversized implicit all-NULL column was accepted")
	}
	// A typed column cannot claim orders of magnitude more rows than its
	// remaining bytes could bit-pack.
	e = v2Prologue(1 << 20)
	e.buf = append(e.buf, colBool<<colKindShift, 0xff)
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("bool column with absurd row count was accepted")
	}
	// The payload-wide cell budget rejects absurd totals before MakeRows.
	e = v2Prologue(1 << 50)
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("absurd row count escaped the materialization budget")
	}
	// Zero columns with rows is structurally invalid in v2 as in v1.
	e = NewEncoder()
	e.uvarint(magic)
	e.uvarint(FormatV2)
	e.uvarint(0)
	e.uvarint(1)
	e.str("s")
	e.uvarint(0) // zero columns...
	e.uvarint(2) // ...but two rows
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("rows in a zero-column v2 set were accepted")
	}
}

func TestV2DecoderRejectsBadCompressedColumns(t *testing.T) {
	deflateBytes := func(raw []byte) []byte {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestCompression)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Compressed length longer than the remaining payload.
	e := v2Prologue(1)
	e.buf = append(e.buf, colInt<<colKindShift|colFlateBit, 200, 1)
	if _, err := DecodeResult(e.Bytes()); err == nil || !strings.Contains(err.Error(), "truncated compressed") {
		t.Fatalf("want truncated-compressed error, got %v", err)
	}

	// Garbage deflate stream.
	e = v2Prologue(1)
	e.buf = append(e.buf, colInt<<colKindShift|colFlateBit, 3, 0xff, 0xff, 0xff)
	if _, err := DecodeResult(e.Bytes()); err == nil || !strings.Contains(err.Error(), "corrupt compressed") {
		t.Fatalf("want corrupt-compressed error, got %v", err)
	}

	// A valid stream with trailing bytes after the column's values.
	comp := deflateBytes([]byte{2, 0x00}) // varint(1), then one stray byte
	e = v2Prologue(1)
	e.buf = append(e.buf, colInt<<colKindShift|colFlateBit)
	e.uvarint(uint64(len(comp)))
	e.buf = append(e.buf, comp...)
	if _, err := DecodeResult(e.Bytes()); err == nil || !strings.Contains(err.Error(), "trailing bytes in compressed column") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}

	// Row count implausible for the compressed size. (Small claims trip the
	// per-column ratio check; this one is big enough that the payload-wide
	// budget rejects it first — either guard is fine, both pre-allocation.)
	e = v2Prologue(1 << 24)
	e.buf = append(e.buf, colBool<<colKindShift|colFlateBit, 1, 0x00)
	if _, err := DecodeResult(e.Bytes()); err == nil {
		t.Fatal("implausible compressed row count was accepted")
	}
	e = v2Prologue(10000)
	e.buf = append(e.buf, colBool<<colKindShift|colFlateBit, 1, 0x00)
	if _, err := DecodeResult(e.Bytes()); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("want implausibility error, got %v", err)
	}
}

// TestEncodeResultAllocations guards the capacity hint: v1-encoding a
// numeric result of known shape must not regrow the buffer.
func TestEncodeResultAllocations(t *testing.T) {
	rows := make([]types.Row, 2000)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i * 7)), types.NewBool(i%2 == 0)}
	}
	r := oneSet("a", []string{"x", "y", "z"}, rows)
	allocs := testing.AllocsPerRun(10, func() {
		EncodeResult(r)
	})
	// One buffer allocation; anything more means the hint stopped covering
	// the payload and appends are regrowing (and copying) it.
	if allocs > 2 {
		t.Errorf("EncodeResult allocated %.0f times per run, want <= 2", allocs)
	}
}

func BenchmarkEncodeResultV1(b *testing.B) {
	r := jobishResult(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeResult(r)
	}
}

func BenchmarkEncodeResultV2(b *testing.B) {
	r := jobishResult(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeResultV2(r)
	}
}

func BenchmarkDecodeResultV2(b *testing.B) {
	enc := EncodeResultV2(jobishResult(5000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResult(enc); err != nil {
			b.Fatal(err)
		}
	}
}

package wire

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/types"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

// This file is the correctness gate of the cost-based planner: for every
// workload query, the wire-encoded response of a cost-based database — across
// parallelism degrees and both execution paths — must be byte-identical to a
// heuristic-planner oracle that received exactly the same statements. The
// cost model is allowed to change the root, the semi-join order, the Bloom
// decisions, the range prefilter, and the single-table join order; it is not
// allowed to change a single output byte.
//
// Subdatabase (RDB/RDBRP) results are compared raw: semi-join reduction
// preserves each relation's scan order no matter how the plan is shaped.
// Single-table results are canonicalized by a full row sort first, because
// a different join order legitimately permutes the joined rows (the multiset
// is asserted identical; the order is not part of the contract).

// statsConfig is one cost-based candidate configuration.
type statsConfig struct {
	name    string
	par     int
	vec     bool
	analyze bool // eager ANALYZE vs lazy on-demand stats build
}

var statsConfigs = []statsConfig{
	{"cost-par1", 1, false, true},
	{"cost-par4", 4, false, false},
	{"cost-par1-vec", 1, true, false},
	{"cost-par4-vec", 4, true, true},
}

// statsFleet loads the same workload into a heuristic oracle and one
// cost-based candidate per configuration.
func statsFleet(t *testing.T, vecOracle bool, load func(d *db.Database) error) (*db.Database, []*db.Database) {
	t.Helper()
	oracle := db.New()
	oracle.SetVectorized(vecOracle)
	oracle.SetParallelism(1)
	oracle.SetCostBased(false)
	if err := load(oracle); err != nil {
		t.Fatal(err)
	}
	cands := make([]*db.Database, len(statsConfigs))
	for i, cfg := range statsConfigs {
		d := db.New()
		d.SetVectorized(cfg.vec)
		d.SetParallelism(cfg.par)
		d.SetCostBased(true)
		if err := load(d); err != nil {
			t.Fatal(err)
		}
		if cfg.analyze {
			if _, err := d.Exec("ANALYZE"); err != nil {
				t.Fatal(err)
			}
		}
		cands[i] = d
	}
	return oracle, cands
}

// sortedBytes executes sql and encodes the result with every set's rows
// sorted into a canonical order (detaching the columnar view, which is
// row-order-aligned). Used for single-table comparisons, where join order
// legitimately permutes rows.
func sortedBytes(t *testing.T, d *db.Database, sql string) []byte {
	t.Helper()
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	for _, set := range res.Sets {
		set.Vec = nil
		keys := make([]string, len(set.Rows))
		order := make([]int, len(set.Rows))
		for i, r := range set.Rows {
			var b strings.Builder
			for _, v := range r {
				b.WriteString(v.String())
				b.WriteByte(0)
			}
			keys[i] = b.String()
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return keys[order[i]] < keys[order[j]]
		})
		sorted := make([]types.Row, len(set.Rows))
		for i, j := range order {
			sorted[i] = set.Rows[j]
		}
		set.Rows = sorted
	}
	return EncodeResult(res)
}

// checkStats runs sql on the oracle and every candidate and requires
// byte-identical wire encodings. ordered=false sorts rows first (single-table
// mode, where join order changes row order but not the multiset).
func checkStats(t *testing.T, oracle *db.Database, cands []*db.Database, name, sql string, ordered bool) {
	t.Helper()
	exec := execBytes
	if !ordered {
		exec = sortedBytes
	}
	want := exec(t, oracle, sql)
	for i, d := range cands {
		got := exec(t, d, sql)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s [%s]: cost-based execution differs from heuristic oracle\nsql: %s",
				name, statsConfigs[i].name, sql)
		}
	}
}

func TestStatsDifferentialJOB(t *testing.T) {
	oracle, cands := statsFleet(t, false, func(d *db.Database) error {
		return job.Load(d, job.Config{Scale: 0.05, Seed: 42})
	})
	for _, q := range job.Queries() {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		checkStats(t, oracle, cands, q.Name+"/rdb", sql, true)
	}
	for _, name := range job.Table1Queries {
		q, err := job.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := strings.TrimSpace(q.SQL)
		rp := "SELECT RESULTDB PRESERVING" + strings.TrimPrefix(trimmed, "SELECT")
		checkStats(t, oracle, cands, name+"/rdbrp", rp, true)
		checkStats(t, oracle, cands, name+"/st", trimmed, false)
	}
}

func TestStatsDifferentialStar(t *testing.T) {
	cfg := star.Config{Dims: 3, DimRows: 12, PayloadLen: 16, Seed: 7}
	oracle, cands := statsFleet(t, true, func(d *db.Database) error {
		return star.Load(d, cfg)
	})
	queries := func(tag string) {
		for _, sel := range []float64{0.2, 0.6, 1.0} {
			st := star.Query(cfg, sel)
			rdb := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(star.PayloadQuery(cfg, sel)), "SELECT")
			checkStats(t, oracle, cands, fmt.Sprintf("star-%.1f%s/st", sel, tag), st, false)
			checkStats(t, oracle, cands, fmt.Sprintf("star-%.1f%s/rdb", sel, tag), rdb, true)
		}
	}
	queries("")
	// DML after ANALYZE: the generation-checked stats cache must rebuild (or
	// lazily serve fresh stats) and, stale or fresh, results must not change.
	ins := "INSERT INTO fact VALUES (999983, 1, 2, 0, 3.5)"
	if _, err := oracle.Exec(ins); err != nil {
		t.Fatal(err)
	}
	for _, d := range cands {
		if _, err := d.Exec(ins); err != nil {
			t.Fatal(err)
		}
	}
	queries("-postdml")
}

func TestStatsDifferentialHierarchy(t *testing.T) {
	oracle, cands := statsFleet(t, false, func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	})
	checkStats(t, oracle, cands, "hier/outer", strings.TrimSpace(hierarchy.OuterJoinQuery), false)
	checkStats(t, oracle, cands, "hier/rdb-electronics", strings.TrimSpace(hierarchy.ResultDBElectronics), true)
	checkStats(t, oracle, cands, "hier/rdb-clothing", strings.TrimSpace(hierarchy.ResultDBClothing), true)
}

package cache

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The MVCC regression the *At surface exists for: a reader pins a snapshot,
// misses, and starts computing; a writer publishes (bumping the table
// version) before the fill lands. The fill is correct for the reader and must
// be returned to it — but it must NOT be admitted, or a later reader on the
// new version would be served the stale result.
func TestDoAtStaleFillReturnedNotAdmitted(t *testing.T) {
	c := New[string](1 << 20)
	snapVer := func(string) uint64 { return 0 } // the reader's pinned versions

	started := make(chan struct{})
	release := make(chan struct{})
	type out struct {
		v   string
		hit bool
		err error
	}
	done := make(chan out, 1)
	go func() {
		v, hit, err := c.DoAt("q", []string{"t"}, snapVer, func() (string, int64, error) {
			close(started)
			<-release
			return "old", 8, nil
		})
		done <- out{v, hit, err}
	}()

	<-started
	c.Bump("t") // the writer publishes mid-compute
	close(release)

	got := <-done
	if got.err != nil || got.hit || got.v != "old" {
		t.Fatalf("racing reader got (%q, hit=%v, err=%v), want its own fill", got.v, got.hit, got.err)
	}
	// The stale fill must not be visible to any version of the world.
	if _, ok := c.Get("q"); ok {
		t.Fatal("stale fill was admitted")
	}
	if _, ok := c.PeekAt("q", []string{"t"}, snapVer); ok {
		t.Fatal("stale fill visible at the old snapshot")
	}
	liveVer := func(string) uint64 { return 1 }
	if _, ok := c.PeekAt("q", []string{"t"}, liveVer); ok {
		t.Fatal("stale fill visible at the new version")
	}
	// A reader on the new version recomputes — and that fill IS admitted.
	v, hit, err := c.DoAt("q", []string{"t"}, liveVer, func() (string, int64, error) {
		return "new", 8, nil
	})
	if err != nil || hit || v != "new" {
		t.Fatalf("post-bump DoAt = (%q, %v, %v)", v, hit, err)
	}
	if v, ok := c.PeekAt("q", []string{"t"}, liveVer); !ok || v != "new" {
		t.Fatal("current-version fill not admitted")
	}
	// Two real computations (the stale one and the recompute) plus the Get
	// probe above; exactly one entry survives.
	st := c.Stats()
	if st.Entries != 1 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 1 entry and 3 misses", st)
	}
}

// Identical statements pinned at the same snapshot single-flight: one
// computation, everyone shares it.
func TestDoAtCollapsesSameSnapshot(t *testing.T) {
	c := New[string](1 << 20)
	verOf := func(string) uint64 { return 3 }
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.DoAt("q", []string{"t"}, verOf, func() (string, int64, error) {
				computes.Add(1)
				<-gate
				return "shared", 8, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let callers pile onto the flight, then release the one computation.
	for c.Stats().Collapsed < callers-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computations, want 1 (single-flight)", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
}

// Identical statements pinned at DIFFERENT snapshots must not collapse: they
// can legitimately require different results.
func TestDoAtDistinctSnapshotsDoNotCollapse(t *testing.T) {
	c := New[string](1 << 20)
	oldVer := func(string) uint64 { return 0 }
	newVer := func(string) uint64 { return 1 }

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.DoAt("q", []string{"t"}, oldVer, func() (string, int64, error) {
			close(started)
			<-release
			return "old-world", 8, nil
		})
		if err != nil || v != "old-world" {
			t.Errorf("old-snapshot caller: (%q, %v)", v, err)
		}
	}()

	<-started
	// With the old-snapshot flight still in progress, a new-snapshot caller
	// must run its own computation rather than wait and share stale bytes.
	v, hit, err := c.DoAt("q", []string{"t"}, newVer, func() (string, int64, error) {
		return "new-world", 8, nil
	})
	if err != nil || hit || v != "new-world" {
		t.Fatalf("new-snapshot caller joined the old flight: (%q, hit=%v, err=%v)", v, hit, err)
	}
	close(release)
	wg.Wait()
	if got := c.Stats().Collapsed; got != 0 {
		t.Fatalf("Collapsed = %d, want 0", got)
	}
}

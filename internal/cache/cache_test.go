package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutHitMiss(t *testing.T) {
	c := New[string](1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("k", "v", 10, []string{"T1", "t2"})
	v, ok := c.Get("k")
	if !ok || v != "v" {
		t.Fatalf("want hit with v, got %q ok=%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestVersionInvalidation(t *testing.T) {
	c := New[int](1 << 20)
	c.Put("q", 7, 1, []string{"movies", "cast"})

	// Bumping an unrelated table must not invalidate.
	c.Bump("other")
	if _, ok := c.Get("q"); !ok {
		t.Fatal("bump of unrelated table invalidated entry")
	}

	// Case-insensitive bump of a referenced table invalidates.
	c.Bump("MOVIES")
	if _, ok := c.Get("q"); ok {
		t.Fatal("stale entry served after bump")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("want 1 invalidation, got %+v", st)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale entry not discarded: %+v", st)
	}
}

func TestBumpBetweenPutAndGet(t *testing.T) {
	// A Put that races behind a Bump must come back fresh: Put records the
	// *current* versions.
	c := New[int](1 << 20)
	c.Bump("t")
	c.Put("q", 1, 1, []string{"t"})
	if _, ok := c.Get("q"); !ok {
		t.Fatal("entry filled after bump should be fresh")
	}
}

func TestCostAwareLRUEviction(t *testing.T) {
	c := New[int](100)
	c.Put("a", 1, 40, []string{"t"})
	c.Put("b", 2, 40, []string{"t"})
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be present")
	}
	c.Put("c", 3, 40, []string{"t"})
	if _, ok := c.Peek("b"); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("recently used entry a should survive")
	}
	if _, ok := c.Peek("c"); !ok {
		t.Fatal("new entry c should be admitted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestOversizedNotAdmitted(t *testing.T) {
	c := New[int](100)
	c.Put("small", 1, 10, []string{"t"})
	c.Put("huge", 2, 101, []string{"t"})
	if _, ok := c.Peek("huge"); ok {
		t.Fatal("oversized entry admitted")
	}
	if _, ok := c.Peek("small"); !ok {
		t.Fatal("oversized put evicted unrelated entries")
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("oversized put should not evict, got %+v", st)
	}
}

func TestSetBudgetShrinkEvicts(t *testing.T) {
	c := New[int](100)
	c.Put("a", 1, 40, []string{"t"})
	c.Put("b", 2, 40, []string{"t"})
	c.SetBudget(50)
	st := c.Stats()
	if st.Bytes > 50 || st.Entries != 1 {
		t.Fatalf("shrink did not evict: %+v", st)
	}
}

func TestClear(t *testing.T) {
	c := New[int](100)
	c.Put("a", 1, 10, []string{"t"})
	c.Clear()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("clear left entries: %+v", st)
	}
	// Version counters survive a clear.
	c.Bump("t")
	c.Put("a", 1, 10, []string{"t"})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("post-clear put should be fresh")
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[string](1 << 20)
	calls := 0
	compute := func() (string, int64, error) {
		calls++
		return "r", 5, nil
	}
	v, hit, err := c.Do("k", []string{"t"}, compute)
	if err != nil || hit || v != "r" {
		t.Fatalf("first Do: v=%q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do("k", []string{"t"}, compute)
	if err != nil || !hit || v != "r" {
		t.Fatalf("second Do: v=%q hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[string](1 << 20)
	boom := errors.New("boom")
	_, _, err := c.Do("k", []string{"t"}, func() (string, int64, error) { return "", 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error result cached: %+v", st)
	}
	// Next Do recomputes.
	v, hit, err := c.Do("k", []string{"t"}, func() (string, int64, error) { return "ok", 1, nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("recompute after error: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestSingleFlightCollapsesThunderingHerd(t *testing.T) {
	c := New[int](1 << 20)
	const n = 32
	var calls atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", []string{"t"}, func() (int, int64, error) {
				calls.Add(1)
				// Hold the flight open until all other callers have joined
				// it, so every one of them is provably collapsed (followers
				// bump Collapsed before blocking on the flight).
				for c.Stats().Collapsed < n-1 {
					runtime.Gosched()
				}
				return 42, 1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("thundering herd executed %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Collapsed != n-1 {
		t.Fatalf("want 1 miss / %d collapsed, got %+v", n-1, st)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	// Hammer the cache from many goroutines mixing Do, Get, Bump, Stats and
	// SetBudget; the race detector (verify.sh runs this package under -race)
	// is the assertion.
	c := New[int](1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("q%d", i%7)
				switch i % 5 {
				case 0:
					c.Bump(fmt.Sprintf("t%d", i%3))
				case 1:
					c.Get(key)
				case 2:
					c.Stats()
				default:
					c.Do(key, []string{"t0", "t1"}, func() (int, int64, error) {
						return g*1000 + i, 64, nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNormTables(t *testing.T) {
	got := normTables([]string{"B", "a", "b", "A", "c"})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// Package cache is the semantic query-result cache of the reproduction: a
// zero-dependency (stdlib-only), generic, byte-budgeted LRU keyed by a
// normalized statement fingerprint and guarded by per-table version counters.
//
// The design mirrors the paper's own argument one level up: SELECT RESULTDB
// avoids recomputing and re-shipping redundant denormalized data *within* a
// query; the cache avoids recomputing the same subdatabase *across* queries.
// A server handling the ROADMAP's north-star traffic sees the same JOB-style
// statements over and over — serving a previously computed multi-relation
// result is the single biggest latency and throughput lever available.
//
// Correctness model:
//
//   - Keys are semantic fingerprints produced by the caller (internal/db uses
//     the canonicalized AST rendering from internal/sqlparse), so whitespace,
//     literal formatting, and identifier case do not fragment the cache.
//   - Every entry records the set of base tables the statement reads and the
//     version counter of each table at fill time. Any DML/DDL that touches a
//     table bumps its counter (O(1)); a lookup compares the recorded versions
//     against the current ones (O(#tables), a handful of integers), so a
//     stale entry is never served — invalidation is lazy and constant-time,
//     with no per-entry bookkeeping on the write path.
//   - Admission and eviction are cost-aware: each entry carries its measured
//     wire-encoded byte size, the cache holds a configurable byte budget, and
//     the least-recently-used entries are evicted until the new entry fits.
//     Entries larger than the whole budget are simply not admitted.
//   - Concurrent identical misses are collapsed by single-flight: the first
//     caller computes, everyone else waits for that one execution and shares
//     the value. A thundering herd of N identical queries costs one execution.
//
// The cache stores opaque values (instantiate Cache[V] with the result type);
// callers must treat returned values as immutable shared snapshots.
package cache

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Stats is a point-in-time snapshot of the cache's counters and occupancy.
type Stats struct {
	// Hits counts lookups served from a live entry.
	Hits uint64
	// Misses counts lookups that found no entry (or a stale one) and led to
	// a computation (single-flight followers count as hits-by-collapse, not
	// misses).
	Misses uint64
	// Invalidations counts lookups that found an entry whose table versions
	// had moved on; the entry is discarded at that moment (lazy eviction).
	Invalidations uint64
	// Evictions counts entries evicted to make room under the byte budget.
	Evictions uint64
	// Collapsed counts callers that joined an in-flight identical
	// computation instead of executing it themselves (single-flight).
	Collapsed uint64

	// Entries is the current number of live entries.
	Entries int
	// Bytes is the summed cost of all live entries.
	Bytes int64
	// Budget is the configured byte budget (0 = unlimited admission is NOT
	// supported; a zero budget admits nothing).
	Budget int64
}

// entry is one cached value with its invalidation guard.
type entry struct {
	key    string
	value  any
	bytes  int64
	tables []string // lowercased, sorted, deduplicated
	vers   []uint64 // table versions at fill time, parallel to tables
	elem   *list.Element
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a versioned, byte-budgeted, single-flight LRU. All methods are
// safe for concurrent use. The zero value is not usable; construct with New.
type Cache[V any] struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	lru     *list.List // front = most recently used
	vers    map[string]uint64
	flights map[string]*flight[V]

	hits          uint64
	misses        uint64
	invalidations uint64
	evictions     uint64
	collapsed     uint64
}

// New returns an empty cache with the given byte budget.
func New[V any](budget int64) *Cache[V] {
	return &Cache[V]{
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
		vers:    make(map[string]uint64),
		flights: make(map[string]*flight[V]),
	}
}

// SetBudget changes the byte budget, evicting LRU entries if the cache now
// overflows.
func (c *Cache[V]) SetBudget(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budget
	c.evictToFitLocked(0)
}

// Budget returns the configured byte budget.
func (c *Cache[V]) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// normTables lowercases, sorts and deduplicates a table list so version
// checks are order-insensitive and case-insensitive (matching the engine's
// case-insensitive name resolution).
func normTables(tables []string) []string {
	out := make([]string, 0, len(tables))
	for _, t := range tables {
		out = append(out, strings.ToLower(t))
	}
	sort.Strings(out)
	j := 0
	for i, t := range out {
		if i == 0 || out[j-1] != t {
			out[j] = t
			j++
		}
	}
	return out[:j]
}

// Bump advances the version counter of each named table (case-insensitive),
// making every cache entry that reads one of them stale. O(1) per table; the
// entries themselves are discarded lazily on their next lookup or eviction.
func (c *Cache[V]) Bump(tables ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range tables {
		c.vers[strings.ToLower(t)]++
	}
}

// Clear drops every entry (not the version counters, which must keep
// monotonically increasing so pre-clear fills can never be revived).
func (c *Cache[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry)
	c.lru.Init()
	c.bytes = 0
}

// freshLocked reports whether e's recorded table versions still match.
func (c *Cache[V]) freshLocked(e *entry) bool {
	for i, t := range e.tables {
		if c.vers[t] != e.vers[i] {
			return false
		}
	}
	return true
}

// removeLocked drops e from the map, the LRU list, and the byte accounting.
func (c *Cache[V]) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
}

// lookupLocked returns the live entry for key, discarding it (and counting an
// invalidation) if stale. Does not touch hit/miss counters or LRU order.
func (c *Cache[V]) lookupLocked(key string) *entry {
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	if !c.freshLocked(e) {
		c.invalidations++
		c.removeLocked(e)
		return nil
	}
	return e
}

// Get returns the cached value for key if present and fresh, updating LRU
// order and the hit/miss counters.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.lookupLocked(key); e != nil {
		c.hits++
		c.lru.MoveToFront(e.elem)
		return e.value.(V), true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek reports whether key is present and fresh without counting a hit or a
// miss and without touching LRU order (used by EXPLAIN ANALYZE to annotate
// the plan without perturbing the cache).
func (c *Cache[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && c.freshLocked(e) {
		return e.value.(V), true
	}
	var zero V
	return zero, false
}

// Put admits a value computed against the *current* table versions. Oversized
// values (bytes > budget) are not admitted; otherwise LRU entries are evicted
// until the value fits. A racing entry under the same key is replaced.
func (c *Cache[V]) Put(key string, v V, bytes int64, tables []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, v, bytes, tables)
}

func (c *Cache[V]) putLocked(key string, v V, bytes int64, tables []string) {
	if bytes > c.budget {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	c.evictToFitLocked(bytes)
	norm := normTables(tables)
	e := &entry{key: key, value: v, bytes: bytes, tables: norm, vers: make([]uint64, len(norm))}
	for i, t := range norm {
		e.vers[i] = c.vers[t]
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += bytes
}

// evictToFitLocked evicts least-recently-used entries until incoming more
// bytes fit under the budget.
func (c *Cache[V]) evictToFitLocked(incoming int64) {
	for c.bytes+incoming > c.budget {
		back := c.lru.Back()
		if back == nil {
			return
		}
		c.removeLocked(back.Value.(*entry))
		c.evictions++
	}
}

// Do is the single-flight read-through: it returns the cached value for key
// if fresh (hit=true); otherwise it either joins an identical in-flight
// computation (hit=true, counted as Collapsed) or runs compute itself,
// admits the result with its reported byte cost, and returns it (hit=false).
// Errors are returned to every waiter and never cached.
//
// compute runs without any cache lock held. The caller must guarantee that
// the tables read by the computation cannot change between the version
// capture at miss time and the completed computation (internal/db holds its
// statement-level read lock across Do, which excludes all DML).
func (c *Cache[V]) Do(key string, tables []string, compute func() (V, int64, error)) (V, bool, error) {
	c.mu.Lock()
	if e := c.lookupLocked(key); e != nil {
		c.hits++
		c.lru.MoveToFront(e.elem)
		v := e.value.(V)
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.collapsed++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	c.misses++
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	v, bytes, err := compute()
	f.val, f.err = v, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.putLocked(key, v, bytes, tables)
	}
	c.mu.Unlock()
	close(f.done)
	return v, false, err
}

// The *At variants below are the MVCC-aware surface used by internal/db's
// lock-free read path. Plain Do/Put/Get assume the caller excludes writers
// for the whole lookup-compute-fill window (the pre-MVCC discipline); the
// *At variants instead key every step on an explicitly captured version
// vector — the versions the caller's snapshot pins — so they stay correct
// with writers bumping versions concurrently at any point.

// versionsAt captures verOf over the normalized table list.
func versionsAt(norm []string, verOf func(string) uint64) []uint64 {
	vers := make([]uint64, len(norm))
	for i, t := range norm {
		vers[i] = verOf(t)
	}
	return vers
}

// flightKeyAt builds the single-flight key for a computation pinned at a
// version vector: two identical statements on different snapshots must NOT
// collapse into one execution (they could legitimately need different
// results), so the fingerprint is part of the key.
func flightKeyAt(key string, vers []uint64) string {
	var b strings.Builder
	b.Grow(len(key) + 12*len(vers))
	b.WriteString(key)
	for _, v := range vers {
		b.WriteByte('|')
		b.WriteString(strconv.FormatUint(v, 36))
	}
	return b.String()
}

// matchesAt reports whether entry e was filled at exactly the given
// normalized tables and versions.
func matchesAt(e *entry, norm []string, vers []uint64) bool {
	if len(e.tables) != len(norm) {
		return false
	}
	for i, t := range e.tables {
		if t != norm[i] || e.vers[i] != vers[i] {
			return false
		}
	}
	return true
}

// currentLocked reports whether the captured versions are still the cache's
// current ones — i.e. no writer bumped any of the tables since the capture.
func (c *Cache[V]) currentLocked(norm []string, vers []uint64) bool {
	for i, t := range norm {
		if c.vers[t] != vers[i] {
			return false
		}
	}
	return true
}

// PeekAt reports whether key holds a value filled at exactly the versions
// verOf captures (the caller's snapshot), without counting a hit or a miss
// and without touching LRU order.
func (c *Cache[V]) PeekAt(key string, tables []string, verOf func(string) uint64) (V, bool) {
	norm := normTables(tables)
	vers := versionsAt(norm, verOf)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && matchesAt(e, norm, vers) {
		return e.value.(V), true
	}
	var zero V
	return zero, false
}

// PutAt admits a value computed against the versions verOf captures — but
// only if those versions are still current, i.e. no writer published past
// the caller's snapshot while the value was computed. A stale fill is
// silently dropped: it is correct for its snapshot but must not shadow (or
// be revived as) the newer state.
func (c *Cache[V]) PutAt(key string, v V, bytes int64, tables []string, verOf func(string) uint64) {
	norm := normTables(tables)
	vers := versionsAt(norm, verOf)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.currentLocked(norm, vers) {
		return
	}
	c.putLocked(key, v, bytes, tables)
}

// DoAt is the snapshot-pinned single-flight read-through: the MVCC analogue
// of Do. The caller's computation runs against a pinned snapshot whose
// per-table versions verOf reports; DoAt serves a cached value only when it
// was filled at exactly those versions, collapses concurrent identical
// misses only when they pinned the same versions, and admits the computed
// fill only when the versions are still current at fill time (a fill that
// raced a writer is returned to its caller but not cached). compute runs
// without any cache lock held and needs no external synchronization — the
// snapshot it reads is immutable.
func (c *Cache[V]) DoAt(key string, tables []string, verOf func(string) uint64, compute func() (V, int64, error)) (V, bool, error) {
	norm := normTables(tables)
	vers := versionsAt(norm, verOf)
	fkey := flightKeyAt(key, vers)
	c.mu.Lock()
	if e := c.lookupLocked(key); e != nil && matchesAt(e, norm, vers) {
		c.hits++
		c.lru.MoveToFront(e.elem)
		v := e.value.(V)
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[fkey]; ok {
		c.collapsed++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	c.misses++
	f := &flight[V]{done: make(chan struct{})}
	c.flights[fkey] = f
	c.mu.Unlock()

	v, bytes, err := compute()
	f.val, f.err = v, err

	c.mu.Lock()
	delete(c.flights, fkey)
	if err == nil && c.currentLocked(norm, vers) {
		c.putLocked(key, v, bytes, tables)
	}
	c.mu.Unlock()
	close(f.done)
	return v, false, err
}

// Stats snapshots the counters and occupancy.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Collapsed:     c.collapsed,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		Budget:        c.budget,
	}
}

package colstore

import (
	"resultdb/internal/parallel"
)

// CmpOp enumerates the comparison operators kernels implement.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// EvalCmp applies op to a types.Compare-style three-way result.
func EvalCmp(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// Kernel is one compiled predicate over a frame: it narrows a selection under
// SQL predicate semantics (rows whose predicate result is FALSE or NULL are
// dropped). FilterDense appends the passing indices of the dense range
// [lo,hi) to dst; FilterSel does the same for an existing selection. Both
// keep indices ascending, so kernels chain into conjunctions.
type Kernel interface {
	FilterDense(lo, hi int, dst []int32) []int32
	FilterSel(sel, dst []int32) []int32
}

// ---- constant ----

type constKernel struct{ pass bool }

// NewConstKernel returns a kernel passing everything or nothing (predicates
// that fold to a constant, e.g. comparison against a NULL literal).
func NewConstKernel(pass bool) Kernel { return &constKernel{pass: pass} }

func (k *constKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	if !k.pass {
		return dst
	}
	for i := lo; i < hi; i++ {
		dst = append(dst, int32(i))
	}
	return dst
}

func (k *constKernel) FilterSel(sel, dst []int32) []int32 {
	if !k.pass {
		return dst
	}
	return append(dst, sel...)
}

// ---- non-null constant ----

type nonNullKernel struct{ col Column }

// NewNonNullKernel returns a kernel keeping exactly the non-NULL rows of col
// (predicates whose result is constant TRUE for every non-NULL value — e.g.
// cross-kind comparisons, which order by kind tag).
func NewNonNullKernel(col Column) Kernel { return &nonNullKernel{col: col} }

func (k *nonNullKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if !k.col.Null(i) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *nonNullKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if !k.col.Null(int(i)) {
			dst = append(dst, i)
		}
	}
	return dst
}

// ---- numeric comparison ----

type intCmpKernel struct {
	vals  []int64
	nulls *Bitmap
	op    CmpOp
	rhs   float64
}

type floatCmpKernel struct {
	vals  []float64
	nulls *Bitmap
	op    CmpOp
	rhs   float64
}

// NewNumCmpKernel compiles `col op rhs` for a numeric column and numeric
// literal (numeric kinds compare by float64 value, mirroring types.Compare).
// ok is false when col is not a typed numeric column.
func NewNumCmpKernel(col Column, op CmpOp, rhs float64) (Kernel, bool) {
	switch c := col.(type) {
	case *Int64Column:
		return &intCmpKernel{vals: c.Vals, nulls: c.Nulls, op: op, rhs: rhs}, true
	case *Float64Column:
		return &floatCmpKernel{vals: c.Vals, nulls: c.Nulls, op: op, rhs: rhs}, true
	}
	return nil, false
}

// cmp3 is types.Compare restricted to non-NULL numerics: three-way by float
// value, with the same (unusual) NaN behavior — NaN is neither less nor
// greater, so Compare reports 0. Kernels must reproduce that bit-for-bit.
func cmp3(v, rhs float64) int {
	switch {
	case v < rhs:
		return -1
	case v > rhs:
		return 1
	default:
		return 0
	}
}

func cmpPass(op CmpOp, v, rhs float64) bool {
	return EvalCmp(op, cmp3(v, rhs))
}

func (k *intCmpKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if !k.nulls.Get(i) && cmpPass(k.op, float64(k.vals[i]), k.rhs) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *intCmpKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if !k.nulls.Get(int(i)) && cmpPass(k.op, float64(k.vals[i]), k.rhs) {
			dst = append(dst, i)
		}
	}
	return dst
}

func (k *floatCmpKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if !k.nulls.Get(i) && cmpPass(k.op, k.vals[i], k.rhs) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *floatCmpKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if !k.nulls.Get(int(i)) && cmpPass(k.op, k.vals[i], k.rhs) {
			dst = append(dst, i)
		}
	}
	return dst
}

// ---- numeric BETWEEN ----

type intBetweenKernel struct {
	vals   []int64
	nulls  *Bitmap
	lo, hi float64
	not    bool
}

type floatBetweenKernel struct {
	vals   []float64
	nulls  *Bitmap
	lo, hi float64
	not    bool
}

// NewNumBetweenKernel compiles `col [NOT] BETWEEN lo AND hi` for a numeric
// column with numeric bounds. ok is false for non-numeric columns.
func NewNumBetweenKernel(col Column, lo, hi float64, not bool) (Kernel, bool) {
	switch c := col.(type) {
	case *Int64Column:
		return &intBetweenKernel{vals: c.Vals, nulls: c.Nulls, lo: lo, hi: hi, not: not}, true
	case *Float64Column:
		return &floatBetweenKernel{vals: c.Vals, nulls: c.Nulls, lo: lo, hi: hi, not: not}, true
	}
	return nil, false
}

func (k *intBetweenKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if k.nulls.Get(i) {
			continue
		}
		v := float64(k.vals[i])
		if (cmp3(v, k.lo) >= 0 && cmp3(v, k.hi) <= 0) != k.not {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *intBetweenKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if k.nulls.Get(int(i)) {
			continue
		}
		v := float64(k.vals[i])
		if (cmp3(v, k.lo) >= 0 && cmp3(v, k.hi) <= 0) != k.not {
			dst = append(dst, i)
		}
	}
	return dst
}

func (k *floatBetweenKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if k.nulls.Get(i) {
			continue
		}
		v := k.vals[i]
		if (cmp3(v, k.lo) >= 0 && cmp3(v, k.hi) <= 0) != k.not {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *floatBetweenKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if k.nulls.Get(int(i)) {
			continue
		}
		v := k.vals[i]
		if (cmp3(v, k.lo) >= 0 && cmp3(v, k.hi) <= 0) != k.not {
			dst = append(dst, i)
		}
	}
	return dst
}

// ---- numeric IN list ----

type numInKernel struct {
	col     Column // *Int64Column or *Float64Column, accessed via fast paths below
	ivals   []int64
	fvals   []float64
	nulls   *Bitmap
	items   []float64
	not     bool
	sawNull bool
}

// NewNumInKernel compiles `col [NOT] IN (items...)` for a numeric column:
// items are the numeric list literals, sawNull whether the list contained a
// NULL literal (which turns every non-match into UNKNOWN — dropping the row,
// and under NOT IN dropping every row). Non-numeric list items can never
// equal a numeric value (types.Compare orders distinct kinds) and must be
// omitted by the caller. ok is false for non-numeric columns.
func NewNumInKernel(col Column, items []float64, not, sawNull bool) (Kernel, bool) {
	k := &numInKernel{items: items, not: not, sawNull: sawNull}
	switch c := col.(type) {
	case *Int64Column:
		k.ivals, k.nulls = c.Vals, c.Nulls
	case *Float64Column:
		k.fvals, k.nulls = c.Vals, c.Nulls
	default:
		return nil, false
	}
	return k, true
}

func (k *numInKernel) pass(i int) bool {
	if k.nulls.Get(i) {
		return false
	}
	var v float64
	if k.ivals != nil {
		v = float64(k.ivals[i])
	} else {
		v = k.fvals[i]
	}
	for _, it := range k.items {
		if cmp3(v, it) == 0 {
			return !k.not
		}
	}
	if k.sawNull {
		return false // UNKNOWN under 3VL
	}
	return k.not
}

func (k *numInKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if k.pass(i) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *numInKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if k.pass(int(i)) {
			dst = append(dst, i)
		}
	}
	return dst
}

// ---- bool comparison ----

type boolKernel struct {
	vals                []bool
	nulls               *Bitmap
	passTrue, passFalse bool
}

// NewBoolKernel compiles a predicate over a BOOLEAN column from its truth
// table: whether TRUE rows and FALSE rows pass (NULL rows never do).
func NewBoolKernel(col *BoolColumn, passTrue, passFalse bool) Kernel {
	return &boolKernel{vals: col.Vals, nulls: col.Nulls, passTrue: passTrue, passFalse: passFalse}
}

func (k *boolKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if k.nulls.Get(i) {
			continue
		}
		if (k.vals[i] && k.passTrue) || (!k.vals[i] && k.passFalse) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *boolKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if k.nulls.Get(int(i)) {
			continue
		}
		if (k.vals[i] && k.passTrue) || (!k.vals[i] && k.passFalse) {
			dst = append(dst, i)
		}
	}
	return dst
}

// ---- dictionary text predicate ----

type dictKernel struct {
	codes []uint32
	nulls *Bitmap
	keep  []bool
}

// NewDictKernel compiles any text predicate (comparison, LIKE, IN, BETWEEN —
// against literals) into a per-dictionary-code keep mask: the predicate was
// evaluated once per distinct string (see TextColumn.Keep), the kernel is a
// lookup per row.
func NewDictKernel(col *TextColumn, keep []bool) Kernel {
	return &dictKernel{codes: col.Codes, nulls: col.Nulls, keep: keep}
}

func (k *dictKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if !k.nulls.Get(i) && k.keep[k.codes[i]] {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *dictKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if !k.nulls.Get(int(i)) && k.keep[k.codes[i]] {
			dst = append(dst, i)
		}
	}
	return dst
}

// ---- IS [NOT] NULL ----

type isNullKernel struct {
	col Column
	not bool
}

// NewIsNullKernel compiles `col IS [NOT] NULL` over any column.
func NewIsNullKernel(col Column, not bool) Kernel {
	return &isNullKernel{col: col, not: not}
}

func (k *isNullKernel) FilterDense(lo, hi int, dst []int32) []int32 {
	for i := lo; i < hi; i++ {
		if k.col.Null(i) != k.not {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

func (k *isNullKernel) FilterSel(sel, dst []int32) []int32 {
	for _, i := range sel {
		if k.col.Null(int(i)) != k.not {
			dst = append(dst, i)
		}
	}
	return dst
}

// RunKernels evaluates a conjunction of kernels over the dense row domain
// [0, n), chunked across the worker pool at degree par with the usual
// deterministic ordered merge: the first kernel runs dense over each chunk,
// later kernels compact the chunk's selection vector in place. The result is
// the ascending selection of rows passing every kernel (never nil, so an
// empty result is distinguishable from a nil "all rows" selection). kernels
// must be non-empty.
func RunKernels(n int, kernels []Kernel, par int) []int32 {
	out := parallel.Map(n, par, func(lo, hi int) []int32 {
		dst := kernels[0].FilterDense(lo, hi, make([]int32, 0, hi-lo))
		for _, k := range kernels[1:] {
			if len(dst) == 0 {
				break
			}
			// In-place compaction: the write cursor never passes the read
			// cursor, so filtering dst into dst[:0] is safe.
			dst = k.FilterSel(dst, dst[:0])
		}
		return dst
	})
	if out == nil {
		out = []int32{}
	}
	return out
}

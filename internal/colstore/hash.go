package colstore

import (
	"resultdb/internal/parallel"
	"resultdb/internal/types"
)

// Key addresses the join-key columns of one input, columnar when a View is
// available and row-major otherwise, so vectorized joins can mix sides (a
// scanned base table against a folded intermediate, say). Hashing is the
// allocation-free inlined FNV-1a of internal/types in both forms, so a
// columnar build probes a row-major set (and vice versa) with identical
// hashes — and identical Bloom filter bits.
type Key struct {
	view *View
	rows []types.Row
	cols []int
}

// ViewKey addresses cols of v's selected rows.
func ViewKey(v *View, cols []int) Key { return Key{view: v, cols: cols} }

// RowsKey addresses cols of a row slice (the fallback form).
func RowsKey(rows []types.Row, cols []int) Key { return Key{rows: rows, cols: cols} }

// Len returns the number of keyed rows.
func (k Key) Len() int {
	if k.view != nil {
		return k.view.Len()
	}
	return len(k.rows)
}

// HasNull reports whether logical row j's key contains NULL.
func (k Key) HasNull(j int) bool {
	if k.view != nil {
		return k.view.Frame.KeyHasNull(k.view.Index(j), k.cols)
	}
	r := k.rows[j]
	for _, c := range k.cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// Hash returns the composite FNV-1a key hash of logical row j, identical to
// types.Row.HashKey on the materialized row.
func (k Key) Hash(j int) uint64 {
	if k.view != nil {
		return k.view.Frame.HashKey(k.view.Index(j), k.cols)
	}
	return k.rows[j].HashKey(k.cols)
}

// value returns key column c (position in the key, not the schema) of
// logical row j.
func (k Key) value(j, c int) types.Value {
	if k.view != nil {
		return k.view.Frame.Col(k.cols[c]).Value(k.view.Index(j))
	}
	return k.rows[j][k.cols[c]]
}

// KeysEqual reports whether row i of a and row j of b agree on their key
// columns under types.Equal (grouping semantics — both sides are known
// non-NULL when this runs after a hash match).
func KeysEqual(a Key, i int, b Key, j int) bool {
	for c := range a.cols {
		if !types.Equal(a.value(i, c), b.value(j, c)) {
			return false
		}
	}
	return true
}

// KeySet is the vectorized semi-join build side: a hash set of the distinct
// non-NULL keys of one input, probed by membership. Unlike the row-path
// types.KeySet it stores row positions, not projected key rows, so neither
// build nor probe allocates per row.
type KeySet struct {
	src     Key
	buckets map[uint64][]int32
	n       int
}

// NewKeySet returns an empty set over src's keys.
func NewKeySet(src Key) *KeySet {
	return &KeySet{src: src, buckets: make(map[uint64][]int32)}
}

// Add inserts logical row j's key; NULL keys are skipped, duplicates kept
// once (collision buckets hold one position per distinct key).
func (s *KeySet) Add(j int) {
	if s.src.HasNull(j) {
		return
	}
	h := s.src.Hash(j)
	for _, pos := range s.buckets[h] {
		if KeysEqual(s.src, int(pos), s.src, j) {
			return
		}
	}
	s.buckets[h] = append(s.buckets[h], int32(j))
	s.n++
}

// Contains reports whether probe row j's key is present. NULL keys never
// match.
func (s *KeySet) Contains(p Key, j int) bool {
	if p.HasNull(j) {
		return false
	}
	h := p.Hash(j)
	for _, pos := range s.buckets[h] {
		if KeysEqual(s.src, int(pos), p, j) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys.
func (s *KeySet) Len() int { return s.n }

// HashTable is the vectorized join build side: key hash → ascending build
// row positions, hash-partitioned so it can be built in parallel (same
// two-phase morsel scheme, and the same ascending-positions invariant, as
// the row path's engine hash table).
type HashTable struct {
	src   Key
	parts []map[uint64][]int32
}

// BuildHashTable indexes src's rows by key hash at degree par. NULL keys are
// skipped.
func BuildHashTable(src Key, par int) *HashTable {
	n := src.Len()
	nc := parallel.Chunks(n, par)
	if nc <= 1 {
		m := make(map[uint64][]int32, n)
		for j := 0; j < n; j++ {
			if src.HasNull(j) {
				continue
			}
			h := src.Hash(j)
			m[h] = append(m[h], int32(j))
		}
		return &HashTable{src: src, parts: []map[uint64][]int32{m}}
	}

	type entry struct {
		h   uint64
		pos int32
	}
	P := nc
	locals := make([][][]entry, nc)
	parallel.ForChunks(n, par, func(chunk, lo, hi int) {
		local := make([][]entry, P)
		est := (hi-lo)/P + 1
		for p := range local {
			local[p] = make([]entry, 0, est)
		}
		for j := lo; j < hi; j++ {
			if src.HasNull(j) {
				continue
			}
			h := src.Hash(j)
			local[h%uint64(P)] = append(local[h%uint64(P)], entry{h: h, pos: int32(j)})
		}
		locals[chunk] = local
	})

	parts := make([]map[uint64][]int32, P)
	parallel.Each(P, par, func(p int) {
		total := 0
		for c := 0; c < nc; c++ {
			total += len(locals[c][p])
		}
		m := make(map[uint64][]int32, total)
		for c := 0; c < nc; c++ { // chunk order => ascending positions
			for _, e := range locals[c][p] {
				m[e.h] = append(m[e.h], e.pos)
			}
		}
		parts[p] = m
	})
	return &HashTable{src: src, parts: parts}
}

// Each invokes yield for every build position whose key equals probe row j's
// key, in ascending position order. NULL probes match nothing.
func (t *HashTable) Each(p Key, j int, yield func(pos int32)) {
	if p.HasNull(j) {
		return
	}
	h := p.Hash(j)
	var bucket []int32
	if len(t.parts) == 1 {
		bucket = t.parts[0][h]
	} else {
		bucket = t.parts[h%uint64(len(t.parts))][h]
	}
	for _, pos := range bucket {
		if KeysEqual(t.src, int(pos), p, j) {
			yield(pos)
		}
	}
}

package colstore

import (
	"math/rand"
	"testing"

	"resultdb/internal/types"
)

// randomTypedRows builds rows whose column j values match kinds[j] (or NULL
// with probability nullP).
func randomTypedRows(rng *rand.Rand, kinds []types.Kind, n int, nullP float64, dictSize int) []types.Row {
	words := make([]string, dictSize)
	for i := range words {
		words[i] = "w" + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	rows := make([]types.Row, n)
	for i := range rows {
		r := make(types.Row, len(kinds))
		for j, k := range kinds {
			if rng.Float64() < nullP {
				r[j] = types.Null()
				continue
			}
			switch k {
			case types.KindInt:
				r[j] = types.NewInt(rng.Int63n(1000) - 500)
			case types.KindFloat:
				r[j] = types.NewFloat(rng.NormFloat64() * 100)
			case types.KindBool:
				r[j] = types.NewBool(rng.Intn(2) == 0)
			default:
				r[j] = types.NewText(words[rng.Intn(len(words))])
			}
		}
		rows[i] = r
	}
	return rows
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindText, types.KindBool}
	rows := randomTypedRows(rng, kinds, 777, 0.15, 7)
	for _, par := range []int{1, 4} {
		f := NewFrameDegree(kinds, rows, par)
		if f.Rows() != len(rows) || f.NumCols() != len(kinds) {
			t.Fatalf("par=%d: frame shape %dx%d, want %dx%d", par, f.Rows(), f.NumCols(), len(rows), len(kinds))
		}
		// Typed columns must have been chosen (no fallback for conforming data).
		if _, ok := f.Col(0).(*Int64Column); !ok {
			t.Fatalf("col 0 is %T, want *Int64Column", f.Col(0))
		}
		if _, ok := f.Col(1).(*Float64Column); !ok {
			t.Fatalf("col 1 is %T, want *Float64Column", f.Col(1))
		}
		if _, ok := f.Col(2).(*TextColumn); !ok {
			t.Fatalf("col 2 is %T, want *TextColumn", f.Col(2))
		}
		if _, ok := f.Col(3).(*BoolColumn); !ok {
			t.Fatalf("col 3 is %T, want *BoolColumn", f.Col(3))
		}
		for i, r := range rows {
			for j := range kinds {
				got := f.Col(j).Value(i)
				if got.Kind() != r[j].Kind() || !types.Equal(got, r[j]) && !(got.IsNull() && r[j].IsNull()) {
					t.Fatalf("par=%d: Value(%d,%d) = %v (%s), want %v (%s)",
						par, i, j, got, got.Kind(), r[j], r[j].Kind())
				}
				if f.Col(j).Null(i) != r[j].IsNull() {
					t.Fatalf("Null(%d,%d) mismatch", i, j)
				}
			}
		}
	}
}

func TestFrameAnyFallback(t *testing.T) {
	// An INTEGER column holding a float value must fall back to AnyColumn and
	// reconstruct the float exactly (no widening/narrowing).
	rows := []types.Row{
		{types.NewInt(1)},
		{types.NewFloat(2.5)},
		{types.Null()},
	}
	f := NewFrame([]types.Kind{types.KindInt}, rows)
	if _, ok := f.Col(0).(*AnyColumn); !ok {
		t.Fatalf("col is %T, want *AnyColumn", f.Col(0))
	}
	for i, r := range rows {
		got := f.Col(0).Value(i)
		if got.Kind() != r[0].Kind() {
			t.Fatalf("row %d: kind %s, want %s", i, got.Kind(), r[0].Kind())
		}
	}
}

func TestFrameHashMatchesRowHash(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	kinds := []types.Kind{types.KindText, types.KindInt, types.KindText, types.KindFloat, types.KindBool}
	rows := randomTypedRows(rng, kinds, 500, 0.2, 3) // small dict: heavy fast-path reuse
	f := NewFrame(kinds, rows)
	keySets := [][]int{
		{0},          // single text key: dictionary fast path
		{2, 0},       // text chained after text: byte-walk path
		{1, 2},       // text in chained (non-offset) state
		{3, 1},       // numerics
		{4, 0, 1, 2}, // everything
	}
	for _, cols := range keySets {
		for i, r := range rows {
			if got, want := f.HashKey(i, cols), r.HashKey(cols); got != want {
				t.Fatalf("HashKey(%d, %v) = %#x, want %#x (row %v)", i, cols, got, want, r)
			}
			wantNull := false
			for _, c := range cols {
				wantNull = wantNull || r[c].IsNull()
			}
			if got := f.KeyHasNull(i, cols); got != wantNull {
				t.Fatalf("KeyHasNull(%d, %v) = %v, want %v", i, cols, got, wantNull)
			}
		}
	}
	// Degenerate dictionaries: all-equal and all-distinct TEXT.
	for name, gen := range map[string]func(i int) string{
		"all-equal":    func(int) string { return "same" },
		"all-distinct": func(i int) string { return "v" + string(rune('0'+i%10)) + string(rune('a'+i/10%26)) + string(rune('a'+i/260)) },
	} {
		rows := make([]types.Row, 300)
		for i := range rows {
			rows[i] = types.Row{types.NewText(gen(i))}
		}
		f := NewFrame([]types.Kind{types.KindText}, rows)
		for i, r := range rows {
			if got, want := f.HashKey(i, []int{0}), r.HashKey([]int{0}); got != want {
				t.Fatalf("%s: HashKey(%d) mismatch", name, i)
			}
		}
	}
}

func TestBitmap(t *testing.T) {
	var nilB *Bitmap
	if nilB.Get(5) || nilB.Count() != 0 {
		t.Fatal("nil bitmap must be all-clear")
	}
	b := newBitmap(130)
	for _, i := range []int{0, 63, 64, 129, 64} { // 64 set twice
		b.set(i)
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 63 || i == 64 || i == 129
		if b.Get(i) != want {
			t.Fatalf("Get(%d) = %v, want %v", i, b.Get(i), want)
		}
	}
}

// rowwiseSelect evaluates pass over every row index — the oracle kernels must
// reproduce.
func rowwiseSelect(n int, pass func(i int) bool) []int32 {
	out := []int32{}
	for i := 0; i < n; i++ {
		if pass(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sameSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKernelsMatchRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindText, types.KindBool}
	rows := randomTypedRows(rng, kinds, 2000, 0.25, 5)
	f := NewFrame(kinds, rows)
	ic := f.Col(0).(*Int64Column)
	fc := f.Col(1).(*Float64Column)
	tc := f.Col(2).(*TextColumn)
	bc := f.Col(3).(*BoolColumn)

	cases := []struct {
		name   string
		kernel Kernel
		ok     bool
		pass   func(r types.Row) bool
	}{}
	add := func(name string, k Kernel, ok bool, pass func(r types.Row) bool) {
		cases = append(cases, struct {
			name   string
			kernel Kernel
			ok     bool
			pass   func(r types.Row) bool
		}{name, k, ok, pass})
	}

	k1, ok1 := NewNumCmpKernel(ic, CmpGt, 100)
	add("int>100", k1, ok1, func(r types.Row) bool {
		return !r[0].IsNull() && r[0].Float() > 100
	})
	k2, ok2 := NewNumCmpKernel(fc, CmpLe, -5.5)
	add("float<=-5.5", k2, ok2, func(r types.Row) bool {
		return !r[1].IsNull() && r[1].Float() <= -5.5
	})
	k3, ok3 := NewNumBetweenKernel(ic, -100, 200, false)
	add("int between", k3, ok3, func(r types.Row) bool {
		return !r[0].IsNull() && r[0].Float() >= -100 && r[0].Float() <= 200
	})
	k4, ok4 := NewNumBetweenKernel(fc, -50, 50, true)
	add("float not between", k4, ok4, func(r types.Row) bool {
		return !r[1].IsNull() && !(r[1].Float() >= -50 && r[1].Float() <= 50)
	})
	k5, ok5 := NewNumInKernel(ic, []float64{1, 2, 3, 400}, false, false)
	add("int in", k5, ok5, func(r types.Row) bool {
		if r[0].IsNull() {
			return false
		}
		v := r[0].Float()
		return v == 1 || v == 2 || v == 3 || v == 400
	})
	k6, ok6 := NewNumInKernel(ic, []float64{1, 2}, true, false)
	add("int not in", k6, ok6, func(r types.Row) bool {
		if r[0].IsNull() {
			return false
		}
		v := r[0].Float()
		return v != 1 && v != 2
	})
	k7, ok7 := NewNumInKernel(ic, []float64{1, 2}, true, true)
	add("int not in (with NULL item)", k7, ok7, func(r types.Row) bool {
		return false // every non-match is UNKNOWN; matches fail NOT IN
	})
	add("text=", NewDictKernel(tc, tc.Keep(func(s string) bool { return s == tc.Dict[0] })), true, func(r types.Row) bool {
		return !r[2].IsNull() && r[2].Text() == tc.Dict[0]
	})
	add("text prefix", NewDictKernel(tc, tc.Keep(func(s string) bool { return len(s) > 0 && s[0] == 'w' })), true, func(r types.Row) bool {
		return !r[2].IsNull() && len(r[2].Text()) > 0 && r[2].Text()[0] == 'w'
	})
	add("bool true", NewBoolKernel(bc, true, false), true, func(r types.Row) bool {
		return !r[3].IsNull() && r[3].Bool()
	})
	add("is null", NewIsNullKernel(ic, false), true, func(r types.Row) bool {
		return r[0].IsNull()
	})
	add("is not null", NewIsNullKernel(tc, true), true, func(r types.Row) bool {
		return !r[2].IsNull()
	})
	add("const false", NewConstKernel(false), true, func(types.Row) bool { return false })
	add("non-null", NewNonNullKernel(fc), true, func(r types.Row) bool { return !r[1].IsNull() })

	for _, c := range cases {
		if !c.ok {
			t.Fatalf("%s: constructor rejected typed column", c.name)
		}
		want := rowwiseSelect(len(rows), func(i int) bool { return c.pass(rows[i]) })
		for _, par := range []int{1, 4} {
			got := RunKernels(len(rows), []Kernel{c.kernel}, par)
			if !sameSel(got, want) {
				t.Fatalf("%s par=%d: %d rows selected, want %d", c.name, par, len(got), len(want))
			}
		}
	}

	// Conjunction chain, all pars, must equal rowwise AND in the same order.
	chain := []Kernel{k3, cases[8].kernel, NewIsNullKernel(fc, true)}
	want := rowwiseSelect(len(rows), func(i int) bool {
		r := rows[i]
		return cases[2].pass(r) && cases[8].pass(r) && !r[1].IsNull()
	})
	for _, par := range []int{1, 2, 8} {
		got := RunKernels(len(rows), chain, par)
		if !sameSel(got, want) {
			t.Fatalf("chain par=%d: %d rows, want %d", par, len(got), len(want))
		}
	}

	// NewNumCmpKernel must reject non-numeric columns.
	if _, ok := NewNumCmpKernel(tc, CmpEq, 0); ok {
		t.Fatal("NumCmpKernel accepted a text column")
	}
	if _, ok := NewNumInKernel(bc, nil, false, false); ok {
		t.Fatal("NumInKernel accepted a bool column")
	}
}

func TestViewNarrow(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	rows := make([]types.Row, 10)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i))}
	}
	f := NewFrame(kinds, rows)
	all := &View{Frame: f}
	if all.Len() != 10 || all.Index(7) != 7 {
		t.Fatal("nil-Sel view must cover all rows")
	}
	v := all.Narrow([]int32{1, 3, 5, 9})
	if v.Len() != 4 || v.Index(2) != 5 {
		t.Fatalf("narrowed view wrong: len %d index(2)=%d", v.Len(), v.Index(2))
	}
	w := v.Narrow([]int32{0, 3})
	if w.Len() != 2 || w.Index(0) != 1 || w.Index(1) != 9 {
		t.Fatalf("double narrow wrong: %v", w.Sel)
	}
}

func TestKeySetMatchesRowKeySet(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	kinds := []types.Kind{types.KindText, types.KindInt}
	build := randomTypedRows(rng, kinds, 600, 0.2, 4)
	probe := randomTypedRows(rng, kinds, 600, 0.2, 4)
	cols := []int{0, 1}

	bf := NewFrame(kinds, build)
	bv := &View{Frame: bf}

	ref := types.NewKeySet()
	for _, r := range build {
		ref.AddKey(r, cols)
	}

	for name, pk := range map[string]Key{
		"columnar": ViewKey(&View{Frame: NewFrame(kinds, probe)}, cols),
		"rowmajor": RowsKey(probe, cols),
	} {
		s := NewKeySet(ViewKey(bv, cols))
		for j := 0; j < len(build); j++ {
			s.Add(j)
		}
		if s.Len() != ref.Len() {
			t.Fatalf("%s: KeySet.Len = %d, want %d", name, s.Len(), ref.Len())
		}
		for j, r := range probe {
			if got, want := s.Contains(pk, j), ref.ContainsKey(r, cols); got != want {
				t.Fatalf("%s: Contains(row %d %v) = %v, want %v", name, j, r, got, want)
			}
		}
	}

	// Row-major build side too.
	s := NewKeySet(RowsKey(build, cols))
	for j := range build {
		s.Add(j)
	}
	if s.Len() != ref.Len() {
		t.Fatalf("rows-build: Len = %d, want %d", s.Len(), ref.Len())
	}
}

func TestHashTableMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	kinds := []types.Kind{types.KindInt, types.KindText}
	build := randomTypedRows(rng, kinds, 2500, 0.15, 3)
	probe := randomTypedRows(rng, kinds, 400, 0.15, 3)
	cols := []int{1, 0}

	bf := NewFrame(kinds, build)
	bk := ViewKey(&View{Frame: bf}, cols)
	pk := RowsKey(probe, cols)

	for _, par := range []int{1, 4} {
		ht := BuildHashTable(bk, par)
		for j, pr := range probe {
			var got []int32
			ht.Each(pk, j, func(pos int32) { got = append(got, pos) })
			// Naive oracle: scan build side with row-path key equality.
			var want []int32
			prNull := false
			for _, c := range cols {
				prNull = prNull || pr[c].IsNull()
			}
			if !prNull {
				for i, br := range build {
					match, bNull := true, false
					for _, c := range cols {
						bNull = bNull || br[c].IsNull()
						if !types.Equal(br[c], pr[c]) {
							match = false
						}
					}
					if match && !bNull {
						want = append(want, int32(i))
					}
				}
			}
			if !sameSel(got, want) {
				t.Fatalf("par=%d probe %d: positions %v, want %v", par, j, got, want)
			}
		}
	}
}

// TestKeyMixedSides locks in the interop rule: a columnar build probed by a
// row-major key (and vice versa) behaves identically, because both hash with
// the same inlined FNV-1a.
func TestKeyMixedSides(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	kinds := []types.Kind{types.KindText, types.KindFloat}
	rows := randomTypedRows(rng, kinds, 300, 0.3, 2)
	f := NewFrame(kinds, rows)
	ck := ViewKey(&View{Frame: f}, []int{0, 1})
	rk := RowsKey(rows, []int{0, 1})
	for j := range rows {
		if ck.Hash(j) != rk.Hash(j) {
			t.Fatalf("row %d: columnar hash %#x != row hash %#x", j, ck.Hash(j), rk.Hash(j))
		}
		if ck.HasNull(j) != rk.HasNull(j) {
			t.Fatalf("row %d: HasNull disagrees", j)
		}
		if !KeysEqual(ck, j, rk, j) && !ck.HasNull(j) {
			t.Fatalf("row %d: KeysEqual(self) false", j)
		}
	}
}

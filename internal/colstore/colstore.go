// Package colstore is the columnar execution layer of the reproduction:
// per-table typed column vectors with null bitmaps and a dictionary-encoded
// TEXT representation, plus the selection-vector kernels (typed predicate
// evaluation, allocation-free FNV key hashing, key-set / hash-table
// build-probe) the engine's vectorized operators run on.
//
// Design rules:
//
//   - Bit-identical to the row path. Every primitive reproduces the exact
//     semantics of its row-major counterpart: Column.Value reconstructs the
//     stored types.Value (kind included), Column.HashFNV advances the FNV-1a
//     state by exactly the byte stream types.Value.HashInto defines, and
//     kernels implement the engine's three-valued predicate semantics
//     (NULL never passes). A query answered through colstore produces the
//     same rows, in the same order, with the same wire encoding, as the
//     row-at-a-time fallback — the differential gates in internal/wire lock
//     this in.
//   - Late materialization. Operators pass ascending selection vectors of
//     row indices; rows are gathered back to types.Row only when results
//     materialize. Gathers are pointer copies from the backing row slice.
//   - Zero dependencies beyond internal/types and internal/parallel. Columns
//     are plain slices; the dictionary is a first-occurrence-ordered string
//     table with per-entry precomputed hashes.
//
// Frames are built lazily from storage.Table rows and cached alongside the
// table's hash indexes, invalidated by the same generation counter (see
// storage.Table.Columns).
//
// Under the MVCC regime a frame belongs to exactly one published table
// version: versions are immutable once visible, so a frame, once built, is
// itself immutable and may be shared freely by every snapshot that pins its
// version — concurrent readers of the same version race only on the build
// (serialized inside storage.Table.Columns), never on the contents. A
// writer's draft starts with no frame; the frame for the successor version
// is built lazily by whichever reader first needs it.
package colstore

import (
	"math"

	"resultdb/internal/parallel"
	"resultdb/internal/types"
)

// Bitmap is a null bitmap: bit i set means row i is NULL. The nil *Bitmap is
// the common no-nulls case; Get on it is false.
type Bitmap struct {
	words []uint64
	n     int // number of set bits
}

func newBitmap(rows int) *Bitmap {
	return &Bitmap{words: make([]uint64, (rows+63)/64)}
}

func (b *Bitmap) set(i int) {
	w := &b.words[i>>6]
	mask := uint64(1) << (i & 63)
	if *w&mask == 0 {
		*w |= mask
		b.n++
	}
}

// Get reports whether row i is NULL. Safe on a nil receiver (no nulls).
func (b *Bitmap) Get(i int) bool {
	if b == nil {
		return false
	}
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// Count returns the number of NULL rows. Safe on a nil receiver.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Column is one typed vector of a Frame. Implementations reconstruct the
// exact stored value (Value), test NULL without materializing (Null), and
// advance a running FNV-1a hash state by the value's canonical hash encoding
// (HashFNV) — byte-identical to types.Value.HashFNV on the stored value.
type Column interface {
	Len() int
	Null(i int) bool
	Value(i int) types.Value
	HashFNV(i int, h uint64) uint64
}

// Int64Column stores an INTEGER column as raw int64s plus a null bitmap.
type Int64Column struct {
	Vals  []int64
	Nulls *Bitmap
}

func (c *Int64Column) Len() int        { return len(c.Vals) }
func (c *Int64Column) Null(i int) bool { return c.Nulls.Get(i) }

func (c *Int64Column) Value(i int) types.Value {
	if c.Nulls.Get(i) {
		return types.Null()
	}
	return types.NewInt(c.Vals[i])
}

func (c *Int64Column) HashFNV(i int, h uint64) uint64 {
	if c.Nulls.Get(i) {
		return types.FNVByte(h, 0)
	}
	// Numeric values hash by the float bit pattern (see types.Value.HashInto)
	// so INTEGER 1 and DOUBLE 1.0 hash identically.
	return types.FNVUint64LE(types.FNVByte(h, 1), math.Float64bits(float64(c.Vals[i])))
}

// Float64Column stores a DOUBLE column as raw float64s plus a null bitmap.
type Float64Column struct {
	Vals  []float64
	Nulls *Bitmap
}

func (c *Float64Column) Len() int        { return len(c.Vals) }
func (c *Float64Column) Null(i int) bool { return c.Nulls.Get(i) }

func (c *Float64Column) Value(i int) types.Value {
	if c.Nulls.Get(i) {
		return types.Null()
	}
	return types.NewFloat(c.Vals[i])
}

func (c *Float64Column) HashFNV(i int, h uint64) uint64 {
	if c.Nulls.Get(i) {
		return types.FNVByte(h, 0)
	}
	return types.FNVUint64LE(types.FNVByte(h, 1), math.Float64bits(c.Vals[i]))
}

// BoolColumn stores a BOOLEAN column plus a null bitmap.
type BoolColumn struct {
	Vals  []bool
	Nulls *Bitmap
}

func (c *BoolColumn) Len() int        { return len(c.Vals) }
func (c *BoolColumn) Null(i int) bool { return c.Nulls.Get(i) }

func (c *BoolColumn) Value(i int) types.Value {
	if c.Nulls.Get(i) {
		return types.Null()
	}
	return types.NewBool(c.Vals[i])
}

func (c *BoolColumn) HashFNV(i int, h uint64) uint64 {
	if c.Nulls.Get(i) {
		return types.FNVByte(h, 0)
	}
	h = types.FNVByte(h, 3)
	if c.Vals[i] {
		return types.FNVByte(h, 1)
	}
	return types.FNVByte(h, 0)
}

// TextColumn stores a TEXT column dictionary-encoded: per-row uint32 codes
// into a first-occurrence-ordered string dictionary. Equal codes ⇔ equal
// strings, so predicate evaluation and dedup compare codes; hashing of a
// fresh key (FNV state at the offset basis) is a precomputed per-entry
// lookup instead of a per-byte string walk.
type TextColumn struct {
	Codes []uint32
	Dict  []string
	// DictHash[c] is the full FNV-1a hash of Dict[c]'s value encoding from
	// the offset basis — valid only as the first (or only) key column of a
	// composite hash; chained states fall back to the byte walk.
	DictHash []uint64
	Nulls    *Bitmap
}

func (c *TextColumn) Len() int        { return len(c.Codes) }
func (c *TextColumn) Null(i int) bool { return c.Nulls.Get(i) }

func (c *TextColumn) Value(i int) types.Value {
	if c.Nulls.Get(i) {
		return types.Null()
	}
	return types.NewText(c.Dict[c.Codes[i]])
}

func (c *TextColumn) HashFNV(i int, h uint64) uint64 {
	if c.Nulls.Get(i) {
		return types.FNVByte(h, 0)
	}
	code := c.Codes[i]
	if h == types.FNVOffset64 {
		return c.DictHash[code] // dictionary fast path
	}
	h = types.FNVByte(h, 2)
	h = types.FNVString(h, c.Dict[code])
	return types.FNVByte(h, 0xff)
}

// Keep evaluates pass over every dictionary entry once, returning the
// per-code keep mask text predicate kernels run on: O(|dict|) predicate
// evaluations instead of O(rows).
func (c *TextColumn) Keep(pass func(s string) bool) []bool {
	keep := make([]bool, len(c.Dict))
	for k, s := range c.Dict {
		keep[k] = pass(s)
	}
	return keep
}

// AnyColumn is the fallback representation for columns whose values do not
// all match the declared kind (intermediate relations after folds, NULL-typed
// schema columns): it stores the original values, so reconstruction is exact
// by construction.
type AnyColumn struct {
	Vals []types.Value
}

func (c *AnyColumn) Len() int                       { return len(c.Vals) }
func (c *AnyColumn) Null(i int) bool                { return c.Vals[i].IsNull() }
func (c *AnyColumn) Value(i int) types.Value        { return c.Vals[i] }
func (c *AnyColumn) HashFNV(i int, h uint64) uint64 { return c.Vals[i].HashFNV(h) }

// Frame is the columnar image of a relation: one typed Column per schema
// column, all of equal length.
type Frame struct {
	kinds []types.Kind
	cols  []Column
	n     int
}

// Rows returns the row count.
func (f *Frame) Rows() int { return f.n }

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// Col returns column i.
func (f *Frame) Col(i int) Column { return f.cols[i] }

// Kind returns the declared kind of column i.
func (f *Frame) Kind(i int) types.Kind { return f.kinds[i] }

// DictEntries returns the total number of dictionary entries across the
// frame's TEXT columns (surfaced in trace spans).
func (f *Frame) DictEntries() int {
	n := 0
	for _, c := range f.cols {
		if tc, ok := c.(*TextColumn); ok {
			n += len(tc.Dict)
		}
	}
	return n
}

// HashKey advances a fresh FNV-1a state over the key columns of row i —
// byte-identical to types.Row.HashKey on the materialized row.
func (f *Frame) HashKey(i int, cols []int) uint64 {
	h := types.FNVOffset64
	for _, c := range cols {
		h = f.cols[c].HashFNV(i, h)
	}
	return h
}

// KeyHasNull reports whether any key column of row i is NULL (NULL keys
// never join).
func (f *Frame) KeyHasNull(i int, cols []int) bool {
	for _, c := range cols {
		if f.cols[c].Null(i) {
			return true
		}
	}
	return false
}

// NewFrame builds the columnar image of rows under the declared column
// kinds. Columns whose values all match their declared kind (or are NULL)
// get a typed vector; mismatching columns fall back to AnyColumn so value
// reconstruction stays exact.
func NewFrame(kinds []types.Kind, rows []types.Row) *Frame {
	return NewFrameDegree(kinds, rows, 1)
}

// NewFrameDegree is NewFrame with the per-column builds spread across the
// worker pool at degree par (columns are independent). The result is
// identical at any degree.
func NewFrameDegree(kinds []types.Kind, rows []types.Row, par int) *Frame {
	f := &Frame{
		kinds: append([]types.Kind(nil), kinds...),
		cols:  make([]Column, len(kinds)),
		n:     len(rows),
	}
	parallel.Each(len(kinds), par, func(j int) {
		f.cols[j] = buildColumn(kinds[j], rows, j)
	})
	return f
}

// buildColumn builds one typed column, falling back to AnyColumn on the
// first value whose kind does not match the declaration.
func buildColumn(kind types.Kind, rows []types.Row, j int) Column {
	n := len(rows)
	switch kind {
	case types.KindInt:
		vals := make([]int64, n)
		var nulls *Bitmap
		for i, r := range rows {
			v := r[j]
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = newBitmap(n)
				}
				nulls.set(i)
			case v.Kind() == types.KindInt:
				vals[i] = v.Int()
			default:
				return anyColumn(rows, j)
			}
		}
		return &Int64Column{Vals: vals, Nulls: nulls}
	case types.KindFloat:
		vals := make([]float64, n)
		var nulls *Bitmap
		for i, r := range rows {
			v := r[j]
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = newBitmap(n)
				}
				nulls.set(i)
			case v.Kind() == types.KindFloat:
				vals[i] = v.Float()
			default:
				return anyColumn(rows, j)
			}
		}
		return &Float64Column{Vals: vals, Nulls: nulls}
	case types.KindBool:
		vals := make([]bool, n)
		var nulls *Bitmap
		for i, r := range rows {
			v := r[j]
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = newBitmap(n)
				}
				nulls.set(i)
			case v.Kind() == types.KindBool:
				vals[i] = v.Bool()
			default:
				return anyColumn(rows, j)
			}
		}
		return &BoolColumn{Vals: vals, Nulls: nulls}
	case types.KindText:
		codes := make([]uint32, n)
		var nulls *Bitmap
		var dict []string
		index := make(map[string]uint32)
		for i, r := range rows {
			v := r[j]
			switch {
			case v.IsNull():
				if nulls == nil {
					nulls = newBitmap(n)
				}
				nulls.set(i)
			case v.Kind() == types.KindText:
				s := v.Text()
				code, ok := index[s]
				if !ok {
					code = uint32(len(dict))
					index[s] = code
					dict = append(dict, s)
				}
				codes[i] = code
			default:
				return anyColumn(rows, j)
			}
		}
		hashes := make([]uint64, len(dict))
		for k, s := range dict {
			hashes[k] = types.NewText(s).HashFNV(types.FNVOffset64)
		}
		return &TextColumn{Codes: codes, Dict: dict, DictHash: hashes, Nulls: nulls}
	default:
		return anyColumn(rows, j)
	}
}

func anyColumn(rows []types.Row, j int) Column {
	vals := make([]types.Value, len(rows))
	for i, r := range rows {
		vals[i] = r[j]
	}
	return &AnyColumn{Vals: vals}
}

// GatherView materializes a new Frame from a subset of v's columns and
// logical positions: column j of the result is v's frame column cols[j]
// restricted to the rows order[i] (logical view positions, in output order).
// Dictionaries and their precomputed hashes are shared with the source —
// gathering a TEXT column copies uint32 codes, never strings — which is what
// lets the columnar wire encoder reuse scan-time dictionaries with zero
// string re-encoding. Column gathers run at degree par; the result is
// identical at any degree.
func GatherView(v *View, cols []int, kinds []types.Kind, order []int32, par int) *Frame {
	f := &Frame{
		kinds: append([]types.Kind(nil), kinds...),
		cols:  make([]Column, len(cols)),
		n:     len(order),
	}
	idx := make([]int, len(order))
	for i, j := range order {
		idx[i] = v.Index(int(j))
	}
	parallel.Each(len(cols), par, func(j int) {
		f.cols[j] = gatherColumn(v.Frame.cols[cols[j]], idx)
	})
	return f
}

// gatherNulls rebuilds the null bitmap of a gathered column (nil when the
// gathered rows contain no NULL).
func gatherNulls(src *Bitmap, idx []int) *Bitmap {
	if src == nil {
		return nil
	}
	var out *Bitmap
	for i, j := range idx {
		if src.Get(j) {
			if out == nil {
				out = newBitmap(len(idx))
			}
			out.set(i)
		}
	}
	return out
}

// gatherColumn restricts one column to the frame row indices in idx.
func gatherColumn(c Column, idx []int) Column {
	switch c := c.(type) {
	case *Int64Column:
		vals := make([]int64, len(idx))
		for i, j := range idx {
			vals[i] = c.Vals[j]
		}
		return &Int64Column{Vals: vals, Nulls: gatherNulls(c.Nulls, idx)}
	case *Float64Column:
		vals := make([]float64, len(idx))
		for i, j := range idx {
			vals[i] = c.Vals[j]
		}
		return &Float64Column{Vals: vals, Nulls: gatherNulls(c.Nulls, idx)}
	case *BoolColumn:
		vals := make([]bool, len(idx))
		for i, j := range idx {
			vals[i] = c.Vals[j]
		}
		return &BoolColumn{Vals: vals, Nulls: gatherNulls(c.Nulls, idx)}
	case *TextColumn:
		codes := make([]uint32, len(idx))
		for i, j := range idx {
			codes[i] = c.Codes[j]
		}
		return &TextColumn{Codes: codes, Dict: c.Dict, DictHash: c.DictHash, Nulls: gatherNulls(c.Nulls, idx)}
	default:
		vals := make([]types.Value, len(idx))
		for i, j := range idx {
			vals[i] = c.Value(j)
		}
		return &AnyColumn{Vals: vals}
	}
}

// View is a Frame restricted to a selection vector: Sel lists the surviving
// frame row indices in ascending order; nil Sel means all rows. Engine
// relations carry a View alongside their materialized rows so downstream
// operators (semi-joins, Bloom probes, project+distinct) can work columnar.
type View struct {
	Frame *Frame
	Sel   []int32
}

// Len returns the number of selected rows.
func (v *View) Len() int {
	if v.Sel == nil {
		return v.Frame.Rows()
	}
	return len(v.Sel)
}

// Index maps a logical (selection) position to its frame row index.
func (v *View) Index(j int) int {
	if v.Sel == nil {
		return j
	}
	return int(v.Sel[j])
}

// Narrow returns the view restricted to the logical positions in keep
// (ascending): the composed selection vector over the same frame.
func (v *View) Narrow(keep []int32) *View {
	sel := make([]int32, len(keep))
	if v.Sel == nil {
		copy(sel, keep)
	} else {
		for i, j := range keep {
			sel[i] = v.Sel[j]
		}
	}
	return &View{Frame: v.Frame, Sel: sel}
}

package colstore

import (
	"math"

	"resultdb/internal/parallel"
	"resultdb/internal/types"
)

// numericValue reports whether v is INTEGER or DOUBLE.
func numericValue(v types.Value) bool {
	return v.Kind() == types.KindInt || v.Kind() == types.KindFloat
}

// This file holds the columnar kernels behind sideways information passing
// (SIP): the cost-based planner computes the build side's [min, max] key
// bounds and pre-drops probe rows that cannot possibly match before they are
// hashed. Both kernels mirror cmp3 (types.Compare on non-NULL numerics)
// exactly, so the pre-filter never drops a row the exact semi-join would
// keep: NaN probe values pass any range (cmp3 reports 0 against every bound,
// matching their Compare behavior), and NULL or out-of-range values can
// never equal an in-range build key.

// NumMinMaxView scans column col of the view's selected rows and returns the
// minimum and maximum of its non-NULL numeric values. NaN values are skipped
// (they match only by bit pattern and pass any range filter regardless).
// ok is false when the column is non-numeric, when any non-null value of an
// untyped column is non-numeric, or when no usable value exists.
func NumMinMaxView(v *View, col int) (lo, hi float64, ok bool) {
	switch c := v.Frame.Col(col).(type) {
	case *Int64Column:
		return intMinMax(v, c)
	case *Float64Column:
		return floatMinMax(v, c)
	case *AnyColumn:
		return anyMinMax(v, c)
	}
	return 0, 0, false
}

func intMinMax(v *View, c *Int64Column) (lo, hi float64, ok bool) {
	var mn, mx int64
	if v.Sel == nil {
		for i, val := range c.Vals {
			if c.Nulls.Get(i) {
				continue
			}
			if !ok {
				mn, mx, ok = val, val, true
			} else if val < mn {
				mn = val
			} else if val > mx {
				mx = val
			}
		}
	} else {
		for _, i := range v.Sel {
			if c.Nulls.Get(int(i)) {
				continue
			}
			val := c.Vals[i]
			if !ok {
				mn, mx, ok = val, val, true
			} else if val < mn {
				mn = val
			} else if val > mx {
				mx = val
			}
		}
	}
	return float64(mn), float64(mx), ok
}

func floatMinMax(v *View, c *Float64Column) (lo, hi float64, ok bool) {
	update := func(val float64) {
		if math.IsNaN(val) {
			return
		}
		if !ok {
			lo, hi, ok = val, val, true
		} else if val < lo {
			lo = val
		} else if val > hi {
			hi = val
		}
	}
	if v.Sel == nil {
		for i, val := range c.Vals {
			if !c.Nulls.Get(i) {
				update(val)
			}
		}
	} else {
		for _, i := range v.Sel {
			if !c.Nulls.Get(int(i)) {
				update(c.Vals[i])
			}
		}
	}
	return lo, hi, ok
}

func anyMinMax(v *View, c *AnyColumn) (lo, hi float64, ok bool) {
	n := v.Len()
	for j := 0; j < n; j++ {
		val := c.Vals[v.Index(j)]
		if val.IsNull() {
			continue
		}
		if !numericValue(val) {
			return 0, 0, false
		}
		f := val.Float()
		if math.IsNaN(f) {
			continue
		}
		if !ok {
			lo, hi, ok = f, f, true
		} else if f < lo {
			lo = f
		} else if f > hi {
			hi = f
		}
	}
	return lo, hi, ok
}

// NumRangeSelect returns the logical positions (ascending) of the view's
// rows whose col value is non-NULL and within [lo, hi] under cmp3 semantics
// (NaN passes: cmp3 reports 0 against both bounds, mirroring types.Compare).
// ok is false for non-numeric or untyped columns; callers fall back to a
// row-path filter. The scan is chunked across the worker pool at degree par
// with the deterministic ordered merge, so results are identical at any
// degree.
func NumRangeSelect(v *View, col int, lo, hi float64, par int) (keep []int32, ok bool) {
	switch c := v.Frame.Col(col).(type) {
	case *Int64Column:
		return rangeSelect(v, lo, hi, par, func(i int) (float64, bool) {
			return float64(c.Vals[i]), !c.Nulls.Get(i)
		}), true
	case *Float64Column:
		return rangeSelect(v, lo, hi, par, func(i int) (float64, bool) {
			return c.Vals[i], !c.Nulls.Get(i)
		}), true
	}
	return nil, false
}

// rangeSelect is the shared chunked loop of NumRangeSelect. val reports a
// frame row's numeric value and whether it is non-NULL; the closure
// indirection keeps one loop for both typed columns.
func rangeSelect(v *View, lo, hi float64, par int, val func(i int) (float64, bool)) []int32 {
	out := parallel.Map(v.Len(), par, func(a, b int) []int32 {
		kept := make([]int32, 0, b-a)
		for j := a; j < b; j++ {
			f, nonNull := val(v.Index(j))
			if nonNull && cmp3(f, lo) >= 0 && cmp3(f, hi) <= 0 {
				kept = append(kept, int32(j))
			}
		}
		return kept
	})
	if out == nil {
		out = []int32{}
	}
	return out
}

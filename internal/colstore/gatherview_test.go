package colstore

import (
	"testing"

	"resultdb/internal/types"
)

// TestGatherView checks the projection gather the wire encoder and the
// vectorized project+distinct rely on: values land in output order, null
// bitmaps are rebuilt (and dropped when the gathered rows have no NULL), and
// TEXT dictionaries are shared with the source frame, not copied.
func TestGatherView(t *testing.T) {
	kinds := []types.Kind{types.KindInt, types.KindText, types.KindFloat, types.KindBool}
	rows := make([]types.Row, 20)
	for i := range rows {
		var s, f types.Value
		if i%4 == 0 {
			s = types.Null()
		} else {
			s = types.NewText([]string{"red", "green", "blue"}[i%3])
		}
		if i%5 == 0 {
			f = types.Null()
		} else {
			f = types.NewFloat(float64(i) / 2)
		}
		rows[i] = types.Row{types.NewInt(int64(i * 100)), s, f, types.NewBool(i%2 == 0)}
	}
	frame := NewFrame(kinds, rows)
	view := &View{Frame: frame, Sel: []int32{1, 3, 5, 7, 9, 11, 13, 15}}

	// Project columns {text, int} in that order, gathering view positions
	// out of order and with a repeat.
	order := []int32{5, 0, 3, 0, 7}
	got := GatherView(view, []int{1, 0}, []types.Kind{types.KindText, types.KindInt}, order, 2)
	if got.Rows() != len(order) || got.NumCols() != 2 {
		t.Fatalf("gathered %dx%d, want %dx2", got.Rows(), got.NumCols(), len(order))
	}
	for i, j := range order {
		src := rows[view.Index(int(j))]
		if want, have := src[1], got.Col(0).Value(i); want != have {
			t.Errorf("row %d text: got %v want %v", i, have, want)
		}
		if want, have := src[0], got.Col(1).Value(i); want != have {
			t.Errorf("row %d int: got %v want %v", i, have, want)
		}
	}

	// The gathered TEXT column must share the source dictionary storage.
	src, ok := frame.Col(1).(*TextColumn)
	if !ok {
		t.Fatal("source text column has unexpected representation")
	}
	out, ok := got.Col(0).(*TextColumn)
	if !ok {
		t.Fatal("gathered text column has unexpected representation")
	}
	if len(src.Dict) > 0 && &src.Dict[0] != &out.Dict[0] {
		t.Error("gathered text column copied the dictionary instead of sharing it")
	}

	// Gathering only non-NULL positions must drop the bitmap entirely.
	noNulls := GatherView(view, []int{2}, []types.Kind{types.KindFloat}, []int32{0, 1, 3}, 1)
	fc, ok := noNulls.Col(0).(*Float64Column)
	if !ok {
		t.Fatal("gathered float column has unexpected representation")
	}
	if fc.Nulls != nil {
		t.Error("bitmap kept for a gather with no NULLs")
	}

	// Gathering a NULL position must rebuild the bitmap at the new index:
	// view position 7 is frame row 15, whose float is NULL; position 1 is
	// frame row 3, non-NULL.
	withNull := GatherView(view, []int{2}, []types.Kind{types.KindFloat}, []int32{1, 7}, 1)
	fc, ok = withNull.Col(0).(*Float64Column)
	if !ok {
		t.Fatal("gathered float column has unexpected representation")
	}
	if fc.Null(0) || !fc.Null(1) {
		t.Errorf("rebuilt bitmap wrong: Null(0)=%v Null(1)=%v, want false/true", fc.Null(0), fc.Null(1))
	}
}

package durable

import (
	"fmt"
	"sync"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/wal"
)

// Checkpoints taken in the middle of concurrent write load must capture a
// consistent committed state: the MVCC checkpoint pins one snapshot (tables +
// the WAL LSN stamped into it) instead of taking a read lock, so writers keep
// committing while the image is encoded. Recovery from any such image plus
// the WAL tail must reproduce exactly the acknowledged history.
func TestCheckpointDuringWrites(t *testing.T) {
	const (
		writers = 2
		batches = 30
		ckpts   = 8
	)
	fs := wal.NewMemFS()
	m, d, err := Open(Options{FS: fs}, func(d *db.Database) error {
		for w := 0; w < writers; w++ {
			if _, err := d.Exec(fmt.Sprintf("CREATE TABLE cw%d (id INTEGER PRIMARY KEY, val INTEGER)", w)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := d.NewSession()
			for k := 0; k < batches; k++ {
				sql := fmt.Sprintf("INSERT INTO cw%d VALUES (%d, %d), (%d, %d)", w, 2*k, k*7, 2*k+1, k*11)
				if _, err := sess.Exec(sql); err != nil {
					t.Errorf("writer %d batch %d: %v", w, k, err)
					return
				}
			}
		}(w)
	}
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for i := 0; i < ckpts; i++ {
			if err := m.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-ckptDone
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from the last mid-load checkpoint + WAL tail: every
	// acknowledged batch — and nothing else — must be back.
	m2, d2 := openMem(t, fs, Options{})
	defer m2.Close()
	for w := 0; w < writers; w++ {
		res, err := d2.Exec(fmt.Sprintf("SELECT cw%d.id, cw%d.val FROM cw%d AS cw%d", w, w, w, w))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.First().NumRows(); got != 2*batches {
			t.Fatalf("table cw%d recovered %d rows, want %d", w, got, 2*batches)
		}
	}
	if st := m2.Stats(); st.RecoveredLSN == 0 {
		t.Fatal("recovery reports LSN 0 after checkpoints under load")
	}
}

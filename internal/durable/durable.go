// Package durable orchestrates the durability subsystem: it owns a data
// directory holding checkpoints (versioned, CRC-trailered snapshots stamped
// with the last WAL LSN they cover — internal/snapshot) and WAL segments
// (internal/wal), installs itself as the database's commit log, and performs
// recovery:
//
//	state = newest valid checkpoint + replay of WAL records past its LSN
//
// Recovery is byte-exact-deterministic: the checkpoint decodes to the same
// tables every time, WAL records are replayed in dense LSN order, and each
// record is the canonical SQL of a batch the engine executes
// deterministically. Recovery builds a *fresh* db.Database, so semantic-cache
// entries and colstore frame generations from the pre-crash process are
// unreachable by construction — nothing stale can be trusted, because
// nothing survives.
//
// Crash safety contract (the crash gate enforces it at every byte offset):
// an acknowledged batch is never lost, an unacknowledged tail may be dropped
// but is never half-applied, and damage outside the torn tail is a typed
// error rather than silent data loss.
package durable

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/snapshot"
	"resultdb/internal/trace"
	"resultdb/internal/wal"
)

// ErrNoCheckpoint means the directory holds WAL segments but no loadable
// checkpoint: the log has no base to replay onto, which only tampering or
// damage can produce (every directory is born with a checkpoint at LSN 0).
var ErrNoCheckpoint = errors.New("durable: wal segments present but no loadable checkpoint")

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".snap"
	ckptTmp    = "ckpt.tmp"
)

// ckptName formats the checkpoint file name covering up to lsn.
func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

// parseCkptName extracts the covered LSN from a checkpoint file name.
func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(hex, "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// Options configures a Manager.
type Options struct {
	// Dir is the data directory; used (via wal.NewDirFS) when FS is nil.
	Dir string
	// FS overrides the directory with an injected filesystem — the crash
	// gate's entry point.
	FS wal.FS
	// Fsync is the WAL fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// SyncInterval is the flush period under wal.SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes is the WAL rotation budget (0 = wal default).
	SegmentBytes int64
	// CheckpointEvery takes an automatic checkpoint after that many logged
	// batches (0 = manual/drain checkpoints only).
	CheckpointEvery int64
	// NoGroupCommit disables group-commit sharing (benchmark A/B knob).
	NoGroupCommit bool
}

// Manager binds a database to its data directory. It implements
// db.CommitLog; Open installs it on the database it returns.
type Manager struct {
	fs   wal.FS
	db   *db.Database
	log  *wal.Log
	opts Options

	// mu serializes checkpoints (and Close against them).
	mu       sync.Mutex
	ckptLSN  uint64
	haveCkpt bool
	closed   bool

	sinceCkpt atomic.Int64
	ckpts     atomic.Int64
	ckptBytes atomic.Int64

	// Recovery facts, fixed at Open.
	recoveredLSN  uint64
	replayed      int64
	replaySkipped int64
	tornTail      bool
}

// Open recovers (or initializes) the data directory and returns the manager
// and its database, with the commit hook installed. On a fresh directory,
// bootstrap (nil = none) seeds the empty database — bulk workload loads that
// bypass SQL go here — and the seeded state is captured by the initial
// checkpoint at LSN 0, so it is never needed again: on every later open the
// state comes from checkpoint + WAL alone.
func Open(opts Options, bootstrap func(*db.Database) error) (*Manager, *db.Database, error) {
	fsys := opts.FS
	if fsys == nil {
		if opts.Dir == "" {
			return nil, nil, errors.New("durable: Options.Dir or Options.FS is required")
		}
		dirFS, err := wal.NewDirFS(opts.Dir)
		if err != nil {
			return nil, nil, err
		}
		fsys = dirFS
	}
	m := &Manager{fs: fsys, opts: opts}

	names, err := fsys.List()
	if err != nil {
		return nil, nil, err
	}
	var ckpts []string
	haveSegments := false
	for _, name := range names {
		if _, ok := parseCkptName(name); ok {
			ckpts = append(ckpts, name)
		}
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
			haveSegments = true
		}
		// A stray tmp is a checkpoint that never reached its rename; it is
		// garbage by contract.
		if name == ckptTmp {
			fsys.Remove(name)
		}
	}
	sort.Strings(ckpts) // name order == LSN order

	var d *db.Database
	switch {
	case len(ckpts) > 0:
		d, err = m.loadNewestCheckpoint(ckpts)
		if err != nil {
			return nil, nil, err
		}
	case haveSegments:
		return nil, nil, ErrNoCheckpoint
	default:
		d = db.New()
		if bootstrap != nil {
			if err := bootstrap(d); err != nil {
				return nil, nil, fmt.Errorf("durable: bootstrap: %w", err)
			}
		}
	}
	m.db = d

	// Replay the log past the checkpoint. Statements were logged only after
	// applying cleanly, so a replay failure is real corruption, not a
	// replayed user error.
	stats, err := wal.Replay(fsys, m.ckptLSN, func(lsn uint64, payload []byte) error {
		stmts, err := wal.DecodeStatements(payload)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, lsn, err)
		}
		for _, sql := range stmts {
			if _, err := d.Exec(sql); err != nil {
				return fmt.Errorf("durable: replaying record %d (%q): %w", lsn, sql, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	m.recoveredLSN = stats.LastLSN
	m.replayed = stats.Records
	m.replaySkipped = stats.Skipped
	m.tornTail = stats.TornTail
	// Stamp the recovered position into the published MVCC state so the first
	// snapshot (and the birth checkpoint taken from it) carries the right LSN.
	d.SetRecoveredLSN(stats.LastLSN)

	m.log, err = wal.Open(wal.Options{
		FS:            fsys,
		SegmentBytes:  opts.SegmentBytes,
		Policy:        opts.Fsync,
		Interval:      opts.SyncInterval,
		NoGroupCommit: opts.NoGroupCommit,
	}, stats.LastLSN)
	if err != nil {
		return nil, nil, err
	}

	// A fresh directory gets its birth checkpoint so the bootstrap state is
	// durable before the first commit is ever acknowledged.
	if !m.haveCkpt {
		if err := m.Checkpoint(); err != nil {
			m.log.Close()
			return nil, nil, err
		}
	}

	d.SetCommitLog(m)
	return m, d, nil
}

// loadNewestCheckpoint loads the newest checkpoint that decodes cleanly,
// removing broken newer ones so they cannot shadow the good one forever. If
// none loads, the last (typed) load error is returned.
func (m *Manager) loadNewestCheckpoint(ckpts []string) (*db.Database, error) {
	var lastErr error
	for i := len(ckpts) - 1; i >= 0; i-- {
		data, err := m.fs.ReadFile(ckpts[i])
		if err != nil {
			lastErr = err
			continue
		}
		d, lsn, err := snapshot.LoadLSN(bytes.NewReader(data))
		if err != nil {
			lastErr = fmt.Errorf("durable: checkpoint %s: %w", ckpts[i], err)
			continue
		}
		m.ckptLSN = lsn
		m.haveCkpt = true
		return d, nil
	}
	return nil, lastErr
}

// Append implements db.CommitLog: called with the database writer lock held,
// it logs the batch and returns its LSN (which the writer publishes in the
// committed state); the returned wait makes it durable (group-committed)
// and is invoked by the database after unlock.
func (m *Manager) Append(stmts []string) (uint64, func() error, error) {
	lsn, err := m.log.Append(wal.EncodeStatements(stmts))
	if err != nil {
		return 0, nil, err
	}
	return lsn, func() error {
		if err := m.log.Sync(lsn); err != nil {
			return err
		}
		if every := m.opts.CheckpointEvery; every > 0 && m.sinceCkpt.Add(1) >= every {
			m.sinceCkpt.Store(0)
			if err := m.Checkpoint(); err != nil {
				// The commit itself is durable in the WAL; a failed
				// checkpoint only delays pruning.
				return nil
			}
		}
		return nil
	}, nil
}

// Checkpoint pins one MVCC snapshot of the database (carrying the WAL
// position its last commit published — no read lock, writers keep
// committing), writes it to a temporary file, fsyncs, renames into place,
// syncs the directory, then removes older checkpoints and prunes
// fully-covered WAL segments. A crash anywhere in the sequence leaves either
// the old checkpoint or the new one intact — never neither.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("durable: closed")
	}
	// The snapshot's LSN and tables were published in one atomic store, so the
	// pair is exactly consistent even while later commits land concurrently.
	snap := m.db.Snapshot()
	lsn := snap.LSN()
	var buf bytes.Buffer
	if err := snapshot.SaveLSN(snap, lsn, &buf); err != nil {
		return fmt.Errorf("durable: checkpoint encode: %w", err)
	}
	if m.haveCkpt && lsn == m.ckptLSN {
		return nil // nothing new to cover
	}
	// Write-tmp, fsync, rename, fsync-dir: the checkpoint appears atomically.
	m.fs.Remove(ckptTmp) // a leftover tmp would be appended to
	f, err := m.fs.OpenAppend(ckptTmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("durable: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	name := ckptName(lsn)
	if err := m.fs.Rename(ckptTmp, name); err != nil {
		return fmt.Errorf("durable: checkpoint rename: %w", err)
	}
	if err := m.fs.SyncDir(); err != nil {
		return fmt.Errorf("durable: checkpoint dir sync: %w", err)
	}
	// Only now is the new checkpoint the recovery base; retire the old
	// world. Failures here cost disk space, not correctness.
	names, err := m.fs.List()
	if err == nil {
		for _, n := range names {
			if l, ok := parseCkptName(n); ok && l < lsn {
				m.fs.Remove(n)
			}
		}
	}
	m.log.Prune(lsn)
	m.ckptLSN = lsn
	m.haveCkpt = true
	m.ckpts.Add(1)
	m.ckptBytes.Add(int64(buf.Len()))
	return nil
}

// DB returns the managed database.
func (m *Manager) DB() *db.Database { return m.db }

// RecoveredLSN returns the LSN the database was recovered to at Open: the
// checkpoint's LSN plus every valid replayed record.
func (m *Manager) RecoveredLSN() uint64 { return m.recoveredLSN }

// Close uninstalls the commit hook and closes the WAL (making it durable
// under fsync policies other than off). It does not checkpoint; callers
// wanting checkpoint-on-drain call Checkpoint first.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	m.db.SetCommitLog(nil)
	return m.log.Close()
}

// Stats snapshots durability counters: the WAL's own, plus checkpoint and
// recovery facts.
type Stats struct {
	Wal wal.Stats `json:"wal"`
	// Replayed is the number of WAL records applied during recovery.
	Replayed int64 `json:"replayed"`
	// ReplaySkipped is the number of valid records already covered by the
	// checkpoint recovery loaded.
	ReplaySkipped int64 `json:"replay_skipped"`
	// TornTail reports that recovery dropped a torn final record.
	TornTail bool `json:"torn_tail"`
	// RecoveredLSN is the LSN state was recovered to at Open.
	RecoveredLSN uint64 `json:"recovered_lsn"`
	// CheckpointLSN is the LSN covered by the newest checkpoint.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// Checkpoints counts checkpoints taken this process.
	Checkpoints int64 `json:"checkpoints"`
	// CheckpointBytes sums the encoded sizes of those checkpoints.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	ckptLSN := m.ckptLSN
	m.mu.Unlock()
	return Stats{
		Wal:             m.log.Stats(),
		Replayed:        m.replayed,
		ReplaySkipped:   m.replaySkipped,
		TornTail:        m.tornTail,
		RecoveredLSN:    m.recoveredLSN,
		CheckpointLSN:   ckptLSN,
		Checkpoints:     m.ckpts.Load(),
		CheckpointBytes: m.ckptBytes.Load(),
	}
}

// Trace renders the combined durability counters in the repo's one
// observability format (mode "wal-stats", "counter" spans), extending the
// WAL's own spans with checkpoint and recovery counts.
func (s Stats) Trace() *trace.Trace {
	tr := s.Wal.Trace()
	torn := int64(0)
	if s.TornTail {
		torn = 1
	}
	extra := []struct {
		name  string
		value int64
	}{
		{"recovery_replayed", s.Replayed},
		{"recovery_skipped", s.ReplaySkipped},
		{"recovery_torn_tail", torn},
		{"recovered_lsn", int64(s.RecoveredLSN)},
		{"checkpoint_lsn", int64(s.CheckpointLSN)},
		{"checkpoints", s.Checkpoints},
		{"checkpoint_bytes", s.CheckpointBytes},
	}
	for _, c := range extra {
		tr.Spans = append(tr.Spans, trace.Span{
			Op:      "counter",
			Label:   c.name,
			Phase:   "wal",
			RowsOut: int(c.value),
		})
	}
	return tr
}

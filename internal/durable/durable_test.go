package durable

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/snapshot"
	"resultdb/internal/wal"
	"resultdb/internal/workload/hierarchy"
)

// openMem opens a manager over fs with no bootstrap allowed.
func openMem(t *testing.T, fs wal.FS, opts Options) (*Manager, *db.Database) {
	t.Helper()
	opts.FS = fs
	m, d, err := Open(opts, noBootstrap(t))
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestFreshOpenBootstrapCheckpointReplay(t *testing.T) {
	fs := wal.NewMemFS()
	booted := false
	m, d, err := Open(Options{FS: fs}, func(d *db.Database) error {
		booted = true
		_, err := d.ExecScript(`
			CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT);
			INSERT INTO t VALUES (1, 'boot');
		`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !booted {
		t.Fatal("bootstrap not invoked on fresh directory")
	}
	// Birth checkpoint at LSN 0 exists before any commit.
	names, _ := fs.List()
	if want := ckptName(0); names[0] != want {
		t.Fatalf("files = %v, want %s first", names, want)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (2, 'logged')"); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Wal.Records != 1 || st.CheckpointLSN != 0 {
		t.Fatalf("stats = %+v", st)
	}
	m.Close()

	// Reopen: bootstrap must NOT run; state = checkpoint + one replayed
	// record.
	m2, d2 := openMem(t, fs, Options{})
	defer m2.Close()
	if st := m2.Stats(); st.Replayed != 1 || st.RecoveredLSN != 1 {
		t.Fatalf("reopen stats = %+v", st)
	}
	res, err := d2.QuerySQL("SELECT t.tag FROM t AS t")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.First().NumRows())
	}
}

func TestCheckpointPrunesAndShortensRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	m, d, err := Open(Options{FS: fs, SegmentBytes: 64}, func(d *db.Database) error {
		_, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := d.Exec(insertN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.CheckpointLSN != 6 || st.Wal.Pruned == 0 {
		t.Fatalf("stats after checkpoint = %+v", st)
	}
	// Old checkpoint files are gone; exactly one remains.
	names, _ := fs.List()
	ckpts := 0
	for _, n := range names {
		if strings.HasPrefix(n, ckptPrefix) {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("checkpoint files = %v", names)
	}
	m.Close()
	m2, d2 := openMem(t, fs, Options{SegmentBytes: 64})
	defer m2.Close()
	// The live segment is never pruned, so its already-covered records are
	// validated and skipped — but nothing is re-applied.
	if st := m2.Stats(); st.Replayed != 0 || st.RecoveredLSN != 6 {
		t.Fatalf("reopen stats = %+v", st)
	}
	res, err := d2.QuerySQL("SELECT t.id FROM t AS t")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 6 {
		t.Fatalf("rows = %d", res.First().NumRows())
	}
}

func insertN(i int) string {
	return "INSERT INTO t VALUES (" + string(rune('0'+i)) + ")"
}

func TestAutoCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	m, d, err := Open(Options{FS: fs, CheckpointEvery: 2}, func(d *db.Database) error {
		_, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := d.Exec(insertN(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	// Birth checkpoint plus one per two commits.
	if st.Checkpoints != 3 || st.CheckpointLSN != 4 {
		t.Fatalf("stats = %+v, want 3 checkpoints covering lsn 4", st)
	}
	m.Close()
	m2, _ := openMem(t, fs, Options{})
	defer m2.Close()
	if st := m2.Stats(); st.Replayed != 0 {
		t.Fatalf("reopen replayed %d records despite auto checkpoints", st.Replayed)
	}
}

func TestCorruptCheckpointTyped(t *testing.T) {
	fs := wal.NewMemFS()
	m, _, err := Open(Options{FS: fs}, func(d *db.Database) error {
		_, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	name := ckptName(0)
	data, _ := fs.ReadFile(name)
	data[len(data)/2] ^= 0x20
	fs.WriteFile(name, data)
	_, _, err = Open(Options{FS: fs}, nil)
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("err = %v, want snapshot.ErrChecksum", err)
	}
}

func TestSegmentsWithoutCheckpointTyped(t *testing.T) {
	fs := wal.NewMemFS()
	m, d, err := Open(Options{FS: fs}, func(d *db.Database) error {
		_, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	fs.Remove(ckptName(0))
	if _, _, err := Open(Options{FS: fs}, nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStrayTmpRemoved(t *testing.T) {
	fs := wal.NewMemFS()
	m, _, err := Open(Options{FS: fs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	fs.WriteFile(ckptTmp, []byte("half-written checkpoint"))
	m2, _ := openMem(t, fs, Options{})
	m2.Close()
	names, _ := fs.List()
	for _, n := range names {
		if n == ckptTmp {
			t.Fatalf("stray tmp survived reopen: %v", names)
		}
	}
}

func TestDurableStatsTrace(t *testing.T) {
	fs := wal.NewMemFS()
	m, d, err := Open(Options{FS: fs}, func(d *db.Database) error {
		_, err := d.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := d.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	tr := m.Stats().Trace()
	if tr.Mode != "wal-stats" {
		t.Fatalf("mode = %q", tr.Mode)
	}
	want := map[string]bool{
		"wal_records": false, "wal_fsyncs": false, "recovery_replayed": false,
		"checkpoints": false, "checkpoint_lsn": false,
	}
	for _, sp := range tr.Spans {
		if _, ok := want[sp.Label]; ok {
			want[sp.Label] = true
		}
	}
	for label, seen := range want {
		if !seen {
			t.Errorf("span %s missing", label)
		}
	}
}

// TestDirFSEndToEnd runs the full lifecycle against a real directory.
func TestDirFSEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m, d, err := Open(Options{Dir: dir}, func(d *db.Database) error {
		_, err := d.ExecScript(`
			CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT);
			INSERT INTO t VALUES (1, 'boot');
		`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m, d, err = Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, err := d.QuerySQL("SELECT t.tag FROM t AS t")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 2 {
		t.Fatalf("rows = %d", res.First().NumRows())
	}
}

// TestRecoveryColdCache: semantic-cache entries from the pre-crash process
// must not survive recovery. The recovered database is a fresh instance, so
// its cache starts empty and cold — the first post-recovery execution is a
// miss that recomputes from recovered tables.
func TestRecoveryColdCache(t *testing.T) {
	img := buildImage(t, func(d *db.Database) error {
		_, err := d.ExecScript(`
			CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT);
			INSERT INTO t VALUES (1, 'a'), (2, 'b');
		`)
		return err
	})
	q := "SELECT t.tag FROM t AS t WHERE t.id = 1"

	m, d := openMem(t, img, Options{})
	d.EnableCache(64 << 20)
	if _, err := d.QuerySQL(q); err != nil {
		t.Fatal(err)
	}
	if _, err := d.QuerySQL(q); err != nil {
		t.Fatal(err)
	}
	if st := d.CacheStats(); st.Hits == 0 {
		t.Fatalf("pre-crash cache never hit: %+v", st)
	}
	m.Close() // "crash": the process state (and its cache) is gone

	_, rd := openMem(t, img, Options{})
	rd.EnableCache(64 << 20)
	st := rd.CacheStats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("recovered cache not cold: %+v", st)
	}
	res, err := rd.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if rd.CacheStats().Misses != 1 {
		t.Fatalf("first post-recovery execution not a miss: %+v", rd.CacheStats())
	}
	if res.First().NumRows() != 1 || res.First().Rows[0][0].Text() != "a" {
		t.Fatalf("post-recovery rows = %+v", res.First().Rows)
	}
}

// TestRecoveryVectorizedResults: colstore frames are keyed by table
// generation counters; recovery builds fresh tables, so the vectorized path
// must rebuild frames from recovered rows and agree byte-for-byte with the
// row-at-a-time path on the same recovered state.
func TestRecoveryVectorizedResults(t *testing.T) {
	img := buildImage(t, func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	})
	// Pre-crash process touches the vectorized path (warming frames), then
	// commits more rows, then "crashes".
	m, d := openMem(t, img, Options{})
	d.SetVectorized(true)
	suite := hierarchySuite()
	if _, err := d.QuerySQL(suite[1].sql); err != nil {
		t.Fatal(err)
	}
	for _, sql := range crashDML(t, d, suite)[:3] {
		if _, err := d.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	mv, dv := openMem(t, img, Options{})
	defer mv.Close()
	dv.SetVectorized(true)
	mr, dr := openMem(t, img.Clone(), Options{})
	defer mr.Close()
	dr.SetVectorized(false)
	for _, q := range suite {
		vec := encodeSuite(t, dv, []suiteQuery{q})
		row := encodeSuite(t, dr, []suiteQuery{q})
		if !bytes.Equal(vec, row) {
			t.Fatalf("%s: vectorized post-recovery answer differs from row path", q.name)
		}
	}
}
